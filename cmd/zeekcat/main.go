// Command zeekcat inspects Zeek-style logs written by mtlsgen: it prints
// row summaries with optional filters, the grep/less of this repository's
// log format. Rows stream off the TSV parser in small batches — at most
// one batch is buffered and the scan stops as soon as -n rows have
// matched, so peeking at the head of a multi-gigabyte log stays O(rows
// printed).
//
// Usage:
//
//	zeekcat -logs ./data -mutual -sni idrive.com -n 20
//	zeekcat -logs ./data -certs -issuer "Globus Online"
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/zeek"
)

func main() {
	log.SetFlags(0)
	logs := flag.String("logs", "data", "directory with ssl.log/x509.log")
	mutualOnly := flag.Bool("mutual", false, "show only mutual-TLS connections")
	sni := flag.String("sni", "", "filter: SNI substring")
	issuer := flag.String("issuer", "", "filter: certificate issuer substring (with -certs)")
	certs := flag.Bool("certs", false, "list certificates instead of connections")
	n := flag.Int("n", 40, "max rows to print")
	strict := flag.Bool("strict", false, "fail on the first malformed row instead of skipping it")
	flag.Parse()

	// Permissive by default: zeekcat is a peeking tool, and a corrupt row
	// halfway through a log should not hide everything after it. Skipped
	// rows are tallied in the trailer so they stay visible.
	var opts []zeek.Opt
	rejected := func() uint64 { return 0 }
	if *strict {
		opts = append(opts, zeek.Strict())
	} else {
		q := zeek.NewQuarantine(io.Discard)
		opts = append(opts, zeek.Permissive(), zeek.WithQuarantine(q))
		rejected = q.Count
	}

	if *certs {
		f, err := os.Open(filepath.Join(*logs, "x509.log"))
		if err != nil {
			log.Fatalf("zeekcat: %v", err)
		}
		defer f.Close()
		wantIssuer := strings.ToLower(*issuer)
		printed, scanned := 0, 0
		err = zeek.ForEachX509Batch(f, func(recs []zeek.X509Record) error {
			for i := range recs {
				scanned++
				c := recs[i].Cert
				if wantIssuer != "" && !strings.Contains(strings.ToLower(c.IssuerDN()), wantIssuer) {
					continue
				}
				fmt.Printf("%s serial=%s issuer=%q subject=%q validity=%s..%s\n",
					c.Fingerprint.Short(), c.SerialHex, c.IssuerDN(), c.SubjectDN(),
					c.NotBefore.Format("2006-01-02"), c.NotAfter.Format("2006-01-02"))
				printed++
				if printed >= *n {
					return zeek.ErrStop
				}
			}
			return nil
		}, opts...)
		if err != nil {
			log.Fatalf("zeekcat: %v", err)
		}
		fmt.Printf("(%d certificates shown, %d rows scanned, %d malformed rows skipped)\n", printed, scanned, rejected())
		return
	}

	f, err := os.Open(filepath.Join(*logs, "ssl.log"))
	if err != nil {
		log.Fatalf("zeekcat: %v", err)
	}
	defer f.Close()
	wantSNI := strings.ToLower(*sni)
	printed, scanned := 0, 0
	err = zeek.ForEachSSLBatch(f, func(recs []zeek.SSLRecord) error {
		for i := range recs {
			c := &recs[i]
			scanned++
			if *mutualOnly && !c.IsMutual() {
				continue
			}
			if wantSNI != "" && !strings.Contains(strings.ToLower(c.SNI), wantSNI) {
				continue
			}
			fmt.Printf("%s %s %s:%d -> %s:%d %s sni=%q mutual=%v est=%v w=%d\n",
				c.TS.Format("2006-01-02"), c.UID, c.OrigIP, c.OrigPort, c.RespIP, c.RespPort,
				c.Version, c.SNI, c.IsMutual(), c.Established, c.Weight)
			printed++
			if printed >= *n {
				return zeek.ErrStop
			}
		}
		return nil
	}, opts...)
	if err != nil {
		log.Fatalf("zeekcat: %v", err)
	}
	fmt.Printf("(%d connections shown, %d rows scanned, %d malformed rows skipped)\n", printed, scanned, rejected())
}
