// Command zeekcat inspects Zeek-style logs written by mtlsgen: it prints
// row summaries with optional filters, the grep/less of this repository's
// log format.
//
// Usage:
//
//	zeekcat -logs ./data -mutual -sni idrive.com -n 20
//	zeekcat -logs ./data -certs -issuer "Globus Online"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	mtls "repro"
)

func main() {
	log.SetFlags(0)
	logs := flag.String("logs", "data", "directory with ssl.log/x509.log")
	mutualOnly := flag.Bool("mutual", false, "show only mutual-TLS connections")
	sni := flag.String("sni", "", "filter: SNI substring")
	issuer := flag.String("issuer", "", "filter: certificate issuer substring (with -certs)")
	certs := flag.Bool("certs", false, "list certificates instead of connections")
	n := flag.Int("n", 40, "max rows to print")
	flag.Parse()

	ds, err := mtls.OpenLogs(*logs)
	if err != nil {
		log.Fatalf("zeekcat: %v", err)
	}

	if *certs {
		printed := 0
		for _, c := range ds.Certs {
			if *issuer != "" && !strings.Contains(strings.ToLower(c.IssuerDN()), strings.ToLower(*issuer)) {
				continue
			}
			fmt.Printf("%s serial=%s issuer=%q subject=%q validity=%s..%s\n",
				c.Fingerprint.Short(), c.SerialHex, c.IssuerDN(), c.SubjectDN(),
				c.NotBefore.Format("2006-01-02"), c.NotAfter.Format("2006-01-02"))
			printed++
			if printed >= *n {
				break
			}
		}
		fmt.Printf("(%d of %d certificates)\n", printed, len(ds.Certs))
		return
	}

	printed := 0
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if *mutualOnly && !c.IsMutual() {
			continue
		}
		if *sni != "" && !strings.Contains(strings.ToLower(c.SNI), strings.ToLower(*sni)) {
			continue
		}
		fmt.Printf("%s %s %s:%d -> %s:%d %s sni=%q mutual=%v est=%v w=%d\n",
			c.TS.Format("2006-01-02"), c.UID, c.OrigIP, c.OrigPort, c.RespIP, c.RespPort,
			c.Version, c.SNI, c.IsMutual(), c.Established, c.Weight)
		printed++
		if printed >= *n {
			break
		}
	}
	fmt.Printf("(%d of %d connections)\n", printed, len(ds.Conns))
}
