// Command mtlsgen synthesizes the 23-month campus dataset and writes it as
// Zeek-style ssl.log / x509.log files.
//
// Usage:
//
//	mtlsgen -out ./data -scale 200 -seed 20240504
//	mtlsgen -out ./data -verify -workers 8   # re-open the logs and run the
//	                                         # pipeline over them as a check
//	                                         # (0 workers = one per CPU)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mtls "repro"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "data", "output directory for ssl.log / x509.log")
	scale := flag.Int("scale", 0, "certificate scale divisor (default from config: 200)")
	seed := flag.Uint64("seed", 0, "generator seed (default from config)")
	verify := flag.Bool("verify", false, "re-open the written logs and run the analysis pipeline over them")
	workers := flag.Int("workers", 0, "pipeline workers for -verify: 0 = one per CPU, 1 = serial, n = exactly n")
	flag.Parse()

	cfg := mtls.DefaultConfig()
	if *scale > 0 {
		cfg.CertScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	build := mtls.Generate(cfg)
	if err := mtls.WriteLogs(build.Raw, *out); err != nil {
		log.Fatalf("mtlsgen: %v", err)
	}
	fmt.Fprintf(os.Stdout, "wrote %d connections and %d certificates to %s (scale 1/%d, seed %d)\n",
		len(build.Raw.Conns), len(build.Raw.Certs), *out, cfg.CertScale, cfg.Seed)

	if *verify {
		ds, err := mtls.OpenLogs(*out)
		if err != nil {
			log.Fatalf("mtlsgen: verify: open logs: %v", err)
		}
		build.Raw = ds
		a := mtls.Analyze(build, mtls.WithWorkers(*workers))
		fmt.Fprintf(os.Stdout,
			"verified: %d raw conns, %d raw certs, %d interception issuers excluded %d certs\n",
			a.Preprocess.RawConns, a.Preprocess.RawCerts,
			len(a.Preprocess.InterceptionIssuers), a.Preprocess.ExcludedCerts)
	}
}
