// Command mtlsgen synthesizes the 23-month campus dataset and writes it as
// Zeek-style ssl.log / x509.log files.
//
// Usage:
//
//	mtlsgen -out ./data -scale 200 -seed 20240504
//	mtlsgen -out ./data -spec workload.yaml      # declarative scenario spec
//	mtlsgen -print-spec                          # emit the built-in campus
//	                                             # spec as annotated YAML
//	mtlsgen -out ./data -verify -workers 8       # re-open the logs and run the
//	                                             # pipeline over them as a check
//	                                             # (0 workers = one per CPU)
//
// Without -spec the built-in campus scenario is generated — byte-identical
// to what this command produced before specs existed. With -spec the file
// (or stdin, via "-spec -") describes the cohorts; the -scale and -seed
// flags still apply and override the spec's own seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mtls "repro"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "data", "output directory for ssl.log / x509.log")
	scale := flag.Int("scale", 0, "certificate scale divisor (default from config: 200)")
	seed := flag.Uint64("seed", 0, "generator seed (default from spec, then config)")
	specPath := flag.String("spec", "", "scenario spec YAML file (\"-\" = stdin; empty = built-in campus spec)")
	printSpec := flag.Bool("print-spec", false, "print the built-in campus spec as annotated YAML and exit")
	verify := flag.Bool("verify", false, "re-open the written logs and run the analysis pipeline over them")
	workers := flag.Int("workers", 0, "pipeline workers for -verify: 0 = one per CPU, 1 = serial, n = exactly n")
	flag.Parse()

	if *printSpec {
		fmt.Print(scenario.RenderCommented(scenario.Campus()))
		return
	}

	spec := mtls.CampusSpec()
	if *specPath != "" {
		var err error
		if spec, err = mtls.LoadSpec(*specPath); err != nil {
			log.Fatalf("mtlsgen: spec: %v", err)
		}
	}

	var opts []mtls.GenerateOption
	if *scale > 0 {
		opts = append(opts, mtls.WithScale(*scale))
	}
	if *seed != 0 {
		opts = append(opts, mtls.WithSeed(*seed))
	}

	build, err := mtls.Generate(spec, opts...)
	if err != nil {
		log.Fatalf("mtlsgen: %v", err)
	}
	if err := mtls.WriteLogs(build.Raw, *out); err != nil {
		log.Fatalf("mtlsgen: %v", err)
	}
	fmt.Fprintf(os.Stdout, "wrote %d connections and %d certificates to %s\n",
		len(build.Raw.Conns), len(build.Raw.Certs), *out)

	if *verify {
		ds, err := mtls.OpenLogs(*out)
		if err != nil {
			log.Fatalf("mtlsgen: verify: open logs: %v", err)
		}
		build.Raw = ds
		a := mtls.Analyze(build, mtls.WithWorkers(*workers))
		fmt.Fprintf(os.Stdout,
			"verified: %d raw conns, %d raw certs, %d interception issuers excluded %d certs\n",
			a.Preprocess.RawConns, a.Preprocess.RawCerts,
			len(a.Preprocess.InterceptionIssuers), a.Preprocess.ExcludedCerts)
	}
}
