// Command mtlsload is the load/chaos/soak harness for mtlsd: it
// streams a generated dataset into a live log directory at a target
// rate (sustained plus periodic bursts), injects the faults a
// production deployment actually sees — log rotation, copytruncate,
// malformed-row storms, SIGKILL of the daemon, slow-disk episodes —
// and then proves the daemon survived them:
//
//   - ingestion lag (file size minus consumed offset) stays bounded,
//   - the /metrics SLO series are alive and non-degenerate,
//   - the fully drained daemon's reports deep-equal an offline batch
//     run (internal/stream fed the identical rows), which in turn
//     matches mtls.Analyze over the same build,
//   - every malformed row landed in the quarantine, none in the engine.
//
// The run's timeline (lag samples, RSS, chaos events) is published as
// a benchmark artifact (-out BENCH_8.json). Exit status is nonzero if
// any assertion fails, so CI can gate on it directly.
//
// Usage:
//
//	go build -o mtlsd ./cmd/mtlsd && go build -o mtlsload ./cmd/mtlsload
//	./mtlsload -mtlsd ./mtlsd -rate 800 -out BENCH_8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	mtls "repro"
	"repro/internal/chaos"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/workload"
	"repro/internal/zeek"
)

// stormMarker tags malformed-storm rows so the quarantine can be
// audited for exactly them.
const stormMarker = "MTLSLOAD-STORM-c41e"

type options struct {
	mtlsd       string
	dir         string
	keep        bool
	spec        string
	scale       int
	seed        uint64
	rate        float64
	tick        time.Duration
	burstEvery  time.Duration
	burstLen    time.Duration
	burstFactor float64
	poll        time.Duration
	ckptEvery   time.Duration
	shards      int
	maxLag      int64
	maxRSS      int64
	store       string
	hotBytes    int64
	chaosModes  string
	stormRows   int
	throttle    int64
	sampleEvery time.Duration
	out         string
	waitDrain   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.mtlsd, "mtlsd", "./mtlsd", "path to the mtlsd binary under test")
	flag.StringVar(&o.dir, "dir", "", "working directory (default: a temp dir, removed unless -keep)")
	flag.BoolVar(&o.keep, "keep", false, "keep the working directory after the run")
	flag.StringVar(&o.spec, "spec", "", "scenario spec YAML driving the generator (\"-\" = stdin; empty = built-in campus spec)")
	flag.IntVar(&o.scale, "scale", 2000, "generator scale divisor (larger = smaller dataset)")
	flag.Uint64Var(&o.seed, "seed", 0, "generator seed (0 = library default)")
	flag.Float64Var(&o.rate, "rate", 800, "sustained connection rows per second")
	flag.DurationVar(&o.tick, "tick", 50*time.Millisecond, "writer tick granularity")
	flag.DurationVar(&o.burstEvery, "burst-every", 10*time.Second, "burst window period (0 disables bursts)")
	flag.DurationVar(&o.burstLen, "burst-len", 2*time.Second, "burst window length")
	flag.Float64Var(&o.burstFactor, "burst-factor", 3, "rate multiplier inside a burst window")
	flag.DurationVar(&o.poll, "poll", 100*time.Millisecond, "daemon log poll interval")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", 2*time.Second, "daemon checkpoint interval")
	flag.IntVar(&o.shards, "shards", 1, "daemon engine shards")
	flag.Int64Var(&o.maxLag, "max-lag-bytes", 64<<20, "fail if sampled ingestion lag ever exceeds this")
	flag.Int64Var(&o.maxRSS, "max-rss-bytes", 0, "fail if sampled daemon VmRSS ever exceeds this (0 = no bound)")
	flag.StringVar(&o.store, "store", "", "daemon state store (passed through as mtlsd -store; empty = daemon default)")
	flag.Int64Var(&o.hotBytes, "hot-bytes", 0, "disk store hot-tier budget (passed through as mtlsd -hot-bytes)")
	flag.StringVar(&o.chaosModes, "chaos", "malformed,rotate,copytruncate,kill,slowdisk",
		"comma-separated fault list (subset of malformed,rotate,copytruncate,kill,slowdisk)")
	flag.IntVar(&o.stormRows, "malformed-rows", 200, "rows per malformed storm")
	flag.Int64Var(&o.throttle, "slowdisk-bytes-per-sec", 128<<10, "append bandwidth during the slow-disk episode")
	flag.DurationVar(&o.sampleEvery, "sample-every", 250*time.Millisecond, "lag/RSS sampling interval")
	flag.StringVar(&o.out, "out", "", "write the benchmark artifact (JSON) to this path")
	flag.DurationVar(&o.waitDrain, "drain-timeout", 2*time.Minute, "final drain deadline")
	flag.Parse()

	if code := run(&o); code != 0 {
		os.Exit(code)
	}
}

// artifact is the BENCH_8.json shape.
type artifact struct {
	Bench  string         `json:"bench"`
	Host   hostInfo       `json:"host"`
	Config map[string]any `json:"config"`
	Totals totals         `json:"totals"`
	Lag    lagSummary     `json:"lag"`
	RSS    rssSummary     `json:"rss"`
	Events []chaos.Event  `json:"events"`
	Verify verifySummary  `json:"verify"`
}

type hostInfo struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

type totals struct {
	Conns           int     `json:"conns"`
	Certs           int     `json:"certs"`
	MalformedRows   int     `json:"malformed_rows"`
	BytesWritten    int64   `json:"bytes_written"`
	DurationSec     float64 `json:"duration_sec"`
	AchievedRowsSec float64 `json:"achieved_rows_per_sec"`
}

type lagSummary struct {
	MaxBytes int64 `json:"max_bytes"`
	P95Bytes int64 `json:"p95_bytes"`
	Samples  int   `json:"samples"`
}

type rssSummary struct {
	MaxBytes int64 `json:"max_bytes"`
}

type verifySummary struct {
	ReportsChecked  int  `json:"reports_checked"`
	ReportsMatch    bool `json:"reports_match"`
	AnalysisMatch   bool `json:"analysis_match"`
	Drained         bool `json:"drained"`
	QuarantineOK    bool `json:"quarantine_ok"`
	MetricsOK       bool `json:"metrics_ok"`
	LagBounded      bool `json:"lag_bounded"`
	RSSBounded      bool `json:"rss_bounded"`
	DaemonRestarted bool `json:"daemon_restarted"`
}

// harness bundles the run's moving parts.
type harness struct {
	o     *options
	dir   string // working dir
	spec  string // canonical spec file handed to the daemon
	logs  string // live log dir the daemon tails
	base  string // daemon base URL
	addr  string // daemon listen address
	app   *chaos.Appender
	rec   chaos.Recorder
	start time.Time

	mu   sync.Mutex
	proc *chaos.Proc

	// preKill is the /metrics exposition captured just before SIGKILL:
	// counters reset on restart, so chaos detected before the kill is
	// only visible in this snapshot.
	preKill string

	fails []string
}

func (h *harness) failf(format string, args ...any) {
	h.fails = append(h.fails, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
}

func (h *harness) elapsed() float64 { return time.Since(h.start).Seconds() }

func (h *harness) event(kind, detail string) {
	h.rec.Record(h.elapsed(), kind, detail)
	fmt.Printf("[%7.2fs] %s %s\n", h.elapsed(), kind, detail)
}

// daemonArgs are the flags every (re)start of the daemon uses; the
// checkpoint path is what makes a restart a restore.
func (h *harness) daemonArgs() []string {
	args := []string{
		"-logs", h.logs,
		"-listen", h.addr,
		"-poll", h.o.poll.String(),
		"-checkpoint", filepath.Join(h.dir, "checkpoint"),
		"-checkpoint-every", h.o.ckptEvery.String(),
		"-spec", h.spec,
		"-scale", strconv.Itoa(h.o.scale),
		"-seed", strconv.FormatUint(h.o.seed, 10),
		"-shards", strconv.Itoa(h.o.shards),
		"-quarantine", filepath.Join(h.dir, "quarantine.log"),
		"-log-level", "warn",
	}
	if h.o.store != "" {
		args = append(args, "-store", h.o.store)
		if h.o.store == "disk" {
			// The scratch directory survives restarts but carries no
			// durable state — the restore path rebuilds the tiers from
			// the checkpoint, exactly as a fresh host would.
			args = append(args, "-store-dir", filepath.Join(h.dir, "store"))
		}
		if h.o.hotBytes > 0 {
			args = append(args, "-hot-bytes", strconv.FormatInt(h.o.hotBytes, 10))
		}
	}
	return args
}

func (h *harness) startDaemon() error {
	p, err := chaos.StartProc(h.o.mtlsd, h.daemonArgs(), filepath.Join(h.dir, "mtlsd.log"))
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.proc = p
	h.mu.Unlock()
	return chaos.WaitHealthy(h.base, 15*time.Second)
}

func (h *harness) currentProc() *chaos.Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.proc
}

func run(o *options) int {
	h := &harness{o: o, dir: o.dir}
	if h.dir == "" {
		d, err := os.MkdirTemp("", "mtlsload-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		h.dir = d
		if !o.keep {
			defer os.RemoveAll(d)
		}
	} else if err := os.MkdirAll(h.dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if o.keep {
		fmt.Printf("working dir: %s\n", h.dir)
	}
	h.logs = filepath.Join(h.dir, "logs")
	h.app = chaos.NewAppender(h.logs)

	modes := map[string]bool{}
	for _, m := range strings.Split(o.chaosModes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			modes[m] = true
		}
	}

	// The dataset: one deterministic build is both the traffic source
	// and the verification oracle. The x509 rows the daemon will see
	// are the serialized form — write once to scratch and read back so
	// writer quirks (ordering, encoding) match the live stream exactly.
	spec := mtls.CampusSpec()
	if o.spec != "" {
		var err error
		if spec, err = mtls.LoadSpec(o.spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	genOpts := []mtls.GenerateOption{mtls.WithScale(o.scale)}
	if o.seed != 0 {
		genOpts = append(genOpts, mtls.WithSeed(o.seed))
	}
	fmt.Printf("generating dataset (scale %d)...\n", o.scale)
	build, err := mtls.Generate(spec, genOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The daemon rebuilds the same analysis context from the same spec;
	// hand it the canonical rendering so both sides compile one source.
	h.spec = filepath.Join(h.dir, "workload.spec.yaml")
	if err := os.WriteFile(h.spec, []byte(scenario.Render(spec)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	conns := build.Raw.Conns
	certs, err := certRows(build, h.dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("dataset: %d conn rows, %d cert rows\n", len(conns), len(certs))

	// Fingerprinted cohorts need ssl.log's 14-column schema from the
	// first header on, or the daemon would tail fingerprint-free rows
	// and diverge from the offline oracle.
	for i := range conns {
		if conns[i].JA3 != "" || conns[i].JA4 != "" {
			h.app.Extended = true
			break
		}
	}

	if err := h.app.Init(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Pick a port by binding and releasing it; the daemon rebinds the
	// same address on every restart so the base URL stays stable.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	h.addr = ln.Addr().String()
	h.base = "http://" + h.addr
	ln.Close()

	h.start = time.Now()
	if err := h.startDaemon(); err != nil {
		fmt.Fprintf(os.Stderr, "start mtlsd: %v\n", err)
		return 1
	}
	defer func() {
		if p := h.currentProc(); p != nil && !p.Exited() {
			p.Stop(10 * time.Second)
		}
	}()
	h.event("start", "daemon "+h.base)

	// Sampler: lag + RSS timeline for the artifact. Fetch failures are
	// expected inside the kill window and simply skipped.
	sampleStop := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		t := time.NewTicker(o.sampleEvery)
		defer t.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-t.C:
			}
			st, err := chaos.FetchStats(h.base)
			if err != nil {
				continue
			}
			var rss int64
			if p := h.currentProc(); p != nil {
				rss = p.RSSBytes()
			}
			h.mu.Lock()
			h.rec.Observe(chaos.Sample{
				At: h.elapsed(), Conns: st.ConnsIngested, Certs: st.CertsIngested,
				LagSSL: st.TailLag["ssl"], LagX509: st.TailLag["x509"], RSSBytes: rss,
			})
			h.mu.Unlock()
		}
	}()

	verify := h.streamWithChaos(conns, certs, modes)
	close(sampleStop)
	sampleDone.Wait()
	duration := h.elapsed()

	// Final drain: everything written must be ingested and the lag
	// gauges zero before the report comparison is meaningful.
	st, err := chaos.WaitDrained(h.base, uint64(len(conns)), uint64(len(certs)), o.waitDrain)
	if err != nil {
		h.failf("final drain: %v", err)
	} else {
		verify.Drained = true
		h.event("drained", fmt.Sprintf("conns=%d certs=%d", st.ConnsIngested, st.CertsIngested))
	}
	if st.ConnsIngested != uint64(len(conns)) {
		h.failf("daemon ingested %d conns, wrote %d (loss or duplication across chaos)",
			st.ConnsIngested, len(conns))
		verify.Drained = false
	}
	if st.CertsIngested != uint64(len(certs)) {
		h.failf("daemon ingested %d certs, wrote %d", st.CertsIngested, len(certs))
		verify.Drained = false
	}

	verify.LagBounded = true
	if maxLag := h.rec.MaxLag(); maxLag > o.maxLag {
		h.failf("ingestion lag peaked at %d bytes, bound %d", maxLag, o.maxLag)
		verify.LagBounded = false
	}
	verify.RSSBounded = true
	if o.maxRSS > 0 {
		if maxRSS := h.rec.MaxRSS(); maxRSS > o.maxRSS {
			h.failf("daemon RSS peaked at %d bytes, bound %d (hot tier not holding its budget?)", maxRSS, o.maxRSS)
			verify.RSSBounded = false
		}
	}

	if modes["malformed"] {
		verify.QuarantineOK = h.checkQuarantine()
	} else {
		verify.QuarantineOK = true
	}
	verify.MetricsOK = h.checkMetrics(modes)
	h.checkReports(build, conns, certs, &verify)

	art := artifact{
		Bench: "mtlsload-soak",
		Host: hostInfo{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GoVersion: runtime.Version()},
		Config: map[string]any{
			"scale": o.scale, "seed": o.seed, "rate": o.rate,
			"burst_every": o.burstEvery.String(), "burst_len": o.burstLen.String(),
			"burst_factor": o.burstFactor, "poll": o.poll.String(),
			"checkpoint_every": o.ckptEvery.String(), "shards": o.shards,
			"chaos": sortedKeys(modes), "malformed_rows": o.stormRows,
			"slowdisk_bytes_per_sec": o.throttle,
			"store": o.store, "hot_bytes": o.hotBytes, "max_rss_bytes": o.maxRSS,
		},
		Totals: totals{
			Conns: len(conns), Certs: len(certs), MalformedRows: stormTotal(modes, o),
			BytesWritten: h.app.BytesWritten(), DurationSec: round2(duration),
			AchievedRowsSec: round2(float64(len(conns)+len(certs)) / duration),
		},
		Lag: lagSummary{MaxBytes: h.rec.MaxLag(), P95Bytes: h.rec.LagQuantile(0.95),
			Samples: len(h.rec.Samples)},
		RSS:    rssSummary{MaxBytes: h.rec.MaxRSS()},
		Events: h.rec.Events,
		Verify: verify,
	}
	if o.out != "" {
		data, _ := json.MarshalIndent(art, "", "  ")
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			h.failf("write %s: %v", o.out, err)
		} else {
			fmt.Printf("artifact written to %s\n", o.out)
		}
	}

	if len(h.fails) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d failure(s):\n", len(h.fails))
		for _, f := range h.fails {
			fmt.Fprintln(os.Stderr, "  - "+f)
		}
		return 1
	}
	fmt.Printf("soak passed: %d rows in %.1fs (%.0f rows/s), max lag %d bytes, %d chaos events\n",
		len(conns)+len(certs), duration, art.Totals.AchievedRowsSec, art.Lag.MaxBytes, len(art.Events))
	return 0
}

// streamWithChaos is the writer loop: paced appends with chaos
// injections keyed to progress fractions of the connection stream.
// Certificate rows ride along proportionally so enrichment data never
// trails far behind the connections that need it.
func (h *harness) streamWithChaos(conns []zeek.SSLRecord, certs []zeek.X509Record, modes map[string]bool) verifySummary {
	var verify verifySummary
	o := h.o
	pacer := &workload.Pacer{Pace: workload.Pace{
		Rate: o.rate, BurstEvery: o.burstEvery, BurstLen: o.burstLen, BurstFactor: o.burstFactor,
	}}

	type trigger struct {
		frac float64
		kind string
		fire func()
	}
	var written, certWritten int // rows appended so far
	drain := func(why string) {
		st, err := chaos.WaitDrained(h.base, uint64(written), uint64(certWritten), 60*time.Second)
		if err != nil {
			h.failf("quiesce before %s: %v", why, err)
			return
		}
		_ = st
	}
	var triggers []trigger
	if modes["malformed"] {
		triggers = append(triggers, trigger{0.20, "malformed", func() {
			if err := h.app.MalformedStorm(chaos.SSLLog, stormMarker, o.stormRows); err != nil {
				h.failf("malformed storm: %v", err)
			}
		}})
	}
	if modes["rotate"] {
		triggers = append(triggers, trigger{0.35, "rotate", func() {
			// Quiesce first: the tailer restarts a rotated file from
			// byte 0, so rows it had not consumed would be lost.
			drain("rotate")
			if err := h.app.Rotate(chaos.SSLLog); err != nil {
				h.failf("rotate: %v", err)
			}
		}})
	}
	if modes["copytruncate"] {
		triggers = append(triggers, trigger{0.50, "copytruncate", func() {
			drain("copytruncate")
			if err := h.app.CopyTruncate(chaos.X509Log); err != nil {
				h.failf("copytruncate: %v", err)
			}
		}})
	}
	if modes["kill"] {
		triggers = append(triggers, trigger{0.65, "kill", func() {
			// A restored tailer resumes from the checkpointed offset
			// with no file identity, so the checkpoint it restores must
			// postdate every rotation: drain, then wait for a checkpoint
			// newer than the drain, then kill.
			drain("kill")
			if body, err := chaos.FetchBody(h.base, "/metrics"); err == nil {
				h.preKill = string(body)
			}
			tDrain := time.Now()
			if _, err := chaos.WaitCheckpointAfter(h.base, tDrain, 30*time.Second); err != nil {
				h.failf("checkpoint before kill: %v", err)
				return
			}
			if err := h.currentProc().Kill(); err != nil {
				h.failf("kill: %v", err)
				return
			}
			h.event("killed", "SIGKILL delivered, restarting")
			if err := h.startDaemon(); err != nil {
				h.failf("restart after kill: %v", err)
				return
			}
			verify.DaemonRestarted = true
			h.rec.Record(h.elapsed(), "restart", "daemon restored from checkpoint")
		}})
	}
	if modes["slowdisk"] {
		triggers = append(triggers, trigger{0.80, "slowdisk-on", func() { h.app.Throttle = o.throttle }})
		triggers = append(triggers, trigger{0.90, "slowdisk-off", func() { h.app.Throttle = 0 }})
	}
	sort.Slice(triggers, func(i, j int) bool { return triggers[i].frac < triggers[j].frac })

	next := 0 // next trigger to fire
	certTarget := func(connIdx int) int {
		if len(conns) == 0 {
			return len(certs)
		}
		return connIdx * len(certs) / len(conns)
	}
	streamStart := time.Now()
	prev := time.Duration(0)
	var stalled time.Duration // time spent inside chaos triggers, excluded from the rate integral
	for written < len(conns) {
		time.Sleep(o.tick)
		elapsed := time.Since(streamStart) - stalled
		n := pacer.Step(elapsed, elapsed-prev)
		prev = elapsed
		if n == 0 {
			continue
		}
		hi := written + n
		if hi > len(conns) {
			hi = len(conns)
		}
		if err := h.app.AppendConns(conns[written:hi]); err != nil {
			h.failf("append conns: %v", err)
			return verify
		}
		written = hi
		if ct := certTarget(written); ct > certWritten {
			if err := h.app.AppendCerts(certs[certWritten:ct]); err != nil {
				h.failf("append certs: %v", err)
				return verify
			}
			certWritten = ct
		}
		frac := float64(written) / float64(len(conns))
		for next < len(triggers) && frac >= triggers[next].frac {
			tr := triggers[next]
			next++
			h.event(tr.kind, fmt.Sprintf("at %.0f%% (%d rows)", tr.frac*100, written))
			fireStart := time.Now()
			tr.fire()
			// A trigger that quiesced or restarted the daemon consumed
			// wall time the pacer must not turn into a catch-up burst.
			stalled += time.Since(fireStart)
		}
	}
	// Tail of the cert stream.
	if certWritten < len(certs) {
		if err := h.app.AppendCerts(certs[certWritten:]); err != nil {
			h.failf("append certs: %v", err)
		}
		certWritten = len(certs)
	}
	// Fire anything not reached (tiny datasets).
	for next < len(triggers) {
		tr := triggers[next]
		next++
		h.event(tr.kind, "at end of stream")
		tr.fire()
	}
	return verify
}

// checkQuarantine asserts every storm row (and only rows, not engine
// state) landed in the quarantine file.
func (h *harness) checkQuarantine() bool {
	data, err := os.ReadFile(filepath.Join(h.dir, "quarantine.log"))
	if err != nil {
		h.failf("read quarantine: %v", err)
		return false
	}
	got := strings.Count(string(data), stormMarker)
	if got != h.o.stormRows {
		h.failf("quarantine holds %d storm rows, want %d", got, h.o.stormRows)
		return false
	}
	return true
}

// checkMetrics asserts the daemon's SLO series are alive and
// non-degenerate after the soak. Counters reset on restart, so the
// checks are existence/shape, not exact totals.
func (h *harness) checkMetrics(modes map[string]bool) bool {
	body, err := chaos.FetchBody(h.base, "/metrics")
	if err != nil {
		h.failf("fetch /metrics: %v", err)
		return false
	}
	text := string(body)
	sumIn := func(text, name string) (float64, bool) {
		var total float64
		found := false
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, name) {
				continue
			}
			rest := line[len(name):]
			if rest != "" && rest[0] != '{' && rest[0] != ' ' {
				continue // longer metric name sharing the prefix
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				continue
			}
			total += v
			found = true
		}
		return total, found
	}
	ok := true
	expect := func(text, name string, min float64, why string) {
		v, found := sumIn(text, name)
		if !found || v < min {
			h.failf("metric %s = %v (found=%v), want >= %v (%s)", name, v, found, min, why)
			ok = false
		}
	}
	expect(text, "stream_conns_ingested_total", 1, "engine ingested the stream")
	expect(text, "mtlsd_checkpoint_writes_total", 1, "periodic checkpoints ran")
	expect(text, "tail_lag_bytes", 0, "lag gauges exported")
	// Rotation counters reset when the kill restarts the daemon; the
	// rotations happen earlier in the schedule, so they are asserted on
	// the exposition snapshotted just before SIGKILL.
	rotText := text
	if modes["kill"] {
		if h.preKill == "" {
			h.failf("no pre-kill /metrics snapshot captured")
			return false
		}
		rotText = h.preKill
	}
	if modes["rotate"] {
		expect(rotText, `tail_rotations_total{file="ssl"}`, 1, "rename rotation detected")
	}
	if modes["copytruncate"] {
		expect(rotText, `tail_rotations_total{file="x509"}`, 1, "copytruncate detected")
	}
	return ok
}

// checkReports fetches every report from the drained daemon and
// deep-compares it against an offline oracle: a fresh stream engine fed
// the identical rows, which itself must agree with the batch
// mtls.Analyze of the build. Daemon == oracle == batch closes the loop
// from "survived chaos" to "still computes the paper".
func (h *harness) checkReports(build *mtls.Build, conns []zeek.SSLRecord, certs []zeek.X509Record, v *verifySummary) {
	in := mtls.InputFromBuild(build)
	in.Raw = nil
	eng, err := stream.New(stream.Config{Input: in})
	if err != nil {
		h.failf("oracle engine: %v", err)
		return
	}
	defer eng.Close()
	eng.IngestCertBatch(certs)
	eng.IngestConnBatch(conns)
	eng.Drain()

	oracleJSON, err := json.Marshal(eng.Analysis())
	if err != nil {
		h.failf("marshal oracle analysis: %v", err)
		return
	}
	batchJSON, err := json.Marshal(mtls.Analyze(build))
	if err != nil {
		h.failf("marshal batch analysis: %v", err)
		return
	}
	v.AnalysisMatch = string(oracleJSON) == string(batchJSON)
	if !v.AnalysisMatch {
		h.failf("offline oracle diverges from mtls.Analyze: the harness rows are not the build")
	}

	names := stream.ReportNames()
	v.ReportsChecked = len(names)
	v.ReportsMatch = true
	for _, name := range names {
		body, err := chaos.FetchBody(h.base, "/api/v1/reports/"+name)
		if err != nil {
			h.failf("fetch report %s: %v", name, err)
			v.ReportsMatch = false
			continue
		}
		want, err := eng.Report(name)
		if err != nil {
			h.failf("oracle report %s: %v", name, err)
			v.ReportsMatch = false
			continue
		}
		// Both sides round-trip through JSON so map ordering and
		// indentation cannot cause false mismatches.
		wantJSON, err := json.Marshal(want)
		if err != nil {
			h.failf("marshal oracle report %s: %v", name, err)
			v.ReportsMatch = false
			continue
		}
		var gotAny, wantAny any
		if err := json.Unmarshal(body, &gotAny); err != nil {
			h.failf("decode daemon report %s: %v", name, err)
			v.ReportsMatch = false
			continue
		}
		if err := json.Unmarshal(wantJSON, &wantAny); err != nil {
			h.failf("decode oracle report %s: %v", name, err)
			v.ReportsMatch = false
			continue
		}
		if !reflect.DeepEqual(gotAny, wantAny) {
			h.failf("report %s: daemon body differs from offline batch", name)
			v.ReportsMatch = false
		}
	}
	if v.ReportsMatch {
		fmt.Printf("verified %d reports against the offline batch oracle\n", len(names))
	}
}

// certRows serializes the build's certificates once and reads them
// back, yielding the exact x509 rows the live stream will carry.
func certRows(build *mtls.Build, dir string) ([]zeek.X509Record, error) {
	scratch := filepath.Join(dir, "scratch")
	if err := mtls.WriteLogs(build.Raw, scratch); err != nil {
		return nil, fmt.Errorf("write scratch logs: %w", err)
	}
	f, err := os.Open(filepath.Join(scratch, "x509.log"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := zeek.ReadX509(f)
	if err != nil {
		return nil, fmt.Errorf("read back x509 rows: %w", err)
	}
	os.RemoveAll(scratch)
	return recs, nil
}

func stormTotal(modes map[string]bool, o *options) int {
	if modes["malformed"] {
		return o.stormRows
	}
	return 0
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func round2(v float64) float64 { return float64(int(v*100)) / 100 }
