package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	mtls "repro"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/zeek"
)

// distribScale keeps the multi-daemon e2e runs fast.
const distribScale = 1000

// writeConnSlice rewrites dir/ssl.log with conns[lo:hi] of the build
// (header included); x509.log is left as WriteLogs produced it — every
// sensor observes the full certificate population, only the connection
// stream is split.
func writeConnSlice(t *testing.T, dir string, build *mtls.Build, lo, hi int) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, "ssl.log"))
	if err != nil {
		t.Fatal(err)
	}
	w := zeek.NewSSLWriter(f)
	for i := lo; i < hi; i++ {
		if err := w.Write(&build.Raw.Conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// freePort reserves an ephemeral port and releases it for a daemon that
// must come back on the same address after a restart.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fetchReports pulls every named report as decoded JSON.
func fetchReports(t *testing.T, base string) map[string]any {
	t.Helper()
	out := map[string]any{}
	for _, name := range stream.ReportNames() {
		code, body := httpGet(t, base+"/api/v1/reports/"+name)
		if code != 200 {
			t.Fatalf("report %s: HTTP %d: %s", name, code, body)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("report %s: %v", name, err)
		}
		out[name] = v
	}
	return out
}

// aggStats polls the aggregator's /api/v1/stats.
func aggStats(t *testing.T, base string) daemonStats {
	t.Helper()
	var st daemonStats
	code, body := httpGet(t, base+"/api/v1/stats")
	if code != 200 {
		t.Fatalf("stats: HTTP %d", code)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDaemonDistrib is the two-process (here: four-goroutine) oracle:
// two sensor daemons tailing disjoint halves of the connection log —
// one single-engine, one sharded — an aggregator pulling both, and a
// union daemon tailing everything. Every report the aggregator serves
// must deep-equal the union daemon's, and the distributed tier's
// identity/health surfaces must be live on both roles.
func TestDaemonDistrib(t *testing.T) {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = distribScale
	build := mtls.GenerateConfig(cfg)
	total := len(build.Raw.Conns)
	half := total / 2

	mkdir := func(lo, hi int) string {
		dir := t.TempDir()
		if err := mtls.WriteLogs(build.Raw, dir); err != nil {
			t.Fatal(err)
		}
		writeConnSlice(t, dir, build, lo, hi)
		return dir
	}
	dirA, dirB, dirU := mkdir(0, half), mkdir(half, total), t.TempDir()
	if err := mtls.WriteLogs(build.Raw, dirU); err != nil {
		t.Fatal(err)
	}

	common := options{listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale}
	oa := common
	oa.role, oa.logs = "sensor", dirA
	ob := common
	ob.role, ob.logs, ob.shards = "sensor", dirB, 2
	ou := common
	ou.logs = dirU

	baseA, cancelA, exitA := startDaemon(t, oa)
	defer func() { cancelA(); <-exitA }()
	baseB, cancelB, exitB := startDaemon(t, ob)
	defer func() { cancelB(); <-exitB }()
	baseU, cancelU, exitU := startDaemon(t, ou)
	defer func() { cancelU(); <-exitU }()

	og := options{
		listen:    "127.0.0.1:0",
		role:      "aggregator",
		sensors:   strings.TrimPrefix(baseA, "http://") + "," + strings.TrimPrefix(baseB, "http://"),
		syncEvery: 50 * time.Millisecond,
		scale:     cfg.CertScale,
	}
	baseG, cancelG, exitG := startDaemon(t, og)
	defer func() { cancelG(); <-exitG }()

	waitConns(t, baseU, uint64(total))
	waitConns(t, baseG, uint64(total))

	// The oracle: aggregated reports deep-equal the union daemon's.
	want := fetchReports(t, baseU)
	got := fetchReports(t, baseG)
	for name := range want {
		if !reflect.DeepEqual(want[name], got[name]) {
			t.Errorf("report %s: aggregator diverged from the union daemon", name)
		}
	}

	// Identity: both roles answer /api/v1/version with the schema set.
	var vi versionInfo
	code, body := httpGet(t, baseA+"/api/v1/version")
	if code != 200 {
		t.Fatalf("sensor version: HTTP %d", code)
	}
	if err := json.Unmarshal([]byte(body), &vi); err != nil {
		t.Fatal(err)
	}
	if vi.Service != "mtlsd" || vi.Role != "sensor" || vi.Shards != 1 || len(vi.SnapshotSchemas) == 0 {
		t.Errorf("sensor version payload: %+v", vi)
	}
	code, body = httpGet(t, baseG+"/api/v1/version")
	if code != 200 {
		t.Fatalf("aggregator version: HTTP %d", code)
	}
	if err := json.Unmarshal([]byte(body), &vi); err != nil {
		t.Fatal(err)
	}
	if vi.Role != "aggregator" || vi.Shards != 0 {
		t.Errorf("aggregator version payload: %+v", vi)
	}

	// Health: per-sensor sync state in the aggregator's stats.
	st := aggStats(t, baseG)
	if st.Role != "aggregator" || len(st.Sensors) != 2 {
		t.Fatalf("aggregator stats: role %q, %d sensors", st.Role, len(st.Sensors))
	}
	for _, s := range st.Sensors {
		if s.Cursor == 0 || s.Syncs == 0 || s.LastError != "" || s.Schema == 0 {
			t.Errorf("sensor status: %+v", s)
		}
	}

	// Monitors do not serve snapshots; sensors do.
	if code, _ := httpGet(t, baseU+"/api/v1/snapshot"); code != 404 {
		t.Errorf("monitor /api/v1/snapshot: HTTP %d, want 404", code)
	}
	if code, _ := httpGet(t, baseB+"/api/v1/snapshot"); code != 200 {
		t.Errorf("sharded sensor /api/v1/snapshot: HTTP %d, want 200", code)
	}

	// The distrib_ metric families are exposed on both sides.
	_, sensorMetrics := httpGet(t, baseA+"/metrics")
	for _, series := range []string{"distrib_snapshots_served_total", "distrib_snapshot_bytes_total"} {
		if !strings.Contains(sensorMetrics, series) {
			t.Errorf("sensor /metrics missing %s", series)
		}
	}
	_, aggMetrics := httpGet(t, baseG+"/metrics")
	for _, series := range []string{"distrib_syncs_total", "distrib_sensor_cursor",
		"distrib_merges_total", "distrib_sensor_last_sync_age_seconds"} {
		if !strings.Contains(aggMetrics, series) {
			t.Errorf("aggregator /metrics missing %s", series)
		}
	}
}

// TestDaemonSensorRestartResume is the robustness e2e: the aggregator
// rides out a sensor outage serving last-good state with the staleness
// visible, and when the sensor comes back from its checkpoint on the
// same address, the cursor resumes on the delta path — never a full
// re-sync.
func TestDaemonSensorRestartResume(t *testing.T) {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = distribScale
	build := mtls.GenerateConfig(cfg)
	total := len(build.Raw.Conns)
	half := total / 2

	dir := t.TempDir()
	if err := mtls.WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	writeConnSlice(t, dir, build, 0, half)

	addr := freePort(t)
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	so := options{
		logs: dir, listen: addr, poll: 50 * time.Millisecond, scale: cfg.CertScale,
		role: "sensor", checkpoint: ckpt, ckptEvery: time.Hour,
	}
	_, cancelS, exitS := startDaemon(t, so)

	baseG, cancelG, exitG := startDaemon(t, options{
		listen: "127.0.0.1:0", role: "aggregator", sensors: addr,
		syncEvery: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() { cancelG(); <-exitG }()
	waitConns(t, baseG, uint64(half))

	// Kill the sensor (clean shutdown writes the checkpoint).
	cancelS()
	if code := <-exitS; code != 0 {
		t.Fatalf("sensor exit code %d", code)
	}

	// Outage: the aggregator keeps serving last-good state and reports
	// the failure per sensor.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := aggStats(t, baseG)
		if len(st.Sensors) == 1 && st.Sensors[0].Errors > 0 && st.Sensors[0].LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregator never reported the dead sensor")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st := aggStats(t, baseG); st.ConnsIngested != uint64(half) {
		t.Errorf("last-good state lost during outage: %d conns", st.ConnsIngested)
	}
	if code, _ := httpGet(t, baseG+"/api/v1/reports/table1"); code != 200 {
		t.Errorf("reports unavailable during outage: HTTP %d", code)
	}
	_, aggMetrics := httpGet(t, baseG+"/metrics")
	if !strings.Contains(aggMetrics, "distrib_sync_errors_total") {
		t.Error("aggregator /metrics missing distrib_sync_errors_total during outage")
	}

	// The rest of the log arrives while the sensor is down.
	f, err := os.OpenFile(filepath.Join(dir, "ssl.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := zeek.NewSSLWriter(f)
	w.SkipHeader()
	for i := half; i < total; i++ {
		if err := w.Write(&build.Raw.Conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart from the checkpoint on the same address.
	_, cancelS2, exitS2 := startDaemon(t, so)
	defer func() { cancelS2(); <-exitS2 }()
	waitConns(t, baseG, uint64(total))

	st := aggStats(t, baseG)
	if st.Sensors[0].FullResyncs != 0 {
		t.Errorf("checkpointed sensor restart forced %d full re-syncs, want delta resume", st.Sensors[0].FullResyncs)
	}
	if st.Sensors[0].LastError != "" {
		t.Errorf("recovered sensor still reports error %q", st.Sensors[0].LastError)
	}

	// Equivalence after recovery: aggregator == fresh engine over the
	// whole dataset.
	in := mtls.InputFromBuild(mtls.GenerateConfig(cfg))
	in.Raw = nil
	ref, err := stream.New(stream.Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, c := range build.Raw.Certs {
		ref.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for i := range build.Raw.Conns {
		ref.IngestConn(&build.Raw.Conns[i])
	}
	ref.Drain()
	got := fetchReports(t, baseG)
	for _, name := range stream.ReportNames() {
		refOut, err := ref.Report(name)
		if err != nil {
			t.Fatal(err)
		}
		refJSON, err := json.Marshal(refOut)
		if err != nil {
			t.Fatal(err)
		}
		var want any
		if err := json.Unmarshal(refJSON, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got[name]) {
			t.Errorf("report %s diverged after sensor restart", name)
		}
	}
}

// TestDaemonRoleValidation pins the CLI contract: misuse exits 2 before
// any state exists.
func TestDaemonRoleValidation(t *testing.T) {
	cases := map[string]options{
		"unknown role":            {role: "relay", logs: "x", listen: "127.0.0.1:0"},
		"sensors without role":    {role: "monitor", logs: "x", sensors: "a:1", listen: "127.0.0.1:0"},
		"aggregator no sensors":   {role: "aggregator", listen: "127.0.0.1:0"},
		"aggregator with logs":    {role: "aggregator", sensors: "a:1", logs: "x", listen: "127.0.0.1:0"},
		"aggregator checkpointed": {role: "aggregator", sensors: "a:1", checkpoint: "c", listen: "127.0.0.1:0"},
	}
	for name, o := range cases {
		if code := run(context.Background(), o, testLogger(t), nil); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}
