// Command mtlsd is the long-running monitor: it tails a directory of
// Zeek-style ssl.log / x509.log files, ingests new rows into the
// incremental analysis engine (internal/stream), and serves every table
// and figure of the paper as JSON over HTTP — continuously, without
// re-reading the logs from scratch.
//
// Endpoints:
//
//	GET /healthz          liveness (200 "ok")
//	GET /stats            engine counters (ingested, dropped, rebuilds, ...)
//	GET /reports/         list of report names
//	GET /reports/{name}   one report, e.g. /reports/table1, /reports/figure5
//
// Usage:
//
//	mtlsgen -out ./data                # produce logs (once, or keep appending)
//	mtlsd -logs ./data -listen :8411   # tail and serve
//	curl -s localhost:8411/reports/table1 | jq .
//
// With -checkpoint the engine state is periodically persisted (atomic
// write) together with the log-file byte offsets; on restart mtlsd
// restores the state and resumes tailing exactly where it stopped, so
// reports after the restart match an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	mtls "repro"
	"repro/internal/stream"
	"repro/internal/zeek"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mtlsd: ")

	logs := flag.String("logs", "", "directory with ssl.log/x509.log to tail (required)")
	listen := flag.String("listen", "127.0.0.1:8411", "HTTP listen address")
	poll := flag.Duration("poll", 2*time.Second, "log poll interval")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (restore on start, persist periodically)")
	ckptEvery := flag.Duration("checkpoint-every", time.Minute, "checkpoint interval (0 = only on shutdown)")
	retention := flag.Duration("retention", 0, "connection retention window (0 = keep everything)")
	buffer := flag.Int("buffer", 0, "ingest buffer size (0 = engine default)")
	drop := flag.Bool("drop", false, "shed events when the buffer is full instead of blocking the tailer")
	scale := flag.Int("scale", 0, "context scale divisor (must match the generator's)")
	seed := flag.Uint64("seed", 0, "context seed (must match the generator's)")
	workers := flag.Int("workers", 0, "report workers: 0 = one per CPU, 1 = serial")
	flag.Parse()

	if *logs == "" {
		log.Fatal("-logs is required")
	}

	// The analysis context (trust bundle, CT log, association map) is
	// deterministic in (seed, scale); regenerate it the way mtlsreport
	// does so the daemon agrees with the generator that wrote the logs.
	cfg := mtls.DefaultConfig()
	if *scale > 0 {
		cfg.CertScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	in := mtls.InputFromBuild(mtls.Generate(cfg))
	in.Raw = nil
	in.Workers = *workers

	scfg := stream.Config{Input: in, Buffer: *buffer, Retention: *retention}
	if *drop {
		scfg.Policy = stream.Drop
	}

	sslTail := zeek.NewSSLTail(filepath.Join(*logs, "ssl.log"))
	x509Tail := zeek.NewX509Tail(filepath.Join(*logs, "x509.log"))

	var eng *stream.Engine
	if *checkpoint != "" {
		if e, cursor, err := stream.Restore(scfg, *checkpoint); err == nil {
			eng = e
			sslTail.SetOffset(cursor["ssl.log"])
			x509Tail.SetOffset(cursor["x509.log"])
			st := e.Stats()
			log.Printf("restored checkpoint %s: %d conns, %d certs, resuming at ssl.log:%d x509.log:%d",
				*checkpoint, st.ConnsIngested, st.UniqueCerts, cursor["ssl.log"], cursor["x509.log"])
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("restore %s: %v", *checkpoint, err)
		}
	}
	if eng == nil {
		e, err := stream.New(scfg)
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	}
	defer eng.Close()

	// Tailer: single producer goroutine. Certificates are polled before
	// connections each cycle so enrichment resolves chains on first try
	// (out-of-order arrivals still converge, via a rebuild).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tailerDone := make(chan struct{})
	go func() {
		defer close(tailerDone)
		ticker := time.NewTicker(*poll)
		defer ticker.Stop()
		var lastCkpt time.Time
		for {
			certs, err := x509Tail.Poll()
			if err != nil {
				log.Printf("x509.log: %v", err)
			}
			for i := range certs {
				eng.IngestCert(&certs[i])
			}
			conns, err := sslTail.Poll()
			if err != nil {
				log.Printf("ssl.log: %v", err)
			}
			for i := range conns {
				eng.IngestConn(&conns[i])
			}
			if len(certs) > 0 || len(conns) > 0 {
				log.Printf("ingested %d conns, %d certs", len(conns), len(certs))
			}
			if *checkpoint != "" && *ckptEvery > 0 && time.Since(lastCkpt) >= *ckptEvery {
				if err := writeCheckpoint(eng, sslTail, x509Tail, *checkpoint); err != nil {
					log.Printf("checkpoint: %v", err)
				}
				lastCkpt = time.Now()
			}
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("/reports/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(strings.TrimPrefix(r.URL.Path, "/reports/"), "/")
		if name == "" {
			writeJSON(w, stream.ReportNames())
			return
		}
		out, err := eng.Report(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, out)
	})

	srv := &http.Server{Addr: *listen, Handler: mux}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	log.Printf("serving on http://%s (reports: /reports/)", *listen)

	select {
	case err := <-srvErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	<-tailerDone // no producer left; offsets are final
	if *checkpoint != "" {
		if err := writeCheckpoint(eng, sslTail, x509Tail, *checkpoint); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("checkpointed to %s", *checkpoint)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
}

// writeCheckpoint drains the engine (so the state covers everything the
// tails have read) and persists it together with the tail offsets. Only
// the tailer goroutine produces events, and it is the caller here, so
// after Drain the offsets are exactly consistent with the applied state.
func writeCheckpoint(eng *stream.Engine, ssl *zeek.SSLTail, x509 *zeek.X509Tail, path string) error {
	eng.Drain()
	return eng.WriteCheckpoint(path, map[string]int64{
		"ssl.log":  ssl.Offset(),
		"x509.log": x509.Offset(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
