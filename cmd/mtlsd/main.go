// Command mtlsd is the long-running monitor: it tails a directory of
// Zeek-style ssl.log / x509.log files, ingests new rows into the
// incremental analysis engine (internal/stream), and serves every table
// and figure of the paper as JSON over HTTP — continuously, without
// re-reading the logs from scratch.
//
// Endpoints (canonical, versioned; errors are a JSON envelope
// {"error": ..., "code": ...}):
//
//	GET /api/v1/healthz          liveness (200 "ok")
//	GET /api/v1/version          build info, role, supported snapshot schemas
//	GET /api/v1/stats            engine counters (ingested, dropped, rebuilds, ...)
//	GET /api/v1/reports          list of report names
//	GET /api/v1/reports/{name}   one report, e.g. .../reports/table1
//	GET /api/v1/snapshot         serialized engine state (-role sensor only)
//	GET /metrics                 Prometheus text exposition (?format=json for JSON)
//	GET /debug/pprof/...         runtime profiles (only with -pprof)
//
// The original unversioned paths (/healthz, /stats, /reports/...) remain
// as aliases that serve identical bodies and additionally carry a
// "Deprecation: true" header plus a Link to the versioned successor.
//
// Usage:
//
//	mtlsgen -out ./data                # produce logs (once, or keep appending)
//	mtlsd -logs ./data -listen :8411   # tail and serve
//	mtlsd -logs ./data -shards 4       # shard ingest across 4 engines
//	curl -s localhost:8411/api/v1/reports/table1 | jq .
//	curl -s localhost:8411/metrics     # ingest lag, rebuild churn, HTTP latency
//
// With -shards n (0 = one per CPU) ingest is routed across n independent
// engine shards (internal/stream.Sharded): connections by UID hash,
// certificates to every shard that references them. Reports merge the
// shard states on demand and are identical to a single-engine run at any
// shard count. Per-shard series carry a shard="i" label on /metrics, and
// -checkpoint names a directory (manifest + one file per shard) instead
// of a single file.
//
// The distributed tier stacks two roles on the same binary. A sensor is
// a monitor that additionally serializes its engine state over
// GET /api/v1/snapshot (full snapshots, or deltas from a cursor); an
// aggregator tails nothing — it pulls N sensors on an interval and
// serves the merged analysis through the same /api/v1 report surface:
//
//	mtlsd -role sensor -logs ./site-a -listen :8411
//	mtlsd -role sensor -logs ./site-b -listen :8412
//	mtlsd -role aggregator -sensors localhost:8411,localhost:8412 -listen :8400
//	curl -s localhost:8400/api/v1/reports/table1 | jq .
//
// An unreachable sensor backs off exponentially while the aggregator
// keeps serving its last-good merge; per-sensor cursors, sync ages, and
// errors appear in /api/v1/stats and /metrics.
//
// With -checkpoint the engine state is periodically persisted (atomic
// write) together with the log-file byte offsets; on restart mtlsd
// restores the state and resumes tailing exactly where it stopped, so
// reports after the restart match an uninterrupted run. Every shutdown
// path — SIGINT/SIGTERM, or the HTTP server failing — drains the tailer
// and writes a final checkpoint before exiting; nothing short of a kill
// loses tailed state.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	mtls "repro"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/zeek"
)

// options carries every flag so run is testable without a real command
// line.
type options struct {
	logs          string
	listen        string
	poll          time.Duration
	checkpoint    string
	ckptEvery     time.Duration
	retention     time.Duration
	buffer        int
	batch         int
	drop          bool
	spec          string
	scale         int
	seed          uint64
	workers       int
	shards        int
	pprof         bool
	logLevel      string
	strict        bool
	quarantine    string
	quarantineMax int64
	role          string
	sensors       string
	syncEvery     time.Duration
	store         string
	storeDir      string
	hotBytes      int64
}

func main() {
	var o options
	flag.StringVar(&o.logs, "logs", "", "directory with ssl.log/x509.log to tail (required)")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8411", "HTTP listen address")
	flag.DurationVar(&o.poll, "poll", 2*time.Second, "log poll interval")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint path (restore on start, persist periodically); fresh paths get the incremental directory format, an existing legacy file is rewritten in place")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", time.Minute, "checkpoint interval (0 = only on shutdown)")
	flag.DurationVar(&o.retention, "retention", 0, "connection retention window (0 = keep everything)")
	flag.IntVar(&o.buffer, "buffer", 0, "ingest buffer size (0 = engine default)")
	flag.IntVar(&o.batch, "batch", zeek.DefaultBatchSize, "records per ingest batch (1 = per-event ingest)")
	flag.BoolVar(&o.drop, "drop", false, "shed events when the buffer is full instead of blocking the tailer")
	flag.StringVar(&o.spec, "spec", "", "scenario spec YAML the generator used (\"-\" = stdin; empty = built-in campus spec)")
	flag.IntVar(&o.scale, "scale", 0, "context scale divisor (must match the generator's)")
	flag.Uint64Var(&o.seed, "seed", 0, "context seed (must match the generator's)")
	flag.IntVar(&o.workers, "workers", 0, "report workers: 0 = one per CPU, 1 = serial")
	flag.IntVar(&o.shards, "shards", 1, "engine shards: 1 = single engine, 0 = one per CPU, n = exactly n")
	flag.BoolVar(&o.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.logLevel, "log-level", "info", "log level: debug, info, warn, error")
	flag.BoolVar(&o.strict, "strict", false, "fail-stop on malformed log rows instead of quarantining them")
	flag.StringVar(&o.quarantine, "quarantine", "", "append rejected rows to this file (permissive mode only)")
	flag.Int64Var(&o.quarantineMax, "quarantine-max-bytes", zeek.DefaultQuarantineMaxBytes,
		"quarantine size cap; overflow rows are dropped and counted (0 = unlimited)")
	flag.StringVar(&o.store, "store", "memory", "engine state store: memory, or disk (hot/cold tiering under -store-dir)")
	flag.StringVar(&o.storeDir, "store-dir", "", "scratch directory for the disk store (required with -store disk)")
	flag.Int64Var(&o.hotBytes, "hot-bytes", 0, "disk store hot-tier budget in bytes (0 = store default)")
	flag.StringVar(&o.role, "role", "monitor", "monitor, sensor (monitor + /api/v1/snapshot), or aggregator (pulls -sensors)")
	flag.StringVar(&o.sensors, "sensors", "", "comma-separated sensor addresses (aggregator role only)")
	flag.DurationVar(&o.syncEvery, "sync-every", 5*time.Second, "aggregator sensor pull interval")
	flag.Parse()

	logger := newLogger(os.Stderr, o.logLevel)
	os.Exit(run(context.Background(), o, logger, nil))
}

// contextInput rebuilds the deterministic analysis context (trust
// bundle, CT log, association map) from the scenario spec the generator
// compiled — or the built-in campus spec — with the -scale/-seed flag
// overrides applied the same way mtlsgen applies them.
func contextInput(o options) (*core.Input, error) {
	spec := mtls.CampusSpec()
	if o.spec != "" {
		var err error
		if spec, err = mtls.LoadSpec(o.spec); err != nil {
			return nil, err
		}
	}
	var opts []mtls.GenerateOption
	if o.scale > 0 {
		opts = append(opts, mtls.WithScale(o.scale))
	}
	if o.seed != 0 {
		opts = append(opts, mtls.WithSeed(o.seed))
	}
	build, err := mtls.Generate(spec, opts...)
	if err != nil {
		return nil, err
	}
	in := mtls.InputFromBuild(build)
	in.Raw = nil
	in.Workers = o.workers
	return in, nil
}

// newLogger builds the daemon's structured logger.
func newLogger(w *os.File, level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl}))
}

// run is the daemon body; main exits with its return value. Splitting it
// from main keeps every teardown step (engine close, final checkpoint)
// on the normal return path — the old log.Fatal exit skipped the
// deferred close and the final checkpoint, losing hours of tailed state
// to a port conflict. ready, when non-nil, is invoked with the bound
// listen address once the HTTP socket is open (tests listen on :0).
func run(ctx context.Context, o options, logger *slog.Logger, ready func(addr string)) int {
	switch o.role {
	case "", "monitor", "sensor":
		if o.sensors != "" {
			logger.Error("-sensors requires -role aggregator")
			return 2
		}
	case "aggregator":
		return runAggregator(ctx, o, logger, ready)
	default:
		logger.Error("-role must be monitor, sensor, or aggregator", "role", o.role)
		return 2
	}
	if o.logs == "" {
		logger.Error("-logs is required")
		return 2
	}

	// Bind the socket first: a port conflict must fail fast, before any
	// state exists that a failed exit could lose.
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		logger.Error("listen", "addr", o.listen, "err", err)
		return 1
	}

	reg := metrics.New()

	// The analysis context (trust bundle, CT log, association map) is
	// deterministic in (spec, seed, scale); regenerate it from the same
	// scenario spec the generator compiled so the daemon agrees with
	// whatever wrote the logs.
	in, err := contextInput(o)
	if err != nil {
		logger.Error("build analysis context", "err", err)
		ln.Close()
		return 2
	}

	// A sensor is a monitor whose engine additionally stamps every
	// admitted event with an export sequence, so /api/v1/snapshot can
	// serve cursor deltas.
	scfg := stream.Config{Input: in, Buffer: o.buffer, Retention: o.retention, Metrics: reg,
		TrackExport: o.role == "sensor",
		Store:       o.store, StoreDir: o.storeDir, HotBytes: o.hotBytes}
	if o.drop {
		scfg.Policy = stream.Drop
	}
	if o.store == "disk" && o.storeDir == "" {
		logger.Error("-store disk requires -store-dir")
		ln.Close()
		return 2
	}

	// Malformed-row policy. Permissive (the default) quarantines bad rows
	// and keeps tailing — one corrupt line must not wedge a monitor that
	// runs for months; -strict restores fail-stop for operators who would
	// rather halt than skip. RejectTotals pre-registers the zero-valued
	// rejection series so /metrics shows the family from boot.
	zopts := zeek.Options{Strict: o.strict, Metrics: reg}
	if o.quarantine != "" {
		if o.strict {
			logger.Error("-quarantine is meaningless with -strict (strict mode never skips rows)")
			ln.Close()
			return 2
		}
		q, err := zeek.OpenQuarantine(o.quarantine)
		if err != nil {
			logger.Error("open quarantine", "path", o.quarantine, "err", err)
			ln.Close()
			return 1
		}
		defer q.Close()
		q.SetMaxBytes(o.quarantineMax)
		q.Instrument(reg)
		zopts.Quarantine = q
	}
	zeek.RejectTotals(reg)

	sslTail := zeek.NewSSLTail(filepath.Join(o.logs, "ssl.log"))
	x509Tail := zeek.NewX509Tail(filepath.Join(o.logs, "x509.log"))
	sslTail.Instrument(reg)
	x509Tail.Instrument(reg)
	sslTail.SetOptions(zopts)
	x509Tail.SetOptions(zopts)

	// Resolve the shard count up front: routing and the checkpoint layout
	// are functions of it. 1 keeps the classic single-engine deployment
	// (unlabeled stream_* series, single-file checkpoint); 0 (one per CPU)
	// or n>1 runs the sharded engine, whose per-shard series carry a
	// shard="i" label and whose -checkpoint names a directory.
	nShards := o.shards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}

	var eng engine
	restored := func(which string, cursor map[string]int64, st stream.Stats) {
		sslTail.SetOffset(cursor["ssl.log"])
		x509Tail.SetOffset(cursor["x509.log"])
		logger.Info("restored checkpoint", "path", o.checkpoint, "mode", which,
			"conns", st.ConnsIngested, "certs", st.UniqueCerts,
			"ssl_offset", cursor["ssl.log"], "x509_offset", cursor["x509.log"])
	}
	if nShards > 1 {
		if o.checkpoint != "" {
			if s, cursor, err := stream.RestoreSharded(scfg, nShards, o.checkpoint); err == nil {
				eng = s
				restored(fmt.Sprintf("sharded/%d", nShards), cursor, s.Stats())
			} else if !errors.Is(err, os.ErrNotExist) {
				logger.Error("restore checkpoint", "path", o.checkpoint, "err", err)
				ln.Close()
				return 1
			}
		}
		if eng == nil {
			s, err := stream.NewSharded(nShards, scfg)
			if err != nil {
				logger.Error("start engine", "shards", nShards, "err", err)
				ln.Close()
				return 1
			}
			eng = s
		}
	} else {
		if o.checkpoint != "" {
			if e, cursor, err := stream.Restore(scfg, o.checkpoint); err == nil {
				eng = e
				restored("single", cursor, e.Stats())
			} else if !errors.Is(err, os.ErrNotExist) {
				logger.Error("restore checkpoint", "path", o.checkpoint, "err", err)
				ln.Close()
				return 1
			}
		}
		if eng == nil {
			e, err := stream.New(scfg)
			if err != nil {
				logger.Error("start engine", "err", err)
				ln.Close()
				return 1
			}
			eng = e
		}
	}
	defer eng.Close()

	ckptMetrics := struct {
		writes *metrics.Counter
		errs   *metrics.Counter
	}{
		writes: reg.Counter("mtlsd_checkpoint_writes_total", "checkpoints attempted by the daemon"),
		errs:   reg.Counter("mtlsd_checkpoint_errors_total", "checkpoint attempts that failed"),
	}
	checkpoint := func(final bool) {
		if o.checkpoint == "" {
			return
		}
		ckptMetrics.writes.Inc()
		if err := writeCheckpoint(eng, sslTail, x509Tail, o.checkpoint); err != nil {
			ckptMetrics.errs.Inc()
			logger.Error("checkpoint", "path", o.checkpoint, "final", final, "err", err)
		} else if final {
			logger.Info("final checkpoint written", "path", o.checkpoint)
		}
	}

	// Tailer: single producer goroutine. Certificates are polled before
	// connections within each round so enrichment resolves chains on
	// first try (out-of-order arrivals still converge, via a rebuild).
	// Each Poll consumes at most one chunk of backlog; catchUp interleaves
	// the two logs chunk-for-chunk so a hot file cannot starve the other,
	// and caps the rounds per tick so checkpoints stay on schedule.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	tailerDone := make(chan struct{})
	go func() {
		defer close(tailerDone)
		ticker := time.NewTicker(o.poll)
		defer ticker.Stop()
		var lastCkpt time.Time
		// Persistent poll errors (an unreadable disk, or strict mode
		// parked on a malformed row) back off exponentially instead of
		// burning a full-rate retry loop: the offset does not advance, so
		// retrying every poll interval re-reads the same failure.
		x509Backoff := newBackoff(o.poll)
		sslBackoff := newBackoff(o.poll)
		x509Errs := reg.Counter(tailErrMetric, tailErrHelp, "file", "x509.log")
		sslErrs := reg.Counter(tailErrMetric, tailErrHelp, "file", "ssl.log")
		// Each Poll already yields a record slice; hand it to the engine
		// in -batch sized runs so one channel hop (and one lock
		// acquisition downstream) amortizes over the whole run. -batch=1
		// keeps the per-event path for bisecting behavior differences.
		ingestCerts := func(certs []core.CertRecord) {
			if o.batch <= 1 {
				for i := range certs {
					eng.IngestCert(&certs[i])
				}
				return
			}
			for lo := 0; lo < len(certs); lo += o.batch {
				eng.IngestCertBatch(certs[lo:min(lo+o.batch, len(certs))])
			}
		}
		ingestConns := func(conns []core.ConnRecord) {
			if o.batch <= 1 {
				for i := range conns {
					eng.IngestConn(&conns[i])
				}
				return
			}
			for lo := 0; lo < len(conns); lo += o.batch {
				eng.IngestConnBatch(conns[lo:min(lo+o.batch, len(conns))])
			}
		}
		x509Src := &tailSource{bo: x509Backoff, poll: func() (int, error) {
			certs, err := x509Tail.Poll()
			ingestCerts(certs)
			return len(certs), err
		}, fail: func(err error, wait time.Duration) {
			x509Errs.Inc()
			logger.Warn("tail x509.log", "err", err, "backoff", wait)
		}}
		sslSrc := &tailSource{bo: sslBackoff, poll: func() (int, error) {
			conns, err := sslTail.Poll()
			ingestConns(conns)
			return len(conns), err
		}, fail: func(err error, wait time.Duration) {
			sslErrs.Inc()
			logger.Warn("tail ssl.log", "err", err, "backoff", wait)
		}}
		srcs := []*tailSource{x509Src, sslSrc}
		for {
			counts := catchUp(ctx, catchUpRounds, srcs)
			nCerts, nConns := counts[0], counts[1]
			if nCerts > 0 || nConns > 0 {
				logger.Debug("ingested", "conns", nConns, "certs", nCerts)
			}
			if o.ckptEvery > 0 && time.Since(lastCkpt) >= o.ckptEvery {
				checkpoint(false)
				lastCkpt = time.Now()
			}
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()

	role := o.role
	if role == "" {
		role = "monitor"
	}
	info := daemonInfo{role: role, shards: nShards}
	if role == "sensor" {
		// The engine was built with TrackExport, so the concrete type
		// (Engine or Sharded) always satisfies the export surface.
		info.sensor = distrib.NewSensor(eng.(distrib.Exporter), reg, logger)
	}
	srv := &http.Server{Handler: newMux(eng, reg, logger, o.pprof, info)}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(), "role", role, "shards", nShards, "pprof", o.pprof)
	if ready != nil {
		ready(ln.Addr().String())
	}

	code := 0
	select {
	case err := <-srvErr:
		if !errors.Is(err, http.ErrServerClosed) {
			// Server died underneath us; shut the rest down cleanly —
			// the tailer keeps its state, and the final checkpoint below
			// still runs.
			logger.Error("http server", "err", err)
			code = 1
		}
		stop() // release the tailer
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
	}

	<-tailerDone // no producer left; offsets are final
	checkpoint(true)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return code
}

// runAggregator is the -role aggregator body: no tailers, no engine, no
// checkpoint — the process pulls the configured sensors on -sync-every
// and serves their merged analysis through the same /api/v1 surface.
func runAggregator(ctx context.Context, o options, logger *slog.Logger, ready func(addr string)) int {
	if o.sensors == "" {
		logger.Error("-role aggregator requires -sensors")
		return 2
	}
	if o.logs != "" {
		logger.Error("-logs is meaningless with -role aggregator (sensors tail the logs)")
		return 2
	}
	if o.checkpoint != "" {
		logger.Error("-checkpoint is not supported with -role aggregator (sensors own durable state)")
		return 2
	}
	var sensors []string
	for _, s := range strings.Split(o.sensors, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sensors = append(sensors, s)
		}
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		logger.Error("listen", "addr", o.listen, "err", err)
		return 1
	}
	reg := metrics.New()

	in, err := contextInput(o)
	if err != nil {
		logger.Error("build analysis context", "err", err)
		ln.Close()
		return 2
	}

	agg, err := distrib.NewAggregator(distrib.Config{
		Input:    in,
		Sensors:  sensors,
		Interval: o.syncEvery,
		Metrics:  reg,
		Logger:   logger,
	})
	if err != nil {
		logger.Error("start aggregator", "err", err)
		ln.Close()
		return 1
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		agg.Run(ctx)
	}()

	srv := &http.Server{Handler: newMux(agg, reg, logger, o.pprof,
		daemonInfo{role: "aggregator", agg: agg})}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(), "role", "aggregator",
		"sensors", len(sensors), "sync_every", o.syncEvery.String())
	if ready != nil {
		ready(ln.Addr().String())
	}

	code := 0
	select {
	case err := <-srvErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("http server", "err", err)
			code = 1
		}
		stop()
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
	}
	<-aggDone

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return code
}

// daemonInfo is the deployment identity newMux folds into /api/v1/version
// and /api/v1/stats: which role this process plays, how many engine
// shards it runs, the snapshot handler to mount (sensor role), and the
// aggregator whose per-sensor sync state the stats should carry.
type daemonInfo struct {
	role   string
	shards int
	sensor *distrib.Sensor
	agg    *distrib.Aggregator
}

// versionInfo is the /api/v1/version payload: the facade's build
// identity plus this daemon's deployment shape.
type versionInfo struct {
	mtls.Info
	Role   string `json:"role"`
	Shards int    `json:"shards"`
}

// newMux assembles the daemon's routes with per-endpoint request
// counters and latency histograms. The canonical API lives under
// /api/v1 and reports failures as a JSON envelope {"error", "code"};
// the original unversioned paths serve identical bodies and add a
// Deprecation header pointing at the successor. The reports handler
// distinguishes an unknown report name (404, a client mistake) from a
// materialization failure (500, our bug).
func newMux(eng reporter, reg *metrics.Registry, logger *slog.Logger, withPprof bool, info daemonInfo) *http.ServeMux {
	if info.role == "" {
		info.role = "monitor"
	}
	mux := http.NewServeMux()
	handle := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(path, instrument(reg, path, h))
	}
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
	version := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, versionInfo{Info: mtls.BuildInfo("mtlsd"), Role: info.role, Shards: info.shards})
	}
	stats := func(w http.ResponseWriter, r *http.Request) {
		total, byReason := zeek.RejectTotals(reg)
		ds := daemonStats{
			Stats:            eng.Stats(),
			Role:             info.role,
			Shards:           info.shards,
			RowsRejected:     total,
			RejectedByReason: byReason,
			TailErrors:       tailErrTotal(reg),
		}
		if info.agg != nil {
			ds.Sensors = info.agg.SensorStatuses()
		} else {
			ds.TailLag = tailLag(reg)
		}
		writeJSON(w, ds)
	}
	reports := func(prefix string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			name := strings.Trim(strings.TrimPrefix(r.URL.Path, prefix), "/")
			if name == "" {
				writeJSON(w, stream.ReportNames())
				return
			}
			out, err := eng.Report(name)
			switch {
			case errors.Is(err, stream.ErrUnknownReport):
				writeError(w, http.StatusNotFound, err.Error())
			case err != nil:
				logger.Error("materialize report", "name", name, "err", err)
				writeError(w, http.StatusInternalServerError, err.Error())
			default:
				writeJSON(w, out)
			}
		}
	}

	handle("/api/v1/healthz", healthz)
	handle("/api/v1/version", version)
	handle("/api/v1/stats", stats)
	handle("/api/v1/reports", reports("/api/v1/reports"))
	handle("/api/v1/reports/", reports("/api/v1/reports"))
	if info.sensor != nil {
		handle("/api/v1/snapshot", info.sensor.Handler())
	}

	handle("/healthz", deprecated("/api/v1/healthz", healthz))
	handle("/stats", deprecated("/api/v1/stats", stats))
	handle("/reports/", deprecated("/api/v1/reports/", reports("/reports")))
	// /metrics is served unwrapped: scraping must stay readable even
	// while it mutates the HTTP series it would otherwise self-count.
	mux.Handle("/metrics", metrics.Handler(reg))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// reporter is the slice of the engine the HTTP layer needs; tests
// substitute failing stubs to exercise the error mapping.
type reporter interface {
	Report(name string) (any, error)
	Stats() stream.Stats
}

// engine is the full surface the daemon drives. *stream.Engine and
// *stream.Sharded both satisfy it; for the sharded engine the
// WriteCheckpoint path names a directory rather than a file.
type engine interface {
	reporter
	IngestConn(rec *core.ConnRecord) bool
	IngestCert(rec *core.CertRecord) bool
	IngestConnBatch(recs []core.ConnRecord) int
	IngestCertBatch(recs []core.CertRecord) int
	Drain()
	Close()
	WriteCheckpoint(path string, cursor map[string]int64) error
}

// daemonStats is the /stats payload: the engine counters plus the
// ingestion-health counters owned by the daemon. Embedding keeps the
// JSON shape a strict superset of stream.Stats, so existing scrapers
// keep working.
type daemonStats struct {
	stream.Stats
	Role             string                 // monitor, sensor, or aggregator
	Shards           int                    // engine shards (0 on aggregators)
	Sensors          []distrib.SensorStatus `json:",omitempty"` // per-sensor sync state (aggregator role)
	RowsRejected     uint64                 // malformed log rows quarantined
	RejectedByReason map[string]uint64      `json:",omitempty"` // "file/reason" -> count
	TailErrors       uint64                 // tail polls that returned an error
	TailLag          map[string]int64       `json:",omitempty"` // file -> size − offset after the last poll
}

const (
	tailErrMetric = "mtlsd_tail_errors_total"
	tailErrHelp   = "tail polls that returned an error"
)

// tailErrTotal sums the per-file tail error counters.
func tailErrTotal(reg *metrics.Registry) uint64 {
	var n uint64
	for _, f := range []string{"ssl.log", "x509.log"} {
		n += reg.Counter(tailErrMetric, tailErrHelp, "file", f).Value()
	}
	return n
}

// tailLag reads back the per-file ingestion lag gauges (file size minus
// consumed offset after the last poll) so a load harness can wait for
// drain from /api/v1/stats instead of parsing the /metrics exposition.
func tailLag(reg *metrics.Registry) map[string]int64 {
	out := make(map[string]int64, 2)
	for _, f := range []string{"ssl", "x509"} {
		out[f] = int64(reg.Gauge("tail_lag_bytes",
			"file size minus consumed offset after a poll", "file", f).Value())
	}
	return out
}

// catchUpRounds caps how many interleaved poll rounds one tick spends on
// backlog. Each round consumes at most one chunk per log (4 MiB by
// default), so the cap bounds one tick's work at ~1 GiB per file while
// keeping checkpoints and shutdown responsive; the next tick resumes
// where this one stopped.
const catchUpRounds = 256

// tailSource is one log feeding catchUp: poll reads and ingests at most
// one chunk and returns how many records it consumed; fail reports a
// poll error together with the backoff wait it earned.
type tailSource struct {
	bo   *backoff
	poll func() (int, error)
	fail func(err error, wait time.Duration)
}

// catchUp drains the logs' backlogs for one tick. The sources are
// interleaved — at most one chunk each per round, in slice order — and
// never run to exhaustion in turn: a writer keeping one log hot would
// otherwise hold its until-empty loop forever, starving every other log
// (ssl.log lag grew without bound while x509.log streamed). The round
// cap bounds the tick even when all sources stay hot. Returns per-source
// record counts, parallel to srcs.
func catchUp(ctx context.Context, rounds int, srcs []*tailSource) []int {
	counts := make([]int, len(srcs))
	for r := 0; r < rounds && ctx.Err() == nil; r++ {
		progress := false
		for i, s := range srcs {
			if !s.bo.ready(time.Now()) {
				continue
			}
			n, err := s.poll()
			if err != nil {
				s.fail(err, s.bo.failure(time.Now()))
			} else {
				s.bo.success()
			}
			counts[i] += n
			if n > 0 {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return counts
}

// backoff is the per-file retry schedule for persistent tail errors:
// the first failure waits one poll interval, each consecutive failure
// doubles the wait up to a cap, and any success resets it. Poll cadence
// for healthy files is untouched — the schedule only gates how soon a
// failing file is retried.
type backoff struct {
	base, max time.Duration
	delay     time.Duration
	until     time.Time
}

// backoffCap bounds the retry delay: 32 doublings of a sub-second poll
// would otherwise reach minutes, and an operator fixing the disk should
// not wait longer than this for ingestion to notice.
const backoffCap = time.Minute

func newBackoff(base time.Duration) *backoff {
	max := 32 * base
	if max > backoffCap {
		max = backoffCap
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max}
}

// ready reports whether the backed-off file may be polled again.
func (b *backoff) ready(now time.Time) bool { return !now.Before(b.until) }

// failure records a failed poll and returns the wait before the next try.
func (b *backoff) failure(now time.Time) time.Duration {
	if b.delay == 0 {
		b.delay = b.base
	} else if b.delay *= 2; b.delay > b.max {
		b.delay = b.max
	}
	b.until = now.Add(b.delay)
	return b.delay
}

// success resets the schedule after a clean poll.
func (b *backoff) success() {
	b.delay = 0
	b.until = time.Time{}
}

// instrument wraps a handler with a per-endpoint latency histogram and a
// per-endpoint, per-status request counter.
func instrument(reg *metrics.Registry, path string, h http.HandlerFunc) http.HandlerFunc {
	dur := reg.Histogram("mtlsd_http_request_seconds", "HTTP request handling latency", nil, "path", path)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur.Since(t0)
		reg.Counter("mtlsd_http_requests_total", "HTTP requests served",
			"path", path, "code", strconv.Itoa(sw.code)).Inc()
	}
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (s *statusWriter) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// writeCheckpoint drains the engine (so the state covers everything the
// tails have read) and persists it together with the tail offsets. Only
// the tailer goroutine produces events, and it is the caller here (or
// the tailer has already exited), so after Drain the offsets are exactly
// consistent with the applied state.
func writeCheckpoint(eng engine, ssl *zeek.SSLTail, x509 *zeek.X509Tail, path string) error {
	eng.Drain()
	return eng.WriteCheckpoint(path, map[string]int64{
		"ssl.log":  ssl.Offset(),
		"x509.log": x509.Offset(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// apiError is the /api/v1 failure envelope.
type apiError struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// writeError emits the JSON error envelope with the matching status.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: msg, Code: code}) //nolint:errcheck // headers are already out
}

// deprecated marks a legacy route (RFC 8594 Deprecation header plus a
// Link to the versioned successor) and serves the same handler.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}
