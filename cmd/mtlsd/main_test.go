package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	mtls "repro"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// testScale keeps the generated dataset small enough for fast e2e runs.
const testScale = 2000

func writeTestLogs(t *testing.T) (dir string, cfg mtls.Config) {
	t.Helper()
	cfg = mtls.DefaultConfig()
	cfg.CertScale = testScale
	build := mtls.Generate(cfg)
	dir = t.TempDir()
	if err := mtls.WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	return dir, cfg
}

func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL plus a cancel that triggers a clean shutdown and
// a channel carrying run's exit code.
func startDaemon(t *testing.T, o options) (base string, cancel context.CancelFunc, exit chan int) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	readyCh := make(chan string, 1)
	exit = make(chan int, 1)
	go func() {
		exit <- run(ctx, o, testLogger(t), func(addr string) { readyCh <- addr })
	}()
	select {
	case addr := <-readyCh:
		return "http://" + addr, cancelCtx, exit
	case code := <-exit:
		cancelCtx()
		t.Fatalf("daemon exited before ready: code %d", code)
		return "", nil, nil
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// waitIngested polls /stats until the engine has applied connections.
func waitIngested(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpGet(t, base+"/stats")
		if code == http.StatusOK {
			var st stream.Stats
			if err := json.Unmarshal([]byte(body), &st); err == nil && st.ConnsIngested > 0 {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never ingested connections")
}

// TestDaemonEndToEnd drives a live daemon over HTTP: liveness, stats,
// the metrics exposition (ingest, tail lag, rebuilds, HTTP latency),
// report success, 404-vs-500 mapping, and pprof behind the flag.
func TestDaemonEndToEnd(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs:     dir,
		listen:   "127.0.0.1:0",
		poll:     50 * time.Millisecond,
		scale:    cfg.CertScale,
		pprof:    true,
		logLevel: "debug",
	})
	defer func() {
		cancel()
		<-exit
	}()

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	waitIngested(t, base)

	// Reports: list, one table, unknown name -> 404 (not 500, not 200).
	if code, body := httpGet(t, base+"/reports/"); code != 200 || !strings.Contains(body, "table1") {
		t.Errorf("report list: %d %s", code, body)
	}
	code, body := httpGet(t, base+"/reports/table1")
	if code != 200 {
		t.Errorf("table1: %d %s", code, body)
	}
	var table1 struct{ Rows []struct{ Total int } }
	if err := json.Unmarshal([]byte(body), &table1); err != nil || len(table1.Rows) == 0 {
		t.Errorf("table1 body: %v %s", err, body)
	}
	if code, _ := httpGet(t, base+"/reports/nope"); code != http.StatusNotFound {
		t.Errorf("unknown report: %d, want 404", code)
	}

	// Metrics: Prometheus text with the core series, all live.
	code, metricsBody := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, series := range []string{
		"stream_conns_ingested_total",
		"stream_certs_ingested_total",
		"stream_rebuilds_total",
		"tail_lag_bytes{file=\"ssl\"}",
		"tail_bytes_read_total{file=\"ssl\"}",
		"tail_rotations_total{file=\"x509\"}",
		"mtlsd_http_request_seconds_count{path=\"/healthz\"}",
		"mtlsd_http_requests_total{path=\"/healthz\",code=\"200\"}",
		"stream_apply_latency_seconds_bucket",
	} {
		if !strings.Contains(metricsBody, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	for _, nonZero := range []string{"stream_conns_ingested_total ", "tail_bytes_read_total{file=\"ssl\"} "} {
		for _, line := range strings.Split(metricsBody, "\n") {
			if strings.HasPrefix(line, nonZero) && strings.HasSuffix(line, " 0") {
				t.Errorf("series %s is zero after ingestion", nonZero)
			}
		}
	}

	// JSON exposition of the same registry.
	if code, body := httpGet(t, base+"/metrics?format=json"); code != 200 {
		t.Errorf("/metrics json: %d", code)
	} else {
		var m map[string]any
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Errorf("metrics json decode: %v", err)
		}
	}

	// pprof is mounted when the flag is on.
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: %d", code)
	}
}

// TestDaemonPprofOffByDefault: without -pprof the profile endpoints are
// not mounted.
func TestDaemonPprofOffByDefault(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs: dir, listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof mounted without -pprof: %d", code)
	}
}

// TestDaemonSIGTERMCheckpoint: a real SIGTERM shuts the daemon down
// cleanly (exit 0) and the final checkpoint lands, restorable with the
// tail offsets intact — the state-loss regression for the old
// log.Fatal shutdown path.
func TestDaemonSIGTERMCheckpoint(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	ckpt := filepath.Join(t.TempDir(), "mtlsd.ckpt")
	base, cancel, exit := startDaemon(t, options{
		logs:       dir,
		listen:     "127.0.0.1:0",
		poll:       50 * time.Millisecond,
		scale:      cfg.CertScale,
		checkpoint: ckpt,
		ckptEvery:  time.Hour, // periodic path stays quiet; only shutdown writes
	})
	defer cancel()
	waitIngested(t, base)

	// The daemon's signal.NotifyContext owns SIGTERM while running, so
	// signalling our own process exercises the real shutdown path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	fi, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("final checkpoint empty")
	}
	in := mtls.InputFromBuild(mtls.Generate(cfg))
	in.Raw = nil
	restored, cursor, err := stream.Restore(stream.Config{Input: in}, ckpt)
	if err != nil {
		t.Fatalf("restore final checkpoint: %v", err)
	}
	defer restored.Close()
	if restored.Stats().ConnsIngested == 0 {
		t.Error("restored engine has no connections")
	}
	if cursor["ssl.log"] == 0 || cursor["x509.log"] == 0 {
		t.Errorf("cursor offsets not persisted: %v", cursor)
	}
}

// TestDaemonListenConflict: a busy port fails fast with a nonzero exit
// before any state is touched (the old path log.Fatal'd much later).
func TestDaemonListenConflict(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs: dir, listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()
	addr := strings.TrimPrefix(base, "http://")

	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	code := run(ctx, options{logs: dir, listen: addr, scale: cfg.CertScale}, testLogger(t), nil)
	if code == 0 {
		t.Fatal("second daemon on the same port must fail")
	}
}

// TestReportsHandler500: an internal materialization failure maps to
// 500, not 404 — exercised against a stub reporter so the failure is
// deterministic.
func TestReportsHandler500(t *testing.T) {
	reg := metrics.New()
	mux := newMux(failingReporter{}, reg, testLogger(t), false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res, err := http.Get(srv.URL + "/reports/table1")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Errorf("internal failure: %d, want 500", res.StatusCode)
	}

	res, err = http.Get(srv.URL + "/reports/definitely-not-a-report")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report: %d, want 404", res.StatusCode)
	}

	// The status-labeled request counters observed both outcomes.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`code="500"`, `code="404"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("request counter missing %s:\n%s", want, buf.String())
		}
	}
}

// failingReporter fails materialization for known names and reports
// unknown ones with the typed sentinel, mirroring the engine's contract.
type failingReporter struct{}

func (failingReporter) Report(name string) (any, error) {
	if name == "table1" {
		return nil, fmt.Errorf("simulated materialization failure")
	}
	return nil, fmt.Errorf("%w: %q", stream.ErrUnknownReport, name)
}

func (failingReporter) Stats() stream.Stats { return stream.Stats{} }
