package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	mtls "repro"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/zeek"
)

// testScale keeps the generated dataset small enough for fast e2e runs.
const testScale = 2000

func writeTestLogs(t *testing.T) (dir string, cfg mtls.Config) {
	t.Helper()
	cfg = mtls.DefaultConfig()
	cfg.CertScale = testScale
	build := mtls.GenerateConfig(cfg)
	dir = t.TempDir()
	if err := mtls.WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	return dir, cfg
}

func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL plus a cancel that triggers a clean shutdown and
// a channel carrying run's exit code.
func startDaemon(t *testing.T, o options) (base string, cancel context.CancelFunc, exit chan int) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	readyCh := make(chan string, 1)
	exit = make(chan int, 1)
	go func() {
		exit <- run(ctx, o, testLogger(t), func(addr string) { readyCh <- addr })
	}()
	select {
	case addr := <-readyCh:
		return "http://" + addr, cancelCtx, exit
	case code := <-exit:
		cancelCtx()
		t.Fatalf("daemon exited before ready: code %d", code)
		return "", nil, nil
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// waitIngested polls /stats until the engine has applied connections.
func waitIngested(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpGet(t, base+"/stats")
		if code == http.StatusOK {
			var st stream.Stats
			if err := json.Unmarshal([]byte(body), &st); err == nil && st.ConnsIngested > 0 {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never ingested connections")
}

// waitConns polls /stats until exactly want connection events have been
// applied.
func waitConns(t *testing.T, base string, want uint64) daemonStats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st daemonStats
	for time.Now().Before(deadline) {
		code, body := httpGet(t, base+"/stats")
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &st); err == nil && st.ConnsIngested >= want {
				return st
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon never reached %d ingested connections (last: %d)", want, st.ConnsIngested)
	return st
}

// TestDaemonMalformedRow is the end-to-end poison-pill regression: a
// daemon tailing a live log receives a malformed row mid-stream, must
// keep ingesting everything behind it, must surface the rejection in
// /stats, /metrics, and the quarantine file, and its reports must
// deep-equal a batch engine fed only the valid rows.
func TestDaemonMalformedRow(t *testing.T) {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = testScale
	build := mtls.GenerateConfig(cfg)
	conns := build.Raw.Conns
	half := len(conns) / 2

	// Daemon dir: full x509.log, ssl.log holding only the first half.
	dir := t.TempDir()
	if err := mtls.WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	sslPath := filepath.Join(dir, "ssl.log")
	f, err := os.Create(sslPath)
	if err != nil {
		t.Fatal(err)
	}
	w := zeek.NewSSLWriter(f)
	for i := range conns[:half] {
		if err := w.Write(&conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	quarantine := filepath.Join(t.TempDir(), "quarantine.log")
	base, cancel, exit := startDaemon(t, options{
		logs:       dir,
		listen:     "127.0.0.1:0",
		poll:       50 * time.Millisecond,
		scale:      cfg.CertScale,
		quarantine: quarantine,
	})
	defer func() {
		cancel()
		<-exit
	}()
	waitConns(t, base, uint64(half))

	// Mid-stream poison: a zero weight and a truncated row, then the
	// rest of the valid connections behind them.
	f, err = os.OpenFile(sslPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1654041600.000000\tPOISON\t10.0.0.1\t1234\t192.0.2.1\t443\tTLSv12\tbad.example\tT\t-\t-\t0\n" +
		"truncated\trow\n"); err != nil {
		t.Fatal(err)
	}
	w = zeek.NewSSLWriter(f)
	w.SkipHeader()
	for i := half; i < len(conns); i++ {
		if err := w.Write(&conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Every valid row lands despite the poison pills between them.
	st := waitConns(t, base, uint64(len(conns)))
	if st.RowsRejected != 2 {
		t.Fatalf("RowsRejected = %d, want 2", st.RowsRejected)
	}
	if st.RejectedByReason["ssl/"+string(zeek.RejectWeight)] != 1 ||
		st.RejectedByReason["ssl/"+string(zeek.RejectFieldCount)] != 1 {
		t.Fatalf("RejectedByReason = %v", st.RejectedByReason)
	}

	// The rejection counter is visible on /metrics, labeled by reason.
	code, metricsBody := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, line := range []string{
		`zeek_rows_rejected_total{file="ssl",reason="weight"} 1`,
		`zeek_rows_rejected_total{file="ssl",reason="field_count"} 1`,
	} {
		if !strings.Contains(metricsBody, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	// The quarantine file retains both raw rows for forensics.
	qraw, err := os.ReadFile(quarantine)
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !strings.Contains(string(qraw), "POISON") || !strings.Contains(string(qraw), string(zeek.RejectFieldCount)) {
		t.Fatalf("quarantine missing rejected rows:\n%s", qraw)
	}

	// Reports must equal a batch engine fed only the valid rows: the
	// malformed lines changed counters, never analysis results.
	in := mtls.InputFromBuild(mtls.GenerateConfig(cfg))
	in.Raw = nil
	ref, err := stream.New(stream.Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	xf, err := os.Open(filepath.Join(dir, "x509.log"))
	if err != nil {
		t.Fatal(err)
	}
	certs, err := zeek.ReadX509(xf)
	xf.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range certs {
		ref.IngestCert(&certs[i])
	}
	for i := range conns {
		ref.IngestConn(&conns[i])
	}
	ref.Drain()

	for _, name := range stream.ReportNames() {
		code, body := httpGet(t, base+"/reports/"+name)
		if code != 200 {
			t.Fatalf("report %s: HTTP %d", name, code)
		}
		wantOut, err := ref.Report(name)
		if err != nil {
			t.Fatalf("reference report %s: %v", name, err)
		}
		wantJSON, err := json.Marshal(wantOut)
		if err != nil {
			t.Fatal(err)
		}
		var got, want any
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("report %s body: %v", name, err)
		}
		if err := json.Unmarshal(wantJSON, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("report %s diverged from valid-rows batch reference", name)
		}
	}
}

// TestDaemonStrictQuarantineConflict: -strict with -quarantine is a
// configuration error (strict mode never skips rows), refused at boot.
func TestDaemonStrictQuarantineConflict(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	code := run(ctx, options{
		logs: dir, listen: "127.0.0.1:0", scale: cfg.CertScale,
		strict: true, quarantine: filepath.Join(t.TempDir(), "q.log"),
	}, testLogger(t), nil)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (usage error)", code)
	}
}

// TestBackoff pins the tail-error retry schedule: first failure waits
// one base interval, consecutive failures double up to the cap, and a
// success resets the schedule.
func TestBackoff(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	b := newBackoff(100 * time.Millisecond)

	if !b.ready(now) {
		t.Fatal("fresh backoff must be ready")
	}
	if d := b.failure(now); d != 100*time.Millisecond {
		t.Fatalf("first failure delay = %v, want 100ms", d)
	}
	if b.ready(now.Add(50 * time.Millisecond)) {
		t.Fatal("ready before the delay elapsed")
	}
	if !b.ready(now.Add(100 * time.Millisecond)) {
		t.Fatal("not ready after the delay elapsed")
	}
	for i, want := range []time.Duration{200, 400, 800, 1600, 3200, 3200} {
		if d := b.failure(now); d != want*time.Millisecond {
			t.Fatalf("failure %d delay = %v, want %v (cap = 32x base)", i+2, d, want*time.Millisecond)
		}
	}
	b.success()
	if !b.ready(now) {
		t.Fatal("not ready after success reset")
	}
	if d := b.failure(now); d != 100*time.Millisecond {
		t.Fatalf("post-reset failure delay = %v, want 100ms", d)
	}

	// A slow poll interval is capped at one minute, not 32x.
	slow := newBackoff(5 * time.Second)
	var last time.Duration
	for i := 0; i < 10; i++ {
		last = slow.failure(now)
	}
	if last != time.Minute {
		t.Fatalf("slow-poll cap = %v, want 1m", last)
	}
}

// TestDaemonEndToEnd drives a live daemon over HTTP: liveness, stats,
// the metrics exposition (ingest, tail lag, rebuilds, HTTP latency),
// report success, 404-vs-500 mapping, and pprof behind the flag.
func TestDaemonEndToEnd(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs:     dir,
		listen:   "127.0.0.1:0",
		poll:     50 * time.Millisecond,
		scale:    cfg.CertScale,
		pprof:    true,
		logLevel: "debug",
	})
	defer func() {
		cancel()
		<-exit
	}()

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	waitIngested(t, base)

	// Reports: list, one table, unknown name -> 404 (not 500, not 200).
	if code, body := httpGet(t, base+"/reports/"); code != 200 || !strings.Contains(body, "table1") {
		t.Errorf("report list: %d %s", code, body)
	}
	code, body := httpGet(t, base+"/reports/table1")
	if code != 200 {
		t.Errorf("table1: %d %s", code, body)
	}
	var table1 struct{ Rows []struct{ Total int } }
	if err := json.Unmarshal([]byte(body), &table1); err != nil || len(table1.Rows) == 0 {
		t.Errorf("table1 body: %v %s", err, body)
	}
	if code, _ := httpGet(t, base+"/reports/nope"); code != http.StatusNotFound {
		t.Errorf("unknown report: %d, want 404", code)
	}

	// Metrics: Prometheus text with the core series, all live.
	code, metricsBody := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, series := range []string{
		"stream_conns_ingested_total",
		"stream_certs_ingested_total",
		"stream_rebuilds_total",
		"tail_lag_bytes{file=\"ssl\"}",
		"tail_bytes_read_total{file=\"ssl\"}",
		"tail_rotations_total{file=\"x509\"}",
		"mtlsd_http_request_seconds_count{path=\"/healthz\"}",
		"mtlsd_http_requests_total{path=\"/healthz\",code=\"200\"}",
		"stream_apply_latency_seconds_bucket",
	} {
		if !strings.Contains(metricsBody, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	for _, nonZero := range []string{"stream_conns_ingested_total ", "tail_bytes_read_total{file=\"ssl\"} "} {
		for _, line := range strings.Split(metricsBody, "\n") {
			if strings.HasPrefix(line, nonZero) && strings.HasSuffix(line, " 0") {
				t.Errorf("series %s is zero after ingestion", nonZero)
			}
		}
	}

	// JSON exposition of the same registry.
	if code, body := httpGet(t, base+"/metrics?format=json"); code != 200 {
		t.Errorf("/metrics json: %d", code)
	} else {
		var m map[string]any
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Errorf("metrics json decode: %v", err)
		}
	}

	// pprof is mounted when the flag is on.
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: %d", code)
	}
}

// TestDaemonPprofOffByDefault: without -pprof the profile endpoints are
// not mounted.
func TestDaemonPprofOffByDefault(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs: dir, listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof mounted without -pprof: %d", code)
	}
}

// TestDaemonSIGTERMCheckpoint: a real SIGTERM shuts the daemon down
// cleanly (exit 0) and the final checkpoint lands, restorable with the
// tail offsets intact — the state-loss regression for the old
// log.Fatal shutdown path.
func TestDaemonSIGTERMCheckpoint(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	ckpt := filepath.Join(t.TempDir(), "mtlsd.ckpt")
	base, cancel, exit := startDaemon(t, options{
		logs:       dir,
		listen:     "127.0.0.1:0",
		poll:       50 * time.Millisecond,
		scale:      cfg.CertScale,
		checkpoint: ckpt,
		ckptEvery:  time.Hour, // periodic path stays quiet; only shutdown writes
	})
	defer cancel()
	waitIngested(t, base)

	// The daemon's signal.NotifyContext owns SIGTERM while running, so
	// signalling our own process exercises the real shutdown path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	fi, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("final checkpoint empty")
	}
	in := mtls.InputFromBuild(mtls.GenerateConfig(cfg))
	in.Raw = nil
	restored, cursor, err := stream.Restore(stream.Config{Input: in}, ckpt)
	if err != nil {
		t.Fatalf("restore final checkpoint: %v", err)
	}
	defer restored.Close()
	if restored.Stats().ConnsIngested == 0 {
		t.Error("restored engine has no connections")
	}
	if cursor["ssl.log"] == 0 || cursor["x509.log"] == 0 {
		t.Errorf("cursor offsets not persisted: %v", cursor)
	}
}

// TestDaemonListenConflict: a busy port fails fast with a nonzero exit
// before any state is touched (the old path log.Fatal'd much later).
func TestDaemonListenConflict(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs: dir, listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()
	addr := strings.TrimPrefix(base, "http://")

	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	code := run(ctx, options{logs: dir, listen: addr, scale: cfg.CertScale}, testLogger(t), nil)
	if code == 0 {
		t.Fatal("second daemon on the same port must fail")
	}
}

// TestReportsHandler500: an internal materialization failure maps to
// 500, not 404 — exercised against a stub reporter so the failure is
// deterministic.
func TestReportsHandler500(t *testing.T) {
	reg := metrics.New()
	mux := newMux(failingReporter{}, reg, testLogger(t), false, daemonInfo{})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res, err := http.Get(srv.URL + "/reports/table1")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Errorf("internal failure: %d, want 500", res.StatusCode)
	}

	res, err = http.Get(srv.URL + "/reports/definitely-not-a-report")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report: %d, want 404", res.StatusCode)
	}

	// The status-labeled request counters observed both outcomes.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`code="500"`, `code="404"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("request counter missing %s:\n%s", want, buf.String())
		}
	}
}

// failingReporter fails materialization for known names and reports
// unknown ones with the typed sentinel, mirroring the engine's contract.
type failingReporter struct{}

func (failingReporter) Report(name string) (any, error) {
	if name == "table1" {
		return nil, fmt.Errorf("simulated materialization failure")
	}
	return nil, fmt.Errorf("%w: %q", stream.ErrUnknownReport, name)
}

func (failingReporter) Stats() stream.Stats { return stream.Stats{} }
