package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	mtls "repro"
	"repro/internal/zeek"
)

// TestCatchUpInterleaves pins the tailer-starvation fix: with a writer
// keeping x509.log hot (every poll returns rows), the old per-tick
// until-empty loop never reached the ssl.log poll, so its lag grew
// without bound. catchUp must poll both logs every round and stop at
// the round cap rather than chase a hot file forever.
func TestCatchUpInterleaves(t *testing.T) {
	var x509Polls, sslPolls int
	noFail := func(err error, wait time.Duration) { t.Fatalf("unexpected failure: %v", err) }
	srcs := []*tailSource{
		// Hot forever: a writer appending at least as fast as we drain.
		{bo: newBackoff(time.Millisecond), fail: noFail,
			poll: func() (int, error) { x509Polls++; return 10, nil }},
		{bo: newBackoff(time.Millisecond), fail: noFail,
			poll: func() (int, error) { sslPolls++; return 1, nil }},
	}
	counts := catchUp(context.Background(), catchUpRounds, srcs)
	if x509Polls != catchUpRounds {
		t.Errorf("x509 polls = %d, want the round cap %d", x509Polls, catchUpRounds)
	}
	if sslPolls != catchUpRounds {
		t.Errorf("ssl polls = %d, want %d (one per round; the old code starved this to 0)",
			sslPolls, catchUpRounds)
	}
	if counts[0] != 10*catchUpRounds || counts[1] != catchUpRounds {
		t.Errorf("counts = %v, want [%d %d]", counts, 10*catchUpRounds, catchUpRounds)
	}
}

// TestCatchUpDrains: once every source reports an empty poll in the same
// round, the tick ends early — no spinning until the round cap.
func TestCatchUpDrains(t *testing.T) {
	backlog := []int{3, 1} // polls until empty, per source
	var polls [2]int
	noFail := func(err error, wait time.Duration) { t.Fatalf("unexpected failure: %v", err) }
	mk := func(i int) *tailSource {
		return &tailSource{bo: newBackoff(time.Millisecond), fail: noFail,
			poll: func() (int, error) {
				polls[i]++
				if polls[i] <= backlog[i] {
					return 5, nil
				}
				return 0, nil
			}}
	}
	counts := catchUp(context.Background(), catchUpRounds, []*tailSource{mk(0), mk(1)})
	if counts[0] != 15 || counts[1] != 5 {
		t.Errorf("counts = %v, want [15 5]", counts)
	}
	// The longer backlog dictates the rounds: 3 productive + 1 empty.
	if polls[0] != 4 || polls[1] != 4 {
		t.Errorf("polls = %v, want [4 4] (stop on the first all-empty round)", polls)
	}
}

// TestCatchUpBackoff: a failing source earns a backoff and is skipped
// while it waits; the healthy source keeps draining.
func TestCatchUpBackoff(t *testing.T) {
	var failPolls, okPolls, fails int
	boom := errors.New("disk on fire")
	srcs := []*tailSource{
		{bo: newBackoff(time.Minute),
			poll: func() (int, error) { failPolls++; return 0, boom },
			fail: func(err error, wait time.Duration) {
				fails++
				if !errors.Is(err, boom) || wait <= 0 {
					t.Errorf("fail(%v, %v)", err, wait)
				}
			}},
		{bo: newBackoff(time.Minute), fail: func(err error, wait time.Duration) { t.Fatal(err) },
			poll: func() (int, error) {
				okPolls++
				if okPolls <= 5 {
					return 2, nil
				}
				return 0, nil
			}},
	}
	counts := catchUp(context.Background(), catchUpRounds, srcs)
	if failPolls != 1 || fails != 1 {
		t.Errorf("failing source polled %d times (failures %d), want 1 (backed off)", failPolls, fails)
	}
	if counts[1] != 10 {
		t.Errorf("healthy source count = %d, want 10", counts[1])
	}
}

// TestDaemonConcurrentWriters is the end-to-end companion to the
// starvation fix: two writers appending to ssl.log and x509.log at the
// same time, with the daemon tailing both. Every row from both files
// must land, and the lag on both files must drain to zero.
func TestDaemonConcurrentWriters(t *testing.T) {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = testScale
	build := mtls.GenerateConfig(cfg)
	conns := build.Raw.Conns

	// Full logs in a scratch dir give us the certificate rows to replay.
	scratch := t.TempDir()
	if err := mtls.WriteLogs(build.Raw, scratch); err != nil {
		t.Fatal(err)
	}
	xf, err := os.Open(filepath.Join(scratch, "x509.log"))
	if err != nil {
		t.Fatal(err)
	}
	certs, err := zeek.ReadX509(xf)
	xf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The daemon's dir starts with the first half of each log.
	dir := t.TempDir()
	sslPath := filepath.Join(dir, "ssl.log")
	x509Path := filepath.Join(dir, "x509.log")
	halfC, halfX := len(conns)/2, len(certs)/2
	writeSSL := func(path string, recs []zeek.SSLRecord, appendTo bool) {
		t.Helper()
		flags := os.O_CREATE | os.O_WRONLY
		if appendTo {
			flags |= os.O_APPEND
		}
		f, err := os.OpenFile(path, flags, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		w := zeek.NewSSLWriter(f)
		if appendTo {
			w.SkipHeader()
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeX509 := func(path string, recs []zeek.X509Record, appendTo bool) {
		t.Helper()
		flags := os.O_CREATE | os.O_WRONLY
		if appendTo {
			flags |= os.O_APPEND
		}
		f, err := os.OpenFile(path, flags, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		w := zeek.NewX509Writer(f)
		if appendTo {
			w.SkipHeader()
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeSSL(sslPath, conns[:halfC], false)
	writeX509(x509Path, certs[:halfX], false)

	base, cancel, exit := startDaemon(t, options{
		logs:   dir,
		listen: "127.0.0.1:0",
		poll:   10 * time.Millisecond,
		scale:  cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()
	waitConns(t, base, uint64(halfC))

	// Both second halves stream in concurrently, in small flushed slices.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for lo := halfC; lo < len(conns); lo += 64 {
			writeSSL(sslPath, conns[lo:min(lo+64, len(conns))], true)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for lo := halfX; lo < len(certs); lo += 64 {
			writeX509(x509Path, certs[lo:min(lo+64, len(certs))], true)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	st := waitConns(t, base, uint64(len(conns)))
	if st.CertsIngested != uint64(len(certs)) {
		t.Errorf("CertsIngested = %d, want %d", st.CertsIngested, len(certs))
	}

	// Lag on both files drains to zero once the writers stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ds daemonStats
		_, body := httpGet(t, base+"/api/v1/stats")
		if err := json.Unmarshal([]byte(body), &ds); err != nil {
			t.Fatal(err)
		}
		if ds.TailLag["ssl"] == 0 && ds.TailLag["x509"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tail lag never drained: %v", ds.TailLag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
