package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	mtls "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// httpGetFull returns status, body, and headers for equivalence checks.
func httpGetFull(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body), res.Header
}

// TestAPIVersionEquivalence: every legacy path and its /api/v1 successor
// serve byte-identical bodies and statuses; only the legacy alias
// carries the Deprecation header and the successor Link.
func TestAPIVersionEquivalence(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	base, cancel, exit := startDaemon(t, options{
		logs: dir, listen: "127.0.0.1:0", poll: 50 * time.Millisecond, scale: cfg.CertScale,
	})
	defer func() {
		cancel()
		<-exit
	}()

	// Quiesce first: /stats must not move between the paired fetches.
	build := mtls.GenerateConfig(cfg)
	waitConns(t, base, uint64(len(build.Raw.Conns)))

	pairs := []struct{ legacy, v1 string }{
		{"/healthz", "/api/v1/healthz"},
		{"/stats", "/api/v1/stats"},
		{"/reports/", "/api/v1/reports"},
		{"/reports/", "/api/v1/reports/"},
		{"/reports/table1", "/api/v1/reports/table1"},
		{"/reports/figure5", "/api/v1/reports/figure5"},
		{"/reports/nope", "/api/v1/reports/nope"},
	}
	for _, p := range pairs {
		lCode, lBody, lHdr := httpGetFull(t, base+p.legacy)
		vCode, vBody, vHdr := httpGetFull(t, base+p.v1)
		if lCode != vCode {
			t.Errorf("%s vs %s: status %d != %d", p.legacy, p.v1, lCode, vCode)
		}
		if lBody != vBody {
			t.Errorf("%s vs %s: bodies differ:\n%s\n---\n%s", p.legacy, p.v1, lBody, vBody)
		}
		if lHdr.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", p.legacy)
		}
		if link := lHdr.Get("Link"); !strings.Contains(link, "/api/v1/") || !strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header %q does not name the successor", p.legacy, link)
		}
		if vHdr.Get("Deprecation") != "" {
			t.Errorf("%s: versioned path must not be marked deprecated", p.v1)
		}
	}
}

// TestAPIErrorEnvelope pins the /api/v1 failure contract: an unknown
// report is {"error", "code": 404} and a materialization failure is
// {"error", "code": 500}, on the versioned and the aliased path alike.
func TestAPIErrorEnvelope(t *testing.T) {
	reg := metrics.New()
	srv := httptest.NewServer(newMux(failingReporter{}, reg, testLogger(t), false, daemonInfo{}))
	defer srv.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/api/v1/reports/definitely-not-a-report", http.StatusNotFound},
		{"/api/v1/reports/table1", http.StatusInternalServerError},
		{"/reports/definitely-not-a-report", http.StatusNotFound},
		{"/reports/table1", http.StatusInternalServerError},
	}
	for _, c := range cases {
		code, body, hdr := httpGetFull(t, srv.URL+c.path)
		if code != c.code {
			t.Errorf("%s: status %d, want %d", c.path, code, c.code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want application/json", c.path, ct)
		}
		var env apiError
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Errorf("%s: body is not the JSON envelope: %v (%q)", c.path, err, body)
			continue
		}
		if env.Code != c.code || env.Error == "" {
			t.Errorf("%s: envelope %+v, want code %d and a message", c.path, env, c.code)
		}
	}
}

// TestDaemonSharded drives mtlsd with -shards 2 end to end: every report
// must deep-equal a single-engine reference fed the same logs, /metrics
// must carry the per-shard labeled series, and SIGTERM must land a
// restorable manifest-committed checkpoint directory.
func TestDaemonSharded(t *testing.T) {
	dir, cfg := writeTestLogs(t)
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	base, cancel, exit := startDaemon(t, options{
		logs:       dir,
		listen:     "127.0.0.1:0",
		poll:       50 * time.Millisecond,
		scale:      cfg.CertScale,
		shards:     2,
		checkpoint: ckptDir,
		ckptEvery:  time.Hour, // only the shutdown checkpoint writes
	})
	defer cancel()

	build := mtls.GenerateConfig(cfg)
	waitConns(t, base, uint64(len(build.Raw.Conns)))

	// Single-engine reference over the same dataset.
	in := mtls.InputFromBuild(mtls.GenerateConfig(cfg))
	in.Raw = nil
	ref, err := stream.New(stream.Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, c := range build.Raw.Certs {
		ref.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for i := range build.Raw.Conns {
		ref.IngestConn(&build.Raw.Conns[i])
	}
	ref.Drain()

	for _, name := range stream.ReportNames() {
		code, body := httpGet(t, base+"/api/v1/reports/"+name)
		if code != 200 {
			t.Fatalf("report %s: HTTP %d", name, code)
		}
		wantOut, err := ref.Report(name)
		if err != nil {
			t.Fatalf("reference report %s: %v", name, err)
		}
		wantJSON, err := json.Marshal(wantOut)
		if err != nil {
			t.Fatal(err)
		}
		var got, want any
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("report %s body: %v", name, err)
		}
		if err := json.Unmarshal(wantJSON, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("report %s diverged from single-engine reference", name)
		}
	}

	// Per-shard series are labeled; the router's gauges are live.
	code, metricsBody := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, series := range []string{
		`stream_conns_ingested_total{shard="0"}`,
		`stream_conns_ingested_total{shard="1"}`,
		`stream_buffer_occupancy{shard="0"}`,
		"stream_shards 2",
		"stream_cert_fanout_total",
	} {
		if !strings.Contains(metricsBody, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// SIGTERM → clean exit, committed manifest, restorable directory.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "manifest.json")); err != nil {
		t.Fatalf("checkpoint manifest missing: %v", err)
	}
	rin := mtls.InputFromBuild(mtls.GenerateConfig(cfg))
	rin.Raw = nil
	restoredEng, cursor, err := stream.RestoreSharded(stream.Config{Input: rin}, 2, ckptDir)
	if err != nil {
		t.Fatalf("restore sharded checkpoint: %v", err)
	}
	defer restoredEng.Close()
	if got := restoredEng.Stats().ConnsIngested; got != uint64(len(build.Raw.Conns)) {
		t.Errorf("restored ConnsIngested = %d, want %d", got, len(build.Raw.Conns))
	}
	if cursor["ssl.log"] == 0 || cursor["x509.log"] == 0 {
		t.Errorf("cursor offsets not persisted: %v", cursor)
	}
}
