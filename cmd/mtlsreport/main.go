// Command mtlsreport runs the full analysis pipeline and prints every
// table and figure of the paper, optionally writing the paper-vs-measured
// comparison to EXPERIMENTS.md.
//
// Usage:
//
//	mtlsreport                      # generate in memory and report
//	mtlsreport -logs ./data         # analyze logs written by mtlsgen
//	mtlsreport -json                # emit the full Analysis as JSON
//	mtlsreport -experiments EXP.md  # also write the comparison document
//	mtlsreport -workers 8           # shard the pipeline across 8 workers
//	                                # (0 = one per CPU, 1 = serial)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	mtls "repro"
)

func main() {
	log.SetFlags(0)
	logs := flag.String("logs", "", "directory with ssl.log/x509.log (empty = generate in memory)")
	scale := flag.Int("scale", 0, "certificate scale divisor when generating")
	seed := flag.Uint64("seed", 0, "generator seed when generating")
	experiments := flag.String("experiments", "", "path to write EXPERIMENTS.md content")
	workers := flag.Int("workers", 0, "pipeline workers: 0 = one per CPU, 1 = serial, n = exactly n")
	quiet := flag.Bool("quiet", false, "suppress the full table dump")
	asJSON := flag.Bool("json", false, "emit the full analysis as JSON instead of rendered tables")
	flag.Parse()

	cfg := mtls.DefaultConfig()
	if *scale > 0 {
		cfg.CertScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	build := mtls.Generate(cfg)
	if *logs != "" {
		ds, err := mtls.OpenLogs(*logs)
		if err != nil {
			log.Fatalf("mtlsreport: open logs: %v", err)
		}
		build.Raw = ds
	}

	analysis := mtls.AnalyzeWorkers(build, *workers)
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis); err != nil {
			log.Fatalf("mtlsreport: encode json: %v", err)
		}
	case !*quiet:
		fmt.Print(mtls.Render(analysis))
	}
	if *experiments != "" {
		note := fmt.Sprintf("Counts are scaled by 1/%d (connection weights are unscaled); seed %d.",
			cfg.CertScale, cfg.Seed)
		if err := os.WriteFile(*experiments, []byte(mtls.Experiments(analysis, note)), 0o644); err != nil {
			log.Fatalf("mtlsreport: write experiments: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *experiments)
	}
}
