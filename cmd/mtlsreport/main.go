// Command mtlsreport runs the full analysis pipeline and prints every
// table and figure of the paper, optionally writing the paper-vs-measured
// comparison to EXPERIMENTS.md.
//
// Usage:
//
//	mtlsreport                      # generate in memory and report
//	mtlsreport -logs ./data         # analyze logs written by mtlsgen
//	mtlsreport -json                # emit the full Analysis as JSON
//	mtlsreport -experiments EXP.md  # also write the comparison document
//	mtlsreport -workers 8           # shard the pipeline across 8 workers
//	                                # (0 = one per CPU, 1 = serial)
//	mtlsreport -timings             # print per-stage wall times to stderr
//	                                # (Prometheus text, same registry as mtlsd)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mtls "repro"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	logs := flag.String("logs", "", "directory with ssl.log/x509.log (empty = generate in memory)")
	scale := flag.Int("scale", 0, "certificate scale divisor when generating")
	seed := flag.Uint64("seed", 0, "generator seed when generating")
	experiments := flag.String("experiments", "", "path to write EXPERIMENTS.md content")
	workers := flag.Int("workers", 0, "pipeline workers: 0 = one per CPU, 1 = serial, n = exactly n")
	quiet := flag.Bool("quiet", false, "suppress the full table dump")
	asJSON := flag.Bool("json", false, "emit the full analysis as JSON instead of rendered tables")
	timings := flag.Bool("timings", false, "print per-stage wall times to stderr (Prometheus text format)")
	strict := flag.Bool("strict", false, "fail on the first malformed log row instead of skipping it")
	quarantine := flag.String("quarantine", "", "append rejected rows to this file (with -logs, permissive mode)")
	flag.Parse()

	// Stage timings go through the same metrics substrate the daemon
	// exposes on /metrics, so a batch run and a long-running monitor
	// report the pipeline's cost in the same series shapes.
	reg := metrics.New()
	stage := func(name string, f func()) {
		t0 := time.Now()
		f()
		reg.Gauge("report_stage_seconds", "wall time of one mtlsreport stage", "stage", name).
			Set(time.Since(t0).Seconds())
	}

	cfg := mtls.DefaultConfig()
	if *scale > 0 {
		cfg.CertScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var build *mtls.Build
	stage("generate", func() { build = mtls.GenerateConfig(cfg) })
	if *logs != "" {
		stage("open_logs", func() {
			// Permissive by default: a malformed row is skipped (and
			// summarized on stderr) rather than killing the whole run;
			// -strict restores fail-fast.
			opts := []mtls.LogOption{mtls.Permissive(), mtls.WithMetrics(reg)}
			if *strict {
				opts = []mtls.LogOption{mtls.Strict(), mtls.WithMetrics(reg)}
			}
			if *quarantine != "" {
				if *strict {
					log.Fatal("mtlsreport: -quarantine is meaningless with -strict (strict mode never skips rows)")
				}
				q, err := mtls.OpenQuarantine(*quarantine)
				if err != nil {
					log.Fatalf("mtlsreport: open quarantine: %v", err)
				}
				defer q.Close()
				opts = append(opts, mtls.WithQuarantine(q))
			}
			ds, err := mtls.OpenLogs(*logs, opts...)
			if err != nil {
				log.Fatalf("mtlsreport: open logs: %v", err)
			}
			if total, byReason := mtls.RejectTotals(reg); total > 0 {
				fmt.Fprintf(os.Stderr, "mtlsreport: skipped %d malformed log rows: %v\n", total, byReason)
			}
			build.Raw = ds
		})
	}

	var analysis *mtls.Analysis
	stage("analyze", func() { analysis = mtls.Analyze(build, mtls.WithWorkers(*workers)) })
	reg.Gauge("report_workers", "resolved pipeline worker request (0 = per CPU)").Set(float64(*workers))

	switch {
	case *asJSON:
		stage("render", func() {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(analysis); err != nil {
				log.Fatalf("mtlsreport: encode json: %v", err)
			}
		})
	case !*quiet:
		stage("render", func() { fmt.Print(mtls.Render(analysis)) })
	}
	if *experiments != "" {
		stage("experiments", func() {
			note := fmt.Sprintf("Counts are scaled by 1/%d (connection weights are unscaled); seed %d.",
				cfg.CertScale, cfg.Seed)
			if err := os.WriteFile(*experiments, []byte(mtls.Experiments(analysis, note)), 0o644); err != nil {
				log.Fatalf("mtlsreport: write experiments: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *experiments)
		})
	}
	if *timings {
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			log.Fatalf("mtlsreport: write timings: %v", err)
		}
	}
}
