// Command tlstap is a deployable inline passive monitor: it relays TCP
// connections to a backend unchanged while recovering Zeek-style ssl.log
// and x509.log records from the TLS handshakes it carries — mutual TLS
// included. It is the live-traffic counterpart of the offline pipeline.
//
// Usage:
//
//	tlstap -listen 127.0.0.1:8443 -backend example.com:443 -out ./captured
//
// Then point any TLS client at the listen address; on shutdown (SIGINT)
// the captured logs are written to the output directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/ids"
	"repro/internal/zeek"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:8443", "address to accept connections on")
	backend := flag.String("backend", "", "upstream address to relay to (required)")
	out := flag.String("out", "captured", "directory to write ssl.log/x509.log on shutdown")
	verbose := flag.Bool("v", true, "print one line per analyzed connection")
	flag.Parse()
	if *backend == "" {
		log.Fatal("tlstap: -backend is required")
	}

	analyzer := zeek.NewAnalyzer(ids.NewRNG(uint64(os.Getpid())))
	tap := &zeek.Tap{
		Backend:  *backend,
		Analyzer: analyzer,
		OnRecord: func(r *zeek.SSLRecord) {
			if *verbose {
				fmt.Printf("%s %s:%d -> %s:%d %s sni=%q mutual=%v established=%v\n",
					r.UID, r.OrigIP, r.OrigPort, r.RespIP, r.RespPort,
					r.Version, r.SNI, r.IsMutual(), r.Established)
			}
		},
		OnError: func(err error) {
			if *verbose {
				fmt.Fprintf(os.Stderr, "tlstap: %v\n", err)
			}
		},
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("tlstap: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "tlstap: relaying %s -> %s (Ctrl-C to stop and write logs)\n",
		*listen, *backend)
	if err := tap.Serve(ctx, ln); err != nil && ctx.Err() == nil {
		log.Fatalf("tlstap: %v", err)
	}

	if err := writeLogs(analyzer, *out); err != nil {
		log.Fatalf("tlstap: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tlstap: wrote %d connections, %d certificates to %s\n",
		len(analyzer.SSL), len(analyzer.X509), *out)
}

func writeLogs(a *zeek.Analyzer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sslF, err := os.Create(filepath.Join(dir, "ssl.log"))
	if err != nil {
		return err
	}
	defer sslF.Close()
	sw := zeek.NewSSLWriter(sslF)
	for i := range a.SSL {
		if err := sw.Write(&a.SSL[i]); err != nil {
			return err
		}
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	xF, err := os.Create(filepath.Join(dir, "x509.log"))
	if err != nil {
		return err
	}
	defer xF.Close()
	xw := zeek.NewX509Writer(xF)
	for i := range a.X509 {
		if err := xw.Write(&a.X509[i]); err != nil {
			return err
		}
	}
	return xw.Flush()
}
