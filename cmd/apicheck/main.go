// Command apicheck guards the public facade's API surface: it parses a
// package with go/parser, renders every exported declaration (func
// bodies stripped), and compares the sorted result against a checked-in
// golden file. CI runs it in check mode, so a PR that changes, removes,
// or accidentally exports a symbol fails until the golden is
// regenerated on purpose with -write — the repository's stand-in for an
// apidiff gate, with zero external dependencies.
//
// Usage:
//
//	apicheck                      # check . against api/mtls.txt
//	apicheck -write               # regenerate the golden
//	apicheck -pkg . -golden api/mtls.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	pkgDir := flag.String("pkg", ".", "directory of the package to summarize")
	golden := flag.String("golden", "api/mtls.txt", "golden API surface file")
	write := flag.Bool("write", false, "rewrite the golden instead of checking it")
	flag.Parse()

	got, err := surface(*pkgDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s\n", *golden)
		return
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run apicheck -write to create it)\n", err)
		os.Exit(1)
	}
	if string(want) != got {
		fmt.Fprintf(os.Stderr, "apicheck: exported API surface of %s differs from %s\n", *pkgDir, *golden)
		diff(os.Stderr, strings.Split(string(want), "\n"), strings.Split(got, "\n"))
		fmt.Fprintln(os.Stderr, "apicheck: if the change is intentional, regenerate with: go run ./cmd/apicheck -write")
		os.Exit(1)
	}
	fmt.Printf("apicheck: OK, %s matches %s\n", *pkgDir, *golden)
}

// surface renders the package's exported API as one deterministic text
// blob: each exported declaration printed without bodies or comments,
// entries sorted.
func surface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var entries []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declEntries(fset, decl)...)
			}
		}
	}
	sort.Strings(entries)
	var b strings.Builder
	b.WriteString("# Exported API surface. Regenerate with: go run ./cmd/apicheck -write\n")
	for _, e := range entries {
		b.WriteString(e)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// declEntries renders one top-level declaration's exported parts.
func declEntries(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		d.Body = nil
		d.Doc = nil
		return []string{render(fset, d)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				s.Doc, s.Comment = nil, nil
				out = append(out, render(fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{s}}))
			case *ast.ValueSpec:
				if !hasExportedName(s.Names) {
					continue
				}
				s.Doc, s.Comment = nil, nil
				out = append(out, render(fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}))
			}
		}
		return out
	}
	return nil
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func hasExportedName(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// render prints a declaration canonically: gofmt style, tabs collapsed
// so the golden survives editors, no trailing space.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<!render error: %v>", err)
	}
	return buf.String()
}

// diff prints a minimal line diff: lines only in want as "-", only in
// got as "+". Order-preserving unified output is overkill for a sorted
// surface file.
func diff(w *os.File, want, got []string) {
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, l := range got {
		gotSet[l] = true
	}
	for _, l := range want {
		if !gotSet[l] && l != "" {
			fmt.Fprintf(w, "  - %s\n", l)
		}
	}
	for _, l := range got {
		if !wantSet[l] && l != "" {
			fmt.Fprintf(w, "  + %s\n", l)
		}
	}
}
