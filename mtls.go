// Package mtls is the public facade of the reproduction of "Mutual TLS in
// Practice: A Deep Dive into Certificate Configurations and Privacy
// Issues" (IMC 2024).
//
// The typical flow is three calls:
//
//	build, _ := mtls.Generate(mtls.CampusSpec()) // synthesize the campus dataset
//	analysis := mtls.Analyze(build)              // run the paper's pipeline
//	fmt.Print(mtls.Render(analysis))             // print every table/figure
//
// Generate compiles a declarative scenario spec (internal/scenario) into a
// 23-month synthetic border-traffic dataset calibrated to the paper's
// published numbers (internal/workload); Analyze runs preprocessing
// (CT-based interception filtering) and all analyses (internal/core);
// Render and Experiments format the results. Datasets can also round-trip
// through Zeek-style TSV logs with WriteLogs/OpenLogs, and live TLS
// traffic can be ingested with the zeek.Analyzer (see
// examples/livecapture).
package mtls

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/workload"
	"repro/internal/zeek"
)

// LogOptions is the struct form of the malformed-row policy: the zero
// value skips bad rows silently, Strict fails on the first one, and
// Quarantine/Metrics capture what was skipped (see zeek.Options).
//
// Deprecated: pass Strict/Permissive/WithQuarantine/WithMetrics options
// to OpenLogs instead.
type LogOptions = zeek.Options

// OpenQuarantine opens (appending) a quarantine file for rejected rows.
func OpenQuarantine(path string) (*zeek.Quarantine, error) {
	return zeek.OpenQuarantine(path)
}

// RejectTotals reads back the rejection counters a permissive load
// published into reg: the grand total and a "file/reason" breakdown.
func RejectTotals(reg *metrics.Registry) (uint64, map[string]uint64) {
	return zeek.RejectTotals(reg)
}

// Config re-exports the workload configuration.
//
// Deprecated: describe workloads with a Spec and tune scale/seed with
// Generate options; Config remains for GenerateConfig callers.
type Config = workload.Config

// Build re-exports the generated dataset bundle.
type Build = workload.Build

// Analysis re-exports the full result set.
type Analysis = core.Analysis

// Spec re-exports the declarative scenario workload spec: cohorts with
// rate fractions, arrival models, lifecycles, and certificate-practice
// profiles. Build one with ParseSpec / CampusSpec / scenario.NewBuilder.
type Spec = scenario.Spec

// DefaultConfig returns the calibrated generator configuration
// (CertScale 200, 23 months, Figure 1 anchors at 1.99%/3.61%).
//
// Deprecated: start from CampusSpec and Generate options instead.
func DefaultConfig() Config { return workload.Default() }

// CampusSpec returns the built-in campus scenario — the spec whose
// compiled output is byte-identical to the paper-calibrated generator.
func CampusSpec() *Spec { return scenario.Campus() }

// ParseSpec parses a scenario spec from its YAML form.
func ParseSpec(data []byte) (*Spec, error) { return scenario.Parse(data) }

// LoadSpec reads a scenario spec from a YAML file; path "-" reads stdin.
func LoadSpec(path string) (*Spec, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// GenerateOption tunes Generate without widening the spec schema: scale,
// seed, and wire-path are properties of one run, not of the scenario.
type GenerateOption func(*Config)

// WithScale sets the certificate scale divisor.
func WithScale(scale int) GenerateOption {
	return func(c *Config) { c.CertScale = scale }
}

// WithSeed overrides the seed (beating any seed in the spec).
func WithSeed(seed uint64) GenerateOption {
	return func(c *Config) { c.Seed = seed }
}

// WithWirePath routes n connections per entity through real DER + TLS
// byte streams + the zeek analyzer as an end-to-end self check.
func WithWirePath(n int) GenerateOption {
	return func(c *Config) { c.WirePath = n }
}

// Generate compiles a scenario spec into the synthetic dataset. nil means
// CampusSpec(). The spec's seed applies unless WithSeed overrides it;
// everything else starts from the calibrated defaults.
func Generate(spec *Spec, opts ...GenerateOption) (*Build, error) {
	cfg := workload.Default()
	if spec == nil {
		spec = CampusSpec()
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	// Pin the resolved seed in the compiled copy so option order beats
	// spec order (FromSpec would otherwise re-apply the spec seed).
	s := *spec
	s.Seed = cfg.Seed
	return workload.FromSpec(&s, cfg)
}

// GenerateConfig synthesizes the campus dataset from a raw configuration.
//
// Deprecated: use Generate with a Spec; GenerateConfig remains for
// callers tuning Config fields that predate the spec schema.
func GenerateConfig(cfg Config) *Build { return workload.Generate(cfg) }

// Analyze runs the paper's full pipeline on a build. By default it uses
// one worker per CPU; WithWorkers pins the concurrency explicitly. The
// Analysis is identical at every worker count.
func Analyze(b *Build, opts ...AnalyzeOption) *Analysis {
	var cfg analyzeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	in := InputFromBuild(b)
	in.Workers = cfg.workers
	return core.Run(in)
}

// AnalyzeWorkers runs the pipeline with explicit concurrency.
//
// Deprecated: use Analyze(b, WithWorkers(workers)).
func AnalyzeWorkers(b *Build, workers int) *Analysis {
	return Analyze(b, WithWorkers(workers))
}

// InputFromBuild adapts a generated build into the core pipeline's input.
func InputFromBuild(b *Build) *core.Input {
	return &core.Input{
		Raw:           b.Raw,
		CT:            b.CT,
		Bundle:        b.Bundle,
		CampusIssuers: b.CampusIssuers,
		Assoc: core.AssocMap{
			HealthSLDs:     b.Assoc.HealthSLDs,
			UniversitySLDs: b.Assoc.UniversitySLDs,
			VPNHostPrefix:  b.Assoc.VPNHostPrefix,
			LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
			ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
			GlobusSLDs:     b.Assoc.GlobusSLDs,
		},
		Plan:   b.Plan,
		Months: b.Months,
	}
}

// Render formats every reproduced table and figure as text.
func Render(a *Analysis) string { return report.RenderAll(a) }

// Experiments renders the paper-vs-measured EXPERIMENTS.md content.
func Experiments(a *Analysis, scaleNote string) string {
	return report.ExperimentsMarkdown(a, scaleNote)
}

// WriteLogs persists a dataset as Zeek-style ssl.log and x509.log files
// in dir (created if needed). Each log is written to a temp file —
// fsynced before the rename, with the directory fsynced after, via
// internal/atomicfile — so neither a crashed run nor a power loss can
// leave a truncated log behind for a later strict OpenLogs to reject:
// the directory holds either the previous pair or the new one.
func WriteLogs(ds *zeek.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Both temps are fully written and synced before either rename, so a
	// failure writing x509.log cannot commit a new ssl.log beside the old
	// x509.log.
	sslTmp := filepath.Join(dir, "ssl.log.tmp")
	if err := writeLogFile(sslTmp, func(f *os.File) error {
		sw := zeek.NewSSLWriter(f)
		// Fingerprint-free datasets keep the legacy 12-column schema byte
		// for byte; any JA3/JA4 column selects the extended header.
		sw.Extended = datasetHasFingerprints(ds)
		for i := range ds.Conns {
			if err := sw.Write(&ds.Conns[i]); err != nil {
				return err
			}
		}
		return sw.Flush()
	}); err != nil {
		return fmt.Errorf("mtls: write ssl.log: %w", err)
	}
	x509Tmp := filepath.Join(dir, "x509.log.tmp")
	if err := writeLogFile(x509Tmp, func(f *os.File) error {
		xw := zeek.NewX509Writer(f)
		for _, c := range certsSorted(ds) {
			rec := zeek.X509Record{TS: c.NotBefore, ID: fileIDFor(c), Cert: c}
			if err := xw.Write(&rec); err != nil {
				return err
			}
		}
		return xw.Flush()
	}); err != nil {
		os.Remove(sslTmp)
		return fmt.Errorf("mtls: write x509.log: %w", err)
	}
	// Both temp files are complete and durable; commit the pair.
	if err := atomicfile.Rename(sslTmp, filepath.Join(dir, "ssl.log")); err != nil {
		os.Remove(x509Tmp)
		return err
	}
	return atomicfile.Rename(x509Tmp, filepath.Join(dir, "x509.log"))
}

// datasetHasFingerprints reports whether any connection carries
// ClientHello fingerprints, which selects ssl.log's extended schema.
func datasetHasFingerprints(ds *zeek.Dataset) bool {
	for i := range ds.Conns {
		if ds.Conns[i].JA3 != "" || ds.Conns[i].JA4 != "" {
			return true
		}
	}
	return false
}

// writeLogFile creates path, runs emit over it, syncs, and closes it,
// removing the file on any failure.
func writeLogFile(path string, emit func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// OpenLogs loads a dataset previously written with WriteLogs. Parsing
// is strict by default (the first malformed row aborts with an error
// describing it); pass Permissive and its companions to quarantine
// malformed rows instead:
//
//	ds, err := mtls.OpenLogs(dir)                                  // strict
//	ds, err := mtls.OpenLogs(dir, mtls.Permissive(),
//	    mtls.WithQuarantine(q), mtls.WithMetrics(reg))             // skip + capture
func OpenLogs(dir string, opts ...LogOption) (*zeek.Dataset, error) {
	sslF, err := os.Open(filepath.Join(dir, "ssl.log"))
	if err != nil {
		return nil, err
	}
	defer sslF.Close()
	x509F, err := os.Open(filepath.Join(dir, "x509.log"))
	if err != nil {
		return nil, err
	}
	defer x509F.Close()
	return zeek.LoadDataset(sslF, x509F, opts...)
}

// OpenLogsWith loads a dataset with an explicit malformed-row policy
// struct.
//
// Deprecated: use OpenLogs with Permissive/WithQuarantine/WithMetrics
// options.
func OpenLogsWith(dir string, o zeek.Options) (*zeek.Dataset, error) {
	sslF, err := os.Open(filepath.Join(dir, "ssl.log"))
	if err != nil {
		return nil, err
	}
	defer sslF.Close()
	x509F, err := os.Open(filepath.Join(dir, "x509.log"))
	if err != nil {
		return nil, err
	}
	defer x509F.Close()
	return zeek.LoadDatasetWith(sslF, x509F, o)
}
