// Package mtls is the public facade of the reproduction of "Mutual TLS in
// Practice: A Deep Dive into Certificate Configurations and Privacy
// Issues" (IMC 2024).
//
// The typical flow is three calls:
//
//	build := mtls.Generate(mtls.DefaultConfig()) // synthesize the campus dataset
//	analysis := mtls.Analyze(build)              // run the paper's pipeline
//	fmt.Print(mtls.Render(analysis))             // print every table/figure
//
// Generate produces a 23-month synthetic border-traffic dataset calibrated
// to the paper's published numbers (internal/workload); Analyze runs
// preprocessing (CT-based interception filtering) and all analyses
// (internal/core); Render and Experiments format the results. Datasets can
// also round-trip through Zeek-style TSV logs with WriteLogs/OpenLogs, and
// live TLS traffic can be ingested with the zeek.Analyzer (see
// examples/livecapture).
package mtls

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/internal/zeek"
)

// LogOptions selects how OpenLogsWith treats malformed log rows: the
// zero value skips them silently, Strict fails on the first one, and
// Quarantine/Metrics capture what was skipped (see zeek.Options).
type LogOptions = zeek.Options

// OpenQuarantine opens (appending) a quarantine file for rejected rows.
func OpenQuarantine(path string) (*zeek.Quarantine, error) {
	return zeek.OpenQuarantine(path)
}

// RejectTotals reads back the rejection counters a permissive load
// published into reg: the grand total and a "file/reason" breakdown.
func RejectTotals(reg *metrics.Registry) (uint64, map[string]uint64) {
	return zeek.RejectTotals(reg)
}

// Config re-exports the workload configuration.
type Config = workload.Config

// Build re-exports the generated dataset bundle.
type Build = workload.Build

// Analysis re-exports the full result set.
type Analysis = core.Analysis

// DefaultConfig returns the calibrated generator configuration
// (CertScale 200, 23 months, Figure 1 anchors at 1.99%/3.61%).
func DefaultConfig() Config { return workload.Default() }

// Generate synthesizes the campus dataset.
func Generate(cfg Config) *Build { return workload.Generate(cfg) }

// Analyze runs the paper's full pipeline on a build, using one worker
// per CPU (see AnalyzeWorkers).
func Analyze(b *Build) *Analysis { return AnalyzeWorkers(b, 0) }

// AnalyzeWorkers runs the pipeline with explicit concurrency: 0 uses one
// worker per CPU, 1 runs the exact serial legacy path, n>1 shards
// preprocessing and fans the analyses out across n workers. The Analysis
// is identical at every setting.
func AnalyzeWorkers(b *Build, workers int) *Analysis {
	in := InputFromBuild(b)
	in.Workers = workers
	return core.Run(in)
}

// InputFromBuild adapts a generated build into the core pipeline's input.
func InputFromBuild(b *Build) *core.Input {
	return &core.Input{
		Raw:           b.Raw,
		CT:            b.CT,
		Bundle:        b.Bundle,
		CampusIssuers: b.CampusIssuers,
		Assoc: core.AssocMap{
			HealthSLDs:     b.Assoc.HealthSLDs,
			UniversitySLDs: b.Assoc.UniversitySLDs,
			VPNHostPrefix:  b.Assoc.VPNHostPrefix,
			LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
			ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
			GlobusSLDs:     b.Assoc.GlobusSLDs,
		},
		Plan:   b.Plan,
		Months: b.Months,
	}
}

// Render formats every reproduced table and figure as text.
func Render(a *Analysis) string { return report.RenderAll(a) }

// Experiments renders the paper-vs-measured EXPERIMENTS.md content.
func Experiments(a *Analysis, scaleNote string) string {
	return report.ExperimentsMarkdown(a, scaleNote)
}

// WriteLogs persists a dataset as Zeek-style ssl.log and x509.log files in
// dir (created if needed).
func WriteLogs(ds *zeek.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sslF, err := os.Create(filepath.Join(dir, "ssl.log"))
	if err != nil {
		return err
	}
	defer sslF.Close()
	sw := zeek.NewSSLWriter(sslF)
	for i := range ds.Conns {
		if err := sw.Write(&ds.Conns[i]); err != nil {
			return fmt.Errorf("mtls: write ssl.log: %w", err)
		}
	}
	if err := sw.Flush(); err != nil {
		return err
	}

	x509F, err := os.Create(filepath.Join(dir, "x509.log"))
	if err != nil {
		return err
	}
	defer x509F.Close()
	xw := zeek.NewX509Writer(x509F)
	for _, c := range certsSorted(ds) {
		rec := zeek.X509Record{TS: c.NotBefore, ID: fileIDFor(c), Cert: c}
		if err := xw.Write(&rec); err != nil {
			return fmt.Errorf("mtls: write x509.log: %w", err)
		}
	}
	return xw.Flush()
}

// OpenLogs loads a dataset previously written with WriteLogs. Parsing
// is strict: the first malformed row aborts with an error describing
// it. Use OpenLogsWith to quarantine malformed rows instead.
func OpenLogs(dir string) (*zeek.Dataset, error) {
	return OpenLogsWith(dir, zeek.Options{Strict: true})
}

// OpenLogsWith loads a dataset with an explicit malformed-row policy
// (see zeek.Options).
func OpenLogsWith(dir string, o zeek.Options) (*zeek.Dataset, error) {
	sslF, err := os.Open(filepath.Join(dir, "ssl.log"))
	if err != nil {
		return nil, err
	}
	defer sslF.Close()
	x509F, err := os.Open(filepath.Join(dir, "x509.log"))
	if err != nil {
		return nil, err
	}
	defer x509F.Close()
	return zeek.LoadDatasetWith(sslF, x509F, o)
}
