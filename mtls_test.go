package mtls

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CertScale = 2000
	return cfg
}

func TestEndToEnd(t *testing.T) {
	build := GenerateConfig(smallConfig())
	a := Analyze(build)
	if a.CertStats.Row("Total").Total == 0 {
		t.Fatal("no certificates analyzed")
	}
	out := Render(a)
	for _, want := range []string{
		"Table 1", "Figure 1", "Table 2", "Table 3", "Figure 2",
		"Table 4", "Table 5", "Table 6", "Figure 3", "Figure 4",
		"Figure 5", "Table 7", "Table 8", "Table 9", "Table 10",
		"Table 13", "Table 14",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing section %q", want)
		}
	}
	exp := Experiments(a, "scale note")
	if !strings.Contains(exp, "| Experiment |") || !strings.Contains(exp, "shape checks hold") {
		t.Fatal("experiments markdown malformed")
	}
}

func TestLogsRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	build := GenerateConfig(smallConfig())
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ssl.log", "x509.log"} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Fatalf("log %s missing or empty: %v", f, err)
		}
	}
	ds, err := OpenLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) != len(build.Raw.Conns) {
		t.Fatalf("conns: wrote %d, read %d", len(build.Raw.Conns), len(ds.Conns))
	}
	if len(ds.Certs) != len(build.Raw.Certs) {
		t.Fatalf("certs: wrote %d, read %d", len(build.Raw.Certs), len(ds.Certs))
	}
	// The reloaded dataset joins correctly: every mutual conn's leaf certs
	// resolve.
	missing := 0
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if c.IsMutual() {
			if ds.Cert(c.ServerLeaf()) == nil || ds.Cert(c.ClientLeaf()) == nil {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d mutual conns lost their certificates in the round trip", missing)
	}
}

// TestOpenLogsPermissive: corrupting one row of each log loses exactly
// that row under OpenLogsWith (counted per reason) while strict OpenLogs
// refuses the directory outright.
func TestOpenLogsPermissive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	build := GenerateConfig(smallConfig())
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ssl.log", "x509.log"} {
		fh, err := os.OpenFile(filepath.Join(dir, f), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.WriteString("corrupt\trow\n"); err != nil {
			t.Fatal(err)
		}
		fh.Close()
	}

	if _, err := OpenLogs(dir); err == nil {
		t.Fatal("strict OpenLogs must fail on the corrupt rows")
	}

	reg := metrics.New()
	ds, err := OpenLogsWith(dir, LogOptions{Metrics: reg})
	if err != nil {
		t.Fatalf("permissive open: %v", err)
	}
	if len(ds.Conns) != len(build.Raw.Conns) {
		t.Fatalf("conns: wrote %d, read %d", len(build.Raw.Conns), len(ds.Conns))
	}
	if len(ds.Certs) != len(build.Raw.Certs) {
		t.Fatalf("certs: wrote %d, read %d", len(build.Raw.Certs), len(ds.Certs))
	}
	total, byReason := RejectTotals(reg)
	if total != 2 || byReason["ssl/field_count"] != 1 || byReason["x509/field_count"] != 1 {
		t.Fatalf("RejectTotals = %d %v, want one field_count per log", total, byReason)
	}
}

func TestAnalysisOnReloadedLogs(t *testing.T) {
	dir := t.TempDir()
	build := GenerateConfig(smallConfig())
	a1 := Analyze(build)
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	build.Raw = ds
	a2 := Analyze(build)
	// Key statistics must survive the TSV round trip exactly.
	if a1.CertStats.Row("Total").Total != a2.CertStats.Row("Total").Total {
		t.Fatalf("cert totals differ: %d vs %d",
			a1.CertStats.Row("Total").Total, a2.CertStats.Row("Total").Total)
	}
	if a1.Prevalence.FirstShare() != a2.Prevalence.FirstShare() {
		t.Fatal("prevalence differs after round trip")
	}
	if a1.SharingSame.InboundConns != a2.SharingSame.InboundConns {
		t.Fatal("sharing stats differ after round trip")
	}
}
