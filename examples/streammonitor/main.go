// Streammonitor demonstrates the incremental analysis engine behind
// cmd/mtlsd: it feeds the 23-month campus dataset through
// internal/stream one event at a time, materializes Figure 1 mid-stream
// (after one year of traffic), then drains the rest and verifies the
// streamed result is identical to the batch pipeline — including across
// a checkpoint/restore cycle, the daemon's crash-recovery path. The
// engine publishes into the same metrics registry mtlsd serves on
// /metrics; the operational counters are printed at the end.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	mtls "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	cfg := mtls.DefaultConfig()
	cfg.CertScale = 1000
	build := mtls.GenerateConfig(cfg)
	// The generator groups connections by scenario; a border tap delivers
	// them chronologically. Sort in place so both the stream below and the
	// batch baseline see the same realistic order.
	sort.SliceStable(build.Raw.Conns, func(i, j int) bool {
		return build.Raw.Conns[i].TS.Before(build.Raw.Conns[j].TS)
	})

	in := mtls.InputFromBuild(build)
	in.Raw = nil // the engine accumulates its own dataset
	reg := metrics.New()
	eng, err := stream.New(stream.Config{Input: in, Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Certificates first (the daemon polls x509.log before ssl.log for
	// the same reason), then the first half of the connection stream.
	for _, c := range build.Raw.Certs {
		eng.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	conns := build.Raw.Conns
	half := len(conns) / 2
	for i := 0; i < half; i++ {
		eng.IngestConn(&conns[i])
	}
	eng.Drain()

	mid := eng.Analysis()
	st := eng.Stats()
	fmt.Printf("mid-stream after %d connections (%d certificates):\n",
		st.ConnsIngested, st.UniqueCerts)
	fmt.Printf("  mTLS share: %.2f%% (first month) -> %.2f%% (current)\n",
		100*mid.Prevalence.FirstShare(), 100*mid.Prevalence.LastShare())
	fmt.Printf("  interception issuers confirmed so far: %d (%d certs excluded)\n\n",
		st.InterceptionIssuers, st.ExcludedCerts)

	// Stream the remaining half and drain.
	for i := half; i < len(conns); i++ {
		eng.IngestConn(&conns[i])
	}
	eng.Drain()

	streamed := eng.Analysis()
	batch := mtls.Analyze(build)
	fmt.Printf("after draining all %d connections:\n", len(conns))
	fmt.Printf("  mTLS share: %.2f%% -> %.2f%%\n",
		100*streamed.Prevalence.FirstShare(), 100*streamed.Prevalence.LastShare())
	fmt.Printf("  stream == batch: %v\n\n", reflect.DeepEqual(streamed, batch))

	// Crash recovery: persist, restore into a fresh engine, compare.
	dir, err := os.MkdirTemp("", "streammonitor")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "mtlsd.ckpt")
	if err := eng.WriteCheckpoint(ckpt, nil); err != nil {
		log.Fatal(err)
	}
	restored, _, err := stream.Restore(stream.Config{Input: in}, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	fi, _ := os.Stat(ckpt)
	fmt.Printf("checkpoint: %d bytes\n", fi.Size())
	fmt.Printf("  restored == batch: %v\n", reflect.DeepEqual(restored.Analysis(), batch))

	// The registry holds everything mtlsd would serve on /metrics:
	// ingest counters, apply-queue latency, rebuild and materialization
	// durations, checkpoint cost.
	fmt.Println("\noperational metrics (the daemon serves these on /metrics):")
	fmt.Printf("  ingested: %d conns, %d certs; rebuilds: %d; materializations: %d\n",
		reg.Counter("stream_conns_ingested_total", "").Value(),
		reg.Counter("stream_certs_ingested_total", "").Value(),
		reg.Counter("stream_rebuilds_total", "").Value(),
		reg.Histogram("stream_materialize_seconds", "", nil).Count())
	fmt.Printf("  checkpoint writes: %d, last size: %.0f bytes\n",
		reg.Counter("stream_checkpoints_total", "").Value(),
		reg.Gauge("stream_checkpoint_bytes", "").Value())
}
