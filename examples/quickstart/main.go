// Quickstart: generate a small synthetic campus dataset, run the paper's
// full analysis pipeline, and print the headline findings.
package main

import (
	"fmt"

	mtls "repro"
	"repro/internal/stats"
)

func main() {
	// The campus scenario spec compiles to the paper-calibrated dataset;
	// WithScale keeps it small and fast for a demo.
	build, err := mtls.Generate(mtls.CampusSpec(), mtls.WithScale(1000))
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated %d connections and %d unique certificates\n\n",
		len(build.Raw.Conns), len(build.Raw.Certs))

	a := mtls.Analyze(build)

	fmt.Println("Preprocessing (§3.2):")
	fmt.Printf("  interception issuers found: %d, certs excluded: %s\n",
		len(a.Preprocess.InterceptionIssuers), stats.Pct(a.Preprocess.ExcludedShare)+"%")

	fmt.Println("\nPrevalence (Figure 1):")
	fmt.Printf("  mTLS share of TLS connections: %s%% -> %s%% over 23 months\n",
		stats.Pct(a.Prevalence.FirstShare()), stats.Pct(a.Prevalence.LastShare()))

	fmt.Println("\nCertificates (Table 1):")
	for _, row := range a.CertStats.Rows {
		fmt.Printf("  %-22s total=%6d  in mTLS=%6d (%s%%)\n",
			row.Label, row.Total, row.Mutual, stats.Pct(row.MutualShare()))
	}

	fmt.Println("\nConcerning practices (§5):")
	fmt.Printf("  same-connection cert sharing: %d inbound + %d outbound conns\n",
		a.SharingSame.InboundConns, a.SharingSame.OutboundConns)
	fmt.Printf("  incorrect-date certificates: %d\n", a.BadDates.Certs)
	fmt.Printf("  expired client certs still in use: %d inbound, %d outbound\n",
		len(a.Expired.Inbound.Points), len(a.Expired.Outbound.Points))

	fmt.Println("\nPrivacy (§6):")
	fmt.Printf("  personal names in client CNs: %d\n", a.Contents.CN["client-private"]["Personal name"])
	fmt.Printf("  user accounts in client CNs:  %d\n", a.Contents.CN["client-private"]["User account"])
}
