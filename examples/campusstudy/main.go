// Campusstudy runs the full 23-month measurement end to end — generation,
// preprocessing, every analysis — and prints Figure 1's monthly trend as
// an ASCII chart plus the per-direction stories the paper tells about it
// (the health-system surge and the Rapid7 disappearance).
package main

import (
	"fmt"
	"strings"

	mtls "repro"
	"repro/internal/stats"
)

func main() {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = 500

	build := mtls.GenerateConfig(cfg)
	// WithWorkers(0) = one pipeline worker per CPU; the sharded run returns
	// the same Analysis as WithWorkers(1) (the serial path).
	a := mtls.Analyze(build, mtls.WithWorkers(0))

	fmt.Println("Figure 1 — percentage of TLS connections employing mutual TLS")
	fmt.Println()
	maxShare := 0.0
	for _, p := range a.Prevalence.Overall {
		if p.Ratio() > maxShare {
			maxShare = p.Ratio()
		}
	}
	for _, p := range a.Prevalence.Overall {
		bar := int(p.Ratio() / maxShare * 50)
		fmt.Printf("%s  %5s%%  %s\n", p.Month, stats.Pct(p.Ratio()), strings.Repeat("#", bar))
	}

	fmt.Println("\nWhat moved the curve:")
	inbound := a.Prevalence.Inbound
	if len(inbound) >= 19 {
		before, during := inbound[16].Ratio(), inbound[18].Ratio()
		fmt.Printf("  inbound share %s%% (Sep 2023) -> %s%% (Nov 2023): the University\n",
			stats.Pct(before), stats.Pct(during))
		fmt.Println("  Health surge nearly doubled inbound mutual TLS (§4.1)")
	}
	outbound := a.Prevalence.Outbound
	if len(outbound) >= 19 {
		before, after := outbound[16].Ratio(), outbound[18].Ratio()
		fmt.Printf("  outbound share %s%% -> %s%%: rapid7.com traffic disappeared\n",
			stats.Pct(before), stats.Pct(after))
		fmt.Println("  from October 2023 (§4.1)")
	}

	fmt.Println("\nTop outbound SLDs over the study:")
	for _, kv := range a.Outbound.SLDShares[:min(5, len(a.Outbound.SLDShares))] {
		fmt.Printf("  %-22s %s%%\n", kv.Key,
			stats.Pct(float64(kv.Count)/float64(a.Outbound.TotalConns)))
	}

	fmt.Println("\nInbound server associations (Table 3):")
	for _, r := range a.Inbound.Rows {
		fmt.Printf("  %-22s conns %6s%%  clients %6s%%  primary issuer %s\n",
			r.Association, stats.Pct(r.ConnShare), stats.Pct(r.ClientShare), r.Primary)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
