// Privacyscan audits a dataset for sensitive information in certificate
// CN/SAN fields — the §6 analysis as a standalone tool. Point it at logs
// written by mtlsgen, or let it generate a dataset in memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	mtls "repro"
	"repro/internal/infotype"
	"repro/internal/psl"
	"repro/internal/zeek"
)

func main() {
	log.SetFlags(0)
	logs := flag.String("logs", "", "directory with ssl.log/x509.log (empty = generate)")
	max := flag.Int("n", 15, "max example values to print per finding class")
	flag.Parse()

	var ds *zeek.Dataset
	if *logs != "" {
		var err error
		ds, err = mtls.OpenLogs(*logs)
		if err != nil {
			log.Fatalf("privacyscan: %v", err)
		}
	} else {
		cfg := mtls.DefaultConfig()
		cfg.CertScale = 1000
		ds = mtls.GenerateConfig(cfg).Raw
	}

	cls := infotype.New(psl.Default(), []string{
		"University of Virginia", "University of Virginia Health System",
	})

	findings := map[infotype.InfoType][]string{}
	for _, cert := range ds.Certs {
		values := append([]string{cert.SubjectCN}, cert.SANDNS...)
		for _, v := range values {
			if v == "" {
				continue
			}
			switch t := cls.Classify(v, cert.IssuerKey()); t {
			case infotype.PersonalName, infotype.UserAccount, infotype.Email,
				infotype.MAC, infotype.SIP:
				findings[t] = append(findings[t], v)
			}
		}
	}

	fmt.Println("Sensitive information found in certificate CN/SAN fields:")
	order := []infotype.InfoType{
		infotype.PersonalName, infotype.UserAccount, infotype.Email,
		infotype.SIP, infotype.MAC,
	}
	for _, t := range order {
		vals := findings[t]
		fmt.Printf("\n%s: %d values\n", t, len(vals))
		sort.Strings(vals)
		vals = dedup(vals)
		limit := len(vals)
		if limit > *max {
			limit = *max
		}
		for _, v := range vals[:limit] {
			fmt.Printf("  %s\n", v)
		}
		if len(vals) > limit {
			fmt.Printf("  ... and %d more distinct values\n", len(vals)-limit)
		}
	}
	fmt.Println("\nRecommendation (§7): client certificates should carry only the")
	fmt.Println("minimum identifier needed for authentication — no PII.")
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	var prev string
	for i, v := range sorted {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return out
}
