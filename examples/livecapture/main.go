// Livecapture proves the monitor works on genuine TLS: it runs a real
// mutual-TLS handshake with crypto/tls over a loopback TCP connection,
// taps the bytes in both directions, feeds them to the Zeek-style
// analyzer, and prints the resulting ssl.log / x509.log records.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/zeek"
)

// tap duplicates every byte crossing a connection into capture buffers,
// the way a border span port would.
type tap struct {
	net.Conn
	mu  sync.Mutex
	in  []byte // bytes read (peer -> us)
	out []byte // bytes written (us -> peer)
}

func (t *tap) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	t.mu.Lock()
	t.in = append(t.in, p[:n]...)
	t.mu.Unlock()
	return n, err
}

func (t *tap) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	t.mu.Lock()
	t.out = append(t.out, p[:n]...)
	t.mu.Unlock()
	return n, err
}

func main() {
	log.SetFlags(0)

	// Mint a private CA plus server and client certificates — the same
	// generator the test suite uses, producing real DER.
	gen, err := certmodel.NewGenerator(4)
	if err != nil {
		log.Fatal(err)
	}
	nb := time.Now().Add(-time.Hour)
	na := time.Now().Add(24 * time.Hour)
	ca, err := gen.NewRootCA("Campus Root", "University of Virginia", nb, na)
	if err != nil {
		log.Fatal(err)
	}
	serverTLS, serverDER := mustLeaf(gen, ca, certmodel.Spec{
		SubjectCN: "vpn.virginia.edu", SANDNS: []string{"vpn.virginia.edu"},
		NotBefore: nb, NotAfter: na, Server: true,
	})
	clientTLS, clientDER := mustLeaf(gen, ca, certmodel.Spec{
		SubjectCN: "hd7gr", NotBefore: nb, NotAfter: na, Client: true,
	})

	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// Server: require and verify a client certificate (mutual TLS),
	// TLS 1.2 so the certificates are visible to the passive monitor.
	srvCfg := &tls.Config{
		Certificates: []tls.Certificate{serverTLS},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    pool,
		MinVersion:   tls.VersionTLS12,
		MaxVersion:   tls.VersionTLS12,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s := tls.Server(conn, srvCfg)
		defer s.Close()
		if err := s.Handshake(); err != nil {
			log.Printf("server handshake: %v", err)
			return
		}
		io.Copy(io.Discard, s)
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	tapped := &tap{Conn: raw}
	cliCfg := &tls.Config{
		RootCAs:      pool,
		Certificates: []tls.Certificate{clientTLS},
		ServerName:   "vpn.virginia.edu",
		MinVersion:   tls.VersionTLS12,
		MaxVersion:   tls.VersionTLS12,
	}
	c := tls.Client(tapped, cliCfg)
	if err := c.Handshake(); err != nil {
		log.Fatalf("client handshake: %v", err)
	}
	fmt.Fprintf(c, "hello over mutual TLS\n")
	c.Close()
	<-done

	// Feed the captured byte streams to the passive analyzer.
	an := zeek.NewAnalyzer(ids.NewRNG(1))
	local := raw.LocalAddr().(*net.TCPAddr)
	remote := raw.RemoteAddr().(*net.TCPAddr)
	rec, err := an.AnalyzeStreams(zeek.ConnMeta{
		TS:     time.Now(),
		OrigIP: local.IP.String(), OrigPort: uint16(local.Port),
		RespIP: remote.IP.String(), RespPort: uint16(remote.Port),
	}, tapped.out, tapped.in)
	if err != nil {
		log.Fatalf("analyzer: %v", err)
	}

	fmt.Println("ssl.log record recovered from live capture:")
	fmt.Printf("  uid=%s version=%s sni=%q established=%v mutual=%v\n",
		rec.UID, rec.Version, rec.SNI, rec.Established, rec.IsMutual())
	fmt.Printf("  server chain: %d certs, client chain: %d certs\n",
		len(rec.ServerChain), len(rec.ClientChain))

	ds := an.Dataset()
	fmt.Println("\nx509.log records:")
	for _, fp := range append(append([]ids.Fingerprint{}, rec.ServerChain...), rec.ClientChain...) {
		if cert := ds.Cert(fp); cert != nil {
			fmt.Printf("  %s subject=%q issuer=%q\n", fp.Short(), cert.SubjectDN(), cert.IssuerDN())
		}
	}

	// Cross-check the monitor saw exactly the certificates we minted.
	if rec.ServerLeaf() != ids.FingerprintBytes(serverDER) {
		log.Fatal("server leaf fingerprint mismatch")
	}
	if rec.ClientLeaf() != ids.FingerprintBytes(clientDER) {
		log.Fatal("client leaf fingerprint mismatch")
	}
	fmt.Println("\nfingerprints match the minted certificates — capture verified")
}

func mustLeaf(gen *certmodel.Generator, ca *certmodel.CA, spec certmodel.Spec) (tls.Certificate, []byte) {
	der, err := gen.IssueLeaf(ca, spec)
	if err != nil {
		log.Fatal(err)
	}
	key := gen.LastKey()
	return tls.Certificate{Certificate: [][]byte{der, ca.DER}, PrivateKey: key}, der
}
