package mtls

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestDeprecatedWorkloadCompat is the migration gate for the spec
// facade: Generate with the campus spec must return a Build deep-equal
// to the deprecated GenerateConfig at the same scale and seed, so
// callers can swap entry points without re-validating outputs.
func TestDeprecatedWorkloadCompat(t *testing.T) {
	cfg := smallConfig()
	oldB := GenerateConfig(cfg)
	newB, err := Generate(CampusSpec(), WithScale(cfg.CertScale), WithSeed(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldB, newB) {
		t.Error("Generate(CampusSpec()) != GenerateConfig(DefaultConfig()) at equal scale/seed")
	}

	// And with no options: the campus spec's own seed is the calibrated
	// default, so a bare Generate(nil) matches the default config too.
	defB, err := Generate(nil, WithScale(cfg.CertScale))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldB, defB) {
		t.Error("Generate(nil) != GenerateConfig(DefaultConfig()) at equal scale")
	}
}

// TestSpecSeedPrecedence: WithSeed beats the spec's seed; the spec's
// seed beats the config default.
func TestSpecSeedPrecedence(t *testing.T) {
	specA := CampusSpec()
	specA.Seed = 1111
	specB := CampusSpec()
	specB.Seed = 2222

	overridden, err := Generate(specA, WithScale(2000), WithSeed(2222))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Generate(specB, WithScale(2000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(overridden, direct) {
		t.Error("WithSeed(2222) over a seed-1111 spec differs from a seed-2222 spec")
	}
}

// threeCohortFacadeSpec mirrors the CI scenario-smoke cohort mix: an
// IoT fleet on shared certs, an interception middlebox, and a
// short-lived rotation grid, each with its own fingerprint preset.
func threeCohortFacadeSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := scenario.NewBuilder().
		Seed(7).
		AggregateRate(2_000_000).
		Cohort("fleet", "iot-shared-cert", 0.5,
			scenario.Arrival("constant"), scenario.Lifecycle("diurnal")).
		Cohort("acme", "enterprise-middlebox", 0.3,
			scenario.Lifecycle("spike"), scenario.Window(2, 12)).
		Cohort("grid", "rotation-wave", 0.2,
			scenario.Arrival("bursty"), scenario.Lifecycle("drain"),
			scenario.Fingerprint("chrome")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSpecEndToEnd drives a non-default three-cohort spec through the
// whole facade: Generate, log round-trip (extended 14-column schema),
// Analyze, and Render — fingerprints must survive every hop.
func TestSpecEndToEnd(t *testing.T) {
	build, err := Generate(threeCohortFacadeSpec(t), WithScale(2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Raw.Conns) == 0 || len(build.Raw.Certs) == 0 {
		t.Fatal("empty build from three-cohort spec")
	}

	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(build.Raw.Conns, ds.Conns) {
		t.Error("ssl.log round-trip lost or altered connections (fingerprint columns?)")
	}
	if len(ds.Certs) != len(build.Raw.Certs) {
		t.Errorf("x509.log round-trip: %d certs, want %d", len(ds.Certs), len(build.Raw.Certs))
	}

	a := Analyze(build)
	if a.Fingerprints == nil || len(a.Fingerprints.Rows) < 2 {
		t.Fatalf("fingerprint report missing or too small: %+v", a.Fingerprints)
	}
	ja3s := map[string]bool{}
	for _, r := range a.Fingerprints.Rows {
		ja3s[r.JA3] = true
	}
	if len(ja3s) < 2 {
		t.Errorf("want >=2 distinct JA3 values after interception filtering, got %d", len(ja3s))
	}
	// The middlebox cohort must be caught by the CT contradiction check.
	if len(a.Preprocess.InterceptionIssuers) == 0 {
		t.Error("enterprise-middlebox cohort was not flagged as interception")
	}

	out := Render(a)
	if !strings.Contains(out, "ClientHello fingerprint prevalence") {
		t.Error("Render output lacks the fingerprint prevalence section")
	}
}

// TestSpecAnalyzeWorkersDeterminism: the spec-compiled dataset analyzes
// identically at every worker count.
func TestSpecAnalyzeWorkersDeterminism(t *testing.T) {
	build, err := Generate(threeCohortFacadeSpec(t), WithScale(2000))
	if err != nil {
		t.Fatal(err)
	}
	serial := Analyze(build, WithWorkers(1))
	for _, workers := range []int{2, 4} {
		if got := Analyze(build, WithWorkers(workers)); !reflect.DeepEqual(serial, got) {
			t.Errorf("analysis differs between 1 and %d workers", workers)
		}
	}
}
