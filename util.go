package mtls

import (
	"sort"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/zeek"
)

// certsSorted returns the dataset's certificates in fingerprint order so
// log output is deterministic.
func certsSorted(ds *zeek.Dataset) []*certmodel.CertInfo {
	out := make([]*certmodel.CertInfo, 0, len(ds.Certs))
	for _, c := range ds.Certs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

func fileIDFor(c *certmodel.CertInfo) ids.FileID {
	return ids.NewFileID(c.Fingerprint)
}
