package mtls_test

import (
	"fmt"

	mtls "repro"
	"repro/internal/stats"
)

// Example_pipeline shows the three-call flow: generate the synthetic
// campus dataset, run the paper's analyses, read a result.
func Example_pipeline() {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = 4000 // tiny, for a fast example

	build := mtls.GenerateConfig(cfg)
	analysis := mtls.Analyze(build)

	first := analysis.Prevalence.FirstShare()
	last := analysis.Prevalence.LastShare()
	fmt.Printf("mTLS share rises: %v\n", last > first)
	fmt.Printf("months observed: %d\n", len(analysis.Prevalence.Overall))
	// Output:
	// mTLS share rises: true
	// months observed: 23
}

// Example_logs shows the Zeek-style log round trip.
func Example_logs() {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = 4000
	build := mtls.GenerateConfig(cfg)

	dir := "/tmp/mtls-example-logs"
	if err := mtls.WriteLogs(build.Raw, dir); err != nil {
		fmt.Println("write:", err)
		return
	}
	ds, err := mtls.OpenLogs(dir)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	fmt.Printf("round trip preserved connections: %v\n", len(ds.Conns) == len(build.Raw.Conns))
	// Output:
	// round trip preserved connections: true
}

// Example_table1 prints a reproduced table row the way cmd/mtlsreport
// does.
func Example_table1() {
	cfg := mtls.DefaultConfig()
	cfg.CertScale = 4000
	a := mtls.Analyze(mtls.GenerateConfig(cfg))
	row := a.CertStats.Row("Client")
	fmt.Printf("client certs are overwhelmingly mTLS: %v\n", row.MutualShare() > 0.9)
	_ = stats.Pct(row.MutualShare())
	// Output:
	// client certs are overwhelmingly mTLS: true
}
