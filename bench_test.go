package mtls

// bench_test.go is the reproduction harness: one benchmark per paper table
// and figure (DESIGN.md §4's index), each of which regenerates its result
// from the shared dataset, plus end-to-end and ablation benchmarks for the
// design choices DESIGN.md calls out (fingerprint-indexed joining vs
// rescan, DPD vs port-only capture, lexicon NER vs regex-only
// classification, bulk path vs wire path).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each table benchmark prints its headline numbers once so a bench run
// doubles as a compact reproduction report.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/infotype"
	"repro/internal/psl"
	"repro/internal/stats"
	"repro/internal/tlswire"
	"repro/internal/zeek"
)

var (
	benchOnce sync.Once
	benchPipe *core.Pipeline
	benchIn   *core.Input
)

func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.CertScale = 500
		build := GenerateConfig(cfg)
		benchIn = InputFromBuild(build)
		benchPipe = core.NewPipeline(benchIn)
	})
	return benchPipe
}

func logOnce(b *testing.B, format string, args ...any) {
	b.Helper()
	if b.N == 1 {
		b.Logf(format, args...)
	}
}

// BenchmarkGenerateDataset times the full 23-month synthesis.
func BenchmarkGenerateDataset(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CertScale = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		build := GenerateConfig(cfg)
		if len(build.Raw.Conns) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkPreprocess times §3.2 (interception filter + enrichment).
func BenchmarkPreprocess(b *testing.B) {
	benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(benchIn)
		if p.PreprocessReport().RawCerts == 0 {
			b.Fatal("no certs")
		}
	}
}

// BenchmarkTable1CertStats regenerates Table 1.
func BenchmarkTable1CertStats(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.CertStats()
		logOnce(b, "Table 1: total certs=%d, mTLS share=%s%%",
			r.Row("Total").Total, stats.Pct(r.Row("Total").MutualShare()))
	}
}

// BenchmarkFigure1Prevalence regenerates Figure 1.
func BenchmarkFigure1Prevalence(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Prevalence()
		logOnce(b, "Figure 1: %s%% -> %s%%", stats.Pct(r.FirstShare()), stats.Pct(r.LastShare()))
	}
}

// BenchmarkTable2Services regenerates Table 2.
func BenchmarkTable2Services(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Services()
		logOnce(b, "Table 2: inbound mTLS top=%s (%s%%)",
			r.MutualInbound[0].PortLabel, stats.Pct(r.MutualInbound[0].Share))
	}
}

// BenchmarkTable3Inbound regenerates Table 3.
func BenchmarkTable3Inbound(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Inbound()
		logOnce(b, "Table 3: health conns=%s%%, primary=%s",
			stats.Pct(r.Row(core.AssocHealth).ConnShare), r.Row(core.AssocHealth).Primary)
	}
}

// BenchmarkFigure2Outbound regenerates Figure 2.
func BenchmarkFigure2Outbound(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Outbound()
		logOnce(b, "Figure 2: amazonaws=%s%%, missing issuer=%s%%",
			stats.Pct(r.SLDShare("amazonaws.com")), stats.Pct(r.MissingIssuerShare))
	}
}

// BenchmarkTable4DummyIssuers regenerates Tables 4 and 10.
func BenchmarkTable4DummyIssuers(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.DummyIssuers()
		logOnce(b, "Table 4: %d dummy groups, %d both-endpoint", len(r.Rows), len(r.BothEndpoints))
	}
}

// BenchmarkTable10DummyBoth isolates the Appendix B view (shares the
// dummy-issuer scan; reported separately to mirror the paper's structure).
func BenchmarkTable10DummyBoth(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.DummyIssuers()
		if len(r.BothEndpoints) == 0 {
			b.Fatal("no both-endpoint dummy rows")
		}
	}
}

// BenchmarkSerialCollisions regenerates §5.1.2.
func BenchmarkSerialCollisions(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Serials()
		logOnce(b, "§5.1.2: inbound clients=%d, outbound=%d",
			r.Inbound.ClientsInvolved, r.Outbound.ClientsInvolved)
	}
}

// BenchmarkTable5SharingSameConn regenerates Table 5.
func BenchmarkTable5SharingSameConn(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.SharingSame()
		logOnce(b, "Table 5: in=%d out=%d shared conns", r.InboundConns, r.OutboundConns)
	}
}

// BenchmarkTable6SubnetSpread regenerates Table 6.
func BenchmarkTable6SubnetSpread(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.SharingCross()
		logOnce(b, "Table 6: server q=%v client q=%v", r.ServerQuantiles, r.ClientQuantiles)
	}
}

// BenchmarkFigure3IncorrectDates regenerates Figure 3 / Tables 11-12.
func BenchmarkFigure3IncorrectDates(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.BadDates()
		logOnce(b, "Figure 3: %d incorrect-date certs", r.Certs)
	}
}

// BenchmarkFigure4Validity regenerates Figure 4.
func BenchmarkFigure4Validity(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Validity()
		logOnce(b, "Figure 4: extreme=%d, max=%d days (%s)",
			r.ExtremeCount, r.MaxValidityDays, r.MaxValiditySLD)
	}
}

// BenchmarkFigure5Expired regenerates Figure 5.
func BenchmarkFigure5Expired(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Expired()
		logOnce(b, "Figure 5: in=%d out=%d expired certs, Apple cluster=%d",
			len(r.Inbound.Points), len(r.Outbound.Points), r.Outbound.AppleCluster)
	}
}

// BenchmarkTable7Utilization regenerates Table 7.
func BenchmarkTable7Utilization(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Utilization()
		logOnce(b, "Table 7: client CN=%s%%", stats.Pct(r.Row("Client certs.").CNShare()))
	}
}

// BenchmarkTable8InfoTypes regenerates Table 8.
func BenchmarkTable8InfoTypes(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Contents()
		logOnce(b, "Table 8: client-private Org/Product=%s%%",
			stats.Pct(r.Share("CN", "client-private", "Org/Product")))
	}
}

// BenchmarkTable9Unidentified regenerates Table 9.
func BenchmarkTable9Unidentified(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Unidentified()
		logOnce(b, "Table 9: server-private non-random=%s%%",
			stats.Pct(r.Share("server-private-CN", "Non-random")))
	}
}

// BenchmarkTable13SharedInfo regenerates Table 13.
func BenchmarkTable13SharedInfo(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.SharedInfo()
		logOnce(b, "Table 13: %d shared certs, private=%s%%", r.Certs, stats.Pct(r.PrivateShare))
	}
}

// BenchmarkTable14NonMutual regenerates Table 14.
func BenchmarkTable14NonMutual(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.NonMutual()
		logOnce(b, "Table 14: public share=%s%%", stats.Pct(r.PublicShare))
	}
}

// BenchmarkInterceptionFilter times the §3.2 detector end to end (it runs
// inside preprocessing; this isolates it on a fresh pipeline).
func BenchmarkInterceptionFilter(b *testing.B) {
	benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(benchIn)
		r := p.PreprocessReport()
		logOnce(b, "§3.2: %d interception issuers, %d certs excluded",
			len(r.InterceptionIssuers), r.ExcludedCerts)
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationJoinIndexed measures the fingerprint-indexed ssl↔x509
// join the pipeline uses...
func BenchmarkAblationJoinIndexed(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var hits int
		for j := range ds.Conns {
			if ds.Cert(ds.Conns[j].ServerLeaf()) != nil {
				hits++
			}
		}
		if hits == 0 {
			b.Fatal("no joins")
		}
	}
}

// ...and BenchmarkAblationJoinRescan the naive alternative: resolving each
// connection's leaf by scanning the certificate list (bounded sample; the
// full quadratic scan is intractable, which is the point).
func BenchmarkAblationJoinRescan(b *testing.B) {
	ds := benchDataset(b)
	certs := make([]*certmodel.CertInfo, 0, len(ds.Certs))
	for _, c := range ds.Certs {
		certs = append(certs, c)
	}
	sample := ds.Conns
	if len(sample) > 200 {
		sample = sample[:200]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var hits int
		for j := range sample {
			want := sample[j].ServerLeaf()
			for _, c := range certs {
				if c.Fingerprint == want {
					hits++
					break
				}
			}
		}
		_ = hits
	}
}

func benchDataset(b *testing.B) *zeek.Dataset {
	b.Helper()
	benchPipeline(b)
	return benchIn.Raw
}

// BenchmarkAblationDPDSniff measures dynamic protocol detection over
// synthesized handshake prefixes (how Zeek finds TLS on ports like 20017)…
func BenchmarkAblationDPDSniff(b *testing.B) {
	streams := benchStreams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tls int
		for _, s := range streams {
			if tlswire.SniffTLS(s) {
				tls++
			}
		}
		if tls == 0 {
			b.Fatal("nothing sniffed")
		}
	}
}

// …and BenchmarkAblationPortOnly the port-443 heuristic it replaces (which
// would miss FileWave, Globus, LDAPS, MQTT — 36% of inbound mTLS).
func BenchmarkAblationPortOnly(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tls int
		for j := range ds.Conns {
			if ds.Conns[j].RespPort == 443 {
				tls++
			}
		}
		_ = tls
	}
}

func benchStreams(b *testing.B) [][]byte {
	b.Helper()
	rng := ids.NewRNG(404)
	streams := make([][]byte, 0, 300)
	for i := 0; i < 300; i++ {
		if i%3 == 2 {
			streams = append(streams, []byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n"))
			continue
		}
		tr := tlswire.Synthesize(tlswire.TranscriptSpec{
			Version: tlswire.VersionTLS12, SNI: fmt.Sprintf("h%d.example.com", i),
			ServerChain: [][]byte{[]byte("der")}, Established: true,
		}, rng)
		streams = append(streams, tr.ClientToServer)
	}
	return streams
}

// BenchmarkAblationNERLexicon measures the full CN classifier (lexicon NER
// + randomness + formats)…
func BenchmarkAblationNERLexicon(b *testing.B) {
	corpus := benchCorpus(b)
	cls := infotype.New(psl.Default(), []string{"University of Virginia"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var persons int
		for _, v := range corpus {
			if cls.Classify(v, "University of Virginia") == infotype.PersonalName {
				persons++
			}
		}
		if persons == 0 {
			b.Fatal("no persons found")
		}
	}
}

// …and BenchmarkAblationRegexOnly the regex-only baseline (prior work's
// approach, which cannot label persons/orgs/products at all).
func BenchmarkAblationRegexOnly(b *testing.B) {
	corpus := benchCorpus(b)
	list := psl.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var domains int
		for _, v := range corpus {
			if list.IsDomainName(v) || infotype.IsIPAddress(v) ||
				infotype.IsMACAddress(v) || infotype.IsEmailAddress(v) ||
				infotype.IsSIPAddress(v) {
				domains++
			}
		}
		_ = domains
	}
}

func benchCorpus(b *testing.B) []string {
	b.Helper()
	ds := benchDataset(b)
	corpus := make([]string, 0, 4096)
	for _, c := range ds.Certs {
		if c.SubjectCN != "" {
			corpus = append(corpus, c.SubjectCN)
		}
		if len(corpus) == 4096 {
			break
		}
	}
	return corpus
}

// BenchmarkWirePathAnalyzer measures the full wire path: synthesize real
// DER + handshake bytes, then run the Zeek-style analyzer — the per-
// connection cost a live deployment would pay.
func BenchmarkWirePathAnalyzer(b *testing.B) {
	gen, err := certmodel.NewGenerator(4)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := gen.NewRootCA("Bench Root", "Bench Org",
		certmodel.DayToTime(-365), certmodel.DayToTime(3650))
	if err != nil {
		b.Fatal(err)
	}
	serverDER, err := gen.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "bench.example.com", SANDNS: []string{"bench.example.com"},
		NotBefore: certmodel.DayToTime(0), NotAfter: certmodel.DayToTime(365), Server: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	clientDER, err := gen.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "bench-client",
		NotBefore: certmodel.DayToTime(0), NotAfter: certmodel.DayToTime(365), Client: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := ids.NewRNG(7)
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version: tlswire.VersionTLS12, SNI: "bench.example.com",
		ServerChain: [][]byte{serverDER, ca.DER}, ClientChain: [][]byte{clientDER},
		Established: true,
	}, rng)
	meta := zeek.ConnMeta{TS: certmodel.DayToTime(10), OrigIP: "10.0.0.1", RespIP: "192.0.2.1", RespPort: 443}
	b.SetBytes(int64(len(tr.ClientToServer) + len(tr.ServerToClient)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := zeek.NewAnalyzer(ids.NewRNG(uint64(i)))
		rec, err := an.AnalyzeStreams(meta, tr.ClientToServer, tr.ServerToClient)
		if err != nil || !rec.IsMutual() {
			b.Fatalf("analyze: %v", err)
		}
	}
}

// BenchmarkTSVRoundTrip measures Zeek-log serialization end to end.
func BenchmarkTSVRoundTrip(b *testing.B) {
	ds := benchDataset(b)
	sample := zeek.NewDataset()
	sample.Conns = ds.Conns
	if len(sample.Conns) > 5000 {
		sample.Conns = sample.Conns[:5000]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := zeek.NewSSLWriter(&buf)
		for j := range sample.Conns {
			if err := w.Write(&sample.Conns[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		recs, err := zeek.ReadSSL(&buf)
		if err != nil || len(recs) != len(sample.Conns) {
			b.Fatalf("round trip: %v (%d rows)", err, len(recs))
		}
	}
}

// BenchmarkEndToEnd measures generate + analyze at reduced scale — the
// whole reproduction in one number (Workers 0 = one per CPU).
func BenchmarkEndToEnd(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CertScale = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := Analyze(GenerateConfig(cfg))
		if a.CertStats.Row("Total").Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// BenchmarkEndToEndSerial is BenchmarkEndToEnd pinned to the serial
// legacy path — the concurrency speedup is EndToEnd vs EndToEndSerial.
func BenchmarkEndToEndSerial(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CertScale = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := Analyze(GenerateConfig(cfg), WithWorkers(1))
		if a.CertStats.Row("Total").Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// --- Concurrency & caching ablations --------------------------------------
//
// Each pair isolates one mechanism of the parallel pipeline: sharded
// preprocessing, analysis fan-out, and the hot-path caches. All variants
// produce byte-identical analyses (TestParallelDeterminism).

// benchInputWorkers clones the shared bench input with a worker setting.
func benchInputWorkers(b *testing.B, workers int, noCache bool) *core.Input {
	b.Helper()
	benchPipeline(b)
	in := *benchIn
	in.Workers = workers
	in.NoCache = noCache
	return &in
}

// BenchmarkAblationPreprocessSerial measures §3.2 preprocessing on the
// single-threaded legacy path…
func BenchmarkAblationPreprocessSerial(b *testing.B) {
	in := benchInputWorkers(b, 1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.NewPipeline(in).PreprocessReport().RawCerts == 0 {
			b.Fatal("no certs")
		}
	}
}

// …BenchmarkAblationPreprocessSharded the same work sharded across one
// worker per CPU…
func BenchmarkAblationPreprocessSharded(b *testing.B) {
	in := benchInputWorkers(b, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.NewPipeline(in).PreprocessReport().RawCerts == 0 {
			b.Fatal("no certs")
		}
	}
}

// …and BenchmarkAblationPreprocessNoCache the serial path with the
// PSL-split and issuer-classification memos disabled, isolating what the
// caches alone buy.
func BenchmarkAblationPreprocessNoCache(b *testing.B) {
	in := benchInputWorkers(b, 1, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.NewPipeline(in).PreprocessReport().RawCerts == 0 {
			b.Fatal("no certs")
		}
	}
}

// BenchmarkAblationAnalysesSerial measures the 21 table/figure analyses
// run sequentially over a prebuilt pipeline…
func BenchmarkAblationAnalysesSerial(b *testing.B) {
	p := core.NewPipeline(benchInputWorkers(b, 1, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.RunAll().CertStats.Row("Total").Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// …and BenchmarkAblationAnalysesFanOut the same analyses dispatched
// across the bounded worker pool.
func BenchmarkAblationAnalysesFanOut(b *testing.B) {
	p := core.NewPipeline(benchInputWorkers(b, 0, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.RunAll().CertStats.Row("Total").Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// BenchmarkPipelineParallel sweeps worker counts over the full pipeline
// (preprocess + analyses) so the bench trajectory records the scaling
// curve, not just the endpoints.
func BenchmarkPipelineParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			in := benchInputWorkers(b, workers, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if core.NewPipeline(in).RunAll().CertStats.Row("Total").Total == 0 {
					b.Fatal("empty analysis")
				}
			}
		})
	}
}

// BenchmarkRenderReport measures formatting every table and figure.
func BenchmarkRenderReport(b *testing.B) {
	benchPipeline(b)
	a := core.Run(benchIn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Render(a)) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkExperimentsCompare measures the paper-vs-measured comparison.
func BenchmarkExperimentsCompare(b *testing.B) {
	benchPipeline(b)
	a := core.Run(benchIn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Experiments(a, "bench")) == 0 {
			b.Fatal("empty experiments")
		}
	}
}
