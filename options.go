package mtls

import (
	"repro/internal/metrics"
	"repro/internal/zeek"
)

// AnalyzeOption configures Analyze. The zero-option call uses one
// worker per CPU.
type AnalyzeOption func(*analyzeConfig)

type analyzeConfig struct {
	workers int
}

// WithWorkers sets the pipeline's concurrency: 0 uses one worker per
// CPU, 1 runs the exact serial legacy path, n>1 shards preprocessing
// and fans the analyses out across n workers. The Analysis is identical
// at every setting.
func WithWorkers(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.workers = n }
}

// LogOption configures OpenLogs' malformed-row policy. It is the zeek
// package's reader option, so the same values thread through to
// zeek.ForEachSSL / zeek.LoadDataset.
type LogOption = zeek.Opt

// Strict selects fail-stop log parsing: the first malformed row aborts
// with an error describing it. This is OpenLogs' default.
func Strict() LogOption { return zeek.Strict() }

// Permissive makes OpenLogs skip malformed rows (quarantining and
// counting them via WithQuarantine/WithMetrics) instead of failing.
func Permissive() LogOption { return zeek.Permissive() }

// WithQuarantine captures each rejected row's raw line into q.
func WithQuarantine(q *zeek.Quarantine) LogOption { return zeek.WithQuarantine(q) }

// WithMetrics publishes per-(file, reason) rejection counters into reg;
// read them back with RejectTotals.
func WithMetrics(reg *metrics.Registry) LogOption { return zeek.WithMetrics(reg) }

// WithBatchSize sets the record-batch granularity OpenLogs reads with
// (default zeek.DefaultBatchSize). Larger batches amortize per-row
// overhead; the loaded Dataset is identical at every setting.
func WithBatchSize(n int) LogOption { return zeek.WithBatchSize(n) }
