package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseCampusRoundTrip(t *testing.T) {
	want := Campus()
	for _, render := range []struct {
		name string
		out  string
	}{
		{"canonical", Render(want)},
		{"commented", RenderCommented(want)},
	} {
		got, err := Parse([]byte(render.out))
		if err != nil {
			t.Fatalf("%s: %v\n%s", render.name, err, render.out)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip diverged:\ngot  %+v\nwant %+v", render.name, got, want)
		}
	}
}

func TestParseFullSpec(t *testing.T) {
	doc := `
# three cohorts, quoted strings, overrides
version: 1
seed: 42
aggregate_rate: 1500000.5
cohorts:
  - id: iot
    profile: iot-shared-cert
    rate_fraction: 0.5
    arrival: bursty
    lifecycle: spike
    start_month: 2
    end_month: 20
    clients: 4000
    fingerprint: iot-embedded
    sni: "mqtt.fleet example.net" # spaces force quoting
    port: 8883
  - id: mbox
    profile: enterprise-middlebox
    rate_fraction: 0.3
  - id: wave
    profile: rotation-wave
    rate_fraction: 0.2
    lifecycle: drain
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.AggregateRate != 1500000.5 || len(s.Cohorts) != 3 {
		t.Fatalf("parsed %+v", s)
	}
	c := s.Cohorts[0]
	if c.ID != "iot" || c.Profile != ProfileIoTSharedCert || c.RateFraction != 0.5 ||
		c.Arrival != ArrivalBursty || c.Lifecycle != LifecycleSpike ||
		c.StartMonth != 2 || c.EndMonth != 20 || c.Clients != 4000 ||
		c.Fingerprint != "iot-embedded" || c.SNI != "mqtt.fleet example.net" || c.Port != 8883 {
		t.Fatalf("cohort[0] = %+v", c)
	}
	// The parsed spec renders and re-parses to itself.
	back, err := Parse([]byte(Render(s)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("render round trip diverged:\n%s", Render(s))
	}
}

func TestParseErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		doc    string
		reason Reason
		field  string
	}{
		{"unknown top-level", "version: 1\nbogus: 3\n", ReasonUnknownField, "bogus"},
		{"unknown cohort field", "version: 1\ncohorts:\n  - id: a\n    profil: x\n", ReasonUnknownField, "cohorts[0].profil"},
		{"duplicate key", "version: 1\nversion: 2\n", ReasonDuplicate, "version"},
		{"duplicate cohort key", "version: 1\ncohorts:\n  - id: a\n    id: b\n", ReasonDuplicate, "id"},
		{"tab indent", "version: 1\n\tseed: 2\n", ReasonIndent, ""},
		{"bad indent", "version: 1\ncohorts:\n  - id: a\n      profile: x\n", ReasonIndent, ""},
		{"type int", "version: one\n", ReasonType, "version"},
		{"type float", "version: 1\naggregate_rate: fast\n", ReasonType, "aggregate_rate"},
		{"quoted int", "version: \"1\"\n", ReasonType, "version"},
		{"nan rejected", "version: 1\naggregate_rate: NaN\n", ReasonType, "aggregate_rate"},
		{"structure scalar for list", "version: 1\ncohorts: yes\n", ReasonStructure, "cohorts"},
		{"structure list at top", "- id: a\n", ReasonStructure, ""},
		{"missing value", "version: 1\nseed:\n", ReasonSyntax, "seed"},
		{"unterminated quote", "version: 1\ncohorts:\n  - id: \"a\n", ReasonSyntax, ""},
		{"bad escape", "version: 1\ncohorts:\n  - id: \"\\q\"\n", ReasonSyntax, ""},
		{"no key", "version: 1\njust text\n", ReasonSyntax, ""},
		{"empty doc", "# only a comment\n", ReasonSyntax, ""},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: parse accepted\n%s", tc.name, tc.doc)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *scenario.Error", tc.name, err)
			continue
		}
		if se.Reason != tc.reason {
			t.Errorf("%s: reason = %s, want %s (%v)", tc.name, se.Reason, tc.reason, err)
		}
		if tc.field != "" && se.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, se.Field, tc.field)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := func() *Spec {
		s, err := NewBuilder().
			AggregateRate(1e6).
			Cohort("a", ProfileIoTSharedCert, 0.25, Arrival(ArrivalBursty)).
			Cohort("b", ProfileRotationWave, 0.75, Lifecycle(LifecycleSpike)).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if err := ok().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"bad version", func(s *Spec) { s.Version = 2 }},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }},
		{"negative rate", func(s *Spec) { s.AggregateRate = -1 }},
		{"empty id", func(s *Spec) { s.Cohorts[0].ID = "" }},
		{"bad id charset", func(s *Spec) { s.Cohorts[0].ID = "Has Space" }},
		{"duplicate id", func(s *Spec) { s.Cohorts[1].ID = s.Cohorts[0].ID }},
		{"unknown profile", func(s *Spec) { s.Cohorts[0].Profile = "nope" }},
		{"zero fraction", func(s *Spec) { s.Cohorts[0].RateFraction = 0 }},
		{"fractions do not sum", func(s *Spec) { s.Cohorts[0].RateFraction = 0.5 }},
		{"unknown arrival", func(s *Spec) { s.Cohorts[0].Arrival = "tidal" }},
		{"unknown lifecycle", func(s *Spec) { s.Cohorts[0].Lifecycle = "lunar" }},
		{"inverted window", func(s *Spec) { s.Cohorts[0].StartMonth = 9; s.Cohorts[0].EndMonth = 3 }},
		{"bad port", func(s *Spec) { s.Cohorts[0].Port = 70000 }},
	}
	for _, tc := range cases {
		s := ok()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}

func TestCampusIsValid(t *testing.T) {
	if err := Campus().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDoesNotAliasCohorts(t *testing.T) {
	b := NewBuilder().AggregateRate(10).Cohort("a", ProfileRotationWave, 1)
	s1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Cohort("b", ProfileIoTSharedCert, 1)
	if len(s1.Cohorts) != 1 {
		t.Fatal("Build result aliases the builder's cohort slice")
	}
}

func TestRenderQuoting(t *testing.T) {
	s := &Spec{Version: 1, Cohorts: []Cohort{{
		ID: "q", Profile: ProfileRotationWave, RateFraction: 1,
		SNI: `odd "name"` + "\twith\nall # of: it\\",
	}}}
	got, err := Parse([]byte(Render(s)))
	if err != nil {
		t.Fatalf("%v\n%s", err, Render(s))
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("quoting round trip diverged:\n%s", Render(s))
	}
	if !strings.Contains(Render(s), `"`) {
		t.Fatal("odd SNI was not quoted")
	}
}
