package scenario

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzSpecParse pins three properties of the spec reader:
//
//  1. No input panics.
//  2. Every failure is a *scenario.Error carrying a Reason from the
//     published taxonomy.
//  3. Any document that parses renders back to a document that parses
//     to a deep-equal Spec (parse → render → parse is the identity).
func FuzzSpecParse(f *testing.F) {
	seeds := []string{
		Render(Campus()),
		RenderCommented(Campus()),
		"version: 1\nseed: 7\naggregate_rate: 250000\ncohorts:\n" +
			"  - id: iot\n    profile: iot-shared-cert\n    rate_fraction: 0.5\n" +
			"    arrival: bursty\n    lifecycle: spike\n    start_month: 3\n" +
			"    end_month: 18\n    clients: 900\n    fingerprint: iot-embedded\n" +
			"    sni: mqtt.fleet.example.net\n    port: 8883\n" +
			"  - id: mbox\n    profile: enterprise-middlebox\n    rate_fraction: 0.5\n",
		"# comment\nversion: 1 # trailing\ncohorts:\n  - id: \"a b#c\"\n    profile: x\n    rate_fraction: 1\n",
		"version: 1\ncohorts:\n  - id: \"esc\\\\\\\"\\n\\t\\r\"\n    profile: p\n    rate_fraction: 1\n",
		// One seed per error reason.
		"version: 1\nbogus: 3\n",              // unknown-field
		"version: 1\nversion: 2\n",            // duplicate-key
		"version: 1\n\tseed: 2\n",             // indent
		"version: one\n",                      // type
		"version: 1\ncohorts: yes\n",          // structure
		"version: 1\nseed:\n",                 // syntax (missing value)
		"version: 1\ncohorts:\n  - id: \"a\n", // syntax (unterminated quote)
		"",                                    // syntax (empty document)
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	known := map[Reason]bool{
		ReasonSyntax: true, ReasonIndent: true, ReasonDuplicate: true,
		ReasonUnknownField: true, ReasonType: true, ReasonStructure: true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *scenario.Error", err)
			}
			if !known[se.Reason] {
				t.Fatalf("error %v carries unknown reason %q", err, se.Reason)
			}
			return
		}
		out := Render(s)
		back, err := Parse([]byte(out))
		if err != nil {
			t.Fatalf("render output does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("parse/render round trip diverged:\nfirst  %+v\nsecond %+v\nrendered:\n%s", s, back, out)
		}
	})
}
