// Package scenario is the declarative workload layer: a Spec describes
// WHAT traffic a run should contain — client cohorts with rate
// fractions, arrival processes, lifecycle patterns, certificate-practice
// profiles, and ClientHello fingerprint presets — and the workload
// package compiles it into the entity machinery that synthesizes the
// dataset. The default spec (Campus) compiles to exactly the calibrated
// campus mix the paper measured, byte-identical to the pre-spec
// generator at every seed and scale; non-default specs open the workload
// axis the ROADMAP calls for.
//
// Specs are parsed from a dependency-free YAML subset (Parse), rendered
// back canonically (Render / RenderCommented), or built programmatically
// (NewBuilder). The package is a leaf: it imports nothing from the rest
// of the repository, so workload, the facade, and the CLIs can all
// depend on it without cycles.
package scenario

import (
	"fmt"
	"math"
)

// SpecVersion is the schema version this build reads and writes.
const SpecVersion = 1

// Certificate-practice profiles: what kind of certificates a cohort's
// clients and servers present (DESIGN.md §2, "Scenario specs").
const (
	// ProfileBaselineCampus is the paper's full calibrated roster —
	// every entity, misconfiguration population, interception mix, and
	// background curve of the original generator.
	ProfileBaselineCampus = "baseline-campus"
	// ProfileIoTSharedCert is an IoT fleet where thousands of devices
	// share a handful of long-lived client certificates (§5.2.1 writ
	// large).
	ProfileIoTSharedCert = "iot-shared-cert"
	// ProfileEnterpriseMiddlebox is TLS-inspection middleboxes re-signing
	// public domains under a private gateway CA, with the genuine
	// issuers visible in CT (§3.2's exclusion target).
	ProfileEnterpriseMiddlebox = "enterprise-middlebox"
	// ProfileRotationWave is aggressive short-validity rotation: 14-day
	// certificates reissued in synchronized waves (the Globus pattern).
	ProfileRotationWave = "rotation-wave"
	// ProfileExpiredStraggler is a population that keeps presenting
	// long-expired client certificates (Figure 5's stragglers).
	ProfileExpiredStraggler = "expired-straggler"
)

// Arrival processes: how a cohort's connections scatter inside a day.
const (
	ArrivalPoisson  = "poisson"
	ArrivalConstant = "constant"
	ArrivalBursty   = "bursty"
)

// Lifecycle patterns: how a cohort's volume evolves over the study.
const (
	LifecycleSteady  = "steady"
	LifecycleDiurnal = "diurnal"
	LifecycleSpike   = "spike"
	LifecycleDrain   = "drain"
)

// Profiles lists every certificate-practice profile.
func Profiles() []string {
	return []string{
		ProfileBaselineCampus, ProfileIoTSharedCert, ProfileEnterpriseMiddlebox,
		ProfileRotationWave, ProfileExpiredStraggler,
	}
}

// Arrivals lists every arrival process.
func Arrivals() []string { return []string{ArrivalPoisson, ArrivalConstant, ArrivalBursty} }

// Lifecycles lists every lifecycle pattern.
func Lifecycles() []string {
	return []string{LifecycleSteady, LifecycleDiurnal, LifecycleSpike, LifecycleDrain}
}

// Spec is one declarative workload description.
type Spec struct {
	// Version is the schema version (must be SpecVersion).
	Version int
	// Seed drives all generation randomness; equal seeds give identical
	// datasets. 0 falls back to the library default at compile time.
	Seed uint64
	// AggregateRate is the total study connection volume (unscaled; it
	// becomes row weights, not rows), split across cohorts by
	// RateFraction. 0 means "natural": every cohort emits its profile's
	// calibrated volume — which is what makes Campus() byte-identical to
	// the pre-spec generator.
	AggregateRate float64
	// Cohorts are the traffic populations, emitted in order.
	Cohorts []Cohort
}

// Cohort is one client population inside a Spec.
type Cohort struct {
	// ID names the cohort; it must be unique and is woven into entity
	// names, RNG fork labels, and report attribution.
	ID string
	// Profile is the certificate-practice profile (Profiles()).
	Profile string
	// RateFraction is this cohort's share of AggregateRate. Fractions
	// must sum to 1 (±1e-6). Required even in natural-volume mode so a
	// spec always documents its intended mix.
	RateFraction float64
	// Arrival is the intra-day arrival process ("" = poisson).
	Arrival string
	// Lifecycle is the volume pattern over the study ("" = steady).
	Lifecycle string
	// StartMonth/EndMonth bound the activity window in study months
	// (inclusive; EndMonth 0 = last month).
	StartMonth int
	EndMonth   int
	// Clients overrides the profile's unscaled distinct-client count
	// (0 = profile default). Ignored by baseline-campus, which carries
	// its own per-entity census.
	Clients int
	// Fingerprint selects a ClientHello preset for the cohort's clients
	// (tlswire.PresetNames; "" = none, rows carry no fingerprint
	// columns). Ignored by baseline-campus.
	Fingerprint string
	// SNI overrides the profile's server name ("" = profile default).
	SNI string
	// Port overrides the profile's server port (0 = profile default).
	Port int
}

// Validate checks a spec for structural errors. Parse does not validate
// (so Render∘Parse round-trips arbitrary well-formed documents); every
// compile entry point does.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("scenario: nil spec")
	}
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: unsupported spec version %d (want %d)", s.Version, SpecVersion)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("scenario: spec has no cohorts")
	}
	if s.AggregateRate < 0 || math.IsNaN(s.AggregateRate) || math.IsInf(s.AggregateRate, 0) {
		return fmt.Errorf("scenario: aggregate_rate %v out of range", s.AggregateRate)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	var fracSum float64
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		at := fmt.Sprintf("cohorts[%d]", i)
		if c.ID == "" {
			return fmt.Errorf("scenario: %s: missing id", at)
		}
		for _, r := range c.ID {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
				return fmt.Errorf("scenario: %s: id %q may only contain [a-z0-9-_]", at, c.ID)
			}
		}
		if seen[c.ID] {
			return fmt.Errorf("scenario: %s: duplicate id %q", at, c.ID)
		}
		seen[c.ID] = true
		if !contains(Profiles(), c.Profile) {
			return fmt.Errorf("scenario: %s (%s): unknown profile %q (want one of %v)", at, c.ID, c.Profile, Profiles())
		}
		if c.RateFraction <= 0 || c.RateFraction > 1 || math.IsNaN(c.RateFraction) {
			return fmt.Errorf("scenario: %s (%s): rate_fraction %v outside (0, 1]", at, c.ID, c.RateFraction)
		}
		fracSum += c.RateFraction
		if c.Arrival != "" && !contains(Arrivals(), c.Arrival) {
			return fmt.Errorf("scenario: %s (%s): unknown arrival %q (want one of %v)", at, c.ID, c.Arrival, Arrivals())
		}
		if c.Lifecycle != "" && !contains(Lifecycles(), c.Lifecycle) {
			return fmt.Errorf("scenario: %s (%s): unknown lifecycle %q (want one of %v)", at, c.ID, c.Lifecycle, Lifecycles())
		}
		if c.StartMonth < 0 || c.EndMonth < 0 {
			return fmt.Errorf("scenario: %s (%s): negative activity window", at, c.ID)
		}
		if c.EndMonth > 0 && c.StartMonth > c.EndMonth {
			return fmt.Errorf("scenario: %s (%s): start_month %d after end_month %d", at, c.ID, c.StartMonth, c.EndMonth)
		}
		if c.Clients < 0 {
			return fmt.Errorf("scenario: %s (%s): negative clients", at, c.ID)
		}
		if c.Port < 0 || c.Port > 65535 {
			return fmt.Errorf("scenario: %s (%s): port %d out of range", at, c.ID, c.Port)
		}
	}
	if math.Abs(fracSum-1) > 1e-6 {
		return fmt.Errorf("scenario: rate fractions sum to %v, want 1", fracSum)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Campus returns the built-in default spec: the paper's calibrated
// campus population as a single baseline cohort at natural volume. It
// compiles to a dataset byte-identical to the pre-spec generator's at
// any seed and scale.
func Campus() *Spec {
	return &Spec{
		Version: SpecVersion,
		Seed:    20240504,
		Cohorts: []Cohort{{
			ID:           "campus",
			Profile:      ProfileBaselineCampus,
			RateFraction: 1,
			Arrival:      ArrivalPoisson,
			Lifecycle:    LifecycleSteady,
		}},
	}
}
