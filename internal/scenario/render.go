package scenario

// render.go writes a Spec back out in the YAML subset. Render is
// canonical — parsing its output yields a Spec deep-equal to the input,
// the round-trip property FuzzSpecParse pins — and RenderCommented is
// the annotated form `mtlsgen -print-spec` emits as a starting point.

import (
	"fmt"
	"strconv"
	"strings"
)

// Render writes the spec canonically: required fields always, optional
// fields only when non-zero, two-space indentation, strings quoted only
// when needed.
func Render(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "version: %d\n", s.Version)
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed: %d\n", s.Seed)
	}
	if s.AggregateRate != 0 {
		fmt.Fprintf(&b, "aggregate_rate: %s\n", formatFloat(s.AggregateRate))
	}
	if len(s.Cohorts) > 0 {
		b.WriteString("cohorts:\n")
		for i := range s.Cohorts {
			renderCohort(&b, &s.Cohorts[i], nil)
		}
	}
	return b.String()
}

// RenderCommented writes the spec with every field present and a
// trailing comment documenting it — the `-print-spec` starting point.
// The output still parses back to a Spec deep-equal to the input.
func RenderCommented(s *Spec) string {
	var b strings.Builder
	b.WriteString("# mTLS workload scenario spec (see DESIGN.md §2, \"Scenario specs\").\n")
	b.WriteString("# Comments and blank lines are ignored; unknown fields are errors.\n")
	fmt.Fprintf(&b, "version: %d\n", s.Version)
	fmt.Fprintf(&b, "seed: %d # generation seed; equal seeds give identical datasets\n", s.Seed)
	fmt.Fprintf(&b, "aggregate_rate: %s # total study connections split by rate_fraction; 0 = each cohort's natural volume\n",
		formatFloat(s.AggregateRate))
	b.WriteString("cohorts:\n")
	comments := map[string]string{
		"id":            "unique cohort name [a-z0-9-_]",
		"profile":       "cert practice: " + strings.Join(Profiles(), " | "),
		"rate_fraction": "share of aggregate_rate; fractions must sum to 1",
		"arrival":       "intra-day arrivals: " + strings.Join(Arrivals(), " | "),
		"lifecycle":     "volume over the study: " + strings.Join(Lifecycles(), " | "),
		"start_month":   "activity window start (study month, 0-based)",
		"end_month":     "activity window end inclusive (0 = last month)",
		"clients":       "unscaled distinct clients (0 = profile default)",
		"fingerprint":   "ClientHello preset (empty = no fingerprint columns)",
		"sni":           "server name override (empty = profile default)",
		"port":          "server port override (0 = profile default)",
	}
	for i := range s.Cohorts {
		renderCohort(&b, &s.Cohorts[i], comments)
	}
	return b.String()
}

// renderCohort emits one cohort item. With comments != nil every field
// is emitted and annotated; otherwise only non-zero optional fields.
func renderCohort(b *strings.Builder, c *Cohort, comments map[string]string) {
	all := comments != nil
	line := func(first bool, key, val string) {
		if first {
			fmt.Fprintf(b, "  - %s: %s", key, val)
		} else {
			fmt.Fprintf(b, "    %s: %s", key, val)
		}
		if all {
			if cm := comments[key]; cm != "" {
				fmt.Fprintf(b, " # %s", cm)
			}
		}
		b.WriteByte('\n')
	}
	line(true, "id", quoteIfNeeded(c.ID))
	line(false, "profile", quoteIfNeeded(c.Profile))
	line(false, "rate_fraction", formatFloat(c.RateFraction))
	if all || c.Arrival != "" {
		line(false, "arrival", quoteIfNeeded(c.Arrival))
	}
	if all || c.Lifecycle != "" {
		line(false, "lifecycle", quoteIfNeeded(c.Lifecycle))
	}
	if all || c.StartMonth != 0 {
		line(false, "start_month", strconv.Itoa(c.StartMonth))
	}
	if all || c.EndMonth != 0 {
		line(false, "end_month", strconv.Itoa(c.EndMonth))
	}
	if all || c.Clients != 0 {
		line(false, "clients", strconv.Itoa(c.Clients))
	}
	if all || c.Fingerprint != "" {
		line(false, "fingerprint", quoteIfNeeded(c.Fingerprint))
	}
	if all || c.SNI != "" {
		line(false, "sni", quoteIfNeeded(c.SNI))
	}
	if all || c.Port != 0 {
		line(false, "port", strconv.Itoa(c.Port))
	}
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// The parser rejects exponent-free forms it cannot re-read; 'g' can
	// emit "1e+06", which ParseFloat reads back fine, but a leading '+'
	// inside the exponent is not the same as a leading '+' on the
	// number, so nothing to fix — just keep the canonical form.
	return s
}

// quoteIfNeeded quotes a string when the bare form would be ambiguous:
// empty, leading/trailing space, or any character outside the safe set.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if s != strings.TrimSpace(s) {
		return quote(s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		safe := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '-' || c == '_' || c == '/' || c == '@' || c == '*'
		if !safe {
			return quote(s)
		}
	}
	return s
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
