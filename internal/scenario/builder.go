package scenario

// builder.go is the programmatic way to assemble a Spec — the same
// surface the YAML subset describes, for callers that would rather not
// go through text.

// Builder accumulates a Spec fluently; Build validates and returns it.
type Builder struct {
	spec Spec
}

// NewBuilder starts a spec at the current schema version with the
// library default seed.
func NewBuilder() *Builder {
	return &Builder{spec: Spec{Version: SpecVersion, Seed: Campus().Seed}}
}

// Seed sets the generation seed.
func (b *Builder) Seed(seed uint64) *Builder {
	b.spec.Seed = seed
	return b
}

// AggregateRate sets the total study connection volume (0 = natural).
func (b *Builder) AggregateRate(rate float64) *Builder {
	b.spec.AggregateRate = rate
	return b
}

// Cohort appends a cohort with the given identity, profile, and rate
// fraction, then applies opts.
func (b *Builder) Cohort(id, profile string, rateFraction float64, opts ...CohortOption) *Builder {
	c := Cohort{ID: id, Profile: profile, RateFraction: rateFraction}
	for _, opt := range opts {
		opt(&c)
	}
	b.spec.Cohorts = append(b.spec.Cohorts, c)
	return b
}

// Build validates and returns the spec.
func (b *Builder) Build() (*Spec, error) {
	s := b.spec // copy, so the builder can keep mutating
	s.Cohorts = append([]Cohort(nil), b.spec.Cohorts...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// CohortOption tweaks one cohort under construction.
type CohortOption func(*Cohort)

// Arrival sets the intra-day arrival process.
func Arrival(a string) CohortOption { return func(c *Cohort) { c.Arrival = a } }

// Lifecycle sets the volume pattern over the study.
func Lifecycle(l string) CohortOption { return func(c *Cohort) { c.Lifecycle = l } }

// Window bounds the activity window in study months (inclusive; end 0 =
// last month).
func Window(start, end int) CohortOption {
	return func(c *Cohort) { c.StartMonth, c.EndMonth = start, end }
}

// Clients overrides the profile's unscaled distinct-client count.
func Clients(n int) CohortOption { return func(c *Cohort) { c.Clients = n } }

// Fingerprint selects a ClientHello preset for the cohort.
func Fingerprint(preset string) CohortOption { return func(c *Cohort) { c.Fingerprint = preset } }

// SNI overrides the profile's server name.
func SNI(sni string) CohortOption { return func(c *Cohort) { c.SNI = sni } }

// Port overrides the profile's server port.
func Port(port int) CohortOption { return func(c *Cohort) { c.Port = port } }
