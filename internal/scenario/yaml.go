package scenario

// yaml.go is the hand-rolled YAML-subset reader for workload specs. The
// subset is exactly what specs need — maps, lists of maps, scalars,
// comments — parsed line by line with two-space indentation and no
// external dependency, like every other parser in this repository. The
// parser is strict: unknown fields, duplicate keys, tab indentation,
// type mismatches, and control characters are errors with a stable
// reason taxonomy (see Reason), never panics, which FuzzSpecParse pins.

import (
	"fmt"
	"strconv"
	"strings"
)

// Reason classifies a spec parse error. The taxonomy is part of the
// package's API: callers (and the fuzz harness) can switch on it.
type Reason string

const (
	ReasonSyntax       Reason = "syntax"        // malformed line or quoting
	ReasonIndent       Reason = "indent"        // tabs or inconsistent indentation
	ReasonDuplicate    Reason = "duplicate-key" // the same key twice in one map
	ReasonUnknownField Reason = "unknown-field" // a key the schema does not define
	ReasonType         Reason = "type"          // scalar does not fit the field's type
	ReasonStructure    Reason = "structure"     // map where a list belongs, and the like
)

// Error is one spec parse failure.
type Error struct {
	Line   int    // 1-based source line (0 = document level)
	Field  string // dotted path, e.g. "cohorts[2].rate_fraction"
	Reason Reason
	Msg    string
}

func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString("scenario: spec")
	if e.Line > 0 {
		fmt.Fprintf(&b, " line %d", e.Line)
	}
	if e.Field != "" {
		fmt.Fprintf(&b, ": %s", e.Field)
	}
	fmt.Fprintf(&b, ": %s (%s)", e.Msg, e.Reason)
	return b.String()
}

func errAt(line int, field string, reason Reason, format string, args ...any) *Error {
	return &Error{Line: line, Field: field, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// node is one parsed document value.
type node struct {
	line   int
	scalar *scalarNode // nil unless a scalar
	keys   []string    // map keys in document order
	vals   []*node     // parallel to keys
	items  []*node     // list items (nil keys/vals/scalar)
	isList bool
	isMap  bool
}

type scalarNode struct {
	text   string
	quoted bool
}

// line is one significant source line.
type srcLine struct {
	num    int
	indent int
	text   string // content with indentation stripped
}

// Parse reads a spec document. The result is not validated beyond the
// schema (field names and types): call Spec.Validate before compiling.
func Parse(data []byte) (*Spec, error) {
	root, err := parseDoc(data)
	if err != nil {
		return nil, err
	}
	return decodeSpec(root)
}

// parseDoc tokenizes and builds the generic node tree.
func parseDoc(data []byte) (*node, error) {
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(0, "", ReasonSyntax, "empty document")
	}
	p := &docParser{lines: lines}
	root, err := p.block(0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(l.num, "", ReasonIndent, "unexpected indentation %d", l.indent)
	}
	return root, nil
}

// splitLines strips comments and blanks and measures indentation.
func splitLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, "\r")
		for _, r := range line {
			if r == '\t' {
				return nil, errAt(num+1, "", ReasonIndent, "tab indentation is not supported")
			}
			if r < 0x20 {
				return nil, errAt(num+1, "", ReasonSyntax, "control character %q", r)
			}
		}
		content, err := stripComment(line, num+1)
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimLeft(content, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		out = append(out, srcLine{num: num + 1, indent: len(content) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	return out, nil
}

// stripComment removes a trailing comment outside of quotes. A '#'
// starts a comment at line start or after a space (YAML's rule).
func stripComment(line string, num int) (string, error) {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if inQuote && i > 0 && line[i-1] == '\\' {
				// Count the backslash run: an even run does not escape.
				n := 0
				for j := i - 1; j >= 0 && line[j] == '\\'; j-- {
					n++
				}
				if n%2 == 1 {
					continue
				}
			}
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || line[i-1] == ' ') {
				return line[:i], nil
			}
		}
	}
	if inQuote {
		return "", errAt(num, "", ReasonSyntax, "unterminated quoted string")
	}
	return line, nil
}

type docParser struct {
	lines []srcLine
	pos   int
}

// block parses one map or list whose entries sit at exactly indent.
func (p *docParser) block(pos, indent int) (*node, error) {
	p.pos = pos
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.list(indent)
	}
	return p.mapping(indent)
}

func (p *docParser) mapping(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, isMap: true}
	seen := map[string]int{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errAt(l.num, "", ReasonIndent, "unexpected indentation %d (block is at %d)", l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(l.num, "", ReasonStructure, "list item inside a map block")
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, errAt(l.num, key, ReasonDuplicate, "key already set on line %d", prev)
		}
		seen[key] = l.num
		p.pos++
		var val *node
		if rest == "" {
			// Nested block (or an empty value, which is an error: the
			// subset has no null scalar).
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, errAt(l.num, key, ReasonSyntax, "missing value")
			}
			val, err = p.block(p.pos, p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			sc, err := parseScalar(rest, l.num, key)
			if err != nil {
				return nil, err
			}
			val = &node{line: l.num, scalar: sc}
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
	}
	return n, nil
}

func (p *docParser) list(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, isList: true}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errAt(l.num, "", ReasonIndent, "unexpected indentation %d (list is at %d)", l.indent, indent)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break // sibling key at the same indent ends the list
		}
		if l.text == "-" {
			return nil, errAt(l.num, "", ReasonSyntax, "empty list item")
		}
		rest := l.text[2:]
		if !strings.Contains(rest, ": ") && !strings.HasSuffix(rest, ":") {
			// Scalar list item.
			sc, err := parseScalar(rest, l.num, "")
			if err != nil {
				return nil, err
			}
			p.pos++
			n.items = append(n.items, &node{line: l.num, scalar: sc})
			continue
		}
		// Map list item: the first field rides on the "- " line at a
		// virtual indent of indent+2; following fields align under it.
		item, err := p.listItemMap(l, indent+2)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// listItemMap parses one "- key: value" item and its continuation lines.
func (p *docParser) listItemMap(first srcLine, fieldIndent int) (*node, error) {
	n := &node{line: first.num, isMap: true}
	seen := map[string]int{}
	addField := func(l srcLine) error {
		key, rest, err := splitKey(l)
		if err != nil {
			return err
		}
		if prev, dup := seen[key]; dup {
			return errAt(l.num, key, ReasonDuplicate, "key already set on line %d", prev)
		}
		seen[key] = l.num
		p.pos++
		var val *node
		if rest == "" {
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= fieldIndent {
				return errAt(l.num, key, ReasonSyntax, "missing value")
			}
			val, err = p.block(p.pos, p.lines[p.pos].indent)
			if err != nil {
				return err
			}
		} else {
			sc, err := parseScalar(rest, l.num, key)
			if err != nil {
				return err
			}
			val = &node{line: l.num, scalar: sc}
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
		return nil
	}
	if err := addField(srcLine{num: first.num, indent: fieldIndent, text: first.text[2:]}); err != nil {
		return nil, err
	}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != fieldIndent || strings.HasPrefix(l.text, "- ") || l.text == "-" {
			break
		}
		if err := addField(l); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// splitKey splits "key: value" / "key:" and validates the key.
func splitKey(l srcLine) (key, rest string, err error) {
	idx := strings.Index(l.text, ":")
	if idx <= 0 {
		return "", "", errAt(l.num, "", ReasonSyntax, "expected \"key: value\", got %q", l.text)
	}
	key = l.text[:idx]
	if strings.ContainsAny(key, " \"") {
		return "", "", errAt(l.num, "", ReasonSyntax, "malformed key %q", key)
	}
	rest = strings.TrimLeft(l.text[idx+1:], " ")
	if rest != "" && l.text[idx+1] != ' ' {
		return "", "", errAt(l.num, key, ReasonSyntax, "missing space after %q:", key)
	}
	return key, rest, nil
}

// parseScalar reads a scalar value: quoted (with \\ \" \n \t \r escapes)
// or bare.
func parseScalar(s string, line int, field string) (*scalarNode, error) {
	if strings.HasPrefix(s, "\"") {
		if len(s) < 2 || !strings.HasSuffix(s, "\"") {
			return nil, errAt(line, field, ReasonSyntax, "unterminated quoted string")
		}
		body := s[1 : len(s)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c != '\\' {
				if c == '"' {
					return nil, errAt(line, field, ReasonSyntax, "unescaped quote inside string")
				}
				b.WriteByte(c)
				continue
			}
			i++
			if i >= len(body) {
				return nil, errAt(line, field, ReasonSyntax, "dangling escape")
			}
			switch body[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return nil, errAt(line, field, ReasonSyntax, "unknown escape \\%c", body[i])
			}
		}
		return &scalarNode{text: b.String(), quoted: true}, nil
	}
	if strings.Contains(s, "\"") {
		return nil, errAt(line, field, ReasonSyntax, "quote inside bare scalar")
	}
	return &scalarNode{text: s}, nil
}

// ---------------------------------------------------------------------
// Schema decoding: generic tree → Spec, strict about unknown fields.
// ---------------------------------------------------------------------

func decodeSpec(root *node) (*Spec, error) {
	if !root.isMap {
		return nil, errAt(root.line, "", ReasonStructure, "document must be a map")
	}
	s := &Spec{}
	for i, key := range root.keys {
		val := root.vals[i]
		switch key {
		case "version":
			v, err := scalarInt(val, key)
			if err != nil {
				return nil, err
			}
			s.Version = int(v)
		case "seed":
			v, err := scalarUint(val, key)
			if err != nil {
				return nil, err
			}
			s.Seed = v
		case "aggregate_rate":
			v, err := scalarFloat(val, key)
			if err != nil {
				return nil, err
			}
			s.AggregateRate = v
		case "cohorts":
			if !val.isList {
				return nil, errAt(val.line, key, ReasonStructure, "must be a list")
			}
			for j, item := range val.items {
				co, err := decodeCohort(item, fmt.Sprintf("cohorts[%d]", j))
				if err != nil {
					return nil, err
				}
				s.Cohorts = append(s.Cohorts, *co)
			}
		default:
			return nil, errAt(val.line, key, ReasonUnknownField,
				"unknown field (spec fields: version, seed, aggregate_rate, cohorts)")
		}
	}
	return s, nil
}

func decodeCohort(n *node, path string) (*Cohort, error) {
	if !n.isMap {
		return nil, errAt(n.line, path, ReasonStructure, "cohort must be a map")
	}
	co := &Cohort{}
	for i, key := range n.keys {
		val := n.vals[i]
		field := path + "." + key
		var err error
		switch key {
		case "id":
			co.ID, err = scalarString(val, field)
		case "profile":
			co.Profile, err = scalarString(val, field)
		case "rate_fraction":
			co.RateFraction, err = scalarFloat(val, field)
		case "arrival":
			co.Arrival, err = scalarString(val, field)
		case "lifecycle":
			co.Lifecycle, err = scalarString(val, field)
		case "start_month":
			var v int64
			v, err = scalarInt(val, field)
			co.StartMonth = int(v)
		case "end_month":
			var v int64
			v, err = scalarInt(val, field)
			co.EndMonth = int(v)
		case "clients":
			var v int64
			v, err = scalarInt(val, field)
			co.Clients = int(v)
		case "fingerprint":
			co.Fingerprint, err = scalarString(val, field)
		case "sni":
			co.SNI, err = scalarString(val, field)
		case "port":
			var v int64
			v, err = scalarInt(val, field)
			co.Port = int(v)
		default:
			return nil, errAt(val.line, field, ReasonUnknownField,
				"unknown field (cohort fields: id, profile, rate_fraction, arrival, lifecycle, start_month, end_month, clients, fingerprint, sni, port)")
		}
		if err != nil {
			return nil, err
		}
	}
	return co, nil
}

func scalarOf(n *node, field string) (*scalarNode, error) {
	if n.scalar == nil {
		return nil, errAt(n.line, field, ReasonStructure, "expected a scalar value")
	}
	return n.scalar, nil
}

func scalarString(n *node, field string) (string, error) {
	sc, err := scalarOf(n, field)
	if err != nil {
		return "", err
	}
	return sc.text, nil
}

func scalarInt(n *node, field string) (int64, error) {
	sc, err := scalarOf(n, field)
	if err != nil {
		return 0, err
	}
	if sc.quoted {
		return 0, errAt(n.line, field, ReasonType, "expected an integer, got a quoted string")
	}
	v, perr := strconv.ParseInt(sc.text, 10, 64)
	if perr != nil {
		return 0, errAt(n.line, field, ReasonType, "expected an integer, got %q", sc.text)
	}
	return v, nil
}

func scalarUint(n *node, field string) (uint64, error) {
	sc, err := scalarOf(n, field)
	if err != nil {
		return 0, err
	}
	if sc.quoted {
		return 0, errAt(n.line, field, ReasonType, "expected an unsigned integer, got a quoted string")
	}
	v, perr := strconv.ParseUint(sc.text, 10, 64)
	if perr != nil {
		return 0, errAt(n.line, field, ReasonType, "expected an unsigned integer, got %q", sc.text)
	}
	return v, nil
}

func scalarFloat(n *node, field string) (float64, error) {
	sc, err := scalarOf(n, field)
	if err != nil {
		return 0, err
	}
	if sc.quoted {
		return 0, errAt(n.line, field, ReasonType, "expected a number, got a quoted string")
	}
	v, perr := strconv.ParseFloat(sc.text, 64)
	if perr != nil || len(sc.text) == 0 || sc.text[0] == '+' ||
		strings.ContainsAny(sc.text, "xXpP_") || strings.EqualFold(sc.text, "inf") ||
		strings.EqualFold(sc.text, "-inf") || strings.EqualFold(sc.text, "nan") {
		return 0, errAt(n.line, field, ReasonType, "expected a decimal number, got %q", sc.text)
	}
	return v, nil
}
