package infotype

import (
	"testing"

	"repro/internal/psl"
)

func newClassifier() *Classifier {
	return New(psl.Default(), []string{"University of Virginia", "UVA Campus CA"})
}

func TestClassifyFormatTypes(t *testing.T) {
	c := newClassifier()
	cases := []struct {
		value  string
		issuer string
		want   InfoType
	}{
		{"www.idrive.com", "", Domain},
		{"*.apple.com", "", Domain},
		{"192.0.2.7", "", IP},
		{"2001:db8::1", "", IP},
		{"12:34:56:AB:CD:EF", "", MAC},
		{"12-34-56-ab-cd-ef", "", MAC},
		{"sip:alice@voip.example.com", "", SIP},
		{"SIPS:bob@host", "", SIP},
		{"ops@example.com", "", Email},
		{"localhost", "", Localhost},
		{"myhost.localdomain", "", Localhost},
		{"hd7gr", "University of Virginia", UserAccount},
		{"ys3kz", "uva campus ca", UserAccount},
		{"John Smith", "", PersonalName},
		{"WebRTC", "", OrgProduct},
		{"twilio", "", OrgProduct},
		{"Honeywell International Inc", "", OrgProduct},
		{"Hybrid Runbook Worker", "", OrgProduct},
		{"__transfer__", "", Unidentified},
		{"Dtls", "", Unidentified},
		{"9f86d081884c7d659a2feaa0c55ad015", "", Unidentified},
		{"", "", Unidentified},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.value, tc.issuer); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.value, got, tc.want)
		}
	}
}

func TestUserAccountRequiresCampusIssuer(t *testing.T) {
	c := newClassifier()
	// Right format, wrong issuer: falls through to Unidentified.
	if got := c.Classify("hd7gr", "Random Private CA"); got == UserAccount {
		t.Fatal("user account must require a campus issuer")
	}
}

func TestIsUserAccountFormat(t *testing.T) {
	good := []string{"hd7gr", "ys3kz", "kd5eyn", "frv9vh", "ab1c"}
	for _, g := range good {
		if !IsUserAccountFormat(g) {
			t.Errorf("IsUserAccountFormat(%q) = false", g)
		}
	}
	bad := []string{"", "a1b", "abcd1234x", "HD7GR", "1abc2", "abcde", "ab-1c", "a2345678"}
	for _, b := range bad {
		if IsUserAccountFormat(b) {
			t.Errorf("IsUserAccountFormat(%q) = true", b)
		}
	}
}

func TestIsMACAddress(t *testing.T) {
	if !IsMACAddress("00:1A:2B:3C:4D:5E") {
		t.Fatal("valid MAC rejected")
	}
	bad := []string{"00:1A:2B:3C:4D", "00:1A:2B:3C:4D:5E:6F", "00;1A;2B;3C;4D;5E", "0G:1A:2B:3C:4D:5E", "001A2B3C4D5E"}
	for _, b := range bad {
		if IsMACAddress(b) {
			t.Errorf("IsMACAddress(%q) = true", b)
		}
	}
}

func TestIsEmailAddress(t *testing.T) {
	if !IsEmailAddress("a@b.com") {
		t.Fatal("valid email rejected")
	}
	for _, b := range []string{"a@b@c.com", "@b.com", "a@", "a b@c.com", "a@nodot", "plain"} {
		if IsEmailAddress(b) {
			t.Errorf("IsEmailAddress(%q) = true", b)
		}
	}
}

func TestClassifyPrecedence(t *testing.T) {
	c := newClassifier()
	// An email that is also sip-prefixed: SIP wins (checked first).
	if got := c.Classify("sip:user@host.com", ""); got != SIP {
		t.Fatalf("sip email = %v", got)
	}
	// localhost beats domain parsing.
	if got := c.Classify("localhost.example.com", ""); got != Localhost {
		t.Fatalf("localhost domain = %v", got)
	}
}

func TestClassifyUnidentified(t *testing.T) {
	cases := []struct {
		value    string
		byIssuer bool
		want     RandomBucket
	}{
		{"__transfer__", false, NonRandom},
		{"Dtls", false, NonRandom},
		{"hmpp", false, NonRandom},
		{"a3f9c2e1", false, RandomLen8},
		{"9f86d081884c7d659a2feaa0c55ad015", false, RandomLen32},
		{"123e4567-e89b-12d3-a456-426614174000", false, RandomLen36},
		{"123e4567-e89b-12d3-a456-426614174000", true, RandomByIssuer},
		{"deadbeefdeadbeefdead", false, RandomOther},
	}
	for _, tc := range cases {
		if got := ClassifyUnidentified(tc.value, tc.byIssuer); got != tc.want {
			t.Errorf("ClassifyUnidentified(%q,%v) = %v, want %v", tc.value, tc.byIssuer, got, tc.want)
		}
	}
}

func TestInfoTypeStrings(t *testing.T) {
	if Domain.String() != "Domain" || UserAccount.String() != "User account" ||
		OrgProduct.String() != "Org/Product" || Unidentified.String() != "Unidentified" {
		t.Fatal("labels wrong")
	}
	if len(AllTypes) != 10 {
		t.Fatalf("AllTypes = %d", len(AllTypes))
	}
}

func TestRandomBucketStrings(t *testing.T) {
	if NonRandom.String() != "Non-random" || RandomLen8.String() != "Random - strlen = 8" ||
		RandomByIssuer.String() != "Random - by Issuer" || RandomOther.String() != "Random - other" {
		t.Fatal("bucket labels wrong")
	}
}
