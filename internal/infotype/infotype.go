// Package infotype classifies the contents of CN and SAN fields into the
// paper's §6.1 information types: Domain, IP, MAC, SIP, Email, UserAccount,
// PersonalName, Org/Product, Localhost, and Unidentified — plus Table 9's
// sub-classification of unidentified strings (non-random vs random, random
// recognizable by issuer, and the strlen 8/32/36 buckets).
//
// Classification order follows the paper's methodology: format-specific
// types are matched first with exact parsers/regex-equivalents, then the
// NER-based types (via internal/nerlite), with everything left marked
// Unidentified.
package infotype

import (
	"net/netip"
	"strings"

	"repro/internal/nerlite"
	"repro/internal/psl"
)

// InfoType is the §6.1 information type.
type InfoType int

const (
	Unidentified InfoType = iota
	Domain
	IP
	MAC
	SIP
	Email
	UserAccount
	PersonalName
	OrgProduct
	Localhost
)

// String renders the table label.
func (t InfoType) String() string {
	switch t {
	case Domain:
		return "Domain"
	case IP:
		return "IP"
	case MAC:
		return "MAC"
	case SIP:
		return "SIP"
	case Email:
		return "Email"
	case UserAccount:
		return "User account"
	case PersonalName:
		return "Personal name"
	case OrgProduct:
		return "Org/Product"
	case Localhost:
		return "Localhost"
	default:
		return "Unidentified"
	}
}

// AllTypes lists the types in the paper's Table 8 row order.
var AllTypes = []InfoType{
	Domain, IP, MAC, SIP, Email, UserAccount, PersonalName, OrgProduct,
	Localhost, Unidentified,
}

// Classifier classifies CN/SAN values.
type Classifier struct {
	PSL *psl.List
	// CampusIssuers holds issuer identities managed by the university;
	// the UserAccount type requires both the ID format AND a campus
	// issuer (§6.1.1).
	CampusIssuers map[string]bool
}

// New builds a classifier. campusIssuers may be nil.
func New(list *psl.List, campusIssuers []string) *Classifier {
	m := make(map[string]bool, len(campusIssuers))
	for _, iss := range campusIssuers {
		m[norm(iss)] = true
	}
	return &Classifier{PSL: list, CampusIssuers: m}
}

// Classify labels one CN or SAN value. issuerKey is the certificate's
// issuer identity (used only for the UserAccount rule).
func (c *Classifier) Classify(value, issuerKey string) InfoType {
	v := strings.TrimSpace(value)
	if v == "" {
		return Unidentified
	}
	lower := strings.ToLower(v)

	// Format-specific types, in the paper's order.
	if strings.Contains(lower, "localhost") || strings.Contains(lower, "localdomain") {
		return Localhost
	}
	if IsSIPAddress(v) {
		return SIP
	}
	if IsMACAddress(v) {
		return MAC
	}
	if IsIPAddress(v) {
		return IP
	}
	if IsEmailAddress(v) {
		return Email
	}
	if c.PSL.IsDomainName(v) {
		return Domain
	}
	if IsUserAccountFormat(v) && c.CampusIssuers[norm(issuerKey)] {
		return UserAccount
	}
	// NER types.
	switch nerlite.Recognize(v) {
	case nerlite.LabelPerson:
		return PersonalName
	case nerlite.LabelOrg, nerlite.LabelProduct:
		return OrgProduct
	}
	return Unidentified
}

// IsIPAddress matches IPv4/IPv6 literals (the Python ipaddress check).
func IsIPAddress(s string) bool {
	_, err := netip.ParseAddr(s)
	return err == nil
}

// IsMACAddress matches the standard colon/dash-separated 6-octet format
// (e.g. 12:34:56:AB:CD:EF).
func IsMACAddress(s string) bool {
	if len(s) != 17 {
		return false
	}
	sep := s[2]
	if sep != ':' && sep != '-' {
		return false
	}
	for i := 0; i < 17; i++ {
		switch i % 3 {
		case 2:
			if s[i] != sep {
				return false
			}
		default:
			if !isHex(s[i]) {
				return false
			}
		}
	}
	return true
}

// IsSIPAddress matches "sip:user@host" / "sips:" URIs.
func IsSIPAddress(s string) bool {
	l := strings.ToLower(s)
	return strings.HasPrefix(l, "sip:") || strings.HasPrefix(l, "sips:")
}

// IsEmailAddress is the paper's regex-level check: one '@', plausible
// local part and domain-ish remainder.
func IsEmailAddress(s string) bool {
	at := strings.Count(s, "@")
	if at != 1 {
		return false
	}
	local, domain, _ := strings.Cut(s, "@")
	if local == "" || domain == "" || strings.ContainsAny(s, " \t") {
		return false
	}
	return strings.Contains(domain, ".")
}

// IsUserAccountFormat matches the campus computing-ID shape: 2–3 lowercase
// letters, a digit, then 1–3 lowercase alphanumerics (e.g. "hd7gr",
// "ys3kz", "frv9vh").
func IsUserAccountFormat(s string) bool {
	n := len(s)
	if n < 4 || n > 7 {
		return false
	}
	i := 0
	for i < n && isLower(s[i]) {
		i++
	}
	if i < 2 || i > 3 {
		return false
	}
	if i >= n || !isDigit(s[i]) {
		return false
	}
	i++
	rest := n - i
	if rest < 1 || rest > 3 {
		return false
	}
	for ; i < n; i++ {
		if !isLower(s[i]) && !isDigit(s[i]) {
			return false
		}
	}
	return true
}

// RandomBucket is Table 9's sub-classification of unidentified strings.
type RandomBucket int

const (
	NonRandom RandomBucket = iota
	RandomByIssuer
	RandomLen8
	RandomLen32
	RandomLen36
	RandomOther
)

// String renders the Table 9 row label.
func (b RandomBucket) String() string {
	switch b {
	case NonRandom:
		return "Non-random"
	case RandomByIssuer:
		return "Random - by Issuer"
	case RandomLen8:
		return "Random - strlen = 8"
	case RandomLen32:
		return "Random - strlen = 32"
	case RandomLen36:
		return "Random - strlen = 36"
	default:
		return "Random - other"
	}
}

// ClassifyUnidentified buckets an unidentified string. issuerRecognizable
// reports whether the certificate's issuer field identifies the generator
// of the string (the paper's 'Microsoft Azure Sphere …' / 'Apple iPhone
// Device CA' cases).
func ClassifyUnidentified(value string, issuerRecognizable bool) RandomBucket {
	if !nerlite.IsRandomString(value) {
		return NonRandom
	}
	if issuerRecognizable {
		return RandomByIssuer
	}
	switch len(value) {
	case 8:
		return RandomLen8
	case 32:
		return RandomLen32
	case 36:
		return RandomLen36
	default:
		return RandomOther
	}
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isLower(c byte) bool { return c >= 'a' && c <= 'z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func norm(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}
