package infotype_test

import (
	"fmt"

	"repro/internal/infotype"
	"repro/internal/psl"
)

func ExampleClassifier_Classify() {
	c := infotype.New(psl.Default(), []string{"University of Virginia"})
	for _, v := range []string{
		"www.idrive.com",
		"John Smith",
		"hd7gr",
		"WebRTC",
		"sip:alice@voip.example.com",
		"9f86d081884c7d659a2feaa0c55ad015",
	} {
		fmt.Println(c.Classify(v, "University of Virginia"))
	}
	// Output:
	// Domain
	// Personal name
	// User account
	// Org/Product
	// SIP
	// Unidentified
}

func ExampleClassifyUnidentified() {
	fmt.Println(infotype.ClassifyUnidentified("__transfer__", false))
	fmt.Println(infotype.ClassifyUnidentified("a3f9c2e1", false))
	fmt.Println(infotype.ClassifyUnidentified("123e4567-e89b-12d3-a456-426614174000", false))
	// Output:
	// Non-random
	// Random - strlen = 8
	// Random - strlen = 36
}
