package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/metrics"
)

// MaxShards bounds the shard count: the rendezvous tracks per-shard
// delivery in one uint64 bitmask, which is far beyond any core count the
// single-producer router could keep fed anyway.
const MaxShards = 64

// Sharded runs n independent Engines and presents them as one: the
// router hashes each connection's UID to a home shard (so one shard owns
// each connection's detector evidence and enrichment) and fans each
// certificate out to the shard(s) that reference it through a shared
// rendezvous, so retroactive late-certificate evidence works per shard
// exactly as it does on a single engine. Every shard is a complete,
// individually correct monitor of its substream; the global view is
// recovered at materialization by merging raw per-shard state back
// through one core.Builder.
//
// # Equivalence contract
//
// After Drain on a finite input, every materialized report is deeply
// equal to a single Engine's (and therefore to the batch pipeline's) at
// any shard count: connections are replayed in their global ingest order
// (a k-way merge on router-assigned sequence numbers), certificate
// rosters union to the single roster (the rendezvous always delivers a
// certificate to its fingerprint's home shard, duplicates resolve
// first-observation-wins to the same copy), and the §3.2 verdict is
// recomputed from the union of per-shard detector evidence — correct
// because that evidence is order-independent and per-connection, so
// domains contradicting an issuer on different shards corroborate
// globally (interception.Merge). Mid-stream, a materialization reflects
// each shard's applied prefix — a consistent snapshot per shard, not
// necessarily a prefix of the interleaved global stream.
//
// # Cost model
//
// Ingest parallelizes across shard apply goroutines — the bottleneck the
// single engine's one-goroutine design caps at one core. The price moves
// to materialization: the merged view is rebuilt by full replay whenever
// any shard's state changed since the last merge (cached otherwise),
// where a settled single engine materializes incrementally. That is the
// right trade for a monitor that ingests continuously and reports
// occasionally.
type Sharded struct {
	cfg    Config
	shards []*Engine
	// single short-circuits the n=1 deployment: with one shard there is
	// nothing to route or merge, so every ingest and materialization call
	// delegates straight to the engine — a true passthrough with no
	// sequence tracking, rendezvous bookkeeping, or replay-based merge.
	single *Engine

	mu sync.Mutex // guards router state below
	// scratch is the per-shard batch partition table the batched ingest
	// path reuses across calls (populated and flushed under mu).
	scratch []*batch
	// nextSeq is the next global sequence number (connections and
	// first-observed certificates share one number space).
	nextSeq uint64
	// epoch scopes export cursors to this sequence numbering; preserved
	// across checkpoint/restore, fresh otherwise.
	epoch uint64
	// rv is the certificate rendezvous: every ingested or awaited
	// fingerprint, which shards hold the certificate, and which shards
	// referenced it before it arrived.
	rv          map[ids.Fingerprint]*rendezvous
	uniqueCerts int    // fingerprints whose certificate has arrived
	certsRouted uint64 // IngestCert calls admitted (incl. duplicate fps)

	rejected atomic.Uint64

	m *shardedMetrics

	matMu sync.Mutex // guards the merged materialization below
	// cachedVer is the per-shard stateVer vector the cached merge
	// reflects; nil until the first merge.
	cachedVer []uint64
	cachedB   *core.Builder
	cachedPre *core.PreprocessReport
	merges    uint64

	ckptMu   sync.Mutex // guards manifest generation state
	ckptGen  uint64
	lastCkpt time.Time
}

// rendezvous is one fingerprint's delivery state. delivered and waiting
// are shard bitmasks (bit i = shard i).
type rendezvous struct {
	cert      *certmodel.CertInfo
	delivered uint64 // shards whose roster has (or will apply) the cert
	waiting   uint64 // shards that referenced the fp before it arrived
	// seq is the global sequence consumed when the certificate first
	// arrived (certificates and connections share the router's one
	// number space), giving Export a cursor over the roster.
	seq uint64
}

type shardedMetrics struct {
	rejected  *metrics.Counter
	fanout    *metrics.Counter
	merges    *metrics.Counter
	mergeDur  *metrics.Histogram
	manifests *metrics.Counter
}

func newShardedMetrics(r *metrics.Registry, n int) *shardedMetrics {
	r.Gauge("stream_shards", "engine shards in the sharded deployment").Set(float64(n))
	return &shardedMetrics{
		rejected:  r.Counter("stream_events_rejected_total", "invalid events refused at the ingest boundary", "shard", "router"),
		fanout:    r.Counter("stream_cert_fanout_total", "certificate deliveries to shards (first + forwarded copies)"),
		merges:    r.Counter("stream_merges_total", "merged-view rebuilds (k-way replay through one Builder)"),
		mergeDur:  r.Histogram("stream_merge_seconds", "merged-view rebuild duration", nil),
		manifests: r.Counter("stream_checkpoint_manifests_total", "checkpoint manifests committed"),
	}
}

// NewSharded starts n engine shards behind one router. n <= 0 selects
// one shard per CPU; n is clamped to MaxShards. Config applies to every
// shard (Buffer is per shard); shard series in Config.Metrics carry a
// shard="i" label. Call Close to stop all shards.
func NewSharded(n int, cfg Config) (*Sharded, error) {
	if cfg.Input == nil {
		return nil, fmt.Errorf("stream: Config.Input is required")
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	s := &Sharded{
		cfg:   cfg,
		rv:    make(map[ids.Fingerprint]*rendezvous),
		m:     newShardedMetrics(cfg.Metrics, n),
		epoch: newEpoch(),
	}
	for i := 0; i < n; i++ {
		e, err := New(s.shardConfig(i, n))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards = append(s.shards, e)
	}
	if n == 1 {
		s.single = s.shards[0]
	}
	return s, nil
}

// shardConfig derives shard i's engine config: sequence tracking on (the
// merge path needs the global order; a single shard IS the global order,
// so the n=1 passthrough skips it) and per-shard metric labels. With
// more than one shard the router owns the sequence space and the export
// cursor, so the engines' own export assignment is forced off — a shard
// stamping its own sequences would collide with router stamps.
func (s *Sharded) shardConfig(i, n int) Config {
	cfg := s.cfg
	cfg.trackSeqs = n > 1
	if n > 1 {
		cfg.TrackExport = false
	}
	if cfg.Store == "disk" && cfg.StoreDir != "" {
		// Each shard tiers into its own subdirectory; the hot budget is
		// per shard (the deployment's total hot set is n * HotBytes).
		cfg.StoreDir = filepath.Join(cfg.StoreDir, fmt.Sprintf("shard-%d", i))
	}
	cfg.metricLabels = []string{"shard", strconv.Itoa(i)}
	return cfg
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardHash is FNV-1a over the routing key. UID hashing spreads
// connections; fingerprint hashing picks each certificate's home shard.
func shardHash(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (s *Sharded) home(key string) int {
	return int(shardHash(key) % uint64(len(s.shards)))
}

// IngestConn routes one connection to its UID's home shard, first
// forwarding any already-arrived leaf certificates the shard has not
// seen (channel order guarantees the shard applies the certificate
// before the connection, so shard-local enrichment resolves the chain
// just as a single engine would). Validation matches Engine.IngestConn.
func (s *Sharded) IngestConn(rec *core.ConnRecord) bool {
	if s.single != nil {
		return s.single.IngestConn(rec)
	}
	if rec == nil || rec.Weight < 1 {
		s.rejected.Add(1)
		s.m.rejected.Inc()
		return false
	}
	c := *rec
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	s.nextSeq++
	h := s.home(string(c.UID))
	bit := uint64(1) << h
	for _, fp := range [2]ids.Fingerprint{c.ServerLeaf(), c.ClientLeaf()} {
		if fp == "" {
			continue
		}
		ent := s.rv[fp]
		if ent == nil {
			ent = &rendezvous{}
			s.rv[fp] = ent
		}
		if ent.cert == nil {
			// The certificate has not arrived; when it does, the
			// rendezvous forwards it here and the shard's pending-ref /
			// missing-fp machinery handles the late arrival.
			ent.waiting |= bit
			continue
		}
		if ent.delivered&bit == 0 && s.shards[h].ingestCertPtr(ent.cert) {
			ent.delivered |= bit
			s.m.fanout.Inc()
		}
	}
	return s.shards[h].ingestConnSeq(&c, seq)
}

// IngestCert admits one certificate into the rendezvous and delivers it
// to its fingerprint's home shard plus every shard already waiting on
// it. Shards that reference the fingerprint later receive it from the
// rendezvous at routing time. Validation matches Engine.IngestCert.
func (s *Sharded) IngestCert(rec *core.CertRecord) bool {
	if s.single != nil {
		return s.single.IngestCert(rec)
	}
	if rec == nil || rec.Cert == nil || rec.Cert.Fingerprint == "" {
		s.rejected.Add(1)
		s.m.rejected.Inc()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.certsRouted++
	fp := rec.Cert.Fingerprint
	ent := s.rv[fp]
	if ent == nil {
		ent = &rendezvous{}
		s.rv[fp] = ent
	}
	if ent.cert == nil {
		// First observation wins, as on a single engine's roster; the
		// home shard guarantees every certificate survives in the union
		// roster even if no connection ever references it.
		ent.cert = rec.Cert
		ent.seq = s.nextSeq
		s.nextSeq++
		s.uniqueCerts++
		ent.waiting |= uint64(1) << s.home(string(fp))
	}
	ok := true
	for i := range s.shards {
		bit := uint64(1) << i
		if ent.waiting&bit == 0 || ent.delivered&bit != 0 {
			continue
		}
		if s.shards[i].ingestCertPtr(ent.cert) {
			ent.delivered |= bit
			s.m.fanout.Inc()
		} else {
			ok = false // Drop policy shed it; a later reference retries
		}
	}
	return ok
}

// Drain blocks until every event ingested before the call has been
// applied on its shard.
func (s *Sharded) Drain() {
	for _, e := range s.shards {
		e.Drain()
	}
}

// Close drains and stops every shard. Materialization remains available.
func (s *Sharded) Close() {
	for _, e := range s.shards {
		e.Close()
	}
}

// merged returns the global Builder and preprocess report, rebuilding by
// replay when any shard's state changed since the last merge. Caller
// holds matMu.
func (s *Sharded) merged() (*core.Builder, *core.PreprocessReport) {
	vers := make([]uint64, len(s.shards))
	for i, e := range s.shards {
		vers[i] = e.stateVer.Load()
	}
	if s.cachedB != nil && equalU64(vers, s.cachedVer) {
		return s.cachedB, s.cachedPre
	}
	t0 := time.Now()
	// Snapshot each shard under its lock: slice headers are safe to
	// replay lock-free afterwards (appends never mutate elements below
	// the captured length and eviction swaps in a fresh array), roster
	// pointers are immutable, and the detector evidence is copied by
	// Absorb. The version is re-read under the lock so the cache key
	// matches exactly what was captured.
	im := interception.NewMerge(2)
	states := make([]core.ShardState, len(s.shards))
	var rawConns uint64
	for i, e := range s.shards {
		e.mu.Lock()
		vers[i] = e.stateVer.Load()
		snap := e.st.Snapshot()
		states[i] = core.ShardState{Certs: snap.Certs, Conns: snap.Conns, Seqs: snap.Seqs}
		rawConns += e.connsIngested
		im.Absorb(e.icpt)
		e.mu.Unlock()
	}
	rawCerts := 0
	seen := make(map[ids.Fingerprint]bool)
	for i := range states {
		for _, c := range states[i].Certs {
			if !seen[c.Fingerprint] {
				seen[c.Fingerprint] = true
				rawCerts++
			}
		}
	}
	res := im.Result()
	pre := &core.PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(rawCerts),
		RawCerts:            rawCerts,
		RawConns:            int(rawConns),
	}
	b := core.MergeShards(s.cfg.Input, states, func(fp ids.Fingerprint) bool {
		return res.ExcludedCerts[fp]
	})
	s.cachedVer, s.cachedB, s.cachedPre = vers, b, pre
	s.merges++
	s.m.merges.Inc()
	s.m.mergeDur.Since(t0)
	return b, pre
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WithPipeline runs fn over the merged pipeline; fn must not retain it.
// Shard ingestion keeps flowing while fn runs (the merge snapshots shard
// state briefly per shard, then releases the locks).
func (s *Sharded) WithPipeline(fn func(*core.Pipeline)) {
	if s.single != nil {
		// No merge: the single engine materializes incrementally.
		s.single.WithPipeline(fn)
		return
	}
	s.matMu.Lock()
	defer s.matMu.Unlock()
	b, pre := s.merged()
	fn(b.Pipeline(pre))
}

// Analysis materializes every table and figure over the merged state —
// after Drain on a finite input it deep-equals both a single Engine's
// Analysis and the batch pipeline's.
func (s *Sharded) Analysis() *core.Analysis {
	var a *core.Analysis
	s.WithPipeline(func(p *core.Pipeline) { a = p.RunAll() })
	return a
}

// Report materializes one named report over the merged state, with the
// same name registry and error taxonomy as Engine.Report.
func (s *Sharded) Report(name string) (any, error) {
	return runReport(s, name)
}

// Stats aggregates the shards' operational counters into the single-
// engine shape: ingest/drop/retention counters sum, the watermark is the
// max, the certificate numbers come from the router (shard rosters
// double-count fanned-out certificates), and the §3.2 numbers reflect
// the merged verdict. Rebuilds counts merged-view replays; Dirty means
// shard state changed since the last merge.
func (s *Sharded) Stats() Stats {
	if s.single != nil {
		// Passthrough: the engine's counters are the deployment's.
		return s.single.Stats()
	}
	var st Stats
	vers := make([]uint64, len(s.shards))
	for i, e := range s.shards {
		es := e.Stats()
		st.ConnsIngested += es.ConnsIngested
		st.Dropped += es.Dropped
		st.Rejected += es.Rejected
		st.Retained += es.Retained
		st.Evicted += es.Evicted
		st.PendingCerts += es.PendingCerts
		if es.Watermark.After(st.Watermark) {
			st.Watermark = es.Watermark
		}
		vers[i] = e.stateVer.Load()
	}
	im := interception.NewMerge(2)
	for _, e := range s.shards {
		e.mu.Lock()
		im.Absorb(e.icpt)
		e.mu.Unlock()
	}
	res := im.Result()
	st.ExcludedCerts = len(res.ExcludedCerts)
	st.InterceptionIssuers = len(res.Issuers)

	s.mu.Lock()
	st.CertsIngested = s.certsRouted
	st.UniqueCerts = s.uniqueCerts
	s.mu.Unlock()
	st.Rejected += s.rejected.Load()

	s.matMu.Lock()
	st.Rebuilds = s.merges
	st.Dirty = s.cachedB == nil || !equalU64(vers, s.cachedVer)
	s.matMu.Unlock()

	s.ckptMu.Lock()
	st.LastCheckpoint = s.lastCkpt
	s.ckptMu.Unlock()
	if !st.LastCheckpoint.IsZero() {
		st.CheckpointAge = time.Since(st.LastCheckpoint).Seconds()
	}
	return st
}

// manifestVersion guards the checkpoint-directory format.
const manifestVersion = 1

// manifestName is the commit point of a sharded checkpoint directory.
const manifestName = "manifest.json"

// Manifest describes one committed sharded checkpoint: which per-shard
// files belong to it (generation-suffixed so a crashed write can never
// mix generations), the router's sequence counter, and the caller's
// ingest cursor. The manifest is written last and renamed into place, so
// a directory either has a complete generation or the previous one.
type Manifest struct {
	Version     int
	Shards      int
	Generation  uint64
	NextSeq     uint64
	CertsRouted uint64
	Cursor      map[string]int64
	Files       []string
	// Epoch and CertSeqs carry the export-cursor state (the sequence-
	// numbering epoch and each roster fingerprint's admission sequence)
	// so a restored sensor keeps serving deltas against cursors taken
	// before the restart. Absent in pre-export manifests: a restored
	// deployment then gets a fresh epoch, and stale cursors are refused.
	Epoch    uint64            `json:",omitempty"`
	CertSeqs map[string]uint64 `json:",omitempty"`
}

// WriteCheckpoint serializes every shard into dir and commits the set
// with an atomically renamed manifest; the previous generation's files
// are removed only after the commit. Shard files use the legacy
// full-snapshot format — the manifest is this directory's commit point,
// so per-shard incremental chains would add commit points without
// removing the full-serialize cost of the fan-in. As with
// Engine.WriteCheckpoint, the caller must Drain first so the cursor is
// consistent with applied state.
func (s *Sharded) WriteCheckpoint(dir string, cursor map[string]int64) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stream: sharded checkpoint: %w", err)
	}
	// Temp files are residue of crashed commits; collect them before
	// creating this generation's.
	atomicfile.SweepTemps(dir, "*.tmp")
	gen := s.ckptGen + 1
	s.mu.Lock()
	next, routed, epoch := s.nextSeq, s.certsRouted, s.epoch
	certSeqs := make(map[string]uint64, len(s.rv))
	for fp, ent := range s.rv {
		if ent.cert != nil {
			certSeqs[string(fp)] = ent.seq
		}
	}
	s.mu.Unlock()

	files := make([]string, len(s.shards))
	for i, e := range s.shards {
		files[i] = fmt.Sprintf("shard-%d.g%d.ckpt", i, gen)
		if err := e.writeLegacyCheckpoint(filepath.Join(dir, files[i]), nil); err != nil {
			for _, f := range files[:i+1] {
				os.Remove(filepath.Join(dir, f))
			}
			return err
		}
	}
	man := Manifest{
		Version:     manifestVersion,
		Shards:      len(s.shards),
		Generation:  gen,
		NextSeq:     next,
		CertsRouted: routed,
		Cursor:      cursor,
		Files:       files,
		Epoch:       epoch,
		CertSeqs:    certSeqs,
	}
	buf, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("stream: sharded checkpoint: %w", err)
	}
	// The manifest rename is the commit point for the whole generation:
	// atomicfile fsyncs the shard set's name into place, and the shard
	// files themselves were fsynced by writeLegacyCheckpoint before the
	// manifest could reference them.
	if err := atomicfile.WriteFile(filepath.Join(dir, manifestName), append(buf, '\n')); err != nil {
		return fmt.Errorf("stream: sharded checkpoint: %w", err)
	}
	// Committed: the previous generation is garbage now, as is anything a
	// crashed commit left behind — both fully written shard files of a
	// generation whose manifest never committed and ".ckpt.tmp" partials
	// killed mid-write (the trailing * picks those up; matching only
	// "*.ckpt" leaked them forever). Best-effort removal — stray files
	// are re-collected by the next commit's scan.
	if old, err := filepath.Glob(filepath.Join(dir, "shard-*.g*.ckpt*")); err == nil {
		for _, f := range old {
			keep := false
			for _, cur := range files {
				if filepath.Base(f) == cur {
					keep = true
					break
				}
			}
			if !keep {
				os.Remove(f)
			}
		}
	}
	s.ckptGen = gen
	s.lastCkpt = time.Now()
	s.m.manifests.Inc()
	return nil
}

// RestoreSharded starts a sharded engine from a checkpoint directory
// written by WriteCheckpoint and returns the cursor stored with it.
// n must match the manifest's shard count (routing is a function of the
// count, so resharding would orphan state); 0 adopts the manifest's.
// The rendezvous is not serialized — it is rebuilt here from the
// restored rosters and retained connections, re-forwarding any
// certificate a referencing shard is missing (possible after Drop-policy
// shedding), so the restored deployment self-heals to the same delivery
// state the checkpointed one had.
func RestoreSharded(cfg Config, n int, dir string) (*Sharded, map[string]int64, error) {
	if cfg.Input == nil {
		return nil, nil, fmt.Errorf("stream: Config.Input is required")
	}
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, err
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, nil, fmt.Errorf("stream: manifest decode: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, nil, fmt.Errorf("stream: manifest version %d, want %d", man.Version, manifestVersion)
	}
	if man.Shards <= 0 || man.Shards > MaxShards || len(man.Files) != man.Shards {
		return nil, nil, fmt.Errorf("stream: manifest is inconsistent: %d shards, %d files", man.Shards, len(man.Files))
	}
	if n == 0 {
		n = man.Shards
	}
	if n != man.Shards {
		return nil, nil, fmt.Errorf("stream: checkpoint has %d shards, requested %d (resharding a checkpoint is not supported)", man.Shards, n)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	s := &Sharded{
		cfg:     cfg,
		rv:      make(map[ids.Fingerprint]*rendezvous),
		m:       newShardedMetrics(cfg.Metrics, n),
		nextSeq: man.NextSeq,
		ckptGen: man.Generation,
		epoch:   man.Epoch,
	}
	if s.epoch == 0 {
		// Pre-export manifest: fresh numbering scope, so any cursor taken
		// against the checkpointed deployment is refused as stale.
		s.epoch = newEpoch()
	}
	s.certsRouted = man.CertsRouted
	for i := 0; i < n; i++ {
		e, _, err := Restore(s.shardConfig(i, n), filepath.Join(dir, man.Files[i]))
		if err != nil {
			s.Close()
			return nil, nil, fmt.Errorf("stream: restore shard %d: %w", i, err)
		}
		s.shards = append(s.shards, e)
	}
	if n == 1 {
		// Passthrough from here on; the rendezvous is never consulted.
		s.single = s.shards[0]
		s.ckptMu.Lock()
		s.lastCkpt = time.Now()
		s.ckptMu.Unlock()
		return s, man.Cursor, nil
	}
	s.rebuildRendezvous()
	s.mu.Lock()
	for fp, seq := range man.CertSeqs {
		if ent := s.rv[ids.Fingerprint(fp)]; ent != nil {
			ent.seq = seq
		}
	}
	s.mu.Unlock()
	s.ckptMu.Lock()
	s.lastCkpt = time.Now()
	s.ckptMu.Unlock()
	return s, man.Cursor, nil
}

// rebuildRendezvous reconstructs delivery state from restored shard
// rosters, then re-registers every retained connection's interest and
// re-forwards certificates a referencing shard lacks.
func (s *Sharded) rebuildRendezvous() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.shards {
		bit := uint64(1) << i
		e.mu.Lock()
		e.st.Certs(func(c *certmodel.CertInfo) bool {
			ent := s.rv[c.Fingerprint]
			if ent == nil {
				ent = &rendezvous{}
				s.rv[c.Fingerprint] = ent
			}
			if ent.cert == nil {
				ent.cert = c
				s.uniqueCerts++
			}
			ent.delivered |= bit
			ent.waiting |= bit
			return true
		})
		e.mu.Unlock()
	}
	for i, e := range s.shards {
		bit := uint64(1) << i
		// Collect heals under the shard lock, send after releasing it:
		// a channel send can block on a full buffer, and the apply
		// goroutine needs the same lock to make room.
		var heal []*certmodel.CertInfo
		e.mu.Lock()
		e.st.Conns(func(rec *core.ConnRecord, _ uint64) bool {
			for _, fp := range [2]ids.Fingerprint{rec.ServerLeaf(), rec.ClientLeaf()} {
				if fp == "" {
					continue
				}
				ent := s.rv[fp]
				if ent == nil {
					ent = &rendezvous{}
					s.rv[fp] = ent
				}
				ent.waiting |= bit
				if ent.cert != nil && ent.delivered&bit == 0 {
					heal = append(heal, ent.cert)
					ent.delivered |= bit
				}
			}
			return true
		})
		e.mu.Unlock()
		for _, c := range heal {
			e.ingestCertPtr(c)
			s.m.fanout.Inc()
		}
	}
}
