package stream

import (
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/workload"
)

// replayAnalysis reconstructs a merged analysis from exported state the
// way an aggregator does: each sensor's exports (a full snapshot plus
// zero or more deltas, in sync order) concatenate into one shard state,
// the §3.2 verdict is recomputed from each sensor's latest evidence, and
// core.MergeShards replays everything through one Builder.
func replayAnalysis(in *core.Input, sensors ...[]*ExportState) *core.Analysis {
	im := interception.NewMerge(2)
	var states []core.ShardState
	var rawConns uint64
	seen := map[ids.Fingerprint]bool{}
	rawCerts := 0
	for _, exports := range sensors {
		var certs []*certmodel.CertInfo
		var conns []core.ConnRecord
		var seqs []uint64
		for _, st := range exports {
			for _, ec := range st.Certs {
				certs = append(certs, ec.Cert)
				if !seen[ec.Cert.Fingerprint] {
					seen[ec.Cert.Fingerprint] = true
					rawCerts++
				}
			}
			for _, ec := range st.Conns {
				conns = append(conns, ec.Conn)
				seqs = append(seqs, ec.Seq)
			}
		}
		last := exports[len(exports)-1]
		rawConns += last.ConnsIngested
		im.AbsorbEvidence(last.Evidence)
		states = append(states, core.ShardState{Certs: certs, Conns: conns, Seqs: seqs})
	}
	res := im.Result()
	pre := &core.PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(rawCerts),
		RawCerts:            rawCerts,
		RawConns:            int(rawConns),
	}
	b := core.MergeShards(in, states, func(fp ids.Fingerprint) bool {
		return res.ExcludedCerts[fp]
	})
	return b.Pipeline(pre).RunAll()
}

// exporter is the shared export surface of Engine and Sharded.
type exporter interface {
	ingester
	Drain()
	Export(since, epoch uint64) (*ExportState, error)
}

func mustExport(t *testing.T, e exporter, since, epoch uint64) *ExportState {
	t.Helper()
	st, err := e.Export(since, epoch)
	if err != nil {
		t.Fatalf("Export(%d, %d): %v", since, epoch, err)
	}
	return st
}

// certList orders the build's certificate map by fingerprint, so tests
// can split it into deterministic slices.
func certList(b *workload.Build) []*certmodel.CertInfo {
	certs := make([]*certmodel.CertInfo, 0, len(b.Raw.Certs))
	for _, c := range b.Raw.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	return certs
}

// feedSlice pushes certificates and connections from index ranges of the
// build — the tool for splitting one dataset into sync rounds.
func feedSlice(t *testing.T, g ingester, b *workload.Build, certs []*certmodel.CertInfo, c0, c1, n0, n1 int) {
	t.Helper()
	for _, c := range certs[c0:c1] {
		if !g.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c}) {
			t.Fatal("cert event rejected")
		}
	}
	for i := n0; i < n1; i++ {
		if !g.IngestConn(&b.Raw.Conns[i]) {
			t.Fatal("conn event rejected")
		}
	}
}

// TestExportFullReplay: a full export replayed through MergeShards +
// evidence merge reproduces the engine's own analysis exactly — at
// shard counts 1 (plain engine passthrough), 2, and 4.
func TestExportFullReplay(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))

	for _, n := range []int{1, 2, 4} {
		in := inputFromBuild(b)
		in.Raw = nil
		s := newSharded(t, n, in, func(c *Config) { c.TrackExport = true })
		feedCertsFirst(t, s, b)
		s.Drain()
		st := mustExport(t, s, 0, 0)

		if len(st.Certs) == 0 || len(st.Conns) == 0 {
			t.Fatalf("shards=%d: empty export: %d certs, %d conns", n, len(st.Certs), len(st.Conns))
		}
		for i := 1; i < len(st.Conns); i++ {
			if st.Conns[i].Seq <= st.Conns[i-1].Seq {
				t.Fatalf("shards=%d: conn seqs not strictly ascending at %d", n, i)
			}
		}
		got := replayAnalysis(inputFromBuild(b), []*ExportState{st})
		if !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: replayed analysis differs from batch", n)
		}
	}
}

// TestExportDelta: a full snapshot plus a delta from its cursor carry
// exactly the remaining records, and together replay to the batch
// analysis. Runs out of order (all connections before any certificate)
// so the delta path is exercised under late-certificate evidence.
func TestExportDelta(t *testing.T) {
	b := genBuild(7, 1200)
	batch := core.Run(inputFromBuild(b))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	for _, n := range []int{1, 2} {
		in := inputFromBuild(b)
		in.Raw = nil
		s := newSharded(t, n, in, func(c *Config) { c.TrackExport = true })

		// Round 1: first half of the connections, no certificates yet.
		feedSlice(t, s, b, certs, 0, 0, 0, half)
		s.Drain()
		full := mustExport(t, s, 0, 0)

		// Round 2: every certificate (all late), then the rest.
		feedSlice(t, s, b, certs, 0, len(certs), half, len(b.Raw.Conns))
		s.Drain()
		delta := mustExport(t, s, full.NextSeq, full.Epoch)

		if delta.Epoch != full.Epoch {
			t.Fatalf("shards=%d: delta changed epoch", n)
		}
		for _, ec := range delta.Conns {
			if ec.Seq < full.NextSeq {
				t.Fatalf("shards=%d: delta re-sent conn seq %d < cursor %d", n, ec.Seq, full.NextSeq)
			}
		}
		if got := len(full.Conns) + len(delta.Conns); got != len(b.Raw.Conns) {
			t.Fatalf("shards=%d: full+delta carry %d conns, want %d", n, got, len(b.Raw.Conns))
		}
		if len(full.Certs) != 0 || len(delta.Certs) != len(b.Raw.Certs) {
			t.Fatalf("shards=%d: certs split %d/%d, want 0/%d",
				n, len(full.Certs), len(delta.Certs), len(b.Raw.Certs))
		}
		got := replayAnalysis(inputFromBuild(b), []*ExportState{full, delta})
		if !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: full+delta replay differs from batch", n)
		}

		// An empty delta from the new cursor is valid and carries nothing.
		empty := mustExport(t, s, delta.NextSeq, delta.Epoch)
		if len(empty.Certs) != 0 || len(empty.Conns) != 0 {
			t.Errorf("shards=%d: steady-state delta not empty", n)
		}
	}
}

// TestExportStaleCursor: epoch mismatches and cursors beyond the
// sequence horizon are refused with ErrStaleCursor; engines without
// TrackExport refuse to export at all.
func TestExportStaleCursor(t *testing.T) {
	b := genBuild(99, 400)
	in := inputFromBuild(b)
	in.Raw = nil

	e := newEngine(t, in, func(c *Config) { c.TrackExport = true })
	feed(t, e, b)
	e.Drain()
	full := mustExport(t, e, 0, 0)

	if _, err := e.Export(full.NextSeq, full.Epoch+1); !errors.Is(err, ErrStaleCursor) {
		t.Errorf("epoch mismatch: err = %v, want ErrStaleCursor", err)
	}
	if _, err := e.Export(full.NextSeq+1, full.Epoch); !errors.Is(err, ErrStaleCursor) {
		t.Errorf("cursor beyond horizon: err = %v, want ErrStaleCursor", err)
	}

	plain := newEngine(t, in, nil)
	if _, err := plain.Export(0, 0); !errors.Is(err, ErrExportDisabled) {
		t.Errorf("export without TrackExport: err = %v, want ErrExportDisabled", err)
	}

	s := newSharded(t, 2, in, nil)
	if _, err := s.Export(0, 0); !errors.Is(err, ErrExportDisabled) {
		t.Errorf("sharded export without TrackExport: err = %v, want ErrExportDisabled", err)
	}
}

// TestExportCheckpointResume: a cursor taken before a checkpoint/restart
// keeps working against the restored engine (same epoch, same
// numbering), and full+post-restart delta still replay to batch.
func TestExportCheckpointResume(t *testing.T) {
	b := genBuild(20240504, 800)
	batch := core.Run(inputFromBuild(b))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2
	certHalf := len(certs) / 2

	for _, n := range []int{1, 2} {
		in := inputFromBuild(b)
		in.Raw = nil
		cfg := Config{Input: in, TrackExport: true}
		s, err := NewSharded(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		feedSlice(t, s, b, certs, 0, certHalf, 0, half)
		s.Drain()
		full := mustExport(t, s, 0, 0)

		dir := filepath.Join(t.TempDir(), "ckpt")
		if err := s.WriteCheckpoint(dir, nil); err != nil {
			t.Fatal(err)
		}
		s.Close()

		s2, _, err := RestoreSharded(cfg, n, dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s2.Close)
		feedSlice(t, s2, b, certs, certHalf, len(certs), half, len(b.Raw.Conns))
		s2.Drain()

		delta := mustExport(t, s2, full.NextSeq, full.Epoch)
		if delta.Epoch != full.Epoch {
			t.Fatalf("shards=%d: restore changed epoch %d -> %d", n, full.Epoch, delta.Epoch)
		}
		got := replayAnalysis(inputFromBuild(b), []*ExportState{full, delta})
		if !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: full+post-restart delta differs from batch", n)
		}
	}
}

// TestExportFreshRestartIsStale: restoring from a pre-export checkpoint
// (or simply restarting without one) renumbers under a new epoch, so a
// cursor from the previous process is refused rather than silently
// resuming against different sequence numbers.
func TestExportFreshRestartIsStale(t *testing.T) {
	b := genBuild(7, 400)
	in := inputFromBuild(b)
	in.Raw = nil

	// A checkpoint written without TrackExport...
	cfg := Config{Input: in}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, b)
	e.Drain()
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := e.WriteCheckpoint(path, nil); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// ...restores into an exporting engine with a fresh epoch and a
	// complete renumbering: a full export must carry everything.
	cfg.TrackExport = true
	e2, _, err := Restore(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	full := mustExport(t, e2, 0, 0)
	if len(full.Conns) != len(b.Raw.Conns) || len(full.Certs) != len(b.Raw.Certs) {
		t.Fatalf("renumbered export carries %d/%d conns, %d/%d certs",
			len(full.Conns), len(b.Raw.Conns), len(full.Certs), len(b.Raw.Certs))
	}
	if _, err := e2.Export(1, full.Epoch+12345); !errors.Is(err, ErrStaleCursor) {
		t.Errorf("cursor from another epoch: err = %v, want ErrStaleCursor", err)
	}
	got := replayAnalysis(in, []*ExportState{full})
	if !reflect.DeepEqual(core.Run(inputFromBuild(b)), got) {
		t.Error("renumbered export replay differs from batch")
	}
}
