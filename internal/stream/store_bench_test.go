package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// BenchmarkStoreIngest prices the pluggable store on the batched hot
// path: the memory store is the refactored baseline (byte-identical
// semantics to the pre-store engine), the disk store runs under a hot
// budget far below the dataset so every iteration pays real spill
// traffic — the worst case, not the comfortable one.
func BenchmarkStoreIngest(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	certRecs := benchCertRecs(bld)
	events := len(certRecs) + len(bld.Raw.Conns)
	for _, tier := range []struct {
		name     string
		mutate   func(*Config, string)
		hotBytes int64
	}{
		{name: "store=memory", mutate: func(c *Config, dir string) {}},
		{name: "store=disk", mutate: func(c *Config, dir string) {
			c.Store = "disk"
			c.StoreDir = dir
			c.HotBytes = 1 << 20
		}},
	} {
		b.Run(tier.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				b.StartTimer()
				cfg := Config{Input: in}
				tier.mutate(&cfg, dir)
				e, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(certRecs); lo += benchBatch {
					e.IngestCertBatch(certRecs[lo:min(lo+benchBatch, len(certRecs)):len(certRecs)])
				}
				for lo := 0; lo < len(bld.Raw.Conns); lo += benchBatch {
					e.IngestConnBatch(bld.Raw.Conns[lo:min(lo+benchBatch, len(bld.Raw.Conns))])
				}
				e.Drain()
				e.Close()
			}
			b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkCheckpoint prices one checkpoint interval on a warm engine:
// "full" is the legacy single-file rewrite (O(state) every interval —
// what every deployment paid before incremental checkpoints), "delta"
// is an incremental commit covering a 512-event interval (O(delta)).
// The spread between the two is the tentpole's headline number.
func BenchmarkCheckpoint(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	const interval = 512
	warm := len(bld.Raw.Conns) - interval

	setup := func(b *testing.B) *Engine {
		e, err := New(Config{Input: in})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range bld.Raw.Certs {
			e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		for i := 0; i < warm; i++ {
			e.IngestConn(&bld.Raw.Conns[i])
		}
		e.Drain()
		return e
	}

	b.Run("full", func(b *testing.B) {
		e := setup(b)
		defer e.Close()
		path := filepath.Join(b.TempDir(), "mtlsd.ckpt")
		if f, err := os.Create(path); err != nil {
			b.Fatal(err)
		} else {
			f.Close() // an existing regular file keeps the legacy format
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.WriteCheckpoint(path, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("delta", func(b *testing.B) {
		e := setup(b)
		defer e.Close()
		dir := filepath.Join(b.TempDir(), "ckpt")
		// Base commit outside the timer: the measured op is the steady
		// state — a delta per interval, not the one-time base.
		if err := e.WriteCheckpoint(dir, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Re-ingest the same interval so every iteration has a fresh
			// ~512-record delta to commit. The retained window grows over
			// the run, which only makes the O(delta) claim harder to meet.
			for j := warm; j < warm+interval; j++ {
				e.IngestConn(&bld.Raw.Conns[j])
			}
			e.Drain()
			b.StartTimer()
			if err := e.WriteCheckpoint(dir, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		e.compactWG.Wait()
	})
}

// BenchmarkCompact prices the background fold of a full segment chain,
// so the amortized cost hiding inside the delta path has its own
// number.
func BenchmarkCompact(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := New(Config{Input: in})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range bld.Raw.Certs {
			e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("ckpt-%d", i))
		parts := ckptSlices(bld.Raw.Conns, ckptCompactEvery-1)
		for _, part := range parts {
			for j := range part {
				e.IngestConn(&part[j])
			}
			e.Drain()
			if err := e.WriteCheckpoint(dir, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := e.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
	}
}
