package stream

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workload"
)

// shardCounts is the acceptance matrix: a sharded deployment must be
// indistinguishable from a single engine at every one of these.
var shardCounts = []int{1, 2, 4, 8}

// ingester is the shared ingest surface of Engine and Sharded, so the
// feeding helpers drive both through one code path.
type ingester interface {
	IngestConn(*core.ConnRecord) bool
	IngestCert(*core.CertRecord) bool
}

func feedCertsFirst(t *testing.T, g ingester, b *workload.Build) {
	t.Helper()
	for _, c := range b.Raw.Certs {
		if !g.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c}) {
			t.Fatal("cert event rejected")
		}
	}
	for i := range b.Raw.Conns {
		if !g.IngestConn(&b.Raw.Conns[i]) {
			t.Fatal("conn event rejected")
		}
	}
}

func newSharded(t *testing.T, n int, in *core.Input, mutate func(*Config)) *Sharded {
	t.Helper()
	cfg := Config{Input: in}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSharded(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestShardedMatchesSingleAndBatch is the tentpole contract: at every
// shard count, draining the same event stream yields an Analysis deeply
// equal to both the single engine's and the batch pipeline's.
func TestShardedMatchesSingleAndBatch(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	single := newEngine(t, in, nil)
	feed(t, single, b)
	single.Drain()
	want := single.Analysis()
	if !reflect.DeepEqual(batch, want) {
		t.Fatal("single-engine analysis differs from batch (prerequisite broken)")
	}

	for _, n := range shardCounts {
		s := newSharded(t, n, in, nil)
		feedCertsFirst(t, s, b)
		s.Drain()
		got := s.Analysis()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: merged analysis differs from single engine", n)
		}
		if !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: merged analysis differs from batch", n)
		}
		st := s.Stats()
		if st.ConnsIngested != uint64(len(b.Raw.Conns)) {
			t.Errorf("shards=%d: ConnsIngested = %d, want %d", n, st.ConnsIngested, len(b.Raw.Conns))
		}
		if st.UniqueCerts != len(b.Raw.Certs) {
			t.Errorf("shards=%d: UniqueCerts = %d, want %d", n, st.UniqueCerts, len(b.Raw.Certs))
		}
		if st.Dropped != 0 {
			t.Errorf("shards=%d: unexpected drops: %d", n, st.Dropped)
		}
	}
}

// TestShardedOutOfOrderCerts feeds every connection before any
// certificate: each shard parks observations in its own pending set, the
// rendezvous forwards every late certificate to the shards that
// registered interest, and the drained merge must still equal batch —
// the per-shard retroactive-evidence path under fan-out.
func TestShardedOutOfOrderCerts(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil

	for _, n := range shardCounts {
		s := newSharded(t, n, in, nil)
		for i := range b.Raw.Conns {
			s.IngestConn(&b.Raw.Conns[i])
		}
		for _, c := range b.Raw.Certs {
			s.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		s.Drain()
		if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: out-of-order merged analysis differs from batch", n)
		}
	}
}

// TestShardedInterleaved alternates chunks of connections and
// certificates, so some leaf certificates arrive before their
// connections (direct rendezvous delivery at routing time) and some
// after (waiting-set forwarding) — both rendezvous paths in one stream.
func TestShardedInterleaved(t *testing.T) {
	b := genBuild(7, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil

	certs := make([]*certmodel.CertInfo, 0, len(b.Raw.Certs))
	for _, c := range b.Raw.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })

	for _, n := range shardCounts {
		s := newSharded(t, n, in, nil)
		ci, coi := 0, 0
		for ci < len(certs) || coi < len(b.Raw.Conns) {
			for k := 0; k < 16 && coi < len(b.Raw.Conns); k++ {
				s.IngestConn(&b.Raw.Conns[coi])
				coi++
			}
			for k := 0; k < 8 && ci < len(certs); k++ {
				s.IngestCert(&core.CertRecord{TS: certs[ci].NotBefore, Cert: certs[ci]})
				ci++
			}
		}
		s.Drain()
		if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: interleaved merged analysis differs from batch", n)
		}
	}
}

// TestShardedRetroactiveExclusion guards the cross-shard §3.2 property:
// the workload's interception issuers must be confirmed by the MERGED
// verdict even when their contradicting domains land on different shards
// — no single shard needs to see enough evidence on its own.
func TestShardedRetroactiveExclusion(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))
	if batch.Preprocess.ExcludedCerts == 0 || len(batch.Preprocess.InterceptionIssuers) == 0 {
		t.Fatal("workload exercises no §3.2 exclusions; the test is vacuous")
	}
	in := inputFromBuild(b)
	in.Raw = nil

	for _, n := range shardCounts {
		s := newSharded(t, n, in, nil)
		feedCertsFirst(t, s, b)
		s.Drain()
		got := s.Analysis()
		if !reflect.DeepEqual(batch.Preprocess, got.Preprocess) {
			t.Errorf("shards=%d: merged preprocess verdict differs from batch:\n got %+v\nwant %+v",
				n, got.Preprocess, batch.Preprocess)
		}
		st := s.Stats()
		if st.InterceptionIssuers != len(batch.Preprocess.InterceptionIssuers) {
			t.Errorf("shards=%d: Stats.InterceptionIssuers = %d, want %d",
				n, st.InterceptionIssuers, len(batch.Preprocess.InterceptionIssuers))
		}
		if st.ExcludedCerts != batch.Preprocess.ExcludedCerts {
			t.Errorf("shards=%d: Stats.ExcludedCerts = %d, want %d",
				n, st.ExcludedCerts, batch.Preprocess.ExcludedCerts)
		}
	}
}

// TestShardedMidStream takes a merged snapshot mid-stream (a consistent
// per-shard prefix), then finishes the stream and requires convergence
// to batch — materialization must not disturb ingest state.
func TestShardedMidStream(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil

	s := newSharded(t, 4, in, nil)
	for _, c := range b.Raw.Certs {
		s.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	half := len(b.Raw.Conns) / 2
	for i := 0; i < half; i++ {
		s.IngestConn(&b.Raw.Conns[i])
	}
	s.Drain()
	mid := s.Analysis()
	if mid.Preprocess.RawConns != half {
		t.Fatalf("mid-stream RawConns = %d, want %d", mid.Preprocess.RawConns, half)
	}
	if mid.CertStats.Row("Total").Total == 0 {
		t.Fatal("mid-stream merged analysis is empty")
	}
	if st := s.Stats(); st.Dirty {
		t.Fatal("Stats.Dirty after materializing with no new events")
	}

	for i := half; i < len(b.Raw.Conns); i++ {
		s.IngestConn(&b.Raw.Conns[i])
	}
	s.Drain()
	if st := s.Stats(); !st.Dirty {
		t.Fatal("Stats.Dirty must be set after new events")
	}
	if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("post-snapshot merged analysis differs from batch")
	}
}

// TestShardedCheckpointRestoreResume kills a sharded deployment
// mid-stream, restores every shard from the manifest, replays the
// remainder, and requires byte-identical rendered reports — the
// acceptance criterion for the per-shard checkpoint manifest.
func TestShardedCheckpointRestoreResume(t *testing.T) {
	b := genBuild(20240504, 1000)
	in := inputFromBuild(b)
	in.Raw = nil

	for _, n := range []int{1, 4} {
		full := newSharded(t, n, in, nil)
		feedCertsFirst(t, full, b)
		full.Drain()
		want := full.Analysis()

		s := newSharded(t, n, in, nil)
		for _, c := range b.Raw.Certs {
			s.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		cut := len(b.Raw.Conns) * 2 / 5
		for i := 0; i < cut; i++ {
			s.IngestConn(&b.Raw.Conns[i])
		}
		s.Drain()
		dir := filepath.Join(t.TempDir(), "ckpt")
		cursor := map[string]int64{"conn_index": int64(cut)}
		if err := s.WriteCheckpoint(dir, cursor); err != nil {
			t.Fatal(err)
		}
		s.Close() // the "kill"

		restored, gotCursor, err := RestoreSharded(Config{Input: in}, n, dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(restored.Close)
		if gotCursor["conn_index"] != int64(cut) {
			t.Fatalf("shards=%d: cursor = %v, want conn_index=%d", n, gotCursor, cut)
		}
		for i := cut; i < len(b.Raw.Conns); i++ {
			restored.IngestConn(&b.Raw.Conns[i])
		}
		restored.Drain()
		got := restored.Analysis()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: restored analysis differs from uninterrupted run", n)
		}
		if report.RenderAll(want) != report.RenderAll(got) {
			t.Fatalf("shards=%d: rendered reports are not byte-identical after restore", n)
		}
	}
}

// TestShardedCheckpointGenerations checks the manifest commit protocol:
// a second checkpoint supersedes the first atomically and garbage-
// collects its files, and a stale uncommitted generation is ignored.
func TestShardedCheckpointGenerations(t *testing.T) {
	b := genBuild(7, 500)
	in := inputFromBuild(b)
	in.Raw = nil
	s := newSharded(t, 2, in, nil)
	feedCertsFirst(t, s, b)
	s.Drain()
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.WriteCheckpoint(dir, map[string]int64{"g": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(dir, map[string]int64{"g": 2}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, manifests int
	for _, e := range ents {
		switch {
		case e.Name() == manifestName:
			manifests++
		case strings.HasSuffix(e.Name(), ".ckpt"):
			if !strings.Contains(e.Name(), ".g2.") {
				t.Fatalf("stale generation file survived: %s", e.Name())
			}
			ckpts++
		}
	}
	if manifests != 1 || ckpts != 2 {
		t.Fatalf("dir has %d manifests / %d shard files, want 1 / 2", manifests, ckpts)
	}
	if _, cursor, err := RestoreSharded(Config{Input: in}, 0, dir); err != nil {
		t.Fatal(err)
	} else if cursor["g"] != 2 {
		t.Fatalf("restored cursor %v, want the second generation's", cursor)
	}
}

// TestShardedCrashMidCheckpoint: a kill -9 landing between the shard
// writes and the manifest rename leaves the directory with the previous
// committed generation's manifest plus the doomed commit's debris — a
// fully written next-generation shard file, a ".ckpt.tmp" partial killed
// mid-write, and a ".ckpt.tmp" partial from an even older doomed commit
// whose generation number no future commit will reuse. Restore must come
// up on the committed generation, resume cleanly, and the next
// checkpoint must garbage-collect every orphan — the old "*.ckpt" GC
// glob never matched the ".tmp" partials, so they accumulated forever.
func TestShardedCrashMidCheckpoint(t *testing.T) {
	b := genBuild(20240504, 600)
	in := inputFromBuild(b)
	in.Raw = nil

	full := newSharded(t, 2, in, nil)
	feedCertsFirst(t, full, b)
	full.Drain()
	want := full.Analysis()

	s := newSharded(t, 2, in, nil)
	for _, c := range b.Raw.Certs {
		s.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	cut := len(b.Raw.Conns) * 2 / 5
	for i := 0; i < cut; i++ {
		s.IngestConn(&b.Raw.Conns[i])
	}
	s.Drain()
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.WriteCheckpoint(dir, map[string]int64{"conn_index": int64(cut)}); err != nil {
		t.Fatal(err)
	}

	// The doomed generation-2 commit: shard 0 fully written, shard 1
	// killed mid-write, and the manifest rename never reached. The g9
	// partial is an older doomed commit at a generation the restored
	// process will never write again.
	g1, err := os.ReadFile(filepath.Join(dir, "shard-0.g1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string][]byte{
		"shard-0.g2.ckpt":     g1,
		"shard-1.g2.ckpt.tmp": g1[:len(g1)/3],
		"shard-0.g9.ckpt.tmp": g1[:16],
		"manifest.json.tmp":   []byte("{\"Version\":1"),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // the kill

	restored, cursor, err := RestoreSharded(Config{Input: in}, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if cursor["conn_index"] != int64(cut) {
		t.Fatalf("restored cursor %v, want the committed generation's conn_index=%d", cursor, cut)
	}
	if got := restored.Stats().ConnsIngested; got != uint64(cut) {
		t.Fatalf("restored ConnsIngested = %d, want %d (must not see the doomed generation)", got, cut)
	}

	for i := cut; i < len(b.Raw.Conns); i++ {
		restored.IngestConn(&b.Raw.Conns[i])
	}
	restored.Drain()
	if got := restored.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("resumed analysis differs from uninterrupted run")
	}

	// The next commit (generation 2 again) must sweep all the debris.
	if err := restored.WriteCheckpoint(dir, map[string]int64{"conn_index": int64(len(b.Raw.Conns))}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(ents))
	for _, e := range ents {
		got = append(got, e.Name())
	}
	sort.Strings(got)
	wantFiles := []string{manifestName, "shard-0.g2.ckpt", "shard-1.g2.ckpt"}
	if !reflect.DeepEqual(got, wantFiles) {
		t.Fatalf("post-commit dir = %v, want exactly %v (orphans must be GC'd)", got, wantFiles)
	}

	// And the swept directory restores to the full-run state.
	again, cursor2, err := RestoreSharded(Config{Input: in}, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	if cursor2["conn_index"] != int64(len(b.Raw.Conns)) {
		t.Fatalf("final cursor %v, want conn_index=%d", cursor2, len(b.Raw.Conns))
	}
	if !reflect.DeepEqual(want, again.Analysis()) {
		t.Fatal("restore of the post-crash checkpoint differs from uninterrupted run")
	}
}

// TestShardedRestoreShardMismatch: restoring with a different shard
// count must fail loudly (resharding a checkpoint is unsupported), and
// n=0 must adopt the manifest's count.
func TestShardedRestoreShardMismatch(t *testing.T) {
	b := genBuild(7, 300)
	in := inputFromBuild(b)
	in.Raw = nil
	s := newSharded(t, 2, in, nil)
	feedCertsFirst(t, s, b)
	s.Drain()
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := s.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreSharded(Config{Input: in}, 3, dir); err == nil {
		t.Fatal("restore with mismatched shard count must error")
	}
	adopted, _, err := RestoreSharded(Config{Input: in}, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adopted.Close)
	if adopted.Shards() != 2 {
		t.Fatalf("Shards() = %d, want the manifest's 2", adopted.Shards())
	}
}

// TestShardedReportRegistry: the merged deployment serves the same report
// registry with the same error taxonomy as a single engine.
func TestShardedReportRegistry(t *testing.T) {
	b := genBuild(20240504, 800)
	in := inputFromBuild(b)
	in.Raw = nil
	s := newSharded(t, 2, in, nil)
	feedCertsFirst(t, s, b)
	s.Drain()
	for _, name := range ReportNames() {
		out, err := s.Report(name)
		if err != nil {
			t.Fatalf("Report(%q): %v", name, err)
		}
		if out == nil || reflect.ValueOf(out).IsNil() {
			t.Fatalf("Report(%q) returned nil", name)
		}
	}
	if _, err := s.Report("nope"); err == nil {
		t.Fatal("unknown report name must error")
	}
}

// TestShardedRejectsInvalid: the router enforces the same ingest
// boundary as a single engine and counts refusals.
func TestShardedRejectsInvalid(t *testing.T) {
	b := genBuild(20240504, 300)
	in := inputFromBuild(b)
	in.Raw = nil
	s := newSharded(t, 4, in, nil)

	bad := b.Raw.Conns[0]
	bad.Weight = 0
	if s.IngestConn(nil) || s.IngestConn(&bad) {
		t.Fatal("invalid conn events must be rejected")
	}
	if s.IngestCert(nil) || s.IngestCert(&core.CertRecord{}) {
		t.Fatal("invalid cert events must be rejected")
	}
	if !s.IngestConn(&b.Raw.Conns[0]) {
		t.Fatal("valid events must still be accepted")
	}
	s.Drain()
	st := s.Stats()
	if st.Rejected != 4 {
		t.Fatalf("Rejected = %d, want 4", st.Rejected)
	}
	if st.ConnsIngested != 1 {
		t.Fatalf("ConnsIngested = %d, want 1", st.ConnsIngested)
	}
}

// TestShardedConcurrentIngestAndMaterialize hammers materialization and
// stats while ingestion is in flight — the merge snapshots shard state
// under each shard's lock but replays lock-free against live slice
// headers, and this is the test that puts the race detector on that
// path. The final drained analysis must still equal batch.
func TestShardedConcurrentIngestAndMaterialize(t *testing.T) {
	b := genBuild(99, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil
	s := newSharded(t, 4, in, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		feedCertsFirst(t, s, b)
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
		default:
			s.Stats()
			if i%3 == 0 {
				if a := s.Analysis(); a == nil {
					t.Error("nil mid-stream analysis")
				}
			}
			continue
		}
		break
	}
	s.Drain()
	if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("merged analysis differs from batch after concurrent materialization")
	}
}

// TestShardedMetricsLabels: per-shard series carry shard="i" labels and
// the router registers its own deployment-level series.
func TestShardedMetricsLabels(t *testing.T) {
	b := genBuild(7, 300)
	in := inputFromBuild(b)
	in.Raw = nil
	reg := metrics.New()
	s := newSharded(t, 2, in, func(c *Config) { c.Metrics = reg })
	feedCertsFirst(t, s, b)
	s.Drain()
	s.Analysis()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`stream_conns_ingested_total{shard="0"}`,
		`stream_conns_ingested_total{shard="1"}`,
		`stream_buffer_occupancy{shard="1"}`,
		`stream_shards 2`,
		`stream_merges_total 1`,
		`stream_cert_fanout_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition is missing %q", want)
		}
	}
}
