package stream

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// ErrUnknownReport marks a Report call for a name that does not exist.
// Callers serving reports over HTTP use it to tell a client error (404)
// from an internal materialization failure (500).
var ErrUnknownReport = errors.New("stream: unknown report")

// reportFns maps the daemon's report names (URL path leaves under
// /reports/) to pipeline stages. Names follow the paper's table/figure
// numbering, plus the unnumbered §-level reports.
var reportFns = map[string]func(*core.Pipeline) any{
	"preprocess":   func(p *core.Pipeline) any { return p.PreprocessReport() },
	"table1":       func(p *core.Pipeline) any { return p.CertStats() },
	"figure1":      func(p *core.Pipeline) any { return p.Prevalence() },
	"table2":       func(p *core.Pipeline) any { return p.Services() },
	"table3":       func(p *core.Pipeline) any { return p.Inbound() },
	"figure2":      func(p *core.Pipeline) any { return p.Outbound() },
	"table4":       func(p *core.Pipeline) any { return p.DummyIssuers() },
	"serials":      func(p *core.Pipeline) any { return p.Serials() },
	"table5":       func(p *core.Pipeline) any { return p.SharingSame() },
	"table6":       func(p *core.Pipeline) any { return p.SharingCross() },
	"figure3":      func(p *core.Pipeline) any { return p.BadDates() },
	"figure4":      func(p *core.Pipeline) any { return p.Validity() },
	"figure5":      func(p *core.Pipeline) any { return p.Expired() },
	"table7":       func(p *core.Pipeline) any { return p.Utilization() },
	"table8":       func(p *core.Pipeline) any { return p.Contents() },
	"table9":       func(p *core.Pipeline) any { return p.Unidentified() },
	"table13":      func(p *core.Pipeline) any { return p.SharedInfo() },
	"table14":      func(p *core.Pipeline) any { return p.NonMutual() },
	"concerns":     func(p *core.Pipeline) any { return p.Concerns() },
	"santypes":     func(p *core.Pipeline) any { return p.SANTypes() },
	"durations":    func(p *core.Pipeline) any { return p.Durations() },
	"versions":     func(p *core.Pipeline) any { return p.Versions() },
	"fingerprints": func(p *core.Pipeline) any { return p.Fingerprints() },
}

// ReportNames lists every materializable report, sorted.
func ReportNames() []string {
	names := make([]string, 0, len(reportFns))
	for n := range reportFns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Materializer is anything that can expose a consistent core.Pipeline:
// a single Engine, a Sharded deployment, or a distributed aggregator's
// merged view. Implementations must not let fn retain the pipeline.
type Materializer interface {
	WithPipeline(func(*core.Pipeline))
}

// MaterializeReport materializes one named report over m's current
// state, with the registry and error taxonomy shared by Engine.Report
// and Sharded.Report — the hook an out-of-package Materializer (the
// distributed aggregator) uses to serve the same /reports surface.
func MaterializeReport(m Materializer, name string) (any, error) {
	return runReport(m, name)
}

// runReport materializes one named report over m's current state. The
// returned value is a fresh report struct safe to serialize after the
// call. An unknown name returns an error wrapping ErrUnknownReport; a
// panic during materialization (a bug, not a client mistake) is
// recovered into a plain error so one bad report cannot take down a
// long-running daemon.
func runReport(m Materializer, name string) (out any, err error) {
	fn, ok := reportFns[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownReport, name)
	}
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("stream: report %s: %v", name, p)
		}
	}()
	m.WithPipeline(func(p *core.Pipeline) { out = fn(p) })
	return out, nil
}

// Report materializes one named report over the current state; see
// runReport for the error taxonomy.
func (e *Engine) Report(name string) (any, error) {
	return runReport(e, name)
}
