package stream

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// reportFns maps the daemon's report names (URL path leaves under
// /reports/) to pipeline stages. Names follow the paper's table/figure
// numbering, plus the unnumbered §-level reports.
var reportFns = map[string]func(*core.Pipeline) any{
	"preprocess": func(p *core.Pipeline) any { return p.PreprocessReport() },
	"table1":     func(p *core.Pipeline) any { return p.CertStats() },
	"figure1":    func(p *core.Pipeline) any { return p.Prevalence() },
	"table2":     func(p *core.Pipeline) any { return p.Services() },
	"table3":     func(p *core.Pipeline) any { return p.Inbound() },
	"figure2":    func(p *core.Pipeline) any { return p.Outbound() },
	"table4":     func(p *core.Pipeline) any { return p.DummyIssuers() },
	"serials":    func(p *core.Pipeline) any { return p.Serials() },
	"table5":     func(p *core.Pipeline) any { return p.SharingSame() },
	"table6":     func(p *core.Pipeline) any { return p.SharingCross() },
	"figure3":    func(p *core.Pipeline) any { return p.BadDates() },
	"figure4":    func(p *core.Pipeline) any { return p.Validity() },
	"figure5":    func(p *core.Pipeline) any { return p.Expired() },
	"table7":     func(p *core.Pipeline) any { return p.Utilization() },
	"table8":     func(p *core.Pipeline) any { return p.Contents() },
	"table9":     func(p *core.Pipeline) any { return p.Unidentified() },
	"table13":    func(p *core.Pipeline) any { return p.SharedInfo() },
	"table14":    func(p *core.Pipeline) any { return p.NonMutual() },
	"concerns":   func(p *core.Pipeline) any { return p.Concerns() },
	"santypes":   func(p *core.Pipeline) any { return p.SANTypes() },
	"durations":  func(p *core.Pipeline) any { return p.Durations() },
	"versions":   func(p *core.Pipeline) any { return p.Versions() },
}

// ReportNames lists every materializable report, sorted.
func ReportNames() []string {
	names := make([]string, 0, len(reportFns))
	for n := range reportFns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Report materializes one named report over the current state. The
// returned value is a fresh report struct safe to serialize after the
// call.
func (e *Engine) Report(name string) (any, error) {
	fn, ok := reportFns[name]
	if !ok {
		return nil, fmt.Errorf("stream: unknown report %q", name)
	}
	var out any
	e.WithPipeline(func(p *core.Pipeline) { out = fn(p) })
	return out, nil
}
