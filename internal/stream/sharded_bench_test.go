package stream

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// benchBuild is generated once: workload synthesis dwarfs ingest cost
// and must stay out of the measured loop.
var benchBuild *workload.Build

func getBenchBuild() *workload.Build {
	if benchBuild == nil {
		benchBuild = genBuild(20240504, 1500)
	}
	return benchBuild
}

// benchBatch is the feed granularity of the batched benchmarks — the
// same order of magnitude as a tailer poll over a busy log.
const benchBatch = 512

// benchCertRecs adapts the build's certificates into the record shape
// the parsers emit, once, outside any timer.
func benchCertRecs(bld *workload.Build) []core.CertRecord {
	recs := make([]core.CertRecord, 0, len(bld.Raw.Certs))
	for _, c := range bld.Raw.Certs {
		recs = append(recs, core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	return recs
}

// BenchmarkEngineIngest is the single-engine baseline the sharded
// numbers are read against: events/op over one full feed + drain on the
// batched ingest path (the tailer→engine hot path since the batch
// rework; BenchmarkEngineIngestSingle keeps the per-event path honest).
func BenchmarkEngineIngest(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	certRecs := benchCertRecs(bld)
	events := len(certRecs) + len(bld.Raw.Conns)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Input: in})
		if err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < len(certRecs); lo += benchBatch {
			e.IngestCertBatch(certRecs[lo:min(lo+benchBatch, len(certRecs)):len(certRecs)])
		}
		for lo := 0; lo < len(bld.Raw.Conns); lo += benchBatch {
			e.IngestConnBatch(bld.Raw.Conns[lo:min(lo+benchBatch, len(bld.Raw.Conns))])
		}
		e.Drain()
		e.Close()
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineIngestSingle is the per-event path: one channel hop and
// one defensive copy per record.
func BenchmarkEngineIngestSingle(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	events := len(bld.Raw.Certs) + len(bld.Raw.Conns)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Input: in})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range bld.Raw.Certs {
			e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		for j := range bld.Raw.Conns {
			e.IngestConn(&bld.Raw.Conns[j])
		}
		e.Drain()
		e.Close()
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkShardedIngest measures ingest throughput (feed + drain, no
// materialization) at shard counts 1/2/4/8 on the batched router path —
// one lock acquisition and one channel operation per shard per batch.
// On a single-core host the counts collapse onto the baseline; the
// shape of the scaling is only visible with cores to spend.
func BenchmarkShardedIngest(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	certRecs := benchCertRecs(bld)
	events := len(certRecs) + len(bld.Raw.Conns)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := NewSharded(n, Config{Input: in})
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(certRecs); lo += benchBatch {
					s.IngestCertBatch(certRecs[lo:min(lo+benchBatch, len(certRecs)):len(certRecs)])
				}
				for lo := 0; lo < len(bld.Raw.Conns); lo += benchBatch {
					s.IngestConnBatch(bld.Raw.Conns[lo:min(lo+benchBatch, len(bld.Raw.Conns))])
				}
				s.Drain()
				s.Close()
			}
			b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkShardedMaterialize prices the other side of the trade: the
// merged-view replay a sharded deployment pays on the first
// materialization after new events (the cached path is ~free and not
// what this measures). At shards=1 the passthrough materializes the
// single engine incrementally — no replay at all.
func BenchmarkShardedMaterialize(b *testing.B) {
	bld := getBenchBuild()
	in := inputFromBuild(bld)
	in.Raw = nil
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := NewSharded(n, Config{Input: in})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for _, c := range bld.Raw.Certs {
				s.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
			}
			for j := range bld.Raw.Conns {
				s.IngestConn(&bld.Raw.Conns[j])
			}
			s.Drain()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.matMu.Lock()
				s.cachedB, s.cachedVer, s.cachedPre = nil, nil, nil // force the replay
				s.matMu.Unlock()
				s.WithPipeline(func(p *core.Pipeline) { p.PreprocessReport() })
			}
		})
	}
}
