package stream

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/internal/zeek"
)

// writeReplayLogs persists the dataset as ssl.log/x509.log in dir —
// the zeek-writer core of mtls.WriteLogs, inlined here because the
// facade package now depends on this one (via internal/distrib) and an
// in-package test cannot import it back.
func writeReplayLogs(t *testing.T, ds *zeek.Dataset, dir string) {
	t.Helper()
	sslF, err := os.Create(filepath.Join(dir, "ssl.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer sslF.Close()
	sw := zeek.NewSSLWriter(sslF)
	for i := range ds.Conns {
		if err := sw.Write(&ds.Conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	certs := make([]*certmodel.CertInfo, 0, len(ds.Certs))
	for _, c := range ds.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	x509F, err := os.Create(filepath.Join(dir, "x509.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer x509F.Close()
	xw := zeek.NewX509Writer(x509F)
	for _, c := range certs {
		rec := zeek.X509Record{TS: c.NotBefore, ID: ids.NewFileID(c.Fingerprint), Cert: c}
		if err := xw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := xw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// openReplayLogs reloads a pair written by writeReplayLogs (strict).
func openReplayLogs(t *testing.T, dir string) *zeek.Dataset {
	t.Helper()
	sslF, err := os.Open(filepath.Join(dir, "ssl.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer sslF.Close()
	x509F, err := os.Open(filepath.Join(dir, "x509.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer x509F.Close()
	ds, err := zeek.LoadDataset(sslF, x509F)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func inputFromBuild(b *workload.Build) *core.Input {
	return &core.Input{
		Raw:           b.Raw,
		CT:            b.CT,
		Bundle:        b.Bundle,
		CampusIssuers: b.CampusIssuers,
		Assoc: core.AssocMap{
			HealthSLDs:     b.Assoc.HealthSLDs,
			UniversitySLDs: b.Assoc.UniversitySLDs,
			VPNHostPrefix:  b.Assoc.VPNHostPrefix,
			LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
			ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
			GlobusSLDs:     b.Assoc.GlobusSLDs,
		},
		Plan:   b.Plan,
		Months: b.Months,
	}
}

func genBuild(seed uint64, scale int) *workload.Build {
	cfg := workload.Default()
	cfg.Seed = seed
	cfg.CertScale = scale
	return workload.Generate(cfg)
}

// feed pushes a build through an engine: certificates first, then
// connections in dataset order — the interleaving a well-ordered log
// replay produces.
func feed(t *testing.T, e *Engine, b *workload.Build) {
	t.Helper()
	for _, c := range b.Raw.Certs {
		if !e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c}) {
			t.Fatal("cert event rejected")
		}
	}
	for i := range b.Raw.Conns {
		if !e.IngestConn(&b.Raw.Conns[i]) {
			t.Fatal("conn event rejected")
		}
	}
}

func newEngine(t *testing.T, in *core.Input, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Input: in}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestStreamMatchesBatch is the load-bearing contract: draining a finite
// dataset through the engine produces an Analysis deeply equal to the
// batch pipeline's, across seeds and scales.
func TestStreamMatchesBatch(t *testing.T) {
	for _, tc := range []struct {
		seed  uint64
		scale int
	}{
		{seed: 20240504, scale: 1200},
		{seed: 7, scale: 1200},
		{seed: 99, scale: 1200},
		{seed: 20240504, scale: 600},
		{seed: 7, scale: 600},
		{seed: 99, scale: 600},
	} {
		b := genBuild(tc.seed, tc.scale)
		batch := core.Run(inputFromBuild(b))

		in := inputFromBuild(b)
		in.Raw = nil // the engine accumulates its own dataset
		e := newEngine(t, in, nil)
		feed(t, e, b)
		e.Drain()
		got := e.Analysis()

		if !reflect.DeepEqual(batch, got) {
			t.Errorf("seed=%d scale=%d: stream analysis differs from batch", tc.seed, tc.scale)
		}
		if st := e.Stats(); st.Dropped != 0 {
			t.Errorf("seed=%d scale=%d: unexpected drops: %d", tc.seed, tc.scale, st.Dropped)
		}
	}
}

// TestStreamMatchesBatchParallelMaterialize checks the contract holds
// when materialization fans the analyses out across workers.
func TestStreamMatchesBatchParallelMaterialize(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	in.Workers = 4
	e := newEngine(t, in, nil)
	feed(t, e, b)
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("parallel materialization differs from batch")
	}
}

// TestStreamOutOfOrderCerts feeds every connection before any
// certificate: enrichment initially resolves nothing, the interception
// detector parks every observation, and the late certificates invalidate
// the derived state. The drained result must still equal batch.
func TestStreamOutOfOrderCerts(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	for i := range b.Raw.Conns {
		e.IngestConn(&b.Raw.Conns[i])
	}
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("out-of-order stream analysis differs from batch")
	}
	if st := e.Stats(); st.Rebuilds == 0 {
		t.Error("late certificates should have forced a rebuild")
	}
}

// TestMidStreamMaterialization asserts a snapshot taken mid-stream is a
// consistent prefix analysis (no panic, sane counters) and that
// continuing afterwards still converges to the batch result.
func TestMidStreamMaterialization(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	half := len(b.Raw.Conns) / 2
	for i := 0; i < half; i++ {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	mid := e.Analysis()
	if mid.Preprocess.RawConns != half {
		t.Fatalf("mid-stream RawConns = %d, want %d", mid.Preprocess.RawConns, half)
	}
	if mid.CertStats.Row("Total").Total == 0 {
		t.Fatal("mid-stream analysis is empty")
	}

	for i := half; i < len(b.Raw.Conns); i++ {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("post-snapshot analysis differs from batch")
	}
}

// TestCheckpointRestoreResume kills the engine mid-stream, restores from
// the checkpoint, replays the remainder, and requires the final reports
// to be identical — deep-equal as structs and byte-identical rendered.
func TestCheckpointRestoreResume(t *testing.T) {
	b := genBuild(20240504, 1000)
	in := inputFromBuild(b)
	in.Raw = nil

	// Uninterrupted run.
	full := newEngine(t, in, nil)
	feed(t, full, b)
	full.Drain()
	want := full.Analysis()

	// Interrupted run: checkpoint after 40% of the connections.
	e := newEngine(t, in, nil)
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	cut := len(b.Raw.Conns) * 2 / 5
	for i := 0; i < cut; i++ {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	path := filepath.Join(t.TempDir(), "mtlsd.ckpt")
	cursor := map[string]int64{"conn_index": int64(cut)}
	if err := e.WriteCheckpoint(path, cursor); err != nil {
		t.Fatal(err)
	}
	e.Close() // the "kill"

	restored, gotCursor, err := Restore(Config{Input: in}, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if gotCursor["conn_index"] != int64(cut) {
		t.Fatalf("cursor = %v, want conn_index=%d", gotCursor, cut)
	}
	for i := cut; i < len(b.Raw.Conns); i++ {
		restored.IngestConn(&b.Raw.Conns[i])
	}
	restored.Drain()
	got := restored.Analysis()

	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored analysis differs from uninterrupted run")
	}
	if report.RenderAll(want) != report.RenderAll(got) {
		t.Fatal("rendered reports are not byte-identical after restore")
	}
}

// TestBackpressureDrop verifies the Drop policy sheds load without
// corrupting state, and that drops are counted.
func TestBackpressureDrop(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, func(c *Config) { c.Policy = Drop; c.Buffer = 8 })

	// Stall the apply loop by holding the state lock, then flood.
	hold := make(chan struct{})
	release := make(chan struct{})
	go e.WithPipeline(func(*core.Pipeline) { close(hold); <-release })
	<-hold
	var accepted, dropped int
	for i := range b.Raw.Conns {
		if e.IngestConn(&b.Raw.Conns[i]) {
			accepted++
		} else {
			dropped++
		}
	}
	close(release)
	e.Drain()

	if dropped == 0 {
		t.Fatal("expected drops with a stalled consumer and an 8-slot buffer")
	}
	st := e.Stats()
	if st.Dropped != uint64(dropped) {
		t.Fatalf("Stats.Dropped = %d, want %d", st.Dropped, dropped)
	}
	if st.ConnsIngested != uint64(accepted) {
		t.Fatalf("ConnsIngested = %d, want %d accepted", st.ConnsIngested, accepted)
	}
	if a := e.Analysis(); a.Preprocess.RawConns != accepted {
		t.Fatalf("RawConns = %d, want %d", a.Preprocess.RawConns, accepted)
	}
}

// TestBackpressureBlock verifies the Block policy never drops: a stalled
// consumer delays the producer, and everything lands.
func TestBackpressureBlock(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, func(c *Config) { c.Buffer = 8 })

	hold := make(chan struct{})
	release := make(chan struct{})
	go e.WithPipeline(func(*core.Pipeline) { close(hold); <-release })
	<-hold
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range b.Raw.Conns {
			e.IngestConn(&b.Raw.Conns[i])
		}
	}()
	select {
	case <-done:
		t.Fatal("producer finished against a stalled consumer with an 8-slot buffer")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-done
	e.Drain()
	if st := e.Stats(); st.Dropped != 0 || st.ConnsIngested != uint64(len(b.Raw.Conns)) {
		t.Fatalf("block policy: dropped=%d ingested=%d want 0/%d",
			st.Dropped, st.ConnsIngested, len(b.Raw.Conns))
	}
}

// TestWindowedEviction bounds connection state with a short retention and
// checks old connections leave the window while reports stay
// materializable and cumulative counters keep the full history.
func TestWindowedEviction(t *testing.T) {
	b := genBuild(20240504, 1000)
	in := inputFromBuild(b)
	in.Raw = nil
	retention := 120 * 24 * time.Hour // 4 months of a 23-month stream
	e := newEngine(t, in, func(c *Config) {
		c.Retention = retention
		c.EvictEvery = 256
	})
	feed(t, e, b)
	e.Drain()

	st := e.Stats()
	if st.Evicted == 0 {
		t.Fatal("expected evictions with a 4-month window over 23 months")
	}
	if st.Retained >= len(b.Raw.Conns) {
		t.Fatalf("retained %d of %d, expected a bounded window", st.Retained, len(b.Raw.Conns))
	}
	a := e.Analysis()
	if a.Preprocess.RawConns != len(b.Raw.Conns) {
		t.Fatalf("cumulative RawConns = %d, want %d", a.Preprocess.RawConns, len(b.Raw.Conns))
	}
	// The prevalence series must cover only the retained window (plus
	// slack for the eviction cadence), not the whole study.
	if months := len(a.Prevalence.Overall); months > 7 {
		t.Fatalf("windowed prevalence spans %d months, want <= 7", months)
	}
	// Certificates are cumulative by design.
	if a.Preprocess.RawCerts != len(b.Raw.Certs) {
		t.Fatalf("RawCerts = %d, want %d", a.Preprocess.RawCerts, len(b.Raw.Certs))
	}
}

// TestReportRegistry materializes every named report and checks the
// registry covers the full Analysis surface.
func TestReportRegistry(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	feed(t, e, b)
	e.Drain()

	names := ReportNames()
	if len(names) != 23 {
		t.Fatalf("report names = %d, want 23", len(names))
	}
	for _, name := range names {
		out, err := e.Report(name)
		if err != nil {
			t.Fatalf("Report(%q): %v", name, err)
		}
		if out == nil || reflect.ValueOf(out).IsNil() {
			t.Fatalf("Report(%q) returned nil", name)
		}
	}
	if _, err := e.Report("nope"); err == nil {
		t.Fatal("unknown report name must error")
	}
}

// TestIngestAfterClose: a closed engine rejects events instead of
// panicking, and still materializes.
func TestIngestAfterClose(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := New(Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, b)
	e.Close()
	if e.IngestConn(&b.Raw.Conns[0]) {
		t.Fatal("ingest after close must return false")
	}
	e.Drain() // must not hang
	if a := e.Analysis(); a.CertStats.Row("Total").Total == 0 {
		t.Fatal("closed engine must still materialize")
	}
}

// TestIngestRejectsInvalid checks the ingest boundary refuses events the
// apply loop could not handle sensibly — nil records, weightless
// connections, fingerprint-less certificates — and counts each refusal
// in Stats.Rejected without disturbing the ingested totals.
func TestIngestRejectsInvalid(t *testing.T) {
	b := genBuild(20240504, 500)
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := New(Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	bad := b.Raw.Conns[0]
	bad.Weight = 0
	neg := b.Raw.Conns[1]
	neg.Weight = -3
	if e.IngestConn(nil) || e.IngestConn(&bad) || e.IngestConn(&neg) {
		t.Fatal("invalid conn events must be rejected")
	}
	var c0 *certmodel.CertInfo
	for _, c := range b.Raw.Certs {
		c0 = c
		break
	}
	noCert := core.CertRecord{TS: c0.NotBefore}
	unkeyed := core.CertRecord{TS: c0.NotBefore, Cert: &certmodel.CertInfo{}}
	if e.IngestCert(nil) || e.IngestCert(&noCert) || e.IngestCert(&unkeyed) {
		t.Fatal("invalid cert events must be rejected")
	}
	if !e.IngestConn(&b.Raw.Conns[0]) || !e.IngestCert(&core.CertRecord{TS: c0.NotBefore, Cert: c0}) {
		t.Fatal("valid events must still be accepted")
	}
	e.Drain()
	st := e.Stats()
	if st.Rejected != 6 {
		t.Fatalf("Rejected = %d, want 6", st.Rejected)
	}
	if st.ConnsIngested != 1 || st.CertsIngested != 1 {
		t.Fatalf("ingested = %d conns / %d certs, want 1 / 1", st.ConnsIngested, st.CertsIngested)
	}
}

// TestLogReplayMatchesBatch round-trips the dataset through the TSV logs
// and the tailing readers — the daemon's exact ingestion path — and
// checks the drained stream still equals batch on the same logs.
func TestLogReplayMatchesBatch(t *testing.T) {
	b := genBuild(20240504, 1500)
	dir := t.TempDir()
	writeReplayLogs(t, b.Raw, dir)
	// Batch over the reloaded logs (fingerprint identity survives the
	// round trip, so this matches the daemon's view).
	reloaded := openReplayLogs(t, dir)
	bin := inputFromBuild(b)
	bin.Raw = reloaded
	batch := core.Run(bin)

	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	xt := zeek.NewX509Tail(filepath.Join(dir, "x509.log"))
	st := zeek.NewSSLTail(filepath.Join(dir, "ssl.log"))
	certs, err := xt.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range certs {
		e.IngestCert(&certs[i])
	}
	conns, err := st.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range conns {
		e.IngestConn(&conns[i])
	}
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("log-replayed stream analysis differs from batch over the same logs")
	}
}
