package stream

import (
	"repro/internal/metrics"
)

// engineMetrics is the engine's instrumentation: counters for the event
// flow, histograms for the costs that dominate a long-running monitor
// (queue latency, rebuild and materialization duration, eviction sweeps,
// checkpoint writes), and gauges for current occupancy. Registered into
// Config.Metrics; when the caller passes no registry a private one is
// created so every call site stays unconditional.
type engineMetrics struct {
	connsIngested *metrics.Counter
	certsIngested *metrics.Counter
	dropped       *metrics.Counter
	rejected      *metrics.Counter
	evicted       *metrics.Counter
	rebuilds      *metrics.Counter
	checkpoints   *metrics.Counter
	compactions   *metrics.Counter

	applyLatency   *metrics.Histogram // enqueue -> apply
	rebuildDur     *metrics.Histogram
	materializeDur *metrics.Histogram
	evictDur       *metrics.Histogram
	checkpointDur  *metrics.Histogram
	compactDur     *metrics.Histogram

	retained        *metrics.Gauge
	checkpointBytes *metrics.Gauge
	checkpointSegs  *metrics.Gauge
}

// newEngineMetrics registers the engine's series. The occupancy gauges
// read channel length/capacity through callbacks — safe without the
// engine lock because channel len is internally synchronized. When the
// engine is a shard, cfg.metricLabels tags every series (shard="i") so
// one registry holds distinguishable per-shard series.
func newEngineMetrics(r *metrics.Registry, e *Engine) *engineMetrics {
	if r == nil {
		r = metrics.New()
	}
	lbl := e.cfg.metricLabels
	m := &engineMetrics{
		connsIngested: r.Counter("stream_conns_ingested_total", "connection events applied", lbl...),
		certsIngested: r.Counter("stream_certs_ingested_total", "certificate events applied (incl. duplicates)", lbl...),
		dropped:       r.Counter("stream_events_dropped_total", "events shed under Policy Drop", lbl...),
		rejected:      r.Counter("stream_events_rejected_total", "invalid events refused at the ingest boundary", lbl...),
		evicted:       r.Counter("stream_conns_evicted_total", "connections dropped by the retention window", lbl...),
		rebuilds:      r.Counter("stream_rebuilds_total", "derived-state rebuilds (retroactive evidence)", lbl...),
		checkpoints:   r.Counter("stream_checkpoints_total", "checkpoints written", lbl...),
		compactions:   r.Counter("stream_checkpoint_compactions_total", "checkpoint segment compactions", lbl...),

		applyLatency:   r.Histogram("stream_apply_latency_seconds", "ingest enqueue to apply latency", nil, lbl...),
		rebuildDur:     r.Histogram("stream_rebuild_seconds", "derived-state rebuild duration", nil, lbl...),
		materializeDur: r.Histogram("stream_materialize_seconds", "report materialization duration (incl. any rebuild)", nil, lbl...),
		evictDur:       r.Histogram("stream_evict_seconds", "retention eviction sweep duration", nil, lbl...),
		checkpointDur:  r.Histogram("stream_checkpoint_seconds", "checkpoint serialization+rename duration", nil, lbl...),
		compactDur:     r.Histogram("stream_compact_seconds", "checkpoint compaction duration", nil, lbl...),

		retained:        r.Gauge("stream_conns_retained", "connections currently in the window", lbl...),
		checkpointBytes: r.Gauge("stream_checkpoint_bytes", "bytes written by the last checkpoint (delta, not total state)", lbl...),
		checkpointSegs:  r.Gauge("stream_checkpoint_segments", "segments in the committed checkpoint manifest", lbl...),
	}
	r.GaugeFunc("stream_buffer_occupancy", "events waiting in the ingest buffer",
		func() float64 { return float64(len(e.ch)) }, lbl...)
	r.Gauge("stream_buffer_capacity", "ingest buffer capacity", lbl...).Set(float64(cap(e.ch)))

	// Store tier occupancy: the callbacks read atomics the store
	// maintains, so no engine lock is needed. All-zero for the memory
	// store except the hot-tier counts.
	ts := e.st.Stats()
	r.GaugeFunc("stream_store_hot_conns", "retained connections in the hot (RAM) tier", func() float64 { return float64(ts.HotConns.Load()) }, lbl...)
	r.GaugeFunc("stream_store_cold_conns", "retained connections spilled to disk", func() float64 { return float64(ts.ColdConns.Load()) }, lbl...)
	r.GaugeFunc("stream_store_hot_certs", "roster certificates in the hot (RAM) tier", func() float64 { return float64(ts.HotCerts.Load()) }, lbl...)
	r.GaugeFunc("stream_store_cold_certs", "roster certificates spilled to disk", func() float64 { return float64(ts.ColdCerts.Load()) }, lbl...)
	r.GaugeFunc("stream_store_hot_bytes", "estimated bytes of hot-tier records", func() float64 { return float64(ts.HotBytes.Load()) }, lbl...)
	r.GaugeFunc("stream_store_spilled_total", "records spilled to the cold tier", func() float64 { return float64(ts.Spills.Load()) }, lbl...)
	r.GaugeFunc("stream_store_loaded_total", "records faulted back from the cold tier", func() float64 { return float64(ts.Loads.Load()) }, lbl...)
	return m
}
