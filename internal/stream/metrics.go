package stream

import (
	"repro/internal/metrics"
)

// engineMetrics is the engine's instrumentation: counters for the event
// flow, histograms for the costs that dominate a long-running monitor
// (queue latency, rebuild and materialization duration, eviction sweeps,
// checkpoint writes), and gauges for current occupancy. Registered into
// Config.Metrics; when the caller passes no registry a private one is
// created so every call site stays unconditional.
type engineMetrics struct {
	connsIngested *metrics.Counter
	certsIngested *metrics.Counter
	dropped       *metrics.Counter
	rejected      *metrics.Counter
	evicted       *metrics.Counter
	rebuilds      *metrics.Counter
	checkpoints   *metrics.Counter

	applyLatency   *metrics.Histogram // enqueue -> apply
	rebuildDur     *metrics.Histogram
	materializeDur *metrics.Histogram
	evictDur       *metrics.Histogram
	checkpointDur  *metrics.Histogram

	retained        *metrics.Gauge
	checkpointBytes *metrics.Gauge
}

// newEngineMetrics registers the engine's series. The occupancy gauges
// read channel length/capacity through callbacks — safe without the
// engine lock because channel len is internally synchronized.
func newEngineMetrics(r *metrics.Registry, e *Engine) *engineMetrics {
	if r == nil {
		r = metrics.New()
	}
	m := &engineMetrics{
		connsIngested: r.Counter("stream_conns_ingested_total", "connection events applied"),
		certsIngested: r.Counter("stream_certs_ingested_total", "certificate events applied (incl. duplicates)"),
		dropped:       r.Counter("stream_events_dropped_total", "events shed under Policy Drop"),
		rejected:      r.Counter("stream_events_rejected_total", "invalid events refused at the ingest boundary"),
		evicted:       r.Counter("stream_conns_evicted_total", "connections dropped by the retention window"),
		rebuilds:      r.Counter("stream_rebuilds_total", "derived-state rebuilds (retroactive evidence)"),
		checkpoints:   r.Counter("stream_checkpoints_total", "checkpoints written"),

		applyLatency:   r.Histogram("stream_apply_latency_seconds", "ingest enqueue to apply latency", nil),
		rebuildDur:     r.Histogram("stream_rebuild_seconds", "derived-state rebuild duration", nil),
		materializeDur: r.Histogram("stream_materialize_seconds", "report materialization duration (incl. any rebuild)", nil),
		evictDur:       r.Histogram("stream_evict_seconds", "retention eviction sweep duration", nil),
		checkpointDur:  r.Histogram("stream_checkpoint_seconds", "checkpoint serialization+rename duration", nil),

		retained:        r.Gauge("stream_conns_retained", "connections currently in the window"),
		checkpointBytes: r.Gauge("stream_checkpoint_bytes", "size of the last checkpoint written"),
	}
	r.GaugeFunc("stream_buffer_occupancy", "events waiting in the ingest buffer",
		func() float64 { return float64(len(e.ch)) })
	r.Gauge("stream_buffer_capacity", "ingest buffer capacity").Set(float64(cap(e.ch)))
	return m
}
