package stream

import (
	"slices"
	"sync"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
)

// batch is a pooled group of events traveling the ingest channel as one
// entry: certificates first, then connections, applied in that order (a
// connection routed behind its forwarded leaf certificate must resolve
// the chain exactly as it would have on the per-event path).
//
// Ownership: IngestConnBatch/IngestCertBatch copy the caller's records
// into a pooled batch, so the caller may reuse its slice (and the
// records' backing storage it owns) immediately. The apply loop copies
// connection records into the engine's retained window and recycles the
// batch — the engine copies-on-retain, never aliasing pooled memory.
// Certificate pointers are shared, not copied: the roster retains the
// *certmodel.CertInfo itself, exactly as the per-event path does.
type batch struct {
	certs []*certmodel.CertInfo
	conns []core.ConnRecord
	// seqs aligns with conns (global ingest sequences) when the engine
	// tracks them for the sharded merge; nil otherwise.
	seqs []uint64
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

func newBatch() *batch { return batchPool.Get().(*batch) }

// recycle clears the batch (dropping references so pooled memory cannot
// pin records or certificates) and returns it to the pool.
func (b *batch) recycle() {
	clear(b.certs)
	clear(b.conns)
	b.certs = b.certs[:0]
	b.conns = b.conns[:0]
	b.seqs = b.seqs[:0]
	batchPool.Put(b)
}

// IngestConnBatch feeds a slice of connection events in one channel
// operation, amortizing the per-event channel hop and allocation of
// IngestConn. Records are copied; the caller may reuse recs and its
// elements. Invalid records (weight below 1) are rejected individually
// and counted in Stats.Rejected. Returns how many events were accepted —
// 0 when the engine is closed or a full buffer shed the whole batch
// under Policy Drop (batches are shed atomically, counted per event in
// Stats.Dropped).
func (e *Engine) IngestConnBatch(recs []core.ConnRecord) int {
	if len(recs) == 0 {
		return 0
	}
	b := newBatch()
	b.conns = slices.Grow(b.conns, len(recs))
	for i := range recs {
		if recs[i].Weight < 1 {
			e.rejected.Add(1)
			e.m.rejected.Inc()
			continue
		}
		b.conns = append(b.conns, recs[i])
	}
	n := len(b.conns)
	if n == 0 {
		b.recycle()
		return 0
	}
	if !e.sendBatch(b) {
		b.recycle()
		return 0
	}
	return n
}

// IngestCertBatch feeds a slice of certificate events in one channel
// operation. Validation matches IngestCert (nil certificates and empty
// fingerprints are rejected individually); accepted certificates are
// shared with the engine's roster by pointer, exactly as IngestCert
// shares them. Returns how many events were accepted.
func (e *Engine) IngestCertBatch(recs []core.CertRecord) int {
	if len(recs) == 0 {
		return 0
	}
	b := newBatch()
	b.certs = slices.Grow(b.certs, len(recs))
	for i := range recs {
		if recs[i].Cert == nil || recs[i].Cert.Fingerprint == "" {
			e.rejected.Add(1)
			e.m.rejected.Inc()
			continue
		}
		b.certs = append(b.certs, recs[i].Cert)
	}
	n := len(b.certs)
	if n == 0 {
		b.recycle()
		return 0
	}
	if !e.sendBatch(b) {
		b.recycle()
		return 0
	}
	return n
}

// sendBatch delivers b as one channel operation. Under Policy Drop a
// full buffer sheds the whole batch, counting every carried event in
// Stats.Dropped. Returns false (without recycling b — the caller may
// still need its contents to undo routing state) when the batch was
// shed or the engine is closed.
func (e *Engine) sendBatch(b *batch) bool {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.closed {
		return false
	}
	ev := event{batch: b, enq: time.Now()}
	if e.cfg.Policy == Block {
		e.ch <- ev
		return true
	}
	select {
	case e.ch <- ev:
		return true
	default:
		n := uint64(len(b.certs) + len(b.conns))
		e.dropped.Add(n)
		e.m.dropped.Add(n)
		return false
	}
}

// applyBatchLocked applies one pooled batch — certificates first, then
// connections — growing the retained window once, and recycles it.
func (e *Engine) applyBatchLocked(b *batch) {
	for _, c := range b.certs {
		e.applyCertLocked(c)
	}
	if len(b.conns) > 0 {
		// The retained window is multi-megabyte at steady state; append's
		// 1.25× growth regime there costs ~4× the final size in copy churn
		// (half the benchmark's allocated bytes before this). The store
		// at-least-doubles instead.
		e.st.GrowConns(len(b.conns))
		e.b.GrowConns(len(b.conns))
		for i := range b.conns {
			var seq uint64
			if len(b.seqs) == len(b.conns) {
				seq = b.seqs[i]
			}
			e.applyConnLocked(&b.conns[i], seq)
		}
	}
	b.recycle()
}

// IngestConnBatch partitions the batch by home shard under one router
// lock acquisition and delivers each shard's slice (any forwarded leaf
// certificates first, then its connections, in arrival order) over one
// channel operation — the per-event router pays a lock and a channel hop
// per record, which is exactly the overhead that made shards>1 slower
// than shards=1 on one core. Semantics per record match IngestConn.
// Returns how many events were accepted.
func (s *Sharded) IngestConnBatch(recs []core.ConnRecord) int {
	if len(recs) == 0 {
		return 0
	}
	if s.single != nil {
		return s.single.IngestConnBatch(recs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scratch == nil {
		s.scratch = make([]*batch, len(s.shards))
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Weight < 1 {
			s.rejected.Add(1)
			s.m.rejected.Inc()
			continue
		}
		h := s.home(string(rec.UID))
		bit := uint64(1) << h
		b := s.scratch[h]
		if b == nil {
			b = newBatch()
			s.scratch[h] = b
		}
		for _, fp := range [2]ids.Fingerprint{rec.ServerLeaf(), rec.ClientLeaf()} {
			if fp == "" {
				continue
			}
			ent := s.rv[fp]
			if ent == nil {
				ent = &rendezvous{}
				s.rv[fp] = ent
			}
			if ent.cert == nil {
				ent.waiting |= bit
				continue
			}
			if ent.delivered&bit == 0 {
				// Delivery is marked optimistically; flushShardLocked
				// unmarks it if the shard sheds the batch.
				b.certs = append(b.certs, ent.cert)
				ent.delivered |= bit
			}
		}
		seq := s.nextSeq
		s.nextSeq++
		b.conns = append(b.conns, *rec)
		b.seqs = append(b.seqs, seq)
	}
	return s.flushScratchLocked()
}

// IngestCertBatch routes a batch of certificates through the rendezvous
// under one router lock acquisition, delivering per-shard certificate
// slices over one channel operation each. Semantics per record match
// IngestCert. Returns how many records were admitted into the
// rendezvous (shed deliveries are retried by later references, as on
// the per-event path).
func (s *Sharded) IngestCertBatch(recs []core.CertRecord) int {
	if len(recs) == 0 {
		return 0
	}
	if s.single != nil {
		return s.single.IngestCertBatch(recs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scratch == nil {
		s.scratch = make([]*batch, len(s.shards))
	}
	admitted := 0
	for i := range recs {
		rec := &recs[i]
		if rec.Cert == nil || rec.Cert.Fingerprint == "" {
			s.rejected.Add(1)
			s.m.rejected.Inc()
			continue
		}
		s.certsRouted++
		admitted++
		fp := rec.Cert.Fingerprint
		ent := s.rv[fp]
		if ent == nil {
			ent = &rendezvous{}
			s.rv[fp] = ent
		}
		if ent.cert == nil {
			ent.cert = rec.Cert
			ent.seq = s.nextSeq
			s.nextSeq++
			s.uniqueCerts++
			ent.waiting |= uint64(1) << s.home(string(fp))
		}
		for sh := range s.shards {
			bit := uint64(1) << sh
			if ent.waiting&bit == 0 || ent.delivered&bit != 0 {
				continue
			}
			b := s.scratch[sh]
			if b == nil {
				b = newBatch()
				s.scratch[sh] = b
			}
			b.certs = append(b.certs, ent.cert)
			ent.delivered |= bit
		}
	}
	s.flushScratchLocked()
	return admitted
}

// flushScratchLocked sends every accumulated per-shard batch and resets
// the scratch table. A shard that sheds its batch (Policy Drop, full
// buffer) gets its optimistic rendezvous delivery marks rolled back so a
// later reference re-forwards the certificates. Returns the number of
// connection events accepted across shards.
func (s *Sharded) flushScratchLocked() int {
	accepted := 0
	for h, b := range s.scratch {
		if b == nil {
			continue
		}
		s.scratch[h] = nil
		// Counts are captured before the send: on success the apply loop
		// owns (and recycles) the batch.
		nConns, nCerts := len(b.conns), len(b.certs)
		if s.shards[h].sendBatch(b) {
			accepted += nConns
			s.m.fanout.Add(uint64(nCerts))
			continue
		}
		bit := uint64(1) << h
		for _, c := range b.certs {
			if ent := s.rv[c.Fingerprint]; ent != nil {
				ent.delivered &^= bit
			}
		}
		b.recycle()
	}
	return accepted
}
