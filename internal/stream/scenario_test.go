package stream

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// genSpecBuild compiles a three-cohort scenario spec — IoT fleet,
// interception middlebox, rotation grid — at the given scale.
func genSpecBuild(t *testing.T, scale int) *workload.Build {
	t.Helper()
	spec, err := scenario.NewBuilder().
		Seed(7).
		AggregateRate(2_000_000).
		Cohort("fleet", "iot-shared-cert", 0.5,
			scenario.Arrival("constant"), scenario.Lifecycle("diurnal")).
		Cohort("acme", "enterprise-middlebox", 0.3,
			scenario.Lifecycle("spike"), scenario.Window(2, 12)).
		Cohort("grid", "rotation-wave", 0.2,
			scenario.Arrival("bursty"), scenario.Lifecycle("drain"),
			scenario.Fingerprint("chrome")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Default()
	cfg.CertScale = scale
	b, err := workload.FromSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamMatchesBatchSpec extends the stream-equals-batch contract
// to spec-compiled cohorts: fingerprint columns, shared device certs,
// and the middlebox interception pattern must all survive incremental
// ingestion and drain to the same Analysis the batch pipeline computes.
func TestStreamMatchesBatchSpec(t *testing.T) {
	for _, scale := range []int{2000, 1200} {
		b := genSpecBuild(t, scale)
		batch := core.Run(inputFromBuild(b))

		in := inputFromBuild(b)
		in.Raw = nil
		e := newEngine(t, in, nil)
		feed(t, e, b)
		e.Drain()
		got := e.Analysis()

		if !reflect.DeepEqual(batch, got) {
			t.Errorf("scale=%d: spec-compiled stream analysis differs from batch", scale)
		}
		if batch.Fingerprints == nil || len(batch.Fingerprints.Rows) == 0 {
			t.Errorf("scale=%d: spec-compiled batch analysis has no fingerprint rows", scale)
		}
		if st := e.Stats(); st.Dropped != 0 {
			t.Errorf("scale=%d: unexpected drops: %d", scale, st.Dropped)
		}
	}
}

// TestStreamSpecParallelMaterialize: the same contract with sharded
// materialization workers.
func TestStreamSpecParallelMaterialize(t *testing.T) {
	b := genSpecBuild(t, 2000)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	in.Workers = 4
	e := newEngine(t, in, nil)
	feed(t, e, b)
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("parallel spec-compiled materialization differs from batch")
	}
}
