// Package stream is the incremental analysis engine: it consumes
// core.ConnRecord / core.CertRecord events one at a time — as a border
// tap or log tailer produces them — and keeps the enriched joint
// SSL×X509 state of the paper's pipeline current, so any table or figure
// can be materialized at any point mid-stream. cmd/mtlsd wraps it in a
// long-running daemon.
//
// # Equivalence contract
//
// Feeding a finite dataset through the engine (certificates and
// connections in any interleaving, connections in dataset order) and
// draining it produces an Analysis deeply equal to mtls.Analyze on the
// same input. The engine shares the batch pipeline's implementation
// rather than reimplementing it: enrichment goes through core.Builder
// (the same enricher the serial batch path runs) and interception
// filtering through interception.Stream (which Detector.Run itself wraps).
//
// # Retroactive evidence and rebuilds
//
// Two kinds of evidence arrive late in a stream and invalidate earlier
// conclusions, both impossible in batch where all data is present up
// front: a certificate can arrive after connections that referenced it
// (their enrichment resolved the chain to nil), and an issuer can be
// confirmed as TLS interception after its certificates were already
// admitted (§3.2 excludes them retroactively). The engine detects both —
// a generation counter on the exclusion set, a missing-reference set for
// late certificates — and marks the derived state dirty; the next
// materialization rebuilds it from the retained raw records through the
// same Builder path. Rebuilds are counted in Stats. Between rebuilds
// (the steady state once the certificate roster has settled) ingestion
// is purely incremental.
//
// # Bounded memory
//
// Connection state is the unbounded dimension of a long-running monitor;
// Config.Retention bounds it with a sliding time window over connection
// timestamps. Eviction drops raw connections older than the watermark
// minus the retention and rebuilds derived state on the next
// materialization, so reports then describe the retained window. The
// certificate roster and the interception detector are cumulative by
// design: certificates are the deduplicated entity the paper counts, and
// evicted connections must still count toward issuer confirmation.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/metrics"
	"repro/internal/psl"
	"repro/internal/store"
)

// Policy selects what Ingest does when the bounded buffer is full.
type Policy int

const (
	// Block applies backpressure: Ingest waits for buffer space. This is
	// the lossless default — right when the producer is a log tailer that
	// can simply fall behind.
	Block Policy = iota
	// Drop sheds load: Ingest discards the event, counts it in
	// Stats.Dropped, and returns false. Right when the producer is a live
	// tap that must never stall the capture path.
	Drop
)

// Config configures an Engine.
type Config struct {
	// Input is the analysis context (trust bundle, CT log, association
	// map, netsim plan, months, workers). Input.Raw is ignored — the
	// engine accumulates its own dataset from the ingested events.
	Input *core.Input
	// Buffer is the ingest channel capacity (default 1024).
	Buffer int
	// Policy is the full-buffer behavior (default Block).
	Policy Policy
	// Retention bounds connection state to a sliding window of this
	// length behind the newest connection timestamp. 0 retains
	// everything (required for batch equivalence).
	Retention time.Duration
	// EvictEvery is how many connection events elapse between eviction
	// sweeps when Retention is set (default 1024).
	EvictEvery int
	// Metrics receives the engine's operational series (ingest counters,
	// queue latency, rebuild/materialize/evict durations, buffer
	// occupancy). Nil disables exposition; the engine still instruments
	// into a private registry so call sites stay unconditional.
	Metrics *metrics.Registry

	// Store selects the state layer: "" or "memory" keeps all retained
	// state in RAM (the default, byte-identical to the historical
	// engine), "disk" tiers it — a hot working set in RAM under
	// HotBytes, the cold remainder spilled to segment files under
	// StoreDir — so total retained state can exceed RAM. A tiered
	// engine trades materialization cost for bounded ingest RSS: every
	// report rebuilds derived state from the store (the in-memory
	// incremental path would pin records the store wants to spill).
	Store string
	// StoreDir is the disk store's scratch directory (required when
	// Store is "disk"; recreated on start — durability is the
	// checkpoint's job, not the store's).
	StoreDir string
	// HotBytes bounds the disk store's in-RAM hot set (estimated
	// record bytes; default store.DefaultHotBytes).
	HotBytes int64

	// TrackExport makes the engine assign a global ingest sequence to
	// every applied connection and first-observed certificate, enabling
	// Export — the cursor-addressable snapshot a sensor serves to an
	// aggregator. Sequences live in one number space (certificates and
	// connections interleave), so a single cursor covers both. Off by
	// default: the bookkeeping is one map insert per unique certificate
	// and one counter increment per connection.
	TrackExport bool

	// trackSeqs makes the engine record each connection's global ingest
	// sequence alongside the retained record, so a sharded deployment can
	// k-way merge shard-local streams back into the single-stream order.
	// Set by NewSharded; sequences arrive via ingestConnSeq.
	trackSeqs bool
	// metricLabels are alternating key/value pairs appended to every
	// stream_* series this engine registers (e.g. "shard", "3"), so the
	// shards of one deployment expose distinguishable series in one
	// registry.
	metricLabels []string
}

// Stats is the engine's operational counters, served by mtlsd /stats.
type Stats struct {
	ConnsIngested uint64 // connection events applied
	CertsIngested uint64 // certificate events applied (incl. duplicates)
	Dropped       uint64 // events shed under Policy Drop
	Rejected      uint64 // invalid events refused at the ingest boundary
	Retained      int    // connections currently in the window
	Evicted       uint64 // connections dropped by retention
	Rebuilds      uint64 // derived-state rebuilds (retroactive evidence)
	Dirty         bool   // derived state awaiting rebuild

	UniqueCerts         int // certificate roster size
	ExcludedCerts       int // §3.2 interception exclusions so far
	InterceptionIssuers int // confirmed interception issuers so far
	PendingCerts        int // conns parked awaiting their leaf certificate

	Watermark      time.Time // newest connection timestamp seen
	LastCheckpoint time.Time // zero until the first checkpoint
	CheckpointAge  float64   // seconds since LastCheckpoint (0 if none)
}

// event is one ingest-queue entry: a connection, a certificate, or a
// flush barrier. enq stamps when the producer enqueued it, so the apply
// loop can observe queue latency.
type event struct {
	conn  *core.ConnRecord
	cert  *certmodel.CertInfo
	batch *batch
	flush chan struct{}
	enq   time.Time
	// seq is the connection's global ingest sequence, meaningful only
	// when Config.trackSeqs is set (the sharded router stamps it).
	seq uint64
}

// Engine is the incremental analysis engine. Create with New, feed with
// IngestConn/IngestCert, materialize with Analysis or Report.
type Engine struct {
	cfg  Config
	det  *interception.Detector
	ch   chan event
	done chan struct{}

	sendMu   sync.RWMutex // guards closed + ch against Close
	closed   bool
	dropped  atomic.Uint64
	rejected atomic.Uint64

	m *engineMetrics

	mu sync.Mutex // guards all state below

	// stateVer counts report-visible state changes (roster growth,
	// connection applies, evictions, restores). The sharded merge cache
	// reads it without the state lock to decide whether its materialized
	// view is still current; written only under mu.
	stateVer atomic.Uint64

	// Raw state — ground truth, never invalidated — lives in the store:
	// the certificate roster and the retained connection window (with
	// aligned ingest sequences when the engine tracks them). tiered
	// caches st.Tiered(): when set, derived state is never maintained
	// incrementally (the builder would pin records the store spills) and
	// every materialization rebuilds from the store.
	st     store.Store
	tiered bool
	icpt   *interception.Stream

	// Export-cursor state, meaningful only under cfg.TrackExport: the
	// next sequence to assign, the per-fingerprint admission sequence,
	// and the epoch that scopes cursors to this sequence numbering (a
	// fresh engine gets a fresh epoch, so a cursor taken against a
	// predecessor is detectably stale rather than silently wrong).
	nextSeq  uint64
	certSeqs map[ids.Fingerprint]uint64
	epoch    uint64

	// Derived state — the batch pipeline's enriched views, kept current
	// incrementally; rebuilt from raw state when dirty.
	b *core.Builder
	// bGen is the exclusion-set generation the derived state reflects.
	bGen uint64
	// missing tracks leaf fingerprints that an enriched connection failed
	// to resolve; the fingerprint arriving later invalidates that
	// enrichment.
	missing map[ids.Fingerprint]bool
	dirty   bool

	connsIngested uint64
	certsIngested uint64
	evicted       uint64
	rebuilds      uint64
	sinceEvict    int
	watermark     time.Time
	lastCkpt      time.Time

	// Incremental-checkpoint bookkeeping (still under mu): slots below
	// ckptMark are covered by committed segments; ckptNewCerts lists
	// roster fingerprints admitted since the last commit (append-only —
	// a commit truncates the prefix it serialized); ckptCutoff is the
	// latest eviction cutoff applied, which a delta records so restore
	// can replay the eviction against earlier segments.
	ckptMark     uint64
	ckptNewCerts []ids.Fingerprint
	ckptCutoff   time.Time

	// ckptMu serializes checkpoint-directory writers (delta commits and
	// the compactor) and guards the cached manifest. Lock order: ckptMu
	// before mu — writers take ckptMu, then mu briefly for the state
	// snapshot; nothing acquires ckptMu while holding mu.
	ckptMu     sync.Mutex
	ckptDir    string
	ckptMan    *ckptManifest
	compacting atomic.Bool
	compactWG  sync.WaitGroup
}

// New starts an engine. Call Close to stop it.
func New(cfg Config) (*Engine, error) {
	if cfg.Input == nil {
		return nil, fmt.Errorf("stream: Config.Input is required")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.EvictEvery <= 0 {
		cfg.EvictEvery = 1024
	}
	st, err := store.Open(cfg.Store, cfg.StoreDir, cfg.HotBytes, cfg.trackSeqs || cfg.TrackExport)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	e := &Engine{
		cfg:    cfg,
		ch:     make(chan event, cfg.Buffer),
		done:   make(chan struct{}),
		st:     st,
		tiered: st.Tiered(),
	}
	if cfg.TrackExport {
		e.certSeqs = make(map[ids.Fingerprint]uint64)
		e.epoch = newEpoch()
	}
	// The detector must match the batch preprocess exactly (core uses
	// MinDomains 2 over the default PSL).
	e.det = &interception.Detector{
		Bundle: cfg.Input.Bundle, CT: cfg.Input.CT, PSL: psl.Default(), MinDomains: 2,
	}
	e.icpt = e.det.NewStream(e.lookupCert)
	e.m = newEngineMetrics(cfg.Metrics, e)
	e.resetBuilderLocked()
	go e.run()
	return e, nil
}

// lookupCert is the detector's certificate source: the raw roster (may
// fault a cold certificate back into the hot tier on a tiered store).
func (e *Engine) lookupCert(fp ids.Fingerprint) *certmodel.CertInfo { return e.st.Cert(fp) }

// seqTracked reports whether the retained connections carry aligned
// sequence stamps (router-assigned or self-assigned for export).
func (e *Engine) seqTracked() bool { return e.cfg.trackSeqs || e.cfg.TrackExport }

// resetBuilderLocked replaces the derived state with an empty Builder.
// A tiered engine comes out of the reset dirty: its derived state is
// only ever valid transiently (rebuilt per materialization, released
// afterwards), never maintained incrementally.
func (e *Engine) resetBuilderLocked() {
	e.b = core.NewBuilder(e.cfg.Input)
	e.missing = make(map[ids.Fingerprint]bool)
	e.bGen = e.icpt.Gen()
	e.dirty = e.tiered
}

// IngestConn feeds one connection event. The record is copied; the
// caller may reuse it. Returns false when the event was rejected as
// invalid, dropped (Policy Drop with a full buffer), or the engine is
// closed.
//
// A nil record or a weight below 1 is rejected up front (counted in
// Stats.Rejected): the parsers guarantee weight >= 1, but the engine is
// also fed by taps and tests, and a zero/negative weight would silently
// corrupt every weighted percentage the reports derive.
func (e *Engine) IngestConn(rec *core.ConnRecord) bool {
	if rec == nil || rec.Weight < 1 {
		e.rejected.Add(1)
		e.m.rejected.Inc()
		return false
	}
	c := *rec
	return e.send(event{conn: &c, enq: time.Now()}, e.cfg.Policy == Block)
}

// IngestCert feeds one certificate event. A nil record, a nil
// certificate, or an empty fingerprint is rejected (counted in
// Stats.Rejected) — an unkeyed certificate could never be resolved from
// a chain and would only poison the roster.
func (e *Engine) IngestCert(rec *core.CertRecord) bool {
	if rec == nil || rec.Cert == nil || rec.Cert.Fingerprint == "" {
		e.rejected.Add(1)
		e.m.rejected.Inc()
		return false
	}
	return e.send(event{cert: rec.Cert, enq: time.Now()}, e.cfg.Policy == Block)
}

// ingestConnSeq is IngestConn for the sharded router: rec is already
// validated and owned by the engine (no defensive copy), and seq is the
// global ingest sequence the router assigned.
func (e *Engine) ingestConnSeq(rec *core.ConnRecord, seq uint64) bool {
	return e.send(event{conn: rec, seq: seq, enq: time.Now()}, e.cfg.Policy == Block)
}

// ingestCertPtr is IngestCert for the sharded router: the certificate is
// already validated and shared (the roster stores the pointer either way).
func (e *Engine) ingestCertPtr(c *certmodel.CertInfo) bool {
	return e.send(event{cert: c, enq: time.Now()}, e.cfg.Policy == Block)
}

func (e *Engine) send(ev event, block bool) bool {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.closed {
		return false
	}
	if block {
		e.ch <- ev
		return true
	}
	select {
	case e.ch <- ev:
		return true
	default:
		e.dropped.Add(1)
		e.m.dropped.Inc()
		return false
	}
}

// Drain blocks until every event ingested before the call has been
// applied. It is never dropped, regardless of policy.
func (e *Engine) Drain() {
	done := make(chan struct{})
	if !e.send(event{flush: done}, true) {
		return
	}
	<-done
}

// Close drains the queue, stops the apply loop, and makes further
// ingests return false. Materialization remains available.
func (e *Engine) Close() {
	e.sendMu.Lock()
	if e.closed {
		e.sendMu.Unlock()
		return
	}
	e.closed = true
	close(e.ch)
	e.sendMu.Unlock()
	<-e.done
}

// run is the single apply goroutine. It batches queued events under one
// lock acquisition to keep lock churn off the hot path.
func (e *Engine) run() {
	defer close(e.done)
	for ev := range e.ch {
		e.mu.Lock()
		e.applyLocked(ev)
	drain:
		for i := 0; i < 256; i++ {
			select {
			case next, ok := <-e.ch:
				if !ok {
					e.mu.Unlock()
					return
				}
				e.applyLocked(next)
			default:
				break drain
			}
		}
		e.mu.Unlock()
	}
}

func (e *Engine) applyLocked(ev event) {
	switch {
	case ev.flush != nil:
		close(ev.flush)
	case ev.batch != nil:
		e.m.applyLatency.Since(ev.enq)
		e.applyBatchLocked(ev.batch)
	case ev.cert != nil:
		e.m.applyLatency.Since(ev.enq)
		e.applyCertLocked(ev.cert)
	case ev.conn != nil:
		e.m.applyLatency.Since(ev.enq)
		e.applyConnLocked(ev.conn, ev.seq)
	}
}

// applyCertLocked admits one certificate: first observation of a
// fingerprint joins the roster (as zeek.Dataset.AddCert would), wakes any
// parked detector observations, and — unless it arrived too late or is
// excluded — becomes resolvable for future enrichment.
func (e *Engine) applyCertLocked(c *certmodel.CertInfo) {
	e.certsIngested++
	e.m.certsIngested.Inc()
	if !e.st.PutCert(c) {
		return // first observation wins
	}
	e.stateVer.Add(1)
	e.ckptNewCerts = append(e.ckptNewCerts, c.Fingerprint)
	if e.cfg.TrackExport {
		e.certSeqs[c.Fingerprint] = e.nextSeq
		e.nextSeq++
	}
	e.icpt.ObserveCert(c)
	if e.icpt.Gen() != e.bGen {
		e.dirty = true
	}
	if e.dirty {
		return
	}
	if e.missing[c.Fingerprint] {
		// An already-enriched connection resolved this fingerprint to
		// nil; the batch pipeline would have resolved it.
		e.dirty = true
		return
	}
	if !e.icpt.Excluded(c.Fingerprint) {
		e.b.AddCert(c)
	}
}

// applyConnLocked admits one connection: it is retained raw (the window
// the derived state can always be rebuilt from), observed by the
// interception detector, and — when the derived state is clean and the
// connection survives the §3.2 filter — enriched immediately.
func (e *Engine) applyConnLocked(rec *core.ConnRecord, seq uint64) {
	e.connsIngested++
	e.m.connsIngested.Inc()
	e.stateVer.Add(1)
	if rec.TS.After(e.watermark) {
		e.watermark = rec.TS
	}
	if e.cfg.TrackExport {
		seq = e.nextSeq
		e.nextSeq++
	}
	stored := e.st.AppendConn(rec, seq)

	e.icpt.Observe(stored)
	if e.icpt.Gen() != e.bGen {
		e.dirty = true
	}
	if !e.dirty {
		if sl := stored.ServerLeaf(); sl != "" && e.icpt.Excluded(sl) {
			// Filtered out, as interception.Filter drops it in batch.
		} else {
			e.noteMissingLocked(stored)
			e.b.AddConn(stored)
		}
	}

	if e.cfg.Retention > 0 {
		e.sinceEvict++
		if e.sinceEvict >= e.cfg.EvictEvery {
			e.sinceEvict = 0
			e.evictLocked()
		}
	}
	e.m.retained.Set(float64(e.st.ConnCount()))
}

// noteMissingLocked records leaf fingerprints this connection will fail
// to resolve, so their late arrival invalidates the enrichment.
func (e *Engine) noteMissingLocked(rec *core.ConnRecord) {
	if fp := rec.ServerLeaf(); fp != "" && !e.st.HasCert(fp) {
		e.missing[fp] = true
	}
	if fp := rec.ClientLeaf(); fp != "" && !e.st.HasCert(fp) {
		e.missing[fp] = true
	}
}

// evictLocked drops connections that fell out of the retention window.
// The store allocates fresh backing arrays because enriched views hold
// pointers into the old ones. The cutoff is remembered so the next
// checkpoint delta can replay the eviction on restore.
func (e *Engine) evictLocked() {
	defer e.m.evictDur.Since(time.Now())
	cutoff := e.watermark.Add(-e.cfg.Retention)
	dropped := uint64(e.st.EvictBefore(cutoff))
	if dropped == 0 {
		return
	}
	if cutoff.After(e.ckptCutoff) {
		e.ckptCutoff = cutoff
	}
	e.evicted += dropped
	e.m.evicted.Add(dropped)
	e.dirty = true
	e.stateVer.Add(1)
}

// rebuildLocked reconstructs the derived state from the retained raw
// records under the current exclusion set — the same code path as
// incremental ingestion, replayed. On a tiered store this streams the
// cold records up from disk; the Builder's enriched views hold the
// decoded copies until the next reset.
func (e *Engine) rebuildLocked() {
	defer e.m.rebuildDur.Since(time.Now())
	e.resetBuilderLocked()
	e.st.Certs(func(c *certmodel.CertInfo) bool {
		if !e.icpt.Excluded(c.Fingerprint) {
			e.b.AddCert(c)
		}
		return true
	})
	e.st.Conns(func(rec *core.ConnRecord, _ uint64) bool {
		if sl := rec.ServerLeaf(); sl != "" && e.icpt.Excluded(sl) {
			return true
		}
		e.noteMissingLocked(rec)
		e.b.AddConn(rec)
		return true
	})
	e.rebuilds++
	e.m.rebuilds.Inc()
}

// pipelineLocked materializes the current state as a core.Pipeline,
// rebuilding first if retroactive evidence arrived.
func (e *Engine) pipelineLocked() *core.Pipeline {
	if e.dirty {
		e.rebuildLocked()
	}
	return e.b.Pipeline(e.preReportLocked())
}

// preReportLocked assembles the §3.2 statistics exactly as the batch
// preprocess reports them: raw counts before filtering, the confirmed
// issuer list, and the exclusion share of the certificate roster.
func (e *Engine) preReportLocked() *core.PreprocessReport {
	res := e.icpt.Result()
	return &core.PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(e.st.CertCount()),
		RawCerts:            e.st.CertCount(),
		RawConns:            int(e.connsIngested),
	}
}

// Analysis materializes every table and figure over the state applied so
// far — mid-stream this is a consistent snapshot; after Drain on a
// finite input it deep-equals the batch pipeline's Analysis. Ingestion
// pauses while the analyses run.
func (e *Engine) Analysis() *core.Analysis {
	var a *core.Analysis
	e.WithPipeline(func(p *core.Pipeline) { a = p.RunAll() })
	return a
}

// WithPipeline runs fn over a materialized pipeline while holding the
// engine's state lock; fn must not retain the pipeline. The whole
// materialization (any pending rebuild plus fn) is observed in
// stream_materialize_seconds. On a tiered store the derived state is
// released afterwards — it pins records the store spilled, so keeping
// it would defeat the hot-set bound; the cost is a full rebuild per
// materialization, the tiered engine's documented trade.
func (e *Engine) WithPipeline(fn func(*core.Pipeline)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.m.materializeDur.Since(time.Now())
	fn(e.pipelineLocked())
	if e.tiered {
		e.resetBuilderLocked()
	}
}

// Stats returns the operational counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		ConnsIngested:       e.connsIngested,
		CertsIngested:       e.certsIngested,
		Dropped:             e.dropped.Load(),
		Rejected:            e.rejected.Load(),
		Retained:            e.st.ConnCount(),
		Evicted:             e.evicted,
		Rebuilds:            e.rebuilds,
		Dirty:               e.dirty,
		UniqueCerts:         e.st.CertCount(),
		ExcludedCerts:       e.icpt.ExcludedCount(),
		InterceptionIssuers: e.icpt.ConfirmedCount(),
		PendingCerts:        e.icpt.PendingCount(),
		Watermark:           e.watermark,
		LastCheckpoint:      e.lastCkpt,
	}
	if !e.lastCkpt.IsZero() {
		st.CheckpointAge = time.Since(e.lastCkpt).Seconds()
	}
	return st
}
