package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/report"
)

// ckptSlices cuts a build's connections into k contiguous intervals, so
// tests can interleave ingest with checkpoints.
func ckptSlices(b []core.ConnRecord, k int) [][]core.ConnRecord {
	out := make([][]core.ConnRecord, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := len(b)*i/k, len(b)*(i+1)/k
		out = append(out, b[lo:hi])
	}
	return out
}

// TestIncrementalCheckpointResume is the incremental analogue of
// TestCheckpointRestoreResume: several delta commits into one directory,
// a kill after each interval, and a restore that must reproduce the
// uninterrupted run byte for byte.
func TestIncrementalCheckpointResume(t *testing.T) {
	b := genBuild(20240504, 1000)
	in := inputFromBuild(b)
	in.Raw = nil

	full := newEngine(t, in, nil)
	feed(t, full, b)
	full.Drain()
	want := full.Analysis()

	dir := filepath.Join(t.TempDir(), "ckpt")
	parts := ckptSlices(b.Raw.Conns, 4)

	e := newEngine(t, in, nil)
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	fed := 0
	for i, part := range parts[:3] {
		for j := range part {
			e.IngestConn(&part[j])
		}
		fed += len(part)
		e.Drain()
		if err := e.WriteCheckpoint(dir, map[string]int64{"conn_index": int64(fed)}); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	e.Close() // the "kill"

	man, err := readCkptManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 3 {
		t.Fatalf("manifest has %d segments after 3 commits, want 3", len(man.Segments))
	}

	restored, cursor, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if cursor["conn_index"] != int64(fed) {
		t.Fatalf("cursor = %v, want conn_index=%d", cursor, fed)
	}
	for j := range parts[3] {
		restored.IngestConn(&parts[3][j])
	}
	restored.Drain()
	got := restored.Analysis()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored analysis differs from uninterrupted run")
	}
	if report.RenderAll(want) != report.RenderAll(got) {
		t.Fatal("rendered reports are not byte-identical after incremental restore")
	}

	// The restored engine keeps appending deltas to the same directory.
	if err := restored.WriteCheckpoint(dir, map[string]int64{"conn_index": int64(len(b.Raw.Conns))}); err != nil {
		t.Fatal(err)
	}
	again, _, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	again.Drain()
	if got := again.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("second-generation restore differs from uninterrupted run")
	}
}

// TestIncrementalCheckpointWithEviction commits deltas across retention
// evictions: the per-segment cutoff replay must reproduce the retained
// window exactly (counter equality is required; the analysis only sees
// the window, so a wrong replay shows up as a different report).
func TestIncrementalCheckpointWithEviction(t *testing.T) {
	b := genBuild(7, 800)
	in := inputFromBuild(b)
	in.Raw = nil
	mut := func(c *Config) { c.Retention = 90 * 24 * 3600e9 } // ~90 days of the synthetic clock

	e := newEngine(t, in, mut)
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for i, part := range ckptSlices(b.Raw.Conns, 5) {
		for j := range part {
			e.IngestConn(&part[j])
		}
		e.Drain()
		if err := e.WriteCheckpoint(dir, nil); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	e.Drain()
	want := e.Analysis()
	wantStats := e.Stats()
	if wantStats.Evicted == 0 {
		t.Fatal("scenario needs evictions between commits")
	}

	restored, _, err := Restore(Config{Input: in, Retention: 90 * 24 * 3600e9}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	gotStats := restored.Stats()
	if gotStats.Retained != wantStats.Retained || gotStats.Evicted != wantStats.Evicted {
		t.Fatalf("retained/evicted after restore = %d/%d, want %d/%d",
			gotStats.Retained, gotStats.Evicted, wantStats.Retained, wantStats.Evicted)
	}
	if got := restored.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("restored analysis differs across eviction replay")
	}
	e.Close()
}

// TestCheckpointCompaction folds a long segment chain and requires the
// compacted directory to restore to the same state as the chain.
func TestCheckpointCompaction(t *testing.T) {
	b := genBuild(99, 600)
	in := inputFromBuild(b)
	in.Raw = nil

	e := newEngine(t, in, func(c *Config) { c.Retention = 120 * 24 * 3600e9 })
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	parts := ckptSlices(b.Raw.Conns, ckptCompactEvery-1)
	for _, part := range parts {
		for j := range part {
			e.IngestConn(&part[j])
		}
		e.Drain()
		if err := e.WriteCheckpoint(dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Analysis()

	man, _ := readCkptManifest(dir)
	if len(man.Segments) != ckptCompactEvery-1 {
		t.Fatalf("precondition: %d segments, want %d", len(man.Segments), ckptCompactEvery-1)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	man, err := readCkptManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("after Compact: %d segments, want 1", len(man.Segments))
	}
	// Old segment files are gone; only the folded one remains.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ckpt"))
	if len(segs) != 1 {
		t.Fatalf("after Compact: %d segment files on disk, want 1", len(segs))
	}

	restored, _, err := Restore(Config{Input: in, Retention: 120 * 24 * 3600e9}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if got := restored.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("restore from compacted base differs from pre-compaction state")
	}

	// Deltas keep working after compaction, and the background trigger
	// fires once the chain regrows.
	if err := e.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	man, _ = readCkptManifest(dir)
	if len(man.Segments) != 2 {
		t.Fatalf("delta after Compact: %d segments, want 2", len(man.Segments))
	}
	e.Close()
}

// TestCheckpointAutoCompaction checks the background trigger: the
// ckptCompactEvery-th commit folds the chain without an explicit call.
func TestCheckpointAutoCompaction(t *testing.T) {
	b := genBuild(7, 400)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for _, part := range ckptSlices(b.Raw.Conns, ckptCompactEvery) {
		for j := range part {
			e.IngestConn(&part[j])
		}
		e.Drain()
		if err := e.WriteCheckpoint(dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.compactWG.Wait()
	man, err := readCkptManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("background compaction left %d segments, want 1", len(man.Segments))
	}
	e.Close()
}

// TestCheckpointCrashMidDelta injects a failure at the manifest rename —
// the commit point — and requires the directory to restore to the
// previous commit, with the orphaned segment swept by the next write.
func TestCheckpointCrashMidDelta(t *testing.T) {
	b := genBuild(20240504, 600)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	parts := ckptSlices(b.Raw.Conns, 3)
	for j := range parts[0] {
		e.IngestConn(&parts[0][j])
	}
	e.Drain()
	if err := e.WriteCheckpoint(dir, map[string]int64{"i": 1}); err != nil {
		t.Fatal(err)
	}
	committed := e.Analysis()

	// Second commit dies at the rename: the new segment file exists and
	// is fsynced, but no manifest references it.
	for j := range parts[1] {
		e.IngestConn(&parts[1][j])
	}
	e.Drain()
	atomicfile.Failpoint = func(stage atomicfile.Stage, path string) error {
		if stage == atomicfile.StageRename && filepath.Base(path) == ckptManifestName {
			return fmt.Errorf("injected crash at manifest rename")
		}
		return nil
	}
	err := e.WriteCheckpoint(dir, map[string]int64{"i": 2})
	atomicfile.Failpoint = nil
	if err == nil {
		t.Fatal("injected rename failure did not surface")
	}
	e.Close()

	restored, cursor, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cursor["i"] != 1 {
		t.Fatalf("cursor = %v, want the first commit's", cursor)
	}
	if got := restored.Analysis(); !reflect.DeepEqual(committed, got) {
		t.Fatal("restore after torn commit differs from the last committed state")
	}

	// The restored engine has no delta history for the orphan; its next
	// commit sweeps it and starts a fresh generation that restores clean.
	for j := range parts[2] {
		restored.IngestConn(&parts[2][j])
	}
	restored.Drain()
	if err := restored.WriteCheckpoint(dir, map[string]int64{"i": 3}); err != nil {
		t.Fatal(err)
	}
	man, _ := readCkptManifest(dir)
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ckpt"))
	if len(segs) != len(man.Segments) {
		t.Fatalf("%d segment files on disk, manifest references %d (orphan not swept)", len(segs), len(man.Segments))
	}
	want := restored.Analysis()
	restored.Close()
	again, _, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	if got := again.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("post-recovery commit does not restore to the committed state")
	}
}

// TestCheckpointCrashMidCompaction injects a failure at the compaction
// manifest rename: the old chain must stay authoritative, and a retried
// compaction must succeed.
func TestCheckpointCrashMidCompaction(t *testing.T) {
	b := genBuild(99, 500)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for _, part := range ckptSlices(b.Raw.Conns, 4) {
		for j := range part {
			e.IngestConn(&part[j])
		}
		e.Drain()
		if err := e.WriteCheckpoint(dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Analysis()

	atomicfile.Failpoint = func(stage atomicfile.Stage, path string) error {
		if stage == atomicfile.StageRename && filepath.Base(path) == ckptManifestName {
			return fmt.Errorf("injected crash at compaction commit")
		}
		return nil
	}
	err := e.Compact()
	atomicfile.Failpoint = nil
	if err == nil {
		t.Fatal("injected compaction failure did not surface")
	}
	man, _ := readCkptManifest(dir)
	if len(man.Segments) != 4 {
		t.Fatalf("torn compaction disturbed the manifest: %d segments, want 4", len(man.Segments))
	}
	restored, _, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("restore after torn compaction differs")
	}
	restored.Close()

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	man, _ = readCkptManifest(dir)
	if len(man.Segments) != 1 {
		t.Fatalf("retried compaction left %d segments, want 1", len(man.Segments))
	}
	again, _, err := Restore(Config{Input: in}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	if got := again.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("restore after retried compaction differs")
	}
	e.Close()
}

// TestTornCheckpointCorpus truncates a committed segment at every frame
// boundary (and a probe inside each frame) and requires Restore to
// return a clean error — never a panic, never a silently partial engine.
func TestTornCheckpointCorpus(t *testing.T) {
	b := genBuild(7, 300)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	base := t.TempDir()
	dir := filepath.Join(base, "ckpt")
	feed(t, e, b)
	e.Drain()
	if err := e.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	e.Close()

	man, err := readCkptManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	segName := man.Segments[0].Name
	whole, err := os.ReadFile(filepath.Join(dir, segName))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, ckptManifestName))
	if err != nil {
		t.Fatal(err)
	}

	// Walk the frame boundaries of the real segment.
	var cuts []int
	off := 0
	for off < len(whole) {
		if off+9 > len(whole) {
			t.Fatalf("segment has trailing garbage at %d", off)
		}
		n := int(uint32(whole[off+1]) | uint32(whole[off+2])<<8 | uint32(whole[off+3])<<16 | uint32(whole[off+4])<<24)
		off += 9 + n
		cuts = append(cuts, off)
	}
	if cuts[len(cuts)-1] != len(whole) {
		t.Fatalf("frame walk ended at %d, file is %d bytes", cuts[len(cuts)-1], len(whole))
	}

	try := func(name string, seg []byte) {
		t.Helper()
		tdir := filepath.Join(base, name)
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tdir, segName), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tdir, ckptManifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		eng, _, err := Restore(Config{Input: in}, tdir)
		if err == nil {
			eng.Close()
			t.Fatalf("%s: restore of a damaged checkpoint succeeded", name)
		}
	}

	prev := 0
	for i, cut := range cuts {
		// Exactly at the boundary: framing is intact but the manifest
		// size no longer matches — truncation must still be detected
		// (a shorter-than-committed segment is torn even if it parses).
		if cut != len(whole) {
			try(fmt.Sprintf("bound-%d", i), whole[:cut])
		}
		// Inside the frame: framing itself is damaged.
		mid := prev + (cut-prev)/2
		if mid > prev {
			try(fmt.Sprintf("mid-%d", i), whole[:mid])
		}
		prev = cut
	}
	// Bit rot without truncation: CRC must catch it.
	for _, at := range []int{1, len(whole) / 2, len(whole) - 1} {
		mangled := append([]byte(nil), whole...)
		mangled[at] ^= 0x80
		try(fmt.Sprintf("flip-%d", at), mangled)
	}
	// A manifest referencing a missing segment is a clean error too.
	tdir := filepath.Join(base, "missing-seg")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, ckptManifestName), manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	if eng, _, err := Restore(Config{Input: in}, tdir); err == nil {
		eng.Close()
		t.Fatal("restore with a missing segment succeeded")
	}
}

// TestLegacyStaleTempSwept is the regression for the `.tmp` leak: a
// crash between Create and Rename on the legacy single-file path used
// to leave <path>.tmp behind forever. Restore must collect it.
func TestLegacyStaleTempSwept(t *testing.T) {
	b := genBuild(7, 200)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	feed(t, e, b)
	e.Drain()
	dir := t.TempDir()
	path := filepath.Join(dir, "mtlsd.ckpt")
	// Seed a legacy-format file so WriteCheckpoint stays on that path.
	if f, err := os.Create(path); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	if err := e.WriteCheckpoint(path, map[string]int64{"i": 1}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// The residue a mid-commit crash leaves.
	stale := atomicfile.TempName(path)
	if err := os.WriteFile(stale, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(Config{Input: in}, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp %s survived restore", stale)
	}
}

// TestIncrementalCheckpointIsODelta is the cost gate for the tentpole's
// headline claim: with a large retained state already committed, a
// checkpoint covering a small delta must allocate proportionally to the
// delta, not the state. (The old path's full copy under the engine lock
// allocated the entire window every interval — satellite 3.) Allocated
// bytes are compared, not allocation counts: one `append(nil, conns...)`
// is a single allocation that a count-based gate would wave through.
func TestIncrementalCheckpointIsODelta(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	dir := filepath.Join(t.TempDir(), "ckpt")
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	nBig := len(b.Raw.Conns) - 64
	for i := 0; i < nBig; i++ {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	// Base commit carries the big state; measure what O(state)
	// serialization costs so the delta gate is self-calibrating.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := e.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	baseAlloc := after.TotalAlloc - before.TotalAlloc
	baseBytes := readCkptSize(t, dir, 1)

	// Tiny delta.
	for i := nBig; i < len(b.Raw.Conns); i++ {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := e.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	e.Close()

	deltaAlloc := after.TotalAlloc - before.TotalAlloc
	deltaBytes := readCkptSize(t, dir, 2)
	if deltaBytes*8 > baseBytes {
		t.Fatalf("delta segment is %d bytes vs %d base — not a delta", deltaBytes, baseBytes)
	}
	// The delta pays a constant floor (the segment writer's 1MiB buffer,
	// the full detector snapshot) plus O(delta records); re-serializing
	// the ~2000-record state — what the removed full copy under the
	// engine lock used to do every interval — costs several times that.
	if deltaAlloc*3 > baseAlloc {
		t.Fatalf("delta checkpoint allocated %d bytes vs %d for the base — O(state) work on the delta path", deltaAlloc, baseAlloc)
	}
}

// readCkptSize returns the byte size of the n-th committed segment.
func readCkptSize(t *testing.T, dir string, n int) uint64 {
	t.Helper()
	man, err := readCkptManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) < n {
		t.Fatalf("manifest has %d segments, want at least %d", len(man.Segments), n)
	}
	return uint64(man.Segments[n-1].Bytes)
}

// TestDiskStoreMatchesMemory runs the load-bearing equivalence contract
// with the disk store under a hot budget far below the dataset: reports
// must be byte-identical to the memory store's, with records actually
// spilling through the cold tier.
func TestDiskStoreMatchesMemory(t *testing.T) {
	b := genBuild(20240504, 1200)
	in := inputFromBuild(b)
	in.Raw = nil

	mem := newEngine(t, in, nil)
	feed(t, mem, b)
	mem.Drain()
	want := mem.Analysis()

	disk := newEngine(t, in, func(c *Config) {
		c.Store = "disk"
		c.StoreDir = t.TempDir()
		c.HotBytes = 256 << 10
	})
	feed(t, disk, b)
	disk.Drain()
	st := disk.st.Stats()
	if st.ColdConns.Load() == 0 && st.ColdCerts.Load() == 0 {
		t.Fatal("hot budget did not force any spill — test is not exercising the cold tier")
	}
	got := disk.Analysis()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("disk-store analysis differs from memory store")
	}
	if report.RenderAll(want) != report.RenderAll(got) {
		t.Fatal("rendered reports are not byte-identical across stores")
	}

	// Checkpoint/restore with the disk store round-trips too.
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := disk.WriteCheckpoint(dir, nil); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(Config{Input: in, Store: "disk", StoreDir: t.TempDir(), HotBytes: 256 << 10}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if got := restored.Analysis(); !reflect.DeepEqual(want, got) {
		t.Fatal("disk-store restore differs from memory store")
	}
}

// FuzzRestore hammers the directory-restore path with arbitrary segment
// bytes: any input must produce either a working engine or a clean
// error — never a panic. The seed corpus is a valid committed segment,
// so mutations explore near-valid framing.
func FuzzRestore(f *testing.F) {
	b := genBuild(7, 30)
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := New(Config{Input: in})
	if err != nil {
		f.Fatal(err)
	}
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for i := range b.Raw.Conns {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	seedDir := filepath.Join(f.TempDir(), "seed")
	if err := e.WriteCheckpoint(seedDir, nil); err != nil {
		f.Fatal(err)
	}
	e.Close()
	man, err := readCkptManifest(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, man.Segments[0].Name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-1.ckpt"), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		manifest := fmt.Sprintf(`{"Version":1,"Gen":1,"NextSeg":2,"Segments":[{"Name":"seg-1.ckpt","Bytes":%d}]}`, len(seg))
		if err := os.WriteFile(filepath.Join(dir, ckptManifestName), []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		eng, _, err := Restore(Config{Input: in}, dir)
		if err == nil {
			eng.Close()
		}
	})
}
