package stream

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestWriteCheckpointConcurrentWithEviction is the regression for the
// checkpoint race: the retained-connection slice used to be captured
// under the engine lock but gob-encoded after Unlock, while eviction
// sweeps and appends kept mutating it — a recipe for torn checkpoints.
// Run an eviction-heavy ingestion (EvictEvery 1, tiny window) while
// checkpointing in a tight loop; meaningful under -race, and every
// written checkpoint must restore to a consistent engine.
func TestWriteCheckpointConcurrentWithEviction(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	in.Workers = 1
	e := newEngine(t, in, func(c *Config) {
		c.Retention = time.Hour // far shorter than the 23-month span
		c.EvictEvery = 1
	})

	dir := t.TempDir()
	path := filepath.Join(dir, "race.ckpt")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, c := range b.Raw.Certs {
			e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
		}
		for i := range b.Raw.Conns {
			e.IngestConn(&b.Raw.Conns[i])
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		// Each checkpointer writes its own file: the engine supports
		// concurrent WriteCheckpoint calls, but two writers on one path
		// would race on the shared temp file, which is the caller's
		// concern, not the engine's.
		mine := filepath.Join(dir, "race"+string(rune('a'+w))+".ckpt")
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := e.WriteCheckpoint(mine, map[string]int64{"ssl.log": 1}); err != nil {
					t.Error(err)
					return
				}
				// Interleave materializations so rebuilds (which walk the
				// retained slice) contend with the encoder too.
				if _, err := e.Report("table1"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	e.Drain()
	if err := e.WriteCheckpoint(path, map[string]int64{"ssl.log": 1}); err != nil {
		t.Fatal(err)
	}
	restored, cursor, err := Restore(Config{Input: in}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if cursor["ssl.log"] != 1 {
		t.Errorf("cursor = %v", cursor)
	}
	st, rst := e.Stats(), restored.Stats()
	if st.ConnsIngested != rst.ConnsIngested || st.UniqueCerts != rst.UniqueCerts {
		t.Errorf("restored stats diverge: %+v vs %+v", st, rst)
	}
}

// TestReportUnknownIsTypedError: unknown names wrap ErrUnknownReport so
// the daemon can 404 them, distinct from internal failures.
func TestReportUnknownIsTypedError(t *testing.T) {
	b := genBuild(7, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)
	_, err := e.Report("nope")
	if !errors.Is(err, ErrUnknownReport) {
		t.Fatalf("err = %v, want ErrUnknownReport", err)
	}
	if _, err := e.Report("table1"); err != nil {
		t.Fatalf("known report errored: %v", err)
	}
}

// TestReportPanicRecovered: a panicking report fn becomes an error, not
// a daemon crash, and the engine lock is released for later calls.
func TestReportPanicRecovered(t *testing.T) {
	b := genBuild(7, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)

	reportFns["__boom"] = func(*core.Pipeline) any { panic("kaboom") }
	defer delete(reportFns, "__boom")

	_, err := e.Report("__boom")
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if errors.Is(err, ErrUnknownReport) {
		t.Fatal("panic must not masquerade as an unknown report")
	}
	if _, err := e.Report("table1"); err != nil {
		t.Fatalf("engine wedged after recovered panic: %v", err)
	}
}

// TestEngineMetrics: the registry's series agree with the engine's own
// Stats counters after a full drain, and the latency/duration
// histograms saw traffic.
func TestEngineMetrics(t *testing.T) {
	b := genBuild(20240504, 2000)
	in := inputFromBuild(b)
	in.Raw = nil
	reg := metrics.New()
	e := newEngine(t, in, func(c *Config) { c.Metrics = reg })
	feed(t, e, b)
	e.Drain()
	if a := e.Analysis(); a == nil {
		t.Fatal("nil analysis")
	}
	ckpt := filepath.Join(t.TempDir(), "m.ckpt")
	if err := e.WriteCheckpoint(ckpt, nil); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if got := reg.Counter("stream_conns_ingested_total", "").Value(); got != st.ConnsIngested {
		t.Errorf("conns counter = %d, stats = %d", got, st.ConnsIngested)
	}
	if got := reg.Counter("stream_certs_ingested_total", "").Value(); got != st.CertsIngested {
		t.Errorf("certs counter = %d, stats = %d", got, st.CertsIngested)
	}
	if got := reg.Counter("stream_rebuilds_total", "").Value(); got != st.Rebuilds {
		t.Errorf("rebuilds counter = %d, stats = %d", got, st.Rebuilds)
	}
	if got := reg.Histogram("stream_apply_latency_seconds", "", nil).Count(); got != st.ConnsIngested+st.CertsIngested {
		t.Errorf("apply latency observations = %d, want %d", got, st.ConnsIngested+st.CertsIngested)
	}
	if reg.Histogram("stream_materialize_seconds", "", nil).Count() == 0 {
		t.Error("materialize histogram empty after Analysis")
	}
	if reg.Counter("stream_checkpoints_total", "").Value() != 1 {
		t.Error("checkpoint counter != 1")
	}
	if reg.Gauge("stream_checkpoint_bytes", "").Value() <= 0 {
		t.Error("checkpoint bytes gauge not set")
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stream_conns_ingested_total",
		"stream_buffer_capacity",
		"stream_buffer_occupancy",
		"stream_conns_retained",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestMetricsDoNotChangeResults: an instrumented engine produces the
// same Analysis as an uninstrumented one (observability is pure).
func TestMetricsDoNotChangeResults(t *testing.T) {
	b := genBuild(99, 2000)
	base := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, func(c *Config) { c.Metrics = metrics.New() })
	feed(t, e, b)
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(base, got) {
		t.Error("instrumented engine diverges from batch")
	}
}
