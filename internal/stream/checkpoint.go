package stream

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointState is the serialized engine: the raw ground truth
// (certificate roster, retained connections, cumulative detector state
// and counters) from which every derived structure is rebuilt on
// restore. The daemon's log-file cursor rides along so ingestion resumes
// exactly where the checkpointed state ends.
type checkpointState struct {
	Version int
	// Cursor is opaque to the engine: mtlsd stores per-file byte offsets.
	Cursor map[string]int64

	ConnsIngested uint64
	CertsIngested uint64
	Evicted       uint64
	Rebuilds      uint64
	Watermark     time.Time

	Roster       []*certmodel.CertInfo
	Conns        []core.ConnRecord
	Interception *interception.StreamState
	// Seqs are the retained connections' global ingest sequences when the
	// engine tracks sequences — as a shard of a sharded deployment or
	// under TrackExport (nil otherwise; gob tolerates the absent field in
	// old checkpoints).
	Seqs []uint64
	// Export-cursor state (TrackExport engines): the numbering epoch, the
	// next sequence, and each roster fingerprint's admission sequence.
	// Zero/nil in checkpoints from engines without export, in which case
	// a TrackExport restore renumbers under a fresh epoch.
	Epoch    uint64
	NextSeq  uint64
	CertSeqs map[ids.Fingerprint]uint64
}

// WriteCheckpoint serializes the engine state (plus the caller's cursor)
// to path, atomically via a temp file and rename. The caller must ensure
// the cursor is consistent with the applied state — i.e. Drain first,
// then read tail offsets, then checkpoint.
func (e *Engine) WriteCheckpoint(path string, cursor map[string]int64) error {
	defer e.m.checkpointDur.Since(time.Now())
	e.mu.Lock()
	st := checkpointState{
		Version:       checkpointVersion,
		Cursor:        cursor,
		ConnsIngested: e.connsIngested,
		CertsIngested: e.certsIngested,
		Evicted:       e.evicted,
		Rebuilds:      e.rebuilds,
		Watermark:     e.watermark,
		Roster:        make([]*certmodel.CertInfo, 0, len(e.roster)),
		// The retained connections are copied under the lock: encoding
		// happens after Unlock, and a concurrent eviction sweep or append
		// mutates e.conns while gob walks it — encoding the live slice
		// here produced torn checkpoints.
		Conns:        append([]core.ConnRecord(nil), e.conns...),
		Interception: e.icpt.Snapshot(),
		Seqs:         append([]uint64(nil), e.seqs...),
		Epoch:        e.epoch,
		NextSeq:      e.nextSeq,
	}
	if e.cfg.TrackExport {
		st.CertSeqs = make(map[ids.Fingerprint]uint64, len(e.certSeqs))
		for fp, seq := range e.certSeqs {
			st.CertSeqs[fp] = seq
		}
	}
	for _, c := range e.roster {
		st.Roster = append(st.Roster, c)
	}
	e.mu.Unlock()
	// Deterministic roster order keeps checkpoint bytes stable across
	// runs of the same state.
	sort.Slice(st.Roster, func(i, j int) bool {
		return st.Roster[i].Fingerprint < st.Roster[j].Fingerprint
	})

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	cw := &countingWriter{w: f}
	if err := gob.NewEncoder(cw).Encode(&st); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint encode: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint rename: %w", err)
	}
	e.m.checkpoints.Inc()
	e.m.checkpointBytes.Set(float64(cw.n))
	e.mu.Lock()
	e.lastCkpt = time.Now()
	e.mu.Unlock()
	return nil
}

// countingWriter tracks bytes written, for the checkpoint size gauge.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Restore starts an engine from a checkpoint written by WriteCheckpoint
// and returns the cursor stored with it. The restored engine's derived
// state is rebuilt lazily on first materialization; resuming ingestion
// from the cursor and draining yields reports byte-identical to an
// uninterrupted run.
func Restore(cfg Config, path string) (*Engine, map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var st checkpointState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("stream: checkpoint decode: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("stream: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	e.connsIngested = st.ConnsIngested
	e.certsIngested = st.CertsIngested
	e.evicted = st.Evicted
	e.rebuilds = st.Rebuilds
	e.watermark = st.Watermark
	for _, c := range st.Roster {
		e.roster[c.Fingerprint] = c
	}
	e.conns = st.Conns
	e.seqs = st.Seqs
	if !e.seqTracked() {
		// A checkpoint written by a sequence-tracking shard restores fine
		// into a standalone (or n=1 passthrough) engine; the sequences are
		// meaningless without a merge, so drop them rather than letting
		// them fall out of alignment with future appends.
		e.seqs = nil
	}
	if cfg.TrackExport {
		if st.Epoch != 0 && len(st.Seqs) == len(st.Conns) {
			// The checkpoint carries export state: resume the numbering so
			// cursors taken before the restart keep working.
			e.epoch = st.Epoch
			e.nextSeq = st.NextSeq
			for fp, seq := range st.CertSeqs {
				e.certSeqs[fp] = seq
			}
		} else {
			// Pre-export checkpoint: renumber everything under the fresh
			// epoch New assigned, so exports are internally consistent and
			// cursors against the old process are refused as stale.
			e.seqs = make([]uint64, 0, len(e.conns))
			for fp := range e.roster {
				e.certSeqs[fp] = e.nextSeq
				e.nextSeq++
			}
			for range e.conns {
				e.seqs = append(e.seqs, e.nextSeq)
				e.nextSeq++
			}
		}
	}
	e.icpt = e.det.RestoreStream(e.lookupCert, st.Interception)
	e.dirty = true // derived state does not exist yet; rebuild on demand
	e.stateVer.Add(1)
	e.lastCkpt = time.Now()
	e.mu.Unlock()
	return e, st.Cursor, nil
}
