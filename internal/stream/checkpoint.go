package stream

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/store"
)

// Checkpoints come in two on-disk shapes:
//
//   - Legacy: one gob file holding the full state, committed by temp+
//     rename. Still written to paths that already hold a regular file
//     (so a deployment that checkpointed before this format exists keeps
//     its file) and for the per-shard files of a sharded checkpoint
//     directory, whose manifest is the commit point for the whole set.
//
//   - Incremental (the default for fresh paths): a directory of
//     CRC-framed segment files plus a MANIFEST. Each WriteCheckpoint
//     appends one segment carrying only the delta since the previous
//     commit — connections appended since the last committed slot mark,
//     certificates admitted since then, the latest eviction cutoff, the
//     cumulative detector state, and the counters — and then rewrites
//     the MANIFEST through the atomicfile protocol, which is the single
//     commit point. Restore replays the segments in order: apply the
//     segment's eviction cutoff to the state accumulated so far, then
//     append its records. A background compactor folds the segment
//     chain back into one base so the directory stays O(state), while
//     each interval's write stays O(delta).
//
// Crash matrix (see DESIGN.md §8 for the narrative): a crash before the
// MANIFEST rename leaves the previous commit fully intact (new segment
// files are unreferenced garbage, swept on the next write or restore);
// a crash after the rename is a completed commit (segment data was
// fsynced before the manifest named it, the manifest through
// atomicfile); mid-compaction crashes leave the old manifest and
// segments untouched.

// checkpointVersion guards the legacy on-disk format.
const checkpointVersion = 1

// ckptManifestVersion guards the incremental directory format.
const ckptManifestVersion = 1

// ckptManifestName is the commit point of an incremental checkpoint
// directory. Distinct from the sharded manifest.json so the two
// directory layouts cannot be mistaken for each other.
const ckptManifestName = "MANIFEST"

// ckptCompactEvery is the segment-chain length that triggers the
// background compactor after a delta commit.
const ckptCompactEvery = 8

// ckptConnChunk / ckptCertChunk bound one frame's record count, so a
// restore decodes bounded batches rather than one giant frame.
const (
	ckptConnChunk = 4096
	ckptCertChunk = 1024
)

// Segment frame types.
const (
	segFrameState byte = 1
	segFrameCerts byte = 2
	segFrameConns byte = 3
)

// segState is a segment's snapshot of everything that is not a record
// stream: counters, the export numbering, the eviction cutoff to replay
// before this segment's records, and the cumulative detector state
// (small next to the record stream, so every segment carries the full
// thing and the last one wins on restore).
type segState struct {
	ConnsIngested uint64
	CertsIngested uint64
	Evicted       uint64
	Rebuilds      uint64
	Watermark     time.Time
	EvictCutoff   time.Time
	Epoch         uint64
	NextSeq       uint64
	Interception  *interception.StreamState
}

// segCerts is one roster batch; Seqs aligns per-certificate admission
// sequences when the writer tracked export (nil otherwise).
type segCerts struct {
	Certs []*certmodel.CertInfo
	Seqs  []uint64
}

// segConns is one retained-connection batch in append order; Seqs
// aligns global ingest sequences when tracked (nil otherwise).
type segConns struct {
	Conns []core.ConnRecord
	Seqs  []uint64
}

// ckptSeg names one committed segment and its exact size — a referenced
// segment shorter than recorded is truncation, reported as corruption.
type ckptSeg struct {
	Name  string
	Bytes int64
}

// ckptManifest is the incremental directory's commit record.
type ckptManifest struct {
	Version  int
	Gen      uint64
	NextSeg  int
	Segments []ckptSeg
	Cursor   map[string]int64
}

// checkpointState is the legacy serialized engine: the raw ground truth
// (certificate roster, retained connections, cumulative detector state
// and counters) from which every derived structure is rebuilt on
// restore. The daemon's log-file cursor rides along so ingestion resumes
// exactly where the checkpointed state ends.
type checkpointState struct {
	Version int
	// Cursor is opaque to the engine: mtlsd stores per-file byte offsets.
	Cursor map[string]int64

	ConnsIngested uint64
	CertsIngested uint64
	Evicted       uint64
	Rebuilds      uint64
	Watermark     time.Time

	Roster       []*certmodel.CertInfo
	Conns        []core.ConnRecord
	Interception *interception.StreamState
	// Seqs are the retained connections' global ingest sequences when the
	// engine tracks sequences — as a shard of a sharded deployment or
	// under TrackExport (nil otherwise; gob tolerates the absent field in
	// old checkpoints).
	Seqs []uint64
	// Export-cursor state (TrackExport engines): the numbering epoch, the
	// next sequence, and each roster fingerprint's admission sequence.
	// Zero/nil in checkpoints from engines without export, in which case
	// a TrackExport restore renumbers under a fresh epoch.
	Epoch    uint64
	NextSeq  uint64
	CertSeqs map[ids.Fingerprint]uint64
}

// WriteCheckpoint serializes the engine state (plus the caller's
// cursor) to path. A path already holding a regular file is rewritten
// in the legacy full-gob format; any other path (fresh, or an existing
// checkpoint directory) gets the incremental directory format, where
// each call appends a segment carrying only the delta since the last
// commit. The caller must ensure the cursor is consistent with the
// applied state — i.e. Drain first, then read tail offsets, then
// checkpoint.
func (e *Engine) WriteCheckpoint(path string, cursor map[string]int64) error {
	if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
		return e.writeLegacyCheckpoint(path, cursor)
	}
	return e.writeIncremental(path, cursor)
}

// snapshotLegacyLocked assembles the legacy checkpoint state under mu.
// The record slices come from the store snapshot: safe to encode after
// mu is released because the store never mutates handed-out state
// (appends land beyond the captured length, eviction swaps in fresh
// arrays), so encoding sees exactly the captured prefix.
func (e *Engine) snapshotLegacyLocked(cursor map[string]int64) *checkpointState {
	snap := e.st.Snapshot()
	st := &checkpointState{
		Version:       checkpointVersion,
		Cursor:        cursor,
		ConnsIngested: e.connsIngested,
		CertsIngested: e.certsIngested,
		Evicted:       e.evicted,
		Rebuilds:      e.rebuilds,
		Watermark:     e.watermark,
		Roster:        snap.Certs,
		Conns:         snap.Conns,
		Seqs:          snap.Seqs,
		Interception:  e.icpt.Snapshot(),
		Epoch:         e.epoch,
		NextSeq:       e.nextSeq,
	}
	if e.cfg.TrackExport {
		st.CertSeqs = make(map[ids.Fingerprint]uint64, len(e.certSeqs))
		for fp, seq := range e.certSeqs {
			st.CertSeqs[fp] = seq
		}
	}
	return st
}

// writeLegacyCheckpoint writes the full-gob format through the
// atomicfile commit protocol (fsync on the temp file and the parent
// directory — the historical Create→Encode→Close→Rename was atomic
// against readers but not against power loss).
func (e *Engine) writeLegacyCheckpoint(path string, cursor map[string]int64) error {
	defer e.m.checkpointDur.Since(time.Now())
	e.mu.Lock()
	st := e.snapshotLegacyLocked(cursor)
	e.mu.Unlock()
	// Deterministic roster order keeps checkpoint bytes stable across
	// runs of the same state.
	sort.Slice(st.Roster, func(i, j int) bool {
		return st.Roster[i].Fingerprint < st.Roster[j].Fingerprint
	})

	var n int64
	err := atomicfile.WriteTo(path, func(f *os.File) error {
		cw := &countingWriter{w: f}
		if err := gob.NewEncoder(cw).Encode(st); err != nil {
			return fmt.Errorf("stream: checkpoint encode: %w", err)
		}
		n = cw.n
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	e.m.checkpoints.Inc()
	e.m.checkpointBytes.Set(float64(n))
	e.mu.Lock()
	e.lastCkpt = time.Now()
	e.mu.Unlock()
	return nil
}

// countingWriter tracks bytes written, for the checkpoint size gauge.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// readCkptManifest loads and validates a directory's MANIFEST.
func readCkptManifest(dir string) (*ckptManifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ckptManifestName))
	if err != nil {
		return nil, err
	}
	var man ckptManifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("stream: checkpoint manifest decode: %w", err)
	}
	if man.Version != ckptManifestVersion {
		return nil, fmt.Errorf("stream: checkpoint manifest version %d, want %d", man.Version, ckptManifestVersion)
	}
	return &man, nil
}

// writeCkptManifest commits a manifest through the atomicfile protocol.
func writeCkptManifest(dir string, man *ckptManifest) error {
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("stream: checkpoint manifest: %w", err)
	}
	if err := atomicfile.WriteFile(filepath.Join(dir, ckptManifestName), append(buf, '\n')); err != nil {
		return fmt.Errorf("stream: checkpoint manifest: %w", err)
	}
	return nil
}

// sweepCkptDir removes segment files the manifest does not reference
// and stale temp files — the residue of crashed commits. Caller holds
// ckptMu.
func sweepCkptDir(dir string, man *ckptManifest) {
	refd := map[string]bool{}
	if man != nil {
		for _, s := range man.Segments {
			refd[s.Name] = true
		}
	}
	if matches, err := filepath.Glob(filepath.Join(dir, "seg-*.ckpt")); err == nil {
		for _, m := range matches {
			if !refd[filepath.Base(m)] {
				os.Remove(m)
			}
		}
	}
	atomicfile.SweepTemps(dir, "*.tmp")
}

// writeSegment streams one segment to path: the state frame first, then
// the roster and connection batches, fsynced before return so the
// manifest that will reference it never names un-durable data. Returns
// the segment's size.
func writeSegment(path string, st *segState, certs []*certmodel.CertInfo, certSeqs []uint64, conns []core.ConnRecord, seqs []uint64) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	w := bufio.NewWriterSize(cw, 1<<20)
	emit := func(typ byte, payload any) error {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return err
		}
		return store.WriteFrame(w, typ, body.Bytes())
	}
	err = emit(segFrameState, st)
	for i := 0; err == nil && i < len(certs); i += ckptCertChunk {
		end := min(i+ckptCertChunk, len(certs))
		batch := segCerts{Certs: certs[i:end]}
		if certSeqs != nil {
			batch.Seqs = certSeqs[i:end]
		}
		err = emit(segFrameCerts, &batch)
	}
	for i := 0; err == nil && i < len(conns); i += ckptConnChunk {
		end := min(i+ckptConnChunk, len(conns))
		batch := segConns{Conns: conns[i:end]}
		if seqs != nil {
			batch.Seqs = seqs[i:end]
		}
		err = emit(segFrameConns, &batch)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	return cw.n, nil
}

// writeIncremental appends one delta segment (or, on first contact with
// the directory, a full base) and commits it via the MANIFEST.
func (e *Engine) writeIncremental(dir string, cursor map[string]int64) error {
	defer e.m.checkpointDur.Since(time.Now())
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if e.ckptDir != dir {
		// First contact with this directory in this process. A manifest
		// already there belongs to some other engine history — deltas
		// against an unknown base would corrupt it, so start a fresh
		// full base regardless (its commit obsoletes the old segments,
		// which the sweep below then collects).
		e.ckptDir, e.ckptMan = dir, nil
	}
	sweepCkptDir(dir, e.ckptMan)

	full := e.ckptMan == nil

	// Snapshot the delta (or everything, for a base) under the state
	// lock. All slices are fresh copies or abandon-don't-mutate
	// snapshots, so encoding proceeds after unlock without stalling
	// ingest.
	e.mu.Lock()
	var conns []core.ConnRecord
	var seqs []uint64
	var certs []*certmodel.CertInfo
	if full {
		snap := e.st.Snapshot()
		certs, conns, seqs = snap.Certs, snap.Conns, snap.Seqs
	} else {
		conns, seqs = e.st.ConnsSince(e.ckptMark)
		certs = make([]*certmodel.CertInfo, 0, len(e.ckptNewCerts))
		for _, fp := range e.ckptNewCerts {
			if c := e.st.Cert(fp); c != nil {
				certs = append(certs, c)
			}
		}
	}
	nCerts := len(e.ckptNewCerts)
	newMark := e.st.NextSlot()
	st := &segState{
		ConnsIngested: e.connsIngested,
		CertsIngested: e.certsIngested,
		Evicted:       e.evicted,
		Rebuilds:      e.rebuilds,
		Watermark:     e.watermark,
		EvictCutoff:   e.ckptCutoff,
		Epoch:         e.epoch,
		NextSeq:       e.nextSeq,
		Interception:  e.icpt.Snapshot(),
	}
	var certSeqs []uint64
	if full {
		// Deterministic roster order keeps base bytes stable for the
		// same state (delta certs are already in admission order).
		sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	}
	if e.cfg.TrackExport {
		certSeqs = make([]uint64, len(certs))
		for i, c := range certs {
			certSeqs[i] = e.certSeqs[c.Fingerprint]
		}
	}
	e.mu.Unlock()

	man := &ckptManifest{Version: ckptManifestVersion, NextSeg: 1}
	if e.ckptMan != nil {
		cp := *e.ckptMan
		cp.Segments = append([]ckptSeg(nil), e.ckptMan.Segments...)
		man = &cp
	}
	name := fmt.Sprintf("seg-%d.ckpt", man.NextSeg)
	n, err := writeSegment(filepath.Join(dir, name), st, certs, certSeqs, conns, seqs)
	if err != nil {
		return fmt.Errorf("stream: checkpoint segment: %w", err)
	}
	man.Gen++
	man.NextSeg++
	man.Segments = append(man.Segments, ckptSeg{Name: name, Bytes: n})
	man.Cursor = cursor
	if err := writeCkptManifest(dir, man); err != nil {
		os.Remove(filepath.Join(dir, name))
		return err
	}
	e.ckptMan = man

	e.m.checkpoints.Inc()
	e.m.checkpointBytes.Set(float64(n))
	e.m.checkpointSegs.Set(float64(len(man.Segments)))
	e.mu.Lock()
	e.ckptMark = newMark
	e.ckptNewCerts = e.ckptNewCerts[nCerts:]
	e.lastCkpt = time.Now()
	e.mu.Unlock()

	if len(man.Segments) >= ckptCompactEvery {
		e.compactWG.Add(1)
		go func() {
			defer e.compactWG.Done()
			e.Compact()
		}()
	}
	return nil
}

// Compact folds the committed segment chain into one base segment, so
// the directory returns to O(state) while the per-interval delta cost
// stays O(delta). It streams frame by frame — roster frames copy
// verbatim (fingerprints are unique across segments by construction),
// connection frames are filtered by the eviction cutoffs of later
// segments — so its transient memory is one frame, not the full state.
// Runs in the background after every ckptCompactEvery-th commit; safe
// to call directly. A crash at any point leaves the previous manifest
// and its segments untouched.
func (e *Engine) Compact() error {
	if !e.compacting.CompareAndSwap(false, true) {
		return nil // a compaction is already running
	}
	defer e.compacting.Store(false)
	defer e.m.compactDur.Since(time.Now())
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	man := e.ckptMan
	if man == nil || len(man.Segments) <= 1 {
		return nil
	}
	dir := e.ckptDir

	// Pass 1: each segment's state frame, for the cutoff schedule and
	// the final (authoritative) state.
	states := make([]*segState, len(man.Segments))
	for i, sg := range man.Segments {
		st, err := readSegmentState(filepath.Join(dir, sg.Name), sg.Bytes)
		if err != nil {
			return fmt.Errorf("stream: compact %s: %w", sg.Name, err)
		}
		states[i] = st
	}
	// futureCut[i] is the strongest eviction replayed after segment i's
	// records were appended — the filter deciding which of its records
	// are still alive.
	futureCut := make([]time.Time, len(states))
	var cut time.Time
	for i := len(states) - 1; i >= 0; i-- {
		futureCut[i] = cut
		if states[i].EvictCutoff.After(cut) {
			cut = states[i].EvictCutoff
		}
	}

	name := fmt.Sprintf("seg-%d.ckpt", man.NextSeg)
	out, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("stream: compact: %w", err)
	}
	cw := &countingWriter{w: out}
	w := bufio.NewWriterSize(cw, 1<<20)
	fail := func(err error) error {
		out.Close()
		os.Remove(filepath.Join(dir, name))
		return fmt.Errorf("stream: compact: %w", err)
	}
	{
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(states[len(states)-1]); err != nil {
			return fail(err)
		}
		if err := store.WriteFrame(w, segFrameState, body.Bytes()); err != nil {
			return fail(err)
		}
	}
	for i, sg := range man.Segments {
		if err := copySegmentRecords(filepath.Join(dir, sg.Name), w, futureCut[i]); err != nil {
			return fail(fmt.Errorf("%s: %w", sg.Name, err))
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := out.Sync(); err != nil {
		return fail(err)
	}
	if err := out.Close(); err != nil {
		os.Remove(filepath.Join(dir, name))
		return fmt.Errorf("stream: compact: %w", err)
	}

	newMan := &ckptManifest{
		Version:  ckptManifestVersion,
		Gen:      man.Gen + 1,
		NextSeg:  man.NextSeg + 1,
		Segments: []ckptSeg{{Name: name, Bytes: cw.n}},
		Cursor:   man.Cursor,
	}
	if err := writeCkptManifest(dir, newMan); err != nil {
		os.Remove(filepath.Join(dir, name))
		return err
	}
	e.ckptMan = newMan
	for _, sg := range man.Segments {
		os.Remove(filepath.Join(dir, sg.Name))
	}
	e.m.compactions.Inc()
	e.m.checkpointSegs.Set(1)
	return nil
}

// readSegmentState returns a segment's state frame (its first frame),
// verifying the file is exactly the committed size.
func readSegmentState(path string, wantBytes int64) (*segState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return nil, err
	} else if fi.Size() != wantBytes {
		return nil, fmt.Errorf("%w: segment is %d bytes, manifest committed %d", store.ErrCorrupt, fi.Size(), wantBytes)
	}
	typ, body, err := store.ReadFrame(bufio.NewReader(f))
	if err != nil {
		return nil, err
	}
	if typ != segFrameState {
		return nil, fmt.Errorf("%w: first frame type %d, want state", store.ErrCorrupt, typ)
	}
	var st segState
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: state frame: %v", store.ErrCorrupt, err)
	}
	return &st, nil
}

// copySegmentRecords streams a segment's record frames into w: roster
// frames verbatim, connection frames filtered by cut (zero = verbatim).
func copySegmentRecords(path string, w io.Writer, cut time.Time) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		typ, body, err := store.ReadFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case segFrameState:
			// The folded state frame was already written.
		case segFrameCerts:
			if err := store.WriteFrame(w, typ, body); err != nil {
				return err
			}
		case segFrameConns:
			if cut.IsZero() {
				if err := store.WriteFrame(w, typ, body); err != nil {
					return err
				}
				continue
			}
			var batch segConns
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&batch); err != nil {
				return fmt.Errorf("%w: conns frame: %v", store.ErrCorrupt, err)
			}
			kept := segConns{Conns: batch.Conns[:0]}
			if batch.Seqs != nil {
				kept.Seqs = batch.Seqs[:0]
			}
			for i := range batch.Conns {
				if !batch.Conns[i].TS.Before(cut) {
					kept.Conns = append(kept.Conns, batch.Conns[i])
					if batch.Seqs != nil {
						kept.Seqs = append(kept.Seqs, batch.Seqs[i])
					}
				}
			}
			if len(kept.Conns) == 0 {
				continue
			}
			var out bytes.Buffer
			if err := gob.NewEncoder(&out).Encode(&kept); err != nil {
				return err
			}
			if err := store.WriteFrame(w, typ, out.Bytes()); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown frame type %d", store.ErrCorrupt, typ)
		}
	}
}

// Restore starts an engine from a checkpoint written by WriteCheckpoint
// — a legacy gob file or an incremental directory — and returns the
// cursor stored with it. The restored engine's derived state is rebuilt
// lazily on first materialization; resuming ingestion from the cursor
// and draining yields reports byte-identical to an uninterrupted run.
func Restore(cfg Config, path string) (*Engine, map[string]int64, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return restoreDir(cfg, path)
	}
	// A crash between creating <path>.tmp and the rename leaves the
	// temp behind forever on the legacy path (the incremental directory
	// sweeps its own); collect it here so checkpointed daemons do not
	// accrete one stale temp per crash.
	os.Remove(atomicfile.TempName(path))
	return restoreFile(cfg, path)
}

// restoreFile restores the legacy full-gob format.
func restoreFile(cfg Config, path string) (*Engine, map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var st checkpointState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("stream: checkpoint decode: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("stream: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	e.connsIngested = st.ConnsIngested
	e.certsIngested = st.CertsIngested
	e.evicted = st.Evicted
	e.rebuilds = st.Rebuilds
	e.watermark = st.Watermark
	for _, c := range st.Roster {
		e.st.PutCert(c)
	}
	seqs := st.Seqs
	if cfg.TrackExport {
		if st.Epoch != 0 && len(st.Seqs) == len(st.Conns) {
			// The checkpoint carries export state: resume the numbering so
			// cursors taken before the restart keep working.
			e.epoch = st.Epoch
			e.nextSeq = st.NextSeq
			for fp, seq := range st.CertSeqs {
				e.certSeqs[fp] = seq
			}
		} else {
			// Pre-export checkpoint: renumber everything under the fresh
			// epoch New assigned, so exports are internally consistent and
			// cursors against the old process are refused as stale.
			seqs = make([]uint64, 0, len(st.Conns))
			e.st.Certs(func(c *certmodel.CertInfo) bool {
				e.certSeqs[c.Fingerprint] = e.nextSeq
				e.nextSeq++
				return true
			})
			for range st.Conns {
				seqs = append(seqs, e.nextSeq)
				e.nextSeq++
			}
		}
	}
	for i := range st.Conns {
		var seq uint64
		if i < len(seqs) {
			seq = seqs[i]
		}
		e.st.AppendConn(&st.Conns[i], seq)
	}
	e.finishRestoreLocked(st.Interception)
	e.mu.Unlock()
	return e, st.Cursor, nil
}

// finishRestoreLocked completes any restore: detector state, lazily
// rebuilt derived state, and checkpoint bookkeeping (everything in the
// store is covered by what was just read, so the next delta starts at
// the current slot mark with no pending certificates).
func (e *Engine) finishRestoreLocked(icpt *interception.StreamState) {
	e.icpt = e.det.RestoreStream(e.lookupCert, icpt)
	e.dirty = true // derived state does not exist yet; rebuild on demand
	e.ckptMark = e.st.NextSlot()
	e.ckptNewCerts = nil
	e.stateVer.Add(1)
	e.lastCkpt = time.Now()
	e.m.retained.Set(float64(e.st.ConnCount()))
}

// restoreDir restores an incremental checkpoint directory by replaying
// its committed segments in order: apply each segment's eviction cutoff
// to the state accumulated so far, then append its records. Counters,
// export numbering, and detector state come from the last segment. Any
// framing, checksum, or truncation damage surfaces as a clean error —
// never a panic or a silently partial restore.
func restoreDir(cfg Config, dir string) (*Engine, map[string]int64, error) {
	man, err := readCkptManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(man.Segments) == 0 {
		return nil, nil, fmt.Errorf("stream: checkpoint manifest references no segments")
	}
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	var last *segState
	var rerr error
	renumber := false
	e.mu.Lock()
	for i, sg := range man.Segments {
		st, err := e.replaySegmentLocked(filepath.Join(dir, sg.Name), sg.Bytes, i == 0, &renumber)
		if err != nil {
			rerr = fmt.Errorf("stream: restore %s: %w", sg.Name, err)
			break
		}
		last = st
	}
	if rerr == nil {
		e.connsIngested = last.ConnsIngested
		e.certsIngested = last.CertsIngested
		e.evicted = last.Evicted
		e.rebuilds = last.Rebuilds
		e.watermark = last.Watermark
		if last.EvictCutoff.After(e.ckptCutoff) {
			e.ckptCutoff = last.EvictCutoff
		}
		if cfg.TrackExport && !renumber {
			e.epoch = last.Epoch
			e.nextSeq = last.NextSeq
		}
		e.finishRestoreLocked(last.Interception)
	}
	e.mu.Unlock()
	if rerr != nil {
		e.Close()
		return nil, nil, rerr
	}
	e.ckptMu.Lock()
	e.ckptDir = dir
	e.ckptMan = man
	e.ckptMu.Unlock()
	return e, man.Cursor, nil
}

// replaySegmentLocked streams one segment into the store. first+renumber
// handle the export-numbering decision: a checkpoint written without
// export state (epoch 0) restored into a TrackExport engine renumbers
// records in replay order under the fresh epoch New assigned.
func (e *Engine) replaySegmentLocked(path string, wantBytes int64, first bool, renumber *bool) (*segState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return nil, err
	} else if fi.Size() != wantBytes {
		return nil, fmt.Errorf("%w: segment is %d bytes, manifest committed %d", store.ErrCorrupt, fi.Size(), wantBytes)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var st *segState
	for {
		typ, body, err := store.ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		dec := gob.NewDecoder(bytes.NewReader(body))
		switch typ {
		case segFrameState:
			if st != nil {
				return nil, fmt.Errorf("%w: duplicate state frame", store.ErrCorrupt)
			}
			st = &segState{}
			if err := dec.Decode(st); err != nil {
				return nil, fmt.Errorf("%w: state frame: %v", store.ErrCorrupt, err)
			}
			if first {
				*renumber = e.cfg.TrackExport && st.Epoch == 0
			}
			// The cutoff replays the evictions that ran between the
			// previous commit and this one, before this segment's
			// records are appended (they were alive at commit time).
			if !st.EvictCutoff.IsZero() {
				e.st.EvictBefore(st.EvictCutoff)
			}
		case segFrameCerts:
			if st == nil {
				return nil, fmt.Errorf("%w: records before state frame", store.ErrCorrupt)
			}
			var batch segCerts
			if err := dec.Decode(&batch); err != nil {
				return nil, fmt.Errorf("%w: certs frame: %v", store.ErrCorrupt, err)
			}
			for i, c := range batch.Certs {
				if c == nil || c.Fingerprint == "" {
					return nil, fmt.Errorf("%w: roster entry without fingerprint", store.ErrCorrupt)
				}
				if !e.st.PutCert(c) {
					continue
				}
				if e.cfg.TrackExport {
					switch {
					case *renumber:
						e.certSeqs[c.Fingerprint] = e.nextSeq
						e.nextSeq++
					case i < len(batch.Seqs):
						e.certSeqs[c.Fingerprint] = batch.Seqs[i]
					}
				}
			}
		case segFrameConns:
			if st == nil {
				return nil, fmt.Errorf("%w: records before state frame", store.ErrCorrupt)
			}
			var batch segConns
			if err := dec.Decode(&batch); err != nil {
				return nil, fmt.Errorf("%w: conns frame: %v", store.ErrCorrupt, err)
			}
			for i := range batch.Conns {
				var seq uint64
				switch {
				case *renumber:
					seq = e.nextSeq
					e.nextSeq++
				case i < len(batch.Seqs):
					seq = batch.Seqs[i]
				}
				e.st.AppendConn(&batch.Conns[i], seq)
			}
		default:
			return nil, fmt.Errorf("%w: unknown frame type %d", store.ErrCorrupt, typ)
		}
	}
	if st == nil {
		return nil, fmt.Errorf("%w: segment has no state frame", store.ErrCorrupt)
	}
	return st, nil
}
