package stream

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/workload"
)

// batchIngester is the batched ingest surface shared by Engine and
// Sharded, so the batch equivalence tests drive both through one path.
type batchIngester interface {
	ingester
	IngestConnBatch([]core.ConnRecord) int
	IngestCertBatch([]core.CertRecord) int
}

// certRecords flattens a build's certificate roster into ingest records
// in a deterministic (fingerprint-sorted) order, so batch boundaries
// land on the same records across runs.
func certRecords(b *workload.Build) []core.CertRecord {
	certs := make([]*certmodel.CertInfo, 0, len(b.Raw.Certs))
	for _, c := range b.Raw.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	out := make([]core.CertRecord, len(certs))
	for i, c := range certs {
		out[i] = core.CertRecord{TS: c.NotBefore, Cert: c}
	}
	return out
}

// feedBatches pushes certificates then connections through the batched
// ingest in runs of size, the order a well-ordered log replay produces.
func feedBatches(t *testing.T, g batchIngester, certs []core.CertRecord, conns []core.ConnRecord, size int) {
	t.Helper()
	for lo := 0; lo < len(certs); lo += size {
		hi := min(lo+size, len(certs))
		if got := g.IngestCertBatch(certs[lo:hi]); got != hi-lo {
			t.Fatalf("IngestCertBatch accepted %d of %d", got, hi-lo)
		}
	}
	for lo := 0; lo < len(conns); lo += size {
		hi := min(lo+size, len(conns))
		if got := g.IngestConnBatch(conns[lo:hi]); got != hi-lo {
			t.Fatalf("IngestConnBatch accepted %d of %d", got, hi-lo)
		}
	}
}

// TestBatchIngestMatchesSingle is the batched-ingest contract on the
// plain engine: at every batch granularity, draining the same events
// through IngestConnBatch/IngestCertBatch yields an Analysis deeply
// equal to per-event ingest and to the batch pipeline.
func TestBatchIngestMatchesSingle(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))

	in := inputFromBuild(b)
	in.Raw = nil
	single := newEngine(t, in, nil)
	feed(t, single, b)
	single.Drain()
	want := single.Analysis()
	if !reflect.DeepEqual(batch, want) {
		t.Fatal("single-engine analysis differs from batch (prerequisite broken)")
	}

	certs := certRecords(b)
	for _, size := range []int{1, 3, 64, 512, 1 << 20} {
		e := newEngine(t, in, nil)
		feedBatches(t, e, certs, b.Raw.Conns, size)
		e.Drain()
		if got := e.Analysis(); !reflect.DeepEqual(want, got) {
			t.Errorf("batch=%d: batched analysis differs from per-event ingest", size)
		}
		st := e.Stats()
		if st.ConnsIngested != uint64(len(b.Raw.Conns)) {
			t.Errorf("batch=%d: ConnsIngested = %d, want %d", size, st.ConnsIngested, len(b.Raw.Conns))
		}
		if st.Dropped != 0 || st.Rejected != 0 {
			t.Errorf("batch=%d: unexpected dropped=%d rejected=%d", size, st.Dropped, st.Rejected)
		}
	}
}

// TestShardedBatchIngestMatchesSingle extends the contract across the
// router: at shard counts {1, 2, 4} the batch partitioner must land
// every record on the same shard per-event routing would, so the merged
// Analysis stays deeply equal to the batch pipeline.
func TestShardedBatchIngestMatchesSingle(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil
	certs := certRecords(b)

	for _, n := range []int{1, 2, 4} {
		for _, size := range []int{3, 512} {
			s := newSharded(t, n, in, nil)
			feedBatches(t, s, certs, b.Raw.Conns, size)
			s.Drain()
			if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
				t.Errorf("shards=%d batch=%d: merged analysis differs from batch pipeline", n, size)
			}
			st := s.Stats()
			if st.ConnsIngested != uint64(len(b.Raw.Conns)) {
				t.Errorf("shards=%d batch=%d: ConnsIngested = %d, want %d",
					n, size, st.ConnsIngested, len(b.Raw.Conns))
			}
			if st.UniqueCerts != len(b.Raw.Certs) {
				t.Errorf("shards=%d batch=%d: UniqueCerts = %d, want %d",
					n, size, st.UniqueCerts, len(b.Raw.Certs))
			}
			if st.Dropped != 0 {
				t.Errorf("shards=%d batch=%d: unexpected drops: %d", n, size, st.Dropped)
			}
		}
	}
}

// TestBatchInterleavedWithSingle mixes the two ingest surfaces in one
// stream — a run of batches, then a run of per-event calls, with
// certificate batches landing between connection runs. Deployments
// migrate between the APIs (or use both: a tailer batches, a backfill
// script does not), so the engines must not care which path an event
// took.
func TestBatchInterleavedWithSingle(t *testing.T) {
	b := genBuild(7, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil
	certs := certRecords(b)
	conns := b.Raw.Conns

	for _, n := range []int{1, 2, 4} {
		s := newSharded(t, n, in, nil)
		ci, coi := 0, 0
		turn := 0
		for ci < len(certs) || coi < len(conns) {
			switch turn % 4 {
			case 0: // a connection batch
				hi := min(coi+48, len(conns))
				s.IngestConnBatch(conns[coi:hi])
				coi = hi
			case 1: // per-event certificates
				for k := 0; k < 8 && ci < len(certs); k++ {
					s.IngestCert(&certs[ci])
					ci++
				}
			case 2: // per-event connections
				for k := 0; k < 16 && coi < len(conns); k++ {
					s.IngestConn(&conns[coi])
					coi++
				}
			case 3: // a certificate batch
				hi := min(ci+24, len(certs))
				s.IngestCertBatch(certs[ci:hi])
				ci = hi
			}
			turn++
		}
		s.Drain()
		if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: mixed batch/per-event analysis differs from batch pipeline", n)
		}
	}
}

// TestBatchOutOfOrderCerts feeds every connection batch before any
// certificate batch: shards park observations, the rendezvous forwards
// late certificates, and the §3.2 retroactive-evidence path must work
// unchanged when events arrive in batches.
func TestBatchOutOfOrderCerts(t *testing.T) {
	b := genBuild(20240504, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil
	certs := certRecords(b)

	for _, n := range []int{1, 2, 4} {
		s := newSharded(t, n, in, nil)
		for lo := 0; lo < len(b.Raw.Conns); lo += 512 {
			s.IngestConnBatch(b.Raw.Conns[lo:min(lo+512, len(b.Raw.Conns))])
		}
		for lo := 0; lo < len(certs); lo += 512 {
			s.IngestCertBatch(certs[lo:min(lo+512, len(certs))])
		}
		s.Drain()
		if got := s.Analysis(); !reflect.DeepEqual(batch, got) {
			t.Errorf("shards=%d: out-of-order batched analysis differs from batch pipeline", n)
		}
	}
}

// TestBatchRetroactiveExclusion pins the §3.2 exclusion verdict under
// batched ingest: interception issuers confirmed by evidence spread
// across shards must be excluded exactly as in the batch pipeline.
func TestBatchRetroactiveExclusion(t *testing.T) {
	b := genBuild(20240504, 1200)
	batch := core.Run(inputFromBuild(b))
	if batch.Preprocess.ExcludedCerts == 0 || len(batch.Preprocess.InterceptionIssuers) == 0 {
		t.Fatal("workload exercises no §3.2 exclusions; the test is vacuous")
	}
	in := inputFromBuild(b)
	in.Raw = nil
	certs := certRecords(b)

	for _, n := range []int{1, 2, 4} {
		s := newSharded(t, n, in, nil)
		feedBatches(t, s, certs, b.Raw.Conns, 256)
		s.Drain()
		got := s.Analysis()
		if !reflect.DeepEqual(batch.Preprocess, got.Preprocess) {
			t.Errorf("shards=%d: batched preprocess verdict differs from batch pipeline:\n got %+v\nwant %+v",
				n, got.Preprocess, batch.Preprocess)
		}
		st := s.Stats()
		if st.ExcludedCerts != batch.Preprocess.ExcludedCerts {
			t.Errorf("shards=%d: Stats.ExcludedCerts = %d, want %d",
				n, st.ExcludedCerts, batch.Preprocess.ExcludedCerts)
		}
	}
}

// TestBatchBufferReuse pins the ownership contract the batch readers
// rely on: IngestConnBatch/IngestCertBatch copy before returning, so the
// caller may overwrite its batch buffer immediately — exactly what
// ForEachSSLBatch's reused slice does.
func TestBatchBufferReuse(t *testing.T) {
	b := genBuild(99, 1000)
	batch := core.Run(inputFromBuild(b))
	in := inputFromBuild(b)
	in.Raw = nil
	certs := certRecords(b)

	e := newEngine(t, in, nil)
	cbuf := make([]core.CertRecord, 64)
	for lo := 0; lo < len(certs); lo += len(cbuf) {
		n := copy(cbuf, certs[lo:])
		e.IngestCertBatch(cbuf[:n])
		for i := range cbuf[:n] { // scribble over the reused buffer
			cbuf[i] = core.CertRecord{}
		}
	}
	buf := make([]core.ConnRecord, 64)
	for lo := 0; lo < len(b.Raw.Conns); lo += len(buf) {
		n := copy(buf, b.Raw.Conns[lo:])
		e.IngestConnBatch(buf[:n])
		for i := range buf[:n] {
			buf[i] = core.ConnRecord{}
		}
	}
	e.Drain()
	if got := e.Analysis(); !reflect.DeepEqual(batch, got) {
		t.Error("analysis differs after batch-buffer reuse: ingest retained caller memory")
	}
}
