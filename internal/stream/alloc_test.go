package stream

import (
	"testing"

	"repro/internal/race"
)

// TestIngestBatchAllocGate pins the steady-state allocation budget of
// batched ingest, end to end: the caller-side copy into a pooled batch,
// the channel hop, and the apply loop folding events into engine state
// (AllocsPerRun counts process-wide, so the apply goroutine's work is
// included). Measured per event over 512-event batches on a warm engine
// — slice growth, usage maps, and the enrichment memos are all
// populated, which is how a long-lived daemon spends almost all of its
// time. The seed's per-event path spent >10 allocations per event here;
// the gate holds batched ingest an order of magnitude below that so a
// regression (a dropped pool, a per-event box) cannot hide.
func TestIngestBatchAllocGate(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts include race-detector bookkeeping under -race")
	}

	b := genBuild(20240504, 1200)
	in := inputFromBuild(b)
	in.Raw = nil
	e := newEngine(t, in, nil)

	certs := certRecords(b)
	if got := e.IngestCertBatch(certs); got != len(certs) {
		t.Fatalf("cert warmup accepted %d of %d", got, len(certs))
	}
	if got := e.IngestConnBatch(b.Raw.Conns); got != len(b.Raw.Conns) {
		t.Fatalf("conn warmup accepted %d of %d", got, len(b.Raw.Conns))
	}
	e.Drain()

	const batchSize = 512
	if len(b.Raw.Conns) < batchSize {
		t.Fatalf("workload too small: %d conns", len(b.Raw.Conns))
	}
	batch := b.Raw.Conns[:batchSize]
	perBatch := testing.AllocsPerRun(50, func() {
		if got := e.IngestConnBatch(batch); got != batchSize {
			t.Fatalf("batch accepted %d of %d", got, batchSize)
		}
		e.Drain()
	})
	if perEvent := perBatch / batchSize; perEvent > 1.5 {
		t.Errorf("batched ingest: %.2f allocs/event steady-state (%.0f per 512-batch), want <= 1.5",
			perEvent, perBatch)
	}
}
