package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/interception"
)

// ErrStaleCursor marks an Export call whose cursor cannot be served
// incrementally: the epoch does not match (the engine restarted with a
// fresh sequence numbering) or the cursor is beyond the engine's next
// sequence. The caller must discard its accumulated view and re-sync
// from a full snapshot (since 0).
var ErrStaleCursor = errors.New("stream: stale export cursor")

// ErrExportDisabled marks an Export call on an engine that was not
// configured with Config.TrackExport.
var ErrExportDisabled = errors.New("stream: export requires Config.TrackExport")

// ExportCert is one roster certificate stamped with the sequence of its
// first observation.
type ExportCert struct {
	Seq  uint64
	Cert *certmodel.CertInfo
}

// ExportConn is one retained connection stamped with its global ingest
// sequence.
type ExportConn struct {
	Seq  uint64
	Conn core.ConnRecord
}

// ExportState is a cursor-addressable snapshot of an engine's raw state:
// everything an aggregator needs to reproduce this sensor's contribution
// to a merged analysis. Certs and Conns are ascending by sequence and —
// on a delta export — contain only records first observed at or after
// Since. Evidence is always the full cumulative detector state (the
// relations are monotone and small next to the record stream, and a
// confirmed-issuer verdict needs the whole history, not a window).
type ExportState struct {
	// Epoch scopes the sequence numbering; NextSeq is the cursor a caller
	// passes as since on its next delta export.
	Epoch   uint64
	Since   uint64
	NextSeq uint64

	ConnsIngested uint64
	CertsIngested uint64
	Watermark     time.Time

	// Retention is the sensor's connection retention window (zero = keep
	// everything). An aggregator folding deltas must know it: connections
	// shipped in earlier deltas fall out of this window as the watermark
	// advances, and keeping them would diverge from a daemon tailing the
	// union of the logs.
	Retention time.Duration

	Certs    []ExportCert
	Conns    []ExportConn
	Evidence *interception.Evidence
}

// newEpoch derives a nonzero epoch for a fresh sequence numbering.
func newEpoch() uint64 {
	e := uint64(time.Now().UnixNano())
	if e == 0 {
		e = 1
	}
	return e
}

// Export snapshots the engine's raw state at or after cursor since,
// copying under the state lock exactly as WriteCheckpoint does. since 0
// is a full snapshot (epoch is ignored); a nonzero since must carry the
// epoch of the export it was taken from, and a mismatch — or a cursor
// beyond NextSeq — returns ErrStaleCursor. Connections already evicted
// by retention are not replayed into a delta, mirroring what the
// engine's own reports describe.
func (e *Engine) Export(since, epoch uint64) (*ExportState, error) {
	if !e.cfg.TrackExport {
		return nil, ErrExportDisabled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if since > 0 && epoch != e.epoch {
		return nil, fmt.Errorf("%w: epoch %d, engine has %d", ErrStaleCursor, epoch, e.epoch)
	}
	if since > e.nextSeq {
		return nil, fmt.Errorf("%w: since %d beyond next sequence %d", ErrStaleCursor, since, e.nextSeq)
	}
	st := &ExportState{
		Epoch:         e.epoch,
		Since:         since,
		NextSeq:       e.nextSeq,
		ConnsIngested: e.connsIngested,
		CertsIngested: e.certsIngested,
		Watermark:     e.watermark,
		Retention:     e.cfg.Retention,
		Evidence:      e.icpt.Evidence(),
	}
	for fp, seq := range e.certSeqs {
		if seq < since {
			continue
		}
		if c := e.st.Cert(fp); c != nil {
			st.Certs = append(st.Certs, ExportCert{Seq: seq, Cert: c})
		}
	}
	e.st.Conns(func(rec *core.ConnRecord, seq uint64) bool {
		if seq >= since {
			st.Conns = append(st.Conns, ExportConn{Seq: seq, Conn: *rec})
		}
		return true
	})
	sortExport(st)
	return st, nil
}

// Export snapshots the sharded deployment as one state: the router lock
// is held so no new sequences are assigned, each shard is drained so
// every already-assigned sequence is applied (otherwise a cursor could
// advance past in-flight records and a delta would skip them forever),
// and the per-shard streams are collected back into one ascending
// sequence order. Requires Config.TrackExport.
func (s *Sharded) Export(since, epoch uint64) (*ExportState, error) {
	if s.single != nil {
		return s.single.Export(since, epoch)
	}
	if !s.cfg.TrackExport {
		return nil, ErrExportDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if since > 0 && epoch != s.epoch {
		return nil, fmt.Errorf("%w: epoch %d, router has %d", ErrStaleCursor, epoch, s.epoch)
	}
	if since > s.nextSeq {
		return nil, fmt.Errorf("%w: since %d beyond next sequence %d", ErrStaleCursor, since, s.nextSeq)
	}
	// Drain without the shard state locks: the apply goroutines never
	// take the router lock, so they make progress while we hold it.
	for _, e := range s.shards {
		e.Drain()
	}
	st := &ExportState{
		Epoch:     s.epoch,
		Since:     since,
		NextSeq:   s.nextSeq,
		Retention: s.cfg.Retention,
	}
	im := interception.NewMerge(2)
	for _, e := range s.shards {
		e.mu.Lock()
		st.ConnsIngested += e.connsIngested
		if e.watermark.After(st.Watermark) {
			st.Watermark = e.watermark
		}
		e.st.Conns(func(rec *core.ConnRecord, seq uint64) bool {
			if seq >= since {
				st.Conns = append(st.Conns, ExportConn{Seq: seq, Conn: *rec})
			}
			return true
		})
		im.Absorb(e.icpt)
		e.mu.Unlock()
	}
	st.CertsIngested = s.certsRouted
	for _, ent := range s.rv {
		if ent.cert == nil || ent.seq < since {
			continue
		}
		st.Certs = append(st.Certs, ExportCert{Seq: ent.seq, Cert: ent.cert})
	}
	st.Evidence = im.Evidence()
	sortExport(st)
	return st, nil
}

// sortExport orders both record streams ascending by sequence. Ties
// cannot occur between connections (each consumed a distinct sequence);
// certificates restored from a pre-export checkpoint may all carry
// sequence 0, where fingerprint order keeps the output deterministic.
func sortExport(st *ExportState) {
	sort.Slice(st.Certs, func(i, j int) bool {
		if st.Certs[i].Seq != st.Certs[j].Seq {
			return st.Certs[i].Seq < st.Certs[j].Seq
		}
		return st.Certs[i].Cert.Fingerprint < st.Certs[j].Cert.Fingerprint
	})
	sort.Slice(st.Conns, func(i, j int) bool { return st.Conns[i].Seq < st.Conns[j].Seq })
}
