package nerlite

// Embedded lexicons. These stand in for the training data behind spaCy's
// en_core_web_trf model and the Kaggle company datasets the paper matches
// against (§6.1.1). They intentionally cover the name space the workload
// generator draws from plus common English names, so the recognizer's
// measured precision/recall on generated data is meaningful.

// firstNames is a compact census-style first-name lexicon.
var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
	"lisa", "daniel", "nancy", "matthew", "betty", "anthony", "sandra",
	"mark", "margaret", "donald", "ashley", "steven", "kimberly", "andrew",
	"emily", "paul", "donna", "joshua", "michelle", "kenneth", "carol",
	"kevin", "amanda", "brian", "melissa", "george", "deborah", "timothy",
	"stephanie", "ronald", "rebecca", "jason", "sharon", "edward", "laura",
	"jeffrey", "cynthia", "ryan", "dorothy", "jacob", "amy", "gary", "kathleen",
	"nicholas", "angela", "eric", "shirley", "jonathan", "brenda", "stephen",
	"emma", "larry", "anna", "justin", "pamela", "scott", "nicole", "brandon",
	"samantha", "benjamin", "katherine", "samuel", "christine", "gregory",
	"helen", "alexander", "debra", "patrick", "rachel", "frank", "carolyn",
	"raymond", "janet", "jack", "maria", "dennis", "olivia", "jerry",
	"heather", "tyler", "diane", "aaron", "julie", "jose", "joyce", "adam",
	"victoria", "nathan", "ruth", "henry", "virginia", "zachary", "lauren",
	"douglas", "kelly", "peter", "christina", "kyle", "joan", "noah",
	"evelyn", "ethan", "judith", "jeremy", "andrea", "walter", "hannah",
	"christian", "megan", "keith", "alice", "roger", "jacqueline", "terry",
	"gloria", "austin", "teresa", "sean", "sara", "gerald", "janice",
	"carl", "doris", "dylan", "julia", "harold", "marie", "jordan", "grace",
	"jesse", "judy", "bryan", "theresa", "lawrence", "madison", "arthur",
	"beverly", "gabriel", "denise", "bruce", "marilyn", "logan", "amber",
	"wei", "ming", "hiroshi", "yuki", "ahmed", "fatima", "raj", "priya",
	"ivan", "olga", "hans", "greta", "pierre", "claire", "diego", "lucia",
	"hongying", "yizhe", "hyeonmin", "guancheng", "yixin",
}

// lastNames is a compact surname lexicon.
var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
	"parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
	"morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
	"cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
	"kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
	"wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
	"price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
	"ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
	"sullivan", "bell", "coleman", "butler", "henderson", "barnes",
	"gonzales", "fisher", "vasquez", "simmons", "romero", "jordan",
	"patterson", "alexander", "hamilton", "graham", "reynolds", "griffin",
	"wallace", "moreno", "west", "cole", "hayes", "bryant", "herrera",
	"gibson", "ellis", "tran", "medina", "aguilar", "stevens", "murray",
	"ford", "castro", "marshall", "owens", "harrison", "fernandez",
	"mcdonald", "woods", "washington", "kennedy", "wells", "vargas",
	"chen", "wang", "li", "zhang", "liu", "yang", "huang", "zhao", "wu",
	"zhou", "xu", "sun", "ma", "zhu", "hu", "guo", "he", "gao", "lin",
	"tanaka", "suzuki", "sato", "yamamoto", "nakamura", "singh", "kumar",
	"sharma", "gupta", "ali", "khan", "hussein", "dong", "du", "tu",
	"mueller", "schmidt", "schneider", "fischer", "weber", "meyer",
	"ivanov", "petrov", "sokolov", "dubois", "moreau", "rossi", "ferrari",
}

// orgKeywords are organization indicators: legal suffixes and sector
// words. A string containing one of these (as a token) leans ORG.
var orgKeywords = []string{
	"inc", "inc.", "ltd", "ltd.", "llc", "corp", "corp.", "corporation",
	"company", "co.", "gmbh", "pty", "plc", "sa", "ag", "bv", "oy",
	"university", "college", "institute", "school", "hospital", "clinic",
	"laboratories", "labs", "systems", "solutions", "services", "software",
	"technologies", "technology", "networks", "communications", "security",
	"medical", "electronics", "industries", "group", "holdings", "partners",
	"association", "foundation", "authority", "agency", "department",
	"bank", "insurance", "consulting", "enterprises", "international",
}

// knownOrgs is the company-name dataset equivalent: names the paper's
// tables mention plus a spread of real vendors.
var knownOrgs = []string{
	"globus online", "guardicore", "viptelaclient", "outset medical",
	"idrive inc", "honeywell international inc", "splunk", "rapid7",
	"amazon web services", "amazon", "microsoft", "apple", "google",
	"cisco systems", "filewave", "digicert inc", "let's encrypt",
	"godaddy.com", "identrust", "sectigo", "globalsign", "entrust",
	"lenovo", "samsung", "at&t", "red hat", "crestron electronics",
	"american psychiatric association", "leidos", "mixpanel",
	"fireboard labs", "dvtel", "sds", "fnmt-rcm", "icelink", "twilio",
	"bluetriton brands", "sap national security services",
}

// knownProducts are product/protocol identifiers observed in CN fields
// (§6.3: WebRTC 88%, twilio, hangouts, Android Keystore, Hybrid Runbook
// Worker, Lenovo products...).
var knownProducts = []string{
	"webrtc", "hangouts", "twilio", "android keystore",
	"hybrid runbook worker", "thinkpad", "ideapad", "galaxy",
	"media-server", "rcgen", "openpgp to x.509 bridge", "icelink",
	"firehose", "azure sphere", "iphone", "ipad", "webex",
}

var (
	firstNameSet  = toSet(firstNames)
	lastNameSet   = toSet(lastNames)
	orgKeywordSet = toSet(orgKeywords)
)

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
