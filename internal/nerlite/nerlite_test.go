package nerlite

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestRecognizePerson(t *testing.T) {
	people := []string{"John Smith", "mary johnson", "Wei Chen", "Sarah  Lee", "James Robert Wilson"}
	for _, p := range people {
		if got := Recognize(p); got != LabelPerson {
			t.Errorf("Recognize(%q) = %v, want PERSON", p, got)
		}
	}
	notPeople := []string{"John", "Smith", "host01 smith", "John Smith Inc", "a b c d", ""}
	for _, p := range notPeople {
		if got := Recognize(p); got == LabelPerson {
			t.Errorf("Recognize(%q) = PERSON, want not", p)
		}
	}
}

func TestRecognizeOrg(t *testing.T) {
	orgs := []string{
		"Honeywell International Inc", "Outset Medical", "Acme Widgets Ltd",
		"University of Somewhere", "GuardiCore", "Globus Online",
		"Crestron Electronics Inc",
	}
	for _, o := range orgs {
		if got := Recognize(o); got != LabelOrg {
			t.Errorf("Recognize(%q) = %v, want ORG", o, got)
		}
	}
}

func TestRecognizeProduct(t *testing.T) {
	products := []string{"WebRTC", "twilio", "hangouts", "Android Keystore", "Hybrid Runbook Worker"}
	for _, p := range products {
		if got := Recognize(p); got != LabelProduct {
			t.Errorf("Recognize(%q) = %v, want PRODUCT", p, got)
		}
	}
}

func TestRecognizeNone(t *testing.T) {
	for _, s := range []string{"", "   ", "x9f2k1", "__transfer__"} {
		if got := Recognize(s); got != LabelNone {
			t.Errorf("Recognize(%q) = %v, want NONE", s, got)
		}
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity("globus online", "globus online"); got < 0.999 {
		t.Fatalf("identical strings sim = %f", got)
	}
	if got := CosineSimilarity("globus online", "globus  ONLINE"); got < 0.999 {
		t.Fatalf("normalized strings sim = %f", got)
	}
	if got := CosineSimilarity("globus online", "zzqx"); got > 0.3 {
		t.Fatalf("unrelated strings sim = %f", got)
	}
	if CosineSimilarity("", "x") != 0 {
		t.Fatal("empty string sim should be 0")
	}
	// Near-duplicates (the fuzzy-match use case) score high.
	if got := CosineSimilarity("honeywell international inc", "honeywell international inc."); got < 0.9 {
		t.Fatalf("near-duplicate sim = %f", got)
	}
}

func TestIsUUID(t *testing.T) {
	if !IsUUID("123e4567-e89b-12d3-a456-426614174000") {
		t.Fatal("valid UUID rejected")
	}
	bad := []string{
		"123e4567-e89b-12d3-a456-42661417400",   // 35 chars
		"123e4567-e89b-12d3-a456-4266141740000", // 37
		"123e4567ae89ba12d3aa456a426614174000",  // no dashes
		"123e4567-e89b-12d3-a456-42661417400g",  // non-hex
	}
	for _, b := range bad {
		if IsUUID(b) {
			t.Errorf("IsUUID(%q) = true", b)
		}
	}
}

func TestIsHexString(t *testing.T) {
	if !IsHexString("deadBEEF01") {
		t.Fatal("hex rejected")
	}
	if IsHexString("xyz") || IsHexString("ab") || IsHexString("deadbeefg") {
		t.Fatal("non-hex accepted")
	}
}

func TestShannonEntropy(t *testing.T) {
	if ShannonEntropy("") != 0 {
		t.Fatal("empty entropy should be 0")
	}
	if ShannonEntropy("aaaaaaaa") != 0 {
		t.Fatal("uniform string entropy should be 0")
	}
	if ShannonEntropy("abcdefgh") <= ShannonEntropy("aabbccdd") {
		t.Fatal("more diverse string should have higher entropy")
	}
}

func TestIsRandomString(t *testing.T) {
	random := []string{
		"123e4567-e89b-12d3-a456-426614174000", // UUID
		"a3f9c2e1",                             // 8-char hex (Table 13: 81.6% of shared-cert random strings)
		"9f86d081884c7d659a2feaa0c55ad015",     // 32-char hash
		"x7Kq9mP2zR4tW8vN3bJ6",                 // high-entropy mixed
	}
	for _, r := range random {
		if !IsRandomString(r) {
			t.Errorf("IsRandomString(%q) = false, want true", r)
		}
	}
	notRandom := []string{
		"WebRTC", "hangouts", "__transfer__", "Dtls", "hmpp",
		"John Smith", "mail server one", "localhost", "server",
		"FXP DCAU Cert", "",
	}
	for _, r := range notRandom {
		if IsRandomString(r) {
			t.Errorf("IsRandomString(%q) = true, want false", r)
		}
	}
}

// Measured precision/recall of the person recognizer on a generated
// population — the paper reports 0.9/0.9 for spaCy; our lexicon NER must
// reach at least that on its own name space.
func TestPersonPrecisionRecall(t *testing.T) {
	rng := ids.NewRNG(77)
	var tp, fn, fp int
	// Positives: lexicon combinations.
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("%s %s", title(firstNames[rng.Intn(len(firstNames))]), title(lastNames[rng.Intn(len(lastNames))]))
		if IsPersonName(name) {
			tp++
		} else {
			fn++
		}
	}
	// Negatives: hostnames, IDs, orgs.
	negatives := []string{"host-0042", "ab12cd34", "Internet Widgits Pty Ltd", "dev machine", "mx01 cluster"}
	for i := 0; i < 500; i++ {
		if IsPersonName(negatives[i%len(negatives)]) {
			fp++
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	if precision < 0.9 || recall < 0.9 {
		t.Fatalf("precision=%.3f recall=%.3f, want both >= 0.9", precision, recall)
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]&^0x20) + s[1:]
}

func TestLabelString(t *testing.T) {
	if LabelPerson.String() != "PERSON" || LabelOrg.String() != "ORG" ||
		LabelProduct.String() != "PRODUCT" || LabelNone.String() != "NONE" {
		t.Fatal("label strings wrong")
	}
}

// Property: CosineSimilarity is symmetric and bounded.
func TestCosineProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1 := CosineSimilarity(a, b)
		s2 := CosineSimilarity(b, a)
		return s1 >= 0 && s1 <= 1.0000001 && (s1-s2) < 1e-9 && (s2-s1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: classifier functions never panic and IsUUID implies
// IsRandomString.
func TestRandomnessProperty(t *testing.T) {
	f := func(s string) bool {
		_ = ShannonEntropy(s)
		_ = IsHexString(s)
		r := IsRandomString(s)
		if IsUUID(s) && !r {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
