// Package nerlite is the reproduction's named-entity recognizer and
// random-string classifier — the substitute for spaCy's en_core_web_trf
// pipeline and the company-name datasets of §6.1.1 (see DESIGN.md §2).
//
// It labels free-text CN/SAN values as PERSON, ORG, or PRODUCT using
// embedded lexicons, legal-suffix rules, and character-vector cosine
// similarity (the paper's 0.9-threshold company matching), and it
// classifies unidentified strings as random or non-random using entropy,
// UUID/hex shape detection, and length buckets (Table 9's strlen 8/32/36).
package nerlite

import (
	"math"
	"slices"
	"strings"
)

// Label is the recognizer's output class.
type Label int

const (
	LabelNone Label = iota
	LabelPerson
	LabelOrg
	LabelProduct
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case LabelPerson:
		return "PERSON"
	case LabelOrg:
		return "ORG"
	case LabelProduct:
		return "PRODUCT"
	default:
		return "NONE"
	}
}

// Recognize labels a free-text string. Precedence mirrors the paper's
// classification order: product identifiers are checked before generic
// organization matching (product names often embed their company's name),
// and personal names require both a first- and last-name lexicon hit.
func Recognize(s string) Label {
	norm := normalize(s)
	if norm == "" {
		return LabelNone
	}
	if isProduct(norm) {
		return LabelProduct
	}
	if isOrg(norm) {
		return LabelOrg
	}
	if IsPersonName(s) {
		return LabelPerson
	}
	return LabelNone
}

// IsPersonName reports whether s looks like "First Last" (2–3 alphabetic
// tokens with at least one first-name and one last-name lexicon hit).
func IsPersonName(s string) bool {
	tokens := strings.Fields(normalize(s))
	if len(tokens) < 2 || len(tokens) > 3 {
		return false
	}
	for _, tok := range tokens {
		if !alphaOnly(tok) {
			return false
		}
	}
	first := firstNameSet[tokens[0]]
	last := lastNameSet[tokens[len(tokens)-1]]
	return first && last
}

func isProduct(norm string) bool {
	for _, p := range knownProducts {
		if norm == p || strings.Contains(norm, p) {
			return true
		}
	}
	return false
}

// knownOrgVectors caches the company dataset's bigram vectors; computing
// them per Recognize call dominated classification cost.
var knownOrgVectors = func() []Vector {
	vs := make([]Vector, len(knownOrgs))
	for i, org := range knownOrgs {
		vs[i] = bigramVector(org)
	}
	return vs
}()

func isOrg(norm string) bool {
	// Exact / cosine match against the company dataset.
	nv := bigramVector(norm)
	for i, org := range knownOrgs {
		if norm == org {
			return true
		}
		if cosineVectors(nv, knownOrgVectors[i]) >= 0.9 {
			return true
		}
	}
	// Legal-suffix and sector-keyword rule.
	for _, tok := range strings.Fields(norm) {
		if orgKeywordSet[strings.Trim(tok, ".,")] {
			return true
		}
	}
	return false
}

// CosineSimilarity computes cosine similarity between character-bigram
// frequency vectors of a and b — the word-vector comparison of §6.1.1,
// realized without a trained embedding. Returns a value in [0, 1].
func CosineSimilarity(a, b string) float64 {
	return cosineVectors(bigramVector(normalize(a)), bigramVector(normalize(b)))
}

// Vector is a precomputed character-bigram frequency vector, for callers
// that compare many strings against a fixed lexicon: build each side once
// with NewVector and compare with Cosine, instead of re-deriving both
// vectors per CosineSimilarity call. The representation is a sorted
// run-length encoding (gram code, count) with the L2 norm precomputed,
// so a cosine is one linear merge — no map iteration on the hot path.
type Vector struct {
	grams  []uint32
	counts []float64
	norm   float64
}

// NewVector builds the bigram vector CosineSimilarity would use for s.
func NewVector(s string) Vector { return bigramVector(normalize(s)) }

// Cosine is CosineSimilarity over precomputed vectors.
func Cosine(a, b Vector) float64 { return cosineVectors(a, b) }

func cosineVectors(va, vb Vector) float64 {
	if va.norm == 0 || vb.norm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(va.grams) && j < len(vb.grams) {
		switch {
		case va.grams[i] == vb.grams[j]:
			dot += va.counts[i] * vb.counts[j]
			i++
			j++
		case va.grams[i] < vb.grams[j]:
			i++
		default:
			j++
		}
	}
	return dot / (va.norm * vb.norm)
}

// bigramVector encodes each byte bigram of s as a uint32 code; a
// single-byte string contributes one distinct out-of-band code (the old
// map form keyed "a" and "ab" differently, so 1-byte codes must never
// collide with 2-byte ones).
func bigramVector(s string) Vector {
	if s == "" {
		return Vector{}
	}
	if len(s) < 2 {
		return Vector{grams: []uint32{1<<16 | uint32(s[0])}, counts: []float64{1}, norm: 1}
	}
	codes := make([]uint32, len(s)-1)
	for i := 0; i+2 <= len(s); i++ {
		codes[i] = uint32(s[i])<<8 | uint32(s[i+1])
	}
	slices.Sort(codes)
	v := Vector{grams: codes[:0:len(codes)], counts: make([]float64, 0, len(codes))}
	for i := 0; i < len(codes); {
		j := i
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		c := float64(j - i)
		code := codes[i]
		v.grams = append(v.grams, code)
		v.counts = append(v.counts, c)
		v.norm += c * c
		i = j
	}
	v.norm = math.Sqrt(v.norm)
	return v
}

// IsUUID reports the canonical 8-4-4-4-12 hex UUID shape (Table 9's
// strlen-36 bucket).
func IsUUID(s string) bool {
	if len(s) != 36 {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch i {
		case 8, 13, 18, 23:
			if s[i] != '-' {
				return false
			}
		default:
			if !isHexDigit(s[i]) {
				return false
			}
		}
	}
	return true
}

// IsHexString reports whether s is entirely hex digits (length ≥ 4).
func IsHexString(s string) bool {
	if len(s) < 4 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// ShannonEntropy returns bits/character of s.
func ShannonEntropy(s string) float64 {
	if s == "" {
		return 0
	}
	var freq [256]int
	for i := 0; i < len(s); i++ {
		freq[s[i]]++
	}
	var h float64
	n := float64(len(s))
	for _, c := range freq {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// IsRandomString classifies a string as machine-generated: UUIDs, hex
// blobs, and high-entropy alphanumeric identifiers count as random;
// dictionary-ish text, words with spaces, and short mnemonics do not.
// This implements Table 9's random/non-random split.
func IsRandomString(s string) bool {
	s = strings.TrimSpace(s)
	if len(s) < 6 {
		return false
	}
	if strings.ContainsAny(s, " \t") {
		return false
	}
	if IsUUID(s) {
		return true
	}
	if IsHexString(s) && len(s) >= 8 {
		return true
	}
	// Mixed-alphanumeric identifiers: random when entropy is high and the
	// vowel structure of natural words is absent.
	letters, digits := 0, 0
	vowels := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			letters++
			switch c | 0x20 {
			case 'a', 'e', 'i', 'o', 'u':
				vowels++
			}
		}
	}
	alnum := letters + digits
	if alnum < len(s)*9/10 {
		return false // punctuation-heavy: structured, not random
	}
	entropy := ShannonEntropy(s)
	if digits > 0 && letters > 0 && entropy >= 3.2 && len(s) >= 12 {
		return true
	}
	// All-letter strings: random only when vowel density is implausibly
	// low for natural language and entropy is high.
	if letters == alnum && len(s) >= 16 && entropy >= 3.8 {
		return float64(vowels)/float64(letters) < 0.2
	}
	return false
}

func normalize(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

func alphaOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i] | 0x20
		if c < 'a' || c > 'z' {
			return false
		}
	}
	return len(s) > 0
}
