// Package nerlite is the reproduction's named-entity recognizer and
// random-string classifier — the substitute for spaCy's en_core_web_trf
// pipeline and the company-name datasets of §6.1.1 (see DESIGN.md §2).
//
// It labels free-text CN/SAN values as PERSON, ORG, or PRODUCT using
// embedded lexicons, legal-suffix rules, and character-vector cosine
// similarity (the paper's 0.9-threshold company matching), and it
// classifies unidentified strings as random or non-random using entropy,
// UUID/hex shape detection, and length buckets (Table 9's strlen 8/32/36).
package nerlite

import (
	"math"
	"strings"
)

// Label is the recognizer's output class.
type Label int

const (
	LabelNone Label = iota
	LabelPerson
	LabelOrg
	LabelProduct
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case LabelPerson:
		return "PERSON"
	case LabelOrg:
		return "ORG"
	case LabelProduct:
		return "PRODUCT"
	default:
		return "NONE"
	}
}

// Recognize labels a free-text string. Precedence mirrors the paper's
// classification order: product identifiers are checked before generic
// organization matching (product names often embed their company's name),
// and personal names require both a first- and last-name lexicon hit.
func Recognize(s string) Label {
	norm := normalize(s)
	if norm == "" {
		return LabelNone
	}
	if isProduct(norm) {
		return LabelProduct
	}
	if isOrg(norm) {
		return LabelOrg
	}
	if IsPersonName(s) {
		return LabelPerson
	}
	return LabelNone
}

// IsPersonName reports whether s looks like "First Last" (2–3 alphabetic
// tokens with at least one first-name and one last-name lexicon hit).
func IsPersonName(s string) bool {
	tokens := strings.Fields(normalize(s))
	if len(tokens) < 2 || len(tokens) > 3 {
		return false
	}
	for _, tok := range tokens {
		if !alphaOnly(tok) {
			return false
		}
	}
	first := firstNameSet[tokens[0]]
	last := lastNameSet[tokens[len(tokens)-1]]
	return first && last
}

func isProduct(norm string) bool {
	for _, p := range knownProducts {
		if norm == p || strings.Contains(norm, p) {
			return true
		}
	}
	return false
}

// knownOrgVectors caches the company dataset's bigram vectors; computing
// them per Recognize call dominated classification cost.
var knownOrgVectors = func() []map[string]float64 {
	vs := make([]map[string]float64, len(knownOrgs))
	for i, org := range knownOrgs {
		vs[i] = bigramVector(org)
	}
	return vs
}()

func isOrg(norm string) bool {
	// Exact / cosine match against the company dataset.
	nv := bigramVector(norm)
	for i, org := range knownOrgs {
		if norm == org {
			return true
		}
		if cosineVectors(nv, knownOrgVectors[i]) >= 0.9 {
			return true
		}
	}
	// Legal-suffix and sector-keyword rule.
	for _, tok := range strings.Fields(norm) {
		if orgKeywordSet[strings.Trim(tok, ".,")] {
			return true
		}
	}
	return false
}

// CosineSimilarity computes cosine similarity between character-bigram
// frequency vectors of a and b — the word-vector comparison of §6.1.1,
// realized without a trained embedding. Returns a value in [0, 1].
func CosineSimilarity(a, b string) float64 {
	return cosineVectors(bigramVector(normalize(a)), bigramVector(normalize(b)))
}

func cosineVectors(va, vb map[string]float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range va {
		na += ca * ca
		if cb, ok := vb[g]; ok {
			dot += ca * cb
		}
	}
	for _, cb := range vb {
		nb += cb * cb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func bigramVector(s string) map[string]float64 {
	v := map[string]float64{}
	if len(s) < 2 {
		if s != "" {
			v[s] = 1
		}
		return v
	}
	for i := 0; i+2 <= len(s); i++ {
		v[s[i:i+2]]++
	}
	return v
}

// IsUUID reports the canonical 8-4-4-4-12 hex UUID shape (Table 9's
// strlen-36 bucket).
func IsUUID(s string) bool {
	if len(s) != 36 {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch i {
		case 8, 13, 18, 23:
			if s[i] != '-' {
				return false
			}
		default:
			if !isHexDigit(s[i]) {
				return false
			}
		}
	}
	return true
}

// IsHexString reports whether s is entirely hex digits (length ≥ 4).
func IsHexString(s string) bool {
	if len(s) < 4 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// ShannonEntropy returns bits/character of s.
func ShannonEntropy(s string) float64 {
	if s == "" {
		return 0
	}
	var freq [256]int
	for i := 0; i < len(s); i++ {
		freq[s[i]]++
	}
	var h float64
	n := float64(len(s))
	for _, c := range freq {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// IsRandomString classifies a string as machine-generated: UUIDs, hex
// blobs, and high-entropy alphanumeric identifiers count as random;
// dictionary-ish text, words with spaces, and short mnemonics do not.
// This implements Table 9's random/non-random split.
func IsRandomString(s string) bool {
	s = strings.TrimSpace(s)
	if len(s) < 6 {
		return false
	}
	if strings.ContainsAny(s, " \t") {
		return false
	}
	if IsUUID(s) {
		return true
	}
	if IsHexString(s) && len(s) >= 8 {
		return true
	}
	// Mixed-alphanumeric identifiers: random when entropy is high and the
	// vowel structure of natural words is absent.
	letters, digits := 0, 0
	vowels := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			letters++
			switch c | 0x20 {
			case 'a', 'e', 'i', 'o', 'u':
				vowels++
			}
		}
	}
	alnum := letters + digits
	if alnum < len(s)*9/10 {
		return false // punctuation-heavy: structured, not random
	}
	entropy := ShannonEntropy(s)
	if digits > 0 && letters > 0 && entropy >= 3.2 && len(s) >= 12 {
		return true
	}
	// All-letter strings: random only when vowel density is implausibly
	// low for natural language and entropy is high.
	if letters == alnum && len(s) >= 16 && entropy >= 3.8 {
		return float64(vowels)/float64(letters) < 0.2
	}
	return false
}

func normalize(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

func alphaOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i] | 0x20
		if c < 'a' || c > 'z' {
			return false
		}
	}
	return len(s) > 0
}
