// Package classify implements the paper's issuer categorization (§4.2):
// every client (or server) certificate issuer is assigned to Public or one
// of seven Private subcategories — Corporation, Education, Government,
// WebHosting, Dummy, Others, MissingIssuer — using trust-store membership,
// fuzzy matching on the issuer organization string, and the dummy-issuer
// lexicon of §5.1.1.
package classify

import (
	"strings"
	"sync"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/nerlite"
	"repro/internal/truststore"
)

// Category is the §4.2 issuer category.
type Category int

const (
	// Public: issuer (or chain) found in CCADB or a major trust store.
	Public Category = iota
	// Corporation: issuer organizations recognized as corporation names.
	Corporation
	// Education: universities and schools.
	Education
	// Government: government entities.
	Government
	// WebHosting: web-hosting providers.
	WebHosting
	// Dummy: software/protocol default strings ("Internet Widgits Pty Ltd").
	Dummy
	// Others: non-empty issuers the fuzzy matcher does not recognize.
	Others
	// MissingIssuer: empty issuer organization (and CN).
	MissingIssuer
)

// String renders the category as the paper's table labels.
func (c Category) String() string {
	switch c {
	case Public:
		return "Public"
	case Corporation:
		return "Private - Corporation"
	case Education:
		return "Private - Education"
	case Government:
		return "Private - Government"
	case WebHosting:
		return "Private - WebHosting"
	case Dummy:
		return "Private - Dummy"
	case Others:
		return "Private - Others"
	case MissingIssuer:
		return "Private - MissingIssuer"
	default:
		return "Unknown"
	}
}

// DummyIssuers is the §5.1.1 lexicon: organization names that are default
// strings of certificate tooling rather than real identities.
var DummyIssuers = []string{
	"Internet Widgits Pty Ltd", // OpenSSL default
	"Default Company Ltd",      // OpenSSL alternative default
	"Unspecified",              // some embedded stacks
	"Acme Co",                  // Go crypto/tls example default
	"Some-State",               // OpenSSL field default (seen as org)
	"Example Inc",
	"Test",
}

// IsDummyIssuer reports membership in the dummy lexicon (normalized, with
// a fuzzy tolerance for minor punctuation drift).
func IsDummyIssuer(org string) bool {
	n := norm(org)
	if n == "" {
		return false
	}
	var nv nerlite.Vector
	haveNV := false
	for _, d := range dummyLexicon() {
		if n == d.norm {
			return true
		}
		if !haveNV {
			nv = nerlite.NewVector(n)
			haveNV = true
		}
		if nerlite.Cosine(nv, d.vec) >= 0.95 {
			return true
		}
	}
	return false
}

// dummyLexicon caches the normalized DummyIssuers entries and their
// bigram vectors: the lexicon is fixed, so re-deriving both per
// IsDummyIssuer call only burned allocations on the per-certificate
// classification path.
var dummyLexicon = sync.OnceValue(func() []dummyEntry {
	out := make([]dummyEntry, 0, len(DummyIssuers))
	for _, d := range DummyIssuers {
		dn := norm(d)
		out = append(out, dummyEntry{norm: dn, vec: nerlite.NewVector(dn)})
	}
	return out
})

type dummyEntry struct {
	norm string
	vec  nerlite.Vector
}

// educationMarkers / governmentMarkers / hostingMarkers drive the fuzzy
// category matching on issuer organization strings.
var educationMarkers = []string{
	"university", "college", "school", "institute of technology",
	"academy", "campus",
}

var governmentMarkers = []string{
	"government", "federal", "ministry", "department of", "state of",
	"city of", "county", "national institute", "bureau",
}

var hostingProviders = []string{
	"web hosting", "hosting", "cpanel", "plesk", "ovh", "hetzner",
	"dreamhost", "bluehost", "hostgator", "siteground", "linode",
	"digitalocean",
}

// Classifier assigns issuer categories.
type Classifier struct {
	Bundle *truststore.Bundle
}

// New creates a classifier over the given trust bundle.
func New(b *truststore.Bundle) *Classifier { return &Classifier{Bundle: b} }

// Category classifies a leaf certificate's issuer, consulting chain
// fingerprints for trust-store membership exactly as §4.2 does ("the
// presence of either the issuer of the leaf certificate … or the issuer
// organization in CCADB or major trust stores").
func (c *Classifier) Category(leaf *certmodel.CertInfo, chain []ids.Fingerprint) Category {
	return c.CategoryWith(nil, leaf, chain)
}

// CategoryWith is Category with the string-keyed fuzzy matching memoized
// through m. Only the private-org categorization is cached — it is a
// pure function of the issuer string, whereas the public check depends
// on the presented chain and stays per-certificate. A nil memo is valid
// and uncached.
func (c *Classifier) CategoryWith(m *Memo, leaf *certmodel.CertInfo, chain []ids.Fingerprint) Category {
	if m.classifyLeaf(c.Bundle, leaf, chain) == truststore.Public {
		return Public
	}
	if leaf.MissingIssuer() {
		return MissingIssuer
	}
	return m.CategorizePrivateOrg(leaf.IssuerKey())
}

// Memo caches the issuer-string classification work — the dummy-issuer
// fuzzy match and the private-org categorization, both pure functions of
// the raw issuer string. Distinct issuers number in the hundreds while
// certificates number in the millions, so one map hit replaces a cosine
// similarity over the dummy lexicon plus the marker scans. A nil *Memo
// is valid and simply uncached. Not safe for concurrent use; each
// pipeline worker owns one.
type Memo struct {
	cats  map[string]Category
	dummy map[string]bool
	// issuers memoizes the trust-store issuer membership half of the
	// public check, lazily bound to the first bundle seen (each memo
	// serves exactly one Classifier).
	issuers *truststore.IssuerMemo
}

// classifyLeaf is Bundle.ClassifyLeaf with the leaf-issuer membership
// checks memoized; a nil memo falls through uncached.
func (m *Memo) classifyLeaf(b *truststore.Bundle, leaf *certmodel.CertInfo, chain []ids.Fingerprint) truststore.Class {
	if m == nil {
		return b.ClassifyLeaf(leaf, chain)
	}
	if m.issuers == nil {
		m.issuers = b.NewIssuerMemo()
	}
	return m.issuers.ClassifyLeaf(leaf, chain)
}

// NewMemo creates an empty memo.
func NewMemo() *Memo {
	return &Memo{cats: make(map[string]Category), dummy: make(map[string]bool)}
}

// CategorizePrivateOrg is the memoized CategorizePrivateOrg.
func (m *Memo) CategorizePrivateOrg(org string) Category {
	if m == nil {
		return CategorizePrivateOrg(org)
	}
	if v, ok := m.cats[org]; ok {
		return v
	}
	v := CategorizePrivateOrg(org)
	m.cats[org] = v
	return v
}

// IsDummyIssuer is the memoized IsDummyIssuer.
func (m *Memo) IsDummyIssuer(org string) bool {
	if m == nil {
		return IsDummyIssuer(org)
	}
	if v, ok := m.dummy[org]; ok {
		return v
	}
	v := IsDummyIssuer(org)
	m.dummy[org] = v
	return v
}

// CategorizePrivateOrg maps a private issuer organization string to its
// subcategory using the fuzzy-matching rules.
func CategorizePrivateOrg(org string) Category {
	n := norm(org)
	if n == "" {
		return MissingIssuer
	}
	if IsDummyIssuer(org) {
		return Dummy
	}
	for _, m := range educationMarkers {
		if strings.Contains(n, m) {
			return Education
		}
	}
	for _, m := range governmentMarkers {
		if strings.Contains(n, m) {
			return Government
		}
	}
	for _, m := range hostingProviders {
		if strings.Contains(n, m) {
			return WebHosting
		}
	}
	if nerlite.Recognize(org) == nerlite.LabelOrg {
		return Corporation
	}
	return Others
}

func norm(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}
