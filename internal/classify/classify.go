// Package classify implements the paper's issuer categorization (§4.2):
// every client (or server) certificate issuer is assigned to Public or one
// of seven Private subcategories — Corporation, Education, Government,
// WebHosting, Dummy, Others, MissingIssuer — using trust-store membership,
// fuzzy matching on the issuer organization string, and the dummy-issuer
// lexicon of §5.1.1.
package classify

import (
	"strings"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/nerlite"
	"repro/internal/truststore"
)

// Category is the §4.2 issuer category.
type Category int

const (
	// Public: issuer (or chain) found in CCADB or a major trust store.
	Public Category = iota
	// Corporation: issuer organizations recognized as corporation names.
	Corporation
	// Education: universities and schools.
	Education
	// Government: government entities.
	Government
	// WebHosting: web-hosting providers.
	WebHosting
	// Dummy: software/protocol default strings ("Internet Widgits Pty Ltd").
	Dummy
	// Others: non-empty issuers the fuzzy matcher does not recognize.
	Others
	// MissingIssuer: empty issuer organization (and CN).
	MissingIssuer
)

// String renders the category as the paper's table labels.
func (c Category) String() string {
	switch c {
	case Public:
		return "Public"
	case Corporation:
		return "Private - Corporation"
	case Education:
		return "Private - Education"
	case Government:
		return "Private - Government"
	case WebHosting:
		return "Private - WebHosting"
	case Dummy:
		return "Private - Dummy"
	case Others:
		return "Private - Others"
	case MissingIssuer:
		return "Private - MissingIssuer"
	default:
		return "Unknown"
	}
}

// DummyIssuers is the §5.1.1 lexicon: organization names that are default
// strings of certificate tooling rather than real identities.
var DummyIssuers = []string{
	"Internet Widgits Pty Ltd", // OpenSSL default
	"Default Company Ltd",      // OpenSSL alternative default
	"Unspecified",              // some embedded stacks
	"Acme Co",                  // Go crypto/tls example default
	"Some-State",               // OpenSSL field default (seen as org)
	"Example Inc",
	"Test",
}

// IsDummyIssuer reports membership in the dummy lexicon (normalized, with
// a fuzzy tolerance for minor punctuation drift).
func IsDummyIssuer(org string) bool {
	n := norm(org)
	if n == "" {
		return false
	}
	for _, d := range DummyIssuers {
		dn := norm(d)
		if n == dn {
			return true
		}
		if nerlite.CosineSimilarity(n, dn) >= 0.95 {
			return true
		}
	}
	return false
}

// educationMarkers / governmentMarkers / hostingMarkers drive the fuzzy
// category matching on issuer organization strings.
var educationMarkers = []string{
	"university", "college", "school", "institute of technology",
	"academy", "campus",
}

var governmentMarkers = []string{
	"government", "federal", "ministry", "department of", "state of",
	"city of", "county", "national institute", "bureau",
}

var hostingProviders = []string{
	"web hosting", "hosting", "cpanel", "plesk", "ovh", "hetzner",
	"dreamhost", "bluehost", "hostgator", "siteground", "linode",
	"digitalocean",
}

// Classifier assigns issuer categories.
type Classifier struct {
	Bundle *truststore.Bundle
}

// New creates a classifier over the given trust bundle.
func New(b *truststore.Bundle) *Classifier { return &Classifier{Bundle: b} }

// Category classifies a leaf certificate's issuer, consulting chain
// fingerprints for trust-store membership exactly as §4.2 does ("the
// presence of either the issuer of the leaf certificate … or the issuer
// organization in CCADB or major trust stores").
func (c *Classifier) Category(leaf *certmodel.CertInfo, chain []ids.Fingerprint) Category {
	if c.Bundle.ClassifyLeaf(leaf, chain) == truststore.Public {
		return Public
	}
	if leaf.MissingIssuer() {
		return MissingIssuer
	}
	org := leaf.IssuerKey()
	return CategorizePrivateOrg(org)
}

// CategorizePrivateOrg maps a private issuer organization string to its
// subcategory using the fuzzy-matching rules.
func CategorizePrivateOrg(org string) Category {
	n := norm(org)
	if n == "" {
		return MissingIssuer
	}
	if IsDummyIssuer(org) {
		return Dummy
	}
	for _, m := range educationMarkers {
		if strings.Contains(n, m) {
			return Education
		}
	}
	for _, m := range governmentMarkers {
		if strings.Contains(n, m) {
			return Government
		}
	}
	for _, m := range hostingProviders {
		if strings.Contains(n, m) {
			return WebHosting
		}
	}
	if nerlite.Recognize(org) == nerlite.LabelOrg {
		return Corporation
	}
	return Others
}

func norm(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}
