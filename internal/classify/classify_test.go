package classify

import (
	"testing"

	"repro/internal/certmodel"
	"repro/internal/truststore"
)

func TestIsDummyIssuer(t *testing.T) {
	dummies := []string{
		"Internet Widgits Pty Ltd", "internet widgits pty ltd",
		"Default Company Ltd", "Unspecified", "Acme Co",
	}
	for _, d := range dummies {
		if !IsDummyIssuer(d) {
			t.Errorf("IsDummyIssuer(%q) = false", d)
		}
	}
	real := []string{"", "Globus Online", "DigiCert Inc", "Honeywell International Inc"}
	for _, r := range real {
		if IsDummyIssuer(r) {
			t.Errorf("IsDummyIssuer(%q) = true", r)
		}
	}
}

func TestCategorizePrivateOrg(t *testing.T) {
	cases := []struct {
		org  string
		want Category
	}{
		{"University of Virginia", Education},
		{"Somewhere Community College", Education},
		{"Department of Energy", Government},
		{"State of Confusion", Government},
		{"Acme Web Hosting LLC", WebHosting},
		{"DigitalOcean", WebHosting},
		{"Internet Widgits Pty Ltd", Dummy},
		{"Unspecified", Dummy},
		{"Honeywell International Inc", Corporation},
		{"Outset Medical", Corporation},
		{"GuardiCore", Corporation},
		{"zzqx9", Others},
		{"", MissingIssuer},
	}
	for _, c := range cases {
		if got := CategorizePrivateOrg(c.org); got != c.want {
			t.Errorf("CategorizePrivateOrg(%q) = %v, want %v", c.org, got, c.want)
		}
	}
}

func TestClassifierCategory(t *testing.T) {
	cl := New(truststore.DefaultBundle())
	pub := &certmodel.CertInfo{IssuerOrg: "DigiCert Inc"}
	if got := cl.Category(pub, nil); got != Public {
		t.Fatalf("public issuer = %v", got)
	}
	edu := &certmodel.CertInfo{IssuerOrg: "University of Virginia"}
	if got := cl.Category(edu, nil); got != Education {
		t.Fatalf("education issuer = %v", got)
	}
	missing := &certmodel.CertInfo{}
	if got := cl.Category(missing, nil); got != MissingIssuer {
		t.Fatalf("missing issuer = %v", got)
	}
	// Issuer CN fallback when org is empty.
	cnOnly := &certmodel.CertInfo{IssuerCN: "ViptelaClient"}
	if got := cl.Category(cnOnly, nil); got == MissingIssuer {
		t.Fatal("issuer CN should prevent MissingIssuer")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Public:        "Public",
		Corporation:   "Private - Corporation",
		Education:     "Private - Education",
		Government:    "Private - Government",
		WebHosting:    "Private - WebHosting",
		Dummy:         "Private - Dummy",
		Others:        "Private - Others",
		MissingIssuer: "Private - MissingIssuer",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Category(99).String() != "Unknown" {
		t.Fatal("unknown category string wrong")
	}
}

func TestMemoMatchesUncached(t *testing.T) {
	orgs := []string{
		"Internet Widgits Pty Ltd", "University of Somewhere",
		"Ministry of Testing", "OVH Hosting", "Cisco Systems, Inc.",
		"zx9 qq7", "", "Internet Widgits Pty Ltd", // repeat hits the memo
	}
	m := NewMemo()
	for _, org := range orgs {
		if got, want := m.CategorizePrivateOrg(org), CategorizePrivateOrg(org); got != want {
			t.Errorf("Memo.CategorizePrivateOrg(%q) = %v, want %v", org, got, want)
		}
		if got, want := m.IsDummyIssuer(org), IsDummyIssuer(org); got != want {
			t.Errorf("Memo.IsDummyIssuer(%q) = %v, want %v", org, got, want)
		}
	}
	// A nil memo is valid and uncached.
	var nilMemo *Memo
	if got := nilMemo.CategorizePrivateOrg("Internet Widgits Pty Ltd"); got != Dummy {
		t.Fatalf("nil memo CategorizePrivateOrg = %v, want Dummy", got)
	}
	if !nilMemo.IsDummyIssuer("Internet Widgits Pty Ltd") {
		t.Fatal("nil memo IsDummyIssuer = false, want true")
	}
}
