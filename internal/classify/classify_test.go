package classify

import (
	"testing"

	"repro/internal/certmodel"
	"repro/internal/truststore"
)

func TestIsDummyIssuer(t *testing.T) {
	dummies := []string{
		"Internet Widgits Pty Ltd", "internet widgits pty ltd",
		"Default Company Ltd", "Unspecified", "Acme Co",
	}
	for _, d := range dummies {
		if !IsDummyIssuer(d) {
			t.Errorf("IsDummyIssuer(%q) = false", d)
		}
	}
	real := []string{"", "Globus Online", "DigiCert Inc", "Honeywell International Inc"}
	for _, r := range real {
		if IsDummyIssuer(r) {
			t.Errorf("IsDummyIssuer(%q) = true", r)
		}
	}
}

func TestCategorizePrivateOrg(t *testing.T) {
	cases := []struct {
		org  string
		want Category
	}{
		{"University of Virginia", Education},
		{"Somewhere Community College", Education},
		{"Department of Energy", Government},
		{"State of Confusion", Government},
		{"Acme Web Hosting LLC", WebHosting},
		{"DigitalOcean", WebHosting},
		{"Internet Widgits Pty Ltd", Dummy},
		{"Unspecified", Dummy},
		{"Honeywell International Inc", Corporation},
		{"Outset Medical", Corporation},
		{"GuardiCore", Corporation},
		{"zzqx9", Others},
		{"", MissingIssuer},
	}
	for _, c := range cases {
		if got := CategorizePrivateOrg(c.org); got != c.want {
			t.Errorf("CategorizePrivateOrg(%q) = %v, want %v", c.org, got, c.want)
		}
	}
}

func TestClassifierCategory(t *testing.T) {
	cl := New(truststore.DefaultBundle())
	pub := &certmodel.CertInfo{IssuerOrg: "DigiCert Inc"}
	if got := cl.Category(pub, nil); got != Public {
		t.Fatalf("public issuer = %v", got)
	}
	edu := &certmodel.CertInfo{IssuerOrg: "University of Virginia"}
	if got := cl.Category(edu, nil); got != Education {
		t.Fatalf("education issuer = %v", got)
	}
	missing := &certmodel.CertInfo{}
	if got := cl.Category(missing, nil); got != MissingIssuer {
		t.Fatalf("missing issuer = %v", got)
	}
	// Issuer CN fallback when org is empty.
	cnOnly := &certmodel.CertInfo{IssuerCN: "ViptelaClient"}
	if got := cl.Category(cnOnly, nil); got == MissingIssuer {
		t.Fatal("issuer CN should prevent MissingIssuer")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Public:        "Public",
		Corporation:   "Private - Corporation",
		Education:     "Private - Education",
		Government:    "Private - Government",
		WebHosting:    "Private - WebHosting",
		Dummy:         "Private - Dummy",
		Others:        "Private - Others",
		MissingIssuer: "Private - MissingIssuer",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Category(99).String() != "Unknown" {
		t.Fatal("unknown category string wrong")
	}
}
