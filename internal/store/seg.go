package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Segment files — the disk store's spill segments and the incremental
// checkpoint's delta/base segments — are sequences of self-contained
// frames:
//
//	[1 byte type][4 bytes little-endian payload length][payload][4 bytes CRC32]
//
// The CRC (IEEE, over type+length+payload) makes torn or bit-rotted
// frames detectable: a reader hitting a short or mismatched frame gets
// ErrCorrupt, never a silent half-read. Payloads are opaque here —
// callers gob-encode their own frame structs, each frame with a fresh
// encoder so frames decode independently (random access into spill
// segments, and a truncated tail cannot poison earlier frames).

// ErrCorrupt marks a frame that is truncated or fails its checksum.
var ErrCorrupt = errors.New("store: corrupt segment frame")

// frameOverhead is the fixed bytes around a payload.
const frameOverhead = 1 + 4 + 4

// maxFramePayload bounds a single frame; a length prefix beyond it is
// treated as corruption rather than attempted as an allocation.
const maxFramePayload = 1 << 30

// WriteFrame appends one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("store: frame payload %d exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(sum[:])
	return err
}

// ReadFrame reads the next frame from r. A clean end of file returns
// io.EOF; anything short or checksum-mismatched returns ErrCorrupt.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short checksum", ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return hdr[0], payload, nil
}
