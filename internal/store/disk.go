package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
)

// DefaultHotBytes is the hot-tier budget when the caller passes none.
const DefaultHotBytes = 64 << 20

// spillChunk is how many records one spill frame carries: big enough to
// amortize the per-frame gob type descriptors, small enough that
// faulting one cold certificate back in decodes kilobytes, not the
// whole cold tier.
const spillChunk = 512

// Disk is the tiered store: a hot working set in RAM under an estimated
// byte budget, and a cold remainder spilled to two append-only segment
// files (conns.seg, certs.seg) under dir, addressed by an in-memory
// index. The files are scratch, not a durability layer — nothing is
// fsynced and the directory is recreated on open; crash durability is
// the checkpoint's job. Spilled space is never reclaimed in place
// (eviction drops index entries, re-faulted certificates re-spill to
// fresh offsets); a long-running daemon bounds that growth with its
// checkpoint-restart cycle or a generous disk.
//
// Tier invariants the rest of the file depends on: every certificate
// fingerprint is in exactly one of hotCerts/coldCerts, and every cold
// connection's slot is below every hot connection's slot (spills always
// take the oldest hot prefix), so cold+hot concatenates in slot order.
type Disk struct {
	dir     string
	budget  int64
	tracked bool
	stats   Stats

	// Hot connection tail, append order, slot-aligned.
	hot      []core.ConnRecord
	hotSeqs  []uint64
	hotSlots []uint64
	hotB     int64 // estimated bytes of hot conns

	cold    []coldConn // slot-ascending index over conns.seg
	connSeg *os.File
	connOff int64

	hotCerts  map[ids.Fingerprint]*certmodel.CertInfo
	hotOrder  []ids.Fingerprint // admission order; spills are FIFO
	coldCerts map[ids.Fingerprint]int64
	certB     int64 // estimated bytes of hot certs
	certSeg   *os.File
	certOff   int64

	nextSlot uint64

	// One-frame decode cache: sequential readers (snapshots, restores)
	// touch consecutive index entries that share a frame.
	cacheOff   int64
	cacheConns []core.ConnRecord
	cacheSeqs  []uint64
	cacheSlots []uint64
}

// coldConn locates one spilled, still-retained connection: enough to
// evict and sort without touching disk, plus the frame that holds it.
type coldConn struct {
	slot, seq uint64
	ts        int64 // UnixNano, for eviction
	off       int64 // frame offset in conns.seg
}

// connSpill is the gob payload of one connection spill frame.
type connSpill struct {
	Conns []core.ConnRecord
	Seqs  []uint64
	Slots []uint64
}

// certSpill is the gob payload of one certificate spill frame.
type certSpill struct {
	Certs []*certmodel.CertInfo
}

const (
	frameConnSpill byte = 1
	frameCertSpill byte = 2
)

// OpenDisk creates a tiered store under dir (recreated — segments are
// scratch, not state to recover). hotBytes <= 0 selects DefaultHotBytes.
func OpenDisk(dir string, hotBytes int64, trackSeqs bool) (*Disk, error) {
	if hotBytes <= 0 {
		hotBytes = DefaultHotBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	connSeg, err := os.OpenFile(filepath.Join(dir, "conns.seg"), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	certSeg, err := os.OpenFile(filepath.Join(dir, "certs.seg"), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		connSeg.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Disk{
		dir:       dir,
		budget:    hotBytes,
		tracked:   trackSeqs,
		connSeg:   connSeg,
		certSeg:   certSeg,
		hotCerts:  make(map[ids.Fingerprint]*certmodel.CertInfo),
		coldCerts: make(map[ids.Fingerprint]int64),
		cacheOff:  -1,
	}, nil
}

// connBytes estimates a record's resident size: struct plus string and
// chain payloads. Precision is irrelevant — the estimate only paces
// spilling.
func connBytes(r *core.ConnRecord) int64 {
	n := 160 + len(r.UID) + len(r.OrigIP) + len(r.RespIP) + len(r.Version) + len(r.SNI)
	for _, fp := range r.ServerChain {
		n += 16 + len(fp)
	}
	for _, fp := range r.ClientChain {
		n += 16 + len(fp)
	}
	return int64(n)
}

// certBytes estimates a certificate's resident size.
func certBytes(c *certmodel.CertInfo) int64 {
	n := 240 + len(c.Fingerprint) + len(c.SerialHex) + len(c.IssuerCN) + len(c.IssuerOrg) +
		len(c.SubjectCN) + len(c.SubjectOrg) + len(c.DER)
	for _, s := range c.SANDNS {
		n += 16 + len(s)
	}
	for _, s := range c.SANIP {
		n += 16 + len(s)
	}
	for _, s := range c.SANEmail {
		n += 16 + len(s)
	}
	for _, s := range c.SANURI {
		n += 16 + len(s)
	}
	return int64(n)
}

func (d *Disk) PutCert(c *certmodel.CertInfo) bool {
	if _, ok := d.hotCerts[c.Fingerprint]; ok {
		return false
	}
	if _, ok := d.coldCerts[c.Fingerprint]; ok {
		return false
	}
	d.admitCert(c)
	d.maybeSpill()
	return true
}

// admitCert places c in the hot tier (new or faulted back in).
func (d *Disk) admitCert(c *certmodel.CertInfo) {
	d.hotCerts[c.Fingerprint] = c
	d.hotOrder = append(d.hotOrder, c.Fingerprint)
	d.certB += certBytes(c)
	d.stats.HotCerts.Store(int64(len(d.hotCerts)))
	d.stats.HotBytes.Store(d.hotB + d.certB)
}

func (d *Disk) Cert(fp ids.Fingerprint) *certmodel.CertInfo {
	if c, ok := d.hotCerts[fp]; ok {
		return c
	}
	off, ok := d.coldCerts[fp]
	if !ok {
		return nil
	}
	var sp certSpill
	if err := d.decodeFrame(d.certSeg, off, frameCertSpill, &sp); err != nil {
		// Scratch-file corruption mid-run is unrecoverable state loss;
		// surfacing it as "roster miss" would silently corrupt reports.
		panic(fmt.Sprintf("store: cold certificate fault at %d: %v", off, err))
	}
	var hit *certmodel.CertInfo
	for _, c := range sp.Certs {
		if c.Fingerprint == fp {
			hit = c
			break
		}
	}
	if hit == nil {
		panic(fmt.Sprintf("store: cold index points %s at frame %d which lacks it", fp, off))
	}
	d.stats.Loads.Add(1)
	delete(d.coldCerts, fp)
	d.stats.ColdCerts.Store(int64(len(d.coldCerts)))
	d.admitCert(hit)
	d.maybeSpill()
	return hit
}

func (d *Disk) HasCert(fp ids.Fingerprint) bool {
	if _, ok := d.hotCerts[fp]; ok {
		return true
	}
	_, ok := d.coldCerts[fp]
	return ok
}

func (d *Disk) CertCount() int { return len(d.hotCerts) + len(d.coldCerts) }

// Certs iterates hot then cold. Cold frames are decoded once each;
// faulted copies are not re-admitted (iteration must not reshape the
// tiers under the caller).
func (d *Disk) Certs(fn func(*certmodel.CertInfo) bool) {
	for _, c := range d.hotCerts {
		if !fn(c) {
			return
		}
	}
	if len(d.coldCerts) == 0 {
		return
	}
	offs := make(map[int64]bool, len(d.coldCerts))
	for _, off := range d.coldCerts {
		offs[off] = true
	}
	ordered := make([]int64, 0, len(offs))
	for off := range offs {
		ordered = append(ordered, off)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, off := range ordered {
		var sp certSpill
		if err := d.decodeFrame(d.certSeg, off, frameCertSpill, &sp); err != nil {
			panic(fmt.Sprintf("store: cold certificate frame at %d: %v", off, err))
		}
		for _, c := range sp.Certs {
			// A frame may hold stale copies of certificates later faulted
			// hot and re-spilled elsewhere; the index is the truth.
			if at, ok := d.coldCerts[c.Fingerprint]; ok && at == off {
				if !fn(c) {
					return
				}
			}
		}
	}
}

func (d *Disk) AppendConn(rec *core.ConnRecord, seq uint64) *core.ConnRecord {
	d.hot = append(d.hot, *rec)
	if d.tracked {
		d.hotSeqs = append(d.hotSeqs, seq)
	}
	d.hotSlots = append(d.hotSlots, d.nextSlot)
	d.nextSlot++
	d.hotB += connBytes(rec)
	d.stats.HotConns.Store(int64(len(d.hot)))
	d.stats.HotBytes.Store(d.hotB + d.certB)
	stored := &d.hot[len(d.hot)-1]
	d.maybeSpill()
	return stored
}

func (d *Disk) GrowConns(n int) {
	d.hot = grown(d.hot, n)
	if d.tracked {
		d.hotSeqs = grown(d.hotSeqs, n)
	}
	d.hotSlots = grown(d.hotSlots, n)
}

// maybeSpill moves the colder half of whichever hot tier is heavier to
// its segment file until the estimate fits the budget. Spilling halves
// (not single records) keeps the amortized cost per append O(1) and the
// frames batch-sized.
func (d *Disk) maybeSpill() {
	for d.hotB+d.certB > d.budget {
		if d.hotB >= d.certB && len(d.hot) > 1 {
			d.spillConns(len(d.hot) / 2)
		} else if len(d.hotOrder) > 1 {
			d.spillCerts(len(d.hotCerts) / 2)
		} else {
			return // a single oversized record; nothing sane to spill
		}
	}
}

// spillConns moves the oldest n hot connections to conns.seg.
func (d *Disk) spillConns(n int) {
	for start := 0; start < n; start += spillChunk {
		end := start + spillChunk
		if end > n {
			end = n
		}
		sp := connSpill{Conns: d.hot[start:end], Slots: d.hotSlots[start:end]}
		if d.tracked {
			sp.Seqs = d.hotSeqs[start:end]
		}
		off, err := d.appendFrame(d.connSeg, &d.connOff, frameConnSpill, &sp)
		if err != nil {
			panic(fmt.Sprintf("store: spill conns: %v", err))
		}
		for i := start; i < end; i++ {
			var seq uint64
			if d.tracked {
				seq = d.hotSeqs[i]
			}
			d.cold = append(d.cold, coldConn{
				slot: d.hotSlots[i], seq: seq, ts: d.hot[i].TS.UnixNano(), off: off,
			})
		}
	}
	// Copy the surviving tail into fresh arrays so the old backing
	// array — and the spilled records' string payloads — become
	// collectable. Re-slicing would pin the whole array.
	d.hot = append(make([]core.ConnRecord, 0, max(len(d.hot)-n, 64)), d.hot[n:]...)
	d.hotSlots = append(make([]uint64, 0, cap(d.hot)), d.hotSlots[n:]...)
	if d.tracked {
		d.hotSeqs = append(make([]uint64, 0, cap(d.hot)), d.hotSeqs[n:]...)
	}
	d.hotB = 0
	for i := range d.hot {
		d.hotB += connBytes(&d.hot[i])
	}
	d.stats.Spills.Add(uint64(n))
	d.stats.HotConns.Store(int64(len(d.hot)))
	d.stats.ColdConns.Store(int64(len(d.cold)))
	d.stats.HotBytes.Store(d.hotB + d.certB)
	d.cacheOff = -1
}

// spillCerts moves the n least-recently-admitted hot certificates to
// certs.seg. FIFO by admission: the roster is written once and read at
// enrichment and rebuild time, where recent certificates are the likely
// references.
func (d *Disk) spillCerts(n int) {
	batch := make([]*certmodel.CertInfo, 0, min(n, spillChunk))
	flush := func() {
		if len(batch) == 0 {
			return
		}
		off, err := d.appendFrame(d.certSeg, &d.certOff, frameCertSpill, &certSpill{Certs: batch})
		if err != nil {
			panic(fmt.Sprintf("store: spill certs: %v", err))
		}
		for _, c := range batch {
			delete(d.hotCerts, c.Fingerprint)
			d.coldCerts[c.Fingerprint] = off
			d.certB -= certBytes(c)
		}
		d.stats.Spills.Add(uint64(len(batch)))
		batch = batch[:0]
	}
	spilled := 0
	keep := d.hotOrder[:0]
	for i, fp := range d.hotOrder {
		if spilled >= n {
			keep = append(keep, d.hotOrder[i:]...)
			break
		}
		c, ok := d.hotCerts[fp]
		if !ok {
			continue // already spilled under a duplicate order entry
		}
		batch = append(batch, c)
		spilled++
		if len(batch) == spillChunk {
			flush()
		}
	}
	flush()
	d.hotOrder = append(make([]ids.Fingerprint, 0, max(len(keep), 64)), keep...)
	d.stats.HotCerts.Store(int64(len(d.hotCerts)))
	d.stats.ColdCerts.Store(int64(len(d.coldCerts)))
	d.stats.HotBytes.Store(d.hotB + d.certB)
}

// appendFrame gob-encodes payload and appends it as one frame,
// returning the frame's offset.
func (d *Disk) appendFrame(f *os.File, off *int64, typ byte, payload any) (int64, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return 0, err
	}
	var frame bytes.Buffer
	if err := WriteFrame(&frame, typ, body.Bytes()); err != nil {
		return 0, err
	}
	at := *off
	if _, err := f.WriteAt(frame.Bytes(), at); err != nil {
		return 0, err
	}
	*off = at + int64(frame.Len())
	return at, nil
}

// decodeFrame reads and decodes the frame at off.
func (d *Disk) decodeFrame(f *os.File, off int64, want byte, payload any) error {
	sr := io.NewSectionReader(f, off, 1<<62)
	typ, body, err := ReadFrame(sr)
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("%w: frame type %d, want %d", ErrCorrupt, typ, want)
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(payload)
}

// connFrame returns the decoded spill frame at off, through the
// one-frame cache.
func (d *Disk) connFrame(off int64) ([]core.ConnRecord, []uint64, []uint64) {
	if d.cacheOff == off {
		return d.cacheConns, d.cacheSeqs, d.cacheSlots
	}
	var sp connSpill
	if err := d.decodeFrame(d.connSeg, off, frameConnSpill, &sp); err != nil {
		panic(fmt.Sprintf("store: cold connection frame at %d: %v", off, err))
	}
	d.stats.Loads.Add(uint64(len(sp.Conns)))
	d.cacheOff, d.cacheConns, d.cacheSeqs, d.cacheSlots = off, sp.Conns, sp.Seqs, sp.Slots
	return sp.Conns, sp.Seqs, sp.Slots
}

func (d *Disk) ConnCount() int { return len(d.cold) + len(d.hot) }

func (d *Disk) NextSlot() uint64 { return d.nextSlot }

// appendCold appends copies of the cold records with slot >= mark to
// the given slices, in slot order.
func (d *Disk) appendCold(mark uint64, conns []core.ConnRecord, seqs []uint64) ([]core.ConnRecord, []uint64) {
	lo := sort.Search(len(d.cold), func(i int) bool { return d.cold[i].slot >= mark })
	for _, cc := range d.cold[lo:] {
		fConns, fSeqs, fSlots := d.connFrame(cc.off)
		idx := suffixAt(fSlots, cc.slot)
		if idx >= len(fSlots) || fSlots[idx] != cc.slot {
			panic(fmt.Sprintf("store: cold index slot %d missing from frame %d", cc.slot, cc.off))
		}
		conns = append(conns, fConns[idx])
		if d.tracked {
			seqs = append(seqs, fSeqs[idx])
		}
	}
	return conns, seqs
}

func (d *Disk) ConnsSince(mark uint64) ([]core.ConnRecord, []uint64) {
	var conns []core.ConnRecord
	var seqs []uint64
	conns, seqs = d.appendCold(mark, conns, seqs)
	lo := suffixAt(d.hotSlots, mark)
	conns = append(conns, d.hot[lo:]...)
	if d.tracked {
		seqs = append(seqs, d.hotSeqs[lo:]...)
	}
	return conns, seqs
}

// Conns iterates the retained window in append order: the cold index
// first (decoding each spill frame once through the cache), then the
// hot tail. Pointers into decoded frames stay valid after the
// iteration — decoded buffers are never reused, so a caller retaining
// them just pins the frame copy until it lets go.
func (d *Disk) Conns(fn func(rec *core.ConnRecord, seq uint64) bool) {
	for i := range d.cold {
		cc := &d.cold[i]
		fConns, fSeqs, fSlots := d.connFrame(cc.off)
		idx := suffixAt(fSlots, cc.slot)
		if idx >= len(fSlots) || fSlots[idx] != cc.slot {
			panic(fmt.Sprintf("store: cold index slot %d missing from frame %d", cc.slot, cc.off))
		}
		var seq uint64
		if d.tracked {
			seq = fSeqs[idx]
		}
		if !fn(&fConns[idx], seq) {
			return
		}
	}
	for i := range d.hot {
		var seq uint64
		if d.tracked {
			seq = d.hotSeqs[i]
		}
		if !fn(&d.hot[i], seq) {
			return
		}
	}
}

func (d *Disk) EvictBefore(cutoff time.Time) int {
	nano := cutoff.UnixNano()
	keptCold := d.cold[:0]
	for _, cc := range d.cold {
		if cc.ts >= nano {
			keptCold = append(keptCold, cc)
		}
	}
	dropped := len(d.cold) - len(keptCold)
	d.cold = keptCold

	kept := make([]core.ConnRecord, 0, len(d.hot))
	keptSlots := make([]uint64, 0, len(d.hotSlots))
	var keptSeqs []uint64
	if d.tracked {
		keptSeqs = make([]uint64, 0, len(d.hotSeqs))
	}
	for i := range d.hot {
		if !d.hot[i].TS.Before(cutoff) {
			kept = append(kept, d.hot[i])
			keptSlots = append(keptSlots, d.hotSlots[i])
			if d.tracked {
				keptSeqs = append(keptSeqs, d.hotSeqs[i])
			}
		}
	}
	if len(kept) != len(d.hot) {
		dropped += len(d.hot) - len(kept)
		d.hot, d.hotSlots, d.hotSeqs = kept, keptSlots, keptSeqs
		d.hotB = 0
		for i := range d.hot {
			d.hotB += connBytes(&d.hot[i])
		}
	}
	if dropped > 0 {
		d.stats.HotConns.Store(int64(len(d.hot)))
		d.stats.ColdConns.Store(int64(len(d.cold)))
		d.stats.HotBytes.Store(d.hotB + d.certB)
	}
	return dropped
}

// Snapshot materializes everything: cold connections stream from disk
// into one fresh slice ahead of the hot tail (cold slots all precede
// hot slots, so concatenation preserves append order). O(retained) RAM
// for the duration of whatever the caller does with it — the tiered
// engine's documented materialization cost.
func (d *Disk) Snapshot() Snap {
	conns := make([]core.ConnRecord, 0, len(d.cold)+len(d.hot))
	var seqs []uint64
	if d.tracked {
		seqs = make([]uint64, 0, len(d.cold)+len(d.hot))
	}
	conns, seqs = d.appendCold(0, conns, seqs)
	conns = append(conns, d.hot...)
	if d.tracked {
		seqs = append(seqs, d.hotSeqs...)
	}
	certs := make([]*certmodel.CertInfo, 0, d.CertCount())
	d.Certs(func(c *certmodel.CertInfo) bool {
		certs = append(certs, c)
		return true
	})
	return Snap{Certs: certs, Conns: conns, Seqs: seqs}
}

func (d *Disk) Tiered() bool { return true }

func (d *Disk) Stats() *Stats { return &d.stats }

// Close releases the segment files. Cold records become unreadable;
// call only when the owning engine will not materialize again.
func (d *Disk) Close() error {
	err1 := d.connSeg.Close()
	err2 := d.certSeg.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
