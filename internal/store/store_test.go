package store

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
)

func testCert(i int) *certmodel.CertInfo {
	return &certmodel.CertInfo{
		Fingerprint: ids.Fingerprint(fmt.Sprintf("fp-%04d", i)),
		SubjectCN:   fmt.Sprintf("host-%d.example.org", i),
		IssuerCN:    "Test CA",
		SANDNS:      []string{fmt.Sprintf("host-%d.example.org", i)},
		NotBefore:   time.Unix(1700000000, 0),
		NotAfter:    time.Unix(1800000000, 0),
		KeyAlg:      certmodel.KeyRSA,
		KeyBits:     2048,
	}
}

func testConn(i int) core.ConnRecord {
	return core.ConnRecord{
		TS:          time.Unix(1700000000+int64(i), 0),
		UID:         ids.UID(fmt.Sprintf("C%06d", i)),
		OrigIP:      "10.0.0.1",
		OrigPort:    uint16(10000 + i%50000),
		RespIP:      "10.0.0.2",
		RespPort:    443,
		Version:     "TLSv12",
		SNI:         fmt.Sprintf("host-%d.example.org", i),
		Established: true,
		ServerChain: []ids.Fingerprint{ids.Fingerprint(fmt.Sprintf("fp-%04d", i%97))},
		Weight:      1,
	}
}

// openBoth returns a memory store and a tightly budgeted disk store, so
// every test runs the same scenario against both and the disk store is
// forced through its spill/fault machinery.
func openBoth(t *testing.T, trackSeqs bool) map[string]Store {
	t.Helper()
	mem := NewMem(trackSeqs)
	disk, err := OpenDisk(t.TempDir(), 16<<10, trackSeqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close(); disk.Close() })
	return map[string]Store{"memory": mem, "disk": disk}
}

// TestStoreEquivalence drives both implementations through the same
// append/evict/read scenario and requires identical observable state —
// the contract the engine's byte-identical-reports gate rests on.
func TestStoreEquivalence(t *testing.T) {
	const nCerts, nConns = 200, 3000
	stores := openBoth(t, true)
	type view struct {
		snap    Snap
		since   []core.ConnRecord
		seqs    []uint64
		counts  [2]int
		evicted int
	}
	views := map[string]*view{}
	for name, st := range stores {
		for i := 0; i < nCerts; i++ {
			if !st.PutCert(testCert(i)) {
				t.Fatalf("%s: PutCert %d rejected as duplicate", name, i)
			}
		}
		// Re-put half: duplicates must be refused by both.
		for i := 0; i < nCerts/2; i++ {
			if st.PutCert(testCert(i)) {
				t.Fatalf("%s: duplicate PutCert %d admitted", name, i)
			}
		}
		var mark uint64
		for i := 0; i < nConns; i++ {
			c := testConn(i)
			st.AppendConn(&c, uint64(i+1))
			if i == nConns/2 {
				mark = st.NextSlot()
			}
		}
		evicted := st.EvictBefore(time.Unix(1700000000+nConns/4, 0))
		since, seqs := st.ConnsSince(mark)
		v := &view{
			snap:    st.Snapshot(),
			since:   since,
			seqs:    seqs,
			counts:  [2]int{st.CertCount(), st.ConnCount()},
			evicted: evicted,
		}
		views[name] = v
	}
	m, d := views["memory"], views["disk"]
	if m.counts != d.counts {
		t.Fatalf("counts differ: memory %v, disk %v", m.counts, d.counts)
	}
	if m.evicted != d.evicted {
		t.Fatalf("evicted differ: memory %d, disk %d", m.evicted, d.evicted)
	}
	if !reflect.DeepEqual(m.since, d.since) || !reflect.DeepEqual(m.seqs, d.seqs) {
		t.Fatal("ConnsSince results differ between memory and disk")
	}
	if !reflect.DeepEqual(m.snap.Conns, d.snap.Conns) || !reflect.DeepEqual(m.snap.Seqs, d.snap.Seqs) {
		t.Fatal("snapshot connection streams differ between memory and disk")
	}
	// Roster order is not part of the contract (map iteration vs
	// insertion order); compare as sets keyed by fingerprint.
	mc := map[ids.Fingerprint]*certmodel.CertInfo{}
	for _, c := range m.snap.Certs {
		mc[c.Fingerprint] = c
	}
	for _, c := range d.snap.Certs {
		w, ok := mc[c.Fingerprint]
		if !ok {
			t.Fatalf("disk snapshot has unexpected cert %s", c.Fingerprint)
		}
		if !reflect.DeepEqual(w, c) {
			t.Fatalf("cert %s differs after disk round-trip", c.Fingerprint)
		}
		delete(mc, c.Fingerprint)
	}
	if len(mc) != 0 {
		t.Fatalf("disk snapshot is missing %d certs", len(mc))
	}
}

// TestDiskSpillsAndFaults pins the tiering behavior: a budget far below
// the data size must spill most records cold, keep every one readable,
// and count the traffic in Stats.
func TestDiskSpillsAndFaults(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 8<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		d.PutCert(testCert(i))
		c := testConn(i)
		d.AppendConn(&c, 0)
	}
	st := d.Stats()
	if st.ColdConns.Load() == 0 && st.ColdCerts.Load() == 0 {
		t.Fatal("an 8KiB budget spilled nothing")
	}
	if st.Spills.Load() == 0 {
		t.Fatal("spill counter did not move")
	}
	if got := st.HotBytes.Load(); got > 64<<10 {
		t.Fatalf("hot bytes %d stayed far above the 8KiB budget", got)
	}
	// Every cert faults back intact, including cold ones.
	for i := 0; i < n; i++ {
		c := d.Cert(ids.Fingerprint(fmt.Sprintf("fp-%04d", i)))
		if c == nil {
			t.Fatalf("cert %d unreadable after spill", i)
		}
		if c.SubjectCN != fmt.Sprintf("host-%d.example.org", i) {
			t.Fatalf("cert %d corrupted after fault: %q", i, c.SubjectCN)
		}
	}
	if d.Stats().Loads.Load() == 0 {
		t.Fatal("cold faults were not counted")
	}
	// The iterator sees every conn in append order.
	i := 0
	d.Conns(func(rec *core.ConnRecord, _ uint64) bool {
		if rec.UID != ids.UID(fmt.Sprintf("C%06d", i)) {
			t.Fatalf("conn %d out of order: %s", i, rec.UID)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("iterator visited %d conns, want %d", i, n)
	}
}

// TestDiskEvictAcrossTiers evicts a cutoff landing inside the cold tier
// and checks counts and survivors on both tiers.
func TestDiskEvictAcrossTiers(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 4<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 1500
	for i := 0; i < n; i++ {
		c := testConn(i)
		d.AppendConn(&c, 0)
	}
	if d.Stats().ColdConns.Load() == 0 {
		t.Fatal("scenario needs a populated cold tier")
	}
	cut := time.Unix(1700000000+n/3, 0)
	dropped := d.EvictBefore(cut)
	if dropped != n/3 {
		t.Fatalf("evicted %d, want %d", dropped, n/3)
	}
	if got := d.ConnCount(); got != n-n/3 {
		t.Fatalf("ConnCount = %d, want %d", got, n-n/3)
	}
	d.Conns(func(rec *core.ConnRecord, _ uint64) bool {
		if rec.TS.Before(cut) {
			t.Fatalf("evicted conn %s still visible", rec.UID)
		}
		return true
	})
}

// TestFrameCodecTorn pins the failure mode the torn-checkpoint corpus
// relies on: truncation at any byte inside a frame, or payload damage,
// is ErrCorrupt (or a clean EOF exactly at a frame boundary) — never a
// panic, never silently wrong bytes.
func TestFrameCodecTorn(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), []byte("beta-beta"), {}, []byte("gamma")}
	var bounds []int
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, buf.Len())
	}
	full := buf.Bytes()

	readAll := func(b []byte) (n int, err error) {
		r := bytes.NewReader(b)
		for {
			_, _, err := ReadFrame(r)
			if err != nil {
				if err.Error() == "EOF" {
					return n, nil
				}
				return n, err
			}
			n++
		}
	}

	for cut := 0; cut <= len(full); cut++ {
		n, err := readAll(full[:cut])
		atBoundary := cut == 0
		for _, b := range bounds {
			if cut == b {
				atBoundary = true
			}
		}
		if atBoundary {
			if err != nil {
				t.Fatalf("cut=%d (frame boundary): unexpected error %v", cut, err)
			}
		} else if err == nil {
			t.Fatalf("cut=%d (mid-frame): truncation not detected (read %d frames)", cut, n)
		}
	}
	// Flip every byte in turn: the checksum must catch each.
	for i := range full {
		mangled := append([]byte(nil), full...)
		mangled[i] ^= 0x5a
		if _, err := readAll(mangled); err == nil {
			t.Fatalf("byte flip at %d not detected", i)
		}
	}
}

// TestConnsSinceAfterEviction pins the mark semantics: eviction may
// consume part of the suffix a mark addresses; ConnsSince returns only
// the survivors, in order.
func TestConnsSinceAfterEviction(t *testing.T) {
	for name, st := range openBoth(t, false) {
		for i := 0; i < 100; i++ {
			r := testConn(i)
			st.AppendConn(&r, 0)
		}
		mark := st.NextSlot()
		for i := 100; i < 200; i++ {
			r := testConn(i)
			st.AppendConn(&r, 0)
		}
		// Cutoff lands inside the post-mark range.
		st.EvictBefore(time.Unix(1700000000+150, 0))
		got, _ := st.ConnsSince(mark)
		if len(got) != 50 {
			t.Fatalf("%s: ConnsSince after eviction returned %d conns, want 50", name, len(got))
		}
		if got[0].UID != ids.UID(fmt.Sprintf("C%06d", 150)) {
			t.Fatalf("%s: first survivor is %s, want C%06d", name, got[0].UID, 150)
		}
	}
}
