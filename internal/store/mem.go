package store

import (
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
)

// Mem is the default store: the engine's historical in-RAM state,
// verbatim. Connections live in one append-only slice (at-least-doubling
// growth via GrowConns), eviction filters into a fresh backing array so
// pointers handed out earlier stay valid for whoever retained them, and
// the roster is a fingerprint-keyed map sharing *CertInfo pointers with
// the caller. Snapshot returns live slice headers — the abandon-don't-
// mutate discipline makes them safe to read after the engine lock is
// released, which the sharded merge depends on.
type Mem struct {
	certs map[ids.Fingerprint]*certmodel.CertInfo
	conns []core.ConnRecord
	// seqs aligns with conns when tracked (nil otherwise); slots always
	// aligns with conns and is monotone increasing, so the records
	// appended since a checkpoint mark form a suffix.
	seqs     []uint64
	slots    []uint64
	nextSlot uint64
	tracked  bool
	stats    Stats
}

// NewMem returns an empty in-memory store. trackSeqs selects whether
// the aligned sequence column is maintained.
func NewMem(trackSeqs bool) *Mem {
	return &Mem{certs: make(map[ids.Fingerprint]*certmodel.CertInfo), tracked: trackSeqs}
}

func (m *Mem) PutCert(c *certmodel.CertInfo) bool {
	if _, ok := m.certs[c.Fingerprint]; ok {
		return false
	}
	m.certs[c.Fingerprint] = c
	m.stats.HotCerts.Store(int64(len(m.certs)))
	return true
}

func (m *Mem) Cert(fp ids.Fingerprint) *certmodel.CertInfo { return m.certs[fp] }

func (m *Mem) HasCert(fp ids.Fingerprint) bool {
	_, ok := m.certs[fp]
	return ok
}

func (m *Mem) CertCount() int { return len(m.certs) }

func (m *Mem) Certs(fn func(*certmodel.CertInfo) bool) {
	for _, c := range m.certs {
		if !fn(c) {
			return
		}
	}
}

func (m *Mem) AppendConn(rec *core.ConnRecord, seq uint64) *core.ConnRecord {
	m.conns = append(m.conns, *rec)
	if m.tracked {
		m.seqs = append(m.seqs, seq)
	}
	m.slots = append(m.slots, m.nextSlot)
	m.nextSlot++
	m.stats.HotConns.Store(int64(len(m.conns)))
	return &m.conns[len(m.conns)-1]
}

// GrowConns ensures room for n more appends, at least doubling the
// backing arrays when they must reallocate — append's sub-doubling
// growth regime for large slices costs ~4x the final size in copy
// churn on a multi-megabyte retained window.
func (m *Mem) GrowConns(n int) {
	m.conns = grown(m.conns, n)
	if m.tracked {
		m.seqs = grown(m.seqs, n)
	}
	m.slots = grown(m.slots, n)
}

// grown ensures room for n more elements, at least doubling on
// reallocation.
func grown[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	c := 2 * cap(s)
	if c < len(s)+n {
		c = len(s) + n
	}
	ns := make([]T, len(s), c)
	copy(ns, s)
	return ns
}

func (m *Mem) ConnCount() int { return len(m.conns) }

func (m *Mem) NextSlot() uint64 { return m.nextSlot }

func (m *Mem) ConnsSince(mark uint64) ([]core.ConnRecord, []uint64) {
	i := suffixAt(m.slots, mark)
	if i == len(m.conns) {
		return nil, nil
	}
	conns := append([]core.ConnRecord(nil), m.conns[i:]...)
	var seqs []uint64
	if m.tracked {
		seqs = append([]uint64(nil), m.seqs[i:]...)
	}
	return conns, seqs
}

// suffixAt returns the index of the first slot >= mark (slots are
// monotone increasing).
func suffixAt(slots []uint64, mark uint64) int {
	lo, hi := 0, len(slots)
	for lo < hi {
		mid := (lo + hi) / 2
		if slots[mid] < mark {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Conns iterates the retained window in append order, passing pointers
// into the live backing array.
func (m *Mem) Conns(fn func(rec *core.ConnRecord, seq uint64) bool) {
	for i := range m.conns {
		var seq uint64
		if m.tracked {
			seq = m.seqs[i]
		}
		if !fn(&m.conns[i], seq) {
			return
		}
	}
}

// EvictBefore filters into fresh backing arrays: enriched views and
// snapshots hold pointers into the old ones, which must stay intact.
func (m *Mem) EvictBefore(cutoff time.Time) int {
	kept := make([]core.ConnRecord, 0, len(m.conns))
	keptSlots := make([]uint64, 0, len(m.slots))
	var keptSeqs []uint64
	if m.tracked {
		keptSeqs = make([]uint64, 0, len(m.seqs))
	}
	for i := range m.conns {
		if !m.conns[i].TS.Before(cutoff) {
			kept = append(kept, m.conns[i])
			keptSlots = append(keptSlots, m.slots[i])
			if m.tracked {
				keptSeqs = append(keptSeqs, m.seqs[i])
			}
		}
	}
	dropped := len(m.conns) - len(kept)
	if dropped == 0 {
		return 0
	}
	m.conns, m.slots, m.seqs = kept, keptSlots, keptSeqs
	m.stats.HotConns.Store(int64(len(m.conns)))
	return dropped
}

func (m *Mem) Snapshot() Snap {
	certs := make([]*certmodel.CertInfo, 0, len(m.certs))
	for _, c := range m.certs {
		certs = append(certs, c)
	}
	return Snap{Certs: certs, Conns: m.conns, Seqs: m.seqs}
}

func (m *Mem) Tiered() bool { return false }

func (m *Mem) Stats() *Stats { return &m.stats }

func (m *Mem) Close() error { return nil }
