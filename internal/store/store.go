// Package store is the state layer behind stream.Engine: the retained
// connection window and the certificate roster live behind the Store
// interface, so the engine's ingest/rebuild/checkpoint logic is
// independent of where records physically sit. Two implementations:
//
//   - Mem is the default and preserves the engine's historical
//     semantics exactly — append-only slices with abandon-don't-mutate
//     eviction, so slice headers snapshotted under the engine lock stay
//     valid after it is released.
//   - Disk keeps a bounded hot working set in RAM and spills the cold
//     remainder to append-only segment files under a directory, with an
//     in-memory index, so total retained state can exceed the hot
//     budget by an order of magnitude while steady-state ingest RSS
//     stays bounded.
//
// Concurrency: a Store is owned by one engine and accessed only under
// that engine's state lock; implementations need no internal locking
// except for the Stats counters, which are read lock-free by metric
// callbacks.
//
// Slots: every appended connection gets a monotone, never-reused slot
// number. Eviction removes records but never renumbers, so "slot >=
// mark" identifies exactly the records appended since mark — the delta
// an incremental checkpoint serializes. Slots are an in-memory notion
// only; nothing on disk depends on them.
package store

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
)

// Snap is a point-in-time view of the full retained state, used by the
// sharded merge, full checkpoints, and tiered rebuilds. For Mem the
// slices are live headers (safe after the engine lock is released:
// appends past the captured length are invisible and eviction swaps in
// fresh arrays); for Disk they are freshly materialized copies.
type Snap struct {
	// Certs is the roster in unspecified order.
	Certs []*certmodel.CertInfo
	// Conns is the retained window in append order; Seqs aligns with it
	// when the store tracks sequences (nil otherwise).
	Conns []core.ConnRecord
	Seqs  []uint64
}

// Stats is the store's tier occupancy and traffic, read lock-free by
// metric gauges (all fields are atomics updated by the owning engine's
// apply path).
type Stats struct {
	HotConns  atomic.Int64
	ColdConns atomic.Int64
	HotCerts  atomic.Int64
	ColdCerts atomic.Int64
	HotBytes  atomic.Int64 // estimated bytes of hot records
	Spills    atomic.Uint64
	Loads     atomic.Uint64
}

// Store is the engine's state layer. All methods except Stats must be
// called under the owning engine's state lock.
type Store interface {
	// PutCert admits a certificate first-observation-wins; it reports
	// whether the fingerprint was new.
	PutCert(c *certmodel.CertInfo) bool
	// Cert resolves a fingerprint (nil when absent). On a tiered store
	// this may fault the record in from disk.
	Cert(fp ids.Fingerprint) *certmodel.CertInfo
	// HasCert reports presence without faulting anything in.
	HasCert(fp ids.Fingerprint) bool
	// CertCount is the roster size.
	CertCount() int
	// Certs iterates the roster in unspecified order until fn returns
	// false. The *CertInfo passed to fn must not be retained past the
	// iteration on a tiered store.
	Certs(fn func(*certmodel.CertInfo) bool)

	// AppendConn retains one connection (copied) with its sequence
	// stamp and returns the stored record. The pointer is valid at
	// least until the next append/evict; callers that must retain it
	// (the in-memory builder) may do so only on a non-tiered store.
	AppendConn(rec *core.ConnRecord, seq uint64) *core.ConnRecord
	// GrowConns pre-grows for n more appends (batch ingest).
	GrowConns(n int)
	// ConnCount is the retained window size.
	ConnCount() int
	// NextSlot is the slot the next append will receive; all retained
	// records have slots below it.
	NextSlot() uint64
	// ConnsSince returns fresh copies of the retained records with
	// slot >= mark (the suffix appended since mark survived eviction),
	// with their aligned sequence stamps.
	ConnsSince(mark uint64) ([]core.ConnRecord, []uint64)
	// Conns iterates the retained window in append order until fn
	// returns false. seq is zero when sequences are untracked. On a
	// non-tiered store the pointer is into the live backing array and
	// may be retained under the abandon-don't-mutate discipline; on a
	// tiered store it is a decoded copy that fn may also retain (the
	// store never reuses decoded buffers), at the cost of pinning the
	// copy's frame.
	Conns(fn func(rec *core.ConnRecord, seq uint64) bool)
	// EvictBefore drops retained records with TS before cutoff and
	// returns how many were dropped.
	EvictBefore(cutoff time.Time) int

	// Snapshot materializes the full retained state.
	Snapshot() Snap
	// Tiered reports whether records can move under the caller's feet —
	// i.e. whether pointers returned by AppendConn/Cert are stable for
	// the store's lifetime (false) or only transiently (true).
	Tiered() bool
	// Stats exposes tier occupancy for metrics.
	Stats() *Stats
	// Close releases any files. State already materialized remains
	// usable; further mutation does not.
	Close() error
}

// Open builds a store from the engine configuration triple: kind is ""
// or "memory" (default) or "disk"; dir and hotBytes apply to "disk".
// trackSeqs selects whether the store maintains the aligned sequence
// column.
func Open(kind, dir string, hotBytes int64, trackSeqs bool) (Store, error) {
	switch kind {
	case "", "memory":
		return NewMem(trackSeqs), nil
	case "disk":
		if dir == "" {
			return nil, fmt.Errorf("store: disk store requires a directory")
		}
		return OpenDisk(dir, hotBytes, trackSeqs)
	default:
		return nil, fmt.Errorf("store: unknown store kind %q (want memory or disk)", kind)
	}
}
