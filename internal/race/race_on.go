//go:build race

// Package race exposes whether the race detector is compiled into the
// binary, so allocation-count gates can skip themselves: the detector's
// shadow-memory bookkeeping changes what the runtime allocates, and
// alloc gates under -race would pin detector internals, not ours.
package race

// Enabled reports whether the race detector is compiled in.
const Enabled = true
