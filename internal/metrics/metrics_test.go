package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("events_total", "events seen")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same series, same instrument.
	if again := r.Counter("events_total", "events seen"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Distinct labels, distinct instrument.
	if other := r.Counter("events_total", "events seen", "kind", "x"); other == c {
		t.Fatal("labeled series aliased the unlabeled one")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	r.GaugeFunc("derived", "callback gauge", func() float64 { return 42 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "derived 42\n") {
		t.Fatalf("callback gauge missing:\n%s", buf.String())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.Since(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", h.Sum())
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 0.005 and 0.01 land in le="0.01" (le is inclusive), cumulative after.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("tail_rotations_total", "log rotations observed", "file", "ssl").Inc()
	r.Gauge("tail_lag_bytes", "size minus offset", "file", "ssl").Set(128)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP tail_lag_bytes size minus offset\n",
		"# TYPE tail_lag_bytes gauge\n",
		"tail_lag_bytes{file=\"ssl\"} 128\n",
		"# TYPE tail_rotations_total counter\n",
		"tail_rotations_total{file=\"ssl\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: two renders are identical.
	var buf2 strings.Builder
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("exposition output is not deterministic")
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Counter("c_total", "c").Add(3)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out["c_total"].(float64) != 3 {
		t.Errorf("c_total = %v", out["c_total"])
	}
	h := out["h_seconds"].(map[string]any)
	if h["count"].(float64) != 1 || h["sum"].(float64) != 0.5 {
		t.Errorf("histogram json = %v", h)
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res := httptest.NewRecorder()
	Handler(r).ServeHTTP(res, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(res.Body.String(), "hits_total 1") {
		t.Errorf("text body: %s", res.Body.String())
	}

	res = httptest.NewRecorder()
	Handler(r).ServeHTTP(res, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := res.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content-type: %s", ct)
	}
	var out map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &out); err != nil {
		t.Fatalf("json body: %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestConcurrentUse exercises every instrument from many goroutines;
// meaningful under -race, and the final counts must still add up.
func TestConcurrentUse(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				var buf strings.Builder
				if i%250 == 0 {
					r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
