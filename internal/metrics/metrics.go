// Package metrics is a dependency-free instrumentation substrate for the
// long-running pieces of the reproduction: atomic counters, gauges, and
// fixed-bucket latency histograms collected in a Registry that renders
// itself in the Prometheus text exposition format (for scraping
// mtlsd's /metrics) or as one JSON document (for ad-hoc inspection and
// tests). The streaming engine, the log tailers, and the daemon's HTTP
// layer all publish here, so a 23-month deployment can watch ingestion
// lag, drops, and rebuild churn instead of discovering data loss months
// later.
//
// Design constraints, in order: no third-party dependencies, safe for
// concurrent use on the ingest hot path (one atomic op per event), and
// nil-tolerant instruments — methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, so optionally-instrumented code (a tailer
// without a registry attached) pays no conditionals at call sites.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout: 100µs to 10s in
// roughly 2.5× steps, the span between a cached map lookup and a full
// derived-state rebuild at production scale.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter discards all operations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil *Gauge discards all
// operations. A Gauge registered via GaugeFunc reads its value from the
// callback instead.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (the callback's result for a
// GaugeFunc-backed gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, as Prometheus expects) and tracks their sum. The
// bucket layout is immutable after registration. A nil *Histogram
// discards all operations.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Since observes the elapsed wall time from t0 in seconds — the one-line
// idiom for timing a code path: defer h.Since(time.Now()).
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its type and help string, shared by every
// labeled series under it.
type family struct {
	kind metricKind
	help string
}

// series is one (name, labels) instrument.
type series struct {
	name   string
	labels string // rendered `k="v",k2="v2"`, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (s *series) id() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry collects instruments. Registration is get-or-create: asking
// for the same (name, labels) again returns the existing instrument, so
// lazily instrumented paths (per-endpoint HTTP series) need no
// bookkeeping. Registering one name with two different types panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	series   map[string]*series
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		families: make(map[string]*family),
		series:   make(map[string]*series),
	}
}

// renderLabels turns alternating key/value pairs into the Prometheus
// label body `k="v",...`, escaping backslash, quote, and newline.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// lookup get-or-creates the series for (name, labels), enforcing one
// kind per family.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string) *series {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{kind: kind, help: help}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.kind, kind))
	}
	id := name
	if labels != "" {
		id = name + "{" + labels + "}"
	}
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: labels}
		r.series[id] = s
	}
	return s
}

// Counter get-or-creates a counter. labels are alternating key/value
// pairs, e.g. Counter("tail_rotations_total", "...", "file", "ssl").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — for quantities that are already tracked elsewhere, like channel
// occupancy. fn must be safe to call concurrently. If the series already
// exists its callback is left in place (get-or-create symmetry).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{fn: fn}
	}
}

// Histogram get-or-creates a histogram with the given bucket upper
// bounds (nil means DefBuckets). Bounds must be ascending; they are
// fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		s.h = h
	}
	return s.h
}

// snapshot returns the series sorted by (name, labels) for deterministic
// exposition.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per family, counters
// and gauges as single samples, histograms as cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	var lastFam string
	r.mu.Lock()
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.Unlock()
	for _, s := range r.snapshot() {
		if s.name != lastFam {
			fam := fams[s.name]
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, fam.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, fam.kind)
			lastFam = s.name
		}
		switch {
		case s.c != nil:
			fmt.Fprintf(&b, "%s %s\n", s.id(), strconv.FormatUint(s.c.Value(), 10))
		case s.g != nil:
			fmt.Fprintf(&b, "%s %s\n", s.id(), formatFloat(s.g.Value()))
		case s.h != nil:
			h := s.h
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s %d\n", seriesID(s.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bound)+`"`)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s %d\n", seriesID(s.name+"_bucket", joinLabels(s.labels, `le="+Inf"`)), cum)
			fmt.Fprintf(&b, "%s %s\n", seriesID(s.name+"_sum", s.labels), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s %d\n", seriesID(s.name+"_count", s.labels), h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// joinLabels appends extra to a rendered label body.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// seriesID renders `name{labels}`, eliding empty braces.
func seriesID(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// WriteJSON renders every series as one JSON object keyed by series id:
// counters and gauges map to numbers, histograms to
// {count, sum, buckets:{le:count}} with cumulative bucket counts.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, s := range r.snapshot() {
		switch {
		case s.c != nil:
			out[s.id()] = s.c.Value()
		case s.g != nil:
			out[s.id()] = s.g.Value()
		case s.h != nil:
			h := s.h
			buckets := make(map[string]uint64, len(h.bounds)+1)
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				buckets[formatFloat(bound)] = cum
			}
			cum += h.counts[len(h.bounds)].Load()
			buckets["+Inf"] = cum
			out[s.id()] = map[string]any{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry over HTTP: Prometheus text by default,
// JSON when the request asks for it (?format=json or an Accept header
// preferring application/json).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
