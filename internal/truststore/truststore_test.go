package truststore

import (
	"crypto/x509"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestStoreIssuerMembership(t *testing.T) {
	s := NewStore(ProgramNSS)
	s.AddIssuer("DigiCert Inc")
	if !s.ContainsIssuer("DigiCert Inc") {
		t.Fatal("exact match failed")
	}
	if !s.ContainsIssuer("digicert   inc") {
		t.Fatal("normalization (case/space) failed")
	}
	if s.ContainsIssuer("EvilCert Inc") {
		t.Fatal("false membership")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreIgnoresEmptyIssuer(t *testing.T) {
	s := NewStore(ProgramApple)
	s.AddIssuer("   ")
	if s.ContainsIssuer("") || s.Len() != 0 {
		t.Fatal("empty identity must not be trusted")
	}
}

func TestBundleAtLeastOneStoreRule(t *testing.T) {
	a := NewStore(ProgramApple)
	n := NewStore(ProgramNSS)
	n.AddIssuer("OnlyInNSS")
	b := NewBundle(a, n)
	if !b.IsPublicIssuer("OnlyInNSS") {
		t.Fatal("issuer in one store should be public")
	}
	if b.IsPublicIssuer("Nowhere") {
		t.Fatal("unknown issuer should be private")
	}
	if b.IsPublicIssuer("") {
		t.Fatal("empty issuer should never be public")
	}
	if b.Store(ProgramNSS) != n || b.Store("nope") != nil {
		t.Fatal("Store lookup wrong")
	}
	if len(b.Stores()) != 2 {
		t.Fatal("Stores wrong")
	}
}

func TestClassifyLeaf(t *testing.T) {
	b := DefaultBundle()
	pub := &certmodel.CertInfo{IssuerOrg: "DigiCert Inc"}
	if b.ClassifyLeaf(pub, nil) != Public {
		t.Fatal("DigiCert leaf should be public")
	}
	priv := &certmodel.CertInfo{IssuerOrg: "Globus Online"}
	if b.ClassifyLeaf(priv, nil) != Private {
		t.Fatal("Globus leaf should be private")
	}
	// Issuer CN fallback: intermediates recorded by CN.
	interCN := &certmodel.CertInfo{IssuerCN: "GoDaddy Secure Certificate Authority - G2"}
	if b.ClassifyLeaf(interCN, nil) != Public {
		t.Fatal("intermediate CN should classify public")
	}
	// Self-signed with a spoofed public issuer name stays private.
	spoof := &certmodel.CertInfo{IssuerOrg: "DigiCert Inc", SelfSigned: true}
	if b.ClassifyLeaf(spoof, nil) != Private {
		t.Fatal("self-signed cert must be private even with a public name")
	}
}

func TestClassifyLeafByChainFingerprint(t *testing.T) {
	s := NewStore(ProgramMicrosoft)
	fp := ids.FingerprintString("some-root")
	s.AddFingerprint(fp)
	b := NewBundle(s)
	leaf := &certmodel.CertInfo{IssuerOrg: "Unknown Private CA"}
	if b.ClassifyLeaf(leaf, []ids.Fingerprint{fp}) != Public {
		t.Fatal("chain fingerprint in store should classify public")
	}
	if b.ClassifyLeaf(leaf, []ids.Fingerprint{ids.FingerprintString("other")}) != Private {
		t.Fatal("unknown chain should classify private")
	}
}

func TestVerifyChainWirePath(t *testing.T) {
	g, err := certmodel.NewGenerator(2)
	if err != nil {
		t.Fatal(err)
	}
	root, err := g.NewRootCA("Wire Root", "Wire Org", date(2020, 1, 1), date(2040, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := g.NewIntermediateCA(root, "Wire Inter", "Wire Org", date(2020, 1, 1), date(2035, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(ProgramNSS)
	s.AddCA(root)
	b := NewBundle(s)

	leafDER, err := g.IssueLeaf(inter, certmodel.Spec{
		SubjectCN: "leaf.example.com",
		NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1),
		Server: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	leafInfo, err := certmodel.ParseDER(leafDER)
	if err != nil {
		t.Fatal(err)
	}
	leafCert, err := x509.ParseCertificate(leafDER)
	if err != nil {
		t.Fatal(err)
	}
	if !b.VerifyChain(leafCert, []*x509.Certificate{inter.Cert}) {
		t.Fatal("chain through intermediate should verify")
	}
	// Classification via chain fingerprints also works.
	if b.ClassifyLeaf(leafInfo, []ids.Fingerprint{inter.Fingerprint(), root.Fingerprint()}) != Public {
		t.Fatal("chain fingerprints should classify public")
	}

	// A leaf from an unrelated self-signer fails verification.
	g2, _ := certmodel.NewGenerator(1)
	rogueDER, err := g2.IssueLeaf(nil, certmodel.Spec{
		SubjectCN: "rogue", NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := x509.ParseCertificate(rogueDER)
	if err != nil {
		t.Fatal(err)
	}
	if b.VerifyChain(rogue, nil) {
		t.Fatal("rogue self-signed leaf must not verify")
	}
}

func TestStoreAddCAIndexesNames(t *testing.T) {
	g, err := certmodel.NewGenerator(1)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := g.NewRootCA("Acme Root CA", "Acme Trust", date(2020, 1, 1), date(2040, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(ProgramCCADB)
	s.AddCA(ca)
	if !s.ContainsFingerprint(ca.Fingerprint()) {
		t.Fatal("fingerprint not indexed")
	}
	if !s.ContainsIssuer("Acme Trust") || !s.ContainsIssuer("Acme Root CA") {
		t.Fatal("subject names not indexed")
	}
}

func TestDefaultBundleOverlap(t *testing.T) {
	b := DefaultBundle()
	// Every default CA must be public through at least one store.
	for _, name := range DefaultPublicCAs {
		if !b.IsPublicIssuer(name) {
			t.Errorf("%q not public", name)
		}
	}
	// Apple intentionally drops every 5th operator; the bundle still
	// classifies it public via NSS — the "at least one store" rule.
	apple := b.Store(ProgramApple)
	dropped := DefaultPublicCAs[4]
	if apple.ContainsIssuer(dropped) {
		t.Fatalf("expected %q to be absent from Apple store", dropped)
	}
	if !b.IsPublicIssuer(dropped) {
		t.Fatal("bundle must still classify it public")
	}
	// CCADB-only intermediates classify as public.
	if !b.IsPublicIssuer("GeoTrust TLS RSA CA G1") {
		t.Fatal("CCADB intermediate missing")
	}
	if len(b.PublicIssuers()) == 0 {
		t.Fatal("PublicIssuers empty")
	}
}

func TestClassString(t *testing.T) {
	if Public.String() != "public" || Private.String() != "private" {
		t.Fatal("Class strings wrong")
	}
}
