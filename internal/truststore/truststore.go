// Package truststore models the root programs the paper consults to decide
// whether a certificate is issued by a public or a private CA (§3.2):
// Mozilla NSS, Apple, Microsoft, and the Common CA Database (CCADB).
//
// Per the paper's methodology, "a certificate is deemed to be issued by
// public CAs when its root or intermediate certificate, or its issuer, is
// listed in at least one of the major trust stores"; everything else —
// including self-signed certificates — is private. Classification is
// therefore a membership question over two key spaces: certificate
// fingerprints (roots and intermediates) and issuer identities (the
// organization or CN string as it appears in leaf issuer fields).
package truststore

import (
	"crypto/x509"
	"sort"
	"strings"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// Program names mirror the stores the paper uses.
const (
	ProgramNSS       = "mozilla-nss"
	ProgramApple     = "apple"
	ProgramMicrosoft = "microsoft"
	ProgramCCADB     = "ccadb"
)

// Store is one root program.
type Store struct {
	Name string

	fingerprints map[ids.Fingerprint]bool
	issuers      map[string]bool // normalized issuer identities
	pool         *x509.CertPool  // wire-path verification, may be nil
}

// NewStore creates an empty program.
func NewStore(name string) *Store {
	return &Store{
		Name:         name,
		fingerprints: make(map[ids.Fingerprint]bool),
		issuers:      make(map[string]bool),
		pool:         x509.NewCertPool(),
	}
}

// AddCA registers a CA (root or intermediate) by certificate, feeding both
// the fingerprint set and the wire-path verification pool.
func (s *Store) AddCA(ca *certmodel.CA) {
	s.fingerprints[ca.Fingerprint()] = true
	if cn := ca.Cert.Subject.CommonName; cn != "" {
		s.issuers[normalize(cn)] = true
	}
	for _, org := range ca.Cert.Subject.Organization {
		s.issuers[normalize(org)] = true
	}
	s.pool.AddCert(ca.Cert)
}

// AddIssuer registers a bare issuer identity (the bulk path's CCADB-style
// entry, where the store knows the operator but we never materialize DER).
func (s *Store) AddIssuer(identity string) {
	if n := normalize(identity); n != "" {
		s.issuers[n] = true
	}
}

// AddFingerprint registers a CA certificate fingerprint without DER.
func (s *Store) AddFingerprint(fp ids.Fingerprint) { s.fingerprints[fp] = true }

// ContainsFingerprint reports membership of a CA certificate.
func (s *Store) ContainsFingerprint(fp ids.Fingerprint) bool { return s.fingerprints[fp] }

// ContainsIssuer reports membership of an issuer identity.
func (s *Store) ContainsIssuer(identity string) bool { return s.issuers[normalize(identity)] }

// Pool returns the x509 verification pool for the wire path.
func (s *Store) Pool() *x509.CertPool { return s.pool }

// Len returns the number of registered issuer identities.
func (s *Store) Len() int { return len(s.issuers) }

// Bundle aggregates all programs; the paper's "at least one store" rule.
type Bundle struct {
	stores []*Store
}

// NewBundle creates a bundle over the given stores.
func NewBundle(stores ...*Store) *Bundle { return &Bundle{stores: stores} }

// Stores returns the member programs.
func (b *Bundle) Stores() []*Store { return b.stores }

// Store returns the program with the given name, or nil.
func (b *Bundle) Store(name string) *Store {
	for _, s := range b.stores {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// IsPublicIssuer reports whether any program trusts the issuer identity.
// The identity is normalized once, not per store.
func (b *Bundle) IsPublicIssuer(identity string) bool {
	n := normalize(identity)
	if n == "" {
		return false
	}
	for _, s := range b.stores {
		if s.issuers[n] {
			return true
		}
	}
	return false
}

// IsPublicFingerprint reports whether any program contains the CA cert.
func (b *Bundle) IsPublicFingerprint(fp ids.Fingerprint) bool {
	for _, s := range b.stores {
		if s.ContainsFingerprint(fp) {
			return true
		}
	}
	return false
}

// ClassifyLeaf applies the paper's rule to a leaf plus the fingerprints of
// the rest of its presented chain: public if any chain member is in a
// store, or the leaf's issuer identity is. Self-signed leaves whose issuer
// happens to collide with a public name are still private — a self-signed
// certificate has no chain to a public root.
func (b *Bundle) ClassifyLeaf(leaf *certmodel.CertInfo, chainFPs []ids.Fingerprint) Class {
	return b.classifyLeaf(leaf, chainFPs, nil)
}

func (b *Bundle) classifyLeaf(leaf *certmodel.CertInfo, chainFPs []ids.Fingerprint, memo *IssuerMemo) Class {
	if leaf.SelfSigned {
		return Private
	}
	for _, fp := range chainFPs {
		if b.IsPublicFingerprint(fp) {
			return Public
		}
	}
	if memo.isPublicIssuer(b, leaf.IssuerOrg) || memo.isPublicIssuer(b, leaf.IssuerCN) {
		return Public
	}
	return Private
}

// IssuerMemo caches IsPublicIssuer verdicts keyed by the raw (pre-
// normalization) issuer string. Distinct issuer identities number in the
// hundreds while connections number in the millions, so on the hot ingest
// path one map hit replaces a normalize pass over every store. Not safe
// for concurrent use; each consumer owns one. A nil *IssuerMemo is valid
// and simply uncached.
type IssuerMemo struct {
	b *Bundle
	m map[string]bool
}

// NewIssuerMemo creates an empty memo over the bundle.
func (b *Bundle) NewIssuerMemo() *IssuerMemo {
	return &IssuerMemo{b: b, m: make(map[string]bool)}
}

// IsPublicIssuer is the memoized Bundle.IsPublicIssuer.
func (m *IssuerMemo) IsPublicIssuer(identity string) bool {
	return m.isPublicIssuer(m.b, identity)
}

// ClassifyLeaf is the memoized Bundle.ClassifyLeaf: identical verdicts,
// with the leaf-issuer membership checks served from the memo.
func (m *IssuerMemo) ClassifyLeaf(leaf *certmodel.CertInfo, chainFPs []ids.Fingerprint) Class {
	return m.b.classifyLeaf(leaf, chainFPs, m)
}

func (m *IssuerMemo) isPublicIssuer(b *Bundle, identity string) bool {
	if m == nil {
		return b.IsPublicIssuer(identity)
	}
	if v, ok := m.m[identity]; ok {
		return v
	}
	v := b.IsPublicIssuer(identity)
	m.m[identity] = v
	return v
}

// VerifyChain runs full x509 path validation against the union of program
// pools (wire path only). intermediates may be nil.
func (b *Bundle) VerifyChain(leaf *x509.Certificate, intermediates []*x509.Certificate) bool {
	interPool := x509.NewCertPool()
	for _, c := range intermediates {
		interPool.AddCert(c)
	}
	for _, s := range b.stores {
		opts := x509.VerifyOptions{
			Roots:         s.pool,
			Intermediates: interPool,
			CurrentTime:   leaf.NotBefore.Add(leaf.NotAfter.Sub(leaf.NotBefore) / 2),
			KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		}
		if _, err := leaf.Verify(opts); err == nil {
			return true
		}
	}
	return false
}

// Class is the paper's public/private CA classification.
type Class int

const (
	Private Class = iota
	Public
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Public {
		return "public"
	}
	return "private"
}

// PublicIssuers returns the sorted union of issuer identities across all
// programs — the interception detector's allow-list seed.
func (b *Bundle) PublicIssuers() []string {
	set := map[string]bool{}
	for _, s := range b.stores {
		for k := range s.issuers {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func normalize(s string) string {
	if isNormalized(s) {
		return s
	}
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// isNormalized reports whether s is already in canonical form — ASCII
// lowercase with single interior spaces — so normalize can return it
// without allocating. Any non-ASCII byte takes the slow path (Unicode
// case folding and space classes are out of scope here).
func isNormalized(s string) bool {
	prevSpace := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' || c >= 0x80 {
			return false
		}
		if c == ' ' {
			if prevSpace || i == 0 || i == len(s)-1 {
				return false
			}
			prevSpace = true
			continue
		}
		if c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			return false
		}
		prevSpace = false
	}
	return true
}

// DefaultPublicCAs lists the public CA operators the workload generator
// populates the programs with. The names are real root-program members so
// the reproduced tables read like the paper's (DigiCert, Let's Encrypt,
// GoDaddy, IdenTrust, Sectigo appear in Tables 5–6).
var DefaultPublicCAs = []string{
	"DigiCert Inc",
	"Let's Encrypt",
	"GoDaddy.com, Inc.",
	"IdenTrust",
	"Sectigo Limited",
	"GlobalSign",
	"Amazon",
	"Google Trust Services",
	"Entrust, Inc.",
	"Apple Inc.",
	"Microsoft Corporation",
	"Cisco Systems",
	"FNMT-RCM",
}

// DefaultBundle builds the four root programs with overlapping membership:
// NSS carries everything, Apple/Microsoft drop a couple of operators, and
// CCADB mirrors NSS plus records intermediate operators. The overlap
// pattern exercises the "at least one store" rule.
func DefaultBundle() *Bundle {
	nss := NewStore(ProgramNSS)
	apple := NewStore(ProgramApple)
	ms := NewStore(ProgramMicrosoft)
	ccadb := NewStore(ProgramCCADB)
	for i, name := range DefaultPublicCAs {
		nss.AddIssuer(name)
		ccadb.AddIssuer(name)
		if i%5 != 4 {
			apple.AddIssuer(name)
		}
		if i%7 != 6 {
			ms.AddIssuer(name)
		}
	}
	// Intermediates only CCADB records (the paper's Table 5 footnotes:
	// issuing intermediates like "GoDaddy Secure Certificate Authority -
	// G2" or "DigiCert SHA2 Extended Validation Server CA").
	for _, inter := range []string{
		"GoDaddy Secure Certificate Authority - G2",
		"DigiCert SHA2 Extended Validation Server CA",
		"GeoTrust TLS RSA CA G1",
		"TrustID Server CA O1",
		"R3", // Let's Encrypt issuing intermediate
	} {
		ccadb.AddIssuer(inter)
	}
	return NewBundle(nss, apple, ms, ccadb)
}
