package psl

// SplitCache memoizes Split results for a single consumer. SNI and
// SAN/CN values repeat heavily across a capture (a handful of services
// dominate billions of connections), so the analysis pipeline's
// enrichment workers each keep a local cache. The zero synchronization
// is the point: a SplitCache is NOT safe for concurrent use — give each
// goroutine its own.
type SplitCache struct {
	list *List
	m    map[string]Result
	sld  map[string]string
}

// NewSplitCache creates an empty cache over l.
func NewSplitCache(l *List) *SplitCache {
	return &SplitCache{
		list: l,
		m:    make(map[string]Result, 1024),
		sld:  make(map[string]string, 1024),
	}
}

// Split is List.Split memoized on the raw (pre-normalization) host
// string.
func (c *SplitCache) Split(host string) Result {
	if r, ok := c.m[host]; ok {
		return r
	}
	r := c.list.Split(host)
	c.m[host] = r
	return r
}

// SLD mirrors List.SLD. The registrable-domain string itself is
// memoized too: Result.Registrable concatenates on every call, and SLD
// is on the per-connection hot path.
func (c *SplitCache) SLD(host string) string {
	if s, ok := c.sld[host]; ok {
		return s
	}
	s := c.Split(host).Registrable()
	c.sld[host] = s
	return s
}

// TLD mirrors List.TLD.
func (c *SplitCache) TLD(host string) string { return c.Split(host).TLD() }

// Len reports the number of distinct host strings cached.
func (c *SplitCache) Len() int { return len(c.m) }
