package psl

import (
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		host          string
		sub, dom, suf string
		registrable   string
		tld           string
	}{
		{"www.idrive.com", "www", "idrive", "com", "idrive.com", "com"},
		{"idrive.com", "", "idrive", "com", "idrive.com", "com"},
		{"a.b.example.co.uk", "a.b", "example", "co.uk", "example.co.uk", "uk"},
		{"ec2-1-2-3-4.compute.amazonaws.com", "", "ec2-1-2-3-4", "compute.amazonaws.com", "ec2-1-2-3-4.compute.amazonaws.com", "com"},
		{"rapid7.com", "", "rapid7", "com", "rapid7.com", "com"},
		{"gpo.gov", "", "gpo", "gov", "gpo.gov", "gov"},
		{"virginia.edu", "", "virginia", "edu", "virginia.edu", "edu"},
		{"mail.health.virginia.edu", "mail.health", "virginia", "edu", "virginia.edu", "edu"},
	}
	for _, c := range cases {
		r := l.Split(c.host)
		if r.Subdomain != c.sub || r.Domain != c.dom || r.Suffix != c.suf {
			t.Errorf("Split(%q) = %+v", c.host, r)
		}
		if r.Registrable() != c.registrable {
			t.Errorf("Registrable(%q) = %q, want %q", c.host, r.Registrable(), c.registrable)
		}
		if r.TLD() != c.tld {
			t.Errorf("TLD(%q) = %q, want %q", c.host, r.TLD(), c.tld)
		}
	}
}

func TestSplitNormalization(t *testing.T) {
	l := Default()
	if l.SLD("WWW.IDrive.COM.") != "idrive.com" {
		t.Fatal("case/trailing-dot normalization failed")
	}
	if l.SLD("idrive.com:443") != "idrive.com" {
		t.Fatal("port stripping failed")
	}
}

func TestSplitIPAndEmpty(t *testing.T) {
	l := Default()
	for _, h := range []string{"", "1.2.3.4", "192.168.0.1", "2001:db8::1", "fe80::1%eth0"} {
		if r := l.Split(h); r.Registrable() != "" {
			t.Errorf("Split(%q) should have no registrable domain, got %q", h, r.Registrable())
		}
	}
}

func TestWholeNameIsSuffix(t *testing.T) {
	l := Default()
	r := l.Split("co.uk")
	if r.Registrable() != "" {
		t.Fatalf("bare public suffix should have no registrable domain, got %q", r.Registrable())
	}
	if r.Suffix != "co.uk" {
		t.Fatalf("suffix = %q", r.Suffix)
	}
}

func TestUnknownSuffix(t *testing.T) {
	l := Default()
	if got := l.SLD("foo.nosuchtld"); got != "" {
		t.Fatalf("unknown suffix should yield empty SLD, got %q", got)
	}
	if got := l.SLD("localhost"); got != "" {
		t.Fatalf("localhost should yield empty SLD, got %q", got)
	}
}

func TestWildcardAndException(t *testing.T) {
	l := Default()
	// *.ck: "anything.ck" is a public suffix, so foo.bar.ck registers bar...
	// foo.bar.ck → suffix "bar.ck", domain "foo".
	r := l.Split("foo.bar.ck")
	if r.Suffix != "bar.ck" || r.Domain != "foo" {
		t.Fatalf("wildcard split = %+v", r)
	}
	// !www.ck: exception — www.ck itself is registrable under ck.
	r = l.Split("www.ck")
	if r.Registrable() != "www.ck" {
		t.Fatalf("exception split = %+v", r)
	}
	r = l.Split("a.www.ck")
	if r.Registrable() != "www.ck" || r.Subdomain != "a" {
		t.Fatalf("exception with sub = %+v", r)
	}
}

func TestIsDomainName(t *testing.T) {
	l := Default()
	good := []string{"idrive.com", "*.apple.com", "mail.example.co.uk", "Splunkcloud.COM"}
	for _, g := range good {
		if !l.IsDomainName(g) {
			t.Errorf("IsDomainName(%q) = false, want true", g)
		}
	}
	bad := []string{"", "1.2.3.4", "John Smith", "sip:user@host", "hello world.com",
		"_transfer_", "foo..com", "foo.nosuchtld", "-bad.com", "bad-.com"}
	for _, b := range bad {
		if l.IsDomainName(b) {
			t.Errorf("IsDomainName(%q) = true, want false", b)
		}
	}
}

func TestNewSkipsComments(t *testing.T) {
	l := New([]string{"// comment", "", "com"})
	if l.SLD("x.com") != "x.com" {
		t.Fatal("comment handling broke compilation")
	}
}

// Property: Registrable() is always a suffix of the normalized input, and
// Split never panics on arbitrary strings.
func TestSplitProperty(t *testing.T) {
	l := Default()
	f := func(s string) bool {
		r := l.Split(s)
		reg := r.Registrable()
		if reg == "" {
			return true
		}
		norm := normalizeHost(s)
		return len(norm) >= len(reg) && norm[len(norm)-len(reg):] == reg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLDOfEmpty(t *testing.T) {
	if (Result{}).TLD() != "" {
		t.Fatal("empty result TLD should be empty")
	}
}
