// Package psl implements Public Suffix List–based domain decomposition,
// the equivalent of the Python tldextract package the paper uses to pull
// TLDs and SLDs out of SNI values and certificate names (§4.2, §6.1).
//
// The embedded list is a compact subset of the Mozilla PSL covering the
// suffixes that occur in the study (generic TLDs, the country suffixes the
// paper's tables mention, and the multi-label suffixes needed to exercise
// the longest-match algorithm, e.g. co.uk and amazonaws.com's S3 style
// suffixes). The matching algorithm is the full PSL algorithm: longest
// matching rule wins, wildcard (*) rules, and exception (!) rules.
package psl

import (
	"strings"
)

// List is a compiled public-suffix list.
type List struct {
	rules map[string]ruleKind
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota + 1
	ruleWildcard
	ruleException
)

// defaultRules is the embedded suffix data. One rule per entry, in PSL
// syntax ("*." prefix for wildcard, "!" prefix for exception).
var defaultRules = []string{
	// Generic TLDs seen throughout the paper's tables.
	"com", "net", "org", "edu", "gov", "mil", "int", "io", "me", "co",
	"top", "cn", "uk", "de", "fr", "jp", "au", "ca", "us", "eu", "info",
	"biz", "dev", "app", "cloud", "online", "site", "xyz", "education",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk",
	"com.cn", "edu.cn", "gov.cn",
	"com.au", "edu.au",
	"co.jp", "ac.jp",
	// Cloud-provider suffixes: subdomains of these behave like registrable
	// domains (mirrors the real PSL private section for amazonaws).
	"compute.amazonaws.com", "s3.amazonaws.com",
	"*.elb.amazonaws.com",
	"azurewebsites.net", "cloudapp.azure.com",
	// Wildcard + exception pair to exercise the full algorithm (real PSL
	// example: *.ck with !www.ck).
	"*.ck", "!www.ck",
}

// Default returns the embedded list, compiled once per call (cheap).
func Default() *List { return New(defaultRules) }

// New compiles rules given in PSL syntax.
func New(rules []string) *List {
	l := &List{rules: make(map[string]ruleKind, len(rules))}
	for _, r := range rules {
		r = strings.TrimSpace(strings.ToLower(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(r, "!"):
			l.rules[r[1:]] = ruleException
		case strings.HasPrefix(r, "*."):
			l.rules[r[2:]] = ruleWildcard
		default:
			l.rules[r] = ruleNormal
		}
	}
	return l
}

// Result is the decomposition of a hostname.
type Result struct {
	// Subdomain is everything left of the registrable domain ("www.mail").
	Subdomain string
	// Domain is the registrable label ("example" in example.co.uk).
	Domain string
	// Suffix is the matched public suffix ("co.uk").
	Suffix string
}

// Registrable returns "domain.suffix" (the SLD in the paper's terminology),
// or "" when the name has no registrable domain.
func (r Result) Registrable() string {
	if r.Domain == "" || r.Suffix == "" {
		return ""
	}
	return r.Domain + "." + r.Suffix
}

// TLD returns the last label of the suffix, the paper's outbound grouping
// key ("com" for a co.uk suffix would be "uk"... no: last label of co.uk is
// uk). For single-label suffixes it is the suffix itself.
func (r Result) TLD() string {
	if r.Suffix == "" {
		return ""
	}
	if i := strings.LastIndexByte(r.Suffix, '.'); i >= 0 {
		return r.Suffix[i+1:]
	}
	return r.Suffix
}

// Split decomposes host. Port suffixes, trailing dots and case are
// normalized. Names that are IP addresses or have no known suffix return a
// Result whose Suffix is empty.
func (l *List) Split(host string) Result {
	host = normalizeHost(host)
	if host == "" || looksLikeIP(host) {
		return Result{}
	}
	labels := strings.Split(host, ".")
	// Find the prevailing rule per the PSL algorithm: an exception rule
	// wins outright; otherwise the rule with the most labels wins.
	matchLen := 0 // number of labels in the winning suffix
	exception := false
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		kind, ok := l.rules[cand]
		if !ok {
			continue
		}
		switch kind {
		case ruleException:
			// Exception rule: suffix is the candidate minus its first label.
			matchLen = len(labels) - i - 1
			exception = true
		case ruleNormal:
			if n := len(labels) - i; !exception && n > matchLen {
				matchLen = n
			}
		case ruleWildcard:
			// "*.foo" matches one extra label to the left of foo.
			if n := len(labels) - i + 1; !exception && i > 0 && n > matchLen {
				matchLen = n
			}
		}
		if exception {
			break
		}
	}
	if matchLen == 0 || matchLen >= len(labels) {
		// No rule, or the whole name is a public suffix: no registrable
		// domain. Unknown single-label hosts (e.g. "localhost") also land
		// here.
		if matchLen >= len(labels) && matchLen > 0 {
			return Result{Suffix: host}
		}
		return Result{}
	}
	suffix := strings.Join(labels[len(labels)-matchLen:], ".")
	domain := labels[len(labels)-matchLen-1]
	sub := ""
	if len(labels) > matchLen+1 {
		sub = strings.Join(labels[:len(labels)-matchLen-1], ".")
	}
	return Result{Subdomain: sub, Domain: domain, Suffix: suffix}
}

// SLD is a convenience wrapper returning the registrable domain of host
// ("idrive.com"), or "" when none exists. This is the key §4.2 groups
// inbound traffic by.
func (l *List) SLD(host string) string { return l.Split(host).Registrable() }

// TLD returns the top-level domain of host ("com"), or "" when none exists.
// §4.2 groups outbound traffic by TLD.
func (l *List) TLD(host string) string { return l.Split(host).TLD() }

// IsDomainName reports whether s plausibly names a domain with a known
// public suffix — the test the infotype classifier uses before labeling a
// CN/SAN entry as "Domain".
func (l *List) IsDomainName(s string) bool {
	s = normalizeHost(s)
	if s == "" || looksLikeIP(s) {
		return false
	}
	// Wildcard leftmost label is acceptable in certificates.
	s = strings.TrimPrefix(s, "*.")
	for _, lab := range strings.Split(s, ".") {
		if !validLabel(lab) {
			return false
		}
	}
	return l.Split(s).Registrable() != ""
}

func validLabel(lab string) bool {
	if lab == "" || len(lab) > 63 {
		return false
	}
	for i := 0; i < len(lab); i++ {
		c := lab[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		case c >= 'A' && c <= 'Z':
		default:
			return false
		}
	}
	return lab[0] != '-' && lab[len(lab)-1] != '-'
}

func normalizeHost(host string) string {
	host = strings.TrimSpace(strings.ToLower(host))
	host = strings.TrimSuffix(host, ".")
	// Strip a port if present (host:443) but leave IPv6 literals alone.
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[:i], ":") {
		if allDigits(host[i+1:]) && host[i+1:] != "" {
			host = host[:i]
		}
	}
	return host
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// looksLikeIP is a light check sufficient to keep IPs out of domain logic;
// full IP classification lives in internal/infotype.
func looksLikeIP(s string) bool {
	if strings.Contains(s, ":") {
		return true // IPv6-ish
	}
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if !allDigits(p) || len(p) > 3 {
			return false
		}
	}
	return true
}
