package psl

import (
	"reflect"
	"testing"
)

func TestSplitCacheMatchesList(t *testing.T) {
	l := Default()
	c := NewSplitCache(l)
	hosts := []string{
		"www.example.co.uk", "EXAMPLE.com.", "host.compute.amazonaws.com",
		"10.0.0.1", "localhost", "", "a.b.example.edu", "www.ck", "x.y.ck",
		// repeats must come from the cache and stay identical
		"www.example.co.uk", "EXAMPLE.com.",
	}
	for _, h := range hosts {
		if got, want := c.Split(h), l.Split(h); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitCache.Split(%q) = %+v, want %+v", h, got, want)
		}
	}
	if c.SLD("www.example.co.uk") != l.SLD("www.example.co.uk") {
		t.Error("SLD mismatch")
	}
	if c.TLD("www.example.co.uk") != l.TLD("www.example.co.uk") {
		t.Error("TLD mismatch")
	}
}

func TestSplitCacheMemoizes(t *testing.T) {
	c := NewSplitCache(Default())
	c.Split("a.example.com")
	c.Split("a.example.com")
	c.Split("b.example.com")
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}
