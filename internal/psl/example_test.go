package psl_test

import (
	"fmt"

	"repro/internal/psl"
)

func ExampleList_Split() {
	l := psl.Default()
	r := l.Split("mail.health.virginia.edu")
	fmt.Println(r.Subdomain, "/", r.Domain, "/", r.Suffix)
	fmt.Println("SLD:", r.Registrable())
	fmt.Println("TLD:", r.TLD())
	// Output:
	// mail.health / virginia / edu
	// SLD: virginia.edu
	// TLD: edu
}

func ExampleList_IsDomainName() {
	l := psl.Default()
	fmt.Println(l.IsDomainName("idrive.com"))
	fmt.Println(l.IsDomainName("John Smith"))
	fmt.Println(l.IsDomainName("FXP DCAU Cert"))
	// Output:
	// true
	// false
	// false
}
