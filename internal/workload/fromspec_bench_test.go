package workload

import (
	"testing"

	"repro/internal/scenario"
)

// BenchmarkSpecCompile prices the declarative path against the legacy
// direct generator: campus-via-spec must cost the same as Generate
// (the compile step is a few map lookups), and the three-cohort mix
// pays only for the extra cohorts it generates.
func BenchmarkSpecCompile(b *testing.B) {
	cfg := Default()
	cfg.CertScale = 2000

	b.Run("legacy-campus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Generate(cfg)
		}
	})
	b.Run("spec-campus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FromSpec(scenario.Campus(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	spec := benchThreeCohortSpec(b)
	b.Run("spec-three-cohort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FromSpec(spec, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpecParse prices the YAML round trip for the campus spec.
func BenchmarkSpecParse(b *testing.B) {
	data := []byte(scenario.Render(scenario.Campus()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprintSampling prices stamping JA3/JA4 onto generated
// connections: "cold" pays one real ClientHello synthesis per distinct
// (preset, SNI), "warm" is the memoized per-connection cost.
func BenchmarkFingerprintSampling(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := NewGenerator(Default())
			g.helloFP("iot-embedded", "mqtt.fleet.example.net")
		}
	})
	b.Run("warm", func(b *testing.B) {
		g := NewGenerator(Default())
		g.helloFP("iot-embedded", "mqtt.fleet.example.net")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.helloFP("iot-embedded", "mqtt.fleet.example.net")
		}
	})
}

func benchThreeCohortSpec(b *testing.B) *scenario.Spec {
	b.Helper()
	spec, err := scenario.NewBuilder().
		Seed(7).
		AggregateRate(2_000_000).
		Cohort("fleet", "iot-shared-cert", 0.5,
			scenario.Arrival("constant"), scenario.Lifecycle("diurnal")).
		Cohort("acme", "enterprise-middlebox", 0.3,
			scenario.Lifecycle("spike"), scenario.Window(2, 12)).
		Cohort("grid", "rotation-wave", 0.2,
			scenario.Arrival("bursty"), scenario.Lifecycle("drain"),
			scenario.Fingerprint("chrome")).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return spec
}
