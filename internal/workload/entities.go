package workload

// entities.go is the calibration table of the reproduction: one Entity per
// traffic population the paper reports on, with unscaled counts taken from
// the paper's tables (see the per-experiment index in DESIGN.md §4).

// Campus identities.
const (
	campusCA  = "University of Virginia"
	healthCA  = "University of Virginia Health System"
	healthSLD = "uvahealth.com"
	univSLD   = "virginia.edu"
)

// CampusIssuers are the university-managed CAs (the §6.1.1 user-account
// rule requires the issuer to be one of these).
func CampusIssuers() []string { return []string{campusCA, healthCA} }

// DefaultAssoc is the SLD→association mapping for Table 3.
func DefaultAssoc() *AssocConfig {
	return &AssocConfig{
		HealthSLDs:     []string{healthSLD, "uvahealth.org"},
		UniversitySLDs: []string{univSLD},
		VPNHostPrefix:  "vpn.",
		LocalOrgSLDs:   []string{"cvilleclinic.org", "localco.org"},
		ThirdPartySLDs: []string{"tablodash.com", "thirdsvc.io"},
		GlobusSLDs:     []string{"globus.org"},
	}
}

// campusClientPlan is the Education-issued client certificate population:
// personal names and user accounts in CN (Table 8's privacy finding),
// campus-random SANs.
func campusClientPlan(issuer string) *CertPlan {
	return &CertPlan{
		IssuerOrg:    issuer,
		IssuerCN:     issuer + " Issuing CA",
		ValidityDays: 1100,
		CN: []Content{
			{Kind: KindPersonName, Weight: 0.62},
			{Kind: KindUserAccount, Weight: 0.28},
			{Kind: KindUUID, Weight: 0.10},
		},
		SANFill: 0.45,
		SAN: []Content{
			{Kind: KindRandomHex, N: 16, Weight: 0.80},
			{Kind: KindPersonName, Weight: 0.19},
			{Kind: KindHost, Text: univSLD, Weight: 0.01},
		},
	}
}

// publicClientPlan is a public-CA client certificate with a domain CN.
func publicClientPlan(issuer, domain string) *CertPlan {
	return &CertPlan{
		IssuerOrg:    issuer,
		IssuerCN:     issuer + " CA",
		ValidityDays: 900,
		CN:           []Content{{Kind: KindHost, Text: domain, Weight: 1}},
		SANFill:      0.95,
		SAN:          []Content{{Kind: KindHost, Text: domain, Weight: 1}},
	}
}

// missingIssuerDevicePlan is the §4.2 "MissingIssuer" device population:
// empty issuer, machine-generated CNs.
func missingIssuerDevicePlan() *CertPlan {
	return &CertPlan{
		ValidityDays: 1825,
		CN: []Content{
			{Kind: KindRandomHex, N: 32, Weight: 0.55},
			{Kind: KindText, Text: "__transfer__", Weight: 0.12},
			{Kind: KindText, Text: "Dtls", Weight: 0.08},
			{Kind: KindRandomHex, N: 8, Weight: 0.08},
			{Kind: KindUUID, Weight: 0.03},
			{Kind: KindSIP, Text: "voip." + univSLD, Weight: 0.04},
			{Kind: KindEmail, Text: univSLD, Weight: 0.02},
			{Kind: KindLocalhost, Weight: 0.011},
			{Kind: KindMAC, Weight: 0.004},
			{Kind: KindIP, Weight: 0.0005},
			{Kind: KindRandomAlnum, N: 20, Weight: 0.055},
		},
	}
}

// webrtcClientPlan is the dominant client-certificate population: per-
// connection self-signed certs with CN "WebRTC" (98.7% of client
// Org/Product CNs, §6.3.4).
func webrtcClientPlan() *CertPlan {
	return &CertPlan{
		SelfSigned:   true,
		ValidityDays: 30,
		CN: []Content{
			{Kind: KindText, Text: "WebRTC", Weight: 0.955},
			{Kind: KindText, Text: "twilio", Weight: 0.008},
			{Kind: KindText, Text: "hangouts", Weight: 0.006},
			{Kind: KindText, Text: "Lenovo ThinkPad", Weight: 0.004},
			{Kind: KindText, Text: "Android Keystore", Weight: 0.003},
			{Kind: KindRandomHex, N: 8, Weight: 0.012},
			{Kind: KindRandomHex, N: 32, Weight: 0.012},
		},
	}
}

// webrtcServerPlan covers server-private CN content (Table 8 column 2 and
// Table 9's random buckets: len8 46%, len32 17%, len36 9%).
func webrtcServerPlan() *CertPlan {
	return &CertPlan{
		SelfSigned:   true,
		ValidityDays: 30,
		CN: []Content{
			{Kind: KindText, Text: "WebRTC", Weight: 0.700},
			{Kind: KindText, Text: "twilio", Weight: 0.048},
			{Kind: KindText, Text: "hangouts", Weight: 0.028},
			{Kind: KindSIP, Text: "sip.example.net", Weight: 0.0455},
			{Kind: KindRandomHex, N: 8, Weight: 0.073},
			{Kind: KindRandomHex, N: 32, Weight: 0.027},
			{Kind: KindUUID, Weight: 0.014},
			{Kind: KindRandomAlnum, N: 20, Weight: 0.011},
			{Kind: KindText, Text: "__transfer__", Weight: 0.020},
			{Kind: KindText, Text: "Dtls", Weight: 0.012},
			{Kind: KindIP, Weight: 0.0008},
			{Kind: KindHost, Text: "media.example.net", Weight: 0.0034},
		},
		SANFill: 0.004,
		SAN: []Content{
			{Kind: KindHost, Text: "media.example.net", Weight: 0.877},
			{Kind: KindText, Text: "WebRTC", Weight: 0.079},
			{Kind: KindRandomAlnum, N: 24, Weight: 0.059},
			{Kind: KindLocalhost, Weight: 0.007},
			{Kind: KindIP, Weight: 0.007},
		},
	}
}

// publicServerPlan is a public-CA server certificate for a domain.
func publicServerPlan(issuer, domain string) *CertPlan {
	return &CertPlan{
		IssuerOrg:    issuer,
		IssuerCN:     issuer + " TLS CA",
		ValidityDays: 900,
		CN:           []Content{{Kind: KindHost, Text: domain, Weight: 1}},
		SANFill:      1.0,
		SAN:          []Content{{Kind: KindHost, Text: domain, Weight: 1}},
	}
}

// privateServerPlan is a campus/vendor private-CA server certificate.
func privateServerPlan(issuer, domain string) *CertPlan {
	return &CertPlan{
		IssuerOrg:    issuer,
		IssuerCN:     issuer + " Issuing CA",
		ValidityDays: 1095,
		CN:           []Content{{Kind: KindHost, Text: domain, Weight: 1}},
	}
}

// corpClientPlan is a private corporate client certificate.
func corpClientPlan(org string) *CertPlan {
	return &CertPlan{
		IssuerOrg:    org,
		IssuerCN:     org + " Device CA",
		ValidityDays: 1095,
		CN:           []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
	}
}

// Entities returns the full mTLS roster (unscaled counts).
func Entities() []Entity {
	var es []Entity

	// ------------------------------------------------------------------
	// INBOUND mutual TLS (≈565M connections; Tables 2–3, Figure 1).
	// ------------------------------------------------------------------
	es = append(es,
		// University Health: 64.91% of inbound mTLS connections, 41.1% of
		// clients, Education-issued client certs (99.96%), with the
		// October–December 2023 surge.
		Entity{
			Name: "health", Inbound: true, Health: true,
			SNI:     "portal." + healthSLD,
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 40, Clients: 41100,
			ServerPlan:       privateServerPlan(healthCA, healthSLD),
			ClientPlan:       campusClientPlan(healthCA),
			ClientPlan2:      publicClientPlan("Entrust, Inc.", "clinicpartner.com"),
			ClientPlan2Share: 0.0094,
			Conns:            363_500_000,
			Shape:            ShapeHealthSurge,
		},
		// University Server / FileWave device management on port 20017
		// (24.89% of inbound mTLS, Table 2) with MissingIssuer client
		// certs (95.84%, Table 3).
		Entity{
			Name: "filewave", Inbound: true,
			SNI:     "mdm." + univSLD,
			Ports:   []PortWeight{{Port: 20017, Weight: 1}},
			Servers: 4, Clients: 4500, MinClients: 12,
			ServerPlan:       privateServerPlan("FileWave", univSLD),
			ClientPlan:       missingIssuerDevicePlan(),
			ClientPlan2:      publicClientPlan("DigiCert Inc", univSLD),
			ClientPlan2Share: 0.037,
			Conns:            139_400_000,
			Shape:            ShapeGrowth,
		},
		// University LDAPS access control on 636 (6.36% of inbound mTLS).
		Entity{
			Name: "ldaps", Inbound: true,
			SNI:     "ldap." + univSLD,
			Ports:   []PortWeight{{Port: 636, Weight: 1}},
			Servers: 6, Clients: 500,
			ServerPlan: privateServerPlan(campusCA, univSLD),
			ClientPlan: campusClientPlan(campusCA),
			Conns:      35_600_000,
			Shape:      ShapeGrowth,
		},
		// University VPN: tiny connection share (0.30%) but 14.73% of
		// clients — every remote user authenticates occasionally.
		Entity{
			Name: "vpn", Inbound: true,
			SNI:     "vpn." + univSLD,
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 4, Clients: 14730,
			ServerPlan:       privateServerPlan(campusCA, univSLD),
			ClientPlan:       campusClientPlan(campusCA),
			ClientPlan2:      publicClientPlan("GlobalSign", "remotehome.net"),
			ClientPlan2Share: 0.0001,
			Conns:            1_680_000,
			Shape:            ShapeGrowth,
		},
		// Local organizations: public-CA client certs (96.62%).
		Entity{
			Name: "localorg", Inbound: true,
			SNI:     "services.cvilleclinic.org",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 12, Clients: 2200, MinClients: 30,
			ServerPlan:       publicServerPlan("Sectigo Limited", "cvilleclinic.org"),
			ClientPlan:       publicClientPlan("IdenTrust", "cvilleclinic.org"),
			ClientPlan2:      corpClientPlan("Cville Health Partners Inc"),
			ClientPlan2Share: 0.0132,
			Conns:            13_500_000,
			Shape:            ShapeGrowth,
		},
		// Local-org serial collisions: serials 01/02/03 within the same
		// private issuer (§5.1.2), short validity.
		Entity{
			Name: "localorg-serial01", Inbound: true,
			SNI:     "gw.localco.org",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 3, Clients: 120, MinClients: 6,
			ServerPlan: &CertPlan{
				IssuerOrg: "LocalCo Systems", SerialFixed: "01",
				ValidityDays: 14, ReissueDays: 14,
				CN: []Content{{Kind: KindHost, Text: "localco.org", Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg: "LocalCo Systems", SerialFixed: "02",
				ValidityDays: 14, ReissueDays: 14,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 400_000,
		},
		// ViptelaClient: every certificate — client or server — carries
		// serial 024680 (§5.1.2).
		Entity{
			Name: "viptela", Inbound: true,
			SNI:     "sdwan.localco.org",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 4, Clients: 180, MinClients: 6,
			ServerPlan: &CertPlan{
				IssuerCN: "ViptelaClient", SerialFixed: "024680",
				ValidityDays: 14, ReissueDays: 14,
				CN: []Content{{Kind: KindHost, Text: "localco.org", Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerCN: "ViptelaClient", SerialFixed: "024680",
				ValidityDays: 14, ReissueDays: 14,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 270_000,
		},
		// Outset Medical (tablodash.com): third-party dialysis service on
		// port 9093; the SAME certificate is presented by both endpoints
		// (Table 5, 4,403 clients, 700-day activity).
		Entity{
			Name: "outset", Inbound: true,
			SNI:     "fleet.tablodash.com",
			Ports:   []PortWeight{{Port: 9093, Weight: 1}},
			Servers: 3, Clients: 4403, MinClients: 20,
			SharedCert: true,
			ClientPlan: &CertPlan{
				IssuerOrg: "Outset Medical", ValidityDays: 1460,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 1_460_000,
			Shape: ShapeGrowth,
		},
		// Misc third-party inbound HTTPS.
		Entity{
			Name: "thirdparty-misc", Inbound: true,
			SNI:     "api.thirdsvc.io",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 5, Clients: 300,
			ServerPlan: publicServerPlan("DigiCert Inc", "thirdsvc.io"),
			ClientPlan: &CertPlan{
				IssuerOrg: "zqxsvc", ValidityDays: 365, // Private - Others
				CN: []Content{{Kind: KindRandomAlnum, N: 14, Weight: 1}},
			},
			ClientPlan2:      publicClientPlan("GoDaddy.com, Inc.", "thirdsvc.io"),
			ClientPlan2Share: 0.55,
			Conns:            280_000,
		},
		// Globus with SNI (the small Table 3 "Globus" association row).
		Entity{
			Name: "globus-sni", Inbound: true,
			SNI:     "transfer.globus.org",
			Ports:   []PortWeight{{Port: 50000, PortHigh: 51000, Weight: 1}},
			Servers: 4, Clients: 60, MinClients: 4,
			ServerPlan: privateServerPlan(campusCA, univSLD),
			ClientPlan: campusClientPlan(campusCA),
			Conns:      340_000,
		},
		// Globus FXP DCAU: the headline §5.1.2 finding. SNI is the
		// literal string "FXP DCAU Cert" (no SLD extracts → Unknown
		// association), serial 00, 14-day shared certificates reissued
		// for 700 days: 7.49M connections, 798 clients, ~39k unique
		// certs at full scale.
		Entity{
			Name: "globus-in", Inbound: true,
			SNI:     "FXP DCAU Cert",
			Ports:   []PortWeight{{Port: 50000, PortHigh: 51000, Weight: 1}},
			Servers: 8, Clients: 798, MinClients: 4,
			SharedCert: true,
			ClientPlan: &CertPlan{
				IssuerOrg: "Globus Online", IssuerCN: "FXP DCAU Cert",
				SerialFixed: "00", ValidityDays: 14, ReissueDays: 14,
				CN: []Content{
					{Kind: KindText, Text: "__transfer__", Weight: 0.84},
					{Kind: KindRandomHex, N: 8, Weight: 0.16},
				},
			},
			Conns: 7_490_000,
		},
		// Unknown-association device traffic: missing SNI, missing
		// issuer, 36.58% of inbound clients but few connections.
		Entity{
			Name: "unknown-dev", Inbound: true,
			SNI:     "",
			Ports:   []PortWeight{{Port: 443, Weight: 0.7}, {Port: 8443, Weight: 0.3}},
			Servers: 20, Clients: 40000,
			ServerPlan: missingIssuerDevicePlan(),
			ClientPlan: missingIssuerDevicePlan(),
			Conns:      900_000,
			Shape:      ShapeGrowth,
		},
		// Expired inbound client certificates (Figure 5a): VPN 45.83%,
		// Local Organization 32.79%, Third Party 15.38%.
		Entity{
			Name: "vpn-expired", Inbound: true,
			SNI:     "vpn." + univSLD,
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 4, Clients: 1100, MinClients: 24,
			ServerPlan: privateServerPlan(campusCA, univSLD),
			ClientPlan: &CertPlan{
				IssuerOrg: campusCA, IssuerCN: campusCA + " Issuing CA",
				ValidityDays: 730, ExpiredMinDays: 10, ExpiredMaxDays: 1200,
				CN: []Content{
					{Kind: KindPersonName, Weight: 0.6},
					{Kind: KindUserAccount, Weight: 0.4},
				},
			},
			Conns: 500_000,
		},
		Entity{
			Name: "localorg-expired", Inbound: true,
			SNI:     "services.cvilleclinic.org",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 3, Clients: 790, MinClients: 8,
			ServerPlan: publicServerPlan("Sectigo Limited", "cvilleclinic.org"),
			ClientPlan: &CertPlan{
				IssuerOrg: "IdenTrust", IssuerCN: "TrustID Server CA O1",
				ValidityDays: 398, ExpiredMinDays: 10, ExpiredMaxDays: 900,
				CN:      []Content{{Kind: KindHost, Text: "cvilleclinic.org", Weight: 1}},
				SANFill: 0.9,
				SAN:     []Content{{Kind: KindHost, Text: "cvilleclinic.org", Weight: 1}},
			},
			Conns: 350_000,
		},
		Entity{
			Name: "thirdparty-expired", Inbound: true,
			SNI:     "api.thirdsvc.io",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 370, MinClients: 8,
			ServerPlan: publicServerPlan("DigiCert Inc", "thirdsvc.io"),
			ClientPlan: &CertPlan{
				IssuerOrg: "zqxsvc", ValidityDays: 365,
				ExpiredMinDays: 30, ExpiredMaxDays: 700,
				CN: []Content{{Kind: KindRandomAlnum, N: 14, Weight: 1}},
			},
			Conns: 180_000,
		},
		// Inbound dummy-issuer populations (Table 4): 'Unspecified'
		// client certs across campus servers (with the 1024-bit RSA keys
		// §5.1.1 flags), and Default Company Ltd / Internet Widgits at
		// local organizations.
		Entity{
			Name: "in-dummy-unspecified", Inbound: true,
			SNI:     "devices." + univSLD,
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 452, MinServers: 8, Clients: 2000,
			ServerPlan: privateServerPlan(campusCA, univSLD),
			ClientPlan: &CertPlan{
				IssuerOrg: "Unspecified", ValidityDays: 3650,
				CN: []Content{{Kind: KindRandomHex, N: 32, Weight: 1}},
			},
			Conns: 566_996,
		},
		Entity{
			Name: "in-dummy-localorg", Inbound: true,
			SNI:     "iot.localco.org",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 21, MinServers: 3, Clients: 95, MinClients: 5,
			ServerPlan: privateServerPlan("LocalCo Systems", "localco.org"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Default Company Ltd", ValidityDays: 3650,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			ClientPlan2: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", ValidityDays: 3650,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			ClientPlan2Share: 0.4,
			Conns:            95_000,
		},
		// The 13 'Unspecified' dummy certs with 1024-bit RSA keys that
		// §5.1.1 calls out (NIST-disallowed since 2013).
		Entity{
			Name: "in-dummy-weakkeys", Inbound: true,
			SNI:     "legacy." + univSLD,
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 13, MinClients: 3,
			ServerPlan: privateServerPlan(campusCA, univSLD),
			ClientPlan: &CertPlan{
				IssuerOrg: "Unspecified", ValidityDays: 3650,
				WeakRSAShare: 1,
				CN:           []Content{{Kind: KindRandomHex, N: 32, Weight: 1}},
			},
			Conns: 8_300,
		},
	)

	// ------------------------------------------------------------------
	// OUTBOUND mutual TLS (≈640M connections; Table 2, Figure 2).
	// ------------------------------------------------------------------
	es = append(es,
		// amazonaws.com: 28.51% of outbound mTLS; public server certs,
		// private client issuers that do not match the server's domain.
		Entity{
			Name: "aws", SNI: "data.amazonaws.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 600, Clients: 2600, MinClients: 20,
			ServerPlan: publicServerPlan("Amazon", "amazonaws.com"),
			ClientPlan: &CertPlan{ // missing issuer: the 37.84% finding
				ValidityDays:      1095,
				LongValidityShare: 0.20, LongValidityMin: 10000, LongValidityMax: 40000,
				CN: []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
			},
			ClientPlan2:      corpClientPlan("Insight Analytics Inc"),
			ClientPlan2Share: 0.75,
			Conns:            182_500_000,
			Shape:            ShapeGrowth,
		},
		// rapid7.com: 27.44%, disappears after September 2023 (§4.1's
		// outbound decline).
		Entity{
			Name: "rapid7", SNI: "endpoint.rapid7.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 300, Clients: 2400,
			ServerPlan: publicServerPlan("DigiCert Inc", "rapid7.com"),
			ClientPlan: corpClientPlan("Rapid7 LLC"),
			Conns:      175_600_000,
			EndMonth:   16,
			Shape:      ShapeGrowth,
		},
		// gpcloudservice.com: 13.33%.
		Entity{
			Name: "gpcloud", SNI: "svc.gpcloudservice.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 200, Clients: 900, MinClients: 16,
			ServerPlan: publicServerPlan("Let's Encrypt", "gpcloudservice.com"),
			ClientPlan: &CertPlan{ // missing issuer, with Figure 4's long tail
				ValidityDays:      1825,
				LongValidityShare: 0.6, LongValidityMin: 10000, LongValidityMax: 40000,
				CN: []Content{{Kind: KindRandomHex, N: 32, Weight: 1}},
			},
			Conns: 85_300_000,
			Shape: ShapeGrowth,
		},
		// Remaining outbound HTTPS cloud/SaaS mix.
		Entity{
			Name: "othercloud", SNI: "app.example-saas.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 900, Clients: 2000, MinClients: 16,
			ServerPlan: publicServerPlan("Sectigo Limited", "example-saas.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Example SaaS Devices Inc", ValidityDays: 1460,
				LongValidityShare: 0.12, LongValidityMin: 10000, LongValidityMax: 40000,
				CN: []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
			},
			ClientPlan2: &CertPlan{ // dummy-issuer tail of Figure 4
				IssuerOrg: "Internet Widgits Pty Ltd", ValidityDays: 3650,
				LongValidityShare: 0.3, LongValidityMin: 10000, LongValidityMax: 40000,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			ClientPlan2Share: 0.08,
			Conns:            88_900_000,
			Shape:            ShapeGrowth,
		},
		// MQTT over TLS on 8883 (3.69%): Honeywell alarmnet IoT fleet —
		// including the incorrect-date client certs of Table 11.
		Entity{
			Name: "mqtt-alarmnet", SNI: "mqtt.alarmnet.com",
			Ports:   []PortWeight{{Port: 8883, Weight: 1}},
			Servers: 40, Clients: 5200,
			ServerPlan: privateServerPlan("Honeywell International Inc", "alarmnet.com"),
			ClientPlan: corpClientPlan("Honeywell International Inc"),
			Conns:      23_600_000,
			Shape:      ShapeGrowth,
		},
		Entity{
			Name: "alarmnet-baddates", SNI: "mqtt.alarmnet.com",
			Ports:   []PortWeight{{Port: 8883, Weight: 1}},
			Servers: 4, Clients: 1934, MinClients: 12,
			ServerPlan: privateServerPlan("Honeywell International Inc", "alarmnet.com"),
			ClientPlan: &CertPlan{
				IssuerOrg:      "Honeywell International Inc",
				IncorrectDates: true, IncorrectNotBeforeYear: 2021, IncorrectNotAfterYear: 1815,
				CN: []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
			},
			Conns: 1_200_000,
		},
		Entity{
			Name: "clouddevice-baddates", SNI: "hub.clouddevice.io",
			Ports:   []PortWeight{{Port: 8883, Weight: 1}},
			Servers: 3, Clients: 1645, MinClients: 10,
			ServerPlan: privateServerPlan("Honeywell International Inc", "clouddevice.io"),
			ClientPlan: &CertPlan{
				IssuerOrg:      "Honeywell International Inc",
				IncorrectDates: true, IncorrectNotBeforeYear: 2021, IncorrectNotAfterYear: 1815,
				CN: []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
			},
			Conns: 900_000,
		},
		// IDrive: incorrect dates at BOTH endpoints (Table 12: 718
		// clients, 701-day activity).
		Entity{
			Name: "idrive-baddates", SNI: "backup.idrive.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 6, Clients: 718, MinClients: 10,
			ServerPlan: &CertPlan{
				IssuerOrg:      "IDrive Inc Certificate Authority",
				IncorrectDates: true, IncorrectNotBeforeYear: 2020, IncorrectNotAfterYear: 1850,
				CN: []Content{{Kind: KindHost, Text: "idrive.com", Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg:      "IDrive Inc Certificate Authority",
				IncorrectDates: true, IncorrectNotBeforeYear: 2019, IncorrectNotAfterYear: 1849,
				CN: []Content{{Kind: KindRandomHex, N: 16, Weight: 1}},
			},
			Conns: 2_400_000,
		},
		// SDS: both endpoints, epoch 1970 → 1831, missing SNI, 17
		// clients for 474 days.
		Entity{
			Name: "sds-baddates", SNI: "",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 17, MinClients: 4,
			ServerPlan: &CertPlan{
				IssuerOrg:      "SDS",
				IncorrectDates: true, IncorrectNotBeforeYear: 1970, IncorrectNotAfterYear: 1831,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg:      "SDS",
				IncorrectDates: true, IncorrectNotBeforeYear: 1970, IncorrectNotAfterYear: 1831,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 50_000, StartMonth: 7,
		},
		// Remaining Table 11 incorrect-date singles.
		Entity{
			Name: "rcgen-baddates", SNI: "",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 1, Clients: 2, MinClients: 2,
			ServerPlan: publicServerPlan("Let's Encrypt", "peer-svc.net"),
			ClientPlan: &CertPlan{
				IssuerOrg:      "rcgen",
				IncorrectDates: true, IncorrectNotBeforeYear: 1975, IncorrectNotAfterYear: 1757,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 2_000, StartMonth: 10, EndMonth: 12,
		},
		Entity{
			Name: "ayoba-baddates", SNI: "chat.ayoba.me",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 15, MinClients: 3,
			ServerPlan: publicServerPlan("Let's Encrypt", "ayoba.me"),
			ClientPlan: &CertPlan{
				IssuerOrg:      "OpenPGP to X.509 Bridge",
				IncorrectDates: true, IncorrectNotBeforeYear: 2022, IncorrectNotAfterYear: 2022,
				CN: []Content{{Kind: KindPersonName, Weight: 1}},
			},
			Conns: 12_000, StartMonth: 3, EndMonth: 8,
		},
		// SMTP / SMTPS mail relays: public-CA client certificates whose
		// CNs are mail-infrastructure domains (§6.3.3's 38%).
		Entity{
			Name: "smtp25", SNI: "mx.mailhub.com",
			Ports:   []PortWeight{{Port: 25, Weight: 1}},
			Servers: 120, Clients: 900,
			ServerPlan: publicServerPlan("DigiCert Inc", "mailhub.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Let's Encrypt", IssuerCN: "R3", ValidityDays: 90,
				ReissueDays: 90,
				CN: []Content{
					{Kind: KindHost, Text: "smtp.mailhub.com", Weight: 0.5},
					{Kind: KindHost, Text: "mx.mailhub.com", Weight: 0.3},
					{Kind: KindHost, Text: "mail.mailhub.com", Weight: 0.2},
				},
				SANFill: 0.98,
				SAN:     []Content{{Kind: KindHost, Text: "smtp.mailhub.com", Weight: 1}},
			},
			Conns: 21_600_000,
			Shape: ShapeGrowth,
		},
		Entity{
			Name: "smtps465", SNI: "smtp.mailhub.com",
			Ports:   []PortWeight{{Port: 465, Weight: 1}},
			Servers: 90, Clients: 700,
			ServerPlan: publicServerPlan("GlobalSign", "mailhub.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Let's Encrypt", IssuerCN: "R3", ValidityDays: 90,
				ReissueDays: 90,
				CN:          []Content{{Kind: KindHost, Text: "mail.mailhub.com", Weight: 1}},
				SANFill:     0.98,
				SAN:         []Content{{Kind: KindHost, Text: "mail.mailhub.com", Weight: 1}},
			},
			Conns: 21_200_000,
			Shape: ShapeGrowth,
		},
		// Splunk forwarders on 9997 (1.48%) plus the Table 5 shared-cert
		// sliver (4 clients, 114 days).
		Entity{
			Name: "splunk", SNI: "inputs.splunkcloud.com",
			Ports:   []PortWeight{{Port: 9997, Weight: 1}},
			Servers: 60, Clients: 800,
			ServerPlan: publicServerPlan("DigiCert Inc", "splunkcloud.com"),
			ClientPlan: corpClientPlan("Splunk"),
			Conns:      9_470_000,
			Shape:      ShapeGrowth,
		},
		Entity{
			Name: "splunk-shared", SNI: "hec.splunkcloud.com",
			Ports:   []PortWeight{{Port: 9997, Weight: 1}},
			Servers: 1, Clients: 4, MinClients: 4,
			SharedCert: true,
			ClientPlan: &CertPlan{
				IssuerOrg: "Splunk", ValidityDays: 1095,
				CN: []Content{{Kind: KindHost, Text: "splunkcloud.com", Weight: 1}},
			},
			Conns: 40_000, StartMonth: 12, EndMonth: 15,
		},
		// Globus outbound FXP DCAU (Table 5: 105 clients, 699 days).
		Entity{
			Name: "globus-out", SNI: "FXP DCAU Cert",
			Ports:   []PortWeight{{Port: 50000, PortHigh: 51000, Weight: 1}},
			Servers: 30, Clients: 105, MinClients: 4,
			SharedCert: true,
			ClientPlan: &CertPlan{
				IssuerOrg: "Globus Online", IssuerCN: "FXP DCAU Cert",
				SerialFixed: "00", ValidityDays: 14, ReissueDays: 14,
				CN: []Content{
					{Kind: KindText, Text: "__transfer__", Weight: 0.84},
					{Kind: KindRandomHex, N: 8, Weight: 0.16},
				},
			},
			Conns: 5_930_000,
		},
		// GuardiCore: client serial 01, server serial 03E8, missing SNI,
		// >2-year validity, whole-study activity (§5.1.2).
		Entity{
			Name: "guardicore", SNI: "",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 43, MinServers: 6, Clients: 57, MinClients: 8,
			ServerPlan: &CertPlan{
				IssuerOrg: "GuardiCore", SerialFixed: "03E8", ValidityDays: 900,
				CN: []Content{{Kind: KindRandomHex, N: 16, Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg: "GuardiCore", SerialFixed: "01", ValidityDays: 900,
				CN: []Content{{Kind: KindRandomHex, N: 16, Weight: 1}},
			},
			Conns: 904,
		},
		// Apple services with ~1,000-day-expired public client certs
		// (Figure 5b's cluster: 337 of 339).
		Entity{
			Name: "apple-expired", SNI: "push.apple.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 40, Clients: 337, MinClients: 30,
			ServerPlan: publicServerPlan("Apple Inc.", "apple.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Apple Inc.", IssuerCN: "Apple Application CA",
				ValidityDays: 730, ExpiredMinDays: 950, ExpiredMaxDays: 1050,
				CN: []Content{{Kind: KindUUID, Weight: 1}},
			},
			Conns: 2_000_000,
			Shape: ShapeGrowth,
		},
		Entity{
			Name: "microsoft-expired", SNI: "agent.azure.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 2, MinClients: 2,
			ServerPlan: publicServerPlan("Microsoft Corporation", "azure.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Microsoft Corporation", IssuerCN: "Microsoft Device CA",
				ValidityDays: 730, ExpiredMinDays: 900, ExpiredMaxDays: 1100,
				CN: []Content{{Kind: KindRandomAlnum, N: 20, Weight: 1}},
			},
			Conns: 40_000,
		},
		// Expired private-issuer outbound client certs (Figure 5b's
		// scattered private marginal).
		Entity{
			Name: "expired-priv-out", SNI: "relay.example-iot.net",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 10, Clients: 900, MinClients: 25,
			ServerPlan: publicServerPlan("Let's Encrypt", "example-iot.net"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Example IoT Devices Inc", ValidityDays: 365,
				ExpiredMinDays: 10, ExpiredMaxDays: 1500,
				CN: []Content{{Kind: KindRandomAlnum, N: 16, Weight: 1}},
			},
			Conns: 600_000,
		},
		// Azure Sphere / Hybrid Runbook Worker / Apple iPhone device
		// populations: the public-CA client certificates of §6.3.3.
		Entity{
			Name: "azuresphere", SNI: "sphere.azure.net",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 30, Clients: 6163, MinClients: 40,
			ServerPlan: publicServerPlan("Microsoft Corporation", "azure.net"),
			ClientPlan: &CertPlan{
				IssuerOrg:    "Microsoft Corporation",
				IssuerCN:     "Microsoft Azure Sphere f3a9",
				ValidityDays: 365,
				CN:           []Content{{Kind: KindRandomAlnum, N: 24, Weight: 1}},
			},
			Conns: 3_000_000,
			Shape: ShapeGrowth,
		},
		Entity{
			Name: "runbook", SNI: "automation.azure.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 20, Clients: 5660, MinClients: 30,
			ServerPlan: publicServerPlan("Microsoft Corporation", "azure.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Microsoft Corporation", IssuerCN: "Microsoft Azure CA",
				ValidityDays: 1095,
				CN:           []Content{{Kind: KindText, Text: "Hybrid Runbook Worker", Weight: 1}},
			},
			Conns: 2_800_000,
			Shape: ShapeGrowth,
		},
		Entity{
			Name: "iphone-device", SNI: "courier.apple.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 30, Clients: 1340, MinClients: 8,
			ServerPlan: publicServerPlan("Apple Inc.", "apple.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Apple Inc.", IssuerCN: "Apple iPhone Device CA",
				ValidityDays: 730,
				CN:           []Content{{Kind: KindUUID, Weight: 1}},
			},
			Conns: 1_500_000,
			Shape: ShapeGrowth,
		},
		Entity{
			Name: "webex-clients", SNI: "mtg.webex.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 20, Clients: 760, MinClients: 6,
			ServerPlan: publicServerPlan("Cisco Systems", "webex.com"),
			ClientPlan: publicClientPlan("Cisco Systems", "webex.com"),
			Conns:      900_000,
		},
		Entity{
			Name: "pubperson-clients", SNI: "login.partner-idp.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 4, Clients: 133, MinClients: 6,
			ServerPlan: publicServerPlan("Entrust, Inc.", "partner-idp.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Entrust, Inc.", IssuerCN: "Entrust Class 1 Client CA",
				ValidityDays: 1095,
				CN:           []Content{{Kind: KindPersonName, Weight: 1}},
			},
			Conns: 90_000,
		},
		// Vendor-managed devices (AT&T / Red Hat / Samsung): the §6.3.4
		// "22% of random client CNs relate to vendor services" bucket.
		Entity{
			Name: "vendor-devices", SNI: "telemetry.vendornet.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 40, Clients: 50000,
			ServerPlan: publicServerPlan("DigiCert Inc", "vendornet.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "AT&T Services Inc", ValidityDays: 1825,
				CN: []Content{{Kind: KindRandomAlnum, N: 20, Weight: 1}},
			},
			ClientPlan2: &CertPlan{
				IssuerOrg: "Red Hat Inc", ValidityDays: 1825,
				CN: []Content{{Kind: KindRandomAlnum, N: 20, Weight: 1}},
			},
			ClientPlan2Share: 0.4,
			Conns:            4_000_000,
			Shape:            ShapeGrowth,
		},
		// The WebRTC population: per-connection self-signed certificates
		// on both endpoints — the bulk of all unique mTLS certificates
		// (client Org/Product CN 92.49%, server 79.30%).
		Entity{
			Name: "webrtc", SNI: "",
			Ports:   []PortWeight{{Port: 30000, PortHigh: 49999, Weight: 1}},
			Servers: 100, Clients: 3_020_000,
			PerConnCerts: true, NewServerCertProb: 0.69,
			ServerPlan: webrtcServerPlan(),
			ClientPlan: webrtcClientPlan(),
			Conns:      3_300_000,
			Shape:      ShapeGrowth,
		},
		// Corp.-Miscellaneous on 3128 (Amazon FireHose, Mixpanel).
		Entity{
			Name: "corp-misc-3128", SNI: "firehose.analytics-misc.com",
			Ports:   []PortWeight{{Port: 3128, Weight: 1}},
			Servers: 12, Clients: 120,
			ServerPlan: publicServerPlan("Amazon", "analytics-misc.com"),
			ClientPlan: corpClientPlan("Mixpanel"),
			Conns:      180_000,
		},
		// Outbound dummy-issuer servers (Table 4) and the both-endpoint
		// dummies of Table 10.
		Entity{
			Name: "out-dummy-widgits-server", SNI: "dev.widgitsapp.io",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 511, MinServers: 10, Clients: 150, MinClients: 5,
			ServerPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", SelfSigned: true,
				ValidityDays: 3650,
				CN:           []Content{{Kind: KindHost, Text: "widgitsapp.io", Weight: 1}},
			},
			ClientPlan: corpClientPlan("Widgits Consumer Inc"),
			Conns:      3_689,
		},
		Entity{
			Name: "out-dummy-defaultco-server", SNI: "box.defaultapp.cn",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 147, MinServers: 6, Clients: 40, MinClients: 3,
			ServerPlan: &CertPlan{
				IssuerOrg: "Default Company Ltd", SelfSigned: true,
				ValidityDays: 3650,
				CN:           []Content{{Kind: KindHost, Text: "defaultapp.cn", Weight: 1}},
			},
			ClientPlan: corpClientPlan("Default Devices Co"),
			Conns:      331,
		},
		Entity{
			Name: "out-dummy-acme-server", SNI: "srv.acmeapp.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 20, MinServers: 4, Clients: 10, MinClients: 3,
			ServerPlan: &CertPlan{
				IssuerOrg: "Acme Co", SelfSigned: true, ValidityDays: 3650,
				CN: []Content{{Kind: KindHost, Text: "acmeapp.com", Weight: 1}},
			},
			ClientPlan: corpClientPlan("Acme Fleet Inc"),
			Conns:      26,
		},
		Entity{
			Name: "out-dummy-widgits-client", SNI: "collector.widgitsiot.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 73, MinServers: 5, Clients: 500, MinClients: 8,
			ServerPlan: publicServerPlan("Let's Encrypt", "widgitsiot.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", ValidityDays: 3650,
				WeakRSAShare: 0.01,
				CN:           []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 69_069,
		},
		// Table 10: dummy issuers at BOTH endpoints.
		Entity{
			Name: "fireboard-bothdummy", SNI: "cloud.fireboard.io",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 3, Clients: 9, MinClients: 4,
			ServerPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", SelfSigned: true,
				ValidityDays: 3650, Version: 1,
				CN: []Content{{Kind: KindHost, Text: "fireboard.io", Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", ValidityDays: 3650,
				Version: 1,
				CN:      []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 60_000, StartMonth: 1, EndMonth: 21,
		},
		Entity{
			Name: "aws-bothdummy", SNI: "test.amazonaws.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 2, Clients: 7, MinClients: 3,
			ServerPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", SelfSigned: true,
				ValidityDays: 3650,
				CN:           []Content{{Kind: KindHost, Text: "amazonaws.com", Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg: "Internet Widgits Pty Ltd", ValidityDays: 3650,
				CN: []Content{{Kind: KindRandomHex, N: 8, Weight: 1}},
			},
			Conns: 2_000, StartMonth: 5, EndMonth: 5,
		},
		// Figure 4's extreme: one client certificate valid 83,432 days
		// (~228 years), servers under tmdxdev.com.
		Entity{
			Name: "tmdx-extreme", SNI: "dev.tmdxdev.com",
			Ports:   []PortWeight{{Port: 443, Weight: 1}},
			Servers: 1, Clients: 1, MinClients: 1,
			ServerPlan: publicServerPlan("Let's Encrypt", "tmdxdev.com"),
			ClientPlan: &CertPlan{
				IssuerOrg: "TMDX Systems Inc", ValidityDays: 83432,
				CN: []Content{{Kind: KindRandomHex, N: 16, Weight: 1}},
			},
			Conns: 5_000,
		},
	)
	return es
}
