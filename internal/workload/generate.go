package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/psl"
	"repro/internal/tlswire"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// Generator materializes the entity roster into a zeek.Dataset.
type Generator struct {
	cfg    Config
	rng    *ids.RNG
	alloc  *netsim.Allocator
	bundle *truststore.Bundle
	ctlog  *ct.Log
	psl    *psl.List
	ds     *zeek.Dataset

	certCache map[string]*certmodel.CertInfo
	uidRNG    *ids.RNG
	fpCache   map[string][2]string
}

// NewGenerator prepares a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.CertScale <= 0 {
		cfg.CertScale = 200
	}
	if cfg.Months <= 0 {
		cfg.Months = 23
	}
	root := ids.NewRNG(cfg.Seed)
	return &Generator{
		cfg:       cfg,
		rng:       root.Fork("workload"),
		alloc:     netsim.NewAllocator(netsim.DefaultPlan()),
		bundle:    truststore.DefaultBundle(),
		ctlog:     ct.NewLog(),
		psl:       psl.Default(),
		ds:        zeek.NewDataset(),
		certCache: make(map[string]*certmodel.CertInfo),
		uidRNG:    root.Fork("uids"),
		fpCache:   make(map[string][2]string),
	}
}

// Generate runs the full synthesis and returns the Build. It panics if
// the entity roster fails validation — the roster is code, and an invalid
// calibration table is a programming error, not an input error.
func Generate(cfg Config) *Build {
	g := NewGenerator(cfg)
	entities := Entities()
	if err := Validate(entities, g.cfg.Months); err != nil {
		panic(err)
	}
	return g.run(entities, nil)
}

// run is the shared synthesis core behind Generate and FromSpec: extra CT
// entries first (they never touch the RNG streams), then the entity
// roster in order, then the cross-entity populations.
func (g *Generator) run(entities []Entity, extraCT []ct.Entry) *Build {
	for _, en := range extraCT {
		g.ctlog.AddChain(en)
	}
	for _, e := range entities {
		g.emitEntity(&e)
	}
	g.emitCrossShared()
	g.emitInterception()
	g.emitBackground()
	return &Build{
		Raw:           g.ds,
		CT:            g.ctlog,
		Bundle:        g.bundle,
		CampusIssuers: CampusIssuers(),
		Assoc:         DefaultAssoc(),
		Plan:          g.alloc.Plan(),
		Months:        g.cfg.Months,
	}
}

// monthFirstDay returns the study-day offset of month m's first day.
func monthFirstDay(m int) int {
	return int(certmodel.DayToTime(0).AddDate(0, m, 0).Sub(certmodel.DayToTime(0)).Hours() / 24)
}

// cert returns (minting if needed) the cached certificate for a holder.
func (g *Generator) cert(plan *CertPlan, entity, kind string, holder, reissue, firstUseDay int) *certmodel.CertInfo {
	key := fmt.Sprintf("%s/%s/%d/%d", entity, kind, holder, reissue)
	if c, ok := g.certCache[key]; ok {
		return c
	}
	// Per-cert RNG forked from the key: cache misses never perturb the
	// global stream, keeping generation order-independent.
	crng := g.rng.Fork(key)
	c := plan.mint(crng, entity+"/"+kind, holder, reissue, firstUseDay)
	if c.SelfSigned && c.IssuerOrg == "" && c.IssuerCN == "" {
		c.IssuerCN = c.SubjectCN
	}
	g.certCache[key] = c
	g.ds.AddCert(c)
	return c
}

func (g *Generator) pickPort(rng *ids.RNG, ports []PortWeight) uint16 {
	if len(ports) == 0 {
		return 443
	}
	ws := make([]float64, len(ports))
	for i, p := range ports {
		ws[i] = p.Weight
	}
	pw := ports[ids.WeightedPick(rng, ws)]
	if pw.PortHigh > pw.Port {
		return pw.Port + uint16(rng.Intn(int(pw.PortHigh-pw.Port)+1))
	}
	return pw.Port
}

// emitEntity renders one entity's connections and certificates.
func (g *Generator) emitEntity(e *Entity) {
	shape := e.Shape
	if shape == nil {
		shape = ShapeFlat
	}
	start := e.StartMonth
	end := e.effectiveEnd(g.cfg.Months)
	if start > end {
		start = end
	}
	var shapeSum float64
	for m := start; m <= end; m++ {
		shapeSum += shape(m)
	}
	if shapeSum <= 0 {
		shapeSum = 1
	}

	clients := g.cfg.scaled(e.Clients, e.MinClients)
	servers := g.cfg.scaled(e.Servers, e.MinServers)
	if servers == 0 {
		servers = 1
	}
	firstUseDay := monthFirstDay(start)
	ern := g.rng.Fork("entity/" + e.Name)

	if e.PerConnCerts {
		g.emitPerConnEntity(e, ern, clients, servers, start, end, shape, shapeSum)
		return
	}

	clientSubnets := e.ClientSubnets
	if clientSubnets == 0 {
		clientSubnets = clients/50 + 1
	}
	plan2Clients := int(math.Ceil(e.ClientPlan2Share * float64(clients)))

	for m := start; m <= end; m++ {
		monthConns := float64(e.Conns) * shape(m) / shapeSum
		if clients == 0 {
			continue
		}
		weight := int64(math.Round(monthConns / float64(clients)))
		if weight < 1 {
			weight = 1
		}
		day := monthFirstDay(m)
		for c := 0; c < clients; c++ {
			// tsDay drives both the timestamp and the re-issuance index so
			// short-lived certificates are observed within their window.
			tsDay := day + (c*7+m*3)%27
			ts := certmodel.DayToTime(tsDay)
			if off := intraDayOffset(e, m, c); off != 0 {
				ts = ts.Add(off)
			}
			srvIdx := (c + m) % servers

			var clientCert, serverCert *certmodel.CertInfo
			if e.ClientPlan != nil {
				holder := c
				if e.CertHolders > 0 {
					holder = c % e.CertHolders
				}
				ri := e.ClientPlan.reissueIndex(firstUseDay, tsDay)
				clientCert = g.cert(e.ClientPlan, e.Name, "cli", holder, ri, firstUseDay)
			}
			if e.SharedCert {
				serverCert = clientCert
			} else if e.ServerPlan != nil {
				ri := e.ServerPlan.reissueIndex(firstUseDay, tsDay)
				serverCert = g.cert(e.ServerPlan, e.Name, "srv", srvIdx, ri, firstUseDay)
			}
			g.emitConn(e, ern, ts, c, srvIdx, clientSubnets, clientCert, serverCert, weight)

			// Secondary client certificate (Table 3's secondary issuer).
			if e.ClientPlan2 != nil && c < plan2Clients {
				cc2 := g.cert(e.ClientPlan2, e.Name, "cli2", c, 0, firstUseDay)
				sc2 := serverCert
				if e.SharedCert {
					sc2 = cc2
				}
				w2 := weight / 10
				if w2 < 1 {
					w2 = 1
				}
				g.emitConn(e, ern, ts, c, srvIdx, clientSubnets, cc2, sc2, w2)
			}
		}
	}
	g.registerCT(e)
}

// emitPerConnEntity handles WebRTC-style populations where certificates
// are per-connection: rows == client certificates.
func (g *Generator) emitPerConnEntity(e *Entity, ern *ids.RNG, clients, servers, start, end int, shape MonthShape, shapeSum float64) {
	rows := clients // one row per unique client certificate
	if rows == 0 {
		return
	}
	newSrvProb := e.NewServerCertProb
	if newSrvProb <= 0 {
		newSrvProb = 1
	}
	totalW := float64(e.Conns)
	weight := int64(math.Round(totalW / float64(rows)))
	if weight < 1 {
		weight = 1
	}
	months := end - start + 1
	srvSerial := 0
	for r := 0; r < rows; r++ {
		// Place the row in a month proportionally to the shape.
		mOff := pickMonthByShape(ern, start, end, shape, shapeSum, r, rows)
		day := monthFirstDay(mOff) + (r*11+mOff)%27
		ts := certmodel.DayToTime(day)
		clientCert := g.cert(e.ClientPlan, e.Name, "cli", r, 0, day)
		if ern.Bool(newSrvProb) || srvSerial == 0 {
			srvSerial++
		}
		serverCert := g.cert(e.ServerPlan, e.Name, "srv", srvSerial, 0, day)
		g.emitConn(e, ern, ts, r, srvSerial%servers, rows/50+1, clientCert, serverCert, weight)
		_ = months
	}
}

// pickMonthByShape deterministically spreads row r over the window with
// density proportional to the shape.
func pickMonthByShape(rng *ids.RNG, start, end int, shape MonthShape, shapeSum float64, r, rows int) int {
	target := (float64(r) + 0.5) / float64(rows) * shapeSum
	var acc float64
	for m := start; m <= end; m++ {
		acc += shape(m)
		if acc >= target {
			return m
		}
	}
	return end
}

// emitConn appends one ssl.log row.
func (g *Generator) emitConn(e *Entity, ern *ids.RNG, ts time.Time, c, srvIdx, clientSubnets int, clientCert, serverCert *certmodel.CertInfo, weight int64) {
	var origIP, respIP string
	if e.Inbound {
		origIP = g.alloc.ExternalHostInSubnet(e.Name+"/cli", c%clientSubnets, c)
		if e.Health {
			respIP = g.alloc.HealthServer(e.Name, srvIdx)
		} else {
			respIP = g.alloc.CampusServer(e.Name, srvIdx)
		}
	} else {
		origIP = g.alloc.CampusDevice(e.Name+"/cli", c)
		respIP = g.alloc.ExternalHostInSubnet(e.Name+"/srv", srvIdx/4, srvIdx)
	}
	established := true
	if e.EstablishedShare > 0 && e.EstablishedShare < 1 {
		established = ern.Bool(e.EstablishedShare)
	}
	rec := zeek.SSLRecord{
		TS:          ts,
		UID:         ids.NewUID(g.uidRNG),
		OrigIP:      origIP,
		OrigPort:    uint16(32768 + ern.Intn(28000)),
		RespIP:      respIP,
		RespPort:    g.pickPort(ern, e.Ports),
		Version:     "TLSv12",
		SNI:         e.SNI,
		Established: established,
		Weight:      weight,
	}
	if e.TLS13 {
		rec.Version = "TLSv13"
	} else {
		if serverCert != nil {
			rec.ServerChain = []ids.Fingerprint{serverCert.Fingerprint}
		}
		if clientCert != nil {
			rec.ClientChain = []ids.Fingerprint{clientCert.Fingerprint}
		}
	}
	if e.HelloPreset != "" {
		rec.JA3, rec.JA4 = g.helloFP(e.HelloPreset, e.SNI)
	}
	g.ds.Conns = append(g.ds.Conns, rec)
}

// helloFP returns the JA3/JA4 pair a preset's ClientHello produces for an
// SNI, memoized: the fingerprints are deterministic functions of the
// profile, so the md5/sha256 work happens once per (preset, SNI).
func (g *Generator) helloFP(preset, sni string) (string, string) {
	key := preset + "\x00" + sni
	if fp, ok := g.fpCache[key]; ok {
		return fp[0], fp[1]
	}
	p := tlswire.Preset(preset)
	if p == nil {
		panic("workload: unknown hello preset " + preset) // Validate rejects these
	}
	ch := p.Hello(sni)
	fp := [2]string{tlswire.JA3(ch), tlswire.JA4(ch)}
	g.fpCache[key] = fp
	return fp[0], fp[1]
}

// intraDayOffset scatters a connection inside its day. The offset is a
// pure hash of (entity, month, client) — never an RNG draw — so enabling
// it cannot perturb any legacy random stream, and entities with no
// arrival model keep their midnight timestamps exactly.
func intraDayOffset(e *Entity, m, c int) time.Duration {
	if e.Arrival == "" && !e.Diurnal {
		return 0
	}
	h := ids.HashString64(fmt.Sprintf("arrival/%s/%d/%d", e.Name, m, c))
	frac := float64(h%1e6) / 1e6
	switch e.Arrival {
	case ArrivalConstant:
		// Evenly spaced 15-minute slots: a polling fleet.
		frac = (float64(c%96) + 0.5) / 96
	case ArrivalBursty:
		// Four tight windows, each covering ~2% of the day.
		slot := float64((h >> 20) % 4)
		frac = (slot + frac*0.08) / 4
	default: // "" (diurnal-only) or poisson: uniform jitter
	}
	if e.Diurnal {
		frac = diurnalWarp(frac)
	}
	// Whole seconds only: the zeek TSV timestamp has sub-second
	// precision limits, and fractional offsets would not round-trip
	// byte-identically through WriteLogs/OpenLogs.
	return time.Duration(frac*float64(24*time.Hour)) / time.Second * time.Second
}

// diurnalWarp maps a uniform [0,1) fraction onto a business-hours
// arrival CDF: 70% of connections between 08:00 and 18:00.
func diurnalWarp(u float64) float64 {
	switch {
	case u < 0.15:
		return u / 0.15 * (8.0 / 24)
	case u < 0.85:
		return 8.0/24 + (u-0.15)/0.70*(10.0/24)
	default:
		return 18.0/24 + (u-0.85)/0.15*(6.0/24)
	}
}
