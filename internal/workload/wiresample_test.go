package workload

import (
	"testing"

	"repro/internal/certmodel"
)

// TestWireSampleEquivalence proves the wire path — real DER, real TLS
// byte streams, the passive analyzer — recovers the same certificate
// population the bulk path emits directly: same subjects, same issuer
// identities, same serial behaviour, same mutuality.
func TestWireSampleEquivalence(t *testing.T) {
	cfg := Default()
	const n = 12
	ds, err := WireSample(cfg, "globus-in", n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) != n {
		t.Fatalf("conns = %d, want %d", len(ds.Conns), n)
	}
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if !c.IsMutual() || !c.Established {
			t.Fatalf("wire conn %d not mutual/established: %+v", i, c)
		}
		// Globus presents the SAME certificate at both endpoints.
		if c.ServerLeaf() != c.ClientLeaf() {
			t.Fatalf("wire conn %d lost same-cert sharing", i)
		}
		leaf := ds.Cert(c.ClientLeaf())
		if leaf == nil {
			t.Fatal("leaf not recovered from wire")
		}
		// The §5.1.2 dummy serial survives DER encoding and re-parsing.
		if leaf.SerialHex != "00" {
			t.Fatalf("serial = %q, want 00", leaf.SerialHex)
		}
		if got := leaf.ValidityDays(); got != 14 {
			t.Fatalf("validity = %d days, want 14", got)
		}
		// SNI is the literal Globus string, as in the bulk path.
		if c.SNI != "FXP DCAU Cert" {
			t.Fatalf("SNI = %q", c.SNI)
		}
	}
}

func TestWireSampleNonShared(t *testing.T) {
	cfg := Default()
	ds, err := WireSample(cfg, "mqtt-alarmnet", 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if !c.IsMutual() {
			t.Fatal("not mutual")
		}
		if c.ServerLeaf() == c.ClientLeaf() {
			t.Fatal("non-shared entity produced shared certs")
		}
	}
	// Client certs carry the Honeywell issuer through real DER.
	var honeywell int
	for _, cert := range ds.Certs {
		if cert.IssuerOrg == "Honeywell International Inc" {
			honeywell++
		}
	}
	if honeywell == 0 {
		t.Fatal("issuer identity lost on the wire path")
	}
}

func TestWireSampleIncorrectDates(t *testing.T) {
	// Incorrect-date certs (Figure 3) survive real DER round trips.
	cfg := Default()
	ds, err := WireSample(cfg, "idrive-baddates", 4)
	if err != nil {
		t.Fatal(err)
	}
	var bad int
	for _, cert := range ds.Certs {
		if cert.HasIncorrectDates() {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("incorrect dates lost on the wire path")
	}
	// And they still land before the epoch the paper reports (1849/1850).
	for _, cert := range ds.Certs {
		if cert.HasIncorrectDates() && cert.NotAfter.After(certmodel.DayToTime(0)) {
			t.Fatalf("bad-date cert NotAfter = %v, want 19th century", cert.NotAfter)
		}
	}
}

func TestWireSampleErrors(t *testing.T) {
	cfg := Default()
	if _, err := WireSample(cfg, "no-such-entity", 1); err == nil {
		t.Fatal("unknown entity should error")
	}
}
