package workload

import (
	"testing"

	"repro/internal/certmodel"
	"repro/internal/scenario"
)

// TestWireSampleEquivalence proves the wire path — real DER, real TLS
// byte streams, the passive analyzer — recovers the same certificate
// population the bulk path emits directly: same subjects, same issuer
// identities, same serial behaviour, same mutuality.
func TestWireSampleEquivalence(t *testing.T) {
	cfg := Default()
	const n = 12
	ds, err := WireSample(cfg, "globus-in", n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) != n {
		t.Fatalf("conns = %d, want %d", len(ds.Conns), n)
	}
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if !c.IsMutual() || !c.Established {
			t.Fatalf("wire conn %d not mutual/established: %+v", i, c)
		}
		// Globus presents the SAME certificate at both endpoints.
		if c.ServerLeaf() != c.ClientLeaf() {
			t.Fatalf("wire conn %d lost same-cert sharing", i)
		}
		leaf := ds.Cert(c.ClientLeaf())
		if leaf == nil {
			t.Fatal("leaf not recovered from wire")
		}
		// The §5.1.2 dummy serial survives DER encoding and re-parsing.
		if leaf.SerialHex != "00" {
			t.Fatalf("serial = %q, want 00", leaf.SerialHex)
		}
		if got := leaf.ValidityDays(); got != 14 {
			t.Fatalf("validity = %d days, want 14", got)
		}
		// SNI is the literal Globus string, as in the bulk path.
		if c.SNI != "FXP DCAU Cert" {
			t.Fatalf("SNI = %q", c.SNI)
		}
	}
}

func TestWireSampleNonShared(t *testing.T) {
	cfg := Default()
	ds, err := WireSample(cfg, "mqtt-alarmnet", 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if !c.IsMutual() {
			t.Fatal("not mutual")
		}
		if c.ServerLeaf() == c.ClientLeaf() {
			t.Fatal("non-shared entity produced shared certs")
		}
	}
	// Client certs carry the Honeywell issuer through real DER.
	var honeywell int
	for _, cert := range ds.Certs {
		if cert.IssuerOrg == "Honeywell International Inc" {
			honeywell++
		}
	}
	if honeywell == 0 {
		t.Fatal("issuer identity lost on the wire path")
	}
}

func TestWireSampleIncorrectDates(t *testing.T) {
	// Incorrect-date certs (Figure 3) survive real DER round trips.
	cfg := Default()
	ds, err := WireSample(cfg, "idrive-baddates", 4)
	if err != nil {
		t.Fatal(err)
	}
	var bad int
	for _, cert := range ds.Certs {
		if cert.HasIncorrectDates() {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("incorrect dates lost on the wire path")
	}
	// And they still land before the epoch the paper reports (1849/1850).
	for _, cert := range ds.Certs {
		if cert.HasIncorrectDates() && cert.NotAfter.After(certmodel.DayToTime(0)) {
			t.Fatalf("bad-date cert NotAfter = %v, want 19th century", cert.NotAfter)
		}
	}
}

func TestWireSampleErrors(t *testing.T) {
	cfg := Default()
	if _, err := WireSample(cfg, "no-such-entity", 1); err == nil {
		t.Fatal("unknown entity should error")
	}
}

// TestWireSampleFingerprintAgreement closes the fingerprint loop: a
// spec-compiled cohort entity with a HelloPreset, wire-sampled through
// real TLS bytes and the passive analyzer, must yield exactly the
// JA3/JA4 the bulk path stamps for the same (preset, SNI) — the two
// paths share tlswire's hello synthesis, and this proves it end to end.
func TestWireSampleFingerprintAgreement(t *testing.T) {
	cfg := Default()
	spec := threeCohortSpec()
	entity := findSpecEntity(t, spec, cfg, "fleet-fleet")
	if entity.HelloPreset == "" {
		t.Fatalf("entity %q has no hello preset", entity.Name)
	}
	ds, err := WireSampleEntity(cfg, entity, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) == 0 {
		t.Fatal("no wire conns")
	}
	g := NewGenerator(cfg)
	wantJA3, wantJA4 := g.helloFP(entity.HelloPreset, entity.SNI)
	for i := range ds.Conns {
		c := &ds.Conns[i]
		if c.JA3 != wantJA3 || c.JA4 != wantJA4 {
			t.Fatalf("wire conn %d fingerprints (%s, %s), bulk stamps (%s, %s)",
				i, c.JA3, c.JA4, wantJA3, wantJA4)
		}
	}

	// Presetless entities keep the fixed legacy hello: one stable JA3
	// that is NOT any preset's.
	legacy, err := WireSample(cfg, "mqtt-alarmnet", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy.Conns {
		if legacy.Conns[i].JA3 == wantJA3 {
			t.Fatal("legacy hello collided with a preset fingerprint")
		}
	}
}

// findSpecEntity compiles spec's cohorts and returns the named entity.
func findSpecEntity(t *testing.T, spec *scenario.Spec, cfg Config, name string) *Entity {
	t.Helper()
	entities, _, err := compileCohorts(spec, cfg.Months)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entities {
		if entities[i].Name == name {
			return &entities[i]
		}
	}
	t.Fatalf("entity %q not compiled from spec", name)
	return nil
}
