package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/zeek"
)

// registerCT logs genuine public issuances so the interception detector
// has a comparison set. Only external public domains are logged; campus
// private domains stay out of CT, mirroring reality (private CAs do not
// log) and keeping the detector honest.
func (g *Generator) registerCT(e *Entity) {
	if e.ServerPlan == nil || e.ServerPlan.IssuerOrg == "" {
		return
	}
	if !g.bundle.IsPublicIssuer(e.ServerPlan.IssuerOrg) {
		return
	}
	sld := g.psl.SLD(e.SNI)
	if sld == "" {
		return
	}
	g.ctlog.AddChain(ct.Entry{
		Domain:    sld,
		IssuerOrg: e.ServerPlan.IssuerOrg,
		IssuerCN:  e.ServerPlan.IssuerCN,
		LoggedAt:  certmodel.DayToTime(monthFirstDay(e.StartMonth)),
	})
}

// emitCrossShared generates Table 6's population: certificates observed as
// server certificates in some connections and client certificates in
// others, spread over /24 subnets with the paper's heavy-tailed quantiles
// (server 1/1/7/217, client 1/2/43/1851).
func (g *Generator) emitCrossShared() {
	const unscaledCerts = 1611
	n := g.cfg.scaled(unscaledCerts, 40)
	rng := g.rng.Fork("cross-shared")

	issuers := []struct {
		org, cn string
		w       float64
	}{
		{"Let's Encrypt", "R3", 0.5158},
		{"DigiCert Inc", "DigiCert SHA2 Extended Validation Server CA", 0.1434},
		{"Sectigo Limited", "Sectigo RSA Domain Validation Secure Server CA", 0.0795},
		{"GoDaddy.com, Inc.", "GoDaddy Secure Certificate Authority - G2", 0.0613},
		{"GlobalSign", "GlobalSign GCC R3 DV TLS CA", 0.20},
	}
	ws := make([]float64, len(issuers))
	for i, is := range issuers {
		ws[i] = is.w
	}

	for i := 0; i < n; i++ {
		iss := issuers[ids.WeightedPick(rng, ws)]
		domain := fmt.Sprintf("svc%04d.crossshared.net", i)
		plan := &CertPlan{
			IssuerOrg: iss.org, IssuerCN: iss.cn, ValidityDays: 900,
			CN:      []Content{{Kind: KindDomain, Text: domain, Weight: 1}},
			SANFill: 1, SAN: []Content{{Kind: KindDomain, Text: domain, Weight: 1}},
		}
		cert := g.cert(plan, "cross-shared", "pool", i, 0, 30)

		rank := float64(i) / float64(n)
		srvSubnets := quantileSpread(rank, 1, 1, 7, 217)
		cliSubnets := quantileSpread(rank, 1, 2, 43, 1851)

		// The certificate serves as a SERVER certificate from srvSubnets
		// distinct /24s (inbound-style conns to it)...
		for s := 0; s < srvSubnets; s++ {
			ts := certmodel.DayToTime(40 + (i+s)%500)
			g.ds.Conns = append(g.ds.Conns, zeek.SSLRecord{
				TS: ts, UID: ids.NewUID(g.uidRNG),
				OrigIP:   g.alloc.CampusDevice("crossshared/cli", i),
				OrigPort: uint16(40000 + s%20000),
				RespIP:   g.alloc.ExternalHostInSubnet("crossshared/srv"+fmt.Sprint(i), s, i),
				RespPort: 443, Version: "TLSv12", SNI: domain, Established: true,
				ServerChain: []ids.Fingerprint{cert.Fingerprint},
				ClientChain: []ids.Fingerprint{g.crossClientHelper(i).Fingerprint},
				Weight:      2,
			})
		}
		// ...and as a CLIENT certificate from cliSubnets distinct campus
		// /24s in OUTBOUND connections (the reused-server-cert-as-client
		// pattern of §5.2.2); outbound placement keeps Table 3's inbound
		// client census clean.
		for cIdx := 0; cIdx < cliSubnets; cIdx++ {
			ts := certmodel.DayToTime(60 + (i+cIdx)%500)
			g.ds.Conns = append(g.ds.Conns, zeek.SSLRecord{
				TS: ts, UID: ids.NewUID(g.uidRNG),
				OrigIP:   g.alloc.CampusHostInSubnet("crossshared/cli"+fmt.Sprint(i), cIdx, cIdx),
				OrigPort: uint16(40000 + cIdx%20000),
				RespIP:   g.alloc.ExternalHostInSubnet("crossshared/peer", i%9, i),
				RespPort: 443, Version: "TLSv12", SNI: "peer.crossshared.net", Established: true,
				ServerChain: []ids.Fingerprint{g.crossServerHelper(i % 6).Fingerprint},
				ClientChain: []ids.Fingerprint{cert.Fingerprint},
				Weight:      2,
			})
		}
	}
}

// crossClientHelper/crossServerHelper are the fixed counterpart certs in
// cross-shared connections.
func (g *Generator) crossClientHelper(i int) *certmodel.CertInfo {
	plan := &CertPlan{
		IssuerOrg: campusCA, IssuerCN: campusCA + " Issuing CA", ValidityDays: 730,
		CN: []Content{{Kind: KindUserAccount, Weight: 1}},
	}
	return g.cert(plan, "cross-shared", "helper-cli", i%40, 0, 30)
}

func (g *Generator) crossServerHelper(i int) *certmodel.CertInfo {
	plan := privateServerPlan("CrossShared Peer Systems", "crossshared.net")
	return g.cert(plan, "cross-shared", "helper-srv", i, 0, 30)
}

// quantileSpread maps a rank in [0,1) onto a distribution hitting the
// given 50th/75th/99th/100th percentile targets.
func quantileSpread(rank float64, q50, q75, q99, q100 int) int {
	switch {
	case rank < 0.50:
		return q50
	case rank < 0.75:
		return q75
	case rank < 0.99:
		// Interpolate between q75 and q99.
		f := (rank - 0.75) / 0.24
		return q75 + int(f*float64(q99-q75))
	case rank < 0.999:
		f := (rank - 0.99) / 0.009
		return q99 + int(f*float64(q100-q99)/4)
	default:
		return q100
	}
}

// emitInterception injects the TLS-interception population the §3.2
// preprocessing must find and exclude: private "inspection" CAs re-signing
// popular public domains whose genuine issuers are in CT. Roughly 8.4% of
// all unique certificates end up intercepted, matching the paper.
func (g *Generator) emitInterception() {
	rng := g.rng.Fork("interception")
	// Target count: x/(total+x) = 8.4%  →  x ≈ 0.0917 × current total.
	target := int(0.0917 * float64(len(g.ds.Certs)))
	const proxies = 12
	perProxy := target/proxies + 1
	for p := 0; p < proxies; p++ {
		proxyOrg := fmt.Sprintf("SecureInspect Gateway %02d", p)
		for i := 0; i < perProxy; i++ {
			domain := fmt.Sprintf("site%04d.com", (p*perProxy+i)%4000)
			// CT knows the genuine issuer.
			g.ctlog.AddChain(ct.Entry{Domain: domain, IssuerOrg: "DigiCert Inc"})
			plan := &CertPlan{
				IssuerOrg: proxyOrg, IssuerCN: proxyOrg + " Root",
				ValidityDays: 30,
				CN:           []Content{{Kind: KindDomain, Text: "www." + domain, Weight: 1}},
				SANFill:      1,
				SAN:          []Content{{Kind: KindDomain, Text: "www." + domain, Weight: 1}},
			}
			cert := g.cert(plan, "intercept", fmt.Sprintf("p%d", p), i, 0, 20+i%600)
			ts := certmodel.DayToTime(20 + (i*13)%650)
			g.ds.Conns = append(g.ds.Conns, zeek.SSLRecord{
				TS: ts, UID: ids.NewUID(g.uidRNG),
				OrigIP:   g.alloc.CampusDevice("intercept/cli", i%500),
				OrigPort: uint16(32768 + rng.Intn(20000)),
				RespIP:   g.alloc.ExternalHost("intercept/srv", i),
				RespPort: 443, Version: "TLSv12", SNI: "www." + domain,
				Established: true,
				ServerChain: []ids.Fingerprint{cert.Fingerprint},
				Weight:      3,
			})
		}
	}
}

// emitBackground fills in the non-mutual and TLS 1.3 traffic so Figure 1's
// denominator (total TLS connections) follows the calibrated share curve
// from StartShare to EndShare, and emits the non-mutual server-certificate
// populations Table 14 analyzes.
func (g *Generator) emitBackground() {
	months := g.cfg.Months
	// Monthly mutual-TLS weight from everything generated so far.
	mutual := make([]float64, months)
	for i := range g.ds.Conns {
		c := &g.ds.Conns[i]
		if c.IsMutual() && c.Established {
			m := monthOf(c.TS)
			if m >= 0 && m < months {
				mutual[m] += float64(c.Weight)
			}
		}
	}
	t0 := mutual[0] / g.cfg.StartShare
	tN := mutual[months-1] / g.cfg.EndShare
	total := func(m int) float64 {
		return t0 + (tN-t0)*float64(m)/float64(months-1)
	}

	// Non-mutual cert populations (Table 14; unscaled counts from §6.3.6:
	// 85% public). Each population carries a direction and port mix from
	// Table 2's non-mutual columns.
	inPorts := []PortWeight{
		{Port: 443, Weight: 85.18}, {Port: 25, Weight: 2.35},
		{Port: 33854, Weight: 2.26}, {Port: 8443, Weight: 2.22},
		{Port: 52730, Weight: 1.98}, {Port: 993, Weight: 1.5},
		{Port: 8080, Weight: 1.2}, {Port: 9443, Weight: 1.0},
	}
	outPorts := []PortWeight{
		{Port: 443, Weight: 99.15}, {Port: 993, Weight: 0.44},
		{Port: 8883, Weight: 0.05}, {Port: 25, Weight: 0.04},
		{Port: 3128, Weight: 0.03},
	}
	pops := []nmPop{
		{
			name: "nm-out-public", certs: 3_000_000, volume: 1, ports: outPorts,
			plan: &CertPlan{
				IssuerOrg: "Let's Encrypt", IssuerCN: "R3", ValidityDays: 90,
				CN:      []Content{{Kind: KindHost, Text: "popular-sites.com", Weight: 1}},
				SANFill: 0.9999,
				SAN:     []Content{{Kind: KindHost, Text: "popular-sites.com", Weight: 1}},
			},
		},
		{
			name: "nm-in-public", inbound: true, certs: 170_000, volume: 0.7, ports: inPorts,
			plan: &CertPlan{
				IssuerOrg: "Sectigo Limited", ValidityDays: 398,
				CN:      []Content{{Kind: KindHost, Text: univSLD, Weight: 1}},
				SANFill: 0.9999,
				SAN:     []Content{{Kind: KindHost, Text: univSLD, Weight: 1}},
			},
		},
		{
			name: "nm-in-private", inbound: true, certs: 340_000, volume: 0.3, ports: inPorts,
			plan: &CertPlan{
				IssuerOrg: campusCA, IssuerCN: campusCA + " Issuing CA",
				ValidityDays: 1825,
				CN: []Content{ // Table 14b's private column
					{Kind: KindHost, Text: univSLD, Weight: 0.1327},
					{Kind: KindText, Text: "WebRTC", Weight: 0.42},
					{Kind: KindText, Text: "twilio", Weight: 0.17},
					{Kind: KindText, Text: "hangouts", Weight: 0.14},
					{Kind: KindText, Text: "hmpp", Weight: 0.022},
					{Kind: KindText, Text: "Dtls", Weight: 0.021},
					{Kind: KindRandomHex, N: 8, Weight: 0.035},
					{Kind: KindRandomAlnum, N: 16, Weight: 0.032},
					{Kind: KindSIP, Text: "voip." + univSLD, Weight: 0.0121},
					{Kind: KindIP, Weight: 0.005},
					{Kind: KindLocalhost, Weight: 0.0029},
					{Kind: KindPersonName, Weight: 0.0011},
					{Kind: KindUserAccount, Weight: 0.0004},
				},
				SANFill: 0.1054,
				SAN: []Content{
					{Kind: KindHost, Text: univSLD, Weight: 0.72},
					{Kind: KindRandomAlnum, N: 16, Weight: 0.267},
					{Kind: KindText, Text: "WebRTC", Weight: 0.025},
					{Kind: KindLocalhost, Weight: 0.0107},
					{Kind: KindIP, Weight: 0.0126},
				},
			},
		},
		{
			name: "nm-out-private", certs: 200_000, volume: 0.002, ports: outPorts,
			plan: &CertPlan{
				IssuerOrg: "DvTel", ValidityDays: 1825,
				CN: []Content{
					{Kind: KindText, Text: "WebRTC", Weight: 0.45},
					{Kind: KindHost, Text: "dvtelcam.net", Weight: 0.18},
					{Kind: KindRandomHex, N: 8, Weight: 0.15},
					{Kind: KindText, Text: "hmpp", Weight: 0.1},
					{Kind: KindSIP, Text: "cam.dvtelcam.net", Weight: 0.06},
					{Kind: KindLocalhost, Weight: 0.03},
					{Kind: KindIP, Weight: 0.03},
				},
				SANFill: 0.1054,
				SAN: []Content{
					{Kind: KindHost, Text: "dvtelcam.net", Weight: 0.72},
					{Kind: KindRandomAlnum, N: 16, Weight: 0.28},
				},
			},
		},
	}

	// Distribute each population's certificates over the months and give
	// the rows the weight needed to hit the Figure 1 denominator.
	volSum := map[bool]float64{}
	for _, p := range pops {
		volSum[p.inbound] += p.volume
	}
	for _, pop := range pops {
		certs := g.cfg.scaled(pop.certs, 40)
		perMonth := certs / months
		if perMonth < 1 {
			perMonth = 1
		}
		rng := g.rng.Fork("bg/" + pop.name)
		idx := 0
		for m := 0; m < months; m++ {
			// This population's share of month m's non-mutual volume.
			nonMutual := total(m) * (1 - g.cfg.TLS13Share)
			nonMutual -= mutual[m]
			if nonMutual < 0 {
				nonMutual = 0
			}
			volume := nonMutual * pop.volume / volSum[pop.inbound]
			if pop.inbound {
				volume *= 0.25
			} else {
				volume *= 0.75
			}
			w := int64(math.Round(volume / float64(perMonth)))
			if w < 1 {
				w = 1
			}
			day := monthFirstDay(m)
			for i := 0; i < perMonth; i++ {
				cert := g.cert(pop.plan, pop.name, "srv", idx, 0, day)
				idx++
				ts := certmodel.DayToTime(day + (i*5)%27)
				var origIP, respIP string
				if pop.inbound {
					origIP = g.alloc.ExternalHost(pop.name+"/cli", i)
					respIP = g.alloc.CampusServer(pop.name, i%40)
				} else {
					origIP = g.alloc.CampusDevice(pop.name+"/cli", i%200)
					respIP = g.alloc.ExternalHost(pop.name+"/srv", idx)
				}
				g.ds.Conns = append(g.ds.Conns, zeek.SSLRecord{
					TS: ts, UID: ids.NewUID(g.uidRNG),
					OrigIP: origIP, OrigPort: uint16(32768 + rng.Intn(28000)),
					RespIP: respIP, RespPort: g.pickPort(rng, pop.ports),
					Version: "TLSv12", SNI: sniFor(pop.plan, i),
					Established: rng.Float64() > 0.02,
					ServerChain: []ids.Fingerprint{cert.Fingerprint},
					Weight:      w,
				})
			}
		}
	}

	// TLS 1.3 opacity: 40.86% of ALL connections, certificate-free rows.
	rng := g.rng.Fork("bg/tls13")
	for m := 0; m < months; m++ {
		volume := total(m) * g.cfg.TLS13Share
		const rows = 24
		w := int64(math.Round(volume / rows))
		if w < 1 {
			w = 1
		}
		day := monthFirstDay(m)
		for i := 0; i < rows; i++ {
			inbound := i%4 == 0
			var origIP, respIP string
			if inbound {
				origIP = g.alloc.ExternalHost("tls13/cli", i)
				respIP = g.alloc.CampusServer("tls13", i%20)
			} else {
				origIP = g.alloc.CampusDevice("tls13/cli", i%200)
				respIP = g.alloc.ExternalHost("tls13/srv", i)
			}
			g.ds.Conns = append(g.ds.Conns, zeek.SSLRecord{
				TS: certmodel.DayToTime(day + (i*3)%27), UID: ids.NewUID(g.uidRNG),
				OrigIP: origIP, OrigPort: uint16(32768 + rng.Intn(28000)),
				RespIP: respIP, RespPort: 443,
				Version: "TLSv13", SNI: fmt.Sprintf("edge%02d.cdn13.net", i),
				Established: true,
				Weight:      w,
			})
		}
	}
}

// nmPop is one non-mutual certificate population.
type nmPop struct {
	name    string
	inbound bool
	certs   int
	volume  float64 // share of the direction's non-mutual volume
	ports   []PortWeight
	plan    *CertPlan
}

func sniFor(plan *CertPlan, i int) string {
	if len(plan.CN) > 0 && (plan.CN[0].Kind == KindHost || plan.CN[0].Kind == KindDomain) {
		return fmt.Sprintf("host%04d.%s", i%9999, plan.CN[0].Text)
	}
	return ""
}

// monthOf maps a timestamp to its study-month index.
func monthOf(ts time.Time) int {
	y, m, _ := ts.Date()
	e := certmodel.StudyEpoch
	return (y-e.Year())*12 + int(m) - int(e.Month())
}
