package workload

import (
	"fmt"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// CertPlan describes how an entity's certificates are minted: issuer,
// serial policy, validity policy (including the paper's pathologies —
// reversed dates, century-long validity, already-expired), key parameters,
// and the CN/SAN content distributions.
type CertPlan struct {
	IssuerOrg string
	IssuerCN  string
	// SelfSigned marks issuer == subject identity (dummy/WebRTC certs).
	SelfSigned bool

	// SerialFixed pins every certificate to one serial ("00", "01",
	// "024680", "03E8" — §5.1.2's dummy serials). Empty means a unique
	// random serial per certificate.
	SerialFixed string

	// ValidityDays is the normal validity period.
	ValidityDays int
	// LongValidityShare of certificates instead get a validity drawn
	// uniformly from [LongValidityMin, LongValidityMax] days (Figure 4's
	// 10,000–40,000-day tail).
	LongValidityShare                float64
	LongValidityMin, LongValidityMax int
	// IncorrectDates reverses the window: NotBefore is set after NotAfter
	// (Figure 3). NotAfterYear optionally pins the bogus year (1757, 1831,
	// 1849...).
	IncorrectDates                                bool
	IncorrectNotBeforeYear, IncorrectNotAfterYear int
	// ExpiredMinDays/ExpiredMaxDays > 0 mint certificates that expired
	// that many days BEFORE their first use (Figure 5).
	ExpiredMinDays, ExpiredMaxDays int
	// ReissueDays > 0 replaces each holder's certificate every N days
	// (Globus's 14-day certificates), multiplying unique-cert counts.
	ReissueDays int

	// Version is the X.509 version (default 3; §5.1.1 flags version 1).
	Version int
	// WeakRSAShare of certificates carry 1024-bit RSA keys.
	WeakRSAShare float64

	// CN is the weighted content distribution for the Subject CN.
	CN []Content
	// SAN is the content distribution for SAN DNS entries; SANFill is the
	// probability a certificate has any SAN at all (Table 7's utilization
	// rates). SANCount entries are drawn when filled (default 1).
	SAN      []Content
	SANFill  float64
	SANCount int

	// SANEmailFill / SANIPFill optionally populate the explicit SAN
	// types (§6.1.2 notes these are 99% empty).
	SANEmailFill float64
	SANIPFill    float64

	// SubjectOrg optionally sets the subject organization.
	SubjectOrg string
}

// mint creates certificate #idx for holder #holder of entity entityName,
// valid appropriately for a first use at day firstUseDay (study-day
// offset). reissue is the re-issuance round (0 for the first cert).
func (p *CertPlan) mint(rng *ids.RNG, entityName string, holder, reissue, firstUseDay int) *certmodel.CertInfo {
	c := &certmodel.CertInfo{
		IssuerOrg: p.IssuerOrg,
		IssuerCN:  p.IssuerCN,
		Version:   orN(p.Version, 3),
		KeyAlg:    certmodel.KeyECDSA,
		KeyBits:   256,
	}
	if p.SelfSigned {
		c.SelfSigned = true
	}
	if p.WeakRSAShare > 0 && rng.Bool(p.WeakRSAShare) {
		c.KeyAlg = certmodel.KeyRSA
		c.KeyBits = 1024
	}
	if p.SerialFixed != "" {
		c.SerialHex = p.SerialFixed
	} else {
		c.SerialHex = fmt.Sprintf("%016X", rng.Uint64())
	}

	p.setValidity(rng, c, firstUseDay, reissue)

	// Subject content.
	cn := pickContent(rng, p.CN)
	c.SubjectCN = cn.render(rng, holder)
	c.SubjectOrg = p.SubjectOrg
	if p.SANFill > 0 && rng.Bool(p.SANFill) {
		n := orN(p.SANCount, 1)
		for i := 0; i < n; i++ {
			v := pickContent(rng, p.SAN).render(rng, holder)
			if v != "" {
				c.SANDNS = append(c.SANDNS, v)
			}
		}
	}
	if p.SANEmailFill > 0 && rng.Bool(p.SANEmailFill) {
		c.SANEmail = append(c.SANEmail, Content{Kind: KindEmail}.render(rng, holder))
	}
	if p.SANIPFill > 0 && rng.Bool(p.SANIPFill) {
		c.SANIP = append(c.SANIP, Content{Kind: KindIP}.render(rng, holder))
	}

	disc := fmt.Sprintf("%s/h%d/r%d", entityName, holder, reissue)
	c.Fingerprint = certmodel.SyntheticFingerprint(c, disc)
	return c
}

func (p *CertPlan) setValidity(rng *ids.RNG, c *certmodel.CertInfo, firstUseDay, reissue int) {
	switch {
	case p.IncorrectDates:
		nbYear := orN(p.IncorrectNotBeforeYear, 2019)
		naYear := orN(p.IncorrectNotAfterYear, 1849)
		c.NotBefore = certmodel.DayToTime(0).AddDate(nbYear-2022, 0, rng.Intn(300))
		c.NotAfter = certmodel.DayToTime(0).AddDate(naYear-2022, 0, rng.Intn(300))
		if !c.HasIncorrectDates() {
			// Equal-or-reversed is required; force reversal.
			c.NotBefore, c.NotAfter = c.NotAfter, c.NotBefore
			if !c.HasIncorrectDates() {
				c.NotAfter = c.NotBefore
			}
		}
	case p.ExpiredMaxDays > 0:
		// Expired ExpiredMin..ExpiredMax days before first use.
		span := p.ExpiredMaxDays - p.ExpiredMinDays
		if span <= 0 {
			span = 1
		}
		expiredFor := p.ExpiredMinDays + rng.Intn(span)
		validity := orN(p.ValidityDays, 365)
		c.NotAfter = certmodel.DayToTime(firstUseDay - expiredFor)
		c.NotBefore = c.NotAfter.AddDate(0, 0, -validity)
	default:
		validity := orN(p.ValidityDays, 365)
		if p.LongValidityShare > 0 && rng.Bool(p.LongValidityShare) {
			span := p.LongValidityMax - p.LongValidityMin
			if span <= 0 {
				span = 1
			}
			validity = p.LongValidityMin + rng.Intn(span)
		}
		start := firstUseDay
		if p.ReissueDays > 0 {
			start = firstUseDay + reissue*p.ReissueDays
		} else {
			// Issue up to 60 days before first use, but never so early
			// that the certificate is already expired when first used.
			back := 60
			if validity < back*2 {
				back = validity / 2
			}
			if back > 0 {
				start = firstUseDay - rng.Intn(back)
			}
		}
		c.NotBefore = certmodel.DayToTime(start)
		c.NotAfter = c.NotBefore.AddDate(0, 0, validity)
	}
}

// reissueIndex returns which re-issuance round covers day (study-day
// offset relative to the holder's first use).
func (p *CertPlan) reissueIndex(firstUseDay, day int) int {
	if p.ReissueDays <= 0 || day <= firstUseDay {
		return 0
	}
	return (day - firstUseDay) / p.ReissueDays
}
