package workload

import (
	"testing"
	"time"
)

func TestPaceFlatRate(t *testing.T) {
	p := &Pacer{Pace: Pace{Rate: 1000}}
	total := 0
	for elapsed := 50 * time.Millisecond; elapsed <= 10*time.Second; elapsed += 50 * time.Millisecond {
		total += p.Step(elapsed, 50*time.Millisecond)
	}
	if total < 9999 || total > 10001 {
		t.Fatalf("flat 1000 rows/s over 10s emitted %d rows, want ~10000", total)
	}
}

func TestPaceBurstWindows(t *testing.T) {
	p := Pace{Rate: 1000, BurstEvery: 10 * time.Second, BurstLen: 2 * time.Second, BurstFactor: 3}
	if r := p.RateAt(time.Second); r != 3000 {
		t.Errorf("RateAt(1s) = %v, want 3000 (inside the burst window)", r)
	}
	if r := p.RateAt(5 * time.Second); r != 1000 {
		t.Errorf("RateAt(5s) = %v, want 1000 (sustained)", r)
	}
	if r := p.RateAt(10*time.Second + time.Millisecond); r != 3000 {
		t.Errorf("RateAt(10s+1ms) = %v, want 3000 (next window)", r)
	}
	// One whole period: 8s sustained + 2s at 3x = 14000 rows, and the
	// integral is exact even when ticks straddle window boundaries.
	pc := &Pacer{Pace: p}
	total := 0
	const tick = 70 * time.Millisecond // does not divide the window edges
	for elapsed := tick; elapsed <= 10*time.Second; elapsed += tick {
		total += pc.Step(elapsed, tick)
	}
	// The loop stops at the last multiple of tick <= 10s; integrate the
	// remainder by hand.
	total += pc.Step(10*time.Second, 10*time.Second%tick)
	if total < 13999 || total > 14001 {
		t.Fatalf("one burst period emitted %d rows, want ~14000", total)
	}
	if m := p.MeanRate(); m != 1400 {
		t.Errorf("MeanRate = %v, want 1400", m)
	}
}

func TestPaceDegenerate(t *testing.T) {
	// Bursts disabled by any missing piece of the spec.
	for _, p := range []Pace{
		{Rate: 500},
		{Rate: 500, BurstEvery: time.Second},
		{Rate: 500, BurstEvery: time.Second, BurstLen: time.Second},
		{Rate: 500, BurstEvery: time.Second, BurstLen: 100 * time.Millisecond, BurstFactor: 1},
	} {
		if r := p.RateAt(0); r != 500 {
			t.Errorf("%+v: RateAt(0) = %v, want 500", p, r)
		}
		if m := p.MeanRate(); m != 500 {
			t.Errorf("%+v: MeanRate = %v, want 500", p, m)
		}
	}
	p := &Pacer{Pace: Pace{Rate: 10}}
	if n := p.Step(time.Second, 0); n != 0 {
		t.Errorf("zero tick emitted %d rows", n)
	}
}
