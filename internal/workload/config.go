// Package workload synthesizes the 23-month campus dataset the paper
// measured, at a configurable scale (DESIGN.md §2, §5). Every entity in
// entities.go encodes numbers the paper reports — connection shares,
// client counts, issuer mixes, misconfiguration populations, CN/SAN
// content distributions — so the analyses reproduce the paper's tables and
// figures shape-for-shape.
//
// Scaling model: unique-entity counts (certificates, clients, servers) are
// divided by Config.CertScale; connection counts are NOT scaled — they are
// carried as row weights — so every percentage-denominated result is
// invariant to the scale knob.
package workload

import (
	"repro/internal/ct"
	"repro/internal/netsim"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// Config controls generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed uint64
	// CertScale divides unique-entity counts (default 200).
	CertScale int
	// Months is the study length (default 23: 2022-05 through 2024-03).
	Months int
	// StartShare/EndShare are the Figure 1 calibration anchors: the mTLS
	// share of total TLS connections in the first and last month
	// (defaults 1.99% and 3.61%).
	StartShare, EndShare float64
	// TLS13Share is the fraction of all TLS connections that negotiate
	// TLS 1.3 and are therefore certificate-opaque (default 40.86%, §3.3).
	TLS13Share float64
	// WirePath, when > 0, routes that many connections per entity through
	// real DER certificates + synthesized TLS byte streams + the zeek
	// analyzer instead of the bulk path — an end-to-end self check.
	WirePath int
}

// Default returns the calibrated configuration.
func Default() Config {
	return Config{
		Seed:       20240504,
		CertScale:  200,
		Months:     23,
		StartShare: 0.0199,
		EndShare:   0.0361,
		TLS13Share: 0.4086,
	}
}

// WithScale returns a copy with a different CertScale.
func (c Config) WithScale(scale int) Config {
	c.CertScale = scale
	return c
}

// scaled divides an unscaled count by CertScale with a floor of min (and
// of 1 whenever n > 0).
func (c Config) scaled(n, min int) int {
	if n <= 0 {
		return 0
	}
	s := n / c.CertScale
	if s < min {
		s = min
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Arrival model names for Entity.Arrival (string-equal to the scenario
// spec's arrival vocabulary).
const (
	ArrivalPoisson  = "poisson"
	ArrivalConstant = "constant"
	ArrivalBursty   = "bursty"
)

// PortWeight assigns a share of an entity's connections to a port (or an
// inclusive port range, for Globus's 50000–51000).
type PortWeight struct {
	Port     uint16
	PortHigh uint16 // 0 = single port
	Weight   float64
}

// MonthShape modulates an entity's volume per month (0-based study month).
type MonthShape func(m int) float64

// ShapeFlat is constant volume.
func ShapeFlat(int) float64 { return 1 }

// ShapeGrowth doubles linearly over the study — the overall mTLS adoption
// trend behind Figure 1.
func ShapeGrowth(m int) float64 { return 1 + float64(m)/22 }

// ShapeHealthSurge is growth plus the near-twofold University-Health surge
// from October 2023 (study month 17) onward (§4.1).
func ShapeHealthSurge(m int) float64 {
	v := ShapeGrowth(m)
	if m >= 17 {
		v *= 2
	}
	return v
}

// Entity is one traffic population: a set of servers, a set of clients,
// their certificate plans, and a connection volume.
type Entity struct {
	Name string
	// Inbound: external clients → campus servers; otherwise outbound.
	Inbound bool
	// Health places inbound servers in the health system's prefix.
	Health bool
	// SNI for the connections ("" = missing SNI). Non-hostname SNIs (the
	// Globus "FXP DCAU Cert") are passed through verbatim.
	SNI string
	// Ports distributes connections over server ports.
	Ports []PortWeight

	// Servers/Clients are unscaled distinct-host counts; the Min fields
	// keep distribution-critical populations large enough after scaling.
	Servers    int
	MinServers int
	Clients    int
	MinClients int
	// ClientSubnets spreads inbound (external) client IPs across this
	// many /24s; 0 derives it from the client count.
	ClientSubnets int

	// ServerPlan and ClientPlan mint the certificates. A nil ClientPlan
	// makes the entity non-mutual; a nil ServerPlan emits no server
	// certificate (the university tunneling case of §3.2.2).
	ServerPlan *CertPlan
	ClientPlan *CertPlan
	// ClientPlan2 gives ClientPlan2Share of clients an additional
	// certificate from a second plan (Table 3's secondary issuers).
	ClientPlan2      *CertPlan
	ClientPlan2Share float64

	// SharedCert presents the client's certificate at BOTH endpoints of
	// the connection (§5.2.1; Globus, Outset Medical, GuardiCore).
	SharedCert bool
	// PerConnCerts mints fresh certificates per connection row (the
	// WebRTC population, where certs ≈ connections). NewServerCertProb
	// controls server-cert reuse across rows (default 1 = always fresh).
	PerConnCerts      bool
	NewServerCertProb float64

	// CertHolders, when > 0, folds the scaled client population onto this
	// many client certificates (holder = client % CertHolders) — the
	// shared-fleet-credential pattern (§5.2.1) where thousands of devices
	// present a handful of certs. 0 keeps one certificate per client.
	CertHolders int
	// Arrival scatters connections inside their day: "" or "poisson"
	// (uniform hash jitter), "constant" (evenly spaced slots), "bursty"
	// (four tight windows). "" additionally skips the jitter entirely,
	// preserving the legacy midnight timestamps byte for byte.
	Arrival string
	// Diurnal warps intra-day arrival times toward business hours. Only
	// meaningful when Arrival is set (or forces jitter on by itself).
	Diurnal bool
	// HelloPreset names a tlswire fingerprint profile; connections carry
	// its JA3/JA4 fingerprints. "" leaves the fingerprint columns unset.
	HelloPreset string

	// Conns is the total connection count over the study (unscaled; it
	// becomes row weights, not rows).
	Conns int64
	// Shape modulates volume per month (nil = ShapeFlat).
	Shape MonthShape
	// StartMonth/EndMonth bound the activity window (inclusive;
	// EndMonth 0 means "last month"). Rapid7's disappearance is
	// EndMonth=16 (§4.1).
	StartMonth, EndMonth int
	// EstablishedShare is the fraction of connections that complete
	// (default 1).
	EstablishedShare float64
	// TLS13 emits the entity's connections as certificate-opaque 1.3.
	TLS13 bool
}

// effectiveEnd resolves EndMonth.
func (e *Entity) effectiveEnd(months int) int {
	if e.EndMonth <= 0 || e.EndMonth >= months {
		return months - 1
	}
	return e.EndMonth
}

// AssocConfig is the SLD→server-association mapping the core analysis uses
// for Table 3 (the paper's manual SLD categorization, §4.2).
type AssocConfig struct {
	HealthSLDs     []string
	UniversitySLDs []string
	VPNHostPrefix  string // hostnames starting with this are University VPN
	LocalOrgSLDs   []string
	ThirdPartySLDs []string
	GlobusSLDs     []string
}

// Build is everything the generator hands to the analysis pipeline.
type Build struct {
	// Raw is the dataset BEFORE interception filtering (§3.2
	// preprocessing runs inside the pipeline, not the generator).
	Raw *zeek.Dataset
	// CT is the transparency log seeded with genuine issuances.
	CT *ct.Log
	// Bundle is the trust-store bundle used for public/private
	// classification.
	Bundle *truststore.Bundle
	// CampusIssuers are the university-managed CA identities (the §6.1.1
	// user-account rule needs them).
	CampusIssuers []string
	// Assoc is the server-association mapping for Table 3.
	Assoc *AssocConfig
	// Plan is the address plan for direction classification.
	Plan *netsim.Plan
	// Months is the study length.
	Months int
}
