package workload

import (
	"fmt"
	"strings"

	"repro/internal/ids"
)

// Kind enumerates the kinds of content a generated CN or SAN entry can
// carry — one per §6.1 information type, plus the free-text and random
// shapes Table 9 sub-classifies.
type Kind int

const (
	// KindEmpty leaves the field empty.
	KindEmpty Kind = iota
	// KindDomain emits the entity's domain (Text), optionally with a
	// per-certificate host label prefix when Text starts with "*.".
	KindDomain
	// KindHost emits "hostNNN.<Text>" — a per-certificate hostname.
	KindHost
	// KindIP emits an IPv4 literal.
	KindIP
	// KindMAC emits a colon-separated MAC address.
	KindMAC
	// KindSIP emits "sip:userNNN@Text".
	KindSIP
	// KindEmail emits "userNNN@Text".
	KindEmail
	// KindUserAccount emits a campus computing ID ("hd7gr" shape).
	KindUserAccount
	// KindPersonName emits "First Last" from the name lexicons.
	KindPersonName
	// KindText emits Text verbatim (product/org names, "__transfer__",
	// "Dtls", "Hybrid Runbook Worker", …).
	KindText
	// KindRandomHex emits N random hex characters.
	KindRandomHex
	// KindUUID emits a canonical 36-char UUID.
	KindUUID
	// KindRandomAlnum emits N random mixed-case alphanumerics.
	KindRandomAlnum
	// KindLocalhost emits "localhost" or "host.localdomain".
	KindLocalhost
)

// Content is one weighted choice in a CN/SAN distribution.
type Content struct {
	Kind   Kind
	Text   string  // meaning depends on Kind
	N      int     // length for the random kinds
	Weight float64 // relative weight in the distribution
}

// contentNames used for person generation, mirrored from nerlite's
// lexicons so the recognizer's dictionary covers the generated space.
var genFirstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
	"Nancy", "Matthew", "Betty", "Anthony", "Sandra", "Mark", "Margaret",
	"Wei", "Ming", "Hiroshi", "Yuki", "Ahmed", "Fatima", "Raj", "Priya",
	"Ivan", "Olga", "Hans", "Greta", "Pierre", "Claire", "Diego", "Lucia",
}

var genLastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Thomas",
	"Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
	"White", "Harris", "Chen", "Wang", "Li", "Zhang", "Liu", "Yang",
	"Kim", "Patel", "Singh", "Kumar", "Nguyen", "Tran", "Tanaka", "Suzuki",
	"Mueller", "Schmidt", "Ivanov", "Dubois", "Rossi", "Ferrari",
}

// render materializes one content choice for certificate #idx of an
// entity. All randomness flows through rng so generation is reproducible.
func (c Content) render(rng *ids.RNG, idx int) string {
	switch c.Kind {
	case KindEmpty:
		return ""
	case KindDomain:
		return c.Text
	case KindHost:
		return fmt.Sprintf("host%04d.%s", idx%9999, c.Text)
	case KindIP:
		return fmt.Sprintf("10.%d.%d.%d", rng.Intn(250)+1, rng.Intn(250)+1, rng.Intn(250)+1)
	case KindMAC:
		var b strings.Builder
		for i := 0; i < 6; i++ {
			if i > 0 {
				b.WriteByte(':')
			}
			fmt.Fprintf(&b, "%02X", byte(rng.Uint64()))
		}
		return b.String()
	case KindSIP:
		return fmt.Sprintf("sip:user%04d@%s", idx%9999, orDefault(c.Text, "voip.example.com"))
	case KindEmail:
		return fmt.Sprintf("user%04d@%s", idx%9999, orDefault(c.Text, "example.com"))
	case KindUserAccount:
		// 2-3 lowercase letters, digit, 1-3 alphanumerics: "hd7gr" shape.
		letters := "abcdefghijklmnopqrstuvwxyz"
		var b strings.Builder
		for i := 0; i < 2+rng.Intn(2); i++ {
			b.WriteByte(letters[rng.Intn(26)])
		}
		b.WriteByte(byte('0' + rng.Intn(10)))
		for i := 0; i < 1+rng.Intn(2); i++ {
			b.WriteByte(letters[rng.Intn(26)])
		}
		return b.String()
	case KindPersonName:
		return ids.Pick(rng, genFirstNames) + " " + ids.Pick(rng, genLastNames)
	case KindText:
		return c.Text
	case KindRandomHex:
		return randomHex(rng, orN(c.N, 8))
	case KindUUID:
		h := randomHex(rng, 32)
		return h[0:8] + "-" + h[8:12] + "-" + h[12:16] + "-" + h[16:20] + "-" + h[20:32]
	case KindRandomAlnum:
		const alnum = "abcdefghjkmnpqrstvwxyzABCDEFGHJKMNPQRSTVWXYZ0123456789"
		n := orN(c.N, 12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alnum[rng.Intn(len(alnum))])
		}
		return b.String()
	case KindLocalhost:
		if rng.Bool(0.5) {
			return "localhost"
		}
		return fmt.Sprintf("host%03d.localdomain", idx%999)
	default:
		return ""
	}
}

func randomHex(rng *ids.RNG, n int) string {
	const hexd = "0123456789abcdef"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(hexd[rng.Intn(16)])
	}
	return b.String()
}

// pickContent draws one weighted choice.
func pickContent(rng *ids.RNG, cs []Content) Content {
	if len(cs) == 0 {
		return Content{Kind: KindEmpty}
	}
	ws := make([]float64, len(cs))
	for i, c := range cs {
		ws[i] = c.Weight
	}
	return cs[ids.WeightedPick(rng, ws)]
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func orN(n, d int) int {
	if n == 0 {
		return d
	}
	return n
}
