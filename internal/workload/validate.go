package workload

import (
	"fmt"
	"strings"

	"repro/internal/tlswire"
)

// Validate checks the entity roster for internal consistency. The roster
// is hand-calibrated data (entities.go); this guards against the editing
// mistakes that silently skew reproductions: port weights that don't sum,
// missing plans, inverted activity windows, content distributions with no
// weight.
func Validate(es []Entity, months int) error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	seen := map[string]bool{}
	for i := range es {
		e := &es[i]
		if e.Name == "" {
			bad("entity %d: empty name", i)
			continue
		}
		if seen[e.Name] {
			bad("%s: duplicate entity name", e.Name)
		}
		seen[e.Name] = true
		if e.Conns <= 0 {
			bad("%s: non-positive connection volume", e.Name)
		}
		if e.Clients <= 0 && e.ClientPlan != nil {
			bad("%s: client plan with no clients", e.Name)
		}
		if e.ClientPlan == nil && !e.TLS13 {
			bad("%s: mTLS entity without a client plan", e.Name)
		}
		if e.SharedCert && e.ServerPlan != nil {
			bad("%s: SharedCert entities must not carry a server plan", e.Name)
		}
		if !e.SharedCert && e.ServerPlan == nil && !e.TLS13 {
			bad("%s: no server certificate source", e.Name)
		}
		if len(e.Ports) == 0 {
			bad("%s: no ports", e.Name)
		}
		var w float64
		for _, p := range e.Ports {
			if p.Weight <= 0 {
				bad("%s: non-positive port weight", e.Name)
			}
			if p.PortHigh != 0 && p.PortHigh < p.Port {
				bad("%s: inverted port range %d-%d", e.Name, p.Port, p.PortHigh)
			}
			w += p.Weight
		}
		if w <= 0 {
			bad("%s: port weights sum to zero", e.Name)
		}
		end := e.effectiveEnd(months)
		if e.StartMonth < 0 || e.StartMonth > end {
			bad("%s: activity window [%d, %d] invalid", e.Name, e.StartMonth, end)
		}
		if e.ClientPlan2 != nil && (e.ClientPlan2Share <= 0 || e.ClientPlan2Share > 1) {
			bad("%s: secondary plan share %f out of range", e.Name, e.ClientPlan2Share)
		}
		if e.CertHolders < 0 {
			bad("%s: negative CertHolders", e.Name)
		}
		switch e.Arrival {
		case "", ArrivalPoisson, ArrivalConstant, ArrivalBursty:
		default:
			bad("%s: unknown arrival model %q", e.Name, e.Arrival)
		}
		if e.HelloPreset != "" && tlswire.Preset(e.HelloPreset) == nil {
			bad("%s: unknown hello preset %q", e.Name, e.HelloPreset)
		}
		for _, pc := range []struct {
			name string
			plan *CertPlan
		}{{"client", e.ClientPlan}, {"client2", e.ClientPlan2}, {"server", e.ServerPlan}} {
			if pc.plan == nil {
				continue
			}
			if err := validatePlan(pc.plan); err != nil {
				bad("%s: %s plan: %v", e.Name, pc.name, err)
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("workload: roster invalid:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

func validatePlan(p *CertPlan) error {
	if len(p.CN) == 0 {
		// Issuerless plans with no CN content would emit fully empty
		// subjects, which Table 7's ~99.8% CN utilization contradicts.
		return fmt.Errorf("no CN content distribution")
	}
	var w float64
	for _, c := range p.CN {
		if c.Weight < 0 {
			return fmt.Errorf("negative CN weight")
		}
		w += c.Weight
	}
	if w <= 0 {
		return fmt.Errorf("CN weights sum to zero")
	}
	if p.SANFill < 0 || p.SANFill > 1 {
		return fmt.Errorf("SANFill %f out of range", p.SANFill)
	}
	if p.SANFill > 0 && len(p.SAN) == 0 {
		return fmt.Errorf("SANFill set but no SAN contents")
	}
	if p.IncorrectDates && p.ExpiredMaxDays > 0 {
		return fmt.Errorf("IncorrectDates and Expired are mutually exclusive")
	}
	if p.LongValidityShare > 0 && p.LongValidityMax < p.LongValidityMin {
		return fmt.Errorf("long validity range inverted")
	}
	if p.ReissueDays < 0 || p.ValidityDays < 0 {
		return fmt.Errorf("negative day counts")
	}
	if p.ReissueDays > 0 && p.ValidityDays > 0 && p.ValidityDays < p.ReissueDays {
		return fmt.Errorf("reissue period exceeds validity (holders would present expired certs)")
	}
	return nil
}
