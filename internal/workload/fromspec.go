package workload

import (
	"fmt"
	"math"

	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/scenario"
)

// FromSpec compiles a scenario spec into a Build through the same
// synthesis core Generate uses. The campus spec (scenario.Campus())
// compiles to exactly the legacy roster with no volume scaling and no
// extra CT entries, so its output is byte-identical to Generate(cfg) at
// every seed and scale; other profiles add cohort entities after the
// baseline ones in spec order.
//
// A non-zero spec seed overrides cfg.Seed; everything else in cfg
// (scale, months, shares, wire path) applies as-is.
func FromSpec(spec *scenario.Spec, cfg Config) (*Build, error) {
	if spec == nil {
		spec = scenario.Campus()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if cfg.CertScale <= 0 {
		cfg.CertScale = 200
	}
	if cfg.Months <= 0 {
		cfg.Months = 23
	}
	entities, extra, err := compileCohorts(spec, cfg.Months)
	if err != nil {
		return nil, err
	}
	if err := Validate(entities, cfg.Months); err != nil {
		return nil, fmt.Errorf("workload: compiled spec invalid: %w", err)
	}
	g := NewGenerator(cfg)
	return g.run(entities, extra), nil
}

// compileCohorts renders every cohort to entities (and any genuine CT
// entries its scenario needs), applying the aggregate-rate split.
func compileCohorts(spec *scenario.Spec, months int) ([]Entity, []ct.Entry, error) {
	var entities []Entity
	var extra []ct.Entry
	for i := range spec.Cohorts {
		c := &spec.Cohorts[i]
		es, ctEntries, err := cohortEntities(c, months)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: cohort %s: %w", c.ID, err)
		}
		if f := cohortFactor(spec, c, es); f != 1 {
			for j := range es {
				es[j].Conns = int64(math.Round(float64(es[j].Conns) * f))
				if es[j].Conns < 1 {
					es[j].Conns = 1
				}
			}
		}
		entities = append(entities, es...)
		extra = append(extra, ctEntries...)
	}
	return entities, extra, nil
}

// cohortFactor converts aggregate_rate × rate_fraction into a multiplier
// on the profile's natural connection volume. aggregate_rate 0 means
// "natural volume": the factor is exactly 1 and entity Conns pass through
// untouched (the byte-identity guarantee for the campus spec).
func cohortFactor(spec *scenario.Spec, c *scenario.Cohort, es []Entity) float64 {
	if spec.AggregateRate <= 0 {
		return 1
	}
	var natural float64
	for i := range es {
		natural += float64(es[i].Conns)
	}
	if natural <= 0 {
		return 1
	}
	return spec.AggregateRate * c.RateFraction / natural
}

// cohortEntities renders one cohort to its entity template.
func cohortEntities(c *scenario.Cohort, months int) ([]Entity, []ct.Entry, error) {
	if c.Profile == scenario.ProfileBaselineCampus {
		// The calibrated roster carries its own per-entity arrival,
		// window, and volume model; cohort-level overrides do not apply
		// (the spec schema documents this). That is what keeps the campus
		// spec byte-identical to the legacy generator.
		return Entities(), nil, nil
	}
	var es []Entity
	var extra []ct.Entry
	switch c.Profile {
	case scenario.ProfileIoTSharedCert:
		es = iotSharedCertEntities(c)
	case scenario.ProfileEnterpriseMiddlebox:
		es, extra = enterpriseMiddleboxEntities(c)
	case scenario.ProfileRotationWave:
		es = rotationWaveEntities(c)
	case scenario.ProfileExpiredStraggler:
		es = expiredStragglerEntities(c)
	default:
		return nil, nil, fmt.Errorf("unknown cert practice profile %q", c.Profile)
	}
	applyCohortOverrides(c, es, months)
	return es, extra, nil
}

// applyCohortOverrides threads the cohort's window, lifecycle, and
// arrival model onto every template entity. SNI, clients, port, and
// fingerprint are handled inside each profile builder (they are defaults
// there, not post-hoc overrides).
func applyCohortOverrides(c *scenario.Cohort, es []Entity, months int) {
	effEnd := c.EndMonth
	if effEnd <= 0 || effEnd >= months {
		effEnd = months - 1
	}
	shape, diurnal := lifecycleShape(c.Lifecycle, c.StartMonth, effEnd)
	arrival := c.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	for i := range es {
		e := &es[i]
		e.StartMonth = c.StartMonth
		e.EndMonth = c.EndMonth
		e.Shape = shape
		e.Diurnal = diurnal
		e.Arrival = arrival
	}
}

// lifecycleShape maps a lifecycle name onto a month shape (plus the
// intra-day diurnal flag).
func lifecycleShape(lifecycle string, start, end int) (MonthShape, bool) {
	switch lifecycle {
	case scenario.LifecycleDiurnal:
		return ShapeFlat, true
	case scenario.LifecycleSpike:
		return shapeSpike(start, end), false
	case scenario.LifecycleDrain:
		return shapeDrain(start, end), false
	default: // steady (or unset)
		return ShapeFlat, false
	}
}

// shapeSpike peaks mid-window at ~5× the tails — a rollout-and-rollback
// cohort.
func shapeSpike(start, end int) MonthShape {
	mid := float64(start+end) / 2
	half := float64(end-start)/2 + 1
	return func(m int) float64 {
		d := math.Abs(float64(m)-mid) / half
		return 0.25 + 4.75*(1-d)
	}
}

// shapeDrain decays geometrically from full volume at the window start to
// ~10% at the end — a deprecation in progress.
func shapeDrain(start, end int) MonthShape {
	span := float64(end - start)
	if span <= 0 {
		span = 1
	}
	return func(m int) float64 {
		return math.Pow(0.1, float64(m-start)/span)
	}
}

func orStr(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func orInt(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func cohortPorts(c *scenario.Cohort, def uint16) []PortWeight {
	p := def
	if c.Port != 0 {
		p = uint16(c.Port)
	}
	return []PortWeight{{Port: p, Weight: 1}}
}

// iotSharedCertEntities is the §5.2.1 shared-fleet-credential pattern: a
// large device population presenting the SAME handful of client
// certificates at both connection endpoints, MQTT-style.
func iotSharedCertEntities(c *scenario.Cohort) []Entity {
	return []Entity{{
		Name:  c.ID + "-fleet",
		SNI:   orStr(c.SNI, "mqtt."+c.ID+".example.net"),
		Ports: cohortPorts(c, 8883),

		Servers: 48, MinServers: 2,
		Clients: orInt(c.Clients, 12000), MinClients: 24,

		ClientPlan: &CertPlan{
			IssuerOrg:    c.ID + " Fleet Operations",
			IssuerCN:     c.ID + " Fleet Device CA",
			ValidityDays: 3650,
			CN: []Content{
				{Kind: KindText, Text: c.ID + "-device", Weight: 0.9},
				{Kind: KindRandomHex, N: 12, Weight: 0.1},
			},
		},
		SharedCert:  true,
		CertHolders: 4,
		HelloPreset: orStr(c.Fingerprint, "iot-embedded"),

		Conns: 2_400_000,
	}}
}

// enterpriseMiddleboxEntities is the §3.2 interception scenario: an
// inspecting gateway re-signs three public SaaS domains with its private
// CA while CT holds the genuine issuances — enough distinct domains to
// trip the MinDomains corroboration threshold, so the preprocessing
// filter confirms the gateway and excludes its traffic.
func enterpriseMiddleboxEntities(c *scenario.Cohort) ([]Entity, []ct.Entry) {
	stem := orStr(c.SNI, c.ID)
	domains := []string{stem + "-crm.com", stem + "-erp.com", stem + "-mail.com"}
	gateway := c.ID + " Inspection Gateway"
	clients := orInt(c.Clients, 1800) / len(domains)
	if clients < 1 {
		clients = 1
	}

	var es []Entity
	var extra []ct.Entry
	for i, dom := range domains {
		es = append(es, Entity{
			Name:  fmt.Sprintf("%s-mbox-%d", c.ID, i),
			SNI:   "www." + dom,
			Ports: cohortPorts(c, 443),

			Servers: 6, MinServers: 1,
			Clients: clients, MinClients: 3,

			ServerPlan: &CertPlan{
				IssuerOrg:    gateway,
				IssuerCN:     gateway + " Root",
				ValidityDays: 30, // middleboxes re-sign on short windows
				CN:           []Content{{Kind: KindHost, Text: dom, Weight: 1}},
				SANFill:      1,
				SAN:          []Content{{Kind: KindHost, Text: dom, Weight: 1}},
			},
			ClientPlan: &CertPlan{
				IssuerOrg:    c.ID + " Corp",
				IssuerCN:     c.ID + " Corp Issuing CA",
				ValidityDays: 730,
				CN: []Content{
					{Kind: KindUserAccount, Weight: 0.7},
					{Kind: KindPersonName, Weight: 0.3},
				},
			},
			HelloPreset: orStr(c.Fingerprint, "middlebox-proxy"),

			Conns: 400_000,
		})
		extra = append(extra, ct.Entry{
			Domain:    dom,
			IssuerOrg: "DigiCert Inc",
			IssuerCN:  "DigiCert TLS RSA SHA256 2020 CA1",
			LoggedAt:  certmodel.DayToTime(monthFirstDay(c.StartMonth)),
		})
	}
	return es, extra
}

// rotationWaveEntities is an aggressive-rotation population: two-week
// certificate validity with two-week re-issuance, so the observation
// window sees every holder under many serials (the §5.1 validity tail).
func rotationWaveEntities(c *scenario.Cohort) []Entity {
	domain := orStr(c.SNI, c.ID+"-grid.example.org")
	issuer := c.ID + " Research Grid CA"
	rotate := &CertPlan{
		IssuerOrg:    issuer,
		IssuerCN:     issuer + " Short-Lived CA",
		ValidityDays: 14,
		ReissueDays:  14,
		CN: []Content{
			{Kind: KindUserAccount, Weight: 0.7},
			{Kind: KindPersonName, Weight: 0.3},
		},
	}
	return []Entity{{
		Name:  c.ID + "-rotation",
		SNI:   domain,
		Ports: cohortPorts(c, 9443),

		Servers: 16, MinServers: 1,
		Clients: orInt(c.Clients, 400), MinClients: 8,

		ClientPlan: rotate,
		ServerPlan: &CertPlan{
			IssuerOrg:    issuer,
			IssuerCN:     issuer + " Short-Lived CA",
			ValidityDays: 14,
			ReissueDays:  14,
			CN:           []Content{{Kind: KindHost, Text: domain, Weight: 1}},
		},
		HelloPreset: orStr(c.Fingerprint, "go-client"),

		Conns: 1_200_000,
	}}
}

// expiredStragglerEntities is the §5.1 expired-in-use population: devices
// presenting client certificates 30–400 days past NotAfter.
func expiredStragglerEntities(c *scenario.Cohort) []Entity {
	domain := orStr(c.SNI, "legacy."+c.ID+".example.org")
	issuer := c.ID + " Device CA"
	return []Entity{{
		Name:  c.ID + "-straggler",
		SNI:   domain,
		Ports: cohortPorts(c, 8443),

		Servers: 8, MinServers: 1,
		Clients: orInt(c.Clients, 600), MinClients: 6,

		ClientPlan: &CertPlan{
			IssuerOrg:      issuer,
			IssuerCN:       issuer + " Root",
			ValidityDays:   365,
			ExpiredMinDays: 30,
			ExpiredMaxDays: 400,
			CN: []Content{
				{Kind: KindRandomHex, N: 16, Weight: 0.7},
				{Kind: KindMAC, Weight: 0.3},
			},
		},
		ServerPlan: &CertPlan{
			IssuerOrg:    issuer,
			IssuerCN:     issuer + " Root",
			ValidityDays: 825,
			CN:           []Content{{Kind: KindHost, Text: domain, Weight: 1}},
		},
		HelloPreset: orStr(c.Fingerprint, "iot-embedded"),

		Conns: 300_000,
	}}
}
