package workload

import (
	"fmt"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/tlswire"
	"repro/internal/zeek"
)

// WireSample materializes n of an entity's connections on the wire path:
// real DER certificates minted from the entity's plans, genuine TLS
// handshake byte streams synthesized for each connection, and the
// Zeek-style analyzer recovering records from the bytes. It exists to
// prove the bulk path (which skips serialization) and the wire path agree
// — the equivalence test in wiresample_test.go and the ablation benchmark
// both use it.
func WireSample(cfg Config, entityName string, n int) (*zeek.Dataset, error) {
	var entity *Entity
	for _, e := range Entities() {
		if e.Name == entityName {
			e := e
			entity = &e
			break
		}
	}
	if entity == nil {
		return nil, fmt.Errorf("workload: unknown entity %q", entityName)
	}
	return WireSampleEntity(cfg, entity, n)
}

// WireSampleEntity is WireSample over an explicit entity — the way to
// wire-check spec-compiled cohorts, whose entities are not in the
// built-in campus set. Entities with a HelloPreset synthesize their
// preset's ClientHello, so the analyzer's ja3/ja4 columns must match
// the bulk path's stamped fingerprints.
func WireSampleEntity(cfg Config, entity *Entity, n int) (*zeek.Dataset, error) {
	if entity.ClientPlan == nil {
		return nil, fmt.Errorf("workload: entity %q has no client plan", entity.Name)
	}
	entityName := entity.Name

	gen, err := certmodel.NewGenerator(4)
	if err != nil {
		return nil, err
	}
	rng := ids.NewRNG(cfg.Seed).Fork("wire/" + entityName)
	analyzer := zeek.NewAnalyzer(rng.Fork("uids"))

	// A private CA standing in for the entity's issuer; leaf subjects come
	// from the entity's content plans so the resulting x509.log rows look
	// exactly like the bulk path's.
	caName := entity.ClientPlan.IssuerCN
	if caName == "" {
		caName = entity.ClientPlan.IssuerOrg
	}
	if caName == "" {
		caName = entityName + " CA"
	}
	ca, err := gen.NewRootCA(caName, entity.ClientPlan.IssuerOrg,
		certmodel.DayToTime(-365), certmodel.DayToTime(3650))
	if err != nil {
		return nil, err
	}

	for i := 0; i < n; i++ {
		meta, spec, err := wireConn(gen, ca, entity, rng, i)
		if err != nil {
			return nil, err
		}
		tr := tlswire.Synthesize(spec, rng.Fork(fmt.Sprintf("tr/%d", i)))
		if _, err := analyzer.AnalyzeStreams(meta, tr.ClientToServer, tr.ServerToClient); err != nil {
			return nil, fmt.Errorf("workload: wire conn %d: %w", i, err)
		}
	}
	return analyzer.Dataset(), nil
}

// wireConn mints the DER material and transcript spec for connection #i.
func wireConn(gen *certmodel.Generator, ca *certmodel.CA, e *Entity, rng *ids.RNG, i int) (zeek.ConnMeta, tlswire.TranscriptSpec, error) {
	crng := rng.Fork(fmt.Sprintf("cert/%d", i))
	// Render the bulk-path metadata first, then mint equivalent DER.
	bulkClient := e.ClientPlan.mint(crng, e.Name+"/wire-cli", i, 0, 30)
	clientDER, err := gen.IssueLeaf(ca, certmodel.Spec{
		SerialHex:  bulkClient.SerialHex,
		SubjectCN:  bulkClient.SubjectCN,
		SubjectOrg: bulkClient.SubjectOrg,
		SANDNS:     bulkClient.SANDNS,
		NotBefore:  bulkClient.NotBefore,
		NotAfter:   bulkClient.NotAfter,
		Client:     true,
	})
	if err != nil {
		return zeek.ConnMeta{}, tlswire.TranscriptSpec{}, err
	}

	var serverDER []byte
	if e.SharedCert {
		serverDER = clientDER
	} else {
		plan := e.ServerPlan
		if plan == nil {
			plan = e.ClientPlan
		}
		bulkServer := plan.mint(crng, e.Name+"/wire-srv", i%4, 0, 30)
		serverDER, err = gen.IssueLeaf(ca, certmodel.Spec{
			SerialHex: bulkServer.SerialHex,
			SubjectCN: bulkServer.SubjectCN,
			SANDNS:    bulkServer.SANDNS,
			NotBefore: bulkServer.NotBefore,
			NotAfter:  bulkServer.NotAfter,
			Server:    true,
		})
		if err != nil {
			return zeek.ConnMeta{}, tlswire.TranscriptSpec{}, err
		}
	}

	meta := zeek.ConnMeta{
		TS:       certmodel.DayToTime(30 + i%600).Add(time.Duration(i%86400) * time.Second),
		OrigIP:   fmt.Sprintf("203.0.113.%d", i%250+1),
		OrigPort: uint16(32768 + i%20000),
		RespIP:   fmt.Sprintf("128.143.7.%d", i%250+1),
		RespPort: 443,
	}
	spec := tlswire.TranscriptSpec{
		Version:     tlswire.VersionTLS12,
		SNI:         e.SNI,
		ServerChain: [][]byte{serverDER, ca.DER},
		ClientChain: [][]byte{clientDER, ca.DER},
		Established: true,
		// Fingerprinted cohorts shape the hello on the wire too; ""
		// keeps the fixed legacy hello byte for byte.
		Profile: tlswire.Preset(e.HelloPreset),
	}
	return meta, spec, nil
}
