package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/zeek"
)

// sslBytes renders a dataset's ssl.log exactly as mtls.WriteLogs would.
func sslBytes(t *testing.T, ds *zeek.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := zeek.NewSSLWriter(&buf)
	for i := range ds.Conns {
		if ds.Conns[i].JA3 != "" || ds.Conns[i].JA4 != "" {
			w.Extended = true
		}
	}
	for i := range ds.Conns {
		if err := w.Write(&ds.Conns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFromSpecCampusByteIdentical is the core guarantee of the scenario
// engine: compiling the built-in campus spec reproduces the legacy
// generator exactly — same ssl.log bytes, same certificate table, same CT
// log — at every seed and scale combination.
func TestFromSpecCampusByteIdentical(t *testing.T) {
	for _, scale := range []int{200, 1500} {
		for _, seed := range []uint64{20240504, 99} {
			cfg := Default()
			cfg.CertScale = scale
			cfg.Seed = seed
			legacy := Generate(cfg)

			spec := scenario.Campus()
			spec.Seed = seed
			got, err := FromSpec(spec, cfg)
			if err != nil {
				t.Fatalf("scale %d seed %d: FromSpec: %v", scale, seed, err)
			}

			if !bytes.Equal(sslBytes(t, got.Raw), sslBytes(t, legacy.Raw)) {
				t.Fatalf("scale %d seed %d: ssl.log bytes differ", scale, seed)
			}
			if !reflect.DeepEqual(got.Raw.Conns, legacy.Raw.Conns) {
				t.Fatalf("scale %d seed %d: conns differ", scale, seed)
			}
			if !reflect.DeepEqual(got.Raw.Certs, legacy.Raw.Certs) {
				t.Fatalf("scale %d seed %d: cert tables differ", scale, seed)
			}
			if got.CT.Size() != legacy.CT.Size() {
				t.Fatalf("scale %d seed %d: CT size %d != %d",
					scale, seed, got.CT.Size(), legacy.CT.Size())
			}
		}
	}
}

// threeCohortSpec is a non-default spec exercising every compiled knob:
// aggregate-rate splitting, all three non-baseline arrival models, three
// lifecycle shapes, and a fingerprint override.
func threeCohortSpec() *scenario.Spec {
	s, err := scenario.NewBuilder().
		Seed(7).
		AggregateRate(4_000_000).
		Cohort("fleet", scenario.ProfileIoTSharedCert, 0.5,
			scenario.Arrival(scenario.ArrivalConstant),
			scenario.Lifecycle(scenario.LifecycleDiurnal)).
		Cohort("acme", scenario.ProfileEnterpriseMiddlebox, 0.3,
			scenario.Lifecycle(scenario.LifecycleSpike),
			scenario.Window(2, 12)).
		Cohort("grid", scenario.ProfileRotationWave, 0.2,
			scenario.Arrival(scenario.ArrivalBursty),
			scenario.Lifecycle(scenario.LifecycleDrain),
			scenario.Fingerprint("chrome")).
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

func TestFromSpecThreeCohorts(t *testing.T) {
	cfg := Default()
	build, err := FromSpec(threeCohortSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Raw.Conns) == 0 {
		t.Fatal("no connections generated")
	}

	// Every cohort contributes rows, identifiable by fingerprint preset.
	wantFP := map[string]bool{} // ja3 values seen
	var cohortW, totalW float64
	for i := range build.Raw.Conns {
		c := &build.Raw.Conns[i]
		totalW += float64(c.Weight)
		if c.JA3 != "" {
			wantFP[c.JA3] = true
			cohortW += float64(c.Weight)
		}
	}
	// fleet(iot-embedded) + acme(middlebox-proxy) + grid(chrome override)
	if len(wantFP) != 3 {
		t.Fatalf("distinct cohort JA3 fingerprints = %d, want 3", len(wantFP))
	}
	// aggregate_rate 4M against the campus baseline of 0 means all volume
	// here is cohort volume; weighted cohort volume should be near 4M
	// (rounding per-client weights skews it, but not by an order).
	if cohortW < 2_000_000 || cohortW > 8_000_000 {
		t.Fatalf("cohort weighted volume = %.0f, want ≈4M", cohortW)
	}

	// The middlebox cohort must contribute genuine CT entries for its
	// three re-signed domains.
	for _, dom := range []string{"acme-crm.com", "acme-erp.com", "acme-mail.com"} {
		if !build.CT.HasIssuer(dom, "DigiCert Inc") {
			t.Fatalf("CT missing genuine issuer for %s", dom)
		}
	}
}

// TestFromSpecDeterminism: identical spec + config → identical build.
func TestFromSpecDeterminism(t *testing.T) {
	cfg := Default()
	cfg.CertScale = 1500
	a, err := FromSpec(threeCohortSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSpec(threeCohortSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Raw.Conns, b.Raw.Conns) {
		t.Fatal("conns differ across identical runs")
	}
	if !reflect.DeepEqual(a.Raw.Certs, b.Raw.Certs) {
		t.Fatal("certs differ across identical runs")
	}
}

// TestFromSpecRateFractionSplit: the weighted volume ratio between two
// cohorts tracks their rate fractions (cohort-mix invariance: doubling
// aggregate_rate scales both, preserving every share-denominated result).
func TestFromSpecRateFractionSplit(t *testing.T) {
	mk := func(rate float64) (fleetW, gridW float64) {
		s, err := scenario.NewBuilder().
			AggregateRate(rate).
			Cohort("fleet", scenario.ProfileIoTSharedCert, 0.75).
			Cohort("grid", scenario.ProfileRotationWave, 0.25).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default()
		cfg.CertScale = 1500
		build, err := FromSpec(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fleetJA3, _ := NewGenerator(cfg).helloFP("iot-embedded", "mqtt.fleet.example.net")
		for i := range build.Raw.Conns {
			c := &build.Raw.Conns[i]
			switch {
			case c.JA3 == fleetJA3:
				fleetW += float64(c.Weight)
			case c.JA3 != "":
				gridW += float64(c.Weight)
			}
		}
		return fleetW, gridW
	}
	f1, g1 := mk(2_000_000)
	f2, g2 := mk(4_000_000)
	r1 := f1 / (f1 + g1)
	r2 := f2 / (f2 + g2)
	if r1 < 0.6 || r1 > 0.9 {
		t.Fatalf("fleet share = %.3f, want ≈0.75", r1)
	}
	if diff := r1 - r2; diff < -0.05 || diff > 0.05 {
		t.Fatalf("cohort mix not invariant to aggregate rate: %.3f vs %.3f", r1, r2)
	}
}

// TestFromSpecExpiredStraggler: the profile mints client certs presented
// past NotAfter.
func TestFromSpecExpiredStraggler(t *testing.T) {
	s, err := scenario.NewBuilder().
		Cohort("old", scenario.ProfileExpiredStraggler, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.CertScale = 1500
	build, err := FromSpec(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	expired := 0
	for _, c := range build.Raw.Certs {
		if strings.HasPrefix(c.IssuerOrg, "old Device CA") && c.NotAfter.Before(c.NotBefore.AddDate(0, 0, 366)) {
			expired++
		}
	}
	if expired == 0 {
		t.Fatal("no straggler certificates minted")
	}
}

// TestFromSpecRejectsInvalid: spec validation surfaces as an error, not a
// panic.
func TestFromSpecRejectsInvalid(t *testing.T) {
	bad := &scenario.Spec{Version: 1}
	if _, err := FromSpec(bad, Default()); err == nil {
		t.Fatal("want error for cohortless spec")
	}
	bad2 := scenario.Campus()
	bad2.Cohorts[0].Profile = "no-such-profile"
	if _, err := FromSpec(bad2, Default()); err == nil {
		t.Fatal("want error for unknown profile")
	}
}

// TestArrivalJitterGated: entities without an arrival model keep midnight
// timestamps; cohort entities scatter within the day without crossing it.
func TestArrivalJitterGated(t *testing.T) {
	e := &Entity{Name: "x"}
	if off := intraDayOffset(e, 3, 7); off != 0 {
		t.Fatalf("ungated offset = %v, want 0", off)
	}
	e.Arrival = ArrivalPoisson
	for c := 0; c < 50; c++ {
		off := intraDayOffset(e, 3, c)
		if off < 0 || off.Hours() >= 24 {
			t.Fatalf("offset %v escapes the day", off)
		}
	}
	e.Diurnal = true
	day := 0
	for c := 0; c < 200; c++ {
		h := intraDayOffset(e, 1, c).Hours()
		if h >= 8 && h < 18 {
			day++
		}
	}
	if day < 100 {
		t.Fatalf("diurnal warp put only %d/200 in business hours", day)
	}
}
