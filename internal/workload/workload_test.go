package workload

import (
	"testing"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/netsim"
)

func testConfig() Config {
	cfg := Default()
	cfg.CertScale = 2000 // small and fast for unit tests
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	b1 := Generate(testConfig())
	b2 := Generate(testConfig())
	if len(b1.Raw.Conns) != len(b2.Raw.Conns) {
		t.Fatalf("conn counts differ: %d vs %d", len(b1.Raw.Conns), len(b2.Raw.Conns))
	}
	if len(b1.Raw.Certs) != len(b2.Raw.Certs) {
		t.Fatalf("cert counts differ: %d vs %d", len(b1.Raw.Certs), len(b2.Raw.Certs))
	}
	for i := range b1.Raw.Conns {
		a, b := b1.Raw.Conns[i], b2.Raw.Conns[i]
		if a.UID != b.UID || a.SNI != b.SNI || a.Weight != b.Weight ||
			a.ServerLeaf() != b.ServerLeaf() || a.ClientLeaf() != b.ClientLeaf() {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg2 := testConfig()
	cfg2.Seed = 999
	b1 := Generate(testConfig())
	b2 := Generate(cfg2)
	same := 0
	n := len(b1.Raw.Conns)
	if len(b2.Raw.Conns) < n {
		n = len(b2.Raw.Conns)
	}
	for i := 0; i < n; i++ {
		if b1.Raw.Conns[i].UID == b2.Raw.Conns[i].UID {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical UIDs")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	b := Generate(testConfig())
	ds := b.Raw
	if len(ds.Conns) == 0 || len(ds.Certs) == 0 {
		t.Fatal("empty dataset")
	}
	var mutual, nonMutual, tls13 int64
	var mutualW, totalW int64
	plan := b.Plan
	for i := range ds.Conns {
		c := &ds.Conns[i]
		totalW += c.Weight
		if c.Version == "TLSv13" {
			tls13 += c.Weight
			continue
		}
		if c.IsMutual() {
			mutual++
			mutualW += c.Weight
		} else {
			nonMutual++
		}
		// Every row crosses the border.
		d := plan.DirectionOf(c.OrigIP, c.RespIP)
		if d != netsim.Inbound && d != netsim.Outbound {
			t.Fatalf("row does not cross border: %+v -> %v", c, d)
		}
	}
	if mutual == 0 || nonMutual == 0 || tls13 == 0 {
		t.Fatalf("population missing: mutual=%d nonmutual=%d tls13=%d", mutual, nonMutual, tls13)
	}
	// Overall mTLS share should be small (paper: ~2-3.6%).
	share := float64(mutualW) / float64(totalW)
	if share < 0.01 || share > 0.08 {
		t.Fatalf("overall mTLS share = %.4f, want ~0.02-0.04", share)
	}
}

func TestGenerateKeyEntitiesPresent(t *testing.T) {
	b := Generate(testConfig())
	var globusSerial00, incorrectDates, expired, dummy, shared int
	for _, c := range b.Raw.Certs {
		if c.SerialHex == "00" && c.IssuerOrg == "Globus Online" {
			globusSerial00++
		}
		if c.HasIncorrectDates() {
			incorrectDates++
		}
		if c.ExpiredAt(certmodel.DayToTime(0)) && !c.HasIncorrectDates() {
			expired++
		}
		if c.IssuerOrg == "Internet Widgits Pty Ltd" || c.IssuerOrg == "Unspecified" {
			dummy++
		}
	}
	for i := range b.Raw.Conns {
		c := &b.Raw.Conns[i]
		if c.IsMutual() && c.ServerLeaf() == c.ClientLeaf() {
			shared++
		}
	}
	if globusSerial00 < 10 {
		t.Errorf("globus serial-00 certs = %d, want many (reissuance)", globusSerial00)
	}
	if incorrectDates < 20 {
		t.Errorf("incorrect-date certs = %d", incorrectDates)
	}
	if expired < 20 {
		t.Errorf("already-expired certs = %d", expired)
	}
	if dummy < 10 {
		t.Errorf("dummy-issuer certs = %d", dummy)
	}
	if shared < 50 {
		t.Errorf("same-connection shared-cert conns = %d", shared)
	}
}

func TestGenerateCTSeeded(t *testing.T) {
	b := Generate(testConfig())
	if b.CT.Size() == 0 {
		t.Fatal("CT log empty")
	}
	// The public cloud domains must be logged with their true issuers.
	if !b.CT.HasIssuer("amazonaws.com", "Amazon") {
		t.Fatal("amazonaws.com not logged")
	}
	if !b.CT.HasIssuer("rapid7.com", "DigiCert Inc") {
		t.Fatal("rapid7.com not logged")
	}
}

func TestGenerateInterceptionPresent(t *testing.T) {
	b := Generate(testConfig())
	count := 0
	for _, c := range b.Raw.Certs {
		if len(c.IssuerOrg) > 13 && c.IssuerOrg[:13] == "SecureInspect" {
			count++
		}
	}
	share := float64(count) / float64(len(b.Raw.Certs))
	if share < 0.05 || share > 0.13 {
		t.Fatalf("interception cert share = %.4f (count %d), want ~0.084", share, count)
	}
}

func TestRapid7Disappears(t *testing.T) {
	b := Generate(testConfig())
	for i := range b.Raw.Conns {
		c := &b.Raw.Conns[i]
		if c.SNI == "endpoint.rapid7.com" && monthOf(c.TS) > 16 {
			t.Fatalf("rapid7 connection after month 16: %v", c.TS)
		}
	}
}

func TestCertPlanReissue(t *testing.T) {
	p := &CertPlan{ReissueDays: 14}
	if p.reissueIndex(0, 0) != 0 || p.reissueIndex(0, 13) != 0 {
		t.Fatal("first period wrong")
	}
	if p.reissueIndex(0, 14) != 1 || p.reissueIndex(0, 700) != 50 {
		t.Fatal("reissue arithmetic wrong")
	}
	p0 := &CertPlan{}
	if p0.reissueIndex(0, 500) != 0 {
		t.Fatal("static plan must never reissue")
	}
}

func TestCertPlanMintValidityModes(t *testing.T) {
	rng := ids.NewRNG(5)
	normal := (&CertPlan{ValidityDays: 100, CN: []Content{{Kind: KindText, Text: "x", Weight: 1}}}).
		mint(rng, "e", 0, 0, 100)
	if normal.HasIncorrectDates() {
		t.Fatal("normal cert has incorrect dates")
	}
	if normal.ValidityDays() != 100 {
		t.Fatalf("validity = %d", normal.ValidityDays())
	}

	bad := (&CertPlan{IncorrectDates: true, IncorrectNotBeforeYear: 2020, IncorrectNotAfterYear: 1850}).
		mint(rng, "e", 0, 0, 100)
	if !bad.HasIncorrectDates() {
		t.Fatal("incorrect-dates plan minted a valid window")
	}

	exp := (&CertPlan{ValidityDays: 365, ExpiredMinDays: 950, ExpiredMaxDays: 1050}).
		mint(rng, "e", 0, 0, 300)
	days := exp.DaysExpiredAt(certmodel.DayToTime(300))
	if days < 950 || days > 1050 {
		t.Fatalf("days expired at first use = %d, want ~1000", days)
	}

	long := (&CertPlan{ValidityDays: 365, LongValidityShare: 1, LongValidityMin: 10000, LongValidityMax: 10001}).
		mint(rng, "e", 0, 0, 100)
	if long.ValidityDays() < 9999 {
		t.Fatalf("long validity = %d", long.ValidityDays())
	}
}

func TestCertPlanFixedSerialAndWeakKey(t *testing.T) {
	rng := ids.NewRNG(6)
	p := &CertPlan{SerialFixed: "024680", WeakRSAShare: 1, ValidityDays: 10}
	c := p.mint(rng, "e", 0, 0, 0)
	if c.SerialHex != "024680" {
		t.Fatalf("serial = %q", c.SerialHex)
	}
	if !c.WeakKey() {
		t.Fatal("weak key share = 1 should mint 1024-bit RSA")
	}
}

func TestQuantileSpread(t *testing.T) {
	if quantileSpread(0.1, 1, 2, 43, 1851) != 1 {
		t.Fatal("median wrong")
	}
	if quantileSpread(0.6, 1, 2, 43, 1851) != 2 {
		t.Fatal("75th wrong")
	}
	if got := quantileSpread(0.9999, 1, 2, 43, 1851); got != 1851 {
		t.Fatalf("max = %d", got)
	}
	mid := quantileSpread(0.9, 1, 2, 43, 1851)
	if mid < 2 || mid > 43 {
		t.Fatalf("interpolated = %d", mid)
	}
}

func TestMonthOf(t *testing.T) {
	if monthOf(certmodel.DayToTime(0)) != 0 {
		t.Fatal("month 0 wrong")
	}
	if monthOf(certmodel.DayToTime(31)) != 1 {
		t.Fatal("month 1 wrong")
	}
	if got := monthOf(certmodel.DayToTime(699)); got != 22 {
		t.Fatalf("last month = %d", got)
	}
}

func TestContentRenderKinds(t *testing.T) {
	rng := ids.NewRNG(9)
	if got := (Content{Kind: KindText, Text: "WebRTC"}).render(rng, 0); got != "WebRTC" {
		t.Fatalf("text = %q", got)
	}
	if got := (Content{Kind: KindUUID}).render(rng, 0); len(got) != 36 {
		t.Fatalf("uuid = %q", got)
	}
	if got := (Content{Kind: KindRandomHex, N: 8}).render(rng, 0); len(got) != 8 {
		t.Fatalf("hex = %q", got)
	}
	if got := (Content{Kind: KindMAC}).render(rng, 0); len(got) != 17 {
		t.Fatalf("mac = %q", got)
	}
	if got := (Content{Kind: KindUserAccount}).render(rng, 0); len(got) < 4 || len(got) > 7 {
		t.Fatalf("user account = %q", got)
	}
	if got := (Content{Kind: KindEmpty}).render(rng, 0); got != "" {
		t.Fatalf("empty = %q", got)
	}
}

func TestRosterValidates(t *testing.T) {
	if err := Validate(Entities(), 23); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Entity)
	}{
		{"no name", func(e *Entity) { e.Name = "" }},
		{"no conns", func(e *Entity) { e.Conns = 0 }},
		{"no ports", func(e *Entity) { e.Ports = nil }},
		{"inverted range", func(e *Entity) { e.Ports = []PortWeight{{Port: 500, PortHigh: 400, Weight: 1}} }},
		{"no client plan", func(e *Entity) { e.ClientPlan = nil }},
		{"shared with server plan", func(e *Entity) { e.SharedCert = true }},
		{"bad window", func(e *Entity) { e.StartMonth = 40 }},
		{"bad plan2 share", func(e *Entity) { e.ClientPlan2 = e.ClientPlan; e.ClientPlan2Share = 2 }},
		{"empty CN dist", func(e *Entity) { e.ClientPlan = &CertPlan{ValidityDays: 10} }},
		{"sanfill no san", func(e *Entity) {
			e.ClientPlan = &CertPlan{ValidityDays: 10, SANFill: 0.5,
				CN: []Content{{Kind: KindText, Text: "x", Weight: 1}}}
		}},
		{"reissue beyond validity", func(e *Entity) {
			e.ClientPlan = &CertPlan{ValidityDays: 10, ReissueDays: 20,
				CN: []Content{{Kind: KindText, Text: "x", Weight: 1}}}
		}},
	}
	for _, tc := range cases {
		e := Entity{
			Name: "probe", Conns: 100,
			Ports:      []PortWeight{{Port: 443, Weight: 1}},
			Clients:    10,
			ServerPlan: privateServerPlan("X", "x.com"),
			ClientPlan: corpClientPlan("X Corp"),
		}
		tc.mutate(&e)
		if err := Validate([]Entity{e}, 23); err == nil {
			t.Errorf("%s: Validate accepted a broken roster", tc.name)
		}
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	mk := func() Entity {
		return Entity{
			Name: "dup", Conns: 1,
			Ports:      []PortWeight{{Port: 443, Weight: 1}},
			Clients:    1,
			ServerPlan: privateServerPlan("X", "x.com"),
			ClientPlan: corpClientPlan("X Corp"),
		}
	}
	if err := Validate([]Entity{mk(), mk()}, 23); err == nil {
		t.Fatal("duplicate names accepted")
	}
}
