package workload

import "time"

// Pace describes a replay-rate profile for streaming a generated
// dataset into live logs the way a load harness does: a sustained row
// rate with periodic burst windows at a multiple of it. The zero burst
// fields disable bursting, leaving a flat rate.
type Pace struct {
	// Rate is the sustained row rate in rows per second; must be > 0.
	Rate float64
	// BurstEvery is the period between burst-window starts. A window
	// opens at every multiple of BurstEvery, beginning at elapsed 0.
	BurstEvery time.Duration
	// BurstLen is how long each burst window stays open.
	BurstLen time.Duration
	// BurstFactor multiplies Rate inside a burst window; values <= 1
	// disable bursting.
	BurstFactor float64
}

// bursting reports whether the profile has a meaningful burst phase.
func (p Pace) bursting() bool {
	return p.BurstEvery > 0 && p.BurstLen > 0 && p.BurstFactor > 1
}

// RateAt returns the target row rate at a point in the run.
func (p Pace) RateAt(elapsed time.Duration) float64 {
	if p.bursting() && elapsed%p.BurstEvery < p.BurstLen {
		return p.Rate * p.BurstFactor
	}
	return p.Rate
}

// MeanRate returns the profile's long-run average rate — what a whole
// number of burst periods delivers per second.
func (p Pace) MeanRate() float64 {
	if !p.bursting() {
		return p.Rate
	}
	period := p.BurstEvery.Seconds()
	burst := p.BurstLen.Seconds()
	if burst > period {
		burst = period
	}
	return (p.Rate*(period-burst) + p.Rate*p.BurstFactor*burst) / period
}

// Pacer turns a Pace into per-tick row budgets, carrying the fractional
// remainder between ticks so the emitted total tracks the profile
// exactly regardless of tick size. Not safe for concurrent use.
type Pacer struct {
	Pace
	carry float64
}

// Step returns how many rows to emit for the tick that ends at elapsed
// and lasted tick. Fractions accumulate in the carry, so summing Step
// over a run converges on the profile's integral to within one row.
func (p *Pacer) Step(elapsed, tick time.Duration) int {
	if tick <= 0 {
		return 0
	}
	// Integrate the (piecewise-constant) rate over [elapsed-tick, elapsed)
	// by splitting the tick at burst boundaries.
	start := elapsed - tick
	if start < 0 {
		start = 0
	}
	want := p.carry
	for start < elapsed {
		seg := elapsed
		if p.bursting() {
			phase := start % p.BurstEvery
			var next time.Duration
			if phase < p.BurstLen {
				next = start + (p.BurstLen - phase)
			} else {
				next = start + (p.BurstEvery - phase)
			}
			if next < seg {
				seg = next
			}
		}
		want += p.RateAt(start) * (seg - start).Seconds()
		start = seg
	}
	n := int(want)
	p.carry = want - float64(n)
	return n
}
