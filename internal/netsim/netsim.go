// Package netsim models the campus network's address plan: which prefixes
// are inside the university (including the health system), how NAT pools
// map many clients onto few addresses, and how a border tap decides
// whether a connection is inbound or outbound (§3.2's internal/external
// labeling, §4's inbound/outbound split).
//
// Address allocation is deterministic: the same (label, index) always
// yields the same address, so workload generation is reproducible and
// Table 6's subnet-spread analysis sees stable /24 groupings.
package netsim

import (
	"fmt"
	"net/netip"

	"repro/internal/ids"
)

// Direction classifies a connection relative to the border.
type Direction int

const (
	// Inbound: external client to a university-hosted server.
	Inbound Direction = iota
	// Outbound: university client to an external server.
	Outbound
	// Internal and External connections (both endpoints on one side)
	// would not cross the border tap; they appear only as error cases.
	Internal
	External
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	case Internal:
		return "internal"
	default:
		return "external"
	}
}

// Plan is the campus address plan.
type Plan struct {
	// University prefixes (the main campus range and the health system's).
	Campus netip.Prefix
	Health netip.Prefix
	// NATPool is the small set of addresses campus clients appear as for
	// outbound traffic ("clients … are extensively using NAT", §4).
	NATPool []netip.Addr
}

// DefaultPlan mirrors a large-university allocation: a /16 for campus, a
// /16 for the health system, and an 8-address NAT pool.
func DefaultPlan() *Plan {
	p := &Plan{
		Campus: netip.MustParsePrefix("128.143.0.0/16"),
		Health: netip.MustParsePrefix("172.25.0.0/16"),
	}
	for i := 0; i < 8; i++ {
		p.NATPool = append(p.NATPool, netip.AddrFrom4([4]byte{128, 143, 255, byte(10 + i)}))
	}
	return p
}

// IsInternal reports whether addr is inside the university (campus or
// health). Unparsable addresses are treated as external, as a border
// monitor would.
func (p *Plan) IsInternal(addr string) bool {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return false
	}
	return p.Campus.Contains(a) || p.Health.Contains(a)
}

// IsHealth reports whether addr belongs to the health system.
func (p *Plan) IsHealth(addr string) bool {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return false
	}
	return p.Health.Contains(a)
}

// DirectionOf classifies a connection by its endpoints (originator =
// client, responder = server).
func (p *Plan) DirectionOf(origIP, respIP string) Direction {
	oi, ri := p.IsInternal(origIP), p.IsInternal(respIP)
	switch {
	case !oi && ri:
		return Inbound
	case oi && !ri:
		return Outbound
	case oi && ri:
		return Internal
	default:
		return External
	}
}

// Allocator hands out deterministic addresses inside and outside the
// campus. Every address is a pure function of its (label, index) inputs.
type Allocator struct {
	plan *Plan
}

// NewAllocator creates an allocator over the plan.
func NewAllocator(plan *Plan) *Allocator { return &Allocator{plan: plan} }

// Plan returns the underlying address plan.
func (a *Allocator) Plan() *Plan { return a.plan }

// hostIn maps a 16-bit value into prefix's host space, avoiding .0/.255.
func hostIn(prefix netip.Prefix, v uint64) netip.Addr {
	base := prefix.Addr().As4()
	b3 := byte(v >> 8)
	b4 := byte(v)
	if b4 == 0 {
		b4 = 1
	}
	if b4 == 255 {
		b4 = 254
	}
	return netip.AddrFrom4([4]byte{base[0], base[1], b3, b4})
}

// CampusServer returns the address of university server #idx for a
// service label; the same (label, idx) is stable across runs.
func (a *Allocator) CampusServer(label string, idx int) string {
	v := ids.HashString64(fmt.Sprintf("srv/%s/%d", label, idx))
	return hostIn(a.plan.Campus, v).String()
}

// HealthServer returns an address inside the health system.
func (a *Allocator) HealthServer(label string, idx int) string {
	v := ids.HashString64(fmt.Sprintf("health/%s/%d", label, idx))
	return hostIn(a.plan.Health, v).String()
}

// CampusClient returns the NAT'd address campus client #idx appears as
// for outbound connections.
func (a *Allocator) CampusClient(idx int) string {
	return a.plan.NATPool[idx%len(a.plan.NATPool)].String()
}

// CampusDevice returns a non-NAT internal device address (inbound
// connections see internal servers; some internal devices also appear as
// distinct clients to internal services — e.g. health-system equipment).
func (a *Allocator) CampusDevice(label string, idx int) string {
	v := ids.HashString64(fmt.Sprintf("dev/%s/%d", label, idx))
	return hostIn(a.plan.Campus, v).String()
}

// ExternalHost returns an external address for entity label, host #idx,
// spread over the entity's own address space.
func (a *Allocator) ExternalHost(label string, idx int) string {
	return a.ExternalHostInSubnet(label, idx/200, idx%200)
}

// CampusHostInSubnet places host #host into campus /24 #subnet (mod the
// /16's 256 subnets) — used when an analysis needs controlled internal
// subnet spread (Table 6's client-presentation counting).
func (a *Allocator) CampusHostInSubnet(label string, subnet, host int) string {
	h := ids.HashString64(fmt.Sprintf("campus-sub/%s", label))
	base := a.plan.Campus.Addr().As4()
	o3 := byte((int(h) + subnet*7) % 256)
	o4 := byte(host%253) + 1
	return netip.AddrFrom4([4]byte{base[0], base[1], o3, o4}).String()
}

// ExternalHostInSubnet places host #host of entity label into the
// entity's subnet #subnet. Distinct (label, subnet) pairs map to distinct
// /24s, which is what Table 6's spread quantiles count.
func (a *Allocator) ExternalHostInSubnet(label string, subnet, host int) string {
	h := ids.HashString64(fmt.Sprintf("ext/%s/%d", label, subnet))
	// External space: avoid campus (128.143/16), health (172.25/16) and
	// reserved prefixes by constructing from hash bytes with the first
	// octet forced into public-looking ranges.
	o1 := byte(23 + (h % 80)) // 23..102
	o2 := byte(h >> 8)
	o3 := byte(h >> 16)
	o4 := byte(host%253) + 1
	return netip.AddrFrom4([4]byte{o1, o2, o3, o4}).String()
}
