package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestDirectionOf(t *testing.T) {
	p := DefaultPlan()
	cases := []struct {
		orig, resp string
		want       Direction
	}{
		{"8.8.8.8", "128.143.1.1", Inbound},
		{"8.8.8.8", "172.25.3.4", Inbound}, // health is internal
		{"128.143.255.10", "52.1.2.3", Outbound},
		{"128.143.1.1", "172.25.1.1", Internal},
		{"8.8.8.8", "9.9.9.9", External},
		{"garbage", "128.143.1.1", Inbound},
		{"garbage", "also-garbage", External},
	}
	for _, c := range cases {
		if got := p.DirectionOf(c.orig, c.resp); got != c.want {
			t.Errorf("DirectionOf(%s,%s) = %v, want %v", c.orig, c.resp, got, c.want)
		}
	}
}

func TestIsHealth(t *testing.T) {
	p := DefaultPlan()
	if !p.IsHealth("172.25.0.5") || p.IsHealth("128.143.0.5") || p.IsHealth("nope") {
		t.Fatal("IsHealth wrong")
	}
}

func TestAllocatorDeterminism(t *testing.T) {
	a := NewAllocator(DefaultPlan())
	if a.CampusServer("vpn", 0) != a.CampusServer("vpn", 0) {
		t.Fatal("CampusServer not deterministic")
	}
	if a.CampusServer("vpn", 0) == a.CampusServer("vpn", 1) {
		t.Fatal("distinct indices should differ")
	}
	if a.ExternalHost("rapid7", 3) != a.ExternalHost("rapid7", 3) {
		t.Fatal("ExternalHost not deterministic")
	}
}

func TestAllocatorPlacement(t *testing.T) {
	a := NewAllocator(DefaultPlan())
	p := a.Plan()
	for i := 0; i < 50; i++ {
		if !p.IsInternal(a.CampusServer("web", i)) {
			t.Fatalf("campus server %d not internal", i)
		}
		if !p.IsHealth(a.HealthServer("epic", i)) {
			t.Fatalf("health server %d not in health prefix", i)
		}
		if !p.IsInternal(a.CampusClient(i)) {
			t.Fatalf("NAT client %d not internal", i)
		}
		if !p.IsInternal(a.CampusDevice("lab", i)) {
			t.Fatalf("campus device %d not internal", i)
		}
		if p.IsInternal(a.ExternalHost("aws", i)) {
			t.Fatalf("external host %d inside campus", i)
		}
	}
}

func TestNATPoolSmall(t *testing.T) {
	a := NewAllocator(DefaultPlan())
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.CampusClient(i)] = true
	}
	if len(seen) != len(DefaultPlan().NATPool) {
		t.Fatalf("NAT pool size = %d, want %d", len(seen), len(DefaultPlan().NATPool))
	}
}

func TestSubnetSpreadControl(t *testing.T) {
	a := NewAllocator(DefaultPlan())
	// Hosts within the same (label, subnet) share a /24.
	s1 := ids.SubnetOfString(a.ExternalHostInSubnet("globus", 0, 1))
	s2 := ids.SubnetOfString(a.ExternalHostInSubnet("globus", 0, 2))
	if s1 != s2 {
		t.Fatal("same subnet index must share a /24")
	}
	// Distinct subnet indices land in distinct /24s (with overwhelming
	// probability for small counts; verify a concrete set).
	subnets := map[ids.SubnetKey]bool{}
	for i := 0; i < 40; i++ {
		subnets[ids.SubnetOfString(a.ExternalHostInSubnet("globus", i, 0))] = true
	}
	if len(subnets) < 38 {
		t.Fatalf("expected ~40 distinct /24s, got %d", len(subnets))
	}
}

func TestDirectionStrings(t *testing.T) {
	if Inbound.String() != "inbound" || Outbound.String() != "outbound" ||
		Internal.String() != "internal" || External.String() != "external" {
		t.Fatal("direction strings wrong")
	}
}

// Property: allocator outputs always parse and classify as expected.
func TestAllocatorProperty(t *testing.T) {
	a := NewAllocator(DefaultPlan())
	f := func(label string, idx uint16) bool {
		ext := a.ExternalHost(label, int(idx))
		srv := a.CampusServer(label, int(idx))
		return !a.Plan().IsInternal(ext) && a.Plan().IsInternal(srv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
