// Package ct simulates the Certificate Transparency lookup the paper uses
// during preprocessing (§3.2): given a domain, what issuers have genuinely
// issued for it? The interception detector compares an observed leaf's
// issuer against this record; a mismatch on an untrusted issuer is the
// interception signal.
//
// The simulator is an append-only log keyed by registrable domain. It
// intentionally models only what the detector consumes — issuance facts —
// not SCTs or Merkle proofs, which the paper's methodology never touches.
package ct

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one logged issuance.
type Entry struct {
	Domain    string // registrable domain (SLD)
	IssuerOrg string
	IssuerCN  string
	LoggedAt  time.Time
}

// Log is an append-only CT log.
type Log struct {
	mu      sync.RWMutex
	byredom map[string][]Entry
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{byredom: make(map[string][]Entry)} }

// AddChain records an issuance for domain. Later duplicate issuers are
// kept (real logs contain many entries per domain).
func (l *Log) AddChain(e Entry) {
	key := normalizeDomain(e.Domain)
	if key == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byredom[key] = append(l.byredom[key], e)
}

// Entries returns all issuances for domain (nil when never logged).
func (l *Log) Entries(domain string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Entry(nil), l.byredom[normalizeDomain(domain)]...)
}

// IssuersFor returns the sorted set of issuer organizations logged for
// domain — the detector's comparison set.
func (l *Log) IssuersFor(domain string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	set := map[string]bool{}
	for _, e := range l.byredom[normalizeDomain(domain)] {
		if org := strings.TrimSpace(e.IssuerOrg); org != "" {
			set[org] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HasIssuer reports whether issuerOrg ever issued for domain.
func (l *Log) HasIssuer(domain, issuerOrg string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	want := strings.TrimSpace(strings.ToLower(issuerOrg))
	for _, e := range l.byredom[normalizeDomain(domain)] {
		if strings.TrimSpace(strings.ToLower(e.IssuerOrg)) == want {
			return true
		}
	}
	return false
}

// Known reports whether domain has any entries at all; the detector treats
// unlogged domains as unverifiable.
func (l *Log) Known(domain string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byredom[normalizeDomain(domain)]) > 0
}

// Size returns the number of distinct domains logged.
func (l *Log) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byredom)
}

func normalizeDomain(d string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(d)), ".")
}
