package ct

import (
	"testing"
	"time"
)

func TestAddAndLookup(t *testing.T) {
	l := NewLog()
	l.AddChain(Entry{Domain: "Example.COM.", IssuerOrg: "DigiCert Inc", LoggedAt: time.Unix(0, 0)})
	l.AddChain(Entry{Domain: "example.com", IssuerOrg: "Let's Encrypt"})
	l.AddChain(Entry{Domain: "example.com", IssuerOrg: "DigiCert Inc"}) // duplicate issuer

	if !l.Known("example.com") || l.Known("other.com") {
		t.Fatal("Known wrong")
	}
	iss := l.IssuersFor("EXAMPLE.com")
	if len(iss) != 2 || iss[0] != "DigiCert Inc" || iss[1] != "Let's Encrypt" {
		t.Fatalf("issuers = %v", iss)
	}
	if !l.HasIssuer("example.com", "digicert inc") {
		t.Fatal("case-insensitive HasIssuer failed")
	}
	if l.HasIssuer("example.com", "Evil Proxy CA") {
		t.Fatal("false issuer")
	}
	if len(l.Entries("example.com")) != 3 {
		t.Fatal("entries wrong")
	}
	if l.Size() != 1 {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestEmptyDomainIgnored(t *testing.T) {
	l := NewLog()
	l.AddChain(Entry{Domain: "  ", IssuerOrg: "X"})
	if l.Size() != 0 {
		t.Fatal("empty domain must be ignored")
	}
}

func TestIssuersForSkipsEmptyOrg(t *testing.T) {
	l := NewLog()
	l.AddChain(Entry{Domain: "a.com", IssuerOrg: "  "})
	l.AddChain(Entry{Domain: "a.com", IssuerOrg: "Real CA"})
	iss := l.IssuersFor("a.com")
	if len(iss) != 1 || iss[0] != "Real CA" {
		t.Fatalf("issuers = %v", iss)
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := NewLog()
	done := make(chan bool)
	go func() {
		for i := 0; i < 1000; i++ {
			l.AddChain(Entry{Domain: "race.com", IssuerOrg: "CA"})
		}
		done <- true
	}()
	for i := 0; i < 1000; i++ {
		l.IssuersFor("race.com")
	}
	<-done
	if !l.HasIssuer("race.com", "CA") {
		t.Fatal("entries lost")
	}
}
