package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// sensorBits is how far each sensor's local sequences are shifted into
// the aggregator's global replay order: connections replay sensor-major
// (every connection of sensor i before any of sensor i+1), local order
// preserved within a sensor. Local sequences must stay below 1<<48 —
// checked at sync time — which at one event per microsecond is ~9 years
// of a single sensor's stream.
const sensorBits = 48

// Config configures an Aggregator.
type Config struct {
	// Input is the analysis context every merge replays under (Raw is
	// ignored; the aggregator accumulates sensor state).
	Input *core.Input
	// Sensors are the sensor base addresses ("host:port" or full URLs).
	Sensors []string
	// Interval is the per-sensor pull cadence (default 5s). Failures
	// back off exponentially from Interval, capped at MaxBackoff.
	Interval time.Duration
	// MaxBackoff caps the per-sensor failure backoff (default the
	// tailer's rule: min(32×Interval, 1m)).
	MaxBackoff time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Metrics receives the distrib_* series; nil disables exposition.
	Metrics *metrics.Registry
	// Logger receives sync-loop events; nil discards.
	Logger *slog.Logger
}

// SensorStatus is one sensor's sync state, served by /api/v1/stats on
// aggregators — the topology visibility a fleet operator watches.
type SensorStatus struct {
	URL           string
	Schema        int
	Epoch         uint64
	Cursor        uint64
	Certs         int
	Conns         int
	ConnsIngested uint64
	LastSync      time.Time // zero until the first successful sync
	LastSyncAge   float64   // seconds since LastSync (0 if none)
	LastError     string    // last sync failure ("" after a success)
	Syncs         uint64
	Errors        uint64
	FullResyncs   uint64
	Bytes         uint64
	Evicted       uint64 // conns aged out of the sensor's retention window here
}

// sensorState is one sensor's accumulated raw state plus sync
// bookkeeping; guarded by the aggregator's mu except inside the
// sensor's own fetch (network I/O happens unlocked).
type sensorState struct {
	url        string
	schema     int
	negotiated bool

	epoch  uint64
	cursor uint64

	certs    []stream.ExportCert
	conns    []stream.ExportConn
	evidence *interception.Evidence

	connsIngested uint64
	certsIngested uint64
	watermark     time.Time
	retention     time.Duration // sensor's window; 0 = keep everything
	evicted       uint64        // conns dropped here as the watermark advanced

	version     uint64 // bumped on every state change; the merge cache key
	lastSync    time.Time
	lastErr     string
	syncs       uint64
	errs        uint64
	fullResyncs uint64
	bytes       uint64

	bo backoff
}

// backoff mirrors the daemon tailer's failure schedule: first failure
// waits base, doubling to cap, reset on success.
type backoff struct {
	base, cap, cur time.Duration
	until          time.Time
}

func (b *backoff) failure(now time.Time) {
	if b.cur == 0 {
		b.cur = b.base
	} else {
		b.cur *= 2
		if b.cur > b.cap {
			b.cur = b.cap
		}
	}
	b.until = now.Add(b.cur)
}

func (b *backoff) success() {
	b.cur = 0
	b.until = time.Time{}
}

func (b *backoff) ready(now time.Time) bool { return !now.Before(b.until) }

type aggMetrics struct {
	syncs       func(url string) *metrics.Counter
	syncErrors  func(url string) *metrics.Counter
	syncBytes   func(url string) *metrics.Counter
	cursor      func(url string) *metrics.Gauge
	fullResyncs func(url string) *metrics.Counter
	evicted     func(url string) *metrics.Counter
	merges      *metrics.Counter
	mergeDur    *metrics.Histogram
}

// Aggregator pulls N sensors and serves their merged analysis: each
// sensor's accumulated snapshot stream is one shard, replayed through
// core.MergeShards under a §3.2 verdict recomputed from the union of
// raw sensor evidence (interception.Merge). An unreachable sensor backs
// off and the aggregator keeps serving the last-good merge; the
// staleness is visible per sensor in SensorStatuses and /metrics.
type Aggregator struct {
	cfg    Config
	client *http.Client
	logger *slog.Logger
	m      *aggMetrics

	mu      sync.Mutex
	sensors []*sensorState

	matMu     sync.Mutex
	cachedVer []uint64
	cachedB   *core.Builder
	cachedPre *core.PreprocessReport
	merges    uint64
}

// NewAggregator validates the config and prepares the sensor table; no
// network traffic until Run or SyncAll.
func NewAggregator(cfg Config) (*Aggregator, error) {
	if cfg.Input == nil {
		return nil, fmt.Errorf("distrib: Config.Input is required")
	}
	if len(cfg.Sensors) == 0 {
		return nil, fmt.Errorf("distrib: at least one sensor is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 32 * cfg.Interval
		if cfg.MaxBackoff > time.Minute {
			cfg.MaxBackoff = time.Minute
		}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	a := &Aggregator{
		cfg:    cfg,
		client: cfg.Client,
		logger: cfg.Logger,
		m: &aggMetrics{
			syncs: func(u string) *metrics.Counter {
				return reg.Counter("distrib_syncs_total", "successful sensor syncs", "sensor", u)
			},
			syncErrors: func(u string) *metrics.Counter {
				return reg.Counter("distrib_sync_errors_total", "failed sensor syncs", "sensor", u)
			},
			syncBytes: func(u string) *metrics.Counter {
				return reg.Counter("distrib_sync_bytes_total", "snapshot bytes pulled", "sensor", u)
			},
			cursor: func(u string) *metrics.Gauge {
				return reg.Gauge("distrib_sensor_cursor", "sensor sequence cursor", "sensor", u)
			},
			fullResyncs: func(u string) *metrics.Counter {
				return reg.Counter("distrib_full_resyncs_total", "stale-cursor full re-syncs", "sensor", u)
			},
			evicted: func(u string) *metrics.Counter {
				return reg.Counter("distrib_aggregator_evicted_total",
					"accumulated conns dropped at the aggregator by the sensor's retention window", "sensor", u)
			},
			merges:   reg.Counter("distrib_merges_total", "merged-view rebuilds"),
			mergeDur: reg.Histogram("distrib_merge_seconds", "merged-view rebuild duration", nil),
		},
	}
	for _, raw := range cfg.Sensors {
		u := strings.TrimRight(raw, "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		ss := &sensorState{
			url:    u,
			schema: SchemaV1,
			bo:     backoff{base: cfg.Interval, cap: cfg.MaxBackoff},
		}
		a.sensors = append(a.sensors, ss)
		url := u
		reg.GaugeFunc("distrib_sensor_last_sync_age_seconds",
			"seconds since the sensor's last successful sync (-1 before the first)",
			func() float64 {
				a.mu.Lock()
				defer a.mu.Unlock()
				if ss.lastSync.IsZero() {
					return -1
				}
				return time.Since(ss.lastSync).Seconds()
			}, "sensor", url)
	}
	return a, nil
}

// Run pulls every sensor on the configured interval until ctx is done:
// one loop per sensor, so a slow or dead sensor never delays the
// others. The first sync of each sensor happens immediately.
func (a *Aggregator) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ss := range a.sensors {
		wg.Add(1)
		go func(ss *sensorState) {
			defer wg.Done()
			a.syncSensor(ctx, ss)
			t := time.NewTicker(a.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-t.C:
					a.mu.Lock()
					due := ss.bo.ready(now)
					a.mu.Unlock()
					if due {
						a.syncSensor(ctx, ss)
					}
				}
			}
		}(ss)
	}
	wg.Wait()
}

// SyncAll synchronously pulls every sensor once, ignoring backoff — the
// deterministic hook tests and one-shot tools use. Returns the first
// error (every sensor is still attempted).
func (a *Aggregator) SyncAll(ctx context.Context) error {
	var first error
	for _, ss := range a.sensors {
		if err := a.syncSensor(ctx, ss); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncSensor performs one negotiation-aware sync of one sensor and
// records the outcome.
func (a *Aggregator) syncSensor(ctx context.Context, ss *sensorState) error {
	err := a.syncOnce(ctx, ss)
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		ss.errs++
		ss.lastErr = err.Error()
		ss.bo.failure(now)
		a.m.syncErrors(ss.url).Inc()
		a.logger.Warn("sensor sync failed", "sensor", ss.url, "err", err, "retry_in", ss.bo.cur.String())
		return err
	}
	ss.syncs++
	ss.lastErr = ""
	ss.lastSync = now
	ss.bo.success()
	a.m.syncs(ss.url).Inc()
	a.m.cursor(ss.url).Set(float64(ss.cursor))
	return nil
}

func (a *Aggregator) syncOnce(ctx context.Context, ss *sensorState) error {
	a.mu.Lock()
	negotiated, cursor, epoch := ss.negotiated, ss.cursor, ss.epoch
	a.mu.Unlock()

	if !negotiated {
		schema, err := a.negotiate(ctx, ss.url)
		if err != nil {
			return err
		}
		a.mu.Lock()
		ss.schema, ss.negotiated = schema, true
		a.mu.Unlock()
	}

	snap, n, status, err := a.fetch(ctx, ss, cursor, epoch)
	if status == http.StatusGone {
		// The sensor restarted with a new sequence numbering: our
		// accumulated view of it is unusable. Discard and full-resync.
		a.logger.Info("sensor cursor stale; full re-sync", "sensor", ss.url)
		a.mu.Lock()
		ss.certs, ss.conns, ss.evidence = nil, nil, nil
		ss.cursor, ss.epoch = 0, 0
		ss.fullResyncs++
		ss.version++
		a.mu.Unlock()
		a.m.fullResyncs(ss.url).Inc()
		cursor, epoch = 0, 0
		snap, n, status, err = a.fetch(ctx, ss, 0, 0)
	}
	if status == http.StatusNotAcceptable {
		// The sensor stopped speaking our schema (upgraded or
		// downgraded): renegotiate on the next attempt.
		a.mu.Lock()
		ss.negotiated = false
		a.mu.Unlock()
	}
	if err != nil {
		return err
	}
	return a.apply(ss, snap, n, cursor)
}

// negotiate picks the highest snapshot schema both sides support. A
// sensor without /api/v1/version (an older build) is assumed to speak
// SchemaV1.
func (a *Aggregator) negotiate(ctx context.Context, base string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/version", nil)
	if err != nil {
		return 0, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("distrib: version probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return SchemaV1, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("distrib: version probe: status %d", resp.StatusCode)
	}
	var info struct {
		SnapshotSchemas []int `json:"snapshot_schemas"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return 0, fmt.Errorf("distrib: version decode: %w", err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	best := -1
	for _, theirs := range info.SnapshotSchemas {
		if SchemaSupported(theirs) && theirs > best {
			best = theirs
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("distrib: no common snapshot schema: sensor speaks %v, this build %v",
			info.SnapshotSchemas, SupportedSchemas())
	}
	return best, nil
}

// fetch pulls one snapshot. The HTTP status is returned alongside the
// error so the caller can route 410/406 to their recovery paths.
func (a *Aggregator) fetch(ctx context.Context, ss *sensorState, cursor, epoch uint64) (*Snapshot, int64, int, error) {
	url := ss.url + "/api/v1/snapshot?schema=" + strconv.Itoa(ss.schema)
	if cursor > 0 {
		url += "&since=" + strconv.FormatUint(cursor, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("distrib: pull %s: %w", ss.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, resp.StatusCode,
			fmt.Errorf("distrib: pull %s: status %d: %s", ss.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	cr := &countingReader{r: resp.Body}
	snap, err := Decode(cr)
	if err != nil {
		return nil, cr.n, resp.StatusCode, err
	}
	// Read through the end of the body so the connection is released
	// back to the pool instead of lingering half-read.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return snap, cr.n, resp.StatusCode, nil
}

// apply validates a pulled snapshot against the cursor it answered and
// folds it into the sensor's accumulated state.
func (a *Aggregator) apply(ss *sensorState, snap *Snapshot, nbytes int64, cursor uint64) error {
	if snap.Since != cursor {
		return fmt.Errorf("distrib: %s answered since %d, asked %d", ss.url, snap.Since, cursor)
	}
	if cursor > 0 && snap.Epoch != ss.epoch {
		return fmt.Errorf("distrib: %s changed epoch mid-delta", ss.url)
	}
	for i := range snap.Certs {
		if snap.Certs[i].Seq >= 1<<sensorBits {
			return fmt.Errorf("distrib: %s sequence overflow", ss.url)
		}
	}
	for i := range snap.Conns {
		if snap.Conns[i].Seq >= 1<<sensorBits {
			return fmt.Errorf("distrib: %s sequence overflow", ss.url)
		}
		if snap.Conns[i].Seq < cursor {
			return fmt.Errorf("distrib: %s delta re-sent sequence %d below cursor %d", ss.url, snap.Conns[i].Seq, cursor)
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if cursor == 0 {
		ss.certs = snap.Certs
		ss.conns = snap.Conns
	} else {
		ss.certs = append(ss.certs, snap.Certs...)
		ss.conns = append(ss.conns, snap.Conns...)
	}
	// An empty steady-state delta changes nothing (every state change on
	// the sensor consumes a sequence number), so it must not invalidate
	// the merge cache. Evidence is cumulative on the sensor: the latest
	// snapshot's relations replace (not union with) what we held.
	if cursor == 0 || len(snap.Certs) > 0 || len(snap.Conns) > 0 {
		ss.evidence = snap.Evidence
		ss.version++
	}
	ss.epoch = snap.Epoch
	ss.cursor = snap.NextSeq
	ss.connsIngested = snap.ConnsIngested
	ss.certsIngested = snap.CertsIngested
	ss.watermark = snap.Watermark
	ss.retention = snap.Retention
	ss.bytes += uint64(nbytes)
	a.m.syncBytes(ss.url).Add(uint64(nbytes))
	a.evictLocked()
	return nil
}

// evictLocked drops accumulated connections that have aged out of their
// sensor's retention window, measured against the global watermark (the
// max across sensors — the clock a single daemon tailing the union of
// the logs would evict by). Deltas only ship records first observed
// since the cursor, so without this sweep a connection shipped in an
// earlier delta would be retained here forever and the merged analysis
// would diverge from that union daemon. Every sensor is swept on every
// apply: the global watermark advances on any sensor's sync, aging the
// others' records too. Caller holds a.mu.
func (a *Aggregator) evictLocked() {
	var wm time.Time
	for _, ss := range a.sensors {
		if ss.watermark.After(wm) {
			wm = ss.watermark
		}
	}
	for _, ss := range a.sensors {
		if ss.retention <= 0 || len(ss.conns) == 0 {
			continue
		}
		cutoff := wm.Add(-ss.retention)
		kept := ss.conns[:0]
		for _, ec := range ss.conns {
			if !ec.Conn.TS.Before(cutoff) {
				kept = append(kept, ec)
			}
		}
		if n := len(ss.conns) - len(kept); n > 0 {
			ss.conns = kept
			ss.evicted += uint64(n)
			ss.version++
			a.m.evicted(ss.url).Add(uint64(n))
		}
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// merged rebuilds the global Builder from the accumulated sensor states
// when any changed since the last merge (cached otherwise). Caller
// holds matMu.
func (a *Aggregator) merged() (*core.Builder, *core.PreprocessReport) {
	a.mu.Lock()
	vers := make([]uint64, len(a.sensors))
	for i, ss := range a.sensors {
		vers[i] = ss.version
	}
	if a.cachedB != nil && equalVers(vers, a.cachedVer) {
		a.mu.Unlock()
		return a.cachedB, a.cachedPre
	}
	t0 := time.Now()
	im := interception.NewMerge(2)
	states := make([]core.ShardState, len(a.sensors))
	var rawConns uint64
	seen := make(map[ids.Fingerprint]bool)
	rawCerts := 0
	for i, ss := range a.sensors {
		certs := make([]*certmodel.CertInfo, 0, len(ss.certs))
		for _, ec := range ss.certs {
			certs = append(certs, ec.Cert)
			if !seen[ec.Cert.Fingerprint] {
				seen[ec.Cert.Fingerprint] = true
				rawCerts++
			}
		}
		conns := make([]core.ConnRecord, len(ss.conns))
		seqs := make([]uint64, len(ss.conns))
		for j, ec := range ss.conns {
			conns[j] = ec.Conn
			seqs[j] = uint64(i)<<sensorBits | ec.Seq
		}
		states[i] = core.ShardState{Certs: certs, Conns: conns, Seqs: seqs}
		rawConns += ss.connsIngested
		im.AbsorbEvidence(ss.evidence)
	}
	a.mu.Unlock()

	res := im.Result()
	pre := &core.PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(rawCerts),
		RawCerts:            rawCerts,
		RawConns:            int(rawConns),
	}
	b := core.MergeShards(a.cfg.Input, states, func(fp ids.Fingerprint) bool {
		return res.ExcludedCerts[fp]
	})
	a.cachedVer, a.cachedB, a.cachedPre = vers, b, pre
	a.merges++
	a.m.merges.Inc()
	a.m.mergeDur.Since(t0)
	return b, pre
}

func equalVers(x, y []uint64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// WithPipeline runs fn over the merged pipeline; fn must not retain it.
// Satisfies stream.Materializer, so the aggregator serves the same
// report registry as a local engine.
func (a *Aggregator) WithPipeline(fn func(*core.Pipeline)) {
	a.matMu.Lock()
	defer a.matMu.Unlock()
	b, pre := a.merged()
	fn(b.Pipeline(pre))
}

// Analysis materializes every table and figure over the merged state.
func (a *Aggregator) Analysis() *core.Analysis {
	var out *core.Analysis
	a.WithPipeline(func(p *core.Pipeline) { out = p.RunAll() })
	return out
}

// Report materializes one named report, with the same registry and
// error taxonomy as the engines.
func (a *Aggregator) Report(name string) (any, error) {
	return stream.MaterializeReport(a, name)
}

// Stats maps the aggregated view onto the engine's Stats shape so the
// daemon's /api/v1/stats surface is uniform across roles: ingest
// counters sum the sensors' reported totals, the roster numbers come
// from the accumulated union, and the §3.2 numbers reflect the merged
// verdict. Rebuilds counts merges; Dirty means unmerged sensor state.
func (a *Aggregator) Stats() stream.Stats {
	a.mu.Lock()
	var st stream.Stats
	vers := make([]uint64, len(a.sensors))
	seen := make(map[ids.Fingerprint]bool)
	im := interception.NewMerge(2)
	for i, ss := range a.sensors {
		vers[i] = ss.version
		st.ConnsIngested += ss.connsIngested
		st.CertsIngested += ss.certsIngested
		st.Retained += len(ss.conns)
		for _, ec := range ss.certs {
			seen[ec.Cert.Fingerprint] = true
		}
		if ss.watermark.After(st.Watermark) {
			st.Watermark = ss.watermark
		}
		im.AbsorbEvidence(ss.evidence)
	}
	a.mu.Unlock()
	st.UniqueCerts = len(seen)
	res := im.Result()
	st.ExcludedCerts = len(res.ExcludedCerts)
	st.InterceptionIssuers = len(res.Issuers)
	st.PendingCerts = im.PendingCount()

	a.matMu.Lock()
	st.Rebuilds = a.merges
	st.Dirty = a.cachedB == nil || !equalVers(vers, a.cachedVer)
	a.matMu.Unlock()
	return st
}

// SensorStatuses reports each sensor's sync state, ordered as
// configured.
func (a *Aggregator) SensorStatuses() []SensorStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SensorStatus, 0, len(a.sensors))
	for _, ss := range a.sensors {
		s := SensorStatus{
			URL:           ss.url,
			Schema:        ss.schema,
			Epoch:         ss.epoch,
			Cursor:        ss.cursor,
			Certs:         len(ss.certs),
			Conns:         len(ss.conns),
			ConnsIngested: ss.connsIngested,
			LastSync:      ss.lastSync,
			LastError:     ss.lastErr,
			Syncs:         ss.syncs,
			Errors:        ss.errs,
			FullResyncs:   ss.fullResyncs,
			Bytes:         ss.bytes,
			Evicted:       ss.evicted,
		}
		if !ss.lastSync.IsZero() {
			s.LastSyncAge = time.Since(ss.lastSync).Seconds()
		}
		out = append(out, s)
	}
	return out
}
