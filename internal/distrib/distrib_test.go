package distrib

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ingester is the shared feed surface of stream.Engine and
// stream.Sharded.
type ingester interface {
	IngestCert(*core.CertRecord) bool
	IngestConn(*core.ConnRecord) bool
}

// certList orders the build's certificate map by fingerprint so tests
// can split it into deterministic slices.
func certList(b *workload.Build) []*certmodel.CertInfo {
	certs := make([]*certmodel.CertInfo, 0, len(b.Raw.Certs))
	for _, c := range b.Raw.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	return certs
}

// feedSlice pushes index ranges of the build — the tool for splitting
// one dataset across sensors and sync rounds. Connections go first so
// every certificate arrives late (the §3.2 retroactive path).
func feedSlice(t *testing.T, g ingester, b *workload.Build, certs []*certmodel.CertInfo, c0, c1, n0, n1 int) {
	t.Helper()
	for i := n0; i < n1; i++ {
		if !g.IngestConn(&b.Raw.Conns[i]) {
			t.Fatal("conn event rejected")
		}
	}
	for _, c := range certs[c0:c1] {
		if !g.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c}) {
			t.Fatal("cert event rejected")
		}
	}
}

// swapExporter lets a test replace the engine behind a running sensor
// server — a sensor process restart with a stable address.
type swapExporter struct {
	mu  sync.Mutex
	exp Exporter
}

func (s *swapExporter) Export(since, epoch uint64) (*stream.ExportState, error) {
	s.mu.Lock()
	exp := s.exp
	s.mu.Unlock()
	return exp.Export(since, epoch)
}

func (s *swapExporter) swap(exp Exporter) {
	s.mu.Lock()
	s.exp = exp
	s.mu.Unlock()
}

// newSensorServer serves exp the way mtlsd -role sensor does:
// /api/v1/snapshot from a Sensor, and /api/v1/version advertising
// schemas (nil = no version endpoint, an older build).
func newSensorServer(t *testing.T, exp Exporter, schemas []int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/snapshot", NewSensor(exp, nil, nil).Handler())
	if schemas != nil {
		mux.HandleFunc("/api/v1/version", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"snapshot_schemas": schemas})
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// newSensorEngine builds an exporting engine over the shared input.
func newSensorEngine(t *testing.T, b *workload.Build) *stream.Engine {
	t.Helper()
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := stream.New(stream.Config{Input: in, TrackExport: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func newAgg(t *testing.T, b *workload.Build, reg *metrics.Registry, urls ...string) *Aggregator {
	t.Helper()
	a, err := NewAggregator(Config{
		Input:    inputFromBuild(b),
		Sensors:  urls,
		Interval: time.Hour, // tests drive syncs explicitly
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// analysisJSON normalizes an analysis for comparison across the HTTP
// boundary: the snapshot codec is JSON, so time.Time location pointers
// differ even when the instants are identical.
func analysisJSON(t *testing.T, a *core.Analysis) string {
	t.Helper()
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestAggregatorEquivalence is the tier's oracle: an aggregator over N
// sensors holding disjoint contiguous connection slices reproduces the
// analysis of one engine over the union — at N ∈ {1, 2, 4}, with every
// certificate arriving after its slice's connections (out-of-order
// delivery plus §3.2 retroactive exclusions). Each sensor sees the full
// certificate population, as in a real deployment: a sensor's x509 log
// records every certificate its own connections exchanged, so the
// certificates referenced by a connection are always co-located with it.
func TestAggregatorEquivalence(t *testing.T) {
	b := genBuild(20240504, 1200)
	want := analysisJSON(t, core.Run(inputFromBuild(b)))
	certs := certList(b)

	for _, n := range []int{1, 2, 4} {
		urls := make([]string, n)
		for i := 0; i < n; i++ {
			e := newSensorEngine(t, b)
			n0, n1 := i*len(b.Raw.Conns)/n, (i+1)*len(b.Raw.Conns)/n
			feedSlice(t, e, b, certs, 0, len(certs), n0, n1)
			e.Drain()
			urls[i] = newSensorServer(t, e, SupportedSchemas()).URL
		}

		a := newAgg(t, b, nil, urls...)
		if err := a.SyncAll(context.Background()); err != nil {
			t.Fatalf("sensors=%d: SyncAll: %v", n, err)
		}
		if got := analysisJSON(t, a.Analysis()); got != want {
			t.Errorf("sensors=%d: aggregated analysis differs from union engine", n)
		}

		// The named-report surface materializes over the same merge.
		if _, err := a.Report("table4"); err != nil {
			t.Errorf("sensors=%d: Report(table4): %v", n, err)
		}
		if _, err := a.Report("nosuch"); err == nil {
			t.Errorf("sensors=%d: Report(nosuch) succeeded", n)
		}
	}
}

// TestAggregatorDiskStoreSensorEquivalence pins the snapshot/restore
// interplay with the pluggable store: a sensor running the disk-backed
// store under a hot budget far below its working set (so Export reads
// cross the cold tier) must serve snapshots the aggregator merges into
// the same analysis as an all-memory fleet — including an incremental
// delta sync after more rows land.
func TestAggregatorDiskStoreSensorEquivalence(t *testing.T) {
	b := genBuild(20240504, 1200)
	want := analysisJSON(t, core.Run(inputFromBuild(b)))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	in := inputFromBuild(b)
	in.Raw = nil
	disk, err := stream.New(stream.Config{
		Input: in, TrackExport: true,
		Store: "disk", StoreDir: t.TempDir(), HotBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disk.Close)
	mem := newSensorEngine(t, b)

	// Disjoint halves; the disk sensor gets the first, memory the rest.
	feedSlice(t, disk, b, certs, 0, len(certs), 0, half/2)
	feedSlice(t, mem, b, certs, 0, len(certs), half, len(b.Raw.Conns))
	disk.Drain()
	mem.Drain()

	a := newAgg(t, b, nil,
		newSensorServer(t, disk, SupportedSchemas()).URL,
		newSensorServer(t, mem, SupportedSchemas()).URL)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second round: the rest of the disk sensor's slice arrives and the
	// next sync must pick it up as a delta against the recorded cursor.
	feedSlice(t, disk, b, certs, 0, 0, half/2, half)
	disk.Drain()
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := analysisJSON(t, a.Analysis()); got != want {
		t.Error("aggregated analysis over a disk-store sensor differs from the union engine")
	}
}

// newRetentionSensor is newSensorEngine with a retention window and
// per-event eviction sweeps, so the retained set is exactly the window
// behind the watermark — deterministic for equivalence checks.
func newRetentionSensor(t *testing.T, b *workload.Build, r time.Duration) *stream.Engine {
	t.Helper()
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := stream.New(stream.Config{Input: in, TrackExport: true, Retention: r, EvictEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestAggregatorRetentionEquivalence pins the retention-divergence fix:
// snapshots carry the sensor's window, and the aggregator ages
// accumulated connections against the global watermark. Deltas only
// ship records first observed since the cursor, so before the fix a
// connection shipped in an early sync sat at the aggregator forever and
// the merged analysis drifted away from a single windowed daemon over
// the union of the logs. Two sync rounds per sensor make exactly that
// happen: round-1 connections age out of the window by round 2.
func TestAggregatorRetentionEquivalence(t *testing.T) {
	b := genBuild(20240504, 1200)
	certs := certList(b)
	conns := b.Raw.Conns
	// ~6.5 months of a 23-month stream: most of the study ages out.
	const retention = 200 * 24 * time.Hour

	// Feed in timestamp order — a live tail's arrival order — so the
	// watermark advances between sync rounds and later rounds age the
	// earlier rounds' records out of the window.
	order := make([]int, len(conns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return conns[order[i]].TS.Before(conns[order[j]].TS) })
	feedSorted := func(g ingester, lo, hi int) {
		t.Helper()
		for _, idx := range order[lo:hi] {
			if !g.IngestConn(&conns[idx]) {
				t.Fatal("conn event rejected")
			}
		}
	}
	feedCerts := func(g ingester) {
		t.Helper()
		for _, c := range certs {
			if !g.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c}) {
				t.Fatal("cert event rejected")
			}
		}
	}

	in := inputFromBuild(b)
	in.Raw = nil
	union, err := stream.New(stream.Config{Input: in, Retention: retention, EvictEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(union.Close)
	feedSorted(union, 0, len(conns))
	feedCerts(union)
	union.Drain()
	ust := union.Stats()
	if ust.Evicted == 0 || ust.Retained >= len(conns) {
		t.Fatalf("window too wide to test: evicted %d, retained %d of %d",
			ust.Evicted, ust.Retained, len(conns))
	}
	want := analysisJSON(t, union.Analysis())

	for _, n := range []int{1, 2, 4} {
		engines := make([]*stream.Engine, n)
		urls := make([]string, n)
		for i := range engines {
			engines[i] = newRetentionSensor(t, b, retention)
			urls[i] = newSensorServer(t, engines[i], SupportedSchemas()).URL
		}
		reg := metrics.New()
		a := newAgg(t, b, reg, urls...)

		// Each sensor feeds its contiguous slice in two halves with a
		// sync after each, so every sensor's round-1 records are already
		// at the aggregator when the watermark moves past them.
		for round := 0; round < 2; round++ {
			for i, e := range engines {
				n0, n1 := i*len(conns)/n, (i+1)*len(conns)/n
				mid := (n0 + n1) / 2
				if round == 0 {
					feedSorted(e, n0, mid)
					feedCerts(e)
				} else {
					feedSorted(e, mid, n1)
				}
				e.Drain()
			}
			if err := a.SyncAll(context.Background()); err != nil {
				t.Fatalf("sensors=%d round %d: SyncAll: %v", n, round, err)
			}
		}

		if got := analysisJSON(t, a.Analysis()); got != want {
			t.Errorf("sensors=%d: windowed aggregation differs from union engine", n)
		}
		st := a.Stats()
		if st.Retained != ust.Retained {
			t.Errorf("sensors=%d: aggregator retains %d conns, union engine %d",
				n, st.Retained, ust.Retained)
		}
		var aggEvicted uint64
		for _, s := range a.SensorStatuses() {
			aggEvicted += s.Evicted
		}
		if aggEvicted == 0 {
			t.Errorf("sensors=%d: aggregator evicted nothing — delta-shipped conns never age out", n)
		}

		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "distrib_aggregator_evicted_total") {
			t.Error("metrics exposition missing distrib_aggregator_evicted_total")
		}
	}
}

// TestAggregatorDeltaSync: the second pull rides the cursor — only new
// records travel — and an idle third pull does not invalidate the merge
// cache.
func TestAggregatorDeltaSync(t *testing.T) {
	b := genBuild(7, 1200)
	want := analysisJSON(t, core.Run(inputFromBuild(b)))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	engines := make([]*stream.Engine, 2)
	urls := make([]string, 2)
	for i := range engines {
		engines[i] = newSensorEngine(t, b)
		urls[i] = newSensorServer(t, engines[i], SupportedSchemas()).URL
	}
	// Round 1: connections only, split across the sensors. No
	// certificates yet, so every verdict is still pending.
	feedSlice(t, engines[0], b, certs, 0, 0, 0, half)
	feedSlice(t, engines[1], b, certs, 0, 0, half, len(b.Raw.Conns))
	for _, e := range engines {
		e.Drain()
	}

	reg := metrics.New()
	a := newAgg(t, b, reg, urls...)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.SensorStatuses()
	if st[0].Cursor == 0 || st[1].Cursor == 0 {
		t.Fatalf("cursors not advanced: %+v", st)
	}

	// Round 2: all certificates arrive late, on both sensors (each
	// sensor's x509 log covers its own connections' certificates).
	feedSlice(t, engines[0], b, certs, 0, len(certs), 0, 0)
	feedSlice(t, engines[1], b, certs, 0, len(certs), 0, 0)
	for _, e := range engines {
		e.Drain()
	}
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, s := range a.SensorStatuses() {
		if s.Syncs != 2 || s.Errors != 0 || s.FullResyncs != 0 {
			t.Fatalf("sensor %d: %+v, want 2 clean syncs", i, s)
		}
		if s.Conns == 0 || s.Certs == 0 {
			t.Fatalf("sensor %d accumulated nothing: %+v", i, s)
		}
	}
	if got := analysisJSON(t, a.Analysis()); got != want {
		t.Error("full+delta aggregation differs from union engine")
	}

	// Round 3: nothing new. The empty deltas must not dirty the merge.
	stats := a.Stats()
	if stats.Dirty {
		t.Error("freshly merged view reported dirty")
	}
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stats = a.Stats(); stats.Dirty {
		t.Error("empty steady-state deltas dirtied the merged view")
	}
	if stats.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", stats.Rebuilds)
	}
	if stats.ConnsIngested != uint64(len(b.Raw.Conns)) {
		t.Errorf("ConnsIngested = %d, want %d", stats.ConnsIngested, len(b.Raw.Conns))
	}
	if stats.UniqueCerts != len(b.Raw.Certs) {
		t.Errorf("UniqueCerts = %d, want %d", stats.UniqueCerts, len(b.Raw.Certs))
	}

	// The sync metrics made it to the registry.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distrib_syncs_total", "distrib_sync_bytes_total",
		"distrib_merges_total", "distrib_sensor_last_sync_age_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestAggregatorSensorRestartResume: a sensor that checkpoints, dies,
// and restores keeps its epoch and numbering, so the aggregator's
// cursor keeps working — delta resume, no full re-sync.
func TestAggregatorSensorRestartResume(t *testing.T) {
	b := genBuild(20240504, 800)
	want := analysisJSON(t, core.Run(inputFromBuild(b)))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	in := inputFromBuild(b)
	in.Raw = nil
	cfg := stream.Config{Input: in, TrackExport: true}
	e1, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedSlice(t, e1, b, certs, 0, len(certs)/2, 0, half)
	e1.Drain()

	sw := &swapExporter{exp: e1}
	srv := newSensorServer(t, sw, SupportedSchemas())
	a := newAgg(t, b, nil, srv.URL)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The sensor checkpoints and dies; a new process restores and
	// catches up on the rest of the log.
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := e1.WriteCheckpoint(path, nil); err != nil {
		t.Fatal(err)
	}
	e1.Close()
	e2, _, err := stream.Restore(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	feedSlice(t, e2, b, certs, len(certs)/2, len(certs), half, len(b.Raw.Conns))
	e2.Drain()
	sw.swap(e2)

	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := a.SensorStatuses()[0]
	if s.FullResyncs != 0 {
		t.Errorf("checkpointed restart forced %d full re-syncs, want delta resume", s.FullResyncs)
	}
	if s.Syncs != 2 || s.Errors != 0 {
		t.Errorf("sensor status after restart: %+v", s)
	}
	if got := analysisJSON(t, a.Analysis()); got != want {
		t.Error("aggregation across sensor restart differs from union engine")
	}
}

// TestAggregatorFreshRestartFullResync: a sensor that restarts without
// its checkpoint renumbers under a new epoch; the aggregator's delta
// request comes back 410 Gone and it recovers by discarding its
// accumulated view and pulling a full snapshot.
func TestAggregatorFreshRestartFullResync(t *testing.T) {
	b := genBuild(99, 800)
	want := analysisJSON(t, core.Run(inputFromBuild(b)))
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	e1 := newSensorEngine(t, b)
	feedSlice(t, e1, b, certs, 0, len(certs)/2, 0, half)
	e1.Drain()
	sw := &swapExporter{exp: e1}
	srv := newSensorServer(t, sw, SupportedSchemas())
	a := newAgg(t, b, nil, srv.URL)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The replacement lost the checkpoint: it re-tails the whole log
	// under a fresh epoch.
	e2 := newSensorEngine(t, b)
	feedSlice(t, e2, b, certs, 0, len(certs), 0, len(b.Raw.Conns))
	e2.Drain()
	sw.swap(e2)

	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := a.SensorStatuses()[0]
	if s.FullResyncs != 1 {
		t.Errorf("FullResyncs = %d, want 1", s.FullResyncs)
	}
	if s.LastError != "" {
		t.Errorf("recovered sync left LastError = %q", s.LastError)
	}
	if got := analysisJSON(t, a.Analysis()); got != want {
		t.Error("post-410 full re-sync differs from union engine")
	}
}

// TestAggregatorUnreachableSensor: a dead sensor accrues errors and
// backoff while the aggregator keeps serving the last-good merge, with
// the staleness visible per sensor.
func TestAggregatorUnreachableSensor(t *testing.T) {
	b := genBuild(7, 600)
	certs := certList(b)
	half := len(b.Raw.Conns) / 2

	e0, e1 := newSensorEngine(t, b), newSensorEngine(t, b)
	feedSlice(t, e0, b, certs, 0, len(certs)/2, 0, half)
	feedSlice(t, e1, b, certs, len(certs)/2, len(certs), half, len(b.Raw.Conns))
	e0.Drain()
	e1.Drain()
	srv0 := newSensorServer(t, e0, SupportedSchemas())
	srv1 := newSensorServer(t, e1, SupportedSchemas())

	a := newAgg(t, b, nil, srv0.URL, srv1.URL)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := analysisJSON(t, a.Analysis())

	srv1.Close()
	for i := 0; i < 3; i++ {
		if err := a.SyncAll(context.Background()); err == nil {
			t.Fatal("SyncAll against a dead sensor reported success")
		}
	}

	st := a.SensorStatuses()
	if st[0].Errors != 0 || st[0].Syncs != 4 {
		t.Errorf("live sensor disturbed: %+v", st[0])
	}
	if st[1].Errors != 3 || st[1].LastError == "" {
		t.Errorf("dead sensor status: %+v", st[1])
	}
	if st[1].LastSyncAge <= 0 {
		t.Errorf("dead sensor LastSyncAge = %v, want > 0", st[1].LastSyncAge)
	}

	// Last-good state still serves, unchanged.
	if got := analysisJSON(t, a.Analysis()); got != want {
		t.Error("dead sensor changed the served analysis")
	}

	// The Run loop honors the backoff: with the sensor dead and the
	// backoff window open, ticks skip it rather than hammering it.
	a.mu.Lock()
	if a.sensors[1].bo.cur == 0 || a.sensors[1].bo.until.IsZero() {
		t.Errorf("no backoff accrued: %+v", a.sensors[1].bo)
	}
	if a.sensors[1].bo.ready(time.Now()) {
		t.Error("backoff window not open after consecutive failures")
	}
	a.mu.Unlock()
}

// TestAggregatorRunLoop drives the real ticker loop briefly: syncs
// happen without explicit SyncAll calls and stop at cancellation.
func TestAggregatorRunLoop(t *testing.T) {
	b := genBuild(7, 100)
	certs := certList(b)
	e := newSensorEngine(t, b)
	feedSlice(t, e, b, certs, 0, len(certs), 0, len(b.Raw.Conns))
	e.Drain()
	srv := newSensorServer(t, e, SupportedSchemas())

	a, err := NewAggregator(Config{
		Input:    inputFromBuild(b),
		Sensors:  []string{srv.URL},
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()
	// The first sync serializes a full snapshot, which is slow under the
	// race detector — the deadline is generous.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if s := a.SensorStatuses()[0]; s.Syncs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run loop never synced twice")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
	if got := len(a.Analysis().CertStats.Rows); got == 0 {
		t.Error("run-loop aggregation produced an empty analysis")
	}
}

// TestAggregatorNegotiation covers the version handshake: no version
// endpoint falls back to schema v1, a shared schema is picked, and a
// sensor from the future with no overlap is a hard error.
func TestAggregatorNegotiation(t *testing.T) {
	b := genBuild(7, 200)
	certs := certList(b)
	e := newSensorEngine(t, b)
	feedSlice(t, e, b, certs, 0, len(certs), 0, len(b.Raw.Conns))
	e.Drain()

	legacy := newSensorServer(t, e, nil) // no /api/v1/version
	a := newAgg(t, b, nil, legacy.URL)
	if err := a.SyncAll(context.Background()); err != nil {
		t.Fatalf("legacy sensor: %v", err)
	}
	if s := a.SensorStatuses()[0]; s.Schema != SchemaV1 {
		t.Errorf("legacy negotiation picked schema %d, want %d", s.Schema, SchemaV1)
	}

	shared := newSensorServer(t, e, []int{SchemaV1, 999})
	a2 := newAgg(t, b, nil, shared.URL)
	if err := a2.SyncAll(context.Background()); err != nil {
		t.Fatalf("shared-schema sensor: %v", err)
	}

	future := newSensorServer(t, e, []int{999})
	a3 := newAgg(t, b, nil, future.URL)
	err := a3.SyncAll(context.Background())
	if err == nil || !strings.Contains(err.Error(), "no common snapshot schema") {
		t.Errorf("future-only sensor: err = %v, want schema mismatch", err)
	}
}

// TestSensorHandlerErrors pins the snapshot endpoint's HTTP taxonomy.
func TestSensorHandlerErrors(t *testing.T) {
	b := genBuild(7, 200)
	e := newSensorEngine(t, b)
	e.Drain()
	srv := newSensorServer(t, e, SupportedSchemas())

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := get("/api/v1/snapshot?schema=999"); resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("schema=999: status %d, want 406", resp.StatusCode)
	}
	if resp := get("/api/v1/snapshot?since=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("since=nope: status %d, want 400", resp.StatusCode)
	}
	if resp := get("/api/v1/snapshot?since=5&epoch=12345"); resp.StatusCode != http.StatusGone {
		t.Errorf("foreign epoch: status %d, want 410", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/api/v1/snapshot", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}

	// A plain engine without TrackExport cannot serve snapshots at all.
	in := inputFromBuild(b)
	in.Raw = nil
	plain, err := stream.New(stream.Config{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)
	psrv := newSensorServer(t, plain, SupportedSchemas())
	if resp := get2(t, psrv.URL+"/api/v1/snapshot"); resp != http.StatusInternalServerError {
		t.Errorf("untracked engine: status %d, want 500", resp)
	}
}

func get2(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestNewAggregatorValidation pins the config contract.
func TestNewAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(Config{Sensors: []string{"x"}}); err == nil {
		t.Error("nil Input accepted")
	}
	if _, err := NewAggregator(Config{Input: &core.Input{}}); err == nil {
		t.Error("empty sensor list accepted")
	}
	a, err := NewAggregator(Config{Input: &core.Input{}, Sensors: []string{"host:9", "http://h2:9/"}})
	if err != nil {
		t.Fatal(err)
	}
	st := a.SensorStatuses()
	if st[0].URL != "http://host:9" || st[1].URL != "http://h2:9" {
		t.Errorf("URL normalization: %q, %q", st[0].URL, st[1].URL)
	}
}
