// Package distrib makes the sharded engine's merge cross the network:
// a sensor (an mtlsd tailing one vantage point's logs) serializes its
// raw engine state — connections in global sequence order, the
// first-wins certificate roster, raw §3.2 detector evidence — and an
// aggregator pulls N sensors, treats each as one shard, and rebuilds
// the global analysis with exactly the code path the in-process sharded
// engine uses (core.MergeShards + interception.Merge). Verdicts never
// travel: evidence split across sensors must corroborate at the merge
// point, which per-sensor verdicts would lose.
//
// The wire format is versioned and self-describing (a magic string, a
// schema-stamped header, length-prefixed frames), streams in bounded
// batches so a snapshot never has to fit one buffer, and supports
// cursor-based deltas: a snapshot carries the sensor's (epoch, NextSeq)
// cursor, and requesting since=<cursor> returns only records first
// observed at or after it. A sensor restarted without its checkpoint
// renumbers under a fresh epoch and refuses old cursors as stale, which
// the aggregator answers with a full re-sync.
package distrib

import (
	"time"

	"repro/internal/interception"
	"repro/internal/stream"
)

// SchemaV1 is the first snapshot schema: JSON frame payloads carrying
// stream.ExportCert / stream.ExportConn records and raw
// interception.Evidence.
const SchemaV1 = 1

// SupportedSchemas lists the snapshot schema versions this build can
// decode, newest first — the negotiation set /api/v1/version reports.
func SupportedSchemas() []int { return []int{SchemaV1} }

// SchemaSupported reports whether this build can serve or decode the
// given schema version.
func SchemaSupported(v int) bool {
	for _, s := range SupportedSchemas() {
		if s == v {
			return true
		}
	}
	return false
}

// Snapshot is one decoded sensor state: the wire-level form of a
// stream.ExportState, stamped with the schema it traveled under.
// Full snapshots have Since 0; deltas carry the cursor they answer and
// only records at or after it. Evidence is always the sensor's full
// cumulative detector state.
type Snapshot struct {
	Schema int

	Epoch   uint64
	Since   uint64
	NextSeq uint64

	ConnsIngested uint64
	CertsIngested uint64
	Watermark     time.Time

	// Retention is the sensor's connection retention window (zero = keep
	// everything); the aggregator evicts this sensor's accumulated
	// connections against it as the global watermark advances.
	Retention time.Duration

	Certs    []stream.ExportCert
	Conns    []stream.ExportConn
	Evidence *interception.Evidence
}

// FromExport wraps an engine export as a wire snapshot.
func FromExport(st *stream.ExportState) *Snapshot {
	return &Snapshot{
		Schema:        SchemaV1,
		Epoch:         st.Epoch,
		Since:         st.Since,
		NextSeq:       st.NextSeq,
		ConnsIngested: st.ConnsIngested,
		CertsIngested: st.CertsIngested,
		Watermark:     st.Watermark,
		Retention:     st.Retention,
		Certs:         st.Certs,
		Conns:         st.Conns,
		Evidence:      st.Evidence,
	}
}
