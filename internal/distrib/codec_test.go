package distrib

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/workload"
)

func inputFromBuild(b *workload.Build) *core.Input {
	return &core.Input{
		Raw:           b.Raw,
		CT:            b.CT,
		Bundle:        b.Bundle,
		CampusIssuers: b.CampusIssuers,
		Assoc: core.AssocMap{
			HealthSLDs:     b.Assoc.HealthSLDs,
			UniversitySLDs: b.Assoc.UniversitySLDs,
			VPNHostPrefix:  b.Assoc.VPNHostPrefix,
			LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
			ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
			GlobusSLDs:     b.Assoc.GlobusSLDs,
		},
		Plan:   b.Plan,
		Months: b.Months,
	}
}

func genBuild(seed uint64, scale int) *workload.Build {
	cfg := workload.Default()
	cfg.Seed = seed
	cfg.CertScale = scale
	return workload.Generate(cfg)
}

// exportedSnapshot drains a build through an exporting engine and wraps
// the full export.
func exportedSnapshot(t *testing.T, seed uint64, scale int) *Snapshot {
	t.Helper()
	b := genBuild(seed, scale)
	in := inputFromBuild(b)
	in.Raw = nil
	e, err := stream.New(stream.Config{Input: in, TrackExport: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for _, c := range b.Raw.Certs {
		e.IngestCert(&core.CertRecord{TS: c.NotBefore, Cert: c})
	}
	for i := range b.Raw.Conns {
		e.IngestConn(&b.Raw.Conns[i])
	}
	e.Drain()
	st, err := e.Export(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return FromExport(st)
}

func TestCodecRoundTrip(t *testing.T) {
	s := exportedSnapshot(t, 20240504, 600)
	if len(s.Certs) == 0 || len(s.Conns) == 0 || s.Evidence == nil {
		t.Fatal("snapshot is vacuous")
	}

	var b1 bytes.Buffer
	if err := Encode(&b1, s); err != nil {
		t.Fatal(err)
	}
	d1, err := Decode(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Schema != SchemaV1 || d1.Epoch != s.Epoch || d1.NextSeq != s.NextSeq {
		t.Fatalf("header drifted: %+v", d1)
	}
	if len(d1.Certs) != len(s.Certs) || len(d1.Conns) != len(s.Conns) {
		t.Fatalf("record counts drifted: %d/%d certs, %d/%d conns",
			len(d1.Certs), len(s.Certs), len(d1.Conns), len(s.Conns))
	}

	// Canonical form: encode(decode(bytes)) is byte-identical, and a
	// second round trip is a fixed point.
	var b2 bytes.Buffer
	if err := Encode(&b2, d1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("re-encode is not byte-identical")
	}
	d2, err := Decode(bytes.NewReader(b2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Evidence, d2.Evidence) || len(d1.Conns) != len(d2.Conns) {
		t.Fatal("second decode drifted")
	}
}

func TestCodecEmptySnapshot(t *testing.T) {
	s := &Snapshot{Schema: SchemaV1, Epoch: 42, NextSeq: 0, Watermark: time.Time{}.AddDate(0, 0, 1)}
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Certs) != 0 || len(d.Conns) != 0 || d.Epoch != 42 {
		t.Fatalf("empty snapshot drifted: %+v", d)
	}
}

func TestCodecRejects(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, exportedSnapshot(t, 7, 200)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("NOTASNAP"),
		"magic only":       []byte(magic),
		"truncated frame":  valid[:len(valid)-3],
		"no trailer":       valid[:len(valid)/2],
		"garbage payload":  append([]byte(magic), frameHeader, 4, 'a', 'b', 'c', 'd'),
		"oversized length": append([]byte(magic), frameHeader, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"unknown frame":    append([]byte(magic), 'Z', 2, '{', '}'),
	}
	for name, in := range cases {
		if _, err := Decode(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted hostile input", name)
		}
	}

	// A schema from the future is refused with ErrSchema specifically.
	var buf bytes.Buffer
	if err := Encode(&buf, &Snapshot{Schema: 999}); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrSchema) {
		t.Errorf("future schema: err = %v, want ErrSchema", err)
	}
}
