package distrib

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// Exporter is the engine-side surface a sensor serves snapshots from:
// stream.Engine and stream.Sharded both satisfy it (with
// Config.TrackExport set).
type Exporter interface {
	Export(since, epoch uint64) (*stream.ExportState, error)
}

// Sensor serves an exporting engine's state over HTTP: GET /snapshot
// for a full snapshot, GET /snapshot?since=<cursor>&epoch=<epoch> for a
// delta. The response is the framed SchemaV1 stream; a stale cursor is
// 410 Gone (the puller must full-resync), an unsupported schema request
// is 406 Not Acceptable with the supported set in the error body.
type Sensor struct {
	exp    Exporter
	logger *slog.Logger

	served  *metrics.Counter
	deltas  *metrics.Counter
	bytes   *metrics.Counter
	stale   *metrics.Counter
	refused *metrics.Counter
}

// NewSensor wraps an exporting engine. reg and logger may be nil.
func NewSensor(exp Exporter, reg *metrics.Registry, logger *slog.Logger) *Sensor {
	if reg == nil {
		reg = metrics.New()
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Sensor{
		exp:     exp,
		logger:  logger,
		served:  reg.Counter("distrib_snapshots_served_total", "snapshots served", "kind", "full"),
		deltas:  reg.Counter("distrib_snapshots_served_total", "snapshots served", "kind", "delta"),
		bytes:   reg.Counter("distrib_snapshot_bytes_total", "snapshot bytes written to pullers"),
		stale:   reg.Counter("distrib_stale_cursors_total", "delta requests refused as stale (puller must full-resync)"),
		refused: reg.Counter("distrib_schema_refusals_total", "snapshot requests for schemas this build cannot serve"),
	}
}

// apiError mirrors the daemon's JSON error envelope.
type apiError struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

func writeAPIError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: msg, Code: code})
}

// Handler returns the /api/v1/snapshot handler.
func (s *Sensor) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeAPIError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		q := r.URL.Query()
		schema := SchemaV1
		if v := q.Get("schema"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || !SchemaSupported(n) {
				s.refused.Inc()
				writeAPIError(w, http.StatusNotAcceptable,
					"unsupported snapshot schema "+v+"; supported: "+schemaList())
				return
			}
			schema = n
		}
		var since, epoch uint64
		var err error
		if v := q.Get("since"); v != "" {
			if since, err = strconv.ParseUint(v, 10, 64); err != nil {
				writeAPIError(w, http.StatusBadRequest, "bad since cursor")
				return
			}
		}
		if v := q.Get("epoch"); v != "" {
			if epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
				writeAPIError(w, http.StatusBadRequest, "bad epoch")
				return
			}
		}

		st, err := s.exp.Export(since, epoch)
		switch {
		case errors.Is(err, stream.ErrStaleCursor):
			s.stale.Inc()
			writeAPIError(w, http.StatusGone, err.Error())
			return
		case err != nil:
			writeAPIError(w, http.StatusInternalServerError, err.Error())
			return
		}

		snap := FromExport(st)
		snap.Schema = schema
		w.Header().Set("Content-Type", "application/octet-stream")
		if r.Method == http.MethodHead {
			return
		}
		cw := &countingWriter{w: w}
		if err := Encode(cw, snap); err != nil {
			// Headers are gone; all we can do is log and cut the stream
			// short — the framed trailer makes the truncation detectable.
			s.logger.Warn("snapshot encode aborted", "err", err)
			return
		}
		s.bytes.Add(uint64(cw.n))
		if since > 0 {
			s.deltas.Inc()
		} else {
			s.served.Inc()
		}
	}
}

func schemaList() string {
	out := ""
	for i, v := range SupportedSchemas() {
		if i > 0 {
			out += ","
		}
		out += strconv.Itoa(v)
	}
	return out
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
