package distrib

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
)

// The stream layout is strict and therefore canonical: the magic
// string, a header frame, zero or more certificate frames, zero or more
// connection frames, one evidence frame, and a trailer frame carrying
// the record counts (so a truncated stream is detected even when it
// ends on a frame boundary). Each frame is one type byte, a uvarint
// payload length, and a JSON payload. Records travel in bounded batches
// — frameRecords per frame — so encoding streams in O(batch) memory and
// a snapshot larger than any single HTTP buffer flows through cleanly.
const (
	magic = "MTLSSNAP"

	frameHeader   = 'H'
	frameCerts    = 'C'
	frameConns    = 'N'
	frameEvidence = 'E'
	frameTrailer  = 'T'

	// frameRecords is the encoder's records-per-frame batch size.
	frameRecords = 512
	// maxFrame bounds a declared payload length; a hostile length
	// prefix must not make the decoder allocate unbounded memory.
	maxFrame = 64 << 20
)

// ErrSchema marks a snapshot whose schema version this build cannot
// decode; the puller should renegotiate via /api/v1/version.
var ErrSchema = errors.New("distrib: unsupported snapshot schema")

// errCodec prefixes decode failures; hostile bytes yield errors
// wrapping it, never panics.
var errCodec = errors.New("distrib: snapshot decode")

// header is the 'H' frame payload: everything about the snapshot except
// its records. Retention is omitted when zero so snapshots from sensors
// that keep everything encode byte-identically to the pre-retention
// format — the canonical-bytes property the fuzz corpus pins survives
// the field's addition.
type header struct {
	Schema        int
	Epoch         uint64
	Since         uint64
	NextSeq       uint64
	ConnsIngested uint64
	CertsIngested uint64
	Watermark     time.Time
	Retention     time.Duration `json:",omitempty"`
}

// trailer is the 'T' frame payload: total record counts for truncation
// detection.
type trailer struct {
	Certs int
	Conns int
}

// Encode writes s as one framed snapshot stream. The output is
// canonical: encoding the result of Decode reproduces the bytes
// Decode's input would have had under this encoder (JSON map keys are
// sorted, batch boundaries are fixed, and the frame order is strict),
// which is what the fuzz harness pins.
func Encode(w io.Writer, s *Snapshot) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	h := header{
		Schema:        s.Schema,
		Epoch:         s.Epoch,
		Since:         s.Since,
		NextSeq:       s.NextSeq,
		ConnsIngested: s.ConnsIngested,
		CertsIngested: s.CertsIngested,
		Watermark:     s.Watermark,
		Retention:     s.Retention,
	}
	if err := writeFrame(w, frameHeader, h); err != nil {
		return err
	}
	for off := 0; off < len(s.Certs); off += frameRecords {
		end := min(off+frameRecords, len(s.Certs))
		if err := writeFrame(w, frameCerts, s.Certs[off:end]); err != nil {
			return err
		}
	}
	for off := 0; off < len(s.Conns); off += frameRecords {
		end := min(off+frameRecords, len(s.Conns))
		if err := writeFrame(w, frameConns, s.Conns[off:end]); err != nil {
			return err
		}
	}
	if err := writeFrame(w, frameEvidence, s.Evidence); err != nil {
		return err
	}
	return writeFrame(w, frameTrailer, trailer{Certs: len(s.Certs), Conns: len(s.Conns)})
}

func writeFrame(w io.Writer, typ byte, payload any) error {
	buf, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("distrib: snapshot encode: %w", err)
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(buf)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Decode reads one framed snapshot stream, validating as it goes:
// unknown frame types, out-of-order frames, oversized or truncated
// payloads, malformed JSON, schema versions this build does not speak,
// non-positive connection weights, unkeyed certificates, sequence-order
// violations, record counts disagreeing with the trailer, and time
// values JSON cannot re-encode are all errors — never panics. A decoded
// snapshot therefore always re-encodes cleanly and is safe to hand to
// the merge path.
func Decode(r io.Reader) (*Snapshot, error) {
	br := &byteReader{r: r}
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", errCodec, err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", errCodec, m)
	}

	s := &Snapshot{}
	var tr *trailer
	seenHeader, seenEvidence := false, false
	// stage enforces the strict frame order: each frame type may only
	// appear at or after its stage, and record frames may not follow
	// the evidence frame.
	stage := 0 // 0=header 1=certs 2=conns 3=evidence 4=trailer
	for tr == nil {
		typ, payload, err := readFrame(br)
		if err != nil {
			return nil, err
		}
		switch typ {
		case frameHeader:
			if stage > 0 {
				return nil, fmt.Errorf("%w: duplicate header frame", errCodec)
			}
			var h header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("%w: header: %v", errCodec, err)
			}
			if !SchemaSupported(h.Schema) {
				return nil, fmt.Errorf("%w: schema %d", ErrSchema, h.Schema)
			}
			if !jsonSafeTime(h.Watermark) {
				return nil, fmt.Errorf("%w: watermark year out of range", errCodec)
			}
			if h.Retention < 0 {
				return nil, fmt.Errorf("%w: negative retention", errCodec)
			}
			s.Schema = h.Schema
			s.Epoch, s.Since, s.NextSeq = h.Epoch, h.Since, h.NextSeq
			s.ConnsIngested, s.CertsIngested = h.ConnsIngested, h.CertsIngested
			s.Watermark = h.Watermark
			s.Retention = h.Retention
			seenHeader = true
			stage = 1
		case frameCerts:
			if !seenHeader || stage > 1 {
				return nil, fmt.Errorf("%w: certificate frame out of order", errCodec)
			}
			var batch []stream.ExportCert
			if err := json.Unmarshal(payload, &batch); err != nil {
				return nil, fmt.Errorf("%w: certs: %v", errCodec, err)
			}
			for i := range batch {
				c := batch[i].Cert
				if c == nil || c.Fingerprint == "" {
					return nil, fmt.Errorf("%w: unkeyed certificate", errCodec)
				}
				if !jsonSafeTime(c.NotBefore) || !jsonSafeTime(c.NotAfter) {
					return nil, fmt.Errorf("%w: certificate date year out of range", errCodec)
				}
				if n := len(s.Certs); n > 0 {
					prev := s.Certs[n-1]
					if batch[i].Seq < prev.Seq ||
						(batch[i].Seq == prev.Seq && c.Fingerprint <= prev.Cert.Fingerprint) {
						return nil, fmt.Errorf("%w: certificate order violation at %d", errCodec, n)
					}
				}
				s.Certs = append(s.Certs, batch[i])
			}
		case frameConns:
			if !seenHeader || stage > 2 {
				return nil, fmt.Errorf("%w: connection frame out of order", errCodec)
			}
			stage = 2
			var batch []stream.ExportConn
			if err := json.Unmarshal(payload, &batch); err != nil {
				return nil, fmt.Errorf("%w: conns: %v", errCodec, err)
			}
			for i := range batch {
				if batch[i].Conn.Weight < 1 {
					return nil, fmt.Errorf("%w: connection weight below 1", errCodec)
				}
				if !jsonSafeTime(batch[i].Conn.TS) {
					return nil, fmt.Errorf("%w: connection timestamp year out of range", errCodec)
				}
				if n := len(s.Conns); n > 0 && batch[i].Seq <= s.Conns[n-1].Seq {
					return nil, fmt.Errorf("%w: connection sequence not ascending at %d", errCodec, n)
				}
				s.Conns = append(s.Conns, batch[i])
			}
		case frameEvidence:
			if !seenHeader || seenEvidence {
				return nil, fmt.Errorf("%w: evidence frame out of order", errCodec)
			}
			if err := json.Unmarshal(payload, &s.Evidence); err != nil {
				return nil, fmt.Errorf("%w: evidence: %v", errCodec, err)
			}
			if s.Evidence != nil && s.Evidence.Pending < 0 {
				return nil, fmt.Errorf("%w: negative pending count", errCodec)
			}
			seenEvidence = true
			stage = 3
		case frameTrailer:
			if !seenEvidence {
				return nil, fmt.Errorf("%w: trailer before evidence", errCodec)
			}
			tr = &trailer{}
			if err := json.Unmarshal(payload, tr); err != nil {
				return nil, fmt.Errorf("%w: trailer: %v", errCodec, err)
			}
		default:
			return nil, fmt.Errorf("%w: unknown frame type %q", errCodec, typ)
		}
	}
	if tr.Certs != len(s.Certs) || tr.Conns != len(s.Conns) {
		return nil, fmt.Errorf("%w: trailer counts %d/%d, stream carried %d/%d",
			errCodec, tr.Certs, tr.Conns, len(s.Certs), len(s.Conns))
	}
	return s, nil
}

func readFrame(br *byteReader) (byte, []byte, error) {
	typ, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: frame type: %v", errCodec, err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: frame length: %v", errCodec, err)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d exceeds %d", errCodec, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", errCodec, err)
	}
	return typ, payload, nil
}

// jsonSafeTime reports whether t survives a JSON round trip: Go's
// time.Time.MarshalJSON refuses years outside [1, 9999], so a decoded
// snapshot carrying one could never be re-encoded.
func jsonSafeTime(t time.Time) bool {
	y := t.Year()
	return y >= 1 && y <= 9999
}

// byteReader adapts an io.Reader for binary.ReadUvarint without
// buffering past frame boundaries.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}
