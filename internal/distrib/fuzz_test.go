package distrib

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interception"
	"repro/internal/stream"
)

// tinySnapshot is a small deterministic snapshot (no clock reads) used
// to seed the fuzzer with a structurally valid stream.
func tinySnapshot() *Snapshot {
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	cert := &certmodel.CertInfo{
		Fingerprint: "fp1", SerialHex: "0A", Version: 3,
		IssuerOrg: "Issuer", SubjectCN: "host.example",
		NotBefore: ts, NotAfter: ts.AddDate(1, 0, 0),
	}
	return &Snapshot{
		Schema: SchemaV1, Epoch: 7, NextSeq: 2, ConnsIngested: 1, CertsIngested: 1,
		Watermark: ts,
		Certs:     []stream.ExportCert{{Seq: 0, Cert: cert}},
		Conns: []stream.ExportConn{{Seq: 1, Conn: core.ConnRecord{
			TS: ts, UID: "C1", SNI: "host.example", Established: true,
			ServerChain: []ids.Fingerprint{"fp1"}, Weight: 3,
		}}},
		Evidence: &interception.Evidence{
			Observed:     map[string]map[ids.Fingerprint]bool{"Issuer": {"fp1": true}},
			Contradicted: map[string]map[string]bool{"Issuer": {"example.com": true}},
		},
	}
}

// FuzzSnapshotDecode pins the codec's two hard properties: hostile
// bytes never panic the decoder, and any stream the decoder accepts
// re-encodes to a canonical fixed point — encode(decode(x)) decodes to
// the same snapshot and re-encodes byte-identically.
func FuzzSnapshotDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, tinySnapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("NOTASNAP"))
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	f.Add(append([]byte(magic), frameHeader, 2, '{', '}'))
	f.Add(append([]byte(magic), 'Z', 0))
	f.Add(bytes.Replace(valid.Bytes(), []byte(`"Weight":3`), []byte(`"Weight":0`), 1))
	f.Add(bytes.Replace(valid.Bytes(), []byte(`"Schema":1`), []byte(`"Schema":9`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := Encode(&b1, s); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		s2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		var b2 bytes.Buffer
		if err := Encode(&b2, s2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("encode(decode(encode(decode(x)))) is not byte-identical")
		}
	})
}
