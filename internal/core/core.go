package core
