package core

// Analysis is the full result set: one field per reproduced table/figure.
type Analysis struct {
	Preprocess *PreprocessReport

	CertStats    *CertStatsReport    // Table 1
	Prevalence   *PrevalenceReport   // Figure 1
	Services     *ServicesReport     // Table 2
	Inbound      *InboundReport      // Table 3
	Outbound     *OutboundReport     // Figure 2
	DummyIssuers *DummyIssuerReport  // Table 4 + Table 10
	Serials      *SerialReport       // §5.1.2
	SharingSame  *SharingSameReport  // Table 5
	SharingCross *SharingCrossReport // Table 6
	BadDates     *BadDatesReport     // Figure 3, Tables 11–12
	Validity     *ValidityReport     // Figure 4
	Expired      *ExpiredReport      // Figure 5
	Utilization  *UtilizationReport  // Table 7
	Contents     *ContentsReport     // Table 8
	Unidentified *UnidentifiedReport // Table 9
	SharedInfo   *SharedInfoReport   // Table 13
	NonMutual    *NonMutualReport    // Table 14
	Concerns     *ConcernsReport     // §5 takeaway
	SANTypes     *SANTypesReport     // §6.1.2
	Durations    *DurationReport     // §5 duration-of-activity lens
	Versions     *VersionReport      // §3.3
}

// Run executes the whole pipeline.
func Run(in *Input) *Analysis {
	p := NewPipeline(in)
	return &Analysis{
		Preprocess:   p.PreprocessReport(),
		CertStats:    p.CertStats(),
		Prevalence:   p.Prevalence(),
		Services:     p.Services(),
		Inbound:      p.Inbound(),
		Outbound:     p.Outbound(),
		DummyIssuers: p.DummyIssuers(),
		Serials:      p.Serials(),
		SharingSame:  p.SharingSame(),
		SharingCross: p.SharingCross(),
		BadDates:     p.BadDates(),
		Validity:     p.Validity(),
		Expired:      p.Expired(),
		Utilization:  p.Utilization(),
		Contents:     p.Contents(),
		Unidentified: p.Unidentified(),
		SharedInfo:   p.SharedInfo(),
		NonMutual:    p.NonMutual(),
		Concerns:     p.Concerns(),
		SANTypes:     p.SANTypes(),
		Durations:    p.Durations(),
		Versions:     p.Versions(),
	}
}
