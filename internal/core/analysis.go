package core

// Analysis is the full result set: one field per reproduced table/figure.
type Analysis struct {
	Preprocess *PreprocessReport

	CertStats    *CertStatsReport    // Table 1
	Prevalence   *PrevalenceReport   // Figure 1
	Services     *ServicesReport     // Table 2
	Inbound      *InboundReport      // Table 3
	Outbound     *OutboundReport     // Figure 2
	DummyIssuers *DummyIssuerReport  // Table 4 + Table 10
	Serials      *SerialReport       // §5.1.2
	SharingSame  *SharingSameReport  // Table 5
	SharingCross *SharingCrossReport // Table 6
	BadDates     *BadDatesReport     // Figure 3, Tables 11–12
	Validity     *ValidityReport     // Figure 4
	Expired      *ExpiredReport      // Figure 5
	Utilization  *UtilizationReport  // Table 7
	Contents     *ContentsReport     // Table 8
	Unidentified *UnidentifiedReport // Table 9
	SharedInfo   *SharedInfoReport   // Table 13
	NonMutual    *NonMutualReport    // Table 14
	Concerns     *ConcernsReport     // §5 takeaway
	SANTypes     *SANTypesReport     // §6.1.2
	Durations    *DurationReport     // §5 duration-of-activity lens
	Versions     *VersionReport      // §3.3
	Fingerprints *FingerprintReport  // ClientHello fingerprint prevalence
}

// Run executes the whole pipeline with the concurrency requested by
// in.Workers.
func Run(in *Input) *Analysis { return NewPipeline(in).RunAll() }

// RunAll executes every analysis over the preprocessed state. The
// table/figure computations are independent and only read the shared
// enriched views, so they fan out across the pipeline's worker pool;
// with one worker they run in the legacy sequential order. Either way
// the resulting Analysis is identical.
func (p *Pipeline) RunAll() *Analysis {
	a := &Analysis{Preprocess: p.PreprocessReport()}
	runTasks(p.workers, []func(){
		func() { a.CertStats = p.CertStats() },
		func() { a.Prevalence = p.Prevalence() },
		func() { a.Services = p.Services() },
		func() { a.Inbound = p.Inbound() },
		func() { a.Outbound = p.Outbound() },
		func() { a.DummyIssuers = p.DummyIssuers() },
		func() { a.Serials = p.Serials() },
		func() { a.SharingSame = p.SharingSame() },
		func() { a.SharingCross = p.SharingCross() },
		func() { a.BadDates = p.BadDates() },
		func() { a.Validity = p.Validity() },
		func() { a.Expired = p.Expired() },
		func() { a.Utilization = p.Utilization() },
		func() { a.Contents = p.Contents() },
		func() { a.Unidentified = p.Unidentified() },
		func() { a.SharedInfo = p.SharedInfo() },
		func() { a.NonMutual = p.NonMutual() },
		func() { a.Concerns = p.Concerns() },
		func() { a.SANTypes = p.SANTypes() },
		func() { a.Durations = p.Durations() },
		func() { a.Versions = p.Versions() },
		func() { a.Fingerprints = p.Fingerprints() },
	})
	return a
}
