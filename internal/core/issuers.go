package core

import (
	"sort"

	"repro/internal/classify"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/truststore"
)

// InboundReport is Table 3: per server association, the share of inbound
// mutual-TLS connections and clients, with the dominant client-certificate
// issuer categories.
type InboundReport struct {
	Rows []InboundRow
	// TotalConns / TotalClients are the denominators.
	TotalConns   int64
	TotalClients int
}

// InboundRow is one association.
type InboundRow struct {
	Association string
	ConnShare   float64
	ClientShare float64
	// Primary/Secondary issuer categories by client share.
	Primary        string
	PrimaryShare   float64
	Secondary      string
	SecondaryShare float64
}

// Row returns the named association row.
func (r *InboundReport) Row(assoc string) InboundRow {
	for _, row := range r.Rows {
		if row.Association == assoc {
			return row
		}
	}
	return InboundRow{Association: assoc}
}

func (e *enriched) inbound() *InboundReport {
	connW := stats.NewCounter()
	// association -> set of client IPs; association -> category -> client IPs.
	clients := map[string]map[string]bool{}
	catClients := map[string]map[string]map[string]bool{}
	allClients := map[string]bool{}

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || cv.dir != netsim.Inbound {
			continue
		}
		connW.Add(cv.assoc, cv.rec.Weight)
		ip := cv.rec.OrigIP
		allClients[ip] = true
		if clients[cv.assoc] == nil {
			clients[cv.assoc] = map[string]bool{}
			catClients[cv.assoc] = map[string]map[string]bool{}
		}
		clients[cv.assoc][ip] = true
		if cv.clientCert != nil {
			cat := e.usageOf(cv.clientCert, cv.rec.ClientChain).category.String()
			if catClients[cv.assoc][cat] == nil {
				catClients[cv.assoc][cat] = map[string]bool{}
			}
			catClients[cv.assoc][cat][ip] = true
		}
	}

	rep := &InboundReport{TotalConns: connW.Total(), TotalClients: len(allClients)}
	for _, assoc := range []string{
		AssocHealth, AssocUniversity, AssocVPN, AssocLocalOrg,
		AssocThirdParty, AssocGlobus, AssocUnknown,
	} {
		row := InboundRow{Association: assoc}
		row.ConnShare = connW.Share(assoc)
		if len(allClients) > 0 {
			row.ClientShare = float64(len(clients[assoc])) / float64(len(allClients))
		}
		// Rank issuer categories by per-association client count.
		type catCount struct {
			cat string
			n   int
		}
		var cats []catCount
		for cat, set := range catClients[assoc] {
			cats = append(cats, catCount{cat, len(set)})
		}
		sort.Slice(cats, func(i, j int) bool {
			if cats[i].n != cats[j].n {
				return cats[i].n > cats[j].n
			}
			return cats[i].cat < cats[j].cat
		})
		denom := float64(len(clients[assoc]))
		if len(cats) > 0 && denom > 0 {
			row.Primary = cats[0].cat
			row.PrimaryShare = float64(cats[0].n) / denom
		}
		if len(cats) > 1 && denom > 0 {
			row.Secondary = cats[1].cat
			row.SecondaryShare = float64(cats[1].n) / denom
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// OutboundReport is Figure 2: outbound mutual-TLS flows from server-cert
// class through server TLD to client issuer category, plus the headline
// aggregate findings of §4.2.2.
type OutboundReport struct {
	// TLDShares: connection share per server TLD.
	TLDShares []stats.KV
	// SLDShares: top server SLDs (amazonaws.com 28.51%, …).
	SLDShares []stats.KV
	// Flows: (server class, TLD, client category) -> conn weight.
	Flows []FlowCell
	// MissingIssuerShare: share of outbound mTLS connections whose client
	// certificate lacks a valid issuer (paper: 37.84%).
	MissingIssuerShare float64
	// PublicServerMissingClientShare: among connections with public-CA
	// server certs, the share with missing-issuer client certs (45.71%).
	PublicServerMissingClientShare float64
	// TotalConns is the outbound mTLS weight.
	TotalConns int64
}

// FlowCell is one Sankey link.
type FlowCell struct {
	ServerClass    string
	TLD            string
	ClientCategory string
	Weight         int64
}

func (e *enriched) outbound() *OutboundReport {
	tlds := stats.NewCounter()
	slds := stats.NewCounter()
	flows := map[[3]string]int64{}
	var total, missing, pubSrv, pubSrvMissing int64

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || cv.dir != netsim.Outbound {
			continue
		}
		w := cv.rec.Weight
		total += w
		tld := cv.tld
		if tld == "" {
			tld = "(missing)"
		}
		tlds.Add(tld, w)
		if cv.sld != "" {
			slds.Add(cv.sld, w)
		}
		srvClass := "private"
		if cv.serverCert != nil &&
			e.usageOf(cv.serverCert, cv.rec.ServerChain).class == truststore.Public {
			srvClass = "public"
		}
		cliCat := classify.MissingIssuer.String()
		isMissing := true
		if cv.clientCert != nil {
			cat := e.usageOf(cv.clientCert, cv.rec.ClientChain).category
			cliCat = cat.String()
			isMissing = cat == classify.MissingIssuer
		}
		if isMissing {
			missing += w
		}
		if srvClass == "public" {
			pubSrv += w
			if isMissing {
				pubSrvMissing += w
			}
		}
		flows[[3]string{srvClass, tld, cliCat}] += w
	}

	rep := &OutboundReport{
		TLDShares:  tlds.Top(8),
		SLDShares:  slds.Top(8),
		TotalConns: total,
	}
	if total > 0 {
		rep.MissingIssuerShare = float64(missing) / float64(total)
	}
	if pubSrv > 0 {
		rep.PublicServerMissingClientShare = float64(pubSrvMissing) / float64(pubSrv)
	}
	for k, w := range flows {
		rep.Flows = append(rep.Flows, FlowCell{
			ServerClass: k[0], TLD: k[1], ClientCategory: k[2], Weight: w,
		})
	}
	sort.Slice(rep.Flows, func(i, j int) bool {
		if rep.Flows[i].Weight != rep.Flows[j].Weight {
			return rep.Flows[i].Weight > rep.Flows[j].Weight
		}
		a, b := rep.Flows[i], rep.Flows[j]
		return a.ServerClass+a.TLD+a.ClientCategory < b.ServerClass+b.TLD+b.ClientCategory
	})
	return rep
}

// SLDShare returns an SLD's share of outbound mTLS connections.
func (r *OutboundReport) SLDShare(sld string) float64 {
	if r.TotalConns == 0 {
		return 0
	}
	for _, kv := range r.SLDShares {
		if kv.Key == sld {
			return float64(kv.Count) / float64(r.TotalConns)
		}
	}
	return 0
}
