package core

import (
	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/zeek"
)

// ConnRecord is the connection event the analyses consume — one ssl.log
// row. The streaming engine ingests these one at a time; the batch path
// reads them from a Dataset. They are the same type so both paths feed
// identical data through identical code.
type ConnRecord = zeek.SSLRecord

// CertRecord is the certificate event — one x509.log row.
type CertRecord = zeek.X509Record

// Builder constructs the enriched analysis state incrementally, one
// connection at a time, using the exact enricher the batch serial path
// runs (enrichSerial). It is the core of the streaming engine: the engine
// decides which records are admitted (interception filtering, windowing)
// and the Builder turns the admitted sequence into the same state
// NewPipeline would produce for an equivalent filtered dataset.
//
// The caller owns ordering: feeding the same certificates and the same
// connections in the same order as a batch run yields a deeply equal
// Analysis, because certificate classification is first-observation-wins
// exactly as on the serial path.
type Builder struct {
	e *enriched
	w *enricher
}

// NewBuilder returns an empty Builder for the input's analysis context
// (trust bundle, CT log, association map, netsim plan). in.Raw is ignored
// — the Builder accumulates its own dataset from AddCert/AddConn.
func NewBuilder(in *Input) *Builder {
	e := newEnriched(in)
	e.ds = zeek.NewDataset()
	return &Builder{e: e, w: e.newEnricher(in.Assoc.index())}
}

// AddCert registers a certificate for chain resolution. First observation
// of a fingerprint wins, matching zeek.Dataset.AddCert.
func (b *Builder) AddCert(c *certmodel.CertInfo) { b.e.ds.AddCert(c) }

// HasCert reports whether a fingerprint is already resolvable.
func (b *Builder) HasCert(fp ids.Fingerprint) bool { return b.e.ds.Cert(fp) != nil }

// AddConn enriches one connection and appends it to the analysis state.
// The record pointer is retained by the enriched view; callers must not
// mutate it afterwards.
func (b *Builder) AddConn(rec *ConnRecord) {
	b.e.conns = append(b.e.conns, b.w.enrich(rec))
}

// Conns reports how many connections have been added.
func (b *Builder) Conns() int { return len(b.e.conns) }

// GrowConns reserves capacity for n further AddConn calls, at least
// doubling the view slice when it must reallocate. Batch callers invoke
// it once per batch so the per-record appends never resize mid-batch;
// the default append growth on the multi-megabyte view slice otherwise
// dominates the ingest path's allocated bytes.
func (b *Builder) GrowConns(n int) {
	if cap(b.e.conns)-len(b.e.conns) >= n {
		return
	}
	c := 2 * cap(b.e.conns)
	if c < len(b.e.conns)+n {
		c = len(b.e.conns) + n
	}
	ns := make([]connView, len(b.e.conns), c)
	copy(ns, b.e.conns)
	b.e.conns = ns
}

// Pipeline materializes the current state as an analysis pipeline. pre
// carries the §3.2 preprocessing statistics the caller tracked (the
// streaming engine runs interception filtering itself); its TLS 1.3
// opacity share is derived here from the accumulated connection weights,
// as on the batch path. Pipeline may be called repeatedly as more records
// arrive; the analyses only read the state, so an Analysis materialized
// mid-stream is a consistent snapshot of everything added so far.
func (b *Builder) Pipeline(pre *PreprocessReport) *Pipeline {
	b.e.usage = b.w.usage
	b.e.pre = pre
	b.e.finishWeights(b.w.tls13W, b.w.totalW)
	return &Pipeline{e: b.e, workers: workerCount(b.e.input.Workers)}
}
