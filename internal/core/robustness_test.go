package core

import (
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// minimalInput builds an Input around a hand-made dataset.
func minimalInput(ds *zeek.Dataset) *Input {
	return &Input{
		Raw:    ds,
		CT:     ct.NewLog(),
		Bundle: truststore.DefaultBundle(),
		Assoc:  AssocMap{UniversitySLDs: []string{"virginia.edu"}},
		Plan:   netsim.DefaultPlan(),
		Months: 23,
	}
}

func mkTestCert(serial, issuer, cn string) *certmodel.CertInfo {
	c := &certmodel.CertInfo{
		SerialHex: serial, Version: 3, IssuerOrg: issuer, SubjectCN: cn,
		NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	c.Fingerprint = certmodel.SyntheticFingerprint(c, cn)
	return c
}

// The pipeline must tolerate connections whose chain fingerprints have no
// x509 row — truncated captures produce exactly this.
func TestPipelineMissingCertRows(t *testing.T) {
	ds := zeek.NewDataset()
	known := mkTestCert("01", "Known CA", "known-client")
	ds.AddCert(known)
	ds.Conns = append(ds.Conns,
		zeek.SSLRecord{
			TS: certmodel.DayToTime(10), UID: "C1", OrigIP: "8.8.8.8",
			RespIP: "128.143.1.1", RespPort: 443, Version: "TLSv12",
			SNI: "www.virginia.edu", Established: true,
			ServerChain: []ids.Fingerprint{"deadbeef-no-such-cert"},
			ClientChain: []ids.Fingerprint{known.Fingerprint},
			Weight:      5,
		},
		zeek.SSLRecord{
			TS: certmodel.DayToTime(11), UID: "C2", OrigIP: "8.8.4.4",
			RespIP: "128.143.1.2", RespPort: 443, Version: "TLSv12",
			SNI: "", Established: true,
			ServerChain: []ids.Fingerprint{"gone1"},
			ClientChain: []ids.Fingerprint{"gone2"},
			Weight:      3,
		},
	)
	a := Run(minimalInput(ds))
	if a.CertStats.Row("Total").Total != 1 {
		t.Fatalf("cert stats counted phantom certs: %+v", a.CertStats.Rows)
	}
	// The known client cert is still mutual (the conn had both chains).
	if a.CertStats.Row("Client").Mutual != 1 {
		t.Fatalf("known client cert lost: %+v", a.CertStats.Row("Client"))
	}
}

// An empty dataset must produce a complete, zero-valued analysis.
func TestPipelineEmptyDataset(t *testing.T) {
	a := Run(minimalInput(zeek.NewDataset()))
	if a.CertStats.Row("Total").Total != 0 {
		t.Fatal("phantom certs")
	}
	if len(a.Prevalence.Overall) != 0 {
		t.Fatal("phantom months")
	}
	if a.Concerns.MutualTotal != 0 || a.Concerns.AffectedShare() != 0 {
		t.Fatal("phantom concerns")
	}
	if a.Validity.MaxValidityDays != 0 {
		t.Fatal("phantom validity")
	}
	if len(a.SharingSame.Rows) != 0 || a.SharingCross.Certs != 0 {
		t.Fatal("phantom sharing")
	}
}

// Non-established connections must be excluded from the mutual analyses
// (the paper analyzes established connections only).
func TestPipelineIgnoresFailedHandshakes(t *testing.T) {
	ds := zeek.NewDataset()
	cli := mkTestCert("02", "CA", "cli")
	srv := mkTestCert("03", "CA", "srv")
	ds.AddCert(cli)
	ds.AddCert(srv)
	ds.Conns = append(ds.Conns, zeek.SSLRecord{
		TS: certmodel.DayToTime(5), UID: "C1", OrigIP: "8.8.8.8",
		RespIP: "128.143.1.1", RespPort: 443, Version: "TLSv12",
		Established: false, // failed
		ServerChain: []ids.Fingerprint{srv.Fingerprint},
		ClientChain: []ids.Fingerprint{cli.Fingerprint},
		Weight:      100,
	})
	a := Run(minimalInput(ds))
	if a.CertStats.Row("Client").Mutual != 0 {
		t.Fatal("failed handshake counted as mutual")
	}
	if a.Concerns.MutualTotal != 0 {
		t.Fatal("failed handshake weighted into concerns")
	}
}

// Conn timestamps outside the study window must not corrupt month series.
func TestPipelineOutOfWindowTimestamps(t *testing.T) {
	ds := zeek.NewDataset()
	cli := mkTestCert("04", "CA", "c")
	srv := mkTestCert("05", "CA", "s")
	ds.AddCert(cli)
	ds.AddCert(srv)
	for _, ts := range []time.Time{
		time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC), // before study
		time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC), // after study
	} {
		ds.Conns = append(ds.Conns, zeek.SSLRecord{
			TS: ts, UID: ids.UID("C" + ts.Format("06")), OrigIP: "8.8.8.8",
			RespIP: "128.143.1.1", RespPort: 443, Version: "TLSv12",
			Established: true,
			ServerChain: []ids.Fingerprint{srv.Fingerprint},
			ClientChain: []ids.Fingerprint{cli.Fingerprint},
			Weight:      1,
		})
	}
	a := Run(minimalInput(ds))
	// The month series keys by actual month; out-of-window rows appear
	// under their own months rather than corrupting 2022-05..2024-03.
	for _, p := range a.Prevalence.Overall {
		if p.Den <= 0 {
			t.Fatalf("corrupt month point: %+v", p)
		}
	}
}

// Zero/negative weights must never push totals negative.
func TestPipelineWeightFloor(t *testing.T) {
	ds := zeek.NewDataset()
	cli := mkTestCert("06", "CA", "c2")
	srv := mkTestCert("07", "CA", "s2")
	ds.AddCert(cli)
	ds.AddCert(srv)
	ds.Conns = append(ds.Conns, zeek.SSLRecord{
		TS: certmodel.DayToTime(5), UID: "Cw", OrigIP: "8.8.8.8",
		RespIP: "128.143.1.1", RespPort: 443, Version: "TLSv12",
		Established: true,
		ServerChain: []ids.Fingerprint{srv.Fingerprint},
		ClientChain: []ids.Fingerprint{cli.Fingerprint},
		Weight:      0,
	})
	a := Run(minimalInput(ds))
	if a.Concerns.MutualTotal < 0 {
		t.Fatal("negative totals")
	}
}
