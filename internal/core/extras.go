package core

import (
	"repro/internal/stats"
)

// SANTypesReport quantifies §6.1.2's observation about the explicit SAN
// value types: "99% of both IP address and URI types, as well as 99% of
// email address types, are left empty", while SAN DNS is the populated —
// and abused — type.
type SANTypesReport struct {
	// Total certificates considered (mutual TLS).
	Total int
	// Non-empty counts per SAN type.
	DNS, IP, Email, URI int
}

// EmptyShare returns the share of certificates leaving a type empty.
func (r *SANTypesReport) EmptyShare(nonEmpty int) float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - float64(nonEmpty)/float64(r.Total)
}

func (e *enriched) sanTypes() *SANTypesReport {
	rep := &SANTypesReport{}
	for _, u := range e.usage {
		if !u.mutualServer && !u.mutualClient {
			continue
		}
		rep.Total++
		c := u.cert
		if len(c.SANDNS) > 0 {
			rep.DNS++
		}
		if len(c.SANIP) > 0 {
			rep.IP++
		}
		if len(c.SANEmail) > 0 {
			rep.Email++
		}
		if len(c.SANURI) > 0 {
			rep.URI++
		}
	}
	return rep
}

// DurationReport is the §5 "duration of activity" lens applied to the
// whole certificate population: how long certificates stay in use, split
// by role. The long-lived tail is what makes the §5.3.3 expired-cert
// finding persistent rather than transient.
type DurationReport struct {
	// Histograms over activity days: ≤1, ≤7, ≤30, ≤90, ≤365, ≤700, >700.
	Server *stats.Histogram
	Client *stats.Histogram
	// Quantiles (50/90/99/100) of client-cert activity duration.
	ClientQuantiles [4]int64
}

var durationBounds = []int64{1, 7, 30, 90, 365, 700}

func (e *enriched) durations() *DurationReport {
	rep := &DurationReport{
		Server: stats.NewHistogram(durationBounds...),
		Client: stats.NewHistogram(durationBounds...),
	}
	var clientDur []int64
	for _, u := range e.usage {
		d := u.durationDays()
		if u.mutualServer {
			rep.Server.Observe(d, 1)
		}
		if u.mutualClient {
			rep.Client.Observe(d, 1)
			clientDur = append(clientDur, d)
		}
	}
	q := stats.Quantiles(clientDur, 0.50, 0.90, 0.99, 1.0)
	copy(rep.ClientQuantiles[:], q)
	return rep
}

// VersionReport is the §3.3 protocol-version mix: TLS 1.3's share is the
// measurement's blind spot, since its certificates are encrypted.
type VersionReport struct {
	// Shares by version string, connection-weighted.
	Shares []stats.KV
	Total  int64
}

// Share returns one version's connection share.
func (r *VersionReport) Share(version string) float64 {
	if r.Total == 0 {
		return 0
	}
	for _, kv := range r.Shares {
		if kv.Key == version {
			return float64(kv.Count) / float64(r.Total)
		}
	}
	return 0
}

func (e *enriched) versions() *VersionReport {
	c := stats.NewCounter()
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.rec.Established {
			continue
		}
		c.Add(cv.rec.Version, cv.rec.Weight)
	}
	return &VersionReport{Shares: c.Top(0), Total: c.Total()}
}
