package core

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// ServicesReport is Table 2: prominent server ports with and without
// mutual TLS, split by direction.
type ServicesReport struct {
	MutualInbound     []ServiceRow
	MutualOutbound    []ServiceRow
	NonMutualInbound  []ServiceRow
	NonMutualOutbound []ServiceRow
}

// ServiceRow is one Table 2 cell group.
type ServiceRow struct {
	PortLabel string
	Share     float64
	Service   string
}

// serviceNames maps ports to the service labels the paper uses.
var serviceNames = map[string]string{
	"443":         "HTTPS",
	"8443":        "HTTPS",
	"20017":       "Corp. - FileWave",
	"636":         "LDAPS",
	"50000-51000": "Corp. - Globus",
	"9093":        "Corp. - Outset Medical",
	"8883":        "MQTT over TLS",
	"25":          "SMTP",
	"465":         "SMTPS",
	"993":         "IMAPS",
	"9997":        "Corp. - Splunk",
	"3128":        "Corp. - Miscellaneous",
	"33854":       "Corp. - DvTel",
	"52730":       "Univ. - Unknown",
}

// portLabel buckets the Globus ephemeral range the way the paper does.
func portLabel(port uint16) string {
	if port >= 50000 && port <= 51000 {
		return "50000-51000"
	}
	return fmt.Sprintf("%d", port)
}

// ServiceName resolves a port label to its service name.
func ServiceName(label string) string {
	if s, ok := serviceNames[label]; ok {
		return s
	}
	return "Unknown"
}

func (e *enriched) services() *ServicesReport {
	mi, mo := stats.NewCounter(), stats.NewCounter()
	ni, no := stats.NewCounter(), stats.NewCounter()
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.rec.Established {
			continue
		}
		label := portLabel(cv.rec.RespPort)
		switch {
		case cv.mutual && cv.dir == netsim.Inbound:
			mi.Add(label, cv.rec.Weight)
		case cv.mutual && cv.dir == netsim.Outbound:
			mo.Add(label, cv.rec.Weight)
		case !cv.mutual && cv.dir == netsim.Inbound:
			ni.Add(label, cv.rec.Weight)
		case !cv.mutual && cv.dir == netsim.Outbound:
			no.Add(label, cv.rec.Weight)
		}
	}
	top := func(c *stats.Counter) []ServiceRow {
		var rows []ServiceRow
		for _, kv := range c.Top(5) {
			rows = append(rows, ServiceRow{
				PortLabel: kv.Key,
				Share:     c.Share(kv.Key),
				Service:   ServiceName(kv.Key),
			})
		}
		return rows
	}
	return &ServicesReport{
		MutualInbound:     top(mi),
		MutualOutbound:    top(mo),
		NonMutualInbound:  top(ni),
		NonMutualOutbound: top(no),
	}
}

// Find returns the row for a port label ("" service when absent).
func Find(rows []ServiceRow, label string) (ServiceRow, bool) {
	for _, r := range rows {
		if r.PortLabel == label {
			return r, true
		}
	}
	return ServiceRow{}, false
}
