package core

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// DummyIssuerReport covers Table 4 (dummy-issuer certificates by side and
// direction) and Table 10 (dummy issuers at both endpoints).
type DummyIssuerReport struct {
	Rows []DummyRow
	// BothEndpoints are connections where BOTH leaf certificates carry
	// dummy issuers (Appendix B).
	BothEndpoints []DummyBothRow
	// WeakKeyCerts counts dummy-issuer certs with 1024-bit RSA keys and
	// Version1Certs counts X.509v1 dummy certs (§5.1.1).
	WeakKeyCerts  int
	Version1Certs int
}

// DummyRow is one (direction, side, issuer) group of Table 4.
type DummyRow struct {
	Direction string // "inbound"/"outbound"
	Side      string // "client"/"server"
	IssuerOrg string
	Servers   int // distinct server IPs involved
	Clients   int // distinct client IPs involved
	Conns     int64
}

// DummyBothRow is one Table 10 row.
type DummyBothRow struct {
	SLD          string
	ClientIssuer string
	ServerIssuer string
	Clients      int
	DurationDays int64
}

func (e *enriched) dummyIssuers() *DummyIssuerReport {
	type key struct{ dir, side, org string }
	type agg struct {
		servers, clients map[string]bool
		conns            int64
	}
	groups := map[key]*agg{}
	get := func(k key) *agg {
		if a, ok := groups[k]; ok {
			return a
		}
		a := &agg{servers: map[string]bool{}, clients: map[string]bool{}}
		groups[k] = a
		return a
	}
	type bothKey struct{ sld, cli, srv string }
	type bothAgg struct {
		clients     map[string]bool
		first, last int64
	}
	both := map[bothKey]*bothAgg{}

	rep := &DummyIssuerReport{}
	weakSeen := map[ids.Fingerprint]bool{}

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || (cv.dir != netsim.Inbound && cv.dir != netsim.Outbound) {
			continue
		}
		cliDummy := cv.clientCert != nil && e.usageOf(cv.clientCert, cv.rec.ClientChain).dummyIssuer
		srvDummy := cv.serverCert != nil && e.usageOf(cv.serverCert, cv.rec.ServerChain).dummyIssuer
		if cliDummy {
			a := get(key{cv.dir.String(), "client", cv.clientCert.IssuerOrg})
			a.servers[cv.rec.RespIP] = true
			a.clients[cv.rec.OrigIP] = true
			a.conns += cv.rec.Weight
			if !weakSeen[cv.clientCert.Fingerprint] {
				weakSeen[cv.clientCert.Fingerprint] = true
				if cv.clientCert.WeakKey() {
					rep.WeakKeyCerts++
				}
				if cv.clientCert.Version == 1 {
					rep.Version1Certs++
				}
			}
		}
		if srvDummy {
			a := get(key{cv.dir.String(), "server", cv.serverCert.IssuerOrg})
			a.servers[cv.rec.RespIP] = true
			a.clients[cv.rec.OrigIP] = true
			a.conns += cv.rec.Weight
		}
		if cliDummy && srvDummy {
			sld := cv.sld
			if sld == "" {
				sld = "- (missing SNI)"
			}
			bk := bothKey{sld, cv.clientCert.IssuerOrg, cv.serverCert.IssuerOrg}
			ba, ok := both[bk]
			if !ok {
				ba = &bothAgg{clients: map[string]bool{}, first: 1 << 62}
				both[bk] = ba
			}
			ba.clients[cv.rec.OrigIP] = true
			d := cv.rec.TS.Unix()
			if d < ba.first {
				ba.first = d
			}
			if d > ba.last {
				ba.last = d
			}
		}
	}

	for k, a := range groups {
		rep.Rows = append(rep.Rows, DummyRow{
			Direction: k.dir, Side: k.side, IssuerOrg: k.org,
			Servers: len(a.servers), Clients: len(a.clients), Conns: a.conns,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Direction != b.Direction {
			return a.Direction < b.Direction
		}
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.Conns != b.Conns {
			return a.Conns > b.Conns
		}
		return a.IssuerOrg < b.IssuerOrg
	})
	for k, a := range both {
		rep.BothEndpoints = append(rep.BothEndpoints, DummyBothRow{
			SLD: k.sld, ClientIssuer: k.cli, ServerIssuer: k.srv,
			Clients:      len(a.clients),
			DurationDays: (a.last-a.first)/86400 + 1,
		})
	}
	sort.Slice(rep.BothEndpoints, func(i, j int) bool {
		if rep.BothEndpoints[i].Clients != rep.BothEndpoints[j].Clients {
			return rep.BothEndpoints[i].Clients > rep.BothEndpoints[j].Clients
		}
		a, b := rep.BothEndpoints[i], rep.BothEndpoints[j]
		if a.SLD != b.SLD {
			return a.SLD < b.SLD
		}
		if a.ClientIssuer != b.ClientIssuer {
			return a.ClientIssuer < b.ClientIssuer
		}
		return a.ServerIssuer < b.ServerIssuer
	})
	return rep
}

// SerialReport reproduces §5.1.2: certificates sharing the same serial
// number within one issuer's scope.
type SerialReport struct {
	Inbound  SerialDirection
	Outbound SerialDirection
}

// SerialDirection is one direction's collision statistics.
type SerialDirection struct {
	// ClientsInvolved: distinct client IPs in connections where at least
	// one endpoint used a collided serial (inbound: 1,126; outbound:
	// 14,541 at full scale).
	ClientsInvolved int
	// BothEndpointClients: clients where both endpoints collided.
	BothEndpointClients int
	// Groups: top colliding (issuer, serial) groups.
	Groups []SerialGroup
}

// SerialGroup is one (issuer, serial) collision set.
type SerialGroup struct {
	IssuerKey   string
	Serial      string
	ServerCerts int
	ClientCerts int
	Conns       int64
	Clients     int
	// Tuples is the unique (client, client cert, server, server cert)
	// combination count (§5's connection tuple).
	Tuples int
	// MaxValidityDays over the group's certs (Globus: 14; GuardiCore: >730).
	MaxValidityDays int64
}

func (e *enriched) serials() *SerialReport {
	// Identify collided (issuerKey, serial) pairs: >= 2 distinct certs.
	type skey struct{ issuer, serial string }
	certsBySerial := map[skey]map[ids.Fingerprint]bool{}
	for _, u := range e.usage {
		if !u.mutualServer && !u.mutualClient {
			continue
		}
		k := skey{u.cert.IssuerKey(), u.cert.SerialHex}
		if certsBySerial[k] == nil {
			certsBySerial[k] = map[ids.Fingerprint]bool{}
		}
		certsBySerial[k][u.cert.Fingerprint] = true
	}
	collided := map[skey]bool{}
	for k, set := range certsBySerial {
		if len(set) >= 2 {
			collided[k] = true
		}
	}

	type agg struct {
		srvCerts, cliCerts map[ids.Fingerprint]bool
		clients            map[string]bool
		tuples             map[[4]string]bool
		conns              int64
		maxValidity        int64
	}
	inClients := map[string]bool{}
	outClients := map[string]bool{}
	inBoth := map[string]bool{}
	outBoth := map[string]bool{}
	groups := map[skey]*agg{}
	getAgg := func(k skey) *agg {
		if a, ok := groups[k]; ok {
			return a
		}
		a := &agg{
			srvCerts: map[ids.Fingerprint]bool{}, cliCerts: map[ids.Fingerprint]bool{},
			clients: map[string]bool{}, tuples: map[[4]string]bool{},
		}
		groups[k] = a
		return a
	}

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual {
			continue
		}
		var srvHit, cliHit bool
		if cv.serverCert != nil {
			k := skey{cv.serverCert.IssuerKey(), cv.serverCert.SerialHex}
			if collided[k] {
				srvHit = true
				a := getAgg(k)
				a.srvCerts[cv.serverCert.Fingerprint] = true
				a.clients[cv.rec.OrigIP] = true
				a.conns += cv.rec.Weight
				a.tuples[[4]string{cv.rec.OrigIP, string(cv.rec.ClientLeaf()), cv.rec.RespIP, string(cv.rec.ServerLeaf())}] = true
				if v := cv.serverCert.ValidityDays(); v > a.maxValidity {
					a.maxValidity = v
				}
			}
		}
		if cv.clientCert != nil {
			k := skey{cv.clientCert.IssuerKey(), cv.clientCert.SerialHex}
			if collided[k] {
				cliHit = true
				a := getAgg(k)
				a.cliCerts[cv.clientCert.Fingerprint] = true
				a.clients[cv.rec.OrigIP] = true
				a.conns += cv.rec.Weight
				a.tuples[[4]string{cv.rec.OrigIP, string(cv.rec.ClientLeaf()), cv.rec.RespIP, string(cv.rec.ServerLeaf())}] = true
				if v := cv.clientCert.ValidityDays(); v > a.maxValidity {
					a.maxValidity = v
				}
			}
		}
		if srvHit || cliHit {
			if cv.dir == netsim.Inbound {
				inClients[cv.rec.OrigIP] = true
			} else if cv.dir == netsim.Outbound {
				outClients[cv.rec.OrigIP] = true
			}
		}
		if srvHit && cliHit {
			if cv.dir == netsim.Inbound {
				inBoth[cv.rec.OrigIP] = true
			} else if cv.dir == netsim.Outbound {
				outBoth[cv.rec.OrigIP] = true
			}
		}
	}

	build := func() []SerialGroup {
		var out []SerialGroup
		for k, a := range groups {
			out = append(out, SerialGroup{
				IssuerKey: k.issuer, Serial: k.serial,
				ServerCerts: len(a.srvCerts), ClientCerts: len(a.cliCerts),
				Conns: a.conns, Clients: len(a.clients), Tuples: len(a.tuples),
				MaxValidityDays: a.maxValidity,
			})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Conns != out[j].Conns {
				return out[i].Conns > out[j].Conns
			}
			return out[i].IssuerKey+out[i].Serial < out[j].IssuerKey+out[j].Serial
		})
		return out
	}
	all := build()
	return &SerialReport{
		Inbound: SerialDirection{
			ClientsInvolved: len(inClients), BothEndpointClients: len(inBoth), Groups: all,
		},
		Outbound: SerialDirection{
			ClientsInvolved: len(outClients), BothEndpointClients: len(outBoth), Groups: all,
		},
	}
}

// Group finds a collision group by issuer and serial.
func (d *SerialDirection) Group(issuer, serial string) (SerialGroup, bool) {
	for _, g := range d.Groups {
		if g.IssuerKey == issuer && g.Serial == serial {
			return g, true
		}
	}
	return SerialGroup{}, false
}
