package core

import (
	"repro/internal/certmodel"
	"repro/internal/ids"
)

// ShardState is one shard's raw admitted event stream: the certificate
// roster it accumulated plus the retained connections in shard-local
// ingest order, each stamped with the global ingest sequence the router
// assigned. It is the unit the sharded stream engine hands to
// MergeShards when a report is materialized.
type ShardState struct {
	// Certs is the shard's certificate roster. Shards may overlap (a
	// certificate fanned out to every shard that referenced it);
	// MergeShards deduplicates by fingerprint, first observation wins.
	Certs []*certmodel.CertInfo
	// Conns are the retained connections, ascending in ingest order.
	Conns []ConnRecord
	// Seqs holds the global ingest sequence of each connection in Conns
	// (len(Seqs) == len(Conns), ascending). The sequence restores the
	// single-stream interleaving across shards.
	Seqs []uint64
}

// MergeShards is the Builder's merge hook: it replays independently
// accumulated shard states through one fresh Builder, restoring the
// global ingest order with a k-way merge on the sequence numbers, and
// returns the Builder ready to materialize a Pipeline.
//
// exclude is the global §3.2 verdict (nil excludes nothing): excluded
// certificates are kept out of the chain-resolution roster and
// connections whose server leaf is excluded are filtered, exactly as
// interception.Filter drops them on the batch path and as a single
// engine's rebuild drops them on the streaming path. Because every
// certificate is admitted before any connection and connections replay
// in global sequence order, the result is deeply equal to a single
// engine draining the same event stream — at any shard count.
func MergeShards(in *Input, shards []ShardState, exclude func(ids.Fingerprint) bool) *Builder {
	if exclude == nil {
		exclude = func(ids.Fingerprint) bool { return false }
	}
	b := NewBuilder(in)
	for i := range shards {
		for _, c := range shards[i].Certs {
			if !exclude(c.Fingerprint) {
				b.AddCert(c)
			}
		}
	}
	// K-way merge on the global sequence stamps. Each shard's list is
	// already ascending (the router assigns sequences in send order), so
	// a linear head comparison per step suffices; shard counts are small
	// (bounded by CPU count), making a heap pointless overhead.
	idx := make([]int, len(shards))
	for {
		best := -1
		var bestSeq uint64
		for s := range shards {
			if idx[s] >= len(shards[s].Conns) {
				continue
			}
			if seq := shards[s].Seqs[idx[s]]; best < 0 || seq < bestSeq {
				best, bestSeq = s, seq
			}
		}
		if best < 0 {
			return b
		}
		rec := &shards[best].Conns[idx[best]]
		idx[best]++
		if sl := rec.ServerLeaf(); sl != "" && exclude(sl) {
			continue
		}
		b.AddConn(rec)
	}
}
