package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// TestScaleInvariance is the DESIGN.md §5 contract: because connection
// counts are carried as weights (never divided by the scale knob), every
// percentage-denominated result must be stable across scales, while
// unique-entity counts shrink roughly linearly.
func TestScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full generations")
	}
	run := func(scale int) *Analysis {
		cfg := workload.Default()
		cfg.CertScale = scale
		return Run(inputFromBuild(workload.Generate(cfg)))
	}
	small := run(4000)
	large := run(1000)

	closeEnough := func(name string, a, b, tol float64) {
		t.Helper()
		if math.Abs(a-b) > tol {
			t.Errorf("%s drifts across scales: %.4f vs %.4f", name, a, b)
		}
	}

	// Connection-share metrics: tight invariance (weights are unscaled;
	// the residual drift comes from per-row weight rounding).
	closeEnough("Figure 1 first month",
		small.Prevalence.FirstShare(), large.Prevalence.FirstShare(), 0.006)
	closeEnough("Figure 1 last month",
		small.Prevalence.LastShare(), large.Prevalence.LastShare(), 0.008)
	closeEnough("Table 3 health conn share",
		small.Inbound.Row(AssocHealth).ConnShare, large.Inbound.Row(AssocHealth).ConnShare, 0.03)
	closeEnough("Figure 2 amazonaws share",
		small.Outbound.SLDShare("amazonaws.com"), large.Outbound.SLDShare("amazonaws.com"), 0.03)
	closeEnough("§4.2.2 missing issuer share",
		small.Outbound.MissingIssuerShare, large.Outbound.MissingIssuerShare, 0.06)

	// Unique-cert counts scale ~linearly (floors distort the small end,
	// so allow generous bounds).
	ratio := float64(large.CertStats.Row("Total").Total) /
		float64(small.CertStats.Row("Total").Total)
	if ratio < 2.0 || ratio > 6.0 {
		t.Errorf("cert count scale ratio = %.2f, want ~4 (1000 vs 4000)", ratio)
	}

	// Shape verdicts that must hold at BOTH scales.
	for name, a := range map[string]*Analysis{"small": small, "large": large} {
		if a.Prevalence.LastShare() <= a.Prevalence.FirstShare() {
			t.Errorf("%s: trend not rising", name)
		}
		if a.SharingCross.ClientQuantiles[3] <= a.SharingCross.ServerQuantiles[3] {
			t.Errorf("%s: Table 6 tail ordering lost", name)
		}
		if _, ok := a.Serials.Inbound.Group("Globus Online", "00"); !ok {
			t.Errorf("%s: Globus serial group lost", name)
		}
	}
}
