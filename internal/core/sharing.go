package core

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/truststore"
)

// SharingSameReport is Table 5: connections where both endpoints present
// the SAME certificate.
type SharingSameReport struct {
	Rows []SharingSameRow
	// InboundConns/OutboundConns are the §5.2.1 totals (paper: 7.49M and
	// 5.93M).
	InboundConns  int64
	OutboundConns int64
}

// SharingSameRow is one (direction, SLD, issuer) group.
type SharingSameRow struct {
	Direction    string
	SLD          string // "- (missing SNI)" when absent
	IssuerKey    string
	PublicIssuer bool // gray rows of Table 5: public-CA server certs reused as client certs
	Clients      int
	Conns        int64
	DurationDays int64
}

func (e *enriched) sharingSame() *SharingSameReport {
	type key struct{ dir, sld, issuer string }
	type agg struct {
		clients     map[string]bool
		conns       int64
		first, last int64
		public      bool
	}
	groups := map[key]*agg{}
	rep := &SharingSameReport{}

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || cv.serverCert == nil {
			continue
		}
		if cv.rec.ServerLeaf() != cv.rec.ClientLeaf() {
			continue
		}
		switch cv.dir {
		case netsim.Inbound:
			rep.InboundConns += cv.rec.Weight
		case netsim.Outbound:
			rep.OutboundConns += cv.rec.Weight
		}
		sld := cv.rawSLD()
		k := key{cv.dir.String(), sld, cv.serverCert.IssuerKey()}
		a, ok := groups[k]
		if !ok {
			a = &agg{clients: map[string]bool{}, first: 1 << 62}
			a.public = e.usageOf(cv.serverCert, cv.rec.ServerChain).class == truststore.Public
			groups[k] = a
		}
		a.clients[cv.rec.OrigIP] = true
		a.conns += cv.rec.Weight
		ts := cv.rec.TS.Unix()
		if ts < a.first {
			a.first = ts
		}
		if ts > a.last {
			a.last = ts
		}
	}
	for k, a := range groups {
		rep.Rows = append(rep.Rows, SharingSameRow{
			Direction: k.dir, SLD: k.sld, IssuerKey: k.issuer,
			PublicIssuer: a.public, Clients: len(a.clients), Conns: a.conns,
			DurationDays: (a.last-a.first)/86400 + 1,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Direction != b.Direction {
			return a.Direction < b.Direction
		}
		if a.Clients != b.Clients {
			return a.Clients > b.Clients
		}
		if a.SLD != b.SLD {
			return a.SLD < b.SLD
		}
		return a.IssuerKey < b.IssuerKey
	})
	return rep
}

// rawSLD renders the Table 5 SLD column: SLD from SNI only, with the
// paper's "- (missing SNI)" placeholder (Globus's non-hostname SNI also
// extracts nothing). The split itself is precomputed at enrichment.
func (cv *connView) rawSLD() string {
	if cv.sniSLD != "" {
		return cv.sniSLD
	}
	return "- (missing SNI)"
}

// Row finds a Table 5 row by direction and SLD.
func (r *SharingSameReport) Row(dir, sld string) (SharingSameRow, bool) {
	for _, row := range r.Rows {
		if row.Direction == dir && row.SLD == sld {
			return row, true
		}
	}
	return SharingSameRow{}, false
}

// SharingCrossReport is Table 6: certificates used for BOTH server and
// client authentication in distinct connections, and how many /24 subnets
// each role's presentations span.
type SharingCrossReport struct {
	// Certs is the population size (paper: 1,611).
	Certs int
	// ServerQuantiles / ClientQuantiles are the 50th/75th/99th/100th
	// percentiles of subnet spread (paper: 1/1/7/217 and 1/2/43/1851).
	ServerQuantiles [4]int64
	ClientQuantiles [4]int64
	// IssuerShares: issuer mix of the shared certs (Let's Encrypt 51.58%…).
	IssuerShares []stats.KV
}

func (e *enriched) sharingCross() *SharingCrossReport {
	var srvSpread, cliSpread []int64
	issuers := stats.NewCounter()
	count := 0
	for _, u := range e.usage {
		// Cross-connection sharing: the cert appears in both roles but
		// never as both endpoints of a single connection (§5.2.2 treats
		// the same-connection population separately in §5.2.1).
		if !u.asServer || !u.asClient || u.sharedSameConn {
			continue
		}
		count++
		srvSpread = append(srvSpread, int64(u.serverSubnets.len()))
		cliSpread = append(cliSpread, int64(u.clientSubnets.len()))
		issuers.Add(issuerLabel(u), 1)
	}
	rep := &SharingCrossReport{Certs: count, IssuerShares: issuers.Top(6)}
	qs := []float64{0.50, 0.75, 0.99, 1.0}
	sq := stats.Quantiles(srvSpread, qs...)
	cq := stats.Quantiles(cliSpread, qs...)
	copy(rep.ServerQuantiles[:], sq)
	copy(rep.ClientQuantiles[:], cq)
	return rep
}

func issuerLabel(u *certUsage) string {
	if cn := u.cert.IssuerCN; cn != "" {
		return cn
	}
	if org := u.cert.IssuerOrg; org != "" {
		return org
	}
	return "(missing)"
}
