package core

// Pipeline exposes the analysis stages individually, so callers (and the
// benchmark harness, which has one benchmark per paper table/figure) can
// run and time each analysis against a preprocessed dataset.
type Pipeline struct {
	e       *enriched
	workers int
}

// NewPipeline runs preprocessing (§3.2 interception filtering + view
// enrichment, sharded per Input.Workers) and returns a pipeline ready to
// run analyses. The analyses themselves only read the enriched state, so
// they may be called concurrently.
func NewPipeline(in *Input) *Pipeline {
	return &Pipeline{e: preprocess(in), workers: workerCount(in.Workers)}
}

// Workers reports the resolved worker count (Input.Workers with 0
// expanded to GOMAXPROCS).
func (p *Pipeline) Workers() int { return p.workers }

// PreprocessReport returns the §3.2 statistics.
func (p *Pipeline) PreprocessReport() *PreprocessReport { return p.e.pre }

// CertStats computes Table 1.
func (p *Pipeline) CertStats() *CertStatsReport { return p.e.certStats() }

// Prevalence computes Figure 1.
func (p *Pipeline) Prevalence() *PrevalenceReport { return p.e.prevalence() }

// Services computes Table 2.
func (p *Pipeline) Services() *ServicesReport { return p.e.services() }

// Inbound computes Table 3.
func (p *Pipeline) Inbound() *InboundReport { return p.e.inbound() }

// Outbound computes Figure 2.
func (p *Pipeline) Outbound() *OutboundReport { return p.e.outbound() }

// DummyIssuers computes Tables 4 and 10.
func (p *Pipeline) DummyIssuers() *DummyIssuerReport { return p.e.dummyIssuers() }

// Serials computes the §5.1.2 collision report.
func (p *Pipeline) Serials() *SerialReport { return p.e.serials() }

// SharingSame computes Table 5.
func (p *Pipeline) SharingSame() *SharingSameReport { return p.e.sharingSame() }

// SharingCross computes Table 6.
func (p *Pipeline) SharingCross() *SharingCrossReport { return p.e.sharingCross() }

// BadDates computes Figure 3 / Tables 11-12.
func (p *Pipeline) BadDates() *BadDatesReport { return p.e.badDates() }

// Validity computes Figure 4.
func (p *Pipeline) Validity() *ValidityReport { return p.e.validity() }

// Expired computes Figure 5.
func (p *Pipeline) Expired() *ExpiredReport { return p.e.expired() }

// Utilization computes Table 7.
func (p *Pipeline) Utilization() *UtilizationReport { return p.e.utilization() }

// Contents computes Table 8.
func (p *Pipeline) Contents() *ContentsReport { return p.e.contents() }

// Unidentified computes Table 9.
func (p *Pipeline) Unidentified() *UnidentifiedReport { return p.e.unidentified() }

// SharedInfo computes Table 13.
func (p *Pipeline) SharedInfo() *SharedInfoReport { return p.e.sharedInfo() }

// NonMutual computes Table 14.
func (p *Pipeline) NonMutual() *NonMutualReport { return p.e.nonMutual() }

// Concerns computes the §5 takeaway aggregation.
func (p *Pipeline) Concerns() *ConcernsReport { return p.e.concerns() }

// SANTypes computes the §6.1.2 SAN-type disparity.
func (p *Pipeline) SANTypes() *SANTypesReport { return p.e.sanTypes() }

// Durations computes the duration-of-activity distributions.
func (p *Pipeline) Durations() *DurationReport { return p.e.durations() }

// Versions computes the §3.3 protocol-version mix.
func (p *Pipeline) Versions() *VersionReport { return p.e.versions() }

// Fingerprints computes the ClientHello fingerprint-prevalence join.
func (p *Pipeline) Fingerprints() *FingerprintReport { return p.e.fingerprints() }
