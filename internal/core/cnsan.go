package core

import (
	"repro/internal/certmodel"
	"repro/internal/infotype"
	"repro/internal/nerlite"
	"repro/internal/truststore"
)

// UtilizationReport is Table 7: how many mutual-TLS certificates have
// non-empty CN / SAN DNS values, by role and CA class.
type UtilizationReport struct {
	Rows []UtilizationRow
}

// UtilizationRow is one Table 7 row.
type UtilizationRow struct {
	Label       string
	Total       int
	NonEmptyCN  int
	NonEmptySAN int
}

// CNShare / SANShare are the utilization ratios.
func (r UtilizationRow) CNShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.NonEmptyCN) / float64(r.Total)
}

// SANShare returns the SAN utilization ratio.
func (r UtilizationRow) SANShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.NonEmptySAN) / float64(r.Total)
}

// Row returns the named row.
func (r *UtilizationReport) Row(label string) UtilizationRow {
	for _, row := range r.Rows {
		if row.Label == label {
			return row
		}
	}
	return UtilizationRow{Label: label}
}

func (e *enriched) utilization() *UtilizationReport {
	type bucket struct{ total, cn, san int }
	var srv, srvPub, srvPriv, cli, cliPub, cliPriv bucket
	add := func(b *bucket, c *certmodel.CertInfo) {
		b.total++
		if c.SubjectCN != "" {
			b.cn++
		}
		if len(c.SANDNS) > 0 {
			b.san++
		}
	}
	for _, u := range e.usage {
		pub := u.class == truststore.Public
		if u.mutualServer {
			add(&srv, u.cert)
			if pub {
				add(&srvPub, u.cert)
			} else {
				add(&srvPriv, u.cert)
			}
		}
		if u.mutualClient {
			add(&cli, u.cert)
			if pub {
				add(&cliPub, u.cert)
			} else {
				add(&cliPriv, u.cert)
			}
		}
	}
	row := func(label string, b bucket) UtilizationRow {
		return UtilizationRow{Label: label, Total: b.total, NonEmptyCN: b.cn, NonEmptySAN: b.san}
	}
	return &UtilizationReport{Rows: []UtilizationRow{
		row("Server certs.", srv),
		row("Server - Public CA", srvPub),
		row("Server - Private CA", srvPriv),
		row("Client certs.", cli),
		row("Client - Public CA", cliPub),
		row("Client - Private CA", cliPriv),
	}}
}

// ContentsReport is Table 8: information types in CN and SAN, by role ×
// CA class, EXCLUDING certificates shared by both server and client
// (analyzed separately in Table 13).
type ContentsReport struct {
	// Cells[column][infotype] = count. Columns: "server-public",
	// "server-private", "client-public", "client-private"; each has a CN
	// and a SAN table.
	CN  map[string]map[string]int
	SAN map[string]map[string]int
	// Totals per column (non-empty CN / SAN cert counts).
	CNTotals  map[string]int
	SANTotals map[string]int
}

// Share returns a cell's ratio of its column total.
func (r *ContentsReport) Share(field, column, infoType string) float64 {
	var cell int
	var total int
	if field == "CN" {
		cell, total = r.CN[column][infoType], r.CNTotals[column]
	} else {
		cell, total = r.SAN[column][infoType], r.SANTotals[column]
	}
	if total == 0 {
		return 0
	}
	return float64(cell) / float64(total)
}

// contentColumns enumerates Table 8's column keys.
var contentColumns = []string{"server-public", "server-private", "client-public", "client-private"}

func (e *enriched) contents() *ContentsReport {
	rep := newContentsReport()
	for _, u := range e.usage {
		if u.sharedSameConn {
			continue // Table 13 handles these
		}
		pub := u.class == truststore.Public
		if u.mutualServer {
			e.accumulateContents(rep, column("server", pub), u)
		}
		if u.mutualClient {
			e.accumulateContents(rep, column("client", pub), u)
		}
	}
	return rep
}

func newContentsReport() *ContentsReport {
	rep := &ContentsReport{
		CN: map[string]map[string]int{}, SAN: map[string]map[string]int{},
		CNTotals: map[string]int{}, SANTotals: map[string]int{},
	}
	for _, c := range contentColumns {
		rep.CN[c] = map[string]int{}
		rep.SAN[c] = map[string]int{}
	}
	return rep
}

func column(role string, pub bool) string {
	if pub {
		return role + "-public"
	}
	return role + "-private"
}

// accumulateContents classifies one certificate's CN and SAN values into
// the report column.
func (e *enriched) accumulateContents(rep *ContentsReport, col string, u *certUsage) {
	c := u.cert
	if rep.CN[col] == nil {
		rep.CN[col] = map[string]int{}
		rep.SAN[col] = map[string]int{}
	}
	if c.SubjectCN != "" {
		rep.CNTotals[col]++
		t := e.info.Classify(c.SubjectCN, c.IssuerKey())
		rep.CN[col][t.String()]++
	}
	if len(c.SANDNS) > 0 {
		rep.SANTotals[col]++
		// A SAN can contain multiple types; count each type once per cert
		// (the paper's note that SAN percentages can exceed 100%).
		seen := map[string]bool{}
		for _, v := range c.SANDNS {
			t := e.info.Classify(v, c.IssuerKey()).String()
			if !seen[t] {
				seen[t] = true
				rep.SAN[col][t]++
			}
		}
	}
}

// UnidentifiedReport is Table 9: sub-classification of unidentified CN/SAN
// strings into non-random and random buckets.
type UnidentifiedReport struct {
	// Buckets[column][bucket] = count. Columns as Table 9: "server-private-CN",
	// "client-public-CN", "client-private-CN", "client-private-SAN".
	Buckets map[string]map[string]int
	Totals  map[string]int
}

// Share returns a bucket's column share.
func (r *UnidentifiedReport) Share(column, bucket string) float64 {
	if r.Totals[column] == 0 {
		return 0
	}
	return float64(r.Buckets[column][bucket]) / float64(r.Totals[column])
}

func (e *enriched) unidentified() *UnidentifiedReport {
	rep := &UnidentifiedReport{Buckets: map[string]map[string]int{}, Totals: map[string]int{}}
	// Issuer recognizability is memoized: the issuer space is tiny
	// compared to the certificate space and Recognize is fuzzy-match
	// expensive.
	recog := map[string]bool{}
	recognizable := func(issuerKey string) bool {
		if v, ok := recog[issuerKey]; ok {
			return v
		}
		v := nerlite.Recognize(issuerKey) != nerlite.LabelNone
		recog[issuerKey] = v
		return v
	}
	add := func(col, value, issuerKey string) {
		if e.info.Classify(value, issuerKey) != infotype.Unidentified {
			return
		}
		b := infotype.ClassifyUnidentified(value, recognizable(issuerKey)).String()
		if rep.Buckets[col] == nil {
			rep.Buckets[col] = map[string]int{}
		}
		rep.Buckets[col][b]++
		rep.Totals[col]++
	}
	for _, u := range e.usage {
		if u.sharedSameConn {
			continue
		}
		c := u.cert
		pub := u.class == truststore.Public
		issuer := c.IssuerKey()
		if u.mutualServer && !pub && c.SubjectCN != "" {
			add("server-private-CN", c.SubjectCN, issuer)
		}
		if u.mutualClient && pub && c.SubjectCN != "" {
			add("client-public-CN", c.SubjectCN, issuer)
		}
		if u.mutualClient && !pub {
			if c.SubjectCN != "" {
				add("client-private-CN", c.SubjectCN, issuer)
			}
			for _, v := range c.SANDNS {
				add("client-private-SAN", v, issuer)
			}
		}
	}
	return rep
}

// SharedInfoReport is Table 13: CN/SAN utilization and information types
// for certificates shared by both endpoints of single connections.
type SharedInfoReport struct {
	Certs        int
	PrivateShare float64
	Utilization  []UtilizationRow // "Certificates", "Public CA", "Private CA"
	CN           map[string]map[string]int
	SAN          map[string]map[string]int
	CNTotals     map[string]int
	SANTotals    map[string]int
}

func (e *enriched) sharedInfo() *SharedInfoReport {
	rep := &SharedInfoReport{
		CN: map[string]map[string]int{}, SAN: map[string]map[string]int{},
		CNTotals: map[string]int{}, SANTotals: map[string]int{},
	}
	type bucket struct{ total, cn, san int }
	var all, pub, priv bucket
	add := func(b *bucket, c *certmodel.CertInfo) {
		b.total++
		if c.SubjectCN != "" {
			b.cn++
		}
		if len(c.SANDNS) > 0 {
			b.san++
		}
	}
	cr := newContentsReport()
	for _, u := range e.usage {
		if !u.sharedSameConn {
			continue
		}
		rep.Certs++
		isPub := u.class == truststore.Public
		add(&all, u.cert)
		if isPub {
			add(&pub, u.cert)
			e.accumulateContents(cr, "server-public", u)
		} else {
			add(&priv, u.cert)
			e.accumulateContents(cr, "server-private", u)
		}
	}
	if rep.Certs > 0 {
		rep.PrivateShare = float64(priv.total) / float64(rep.Certs)
	}
	rep.Utilization = []UtilizationRow{
		{Label: "Certificates", Total: all.total, NonEmptyCN: all.cn, NonEmptySAN: all.san},
		{Label: "Public CA", Total: pub.total, NonEmptyCN: pub.cn, NonEmptySAN: pub.san},
		{Label: "Private CA", Total: priv.total, NonEmptyCN: priv.cn, NonEmptySAN: priv.san},
	}
	rep.CN["public"] = cr.CN["server-public"]
	rep.CN["private"] = cr.CN["server-private"]
	rep.SAN["public"] = cr.SAN["server-public"]
	rep.SAN["private"] = cr.SAN["server-private"]
	rep.CNTotals["public"] = cr.CNTotals["server-public"]
	rep.CNTotals["private"] = cr.CNTotals["server-private"]
	rep.SANTotals["public"] = cr.SANTotals["server-public"]
	rep.SANTotals["private"] = cr.SANTotals["server-private"]
	return rep
}

// NonMutualReport is Table 14: CN/SAN statistics for server certificates
// from non-mutual TLS connections.
type NonMutualReport struct {
	Utilization []UtilizationRow // "Certificates", "Public CA", "Private CA"
	PublicShare float64          // paper: 85% public
	CN          map[string]map[string]int
	SAN         map[string]map[string]int
	CNTotals    map[string]int
	SANTotals   map[string]int
}

func (e *enriched) nonMutual() *NonMutualReport {
	rep := &NonMutualReport{
		CN: map[string]map[string]int{}, SAN: map[string]map[string]int{},
		CNTotals: map[string]int{}, SANTotals: map[string]int{},
	}
	type bucket struct{ total, cn, san int }
	var all, pub, priv bucket
	add := func(b *bucket, c *certmodel.CertInfo) {
		b.total++
		if c.SubjectCN != "" {
			b.cn++
		}
		if len(c.SANDNS) > 0 {
			b.san++
		}
	}
	cr := newContentsReport()
	for _, u := range e.usage {
		// Server certs used ONLY outside mutual TLS.
		if !u.asServer || u.mutualServer {
			continue
		}
		isPub := u.class == truststore.Public
		add(&all, u.cert)
		if isPub {
			add(&pub, u.cert)
			e.accumulateContents(cr, "server-public", u)
		} else {
			add(&priv, u.cert)
			e.accumulateContents(cr, "server-private", u)
		}
	}
	if all.total > 0 {
		rep.PublicShare = float64(pub.total) / float64(all.total)
	}
	rep.Utilization = []UtilizationRow{
		{Label: "Certificates", Total: all.total, NonEmptyCN: all.cn, NonEmptySAN: all.san},
		{Label: "Public CA", Total: pub.total, NonEmptyCN: pub.cn, NonEmptySAN: pub.san},
		{Label: "Private CA", Total: priv.total, NonEmptyCN: priv.cn, NonEmptySAN: priv.san},
	}
	rep.CN["public"] = cr.CN["server-public"]
	rep.CN["private"] = cr.CN["server-private"]
	rep.SAN["public"] = cr.SAN["server-public"]
	rep.SAN["private"] = cr.SAN["server-private"]
	rep.CNTotals["public"] = cr.CNTotals["server-public"]
	rep.CNTotals["private"] = cr.CNTotals["server-private"]
	rep.SANTotals["public"] = cr.SANTotals["server-public"]
	rep.SANTotals["private"] = cr.SANTotals["server-private"]
	return rep
}
