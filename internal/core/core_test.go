package core

import (
	"testing"

	"repro/internal/workload"
)

// inputFromBuild adapts a workload build (duplicated from the facade to
// keep core tests self-contained).
func inputFromBuild(b *workload.Build) *Input {
	return &Input{
		Raw:           b.Raw,
		CT:            b.CT,
		Bundle:        b.Bundle,
		CampusIssuers: b.CampusIssuers,
		Assoc: AssocMap{
			HealthSLDs:     b.Assoc.HealthSLDs,
			UniversitySLDs: b.Assoc.UniversitySLDs,
			VPNHostPrefix:  b.Assoc.VPNHostPrefix,
			LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
			ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
			GlobusSLDs:     b.Assoc.GlobusSLDs,
		},
		Plan:   b.Plan,
		Months: b.Months,
	}
}

var cachedAnalysis *Analysis

func analysis(t *testing.T) *Analysis {
	t.Helper()
	if cachedAnalysis == nil {
		cfg := workload.Default()
		cfg.CertScale = 500
		cachedAnalysis = Run(inputFromBuild(workload.Generate(cfg)))
	}
	return cachedAnalysis
}

func TestPreprocessFindsInterception(t *testing.T) {
	a := analysis(t)
	if len(a.Preprocess.InterceptionIssuers) < 8 {
		t.Fatalf("interception issuers = %d, want ~12", len(a.Preprocess.InterceptionIssuers))
	}
	if a.Preprocess.ExcludedShare < 0.04 || a.Preprocess.ExcludedShare > 0.14 {
		t.Fatalf("excluded share = %.4f, want ~0.084", a.Preprocess.ExcludedShare)
	}
	// TLS 1.3 opacity ~40.86% of conn weight.
	if a.Preprocess.TLS13ConnShare < 0.30 || a.Preprocess.TLS13ConnShare > 0.50 {
		t.Fatalf("TLS 1.3 share = %.4f, want ~0.41", a.Preprocess.TLS13ConnShare)
	}
}

func TestTable1Shape(t *testing.T) {
	a := analysis(t)
	cs := a.CertStats
	total := cs.Row("Total")
	if total.Total == 0 {
		t.Fatal("no certs")
	}
	// Paper: 59.43% of all certs participate in mTLS.
	if s := total.MutualShare(); s < 0.40 || s > 0.75 {
		t.Errorf("total mutual share = %.4f, want ~0.59", s)
	}
	// Server certs: public CA mTLS share ~0.22% (tiny); private ~82.78%.
	sp := cs.Row("Server - Public CA")
	if s := sp.MutualShare(); s > 0.05 {
		t.Errorf("server-public mutual share = %.4f, want ~0.002", s)
	}
	spr := cs.Row("Server - Private CA")
	if s := spr.MutualShare(); s < 0.60 {
		t.Errorf("server-private mutual share = %.4f, want ~0.83", s)
	}
	// Client certs: ~94.34% used in mTLS.
	cl := cs.Row("Client")
	if s := cl.MutualShare(); s < 0.85 {
		t.Errorf("client mutual share = %.4f, want ~0.94", s)
	}
	// Private CA dominates client certs.
	cpr := cs.Row("Client - Private CA")
	if float64(cpr.Total) < 0.9*float64(cl.Total) {
		t.Errorf("client private = %d of %d, want ~99%%", cpr.Total, cl.Total)
	}
}

func TestFigure1Trend(t *testing.T) {
	a := analysis(t)
	p := a.Prevalence
	if len(p.Overall) != 23 {
		t.Fatalf("months = %d, want 23", len(p.Overall))
	}
	first, last := p.FirstShare(), p.LastShare()
	if first < 0.012 || first > 0.030 {
		t.Errorf("first-month share = %.4f, want ~0.0199", first)
	}
	if last < 0.028 || last > 0.048 {
		t.Errorf("last-month share = %.4f, want ~0.0361", last)
	}
	if last <= first {
		t.Errorf("mTLS share must grow: %.4f -> %.4f", first, last)
	}
}

func TestTable2Services(t *testing.T) {
	a := analysis(t)
	s := a.Services
	if len(s.MutualInbound) == 0 || s.MutualInbound[0].PortLabel != "443" {
		t.Fatalf("inbound mTLS top port = %+v, want 443", s.MutualInbound)
	}
	fw, ok := Find(s.MutualInbound, "20017")
	if !ok || fw.Share < 0.15 || fw.Share > 0.35 {
		t.Errorf("FileWave 20017 share = %+v, want ~0.249", fw)
	}
	if _, ok := Find(s.MutualInbound, "636"); !ok {
		t.Error("LDAPS 636 missing from inbound top-5")
	}
	if s.MutualOutbound[0].PortLabel != "443" {
		t.Errorf("outbound mTLS top port = %s", s.MutualOutbound[0].PortLabel)
	}
	if s.NonMutualOutbound[0].PortLabel != "443" || s.NonMutualOutbound[0].Share < 0.95 {
		t.Errorf("outbound non-mTLS 443 = %+v, want ~0.99", s.NonMutualOutbound[0])
	}
	if fw.Service != "Corp. - FileWave" {
		t.Errorf("service name = %q", fw.Service)
	}
}

func TestTable3Inbound(t *testing.T) {
	a := analysis(t)
	in := a.Inbound
	health := in.Row(AssocHealth)
	if health.ConnShare < 0.50 || health.ConnShare > 0.80 {
		t.Errorf("health conn share = %.4f, want ~0.649", health.ConnShare)
	}
	if health.Primary != "Private - Education" {
		t.Errorf("health primary issuer = %q, want Education", health.Primary)
	}
	univ := in.Row(AssocUniversity)
	if univ.ConnShare < 0.20 || univ.ConnShare > 0.42 {
		t.Errorf("university conn share = %.4f, want ~0.306", univ.ConnShare)
	}
	if univ.Primary != "Private - MissingIssuer" {
		t.Errorf("university primary issuer = %q, want MissingIssuer", univ.Primary)
	}
	vpn := in.Row(AssocVPN)
	if vpn.ConnShare > 0.02 {
		t.Errorf("vpn conn share = %.4f, want ~0.003", vpn.ConnShare)
	}
	if vpn.ClientShare < 0.08 {
		t.Errorf("vpn client share = %.4f, want ~0.147", vpn.ClientShare)
	}
	local := in.Row(AssocLocalOrg)
	if local.Primary != "Public" {
		t.Errorf("local org primary issuer = %q, want Public", local.Primary)
	}
	unknown := in.Row(AssocUnknown)
	if unknown.ClientShare < 0.20 {
		t.Errorf("unknown client share = %.4f, want ~0.366", unknown.ClientShare)
	}
}

func TestFigure2Outbound(t *testing.T) {
	a := analysis(t)
	out := a.Outbound
	if s := out.SLDShare("amazonaws.com"); s < 0.18 || s > 0.40 {
		t.Errorf("amazonaws share = %.4f, want ~0.285", s)
	}
	if s := out.SLDShare("rapid7.com"); s < 0.15 || s > 0.40 {
		t.Errorf("rapid7 share = %.4f, want ~0.274", s)
	}
	if s := out.SLDShare("gpcloudservice.com"); s < 0.07 || s > 0.22 {
		t.Errorf("gpcloud share = %.4f, want ~0.133", s)
	}
	if out.MissingIssuerShare < 0.20 || out.MissingIssuerShare > 0.55 {
		t.Errorf("missing issuer share = %.4f, want ~0.378", out.MissingIssuerShare)
	}
	if out.PublicServerMissingClientShare < 0.25 || out.PublicServerMissingClientShare > 0.65 {
		t.Errorf("public-server missing-client share = %.4f, want ~0.457",
			out.PublicServerMissingClientShare)
	}
	if len(out.Flows) == 0 {
		t.Fatal("no flows")
	}
}

func TestTable4Dummies(t *testing.T) {
	a := analysis(t)
	d := a.DummyIssuers
	var sawUnspecified, sawWidgitsClient, sawWidgitsServer bool
	for _, r := range d.Rows {
		if r.IssuerOrg == "Unspecified" && r.Side == "client" && r.Direction == "inbound" {
			sawUnspecified = true
		}
		if r.IssuerOrg == "Internet Widgits Pty Ltd" && r.Side == "client" && r.Direction == "outbound" {
			sawWidgitsClient = true
		}
		if r.IssuerOrg == "Internet Widgits Pty Ltd" && r.Side == "server" && r.Direction == "outbound" {
			sawWidgitsServer = true
		}
	}
	if !sawUnspecified || !sawWidgitsClient || !sawWidgitsServer {
		t.Errorf("dummy rows missing: unspecified=%v widgitsC=%v widgitsS=%v (rows=%d)",
			sawUnspecified, sawWidgitsClient, sawWidgitsServer, len(d.Rows))
	}
	if len(d.BothEndpoints) < 2 {
		t.Errorf("both-endpoint dummies = %d, want >=2 (fireboard, aws)", len(d.BothEndpoints))
	}
	if d.Version1Certs == 0 {
		t.Error("no version-1 dummy certs found")
	}
	if d.WeakKeyCerts == 0 {
		t.Error("no weak-key dummy certs found")
	}
}

func TestSerialCollisions(t *testing.T) {
	a := analysis(t)
	s := a.Serials
	g, ok := s.Inbound.Group("Globus Online", "00")
	if !ok {
		t.Fatal("Globus serial-00 group missing")
	}
	if g.ClientCerts < 10 || g.ServerCerts < 10 {
		t.Errorf("Globus certs = %d/%d, want many reissues", g.ClientCerts, g.ServerCerts)
	}
	if g.MaxValidityDays > 15 {
		t.Errorf("Globus validity = %d days, want 14", g.MaxValidityDays)
	}
	if _, ok := s.Inbound.Group("ViptelaClient", "024680"); !ok {
		t.Error("ViptelaClient serial-024680 group missing")
	}
	gc, ok := s.Outbound.Group("GuardiCore", "01")
	if !ok {
		t.Fatal("GuardiCore client serial group missing")
	}
	if gc.MaxValidityDays < 730 {
		t.Errorf("GuardiCore validity = %d, want >2y", gc.MaxValidityDays)
	}
	if _, ok := s.Outbound.Group("GuardiCore", "03E8"); !ok {
		t.Error("GuardiCore server serial group missing")
	}
	if s.Inbound.ClientsInvolved == 0 || s.Outbound.ClientsInvolved == 0 {
		t.Error("no clients involved in collisions")
	}
}

func TestTable5SharingSame(t *testing.T) {
	a := analysis(t)
	sh := a.SharingSame
	if sh.InboundConns == 0 || sh.OutboundConns == 0 {
		t.Fatalf("shared conns: in=%d out=%d", sh.InboundConns, sh.OutboundConns)
	}
	// Globus missing-SNI rows exist in both directions.
	if _, ok := sh.Row("inbound", "- (missing SNI)"); !ok {
		t.Error("inbound Globus shared row missing")
	}
	if _, ok := sh.Row("outbound", "- (missing SNI)"); !ok {
		t.Error("outbound Globus shared row missing")
	}
	// Outset Medical (tablodash.com) is the biggest inbound client pop.
	row, ok := sh.Row("inbound", "tablodash.com")
	if !ok {
		t.Fatal("tablodash row missing")
	}
	if row.IssuerKey != "Outset Medical" {
		t.Errorf("tablodash issuer = %q", row.IssuerKey)
	}
	// Public-issuer reuse rows exist (splunkcloud is private; check the
	// cross-shared pool covers public reuse in Table 6 instead).
	if _, ok := sh.Row("outbound", "splunkcloud.com"); !ok {
		t.Error("splunkcloud shared row missing")
	}
}

func TestTable6SubnetSpread(t *testing.T) {
	a := analysis(t)
	cr := a.SharingCross
	if cr.Certs < 35 {
		t.Fatalf("cross-shared certs = %d", cr.Certs)
	}
	// Shapes: median 1 subnet both roles; client tail ≫ server tail.
	if cr.ServerQuantiles[0] != 1 || cr.ClientQuantiles[0] != 1 {
		t.Errorf("medians = %v / %v, want 1", cr.ServerQuantiles[0], cr.ClientQuantiles[0])
	}
	if cr.ClientQuantiles[2] <= cr.ServerQuantiles[2] {
		t.Errorf("99th: client %d should exceed server %d",
			cr.ClientQuantiles[2], cr.ServerQuantiles[2])
	}
	if cr.ClientQuantiles[3] <= cr.ServerQuantiles[3] {
		t.Errorf("max: client %d should exceed server %d",
			cr.ClientQuantiles[3], cr.ServerQuantiles[3])
	}
	// Let's Encrypt intermediates dominate the issuer mix.
	if len(cr.IssuerShares) == 0 || cr.IssuerShares[0].Key != "R3" {
		t.Errorf("top issuer = %+v, want R3 (Let's Encrypt)", cr.IssuerShares)
	}
}

func TestFigure3BadDates(t *testing.T) {
	a := analysis(t)
	bd := a.BadDates
	if bd.Certs == 0 {
		t.Fatal("no incorrect-date certs")
	}
	var idrive, sds bool
	for _, r := range bd.BothEndpoints {
		if r.SLD == "idrive.com" {
			idrive = true
		}
		if r.SLD == "- (missing SNI)" && r.ClientIssuer == "SDS" {
			sds = true
		}
	}
	if !idrive || !sds {
		t.Errorf("both-endpoint groups: idrive=%v sds=%v (%+v)", idrive, sds, bd.BothEndpoints)
	}
	var honeywell bool
	for _, r := range bd.Rows {
		if r.IssuerKey == "Honeywell International Inc" && r.Side == "client" {
			honeywell = true
		}
	}
	if !honeywell {
		t.Error("Honeywell incorrect-date clients missing")
	}
}

func TestFigure4Validity(t *testing.T) {
	a := analysis(t)
	v := a.Validity
	if v.ExtremeCount < 8 {
		t.Errorf("extreme-validity certs = %d", v.ExtremeCount)
	}
	// The single longest validity: ~83,432 days at tmdxdev.com.
	if v.MaxValidityDays < 80000 {
		t.Errorf("max validity = %d days, want ~83,432", v.MaxValidityDays)
	}
	if v.MaxValiditySLD != "tmdxdev.com" {
		t.Errorf("max validity SLD = %q", v.MaxValiditySLD)
	}
	// Outbound has the long tail; inbound does not.
	if v.OutboundHist.Bucket(4)+v.OutboundHist.Bucket(5) == 0 {
		t.Error("outbound 10k-40k bucket empty")
	}
	if v.InboundHist.Bucket(5) > v.OutboundHist.Bucket(5) {
		t.Error("inbound should not exceed outbound in the extreme bucket")
	}
	// MissingIssuer should lead the extreme-validity category mix.
	if len(v.ExtremeCategories) == 0 {
		t.Fatal("no extreme categories")
	}
}

func TestFigure5Expired(t *testing.T) {
	a := analysis(t)
	ex := a.Expired
	if len(ex.Inbound.Points) == 0 || len(ex.Outbound.Points) == 0 {
		t.Fatalf("expired points: in=%d out=%d", len(ex.Inbound.Points), len(ex.Outbound.Points))
	}
	if ex.Outbound.AppleCluster < 5 {
		t.Errorf("Apple cluster = %d, want scaled ~337", ex.Outbound.AppleCluster)
	}
	if ex.Outbound.MicrosoftCount < 1 {
		t.Errorf("Microsoft expired = %d, want 2", ex.Outbound.MicrosoftCount)
	}
	// Inbound association mix: VPN should lead.
	if len(ex.Inbound.AssocShares) == 0 || ex.Inbound.AssocShares[0].Key != AssocVPN {
		t.Errorf("inbound expired assoc = %+v, want VPN first", ex.Inbound.AssocShares)
	}
}

func TestTable7Utilization(t *testing.T) {
	a := analysis(t)
	u := a.Utilization
	for _, label := range []string{"Server certs.", "Client certs."} {
		row := u.Row(label)
		if row.CNShare() < 0.95 {
			t.Errorf("%s CN share = %.4f, want ~0.998", label, row.CNShare())
		}
	}
	// Private-CA SAN utilization is tiny; public-CA SAN near 100%.
	sp := u.Row("Server - Private CA")
	if sp.SANShare() > 0.05 {
		t.Errorf("server-private SAN share = %.4f, want ~0.004", sp.SANShare())
	}
	pub := u.Row("Server - Public CA")
	if pub.SANShare() < 0.90 {
		t.Errorf("server-public SAN share = %.4f, want ~1.0", pub.SANShare())
	}
}

func TestTable8Contents(t *testing.T) {
	a := analysis(t)
	c := a.Contents
	// Server-public CN: overwhelmingly domains.
	if s := c.Share("CN", "server-public", "Domain"); s < 0.90 {
		t.Errorf("server-public domain CN share = %.4f, want ~1.0", s)
	}
	// Server-private CN: Org/Product dominates (WebRTC).
	if s := c.Share("CN", "server-private", "Org/Product"); s < 0.60 {
		t.Errorf("server-private org CN share = %.4f, want ~0.79", s)
	}
	// Client-private CN: Org/Product ~92.5%, PersonalName ~1.3%, user
	// accounts present.
	if s := c.Share("CN", "client-private", "Org/Product"); s < 0.75 {
		t.Errorf("client-private org CN share = %.4f, want ~0.92", s)
	}
	if c.CN["client-private"]["Personal name"] == 0 {
		t.Error("no personal names in client-private CNs")
	}
	if c.CN["client-private"]["User account"] == 0 {
		t.Error("no user accounts in client-private CNs")
	}
	if c.CN["client-private"]["SIP"] == 0 {
		t.Error("no SIP in client-private CNs")
	}
	// Client-public CN: unidentified dominates (Azure Sphere etc.).
	if s := c.Share("CN", "client-public", "Unidentified"); s < 0.35 {
		t.Errorf("client-public unidentified CN share = %.4f, want ~0.60", s)
	}
}

func TestTable9Unidentified(t *testing.T) {
	a := analysis(t)
	u := a.Unidentified
	if u.Totals["server-private-CN"] == 0 {
		t.Fatal("no unidentified server-private CNs")
	}
	// Random dominates server-private CN unidentified strings (80%).
	nonRandom := u.Share("server-private-CN", "Non-random")
	if nonRandom > 0.45 {
		t.Errorf("server-private non-random share = %.4f, want ~0.20", nonRandom)
	}
	if u.Buckets["server-private-CN"]["Random - strlen = 8"] == 0 {
		t.Error("no len-8 random bucket")
	}
	// Client-public unidentified: recognizable issuers (Azure Sphere,
	// Apple iPhone) dominate.
	if s := u.Share("client-public-CN", "Random - by Issuer"); s < 0.30 {
		t.Errorf("client-public by-issuer share = %.4f, want ~0.60", s)
	}
}

func TestTable13SharedInfo(t *testing.T) {
	a := analysis(t)
	si := a.SharedInfo
	if si.Certs == 0 {
		t.Fatal("no shared certs")
	}
	if si.PrivateShare < 0.90 {
		t.Errorf("shared private share = %.4f, want ~0.997", si.PrivateShare)
	}
	// CN filled on nearly all; SAN nearly none.
	util := si.Utilization[0]
	if util.CNShare() < 0.90 {
		t.Errorf("shared CN share = %.4f", util.CNShare())
	}
	if util.SANShare() > 0.10 {
		t.Errorf("shared SAN share = %.4f, want ~0.004", util.SANShare())
	}
	// Unidentified dominates shared-cert CNs (84.88%).
	if si.CNTotals["private"] > 0 {
		unid := float64(si.CN["private"]["Unidentified"]) / float64(si.CNTotals["private"])
		if unid < 0.55 {
			t.Errorf("shared unidentified CN share = %.4f, want ~0.85", unid)
		}
	}
}

func TestTable14NonMutual(t *testing.T) {
	a := analysis(t)
	nm := a.NonMutual
	if nm.PublicShare < 0.70 || nm.PublicShare > 0.95 {
		t.Errorf("non-mutual public share = %.4f, want ~0.85", nm.PublicShare)
	}
	util := nm.Utilization[0]
	if util.CNShare() < 0.95 {
		t.Errorf("non-mutual CN share = %.4f, want ~0.9995", util.CNShare())
	}
	// Private SAN ~10.5%, much higher than the mutual case.
	var priv UtilizationRow
	for _, r := range nm.Utilization {
		if r.Label == "Private CA" {
			priv = r
		}
	}
	if priv.SANShare() < 0.05 || priv.SANShare() > 0.20 {
		t.Errorf("non-mutual private SAN share = %.4f, want ~0.105", priv.SANShare())
	}
}

func TestSANTypesDisparity(t *testing.T) {
	a := analysis(t)
	s := a.SANTypes
	if s.Total == 0 {
		t.Fatal("no certs")
	}
	// §6.1.2: IP / Email / URI SAN types are ~99% empty; DNS is the
	// (comparatively) populated one.
	if s.EmptyShare(s.IP) < 0.95 || s.EmptyShare(s.Email) < 0.95 || s.EmptyShare(s.URI) < 0.95 {
		t.Fatalf("explicit SAN types should be ~99%% empty: ip=%f email=%f uri=%f",
			s.EmptyShare(s.IP), s.EmptyShare(s.Email), s.EmptyShare(s.URI))
	}
	if s.DNS <= s.IP {
		t.Fatal("SAN DNS should dominate the explicit types")
	}
}

func TestDurations(t *testing.T) {
	a := analysis(t)
	d := a.Durations
	if d.Client.Total() == 0 || d.Server.Total() == 0 {
		t.Fatal("no durations")
	}
	// Globus's 14-day certs give a short-lived mass; campus certs span
	// the study. Quantiles must be monotone with a long tail.
	q := d.ClientQuantiles
	if q[0] > q[1] || q[1] > q[2] || q[2] > q[3] {
		t.Fatalf("quantiles not monotone: %v", q)
	}
	if q[3] < 600 {
		t.Fatalf("max client activity = %d days, want ~700 (whole study)", q[3])
	}
}

func TestVersionMix(t *testing.T) {
	a := analysis(t)
	v := a.Versions
	// §3.3: TLS 1.3 is ~40.86% of connections.
	if s := v.Share("TLSv13"); s < 0.30 || s > 0.50 {
		t.Fatalf("TLS 1.3 share = %f, want ~0.41", s)
	}
	if s := v.Share("TLSv12"); s < 0.45 {
		t.Fatalf("TLS 1.2 share = %f", s)
	}
}

func TestConcernsAggregation(t *testing.T) {
	a := analysis(t)
	c := a.Concerns
	if c.MutualTotal == 0 || c.AffectedTotal == 0 {
		t.Fatal("concerns empty")
	}
	if c.AffectedTotal > c.MutualTotal {
		t.Fatal("union exceeds denominator")
	}
	// Every individual concern is bounded by the union only when disjoint;
	// at minimum each must be <= MutualTotal and the union >= the largest.
	max := c.MissingClientIssuer
	for _, v := range []int64{c.DummyIssuer, c.SerialCollision, c.SharedSameConn,
		c.IncorrectDates, c.ExpiredClientCert, c.WeakKey} {
		if v > c.MutualTotal {
			t.Fatalf("concern %d exceeds total %d", v, c.MutualTotal)
		}
		if v > max {
			max = v
		}
	}
	if c.AffectedTotal < max {
		t.Fatalf("union %d below largest concern %d", c.AffectedTotal, max)
	}
	// The §5 practices are a visible minority, not the whole population.
	if share := c.AffectedShare(); share <= 0 || share > 0.8 {
		t.Fatalf("affected share = %f", share)
	}
}
