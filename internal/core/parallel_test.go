package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// parallelBuild is the seeded dataset shared by the determinism tests.
var parallelBuild *workload.Build

func parallelInput(t *testing.T, workers int) *Input {
	t.Helper()
	if parallelBuild == nil {
		cfg := workload.Default()
		cfg.CertScale = 1000
		parallelBuild = workload.Generate(cfg)
	}
	in := inputFromBuild(parallelBuild)
	in.Workers = workers
	return in
}

// TestParallelDeterminism asserts the tentpole guarantee: the sharded
// preprocess + analysis fan-out produce an Analysis deeply equal to the
// serial legacy path, for several worker counts, on the same seeded
// build. Run under -race this also exercises the parallel pipeline for
// data races.
func TestParallelDeterminism(t *testing.T) {
	serial := Run(parallelInput(t, 1))
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := Run(parallelInput(t, workers))
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("Workers=%d analysis differs from the serial pipeline", workers)
		}
	}
}

// TestCacheDeterminism asserts the hot-path caches (PSL split memo,
// issuer-classification memo) never change results.
func TestCacheDeterminism(t *testing.T) {
	cached := Run(parallelInput(t, 1))
	in := parallelInput(t, 1)
	in.NoCache = true
	if uncached := Run(in); !reflect.DeepEqual(cached, uncached) {
		t.Fatal("NoCache analysis differs from the cached pipeline")
	}
}

// TestParallelPreprocessRace drives the sharded preprocess and fan-out
// with more workers than GOMAXPROCS so go test -race interleaves them
// aggressively even on small machines.
func TestParallelPreprocessRace(t *testing.T) {
	a := Run(parallelInput(t, 8))
	if a.CertStats.Row("Total").Total == 0 {
		t.Fatal("parallel pipeline produced an empty analysis")
	}
	if a.Preprocess.TLS13ConnShare <= 0 {
		t.Fatal("parallel pipeline lost the TLS 1.3 weight accumulation")
	}
}

// TestWorkerCount pins the Workers-option semantics: 0 and negatives
// expand to GOMAXPROCS, positives are literal.
func TestWorkerCount(t *testing.T) {
	if got, want := workerCount(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workerCount(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got, want := workerCount(-3), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workerCount(-3) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := workerCount(5); got != 5 {
		t.Fatalf("workerCount(5) = %d", got)
	}
}

// TestAssocIndex pins the map-based Associate against the documented
// precedence and case-insensitivity of the original linear scans.
func TestAssocIndex(t *testing.T) {
	m := &AssocMap{
		HealthSLDs:     []string{"health.edu", "shared.org"},
		UniversitySLDs: []string{"Campus.EDU", "shared.org"},
		VPNHostPrefix:  "vpn.",
		LocalOrgSLDs:   []string{"local.org"},
		ThirdPartySLDs: []string{"vendor.com"},
		GlobusSLDs:     []string{"globus.org"},
	}
	cases := []struct {
		host, sld, want string
	}{
		{"VPN.campus.edu", "campus.edu", AssocVPN},
		{"www.health.edu", "health.edu", AssocHealth},
		{"www.shared.org", "shared.org", AssocHealth}, // health precedes university
		{"www.CAMPUS.edu", "CAMPUS.edu", AssocUniversity},
		{"x.local.org", "local.org", AssocLocalOrg},
		{"x.vendor.com", "vendor.com", AssocThirdParty},
		{"x.globus.org", "globus.org", AssocGlobus},
		{"x.other.net", "other.net", AssocUnknown},
		{"", "", AssocUnknown},
	}
	for _, c := range cases {
		if got := m.Associate(c.host, c.sld); got != c.want {
			t.Errorf("Associate(%q, %q) = %q, want %q", c.host, c.sld, got, c.want)
		}
	}
}

// TestRunAllMatchesIndividual ensures the fan-out driver assembles the
// same Analysis as calling each pipeline stage by hand.
func TestRunAllMatchesIndividual(t *testing.T) {
	in := parallelInput(t, 4)
	p := NewPipeline(in)
	fanned := p.RunAll()
	if fanned.Versions == nil || fanned.Concerns == nil || fanned.Serials == nil {
		t.Fatal("RunAll left analysis fields unset")
	}
	if !reflect.DeepEqual(fanned.Versions, p.Versions()) {
		t.Fatal("fanned-out Versions differs from direct call")
	}
	if !reflect.DeepEqual(fanned.Inbound, p.Inbound()) {
		t.Fatal("fanned-out Inbound differs from direct call")
	}
}
