package core

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/truststore"
)

// CertStatsReport is Table 1: unique-certificate counts by role and CA
// class, with the mutual-TLS participation share of each category.
type CertStatsReport struct {
	Rows []CertStatsRow
}

// CertStatsRow is one Table 1 row.
type CertStatsRow struct {
	Label  string
	Total  int
	Mutual int
}

// MutualShare is the row's mTLS participation ratio.
func (r CertStatsRow) MutualShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Mutual) / float64(r.Total)
}

func (e *enriched) certStats() *CertStatsReport {
	type bucket struct{ total, mutual int }
	var (
		all, server, client                          bucket
		serverPub, serverPriv, clientPub, clientPriv bucket
	)
	for _, u := range e.usage {
		mut := u.mutualServer || u.mutualClient
		all.total++
		if mut {
			all.mutual++
		}
		if u.asServer {
			server.total++
			pub := u.class == truststore.Public
			if pub {
				serverPub.total++
			} else {
				serverPriv.total++
			}
			if u.mutualServer {
				server.mutual++
				if pub {
					serverPub.mutual++
				} else {
					serverPriv.mutual++
				}
			}
		}
		if u.asClient {
			client.total++
			pub := u.class == truststore.Public
			if pub {
				clientPub.total++
			} else {
				clientPriv.total++
			}
			if u.mutualClient {
				client.mutual++
				if pub {
					clientPub.mutual++
				} else {
					clientPriv.mutual++
				}
			}
		}
	}
	row := func(label string, b bucket) CertStatsRow {
		return CertStatsRow{Label: label, Total: b.total, Mutual: b.mutual}
	}
	return &CertStatsReport{Rows: []CertStatsRow{
		row("Total", all),
		row("Server", server),
		row("Server - Public CA", serverPub),
		row("Server - Private CA", serverPriv),
		row("Client", client),
		row("Client - Public CA", clientPub),
		row("Client - Private CA", clientPriv),
	}}
}

// Row returns the named row (nil-safe zero row when absent).
func (r *CertStatsReport) Row(label string) CertStatsRow {
	for _, row := range r.Rows {
		if row.Label == label {
			return row
		}
	}
	return CertStatsRow{Label: label}
}

// PrevalenceReport is Figure 1: monthly mTLS share of all TLS
// connections, overall and split by direction.
type PrevalenceReport struct {
	Overall  []stats.Point
	Inbound  []stats.Point
	Outbound []stats.Point
}

// FirstShare/LastShare are the 1.99% → 3.61% anchors.
func (p *PrevalenceReport) FirstShare() float64 {
	if len(p.Overall) == 0 {
		return 0
	}
	return p.Overall[0].Ratio()
}

// LastShare returns the final month's share.
func (p *PrevalenceReport) LastShare() float64 {
	if len(p.Overall) == 0 {
		return 0
	}
	return p.Overall[len(p.Overall)-1].Ratio()
}

func (e *enriched) prevalence() *PrevalenceReport {
	overall := stats.NewMonthSeries()
	in := stats.NewMonthSeries()
	out := stats.NewMonthSeries()
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.rec.Established {
			continue
		}
		key := stats.MonthKey(cv.rec.TS.Format("2006-01"))
		var num int64
		if cv.mutual {
			num = cv.rec.Weight
		}
		overall.Add(key, num, cv.rec.Weight)
		switch cv.dir {
		case netsim.Inbound:
			in.Add(key, num, cv.rec.Weight)
		case netsim.Outbound:
			out.Add(key, num, cv.rec.Weight)
		}
	}
	return &PrevalenceReport{
		Overall:  overall.Points(),
		Inbound:  in.Points(),
		Outbound: out.Points(),
	}
}
