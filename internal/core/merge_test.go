package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/workload"
)

// mergeBuild is a small seeded dataset shared by the merge tests.
var mergeBuild *workload.Build

func mergeInput(t *testing.T) *Input {
	t.Helper()
	if mergeBuild == nil {
		cfg := workload.Default()
		cfg.Seed = 20240504
		cfg.CertScale = 300
		mergeBuild = workload.Generate(cfg)
	}
	return inputFromBuild(mergeBuild)
}

// mergeCerts orders the build's roster deterministically.
func mergeCerts(b *workload.Build) []*certmodel.CertInfo {
	certs := make([]*certmodel.CertInfo, 0, len(b.Raw.Certs))
	for _, c := range b.Raw.Certs {
		certs = append(certs, c)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Fingerprint < certs[j].Fingerprint })
	return certs
}

// runBuilder materializes a builder under an empty preprocess report,
// the common footing the merge tests compare on.
func runBuilder(b *Builder) *Analysis {
	return b.Pipeline(&PreprocessReport{}).RunAll()
}

// TestMergeShardsZeroShards: no shards at all is a valid (empty)
// deployment — every report materializes without panicking.
func TestMergeShardsZeroShards(t *testing.T) {
	in := mergeInput(t)
	a := runBuilder(MergeShards(in, nil, nil))
	if got := a.CertStats.Row("Total").Total; got != 0 {
		t.Errorf("zero shards produced %d certificates", got)
	}
}

// TestMergeShardsAllEmpty: shards that admitted nothing merge to the
// same empty analysis as no shards.
func TestMergeShardsAllEmpty(t *testing.T) {
	in := mergeInput(t)
	empty := runBuilder(MergeShards(in, nil, nil))
	got := runBuilder(MergeShards(in, []ShardState{{}, {}, {}}, nil))
	if !reflect.DeepEqual(empty, got) {
		t.Error("three empty shards differ from zero shards")
	}
}

// TestMergeShardsSingleShard: one shard carrying the whole stream is a
// passthrough — the merge equals a builder fed the same events
// directly.
func TestMergeShardsSingleShard(t *testing.T) {
	in := mergeInput(t)
	certs := mergeCerts(mergeBuild)

	direct := NewBuilder(in)
	for _, c := range certs {
		direct.AddCert(c)
	}
	for i := range mergeBuild.Raw.Conns {
		direct.AddConn(&mergeBuild.Raw.Conns[i])
	}

	shard := ShardState{Certs: certs}
	for i := range mergeBuild.Raw.Conns {
		shard.Conns = append(shard.Conns, mergeBuild.Raw.Conns[i])
		shard.Seqs = append(shard.Seqs, uint64(i))
	}
	got := runBuilder(MergeShards(in, []ShardState{shard}, nil))
	if !reflect.DeepEqual(runBuilder(direct), got) {
		t.Error("single-shard merge differs from a directly fed builder")
	}
}

// TestMergeShardsInterleaved: connections round-robined across shards
// replay in global sequence order, reproducing the direct builder.
func TestMergeShardsInterleaved(t *testing.T) {
	in := mergeInput(t)
	certs := mergeCerts(mergeBuild)

	direct := NewBuilder(in)
	for _, c := range certs {
		direct.AddCert(c)
	}
	for i := range mergeBuild.Raw.Conns {
		direct.AddConn(&mergeBuild.Raw.Conns[i])
	}

	shards := make([]ShardState, 3)
	shards[0].Certs = certs // roster rides one shard; conns spread over all
	for i := range mergeBuild.Raw.Conns {
		s := &shards[i%3]
		s.Conns = append(s.Conns, mergeBuild.Raw.Conns[i])
		s.Seqs = append(s.Seqs, uint64(i))
	}
	got := runBuilder(MergeShards(in, shards, nil))
	if !reflect.DeepEqual(runBuilder(direct), got) {
		t.Error("interleaved three-shard merge differs from a directly fed builder")
	}
}

// TestMergeShardsDuplicateRoster: a certificate fanned out to several
// shards is admitted once, first observation wins — a conflicting later
// copy (same fingerprint, different contents) is ignored.
func TestMergeShardsDuplicateRoster(t *testing.T) {
	in := mergeInput(t)
	certs := mergeCerts(mergeBuild)

	imposter := *certs[0]
	imposter.SubjectCN = "imposter.example"
	imposter.IssuerOrg = "Imposter CA"

	base := ShardState{Certs: certs}
	want := runBuilder(MergeShards(in, []ShardState{base}, nil))

	// The duplicate roster entries — one identical, one conflicting —
	// land on a second shard and must change nothing.
	dup := ShardState{Certs: []*certmodel.CertInfo{certs[0], &imposter}}
	b := MergeShards(in, []ShardState{base, dup}, nil)
	if c := b.e.ds.Cert(certs[0].Fingerprint); c == nil || c.SubjectCN != certs[0].SubjectCN {
		t.Error("later duplicate overwrote the first-observed certificate")
	}
	if !reflect.DeepEqual(want, runBuilder(b)) {
		t.Error("duplicate roster fingerprints changed the merged analysis")
	}

	// Order inverted: the imposter's shard comes first, so its copy of
	// the fingerprint wins — the guarantee is "first observation", not
	// "majority".
	b2 := MergeShards(in, []ShardState{{Certs: []*certmodel.CertInfo{&imposter}}, base}, nil)
	if c := b2.e.ds.Cert(certs[0].Fingerprint); c == nil || c.SubjectCN != "imposter.example" {
		t.Error("imposter-first merge did not keep the first-observed copy")
	}
}

// TestMergeShardsExcludeFilter: the §3.2 exclusion hook keeps excluded
// certificates out of the roster and drops connections whose server
// leaf is excluded.
func TestMergeShardsExcludeFilter(t *testing.T) {
	in := mergeInput(t)
	certs := mergeCerts(mergeBuild)

	// Pick a fingerprint actually used as a server leaf so the conn
	// filter is exercised.
	var victim ids.Fingerprint
	for i := range mergeBuild.Raw.Conns {
		if sl := mergeBuild.Raw.Conns[i].ServerLeaf(); sl != "" {
			victim = sl
			break
		}
	}
	if victim == "" {
		t.Fatal("no connection with a server leaf in the build")
	}

	shard := ShardState{Certs: certs}
	for i := range mergeBuild.Raw.Conns {
		shard.Conns = append(shard.Conns, mergeBuild.Raw.Conns[i])
		shard.Seqs = append(shard.Seqs, uint64(i))
	}
	excl := func(fp ids.Fingerprint) bool { return fp == victim }
	merged := MergeShards(in, []ShardState{shard}, excl)
	if merged.HasCert(victim) {
		t.Error("excluded certificate survived in the roster")
	}

	kept := 0
	for i := range mergeBuild.Raw.Conns {
		if mergeBuild.Raw.Conns[i].ServerLeaf() != victim {
			kept++
		}
	}
	if merged.Conns() != kept {
		t.Errorf("merge kept %d conns, want %d after excluding %s", merged.Conns(), kept, victim)
	}
}
