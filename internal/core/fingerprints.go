package core

import (
	"sort"

	"repro/internal/ids"
)

// FingerprintReport is the ClientHello fingerprint-prevalence report: the
// connection-weighted JA3/JA4 mix, joined against client-certificate
// identity. The join is the privacy observation the paper's §6 findings
// imply for the client side of the handshake: a client whose certificate
// carries a stable identity AND whose hello shape is distinctive is
// linkable across destinations from passive observation alone —
// fingerprint columns only exist where the tap recorded them, so rows
// cover the fingerprinted subset.
type FingerprintReport struct {
	// Rows, one per distinct (JA3, JA4) pair, ordered by weighted
	// connection volume (ties broken by JA3 for determinism).
	Rows []FingerprintRow
	// Total is the weighted established-connection volume;
	// Fingerprinted is the portion carrying fingerprint columns.
	Total, Fingerprinted int64
}

// FingerprintRow aggregates one hello shape.
type FingerprintRow struct {
	JA3, JA4 string
	// Conns is the weighted connection volume with this hello shape;
	// MutualConns is the portion that also presented a client certificate.
	Conns, MutualConns int64
	// ClientCerts counts distinct client leaf certificates behind the
	// shape; small values mean the hello pins down the credential.
	ClientCerts int
	// TopIssuer is the most common client-certificate issuer org ("" when
	// the shape never appears on mutual connections).
	TopIssuer string
	// SNIs counts distinct server names contacted with this shape.
	SNIs int
}

// MutualShare is the fraction of a shape's volume that is mutual TLS.
func (r *FingerprintRow) MutualShare() float64 {
	if r.Conns == 0 {
		return 0
	}
	return float64(r.MutualConns) / float64(r.Conns)
}

// FingerprintedShare is the fraction of all volume carrying fingerprints.
func (r *FingerprintReport) FingerprintedShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Fingerprinted) / float64(r.Total)
}

func (e *enriched) fingerprints() *FingerprintReport {
	type acc struct {
		row     FingerprintRow
		certs   map[ids.Fingerprint]struct{}
		issuers map[string]int64
		snis    map[string]struct{}
	}
	byShape := map[string]*acc{}
	rep := &FingerprintReport{}
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.rec.Established {
			continue
		}
		rep.Total += cv.rec.Weight
		if cv.rec.JA3 == "" && cv.rec.JA4 == "" {
			continue
		}
		rep.Fingerprinted += cv.rec.Weight
		key := cv.rec.JA3 + "\x00" + cv.rec.JA4
		a := byShape[key]
		if a == nil {
			a = &acc{
				row:     FingerprintRow{JA3: cv.rec.JA3, JA4: cv.rec.JA4},
				certs:   map[ids.Fingerprint]struct{}{},
				issuers: map[string]int64{},
				snis:    map[string]struct{}{},
			}
			byShape[key] = a
		}
		a.row.Conns += cv.rec.Weight
		if cv.rec.SNI != "" {
			a.snis[cv.rec.SNI] = struct{}{}
		}
		if cv.clientCert != nil {
			a.row.MutualConns += cv.rec.Weight
			a.certs[cv.clientCert.Fingerprint] = struct{}{}
			a.issuers[cv.clientCert.IssuerOrg] += cv.rec.Weight
		}
	}
	for _, a := range byShape {
		a.row.ClientCerts = len(a.certs)
		a.row.SNIs = len(a.snis)
		var bestW int64 = -1
		for org, w := range a.issuers {
			if w > bestW || (w == bestW && org < a.row.TopIssuer) {
				a.row.TopIssuer, bestW = org, w
			}
		}
		rep.Rows = append(rep.Rows, a.row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Conns != rep.Rows[j].Conns {
			return rep.Rows[i].Conns > rep.Rows[j].Conns
		}
		return rep.Rows[i].JA3 < rep.Rows[j].JA3
	})
	return rep
}
