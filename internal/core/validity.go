package core

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/truststore"
)

// BadDatesReport is Figure 3 and Appendix C (Tables 11–12): certificates
// whose not_valid_before does not precede not_valid_after, observed in
// successfully established connections.
type BadDatesReport struct {
	Rows []BadDatesRow
	// BothEndpoints: groups where client AND server certs have incorrect
	// dates in the same connections (idrive.com, SDS).
	BothEndpoints []BadDatesBothRow
	// Certs is the distinct incorrect-date certificate count.
	Certs int
}

// BadDatesRow groups by (SLD, side, issuer).
type BadDatesRow struct {
	SLD                         string
	Side                        string // "client"/"server"
	IssuerKey                   string
	NotBeforeYear, NotAfterYear int
	Clients                     int
	DurationDays                int64
}

// BadDatesBothRow is one Table 12 row.
type BadDatesBothRow struct {
	SLD          string
	ClientIssuer string
	ServerIssuer string
	Clients      int
	DurationDays int64
}

func (e *enriched) badDates() *BadDatesReport {
	type key struct {
		sld, side, issuer string
		nb, na            int
	}
	type agg struct {
		clients     map[string]bool
		first, last int64
	}
	groups := map[key]*agg{}
	type bkey struct{ sld, ci, si string }
	both := map[bkey]*agg{}
	certSet := map[string]bool{}

	observe := func(m map[key]*agg, k key, ip string, ts int64) {
		a, ok := m[k]
		if !ok {
			a = &agg{clients: map[string]bool{}, first: 1 << 62}
			m[k] = a
		}
		a.clients[ip] = true
		if ts < a.first {
			a.first = ts
		}
		if ts > a.last {
			a.last = ts
		}
	}

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual {
			continue
		}
		sld := cv.rawSLD()
		ts := cv.rec.TS.Unix()
		cliBad := cv.clientCert != nil && cv.clientCert.HasIncorrectDates()
		srvBad := cv.serverCert != nil && cv.serverCert.HasIncorrectDates()
		if cliBad {
			c := cv.clientCert
			certSet[string(c.Fingerprint)] = true
			observe(groups, key{sld, "client", c.IssuerKey(), c.NotBefore.Year(), c.NotAfter.Year()}, cv.rec.OrigIP, ts)
		}
		if srvBad {
			c := cv.serverCert
			certSet[string(c.Fingerprint)] = true
			observe(groups, key{sld, "server", c.IssuerKey(), c.NotBefore.Year(), c.NotAfter.Year()}, cv.rec.OrigIP, ts)
		}
		if cliBad && srvBad {
			bk := bkey{sld, cv.clientCert.IssuerKey(), cv.serverCert.IssuerKey()}
			a, ok := both[bk]
			if !ok {
				a = &agg{clients: map[string]bool{}, first: 1 << 62}
				both[bk] = a
			}
			a.clients[cv.rec.OrigIP] = true
			if ts < a.first {
				a.first = ts
			}
			if ts > a.last {
				a.last = ts
			}
		}
	}

	rep := &BadDatesReport{Certs: len(certSet)}
	for k, a := range groups {
		rep.Rows = append(rep.Rows, BadDatesRow{
			SLD: k.sld, Side: k.side, IssuerKey: k.issuer,
			NotBeforeYear: k.nb, NotAfterYear: k.na,
			Clients:      len(a.clients),
			DurationDays: (a.last-a.first)/86400 + 1,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Clients != rep.Rows[j].Clients {
			return rep.Rows[i].Clients > rep.Rows[j].Clients
		}
		a, b := rep.Rows[i], rep.Rows[j]
		if a.SLD != b.SLD {
			return a.SLD < b.SLD
		}
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.IssuerKey != b.IssuerKey {
			return a.IssuerKey < b.IssuerKey
		}
		if a.NotBeforeYear != b.NotBeforeYear {
			return a.NotBeforeYear < b.NotBeforeYear
		}
		return a.NotAfterYear < b.NotAfterYear
	})
	for k, a := range both {
		rep.BothEndpoints = append(rep.BothEndpoints, BadDatesBothRow{
			SLD: k.sld, ClientIssuer: k.ci, ServerIssuer: k.si,
			Clients:      len(a.clients),
			DurationDays: (a.last-a.first)/86400 + 1,
		})
	}
	sort.Slice(rep.BothEndpoints, func(i, j int) bool {
		if rep.BothEndpoints[i].Clients != rep.BothEndpoints[j].Clients {
			return rep.BothEndpoints[i].Clients > rep.BothEndpoints[j].Clients
		}
		a, b := rep.BothEndpoints[i], rep.BothEndpoints[j]
		if a.SLD != b.SLD {
			return a.SLD < b.SLD
		}
		if a.ClientIssuer != b.ClientIssuer {
			return a.ClientIssuer < b.ClientIssuer
		}
		return a.ServerIssuer < b.ServerIssuer
	})
	return rep
}

// ValidityReport is Figure 4: client-certificate validity periods by
// issuer category and direction, excluding incorrect-date certs.
type ValidityReport struct {
	// InboundHist/OutboundHist bucket validity days: ≤90, ≤398, ≤825,
	// ≤3650, ≤10000, ≤40000, >40000.
	InboundHist  *stats.Histogram
	OutboundHist *stats.Histogram
	// ExtremeCount: certs with 10,000–40,000-day validity (paper: 7,911),
	// with the issuer-category mix.
	ExtremeCount      int
	ExtremeCategories []stats.KV
	ExtremePublic     int
	// MaxValidityDays and its server SLD (paper: 83,432 days, tmdxdev.com).
	MaxValidityDays int64
	MaxValiditySLD  string
}

// validityBounds are the Figure 4 histogram bucket bounds.
var validityBounds = []int64{90, 398, 825, 3650, 10000, 40000}

func (e *enriched) validity() *ValidityReport {
	rep := &ValidityReport{
		InboundHist:  stats.NewHistogram(validityBounds...),
		OutboundHist: stats.NewHistogram(validityBounds...),
	}
	cats := stats.NewCounter()
	// Track per-cert direction (first seen wins) to bucket histograms.
	seen := map[string]bool{}
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || cv.clientCert == nil {
			continue
		}
		c := cv.clientCert
		if c.HasIncorrectDates() {
			continue
		}
		if seen[string(c.Fingerprint)] {
			continue
		}
		seen[string(c.Fingerprint)] = true
		u := e.usageOf(c, cv.rec.ClientChain)
		days := c.ValidityDays()
		switch cv.dir {
		case netsim.Inbound:
			rep.InboundHist.Observe(days, 1)
		case netsim.Outbound:
			rep.OutboundHist.Observe(days, 1)
		}
		if days >= 10000 && days <= 40000 {
			rep.ExtremeCount++
			cats.Add(u.category.String(), 1)
			if u.class == truststore.Public {
				rep.ExtremePublic++
			}
		}
		if days > rep.MaxValidityDays {
			rep.MaxValidityDays = days
			rep.MaxValiditySLD = cv.rawSLD()
		}
	}
	rep.ExtremeCategories = cats.Top(5)
	return rep
}

// ExpiredReport is Figure 5: client certificates that were already expired
// when observed in successfully established connections.
type ExpiredReport struct {
	Inbound  ExpiredDirection
	Outbound ExpiredDirection
}

// ExpiredDirection is one subfigure.
type ExpiredDirection struct {
	// Points: one per expired client certificate.
	Points []ExpiredPoint
	// PublicCerts/PrivateCerts are the marginal counts.
	PublicCerts, PrivateCerts int
	// AssocShares (inbound): association mix of expired-cert conns.
	AssocShares []stats.KV
	// AppleCluster (outbound): certs issued by Apple ~1,000 days expired.
	AppleCluster int
	// MicrosoftCount (outbound).
	MicrosoftCount int
}

// ExpiredPoint is one certificate.
type ExpiredPoint struct {
	DaysExpiredAtFirstUse int64
	DurationDays          int64
	Public                bool
	IssuerOrg             string
	SLD                   string
}

func (e *enriched) expired() *ExpiredReport {
	type state struct {
		point   ExpiredPoint
		inbound bool
	}
	certs := map[string]*state{}
	inAssoc := stats.NewCounter()

	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual || cv.clientCert == nil {
			continue
		}
		c := cv.clientCert
		if c.HasIncorrectDates() || !c.ExpiredAt(cv.rec.TS) {
			continue
		}
		if cv.dir == netsim.Inbound {
			inAssoc.Add(cv.assoc, cv.rec.Weight)
		}
		key := string(c.Fingerprint)
		st, ok := certs[key]
		if !ok {
			u := e.usageOf(c, cv.rec.ClientChain)
			st = &state{
				point: ExpiredPoint{
					DaysExpiredAtFirstUse: c.DaysExpiredAt(u.firstSeen),
					DurationDays:          u.durationDays(),
					Public:                u.class == truststore.Public,
					IssuerOrg:             c.IssuerOrg,
					SLD:                   cv.rawSLD(),
				},
				inbound: cv.dir == netsim.Inbound,
			}
			certs[key] = st
		}
	}

	rep := &ExpiredReport{}
	for _, st := range certs {
		dir := &rep.Outbound
		if st.inbound {
			dir = &rep.Inbound
		}
		dir.Points = append(dir.Points, st.point)
		if st.point.Public {
			dir.PublicCerts++
		} else {
			dir.PrivateCerts++
		}
		if !st.inbound {
			if st.point.IssuerOrg == "Apple Inc." &&
				st.point.DaysExpiredAtFirstUse >= 900 && st.point.DaysExpiredAtFirstUse <= 1100 {
				dir.AppleCluster++
			}
			if st.point.IssuerOrg == "Microsoft Corporation" {
				dir.MicrosoftCount++
			}
		}
	}
	sort.Slice(rep.Inbound.Points, lessExpiredPoints(rep.Inbound.Points))
	sort.Slice(rep.Outbound.Points, lessExpiredPoints(rep.Outbound.Points))
	rep.Inbound.AssocShares = inAssoc.Top(5)
	return rep
}

// lessExpiredPoints orders Figure 5 points by a total key so the scatter
// is identical however the source map was iterated.
func lessExpiredPoints(ps []ExpiredPoint) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.DaysExpiredAtFirstUse != b.DaysExpiredAtFirstUse {
			return a.DaysExpiredAtFirstUse < b.DaysExpiredAtFirstUse
		}
		if a.DurationDays != b.DurationDays {
			return a.DurationDays < b.DurationDays
		}
		if a.SLD != b.SLD {
			return a.SLD < b.SLD
		}
		if a.IssuerOrg != b.IssuerOrg {
			return a.IssuerOrg < b.IssuerOrg
		}
		return !a.Public && b.Public
	}
}
