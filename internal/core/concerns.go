package core

import (
	"repro/internal/classify"
)

// ConcernsReport is the §5 takeaway: the volume of mutual-TLS connections
// affected by each concerning practice, and the union ("prompting a
// critical reevaluation of client-side authentication validation
// procedures in over 13 million connections").
type ConcernsReport struct {
	// Per-concern connection weights (a connection can appear in several).
	MissingClientIssuer int64
	DummyIssuer         int64
	SerialCollision     int64
	SharedSameConn      int64
	IncorrectDates      int64
	ExpiredClientCert   int64
	WeakKey             int64
	// AffectedTotal is the union weight across all concerns.
	AffectedTotal int64
	// MutualTotal is the denominator (established mutual conns).
	MutualTotal int64
}

// AffectedShare is the union's share of mutual-TLS connections.
func (r *ConcernsReport) AffectedShare() float64 {
	if r.MutualTotal == 0 {
		return 0
	}
	return float64(r.AffectedTotal) / float64(r.MutualTotal)
}

func (e *enriched) concerns() *ConcernsReport {
	// Pre-identify collided (issuer, serial) pairs once.
	type skey struct{ issuer, serial string }
	counts := map[skey]map[string]bool{}
	for _, u := range e.usage {
		if !u.mutualServer && !u.mutualClient {
			continue
		}
		k := skey{u.cert.IssuerKey(), u.cert.SerialHex}
		if counts[k] == nil {
			counts[k] = map[string]bool{}
		}
		counts[k][string(u.cert.Fingerprint)] = true
	}
	collided := func(issuer, serial string) bool {
		return len(counts[skey{issuer, serial}]) >= 2
	}

	rep := &ConcernsReport{}
	for i := range e.conns {
		cv := &e.conns[i]
		if !cv.mutual {
			continue
		}
		w := cv.rec.Weight
		rep.MutualTotal += w
		affected := false
		cli, srv := cv.clientCert, cv.serverCert

		if cli != nil {
			u := e.usageOf(cli, cv.rec.ClientChain)
			if u.category == classify.MissingIssuer {
				rep.MissingClientIssuer += w
				affected = true
			}
			if u.dummyIssuer {
				rep.DummyIssuer += w
				affected = true
			}
			if collided(cli.IssuerKey(), cli.SerialHex) {
				rep.SerialCollision += w
				affected = true
			}
			if cli.HasIncorrectDates() {
				rep.IncorrectDates += w
				affected = true
			} else if cli.ExpiredAt(cv.rec.TS) {
				rep.ExpiredClientCert += w
				affected = true
			}
			if cli.WeakKey() {
				rep.WeakKey += w
				affected = true
			}
		}
		if srv != nil {
			u := e.usageOf(srv, cv.rec.ServerChain)
			if u.dummyIssuer {
				rep.DummyIssuer += w
				affected = true
			}
			if srv.HasIncorrectDates() {
				rep.IncorrectDates += w
				affected = true
			}
			if collided(srv.IssuerKey(), srv.SerialHex) {
				rep.SerialCollision += w
				affected = true
			}
		}
		if cv.rec.ServerLeaf() != "" && cv.rec.ServerLeaf() == cv.rec.ClientLeaf() {
			rep.SharedSameConn += w
			affected = true
		}
		if affected {
			rep.AffectedTotal += w
		}
	}
	return rep
}
