// Package core implements the paper's primary contribution: the
// connection-oriented joint analysis of ssl.log and x509.log that produces
// every table and figure of the evaluation — prevalence and services (§4),
// certificate-practice findings (§5), and the CN/SAN information study
// (§6) — on top of the substrate packages (zeek, truststore, ct,
// interception, classify, infotype, netsim).
package core

import (
	"strings"
	"time"

	"repro/internal/certmodel"
	"repro/internal/classify"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/infotype"
	"repro/internal/interception"
	"repro/internal/netsim"
	"repro/internal/psl"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// Input is everything the pipeline needs. The facade package adapts
// workload.Build into this.
type Input struct {
	// Raw is the dataset before preprocessing.
	Raw *zeek.Dataset
	// CT feeds the §3.2 interception filter.
	CT *ct.Log
	// Bundle classifies public vs private issuers.
	Bundle *truststore.Bundle
	// CampusIssuers drive the §6.1.1 user-account rule.
	CampusIssuers []string
	// Assoc maps SLDs to the Table 3 server associations.
	Assoc AssocMap
	// Plan classifies connection direction.
	Plan *netsim.Plan
	// Months is the study length.
	Months int
}

// AssocMap is the paper's manual SLD categorization (§4.2).
type AssocMap struct {
	HealthSLDs     []string
	UniversitySLDs []string
	VPNHostPrefix  string
	LocalOrgSLDs   []string
	ThirdPartySLDs []string
	GlobusSLDs     []string
}

// Association labels (Table 3 rows).
const (
	AssocHealth     = "University Health"
	AssocUniversity = "University Server"
	AssocVPN        = "University VPN"
	AssocLocalOrg   = "Local Organization"
	AssocThirdParty = "Third Party Services"
	AssocGlobus     = "Globus"
	AssocUnknown    = "Unknown"
)

// Associate classifies a connection's server side.
func (m *AssocMap) Associate(host, sld string) string {
	if m.VPNHostPrefix != "" && strings.HasPrefix(strings.ToLower(host), m.VPNHostPrefix) {
		return AssocVPN
	}
	if sld == "" {
		return AssocUnknown
	}
	switch {
	case contains(m.HealthSLDs, sld):
		return AssocHealth
	case contains(m.UniversitySLDs, sld):
		return AssocUniversity
	case contains(m.LocalOrgSLDs, sld):
		return AssocLocalOrg
	case contains(m.ThirdPartySLDs, sld):
		return AssocThirdParty
	case contains(m.GlobusSLDs, sld):
		return AssocGlobus
	default:
		return AssocUnknown
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

// connView is one enriched connection: the record plus everything the
// analyses derive from it once.
type connView struct {
	rec        *zeek.SSLRecord
	dir        netsim.Direction
	month      int
	sld        string
	tld        string
	assoc      string
	serverCert *certmodel.CertInfo
	clientCert *certmodel.CertInfo
	mutual     bool
}

// certUsage aggregates how one certificate was used across the dataset.
type certUsage struct {
	cert  *certmodel.CertInfo
	class truststore.Class
	// issuer category (classify package).
	category classify.Category

	asServer, asClient         bool
	mutualServer, mutualClient bool
	sharedSameConn             bool
	// dummyIssuer memoizes classify.IsDummyIssuer (fuzzy matching is too
	// expensive to repeat per connection).
	dummyIssuer bool

	firstSeen, lastSeen time.Time

	// Subnet spread for Table 6: /24s of the endpoint that presented it.
	serverSubnets map[ids.SubnetKey]struct{}
	clientSubnets map[ids.SubnetKey]struct{}
}

// durationDays is the paper's "duration of activity" (§5).
func (u *certUsage) durationDays() int64 {
	if u.firstSeen.IsZero() {
		return 0
	}
	return int64(u.lastSeen.Sub(u.firstSeen)/(24*time.Hour)) + 1
}

func (u *certUsage) observe(ts time.Time) {
	if u.firstSeen.IsZero() || ts.Before(u.firstSeen) {
		u.firstSeen = ts
	}
	if ts.After(u.lastSeen) {
		u.lastSeen = ts
	}
}

// enriched is the pipeline's working state after preprocessing.
type enriched struct {
	input *Input
	ds    *zeek.Dataset
	psl   *psl.List
	cls   *classify.Classifier
	info  *infotype.Classifier
	pre   *PreprocessReport
	conns []connView
	usage map[ids.Fingerprint]*certUsage
}

// PreprocessReport reproduces the §3.2 preprocessing statistics.
type PreprocessReport struct {
	// InterceptionIssuers found (paper: 186).
	InterceptionIssuers []string
	// ExcludedCerts removed (paper: 871,993 = 8.4%).
	ExcludedCerts int
	// ExcludedShare of the raw certificate population.
	ExcludedShare float64
	// RawCerts / RawConns before filtering.
	RawCerts, RawConns int
	// TLS13ConnShare is the §3.3 opacity share (of connection weight).
	TLS13ConnShare float64
}

// preprocess runs interception filtering and builds the enriched views.
func preprocess(in *Input) *enriched {
	e := &enriched{
		input: in,
		psl:   psl.Default(),
		cls:   classify.New(in.Bundle),
		info:  infotype.New(psl.Default(), in.CampusIssuers),
		usage: make(map[ids.Fingerprint]*certUsage),
	}

	det := &interception.Detector{Bundle: in.Bundle, CT: in.CT, PSL: e.psl, MinDomains: 2}
	res := det.Run(in.Raw)
	e.ds = interception.Filter(in.Raw, res)
	e.pre = &PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(len(in.Raw.Certs)),
		RawCerts:            len(in.Raw.Certs),
		RawConns:            len(in.Raw.Conns),
	}

	var tls13W, totalW int64
	e.conns = make([]connView, 0, len(e.ds.Conns))
	for i := range e.ds.Conns {
		rec := &e.ds.Conns[i]
		totalW += rec.Weight
		if rec.Version == "TLSv13" {
			tls13W += rec.Weight
		}
		cv := connView{
			rec:   rec,
			dir:   in.Plan.DirectionOf(rec.OrigIP, rec.RespIP),
			month: monthIndex(rec.TS),
		}
		split := e.psl.Split(rec.SNI)
		cv.sld = split.Registrable()
		cv.tld = split.TLD()
		// §4.2: when the SNI is absent, resolve server information from
		// the leaf certificates' SAN DNS / CN.
		cv.serverCert = e.ds.Cert(rec.ServerLeaf())
		cv.clientCert = e.ds.Cert(rec.ClientLeaf())
		if cv.sld == "" {
			cv.sld, cv.tld = e.resolveFromCerts(cv.serverCert, cv.clientCert)
		}
		cv.assoc = in.Assoc.Associate(rec.SNI, cv.sld)
		cv.mutual = rec.IsMutual() && rec.Established

		e.observeConn(&cv)
		e.conns = append(e.conns, cv)
	}
	if totalW > 0 {
		e.pre.TLS13ConnShare = float64(tls13W) / float64(totalW)
	}
	return e
}

// resolveFromCerts recovers SLD/TLD from certificate names when SNI is
// missing.
func (e *enriched) resolveFromCerts(server, client *certmodel.CertInfo) (string, string) {
	for _, c := range []*certmodel.CertInfo{server, client} {
		if c == nil {
			continue
		}
		for _, name := range append(append([]string(nil), c.SANDNS...), c.SubjectCN) {
			if r := e.psl.Split(name); r.Registrable() != "" {
				return r.Registrable(), r.TLD()
			}
		}
	}
	return "", ""
}

// observeConn updates per-certificate usage.
func (e *enriched) observeConn(cv *connView) {
	rec := cv.rec
	if cv.serverCert != nil {
		u := e.usageOf(cv.serverCert, rec.ServerChain)
		u.asServer = true
		if cv.mutual {
			u.mutualServer = true
		}
		u.observe(rec.TS)
		if u.serverSubnets == nil {
			u.serverSubnets = make(map[ids.SubnetKey]struct{})
		}
		u.serverSubnets[ids.SubnetOfString(rec.RespIP)] = struct{}{}
	}
	if cv.clientCert != nil {
		u := e.usageOf(cv.clientCert, rec.ClientChain)
		u.asClient = true
		if cv.mutual {
			u.mutualClient = true
		}
		u.observe(rec.TS)
		if u.clientSubnets == nil {
			u.clientSubnets = make(map[ids.SubnetKey]struct{})
		}
		u.clientSubnets[ids.SubnetOfString(rec.OrigIP)] = struct{}{}
	}
	if cv.mutual && rec.ServerLeaf() == rec.ClientLeaf() && cv.serverCert != nil {
		e.usageOf(cv.serverCert, rec.ServerChain).sharedSameConn = true
	}
}

func (e *enriched) usageOf(c *certmodel.CertInfo, chain []ids.Fingerprint) *certUsage {
	if u, ok := e.usage[c.Fingerprint]; ok {
		return u
	}
	var rest []ids.Fingerprint
	if len(chain) > 1 {
		rest = chain[1:]
	}
	u := &certUsage{
		cert:        c,
		class:       e.input.Bundle.ClassifyLeaf(c, rest),
		category:    e.cls.Category(c, rest),
		dummyIssuer: classify.IsDummyIssuer(c.IssuerOrg),
	}
	e.usage[c.Fingerprint] = u
	return u
}

// monthIndex maps a timestamp to its study-month offset.
func monthIndex(ts time.Time) int {
	y, m, _ := ts.Date()
	epoch := certmodel.StudyEpoch
	return (y-epoch.Year())*12 + int(m) - int(epoch.Month())
}
