// Package core implements the paper's primary contribution: the
// connection-oriented joint analysis of ssl.log and x509.log that produces
// every table and figure of the evaluation — prevalence and services (§4),
// certificate-practice findings (§5), and the CN/SAN information study
// (§6) — on top of the substrate packages (zeek, truststore, ct,
// interception, classify, infotype, netsim).
package core

import (
	"strings"
	"time"

	"repro/internal/certmodel"
	"repro/internal/classify"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/infotype"
	"repro/internal/interception"
	"repro/internal/netsim"
	"repro/internal/psl"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// Input is everything the pipeline needs. The facade package adapts
// workload.Build into this.
type Input struct {
	// Raw is the dataset before preprocessing.
	Raw *zeek.Dataset
	// CT feeds the §3.2 interception filter.
	CT *ct.Log
	// Bundle classifies public vs private issuers.
	Bundle *truststore.Bundle
	// CampusIssuers drive the §6.1.1 user-account rule.
	CampusIssuers []string
	// Assoc maps SLDs to the Table 3 server associations.
	Assoc AssocMap
	// Plan classifies connection direction.
	Plan *netsim.Plan
	// Months is the study length.
	Months int
	// Workers bounds pipeline concurrency: 0 selects one worker per CPU
	// (GOMAXPROCS), 1 forces the exact serial legacy path, and n>1 shards
	// preprocessing and fans the analyses out across n workers. Every
	// setting produces an identical Analysis.
	Workers int
	// NoCache disables the PSL-split and issuer-classification memos.
	// The caches never change results; the switch exists so the ablation
	// benchmarks can measure them.
	NoCache bool
}

// AssocMap is the paper's manual SLD categorization (§4.2).
type AssocMap struct {
	HealthSLDs     []string
	UniversitySLDs []string
	VPNHostPrefix  string
	LocalOrgSLDs   []string
	ThirdPartySLDs []string
	GlobusSLDs     []string
}

// Association labels (Table 3 rows).
const (
	AssocHealth     = "University Health"
	AssocUniversity = "University Server"
	AssocVPN        = "University VPN"
	AssocLocalOrg   = "Local Organization"
	AssocThirdParty = "Third Party Services"
	AssocGlobus     = "Globus"
	AssocUnknown    = "Unknown"
)

// Associate classifies a connection's server side.
func (m *AssocMap) Associate(host, sld string) string {
	return m.index().associate(host, sld)
}

// assocIndex is the hot-path form of AssocMap: one lowercase-keyed map
// lookup per connection instead of a linear scan over every SLD list.
type assocIndex struct {
	vpnPrefix string
	bySLD     map[string]string
}

// index compiles the lookup once. Insertion order encodes Associate's
// category precedence: the first list claiming an SLD wins.
func (m *AssocMap) index() *assocIndex {
	ix := &assocIndex{
		vpnPrefix: strings.ToLower(m.VPNHostPrefix),
		bySLD:     make(map[string]string),
	}
	add := func(slds []string, label string) {
		for _, s := range slds {
			k := strings.ToLower(s)
			if _, ok := ix.bySLD[k]; !ok {
				ix.bySLD[k] = label
			}
		}
	}
	add(m.HealthSLDs, AssocHealth)
	add(m.UniversitySLDs, AssocUniversity)
	add(m.LocalOrgSLDs, AssocLocalOrg)
	add(m.ThirdPartySLDs, AssocThirdParty)
	add(m.GlobusSLDs, AssocGlobus)
	return ix
}

func (ix *assocIndex) associate(host, sld string) string {
	if p := ix.vpnPrefix; p != "" &&
		len(host) >= len(p) && strings.EqualFold(host[:len(p)], p) {
		return AssocVPN
	}
	if sld == "" {
		return AssocUnknown
	}
	if label, ok := ix.bySLD[strings.ToLower(sld)]; ok {
		return label
	}
	return AssocUnknown
}

// connView is one enriched connection: the record plus everything the
// analyses derive from it once.
type connView struct {
	rec   *zeek.SSLRecord
	dir   netsim.Direction
	month int
	sld   string
	tld   string
	// sniSLD is the SLD extracted from the SNI alone, without the
	// certificate-name fallback applied to sld — the Table 5 / Figure 4
	// grouping key, precomputed so analyses never re-split hostnames.
	sniSLD     string
	assoc      string
	serverCert *certmodel.CertInfo
	clientCert *certmodel.CertInfo
	mutual     bool
}

// certUsage aggregates how one certificate was used across the dataset.
type certUsage struct {
	cert  *certmodel.CertInfo
	class truststore.Class
	// issuer category (classify package).
	category classify.Category

	asServer, asClient         bool
	mutualServer, mutualClient bool
	sharedSameConn             bool
	// dummyIssuer memoizes classify.IsDummyIssuer (fuzzy matching is too
	// expensive to repeat per connection).
	dummyIssuer bool

	firstSeen, lastSeen time.Time

	// Subnet spread for Table 6: /24s of the endpoint that presented it.
	serverSubnets subnetSet
	clientSubnets subnetSet
}

// subnetSet is an allocation-lean set of subnet keys. Most certificates
// are presented from a single subnet, so the first key lives inline and
// the overflow map is allocated only on the second distinct key — two
// map headers per certUsage were a quarter of the ingest path's
// allocated objects.
type subnetSet struct {
	first ids.SubnetKey
	n     int
	rest  map[ids.SubnetKey]struct{}
}

func (s *subnetSet) add(k ids.SubnetKey) {
	switch {
	case s.n == 0:
		s.first, s.n = k, 1
	case k == s.first:
	default:
		if s.rest == nil {
			s.rest = make(map[ids.SubnetKey]struct{}, 2)
		}
		if _, ok := s.rest[k]; !ok {
			s.rest[k] = struct{}{}
			s.n++
		}
	}
}

func (s *subnetSet) len() int { return s.n }

func (s *subnetSet) addAll(o *subnetSet) {
	if o.n == 0 {
		return
	}
	s.add(o.first)
	for k := range o.rest {
		s.add(k)
	}
}

// durationDays is the paper's "duration of activity" (§5).
func (u *certUsage) durationDays() int64 {
	if u.firstSeen.IsZero() {
		return 0
	}
	return int64(u.lastSeen.Sub(u.firstSeen)/(24*time.Hour)) + 1
}

func (u *certUsage) observe(ts time.Time) {
	if u.firstSeen.IsZero() || ts.Before(u.firstSeen) {
		u.firstSeen = ts
	}
	if ts.After(u.lastSeen) {
		u.lastSeen = ts
	}
}

// merge folds a later shard's observations of the same certificate into
// u. The classification fields (cert, class, category, dummyIssuer) stay
// with u — the entry from the earlier shard — so the chain observed
// first in record order wins, exactly as on the serial path.
func (u *certUsage) merge(o *certUsage) {
	u.asServer = u.asServer || o.asServer
	u.asClient = u.asClient || o.asClient
	u.mutualServer = u.mutualServer || o.mutualServer
	u.mutualClient = u.mutualClient || o.mutualClient
	u.sharedSameConn = u.sharedSameConn || o.sharedSameConn
	if !o.firstSeen.IsZero() && (u.firstSeen.IsZero() || o.firstSeen.Before(u.firstSeen)) {
		u.firstSeen = o.firstSeen
	}
	if o.lastSeen.After(u.lastSeen) {
		u.lastSeen = o.lastSeen
	}
	u.serverSubnets.addAll(&o.serverSubnets)
	u.clientSubnets.addAll(&o.clientSubnets)
}

// enriched is the pipeline's working state after preprocessing.
type enriched struct {
	input *Input
	ds    *zeek.Dataset
	psl   *psl.List
	cls   *classify.Classifier
	info  *infotype.Classifier
	pre   *PreprocessReport
	conns []connView
	usage map[ids.Fingerprint]*certUsage
}

// PreprocessReport reproduces the §3.2 preprocessing statistics.
type PreprocessReport struct {
	// InterceptionIssuers found (paper: 186).
	InterceptionIssuers []string
	// ExcludedCerts removed (paper: 871,993 = 8.4%).
	ExcludedCerts int
	// ExcludedShare of the raw certificate population.
	ExcludedShare float64
	// RawCerts / RawConns before filtering.
	RawCerts, RawConns int
	// TLS13ConnShare is the §3.3 opacity share (of connection weight).
	TLS13ConnShare float64
}

// newEnriched builds the empty analysis state for an input — the single
// construction point shared by the batch preprocess and the incremental
// Builder, so both paths classify and enrich with identical substrate.
func newEnriched(in *Input) *enriched {
	p := psl.Default()
	return &enriched{
		input: in,
		psl:   p,
		cls:   classify.New(in.Bundle),
		info:  infotype.New(p, in.CampusIssuers),
		usage: make(map[ids.Fingerprint]*certUsage),
	}
}

// preprocess runs interception filtering and builds the enriched views.
func preprocess(in *Input) *enriched {
	e := newEnriched(in)

	det := &interception.Detector{Bundle: in.Bundle, CT: in.CT, PSL: e.psl, MinDomains: 2}
	res := det.Run(in.Raw)
	e.ds = interception.Filter(in.Raw, res)
	e.pre = &PreprocessReport{
		InterceptionIssuers: res.Issuers,
		ExcludedCerts:       len(res.ExcludedCerts),
		ExcludedShare:       res.ExcludedShare(len(in.Raw.Certs)),
		RawCerts:            len(in.Raw.Certs),
		RawConns:            len(in.Raw.Conns),
	}

	if workers := workerCount(in.Workers); workers > 1 && len(e.ds.Conns) >= workers {
		e.enrichParallel(workers)
	} else {
		e.enrichSerial()
	}
	return e
}

// finishWeights derives the §3.3 opacity share from the (possibly
// per-shard-summed) connection weights.
func (e *enriched) finishWeights(tls13W, totalW int64) {
	if totalW > 0 {
		e.pre.TLS13ConnShare = float64(tls13W) / float64(totalW)
	}
}

// enricher holds one worker's enrichment state: a shard-local usage
// accumulator plus the hot-path caches (PSL splits and issuer
// classifications repeat heavily, so each worker memoizes them without
// any synchronization). The serial path uses a single enricher.
type enricher struct {
	e       *enriched
	assoc   *assocIndex
	split   *psl.SplitCache        // nil when Input.NoCache
	memo    *classify.Memo         // nil when Input.NoCache
	issuers *truststore.IssuerMemo // nil when Input.NoCache
	// subnets memoizes ids.SubnetOfString: addresses repeat across
	// connections and the netip round trip allocates. nil when NoCache.
	subnets        map[string]ids.SubnetKey
	usage          map[ids.Fingerprint]*certUsage
	tls13W, totalW int64
}

func (e *enriched) newEnricher(ix *assocIndex) *enricher {
	w := &enricher{e: e, assoc: ix, usage: make(map[ids.Fingerprint]*certUsage)}
	if !e.input.NoCache {
		w.split = psl.NewSplitCache(e.psl)
		w.memo = classify.NewMemo()
		w.issuers = e.input.Bundle.NewIssuerMemo()
		w.subnets = make(map[string]ids.SubnetKey, 1024)
	}
	return w
}

// subnetOf is the memoized ids.SubnetOfString — a pure function of the
// address string, so caching never changes results.
func (w *enricher) subnetOf(ip string) ids.SubnetKey {
	if w.subnets == nil {
		return ids.SubnetOfString(ip)
	}
	if k, ok := w.subnets[ip]; ok {
		return k
	}
	k := ids.SubnetOfString(ip)
	w.subnets[ip] = k
	return k
}

func (w *enricher) splitHost(host string) psl.Result {
	if w.split != nil {
		return w.split.Split(host)
	}
	return w.e.psl.Split(host)
}

// enrich builds the view for one connection record.
func (w *enricher) enrich(rec *zeek.SSLRecord) connView {
	e := w.e
	w.totalW += rec.Weight
	if rec.Version == "TLSv13" {
		w.tls13W += rec.Weight
	}
	cv := connView{
		rec:   rec,
		dir:   e.input.Plan.DirectionOf(rec.OrigIP, rec.RespIP),
		month: monthIndex(rec.TS),
	}
	split := w.splitHost(rec.SNI)
	cv.sniSLD = split.Registrable()
	cv.sld = cv.sniSLD
	cv.tld = split.TLD()
	// §4.2: when the SNI is absent, resolve server information from
	// the leaf certificates' SAN DNS / CN.
	cv.serverCert = e.ds.Cert(rec.ServerLeaf())
	cv.clientCert = e.ds.Cert(rec.ClientLeaf())
	if cv.sld == "" {
		cv.sld, cv.tld = w.resolveFromCerts(cv.serverCert, cv.clientCert)
	}
	cv.assoc = w.assoc.associate(rec.SNI, cv.sld)
	cv.mutual = rec.IsMutual() && rec.Established

	w.observeConn(&cv)
	return cv
}

// resolveFromCerts recovers SLD/TLD from certificate names when SNI is
// missing: SAN DNS entries first, then the subject CN, server before
// client.
func (w *enricher) resolveFromCerts(server, client *certmodel.CertInfo) (string, string) {
	for _, c := range [2]*certmodel.CertInfo{server, client} {
		if c == nil {
			continue
		}
		for _, name := range c.SANDNS {
			if r := w.splitHost(name); r.Registrable() != "" {
				return r.Registrable(), r.TLD()
			}
		}
		if r := w.splitHost(c.SubjectCN); r.Registrable() != "" {
			return r.Registrable(), r.TLD()
		}
	}
	return "", ""
}

// observeConn updates per-certificate usage.
func (w *enricher) observeConn(cv *connView) {
	rec := cv.rec
	if cv.serverCert != nil {
		u := w.usageOf(cv.serverCert, rec.ServerChain)
		u.asServer = true
		if cv.mutual {
			u.mutualServer = true
		}
		u.observe(rec.TS)
		u.serverSubnets.add(w.subnetOf(rec.RespIP))
	}
	if cv.clientCert != nil {
		u := w.usageOf(cv.clientCert, rec.ClientChain)
		u.asClient = true
		if cv.mutual {
			u.mutualClient = true
		}
		u.observe(rec.TS)
		u.clientSubnets.add(w.subnetOf(rec.OrigIP))
	}
	if cv.mutual && rec.ServerLeaf() == rec.ClientLeaf() && cv.serverCert != nil {
		w.usageOf(cv.serverCert, rec.ServerChain).sharedSameConn = true
	}
}

// usageOf returns (creating if needed) the shard-local usage entry.
func (w *enricher) usageOf(c *certmodel.CertInfo, chain []ids.Fingerprint) *certUsage {
	if u, ok := w.usage[c.Fingerprint]; ok {
		return u
	}
	u := newCertUsage(w.e, w.memo, w.issuers, c, chain)
	w.usage[c.Fingerprint] = u
	return u
}

// newCertUsage classifies a certificate the first time it is observed.
// Nil memos skip the issuer-string caching (NoCache mode, and the
// concurrent analysis-path fallback) but compute the same values.
func newCertUsage(e *enriched, memo *classify.Memo, issuers *truststore.IssuerMemo, c *certmodel.CertInfo, chain []ids.Fingerprint) *certUsage {
	var rest []ids.Fingerprint
	if len(chain) > 1 {
		rest = chain[1:]
	}
	var class truststore.Class
	if issuers != nil {
		class = issuers.ClassifyLeaf(c, rest)
	} else {
		class = e.input.Bundle.ClassifyLeaf(c, rest)
	}
	return &certUsage{
		cert:        c,
		class:       class,
		category:    e.cls.CategoryWith(memo, c, rest),
		dummyIssuer: memo.IsDummyIssuer(c.IssuerOrg),
	}
}

// usageOf on the enriched state is the analysis-path lookup. Every
// certificate reachable from a connection view is registered during
// preprocessing, so this is a pure read — safe under the concurrent
// analysis fan-out. A miss (impossible for pipeline-built views)
// synthesizes an unstored entry rather than mutating shared state.
func (e *enriched) usageOf(c *certmodel.CertInfo, chain []ids.Fingerprint) *certUsage {
	if u, ok := e.usage[c.Fingerprint]; ok {
		return u
	}
	return newCertUsage(e, nil, nil, c, chain)
}

// monthIndex maps a timestamp to its study-month offset.
func monthIndex(ts time.Time) int {
	y, m, _ := ts.Date()
	epoch := certmodel.StudyEpoch
	return (y-epoch.Year())*12 + int(m) - int(epoch.Month())
}
