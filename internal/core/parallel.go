package core

import (
	"runtime"
	"sync"
)

// This file is the pipeline's concurrency layer. Three independent
// mechanisms, all optional and all result-identical to the serial path:
//
//  1. Sharded preprocessing: the connection table is split into
//     contiguous per-worker shards; each worker enriches its shard with
//     a shard-local usage map and hot-path caches, then the shards are
//     merged deterministically (see enrichParallel).
//  2. Analysis fan-out: the ~21 table/figure analyses only read the
//     enriched state, so RunAll dispatches them across a bounded pool.
//  3. Hot-path caching lives with the enricher (input.go) — each worker
//     memoizes PSL splits and issuer classifications locally, which is
//     what makes sharding lock-free.

// workerCount resolves the Input.Workers setting: 0 (or negative) means
// one worker per CPU, anything else is taken literally.
func workerCount(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// enrichSerial is the legacy single-threaded enrichment path
// (Workers: 1): one enricher walks every record in order.
func (e *enriched) enrichSerial() {
	w := e.newEnricher(e.input.Assoc.index())
	e.conns = make([]connView, len(e.ds.Conns))
	for i := range e.ds.Conns {
		e.conns[i] = w.enrich(&e.ds.Conns[i])
	}
	e.usage = w.usage
	e.finishWeights(w.tls13W, w.totalW)
}

// enrichParallel splits the connection table into contiguous per-worker
// shards and enriches them concurrently. Determinism: e.conns keeps the
// original record order because each worker writes only its own index
// range, and the usage merge walks shards in index order so the first
// observation of a certificate (whose presented chain decides its
// classification) wins exactly as it does serially. All other merged
// fields — first/last-seen min/max, subnet-set unions, role bits — are
// commutative.
func (e *enriched) enrichParallel(workers int) {
	n := len(e.ds.Conns)
	e.conns = make([]connView, n)
	ix := e.input.Assoc.index()
	shards := make([]*enricher, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		w := e.newEnricher(ix)
		shards[s] = w
		lo, hi := n*s/workers, n*(s+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e.conns[i] = w.enrich(&e.ds.Conns[i])
			}
		}()
	}
	wg.Wait()

	var tls13W, totalW int64
	for _, w := range shards {
		tls13W += w.tls13W
		totalW += w.totalW
		for fp, su := range w.usage {
			if u, ok := e.usage[fp]; ok {
				u.merge(su)
			} else {
				e.usage[fp] = su
			}
		}
	}
	e.finishWeights(tls13W, totalW)
}

// runTasks executes independent analysis closures. With one worker it
// degenerates to an in-order loop (the legacy path); otherwise a bounded
// pool drains the task list. wg.Wait gives the caller a happens-before
// edge on every result field the closures wrote.
func runTasks(workers int, tasks []func()) {
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}
