package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

var cached *core.Analysis

func testAnalysis(t *testing.T) *core.Analysis {
	t.Helper()
	if cached == nil {
		cfg := workload.Default()
		cfg.CertScale = 2000
		b := workload.Generate(cfg)
		cached = core.Run(&core.Input{
			Raw: b.Raw, CT: b.CT, Bundle: b.Bundle,
			CampusIssuers: b.CampusIssuers,
			Assoc: core.AssocMap{
				HealthSLDs:     b.Assoc.HealthSLDs,
				UniversitySLDs: b.Assoc.UniversitySLDs,
				VPNHostPrefix:  b.Assoc.VPNHostPrefix,
				LocalOrgSLDs:   b.Assoc.LocalOrgSLDs,
				ThirdPartySLDs: b.Assoc.ThirdPartySLDs,
				GlobusSLDs:     b.Assoc.GlobusSLDs,
			},
			Plan: b.Plan, Months: b.Months,
		})
	}
	return cached
}

func TestRenderAllSections(t *testing.T) {
	out := RenderAll(testAnalysis(t))
	for _, section := range []string{
		"Preprocessing", "Table 1", "Figure 1", "Table 2", "Table 3",
		"Figure 2", "Table 4", "§5.1.2", "Table 5", "Table 6", "Figure 3",
		"Figure 4", "Figure 5", "Table 7", "Table 8", "Table 9",
		"Table 10", "Table 13", "Table 14", "§5 takeaway",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("RenderAll missing %q", section)
		}
	}
	if strings.Contains(out, "%!") {
		t.Error("format verb leaked into output")
	}
}

func TestCompareVerdicts(t *testing.T) {
	rows := Compare(testAnalysis(t))
	if len(rows) < 40 {
		t.Fatalf("comparison rows = %d, want 40+", len(rows))
	}
	holds := 0
	for _, r := range rows {
		if r.Experiment == "" || r.Metric == "" || r.Paper == "" || r.Measured == "" {
			t.Errorf("incomplete row: %+v", r)
		}
		if r.ShapeHolds {
			holds++
		}
	}
	// At the small test scale a couple of floor-distorted rows may miss;
	// the overwhelming majority must hold.
	if float64(holds) < 0.9*float64(len(rows)) {
		t.Fatalf("only %d/%d shape checks hold", holds, len(rows))
	}
}

func TestExperimentsMarkdown(t *testing.T) {
	md := ExperimentsMarkdown(testAnalysis(t), "scale test")
	if !strings.Contains(md, "| Experiment | Metric | Paper | Measured |") {
		t.Fatal("markdown header missing")
	}
	if !strings.Contains(md, "scale test") {
		t.Fatal("scale note missing")
	}
	if !strings.Contains(md, "shape checks hold") {
		t.Fatal("summary missing")
	}
}

func TestFigure1Chart(t *testing.T) {
	chart := Figure1Chart(testAnalysis(t))
	lines := strings.Split(strings.TrimSpace(chart), "\n")
	if len(lines) != 23 {
		t.Fatalf("chart lines = %d, want 23 months", len(lines))
	}
	if !strings.Contains(chart, "2022-05") || !strings.Contains(chart, "2024-03") {
		t.Fatal("month range wrong")
	}
	// The last month's bar should be the longest (rising trend).
	if strings.Count(lines[len(lines)-1], "█") < strings.Count(lines[0], "█") {
		t.Fatal("trend not rising in chart")
	}
}

func TestFigure2Sankey(t *testing.T) {
	s := Figure2Sankey(testAnalysis(t))
	if !strings.Contains(s, "public") || !strings.Contains(s, "═>") {
		t.Fatalf("sankey malformed:\n%s", s)
	}
}

func TestFigure5Scatter(t *testing.T) {
	a := testAnalysis(t)
	s := Figure5Scatter(&a.Expired.Outbound, 60, 12)
	if !strings.Contains(s, "o") {
		t.Fatal("no public markers (Apple cluster missing)")
	}
	if !strings.Contains(s, "days expired") {
		t.Fatal("axis label missing")
	}
	empty := Figure5Scatter(&core.ExpiredDirection{}, 10, 5)
	if !strings.Contains(empty, "no expired") {
		t.Fatal("empty direction not handled")
	}
}

func TestFigure4CDF(t *testing.T) {
	s := Figure4CDF(testAnalysis(t))
	if !strings.Contains(s, "Cumulative") || !strings.Contains(s, "≤90d") {
		t.Fatalf("CDF malformed:\n%s", s)
	}
	// Final cumulative share must be 100%.
	if !strings.Contains(s, "100.00") {
		t.Fatal("CDF does not reach 100%")
	}
}

func TestTopIssuers(t *testing.T) {
	s := TopIssuers(testAnalysis(t), 5)
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 5 {
		t.Fatalf("TopIssuers rows wrong:\n%s", s)
	}
}

func TestConcernsRender(t *testing.T) {
	s := Concerns(testAnalysis(t))
	if !strings.Contains(s, "affected (union)") {
		t.Fatalf("concerns render malformed:\n%s", s)
	}
}
