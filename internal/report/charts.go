package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Figure1Chart renders the prevalence trend as an ASCII line chart — the
// visual counterpart of the paper's Figure 1.
func Figure1Chart(a *core.Analysis) string {
	pts := a.Prevalence.Overall
	if len(pts) == 0 {
		return "(no data)\n"
	}
	maxR := 0.0
	for _, p := range pts {
		if p.Ratio() > maxR {
			maxR = p.Ratio()
		}
	}
	if maxR == 0 {
		return "(no mutual TLS observed)\n"
	}
	var b strings.Builder
	for _, p := range pts {
		bars := int(p.Ratio() / maxR * 48)
		fmt.Fprintf(&b, "%s %6s%% |%s\n", p.Month, stats.Pct(p.Ratio()), strings.Repeat("█", bars))
	}
	return b.String()
}

// Figure2Sankey renders the outbound flow diagram as text: server class →
// TLD → client issuer category with proportional link widths.
func Figure2Sankey(a *core.Analysis) string {
	flows := a.Outbound.Flows
	if len(flows) == 0 {
		return "(no flows)\n"
	}
	var total int64
	for _, f := range flows {
		total += f.Weight
	}
	var b strings.Builder
	limit := len(flows)
	if limit > 14 {
		limit = 14
	}
	for _, f := range flows[:limit] {
		width := int(float64(f.Weight) / float64(total) * 40)
		if width < 1 {
			width = 1
		}
		fmt.Fprintf(&b, "%-8s ═%s═> .%-5s ═%s═> %-24s %5.1f%%\n",
			f.ServerClass, strings.Repeat("═", width/2), f.TLD,
			strings.Repeat("═", width/2), f.ClientCategory,
			float64(f.Weight)/float64(total)*100)
	}
	if len(flows) > limit {
		fmt.Fprintf(&b, "(+%d smaller flows)\n", len(flows)-limit)
	}
	return b.String()
}

// Figure5Scatter renders the expired-certificate scatter (days expired ×
// duration of activity) as a character grid, public certs as 'o' and
// private as 'x' — the shape of the paper's Figure 5, including the Apple
// cluster around 1,000 days.
func Figure5Scatter(dir *core.ExpiredDirection, width, height int) string {
	if len(dir.Points) == 0 {
		return "(no expired certificates)\n"
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 14
	}
	var maxX, maxY int64 = 1, 1
	for _, p := range dir.Points {
		if p.DaysExpiredAtFirstUse > maxX {
			maxX = p.DaysExpiredAtFirstUse
		}
		if p.DurationDays > maxY {
			maxY = p.DurationDays
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range dir.Points {
		x := int(float64(p.DaysExpiredAtFirstUse) / float64(maxX) * float64(width-1))
		y := height - 1 - int(float64(p.DurationDays)/float64(maxY)*float64(height-1))
		mark := byte('x')
		if p.Public {
			mark = 'o'
		}
		// Public markers win contested cells so the Apple cluster shows.
		if grid[y][x] == ' ' || mark == 'o' {
			grid[y][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "duration of activity (days, up to %d) ↑   o=public x=private\n", maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "→\n")
	fmt.Fprintf(&b, "days expired at first observation (0..%d)\n", maxX)
	return b.String()
}

// Figure4CDF renders the validity-period distribution as a cumulative
// table per direction.
func Figure4CDF(a *core.Analysis) string {
	v := a.Validity
	labels := []string{"≤90d", "≤398d", "≤825d", "≤10y", "≤10,000d", "≤40,000d", ">40,000d"}
	var b strings.Builder
	t := stats.NewTable("Cumulative validity distribution", "Bucket", "Inbound cum%", "Outbound cum%")
	var cumIn, cumOut int64
	for i, l := range labels {
		cumIn += v.InboundHist.Bucket(i)
		cumOut += v.OutboundHist.Bucket(i)
		t.AddRow(l,
			stats.Pct(safeDiv(cumIn, v.InboundHist.Total())),
			stats.Pct(safeDiv(cumOut, v.OutboundHist.Total())))
	}
	b.WriteString(t.String())
	return b.String()
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// TopIssuers renders the most common issuer identities in a dataset-wide
// view, a convenience for exploratory use.
func TopIssuers(a *core.Analysis, k int) string {
	// Reconstructed from the contents report's columns.
	c := a.Contents
	counts := map[string]int{}
	for _, col := range []string{"server-public", "server-private", "client-public", "client-private"} {
		for name, n := range c.CN[col] {
			counts[col+"/"+name] += n
		}
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	var b strings.Builder
	for _, key := range keys[:k] {
		fmt.Fprintf(&b, "%-40s %d\n", key, counts[key])
	}
	return b.String()
}
