package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// ComparisonRow is one paper-vs-measured line of EXPERIMENTS.md.
type ComparisonRow struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
	// ShapeHolds is the reproduction verdict for the row.
	ShapeHolds bool
}

// Compare derives the paper-vs-measured rows from an analysis. Absolute
// counts are expected to differ by the scale factor; ratio rows must land
// near the paper's value, ordering rows must preserve the paper's ranking.
func Compare(a *core.Analysis) []ComparisonRow {
	var rows []ComparisonRow
	add := func(exp, metric, paper string, measured string, holds bool) {
		rows = append(rows, ComparisonRow{exp, metric, paper, measured, holds})
	}
	near := func(x, want, tol float64) bool { return x >= want-tol && x <= want+tol }

	// §3.2 preprocessing.
	p := a.Preprocess
	add("§3.2", "interception certs excluded", "8.4%", pct(p.ExcludedShare),
		near(p.ExcludedShare, 0.084, 0.05))
	add("§3.3", "TLS 1.3 connection share", "40.86%", pct(p.TLS13ConnShare),
		near(p.TLS13ConnShare, 0.4086, 0.08))

	// Table 1.
	cs := a.CertStats
	add("Table 1", "certs used in mTLS (total)", "59.43%",
		pct(cs.Row("Total").MutualShare()), near(cs.Row("Total").MutualShare(), 0.5943, 0.18))
	add("Table 1", "server public-CA certs in mTLS", "0.22%",
		pct(cs.Row("Server - Public CA").MutualShare()),
		cs.Row("Server - Public CA").MutualShare() < 0.05)
	add("Table 1", "server private-CA certs in mTLS", "82.78%",
		pct(cs.Row("Server - Private CA").MutualShare()),
		near(cs.Row("Server - Private CA").MutualShare(), 0.8278, 0.25))
	add("Table 1", "client certs in mTLS", "94.34%",
		pct(cs.Row("Client").MutualShare()), cs.Row("Client").MutualShare() > 0.85)

	// Figure 1.
	pr := a.Prevalence
	add("Figure 1", "first-month mTLS share", "1.99%", pct(pr.FirstShare()),
		near(pr.FirstShare(), 0.0199, 0.01))
	add("Figure 1", "last-month mTLS share", "3.61%", pct(pr.LastShare()),
		near(pr.LastShare(), 0.0361, 0.012))
	add("Figure 1", "trend", "rising", trendWord(pr), pr.LastShare() > pr.FirstShare())

	// Table 2.
	sv := a.Services
	fw, _ := core.Find(sv.MutualInbound, "20017")
	add("Table 2", "inbound mTLS top port", "443 (63.60%)",
		topPort(sv.MutualInbound), len(sv.MutualInbound) > 0 && sv.MutualInbound[0].PortLabel == "443")
	add("Table 2", "FileWave 20017 inbound share", "24.89%", pct(fw.Share),
		near(fw.Share, 0.2489, 0.10))
	out443, _ := core.Find(sv.MutualOutbound, "443")
	add("Table 2", "outbound mTLS 443 share", "83.17%", pct(out443.Share),
		near(out443.Share, 0.8317, 0.12))

	// Table 3.
	in := a.Inbound
	add("Table 3", "University Health conn share", "64.91%",
		pct(in.Row(core.AssocHealth).ConnShare), near(in.Row(core.AssocHealth).ConnShare, 0.6491, 0.15))
	add("Table 3", "Health primary client issuer", "Private - Education",
		in.Row(core.AssocHealth).Primary, in.Row(core.AssocHealth).Primary == "Private - Education")
	add("Table 3", "University Server primary issuer", "Private - MissingIssuer",
		in.Row(core.AssocUniversity).Primary, in.Row(core.AssocUniversity).Primary == "Private - MissingIssuer")
	add("Table 3", "Local Organization primary issuer", "Public",
		in.Row(core.AssocLocalOrg).Primary, in.Row(core.AssocLocalOrg).Primary == "Public")

	// Figure 2.
	ob := a.Outbound
	add("Figure 2", "amazonaws.com share", "28.51%", pct(ob.SLDShare("amazonaws.com")),
		near(ob.SLDShare("amazonaws.com"), 0.2851, 0.10))
	add("Figure 2", "rapid7.com share", "27.44%", pct(ob.SLDShare("rapid7.com")),
		near(ob.SLDShare("rapid7.com"), 0.2744, 0.10))
	add("Figure 2", "gpcloudservice.com share", "13.33%", pct(ob.SLDShare("gpcloudservice.com")),
		near(ob.SLDShare("gpcloudservice.com"), 0.1333, 0.07))
	add("§4.2.2", "outbound client certs w/o valid issuer", "37.84%",
		pct(ob.MissingIssuerShare), near(ob.MissingIssuerShare, 0.3784, 0.15))
	add("§4.2.2", "public-server conns w/ missing-issuer clients", "45.71%",
		pct(ob.PublicServerMissingClientShare), near(ob.PublicServerMissingClientShare, 0.4571, 0.18))

	// §5.1.2 serials.
	if g, ok := a.Serials.Inbound.Group("Globus Online", "00"); ok {
		add("§5.1.2", "Globus serial-00 validity", "14 days",
			fmt.Sprintf("%d days", g.MaxValidityDays), g.MaxValidityDays <= 15)
		add("§5.1.2", "Globus serial-00 reissued certs", "38,965 client certs (unscaled)",
			fmt.Sprintf("%d client certs (scaled)", g.ClientCerts), g.ClientCerts >= 10)
	} else {
		add("§5.1.2", "Globus serial-00 group", "present", "MISSING", false)
	}
	if g, ok := a.Serials.Outbound.Group("GuardiCore", "01"); ok {
		add("§5.1.2", "GuardiCore validity exceeds 2y", ">730 days",
			fmt.Sprintf("%d days", g.MaxValidityDays), g.MaxValidityDays > 730)
	}

	// Table 5 / 6.
	sh := a.SharingSame
	add("Table 5", "same-conn sharing present both directions", "7.49M in / 5.93M out",
		fmt.Sprintf("%d in / %d out (weighted)", sh.InboundConns, sh.OutboundConns),
		sh.InboundConns > 0 && sh.OutboundConns > 0)
	cr := a.SharingCross
	add("Table 6", "median subnet spread", "1 / 1",
		fmt.Sprintf("%d / %d", cr.ServerQuantiles[0], cr.ClientQuantiles[0]),
		cr.ServerQuantiles[0] == 1 && cr.ClientQuantiles[0] == 1)
	add("Table 6", "client tail exceeds server tail", "1851 vs 217",
		fmt.Sprintf("%d vs %d", cr.ClientQuantiles[3], cr.ServerQuantiles[3]),
		cr.ClientQuantiles[3] > cr.ServerQuantiles[3])
	add("Table 6", "Let's Encrypt leads issuers", "51.58%", topKV(cr.IssuerShares),
		len(cr.IssuerShares) > 0 && cr.IssuerShares[0].Key == "R3")

	// Figure 3.
	bd := a.BadDates
	add("Figure 3", "incorrect-date certs observed", ">0 (13 groups)",
		fmt.Sprintf("%d certs, %d groups", bd.Certs, len(bd.Rows)), bd.Certs > 0)
	add("Table 12", "idrive.com both-endpoint group", "718 clients, 701 days",
		bothRow(bd, "idrive.com"), hasBoth(bd, "idrive.com"))
	add("Table 12", "SDS both-endpoint group", "17 clients, 474 days",
		bothRow(bd, "- (missing SNI)"), hasBoth(bd, "- (missing SNI)"))

	// Figure 4.
	v := a.Validity
	add("Figure 4", "10,000-40,000-day client certs", "7,911 (unscaled)",
		fmt.Sprintf("%d (scaled)", v.ExtremeCount), v.ExtremeCount > 0)
	add("Figure 4", "longest validity", "83,432 days (tmdxdev.com)",
		fmt.Sprintf("%d days (%s)", v.MaxValidityDays, v.MaxValiditySLD),
		v.MaxValidityDays > 80000 && v.MaxValiditySLD == "tmdxdev.com")

	// Figure 5.
	ex := a.Expired
	add("Figure 5", "Apple ~1000-day expired cluster", "337 certs (unscaled)",
		fmt.Sprintf("%d certs (scaled)", ex.Outbound.AppleCluster), ex.Outbound.AppleCluster > 0)
	add("Figure 5", "inbound expired mix led by VPN", "45.83%",
		topKV(ex.Inbound.AssocShares),
		len(ex.Inbound.AssocShares) > 0 && ex.Inbound.AssocShares[0].Key == core.AssocVPN)

	// Table 7.
	u := a.Utilization
	add("Table 7", "client CN utilization", "99.89%",
		pct(u.Row("Client certs.").CNShare()), u.Row("Client certs.").CNShare() > 0.95)
	add("Table 7", "server-private SAN utilization", "0.38%",
		pct(u.Row("Server - Private CA").SANShare()), u.Row("Server - Private CA").SANShare() < 0.05)
	add("Table 7", "server-public SAN utilization", "99.99%",
		pct(u.Row("Server - Public CA").SANShare()), u.Row("Server - Public CA").SANShare() > 0.9)

	// Table 8.
	c := a.Contents
	add("Table 8", "server-private CN Org/Product", "79.30%",
		pct(c.Share("CN", "server-private", "Org/Product")),
		near(c.Share("CN", "server-private", "Org/Product"), 0.793, 0.20))
	add("Table 8", "client-private CN Org/Product", "92.49%",
		pct(c.Share("CN", "client-private", "Org/Product")),
		near(c.Share("CN", "client-private", "Org/Product"), 0.9249, 0.20))
	add("Table 8", "client-private personal names present", "43,539 (unscaled)",
		fmt.Sprintf("%d (scaled)", c.CN["client-private"]["Personal name"]),
		c.CN["client-private"]["Personal name"] > 0)
	add("Table 8", "client-private user accounts present", "18,603 (unscaled)",
		fmt.Sprintf("%d (scaled)", c.CN["client-private"]["User account"]),
		c.CN["client-private"]["User account"] > 0)

	// Table 9.
	un := a.Unidentified
	add("Table 9", "server-private CN mostly random", "~80% random",
		pct(1-un.Share("server-private-CN", "Non-random")),
		un.Share("server-private-CN", "Non-random") < 0.45)

	// Table 13.
	si := a.SharedInfo
	add("Table 13", "shared certs mostly private", "99.7%", pct(si.PrivateShare),
		si.PrivateShare > 0.9)

	// §5 takeaway.
	cn := a.Concerns
	add("§5", "connections affected by concerning practices", "13M+ (paper)",
		fmt.Sprintf("%d weighted (%s of mTLS)", cn.AffectedTotal, pct(cn.AffectedShare())),
		cn.AffectedTotal > 0)

	// Table 14.
	nm := a.NonMutual
	add("Table 14", "non-mutual certs mostly public", "85%", pct(nm.PublicShare),
		near(nm.PublicShare, 0.85, 0.12))

	return rows
}

// ExperimentsMarkdown renders the comparison as a Markdown document.
func ExperimentsMarkdown(a *core.Analysis, scaleNote string) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString("Generated by cmd/mtlsreport against the synthetic campus dataset.\n")
	if scaleNote != "" {
		b.WriteString(scaleNote + "\n")
	}
	b.WriteString("\n| Experiment | Metric | Paper | Measured | Shape holds |\n")
	b.WriteString("|---|---|---|---|---|\n")
	ok := 0
	rows := Compare(a)
	for _, r := range rows {
		mark := "✅"
		if !r.ShapeHolds {
			mark = "❌"
		} else {
			ok++
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			r.Experiment, r.Metric, r.Paper, r.Measured, mark)
	}
	fmt.Fprintf(&b, "\n%d/%d shape checks hold.\n", ok, len(rows))
	return b.String()
}

func trendWord(p *core.PrevalenceReport) string {
	if p.LastShare() > p.FirstShare() {
		return "rising"
	}
	return "falling"
}

func topPort(rows []core.ServiceRow) string {
	if len(rows) == 0 {
		return "none"
	}
	return fmt.Sprintf("%s (%s)", rows[0].PortLabel, pct(rows[0].Share))
}

func topKV(kvs []stats.KV) string {
	if len(kvs) == 0 {
		return "none"
	}
	return fmt.Sprintf("%s (%d)", kvs[0].Key, kvs[0].Count)
}

func hasBoth(bd *core.BadDatesReport, sld string) bool {
	for _, r := range bd.BothEndpoints {
		if r.SLD == sld {
			return true
		}
	}
	return false
}

func bothRow(bd *core.BadDatesReport, sld string) string {
	for _, r := range bd.BothEndpoints {
		if r.SLD == sld {
			return fmt.Sprintf("%d clients, %d days", r.Clients, r.DurationDays)
		}
	}
	return "MISSING"
}
