// Package report renders a core.Analysis as plain-text tables (one per
// paper table/figure) and as the EXPERIMENTS.md paper-vs-measured
// comparison. cmd/mtlsreport is a thin wrapper around it.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/infotype"
	"repro/internal/stats"
)

// RenderAll renders every table and figure.
func RenderAll(a *core.Analysis) string {
	var b strings.Builder
	sections := []struct {
		title string
		body  string
	}{
		{"Preprocessing (§3.2)", Preprocess(a)},
		{"Table 1 — Unique certificates", Table1(a)},
		{"Figure 1 — Prevalence of mutual TLS", Figure1(a)},
		{"Figure 1 (chart)", Figure1Chart(a)},
		{"Table 2 — Prominent services", Table2(a)},
		{"Table 3 — Inbound issuers by server association", Table3(a)},
		{"Figure 2 — Outbound flows", Figure2(a)},
		{"Figure 2 (sankey)", Figure2Sankey(a)},
		{"Table 4 — Dummy issuers", Table4(a)},
		{"§5.1.2 — Dummy serial numbers", Serials(a)},
		{"Table 5 — Certificate sharing in the same connection", Table5(a)},
		{"Table 6 — Subnet spread of cross-connection shared certs", Table6(a)},
		{"Figure 3 / Tables 11-12 — Incorrect dates", Figure3(a)},
		{"Figure 4 — Validity periods", Figure4(a)},
		{"Figure 4 (CDF)", Figure4CDF(a)},
		{"Figure 5 — Expired client certificates", Figure5(a)},
		{"Figure 5a (scatter, inbound)", Figure5Scatter(&a.Expired.Inbound, 64, 12)},
		{"Figure 5b (scatter, outbound)", Figure5Scatter(&a.Expired.Outbound, 64, 12)},
		{"Table 7 — CN/SAN utilization", Table7(a)},
		{"Table 8 — Information types in CN and SAN", Table8(a)},
		{"Table 9 — Unidentified strings", Table9(a)},
		{"Table 10 — Dummy issuers at both endpoints", Table10(a)},
		{"Table 13 — Shared-certificate CN/SAN", Table13(a)},
		{"Table 14 — Non-mutual TLS certificates", Table14(a)},
		{"§5 takeaway — Concerning practices", Concerns(a)},
		{"§6.1.2 — SAN value types", SANTypes(a)},
		{"§5 — Duration of activity", Durations(a)},
		{"§3.3 — Protocol versions", Versions(a)},
		{"ClientHello fingerprint prevalence", Fingerprints(a)},
	}
	for _, s := range sections {
		b.WriteString("== " + s.title + " ==\n")
		b.WriteString(s.body)
		b.WriteString("\n")
	}
	return b.String()
}

func pct(x float64) string { return stats.Pct(x) + "%" }

// Preprocess renders the §3.2 filter statistics.
func Preprocess(a *core.Analysis) string {
	p := a.Preprocess
	return fmt.Sprintf(
		"raw certs: %d, raw conns: %d\ninterception issuers found: %d\nexcluded certs: %d (%s of raw)\nTLS 1.3 connection share: %s\n",
		p.RawCerts, p.RawConns, len(p.InterceptionIssuers),
		p.ExcludedCerts, pct(p.ExcludedShare), pct(p.TLS13ConnShare))
}

// Table1 renders unique-certificate statistics.
func Table1(a *core.Analysis) string {
	t := stats.NewTable("", "Certificates", "Total", "Mutual TLS", "%")
	for _, r := range a.CertStats.Rows {
		t.AddRow(r.Label, fmt.Sprint(r.Total), fmt.Sprint(r.Mutual), stats.Pct(r.MutualShare()))
	}
	return t.String()
}

// Figure1 renders the monthly mTLS share series.
func Figure1(a *core.Analysis) string {
	t := stats.NewTable("", "Month", "Overall %", "Inbound %", "Outbound %")
	in := indexPoints(a.Prevalence.Inbound)
	out := indexPoints(a.Prevalence.Outbound)
	for _, p := range a.Prevalence.Overall {
		t.AddRow(string(p.Month), stats.Pct(p.Ratio()),
			stats.Pct(in[p.Month]), stats.Pct(out[p.Month]))
	}
	return t.String()
}

func indexPoints(ps []stats.Point) map[stats.MonthKey]float64 {
	m := map[stats.MonthKey]float64{}
	for _, p := range ps {
		m[p.Month] = p.Ratio()
	}
	return m
}

// Table2 renders the port/service rankings.
func Table2(a *core.Analysis) string {
	var b strings.Builder
	render := func(title string, rows []core.ServiceRow) {
		t := stats.NewTable(title, "Rank", "Port", "%", "Service")
		for i, r := range rows {
			t.AddRow(fmt.Sprint(i+1), r.PortLabel, stats.Pct(r.Share), r.Service)
		}
		b.WriteString(t.String())
	}
	render("Inbound, mutual TLS", a.Services.MutualInbound)
	render("Outbound, mutual TLS", a.Services.MutualOutbound)
	render("Inbound, without mutual TLS", a.Services.NonMutualInbound)
	render("Outbound, without mutual TLS", a.Services.NonMutualOutbound)
	return b.String()
}

// Table3 renders inbound issuer patterns.
func Table3(a *core.Analysis) string {
	t := stats.NewTable("", "Server association", "% conns", "% clients",
		"Primary issuer", "% clients", "Secondary issuer", "% clients")
	for _, r := range a.Inbound.Rows {
		t.AddRow(r.Association, stats.Pct(r.ConnShare), stats.Pct(r.ClientShare),
			r.Primary, stats.Pct(r.PrimaryShare), r.Secondary, stats.Pct(r.SecondaryShare))
	}
	return t.String()
}

// Figure2 renders outbound flow statistics.
func Figure2(a *core.Analysis) string {
	var b strings.Builder
	o := a.Outbound
	fmt.Fprintf(&b, "missing client issuer: %s of outbound mTLS connections\n", pct(o.MissingIssuerShare))
	fmt.Fprintf(&b, "public-server conns with missing-issuer clients: %s\n", pct(o.PublicServerMissingClientShare))
	t := stats.NewTable("Top server SLDs", "SLD", "% conns")
	for _, kv := range o.SLDShares {
		t.AddRow(kv.Key, stats.Pct(float64(kv.Count)/float64(max64(o.TotalConns, 1))))
	}
	b.WriteString(t.String())
	ft := stats.NewTable("Flows (server class -> TLD -> client issuer)", "Server", "TLD", "Client issuer", "Conns")
	limit := len(o.Flows)
	if limit > 12 {
		limit = 12
	}
	for _, f := range o.Flows[:limit] {
		ft.AddRow(f.ServerClass, f.TLD, f.ClientCategory, fmt.Sprint(f.Weight))
	}
	b.WriteString(ft.String())
	return b.String()
}

// Table4 renders dummy-issuer groups.
func Table4(a *core.Analysis) string {
	t := stats.NewTable("", "Direction", "Side", "Dummy issuer", "#servers", "#clients", "#conns")
	for _, r := range a.DummyIssuers.Rows {
		t.AddRow(r.Direction, r.Side, r.IssuerOrg,
			fmt.Sprint(r.Servers), fmt.Sprint(r.Clients), fmt.Sprint(r.Conns))
	}
	return t.String() + fmt.Sprintf("weak-key (1024-bit RSA) dummy certs: %d; X.509v1 dummy certs: %d\n",
		a.DummyIssuers.WeakKeyCerts, a.DummyIssuers.Version1Certs)
}

// Serials renders the §5.1.2 collision groups.
func Serials(a *core.Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "inbound clients involved: %d (both endpoints: %d)\n",
		a.Serials.Inbound.ClientsInvolved, a.Serials.Inbound.BothEndpointClients)
	fmt.Fprintf(&b, "outbound clients involved: %d (both endpoints: %d)\n",
		a.Serials.Outbound.ClientsInvolved, a.Serials.Outbound.BothEndpointClients)
	t := stats.NewTable("Collision groups", "Issuer", "Serial", "#srv certs", "#cli certs",
		"#conns", "#clients", "#tuples", "max validity (d)")
	limit := len(a.Serials.Inbound.Groups)
	if limit > 10 {
		limit = 10
	}
	for _, g := range a.Serials.Inbound.Groups[:limit] {
		t.AddRow(g.IssuerKey, g.Serial, fmt.Sprint(g.ServerCerts), fmt.Sprint(g.ClientCerts),
			fmt.Sprint(g.Conns), fmt.Sprint(g.Clients), fmt.Sprint(g.Tuples),
			fmt.Sprint(g.MaxValidityDays))
	}
	b.WriteString(t.String())
	return b.String()
}

// Table5 renders same-connection sharing.
func Table5(a *core.Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shared-certificate connections: inbound %d, outbound %d\n",
		a.SharingSame.InboundConns, a.SharingSame.OutboundConns)
	t := stats.NewTable("", "Direction", "SLD", "Issuer", "Public?", "#clients", "Duration (d)")
	for _, r := range a.SharingSame.Rows {
		t.AddRow(r.Direction, r.SLD, r.IssuerKey, boolMark(r.PublicIssuer),
			fmt.Sprint(r.Clients), fmt.Sprint(r.DurationDays))
	}
	b.WriteString(t.String())
	return b.String()
}

// Table6 renders subnet-spread quantiles.
func Table6(a *core.Analysis) string {
	cr := a.SharingCross
	t := stats.NewTable(fmt.Sprintf("cross-shared certs: %d", cr.Certs),
		"Role", "50th", "75th", "99th", "100th")
	t.AddRow(append([]string{"Server"}, q(cr.ServerQuantiles)...)...)
	t.AddRow(append([]string{"Client"}, q(cr.ClientQuantiles)...)...)
	var b strings.Builder
	b.WriteString(t.String())
	it := stats.NewTable("Issuers of cross-shared certs", "Issuer", "Certs")
	for _, kv := range cr.IssuerShares {
		it.AddRow(kv.Key, fmt.Sprint(kv.Count))
	}
	b.WriteString(it.String())
	return b.String()
}

func q(v [4]int64) []string {
	return []string{fmt.Sprint(v[0]), fmt.Sprint(v[1]), fmt.Sprint(v[2]), fmt.Sprint(v[3])}
}

// Figure3 renders incorrect-date groups.
func Figure3(a *core.Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "incorrect-date certificates: %d\n", a.BadDates.Certs)
	t := stats.NewTable("Groups", "SLD", "Side", "Issuer", "NotBefore yr", "NotAfter yr", "#clients", "Duration (d)")
	for _, r := range a.BadDates.Rows {
		t.AddRow(r.SLD, r.Side, r.IssuerKey, fmt.Sprint(r.NotBeforeYear),
			fmt.Sprint(r.NotAfterYear), fmt.Sprint(r.Clients), fmt.Sprint(r.DurationDays))
	}
	b.WriteString(t.String())
	bt := stats.NewTable("Both endpoints (Table 12)", "SLD", "Client issuer", "Server issuer", "#clients", "Duration (d)")
	for _, r := range a.BadDates.BothEndpoints {
		bt.AddRow(r.SLD, r.ClientIssuer, r.ServerIssuer, fmt.Sprint(r.Clients), fmt.Sprint(r.DurationDays))
	}
	b.WriteString(bt.String())
	return b.String()
}

// Figure4 renders validity-period distributions.
func Figure4(a *core.Analysis) string {
	v := a.Validity
	var b strings.Builder
	labels := []string{"<=90d", "<=398d", "<=825d", "<=10y", "<=10000d", "<=40000d", ">40000d"}
	t := stats.NewTable("Client-cert validity (unique certs)", "Bucket", "Inbound", "Outbound")
	for i, l := range labels {
		t.AddRow(l, fmt.Sprint(v.InboundHist.Bucket(i)), fmt.Sprint(v.OutboundHist.Bucket(i)))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "10,000-40,000-day certs: %d (public: %d)\n", v.ExtremeCount, v.ExtremePublic)
	for _, kv := range v.ExtremeCategories {
		fmt.Fprintf(&b, "  %s: %d\n", kv.Key, kv.Count)
	}
	fmt.Fprintf(&b, "max validity: %d days (%s)\n", v.MaxValidityDays, v.MaxValiditySLD)
	return b.String()
}

// Figure5 renders expired-certificate statistics.
func Figure5(a *core.Analysis) string {
	ex := a.Expired
	var b strings.Builder
	fmt.Fprintf(&b, "inbound expired client certs: %d (public %d / private %d)\n",
		len(ex.Inbound.Points), ex.Inbound.PublicCerts, ex.Inbound.PrivateCerts)
	fmt.Fprintf(&b, "outbound expired client certs: %d (public %d / private %d)\n",
		len(ex.Outbound.Points), ex.Outbound.PublicCerts, ex.Outbound.PrivateCerts)
	fmt.Fprintf(&b, "outbound Apple ~1000-day cluster: %d; Microsoft: %d\n",
		ex.Outbound.AppleCluster, ex.Outbound.MicrosoftCount)
	t := stats.NewTable("Inbound expired-cert connection mix", "Association", "Conn weight")
	for _, kv := range ex.Inbound.AssocShares {
		t.AddRow(kv.Key, fmt.Sprint(kv.Count))
	}
	b.WriteString(t.String())
	return b.String()
}

// Table7 renders CN/SAN utilization.
func Table7(a *core.Analysis) string {
	t := stats.NewTable("", "Non-Empty", "CN #", "CN %", "SAN #", "SAN %")
	for _, r := range a.Utilization.Rows {
		t.AddRow(r.Label, fmt.Sprint(r.NonEmptyCN), stats.Pct(r.CNShare()),
			fmt.Sprint(r.NonEmptySAN), stats.Pct(r.SANShare()))
	}
	return t.String()
}

// Table8 renders information-type counts.
func Table8(a *core.Analysis) string {
	c := a.Contents
	cols := []string{"server-public", "server-private", "client-public", "client-private"}
	t := stats.NewTable("", "Info type",
		"srv-pub CN", "srv-pub SAN", "srv-priv CN", "srv-priv SAN",
		"cli-pub CN", "cli-pub SAN", "cli-priv CN", "cli-priv SAN")
	for _, it := range infotype.AllTypes {
		name := it.String()
		row := []string{name}
		for _, col := range cols {
			row = append(row, fmt.Sprint(c.CN[col][name]), fmt.Sprint(c.SAN[col][name]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table9 renders unidentified-string buckets.
func Table9(a *core.Analysis) string {
	u := a.Unidentified
	cols := []string{"server-private-CN", "client-public-CN", "client-private-CN", "client-private-SAN"}
	buckets := []string{"Non-random", "Random - by Issuer", "Random - strlen = 8",
		"Random - strlen = 32", "Random - strlen = 36", "Random - other"}
	t := stats.NewTable("", append([]string{"Bucket"}, cols...)...)
	for _, bk := range buckets {
		row := []string{bk}
		for _, col := range cols {
			row = append(row, fmt.Sprintf("%d (%s)", u.Buckets[col][bk], stats.Pct(u.Share(col, bk))))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table10 renders both-endpoint dummy rows.
func Table10(a *core.Analysis) string {
	t := stats.NewTable("", "SLD", "Client issuer", "Server issuer", "#clients", "Duration (d)")
	for _, r := range a.DummyIssuers.BothEndpoints {
		t.AddRow(r.SLD, r.ClientIssuer, r.ServerIssuer, fmt.Sprint(r.Clients), fmt.Sprint(r.DurationDays))
	}
	return t.String()
}

// Table13 renders shared-cert CN/SAN statistics.
func Table13(a *core.Analysis) string {
	si := a.SharedInfo
	var b strings.Builder
	fmt.Fprintf(&b, "shared certs: %d (private share %s)\n", si.Certs, pct(si.PrivateShare))
	t := stats.NewTable("Utilization", "Class", "CN #", "CN %", "SAN #", "SAN %")
	for _, r := range si.Utilization {
		t.AddRow(r.Label, fmt.Sprint(r.NonEmptyCN), stats.Pct(r.CNShare()),
			fmt.Sprint(r.NonEmptySAN), stats.Pct(r.SANShare()))
	}
	b.WriteString(t.String())
	b.WriteString(renderClassTables("Info types", si.CN, si.SAN, si.CNTotals, si.SANTotals))
	return b.String()
}

// Table14 renders non-mutual statistics.
func Table14(a *core.Analysis) string {
	nm := a.NonMutual
	var b strings.Builder
	fmt.Fprintf(&b, "non-mutual server certs: public share %s\n", pct(nm.PublicShare))
	t := stats.NewTable("Utilization", "Class", "CN #", "CN %", "SAN #", "SAN %")
	for _, r := range nm.Utilization {
		t.AddRow(r.Label, fmt.Sprint(r.NonEmptyCN), stats.Pct(r.CNShare()),
			fmt.Sprint(r.NonEmptySAN), stats.Pct(r.SANShare()))
	}
	b.WriteString(t.String())
	b.WriteString(renderClassTables("Info types", nm.CN, nm.SAN, nm.CNTotals, nm.SANTotals))
	return b.String()
}

func renderClassTables(title string, cn, san map[string]map[string]int, cnT, sanT map[string]int) string {
	t := stats.NewTable(title, "Info type", "pub CN", "pub SAN", "priv CN", "priv SAN")
	for _, it := range infotype.AllTypes {
		name := it.String()
		t.AddRow(name,
			fmt.Sprint(cn["public"][name]), fmt.Sprint(san["public"][name]),
			fmt.Sprint(cn["private"][name]), fmt.Sprint(san["private"][name]))
	}
	return t.String()
}

// Concerns renders the §5 takeaway aggregation.
func Concerns(a *core.Analysis) string {
	c := a.Concerns
	t := stats.NewTable("", "Concern", "Conn weight")
	t.AddRow("missing client issuer", fmt.Sprint(c.MissingClientIssuer))
	t.AddRow("dummy issuer (either side)", fmt.Sprint(c.DummyIssuer))
	t.AddRow("serial collision (either side)", fmt.Sprint(c.SerialCollision))
	t.AddRow("same cert at both endpoints", fmt.Sprint(c.SharedSameConn))
	t.AddRow("incorrect validity dates", fmt.Sprint(c.IncorrectDates))
	t.AddRow("expired client certificate", fmt.Sprint(c.ExpiredClientCert))
	t.AddRow("weak (1024-bit RSA) key", fmt.Sprint(c.WeakKey))
	return t.String() + fmt.Sprintf(
		"affected (union): %d of %d mutual-TLS connections (%s)\n",
		c.AffectedTotal, c.MutualTotal, pct(c.AffectedShare()))
}

// SANTypes renders the §6.1.2 SAN-type disparity.
func SANTypes(a *core.Analysis) string {
	s := a.SANTypes
	t := stats.NewTable(fmt.Sprintf("mTLS certs: %d", s.Total),
		"SAN type", "Non-empty", "Empty %")
	t.AddRow("DNS", fmt.Sprint(s.DNS), stats.Pct(s.EmptyShare(s.DNS)))
	t.AddRow("IP", fmt.Sprint(s.IP), stats.Pct(s.EmptyShare(s.IP)))
	t.AddRow("Email", fmt.Sprint(s.Email), stats.Pct(s.EmptyShare(s.Email)))
	t.AddRow("URI", fmt.Sprint(s.URI), stats.Pct(s.EmptyShare(s.URI)))
	return t.String()
}

// Durations renders the duration-of-activity distributions.
func Durations(a *core.Analysis) string {
	d := a.Durations
	labels := []string{"≤1d", "≤7d", "≤30d", "≤90d", "≤365d", "≤700d", ">700d"}
	t := stats.NewTable("Certificate activity duration (unique mTLS certs)",
		"Bucket", "Server", "Client")
	for i, l := range labels {
		t.AddRow(l, fmt.Sprint(d.Server.Bucket(i)), fmt.Sprint(d.Client.Bucket(i)))
	}
	return t.String() + fmt.Sprintf("client duration quantiles (50/90/99/100): %v days\n",
		d.ClientQuantiles)
}

// Versions renders the §3.3 protocol mix.
func Versions(a *core.Analysis) string {
	v := a.Versions
	t := stats.NewTable("", "Version", "Conn share")
	for _, kv := range v.Shares {
		t.AddRow(kv.Key, stats.Pct(float64(kv.Count)/float64(max64(v.Total, 1))))
	}
	return t.String()
}

// Fingerprints renders the JA3/JA4 prevalence join. The interesting
// column pairing is ClientCerts against Conns: a distinctive hello shape
// backed by few client certificates is a linkable client.
func Fingerprints(a *core.Analysis) string {
	f := a.Fingerprints
	if f == nil || len(f.Rows) == 0 {
		return "no fingerprint columns recorded\n"
	}
	t := stats.NewTable("", "JA3", "JA4", "Conn share", "Mutual", "Client certs", "SNIs", "Top client issuer")
	for _, r := range f.Rows {
		ja3 := r.JA3
		if len(ja3) > 12 {
			ja3 = ja3[:12]
		}
		ja4 := r.JA4
		if len(ja4) > 24 {
			ja4 = ja4[:24]
		}
		t.AddRow(ja3, ja4,
			stats.Pct(float64(r.Conns)/float64(max64(f.Fingerprinted, 1))),
			stats.Pct(r.MutualShare()),
			fmt.Sprint(r.ClientCerts), fmt.Sprint(r.SNIs), r.TopIssuer)
	}
	return t.String() + fmt.Sprintf("fingerprinted connection share: %s\n",
		pct(f.FingerprintedShare()))
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sortedKeys is a tiny helper for deterministic map iteration in renders.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
