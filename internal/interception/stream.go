package interception

import (
	"sort"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/psl"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// CertSource resolves a fingerprint to a certificate, or nil when the
// certificate has not been observed (yet). zeek.Dataset.Cert satisfies it.
type CertSource func(ids.Fingerprint) *certmodel.CertInfo

// Stream is the incremental form of the Detector: the same three-step
// filter (§3.2), maintained one observation at a time so a long-running
// monitor can keep the interception verdict current while records arrive.
// Detector.Run is a thin loop over a Stream, so the batch and streaming
// paths share one implementation.
//
// A connection whose server leaf certificate has not arrived yet is
// parked in a pending set and processed when ObserveCert delivers the
// certificate — the outcome is therefore independent of how ssl.log and
// x509.log rows interleave, and draining a finite input produces exactly
// Detector.Run's result.
//
// The exclusion set only ever grows. Gen increases monotonically every
// time it does, so callers can detect retroactive exclusions (a newly
// confirmed issuer invalidates conclusions drawn from its earlier
// certificates) with one comparison.
type Stream struct {
	d     *Detector
	min   int
	certs CertSource
	memo  *truststore.IssuerMemo
	sld   *psl.SplitCache

	// observed: issuer -> server-leaf fingerprints presented under it.
	observed map[string]map[ids.Fingerprint]bool
	// contradicted: issuer -> domains where CT disagrees.
	contradicted map[string]map[string]bool
	// pending: leaf fingerprint -> conns waiting for that certificate.
	pending map[ids.Fingerprint][]PendingRef
	// confirmed issuers (contradicted on >= min domains).
	confirmed map[string]bool
	// excluded = union of observed[issuer] over confirmed issuers.
	excluded map[ids.Fingerprint]bool

	gen uint64
}

// PendingRef is one connection observation parked until its server leaf
// certificate arrives: the SNI (for the CT domain lookup) and the rest of
// the presented chain (for trust classification).
type PendingRef struct {
	SNI  string
	Rest []ids.Fingerprint
}

// NewStream returns an incremental detector resolving certificates
// through certs.
func (d *Detector) NewStream(certs CertSource) *Stream {
	min := d.MinDomains
	if min <= 0 {
		min = 2
	}
	return &Stream{
		d:            d,
		min:          min,
		certs:        certs,
		memo:         d.Bundle.NewIssuerMemo(),
		sld:          psl.NewSplitCache(d.PSL),
		observed:     map[string]map[ids.Fingerprint]bool{},
		contradicted: map[string]map[string]bool{},
		pending:      map[ids.Fingerprint][]PendingRef{},
		confirmed:    map[string]bool{},
		excluded:     map[ids.Fingerprint]bool{},
	}
}

// Observe feeds one connection. If the server leaf certificate is not
// resolvable yet the observation is parked until ObserveCert delivers it.
func (s *Stream) Observe(conn *zeek.SSLRecord) {
	leafFP := conn.ServerLeaf()
	if leafFP == "" {
		return
	}
	ref := PendingRef{SNI: conn.SNI, Rest: conn.ServerChain[1:]}
	leaf := s.certs(leafFP)
	if leaf == nil {
		s.pending[leafFP] = append(s.pending[leafFP], ref)
		return
	}
	s.observe(leaf, ref)
}

// ObserveCert notifies the stream that a certificate became resolvable,
// draining any connections that were waiting for it. Call it on the first
// observation of each fingerprint.
func (s *Stream) ObserveCert(c *certmodel.CertInfo) {
	refs := s.pending[c.Fingerprint]
	if refs == nil {
		return
	}
	delete(s.pending, c.Fingerprint)
	for _, ref := range refs {
		s.observe(c, ref)
	}
}

// observe is the per-connection body of Detector.Run.
func (s *Stream) observe(leaf *certmodel.CertInfo, ref PendingRef) {
	// Step 1: only untrusted server issuers are candidates. The issuer
	// membership half of the verdict is memoized per stream — verdicts
	// are identical to Bundle.ClassifyLeaf.
	if s.memo.ClassifyLeaf(leaf, ref.Rest) == truststore.Public {
		return
	}
	issuer := leaf.IssuerKey()
	if issuer == "" {
		return
	}
	if s.observed[issuer] == nil {
		s.observed[issuer] = map[ids.Fingerprint]bool{}
	}
	if !s.observed[issuer][leaf.Fingerprint] {
		s.observed[issuer][leaf.Fingerprint] = true
		if s.confirmed[issuer] {
			s.exclude(leaf.Fingerprint)
		}
	}

	// Step 2: CT comparison on the connection's domain.
	domain := s.sld.SLD(ref.SNI)
	if domain == "" && len(leaf.SANDNS) > 0 {
		domain = s.sld.SLD(leaf.SANDNS[0])
	}
	if domain == "" || !s.d.CT.Known(domain) {
		return
	}
	if s.d.CT.HasIssuer(domain, issuer) {
		return
	}
	if s.contradicted[issuer] == nil {
		s.contradicted[issuer] = map[string]bool{}
	}
	s.contradicted[issuer][domain] = true

	// Step 3: corroboration across domains confirms the issuer; every
	// certificate it was ever seen issuing becomes excluded.
	if !s.confirmed[issuer] && len(s.contradicted[issuer]) >= s.min {
		s.confirmed[issuer] = true
		for fp := range s.observed[issuer] {
			s.exclude(fp)
		}
	}
}

func (s *Stream) exclude(fp ids.Fingerprint) {
	if !s.excluded[fp] {
		s.excluded[fp] = true
		s.gen++
	}
}

// Gen is the exclusion-set generation: it increases whenever a
// certificate joins the exclusion set and never decreases.
func (s *Stream) Gen() uint64 { return s.gen }

// Excluded reports whether a fingerprint is currently excluded. The
// verdict can flip from false to true as evidence accumulates, never
// back.
func (s *Stream) Excluded(fp ids.Fingerprint) bool { return s.excluded[fp] }

// ExcludedCount is the current exclusion-set size.
func (s *Stream) ExcludedCount() int { return len(s.excluded) }

// ConfirmedCount is how many issuers are currently confirmed as
// interception.
func (s *Stream) ConfirmedCount() int { return len(s.confirmed) }

// PendingCount is how many connections are parked waiting for their
// server leaf certificate.
func (s *Stream) PendingCount() int {
	n := 0
	for _, refs := range s.pending {
		n += len(refs)
	}
	return n
}

// Result materializes the current verdict in Detector.Run's format:
// sorted confirmed issuers plus a copy of the exclusion set.
func (s *Stream) Result() *Result {
	res := &Result{ExcludedCerts: make(map[ids.Fingerprint]bool, len(s.excluded))}
	res.CandidateCount = len(s.contradicted)
	for issuer := range s.confirmed {
		res.Issuers = append(res.Issuers, issuer)
	}
	for fp := range s.excluded {
		res.ExcludedCerts[fp] = true
	}
	sort.Strings(res.Issuers)
	return res
}

// StreamState is the serializable snapshot of a Stream, exported so the
// streaming engine can checkpoint the detector alongside its own state
// (the detector is cumulative: evicted connections still count toward
// issuer confirmation, so it cannot be rebuilt from a retention window).
type StreamState struct {
	Observed     map[string]map[ids.Fingerprint]bool
	Contradicted map[string]map[string]bool
	Pending      map[ids.Fingerprint][]PendingRef
	Confirmed    map[string]bool
	Excluded     map[ids.Fingerprint]bool
	Gen          uint64
}

// Snapshot copies the stream's state for serialization.
func (s *Stream) Snapshot() *StreamState {
	st := &StreamState{
		Observed:     make(map[string]map[ids.Fingerprint]bool, len(s.observed)),
		Contradicted: make(map[string]map[string]bool, len(s.contradicted)),
		Pending:      make(map[ids.Fingerprint][]PendingRef, len(s.pending)),
		Confirmed:    make(map[string]bool, len(s.confirmed)),
		Excluded:     make(map[ids.Fingerprint]bool, len(s.excluded)),
		Gen:          s.gen,
	}
	for k, v := range s.observed {
		st.Observed[k] = copyMap(v)
	}
	for k, v := range s.contradicted {
		st.Contradicted[k] = copyMap(v)
	}
	for k, v := range s.pending {
		st.Pending[k] = append([]PendingRef(nil), v...)
	}
	for k := range s.confirmed {
		st.Confirmed[k] = true
	}
	for k := range s.excluded {
		st.Excluded[k] = true
	}
	return st
}

// RestoreStream rebuilds a Stream from a snapshot.
func (d *Detector) RestoreStream(certs CertSource, st *StreamState) *Stream {
	s := d.NewStream(certs)
	for k, v := range st.Observed {
		s.observed[k] = copyMap(v)
	}
	for k, v := range st.Contradicted {
		s.contradicted[k] = copyMap(v)
	}
	for k, v := range st.Pending {
		s.pending[k] = append([]PendingRef(nil), v...)
	}
	for k := range st.Confirmed {
		s.confirmed[k] = true
	}
	for k := range st.Excluded {
		s.excluded[k] = true
	}
	s.gen = st.Gen
	return s
}

func copyMap[K comparable](m map[K]bool) map[K]bool {
	out := make(map[K]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
