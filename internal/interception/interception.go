// Package interception models both sides of the TLS-interception problem
// the paper must solve during preprocessing (§3.2):
//
//   - Proxy simulates an inspecting middlebox that re-signs server
//     certificates with its own CA, so the client (and the border tap)
//     never sees the genuine server certificate; and
//   - Detector reimplements the paper's three-step filter: (1) keep only
//     connections whose server leaf issuer is not in the trust stores,
//     (2) look the domain up in CT and compare issuers, (3) confirm
//     issuers that systematically re-sign many domains ("manual
//     investigation" in the paper, a corroboration threshold here).
//
// The paper identified 186 interception issuers covering 8.4% of
// certificates; the detector reports the same artifacts (issuer list +
// excluded certificate set) for the simulated population.
package interception

import (
	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/psl"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

// Proxy is a re-signing middlebox.
type Proxy struct {
	// IssuerOrg/IssuerCN identify the proxy's private CA (e.g. a corporate
	// antivirus root).
	IssuerOrg string
	IssuerCN  string
}

// Intercept returns the certificate the client sees instead of orig: same
// subject and SANs, the proxy's issuer, a fresh fingerprint. Validity is
// clamped to the proxy's short re-issue window, as real middleboxes do.
func (p *Proxy) Intercept(orig *certmodel.CertInfo, discriminator string) *certmodel.CertInfo {
	re := &certmodel.CertInfo{
		SerialHex:  orig.SerialHex,
		Version:    3,
		IssuerOrg:  p.IssuerOrg,
		IssuerCN:   p.IssuerCN,
		SubjectCN:  orig.SubjectCN,
		SubjectOrg: orig.SubjectOrg,
		SANDNS:     append([]string(nil), orig.SANDNS...),
		SANIP:      append([]string(nil), orig.SANIP...),
		NotBefore:  orig.NotBefore,
		NotAfter:   orig.NotAfter,
		KeyAlg:     orig.KeyAlg,
		KeyBits:    orig.KeyBits,
	}
	re.Fingerprint = certmodel.SyntheticFingerprint(re, "intercept/"+discriminator)
	return re
}

// Result is the detector's output.
type Result struct {
	// Issuers is the sorted list of confirmed interception issuers (the
	// paper found 186).
	Issuers []string
	// ExcludedCerts holds the fingerprints removed from analysis (the
	// paper excluded 871,993, 8.4%).
	ExcludedCerts map[ids.Fingerprint]bool
	// CandidateCount is how many issuers reached step 2 (CT comparison).
	CandidateCount int
}

// ExcludedShare returns |excluded| / total.
func (r *Result) ExcludedShare(totalCerts int) float64 {
	if totalCerts == 0 {
		return 0
	}
	return float64(len(r.ExcludedCerts)) / float64(totalCerts)
}

// Detector implements the CT-based filter.
type Detector struct {
	Bundle *truststore.Bundle
	CT     *ct.Log
	PSL    *psl.List
	// MinDomains is the corroboration threshold standing in for the
	// paper's manual investigation: an untrusted issuer is confirmed as
	// interception when it contradicts CT on at least this many distinct
	// domains. Default 2.
	MinDomains int
}

// Run inspects every connection's server leaf and returns the confirmed
// interception issuers plus the certificates to exclude. It is the batch
// form of the incremental Stream: one Observe per connection, then
// Result — so the one-shot and streaming paths share one implementation.
func (d *Detector) Run(ds *zeek.Dataset) *Result {
	s := d.NewStream(ds.Cert)
	for i := range ds.Conns {
		s.Observe(&ds.Conns[i])
	}
	return s.Result()
}

// Filter returns a copy of ds with excluded certificates' connections'
// server chains intact but the certificates dropped from the cert table,
// and connections whose server leaf was excluded removed entirely —
// matching the paper's exclusion of interception traffic from analysis.
func Filter(ds *zeek.Dataset, res *Result) *zeek.Dataset {
	out := zeek.NewDataset()
	for i := range ds.Conns {
		conn := &ds.Conns[i]
		if fp := conn.ServerLeaf(); fp != "" && res.ExcludedCerts[fp] {
			continue
		}
		out.Conns = append(out.Conns, *conn)
	}
	for fp, c := range ds.Certs {
		if !res.ExcludedCerts[fp] {
			out.AddCert(c)
		}
	}
	return out
}
