package interception

import "repro/internal/ids"

// Evidence is the raw, verdict-free form of a detector's accumulated
// state: the observed (issuer -> leaf fingerprints) and contradicted
// (issuer -> domains) relations, plus how many observations are parked
// waiting for their leaf certificate. It is what crosses the network in
// a distributed deployment — verdicts are recomputed at the merge point
// (an issuer contradicted on domain A at one sensor and domain B at
// another corroborates globally even though neither sensor alone would
// confirm it), so shipping per-sensor verdicts would lose exactly the
// cross-vantage evidence the aggregation exists to combine.
type Evidence struct {
	Observed     map[string]map[ids.Fingerprint]bool
	Contradicted map[string]map[string]bool
	Pending      int
}

// Evidence deep-copies the stream's raw relations. The caller must
// synchronize access to s (the engine holds its state lock).
func (s *Stream) Evidence() *Evidence {
	ev := &Evidence{
		Observed:     make(map[string]map[ids.Fingerprint]bool, len(s.observed)),
		Contradicted: make(map[string]map[string]bool, len(s.contradicted)),
		Pending:      s.PendingCount(),
	}
	for k, v := range s.observed {
		ev.Observed[k] = copyMap(v)
	}
	for k, v := range s.contradicted {
		ev.Contradicted[k] = copyMap(v)
	}
	return ev
}

// AbsorbEvidence unions raw relations into the accumulator, exactly as
// Absorb does for a live Stream. Evidence from the same source must not
// be absorbed twice into one Merge (the relations are cumulative, so a
// re-absorb would be harmless for Observed/Contradicted but would
// double-count Pending).
func (m *Merge) AbsorbEvidence(ev *Evidence) {
	if ev == nil {
		return
	}
	for issuer, fps := range ev.Observed {
		dst := m.observed[issuer]
		if dst == nil {
			dst = make(map[ids.Fingerprint]bool, len(fps))
			m.observed[issuer] = dst
		}
		for fp := range fps {
			dst[fp] = true
		}
	}
	for issuer, domains := range ev.Contradicted {
		dst := m.contradicted[issuer]
		if dst == nil {
			dst = make(map[string]bool, len(domains))
			m.contradicted[issuer] = dst
		}
		for d := range domains {
			dst[d] = true
		}
	}
	m.pending += ev.Pending
}

// Evidence deep-copies the accumulator's own union relations — a sharded
// sensor exports this so its N shards travel as one evidence set.
func (m *Merge) Evidence() *Evidence {
	ev := &Evidence{
		Observed:     make(map[string]map[ids.Fingerprint]bool, len(m.observed)),
		Contradicted: make(map[string]map[string]bool, len(m.contradicted)),
		Pending:      m.pending,
	}
	for k, v := range m.observed {
		ev.Observed[k] = copyMap(v)
	}
	for k, v := range m.contradicted {
		ev.Contradicted[k] = copyMap(v)
	}
	return ev
}
