package interception

import (
	"reflect"
	"testing"
)

// streamOver drains a subset of the scenario dataset (certs first, then
// the given conn indices) through a fresh Stream.
func streamOver(t *testing.T, connIdx ...int) *Stream {
	t.Helper()
	ds, det := buildScenario(t)
	s := det.NewStream(ds.Cert)
	for _, c := range ds.Certs {
		s.ObserveCert(c)
	}
	if len(connIdx) == 0 {
		for i := range ds.Conns {
			s.Observe(&ds.Conns[i])
		}
	} else {
		for _, i := range connIdx {
			s.Observe(&ds.Conns[i])
		}
	}
	return s
}

func TestAbsorbEvidenceMatchesAbsorb(t *testing.T) {
	s := streamOver(t)

	direct := NewMerge(2)
	direct.Absorb(s)
	viaEv := NewMerge(2)
	viaEv.AbsorbEvidence(s.Evidence())

	if got, want := viaEv.Result(), direct.Result(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AbsorbEvidence result = %+v, want %+v", got, want)
	}
	if viaEv.PendingCount() != direct.PendingCount() {
		t.Fatalf("pending %d != %d", viaEv.PendingCount(), direct.PendingCount())
	}
}

func TestEvidenceCorroboratesAcrossSources(t *testing.T) {
	// Split the scenario's connections across two streams so the proxy
	// issuer is contradicted on different domains at each source; only
	// the merged evidence crosses the MinDomains threshold.
	a := streamOver(t, 0)
	b := streamOver(t, 1)
	if len(a.Result().Issuers) != 0 || len(b.Result().Issuers) != 0 {
		t.Fatal("scenario is vacuous: a single source already confirms the issuer")
	}

	m := NewMerge(2)
	m.AbsorbEvidence(a.Evidence())
	m.AbsorbEvidence(b.Evidence())
	res := m.Result()
	if len(res.Issuers) != 1 || res.Issuers[0] != "Sneaky Inspection CA" {
		t.Fatalf("merged issuers = %v", res.Issuers)
	}
	if len(res.ExcludedCerts) != 2 {
		t.Fatalf("merged exclusions = %d, want 2", len(res.ExcludedCerts))
	}

	// A Merge's own Evidence() must round-trip through AbsorbEvidence.
	re := NewMerge(2)
	re.AbsorbEvidence(m.Evidence())
	if !reflect.DeepEqual(re.Result(), res) {
		t.Fatal("Merge.Evidence did not round-trip")
	}
}

func TestEvidenceIsDeepCopy(t *testing.T) {
	s := streamOver(t)
	ev := s.Evidence()
	for _, fps := range ev.Observed {
		for fp := range fps {
			delete(fps, fp)
		}
	}
	for _, doms := range ev.Contradicted {
		for d := range doms {
			delete(doms, d)
		}
	}
	// Mutating the snapshot must not leak into the stream's verdict.
	res := s.Result()
	if len(res.Issuers) != 1 {
		t.Fatalf("stream verdict corrupted by snapshot mutation: %v", res.Issuers)
	}
}
